// Package onionbots is a defensive research reproduction of
// "OnionBots: Subverting Privacy Infrastructure for Cyber Attacks"
// (Sanatinia & Noubir, DSN 2015).
//
// Everything runs in-process against a simulated Tor substrate: the
// self-healing DDSR overlay (Section IV-C), the OnionBot reference
// design (Section IV), the SOAP sybil mitigation (Section VI-B), the
// HSDir-positioning mitigation (Section VI-A), and the hardened
// next-generation variants (Section VII). See README.md for the system
// inventory and how to reproduce each figure, docs/ARCHITECTURE.md for
// the simulator design and the determinism contract, and bench_test.go
// for the per-figure regeneration harness.
//
// The implementation lives under internal/; cmd/onionsim, cmd/soapctl
// and cmd/ddsrviz are the entry points, and examples/ holds runnable
// walkthroughs.
package onionbots
