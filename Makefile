# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep them in sync.

# pipefail so `go test | benchjson` pipelines fail when go test fails.
SHELL       := /bin/bash
.SHELLFLAGS := -o pipefail -c

GO        ?= go
BENCHTIME ?= 200x
# The microbenchmark set archived per PR: scheduler (wheel vs heap),
# batched ticks, descriptor stores (flat vs sharded), the data-plane
# fast paths from PR 1, and PR 5's pooled-vs-unpooled infection pair.
BENCH     ?= SchedulerSteadyState|SchedulerBatchedTicks|DescriptorStore|CellRelayHop|SealOpenSession|HiddenServiceDial|InfectFrom

# External lint tool versions are pinned in tools/go.mod (a separate
# module, so the simulator's go.mod keeps zero dependencies). The
# Makefile reads them from there; bump them only in tools/go.mod.
STATICCHECK_VERSION := $(shell awk '$$1 == "honnef.co/go/tools" {print $$2}' tools/go.mod)
GOVULNCHECK_VERSION := $(shell awk '$$1 == "golang.org/x/vuln" {print $$2}' tools/go.mod)
GOBIN_DIR           := $(shell $(GO) env GOPATH)/bin

.PHONY: all build test race bench determinism sweep-smoke scenario-smoke serve-smoke linkcheck fuzz-smoke lint tools

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the determinism-contract gate: go vet, then onionlint
# (internal/lint: detclock/detrand/maporder/substream — the analyzers
# that ban the Graph.Snapshot map-order and MaybeReadByte keygen bug
# classes), then staticcheck and govulncheck at the versions pinned in
# tools/go.mod. The external tools need `make tools` (network) once;
# until then they are skipped with a notice so offline trees still get
# the full onionlint sweep.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/onionlint ./...
	@sc=$$(command -v staticcheck || echo $(GOBIN_DIR)/staticcheck); \
	if [ -x "$$sc" ]; then "$$sc" ./...; \
	else echo "lint: staticcheck $(STATICCHECK_VERSION) not installed; run 'make tools' to enable"; fi
	@gv=$$(command -v govulncheck || echo $(GOBIN_DIR)/govulncheck); \
	if [ -x "$$gv" ]; then "$$gv" ./...; \
	else echo "lint: govulncheck $(GOVULNCHECK_VERSION) not installed; run 'make tools' to enable"; fi

# tools installs the pinned external lint tools (network required).
# Standalone `go install pkg@version` honours the pin without needing a
# go.sum in tools/.
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# race runs the short test set under the race detector. The simulator
# itself is single-threaded by design; this guards the concurrent
# surfaces — the experiment runner's worker pool, task timeouts, and
# result aggregation.
race:
	$(GO) test -race -short ./...

# bench runs the microbenchmark set with -benchmem, then the n=10^6
# Fig 5 memory-plane point (one iteration IS the experiment; it
# reports its heap high-water mark as a custom heap-MiB metric), and
# archives both as BENCH_pr9.json (stderr keeps the human-readable
# stream).
bench:
	{ $(GO) test -run=NONE -bench='$(BENCH)' -benchtime=$(BENCHTIME) -benchmem ./... && \
	  $(GO) test -run=NONE -bench=Fig5MillionNode -benchtime=1x -timeout 60m ./internal/experiment/; } \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_pr9.json

# fuzz-smoke runs every native fuzz target for a short budget each —
# enough to shake out parser panics on every CI run while keeping the
# job bounded. Longer local sessions: make fuzz-smoke FUZZTIME=30s.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/churn/
	$(GO) test -run=NONE -fuzz=FuzzParseTrace -fuzztime=$(FUZZTIME) ./internal/churn/
	$(GO) test -run=NONE -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/soap/
	$(GO) test -run=NONE -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/faults/
	$(GO) test -run=NONE -fuzz=FuzzParseSweep -fuzztime=$(FUZZTIME) ./internal/experiment/
	$(GO) test -run=NONE -fuzz=FuzzReplayJournal -fuzztime=$(FUZZTIME) ./internal/serve/

# determinism asserts the scheduler/runner contract: -exp all output is
# byte-identical at any -parallel value.
determinism:
	$(GO) build -o /tmp/onionsim-ci ./cmd/onionsim
	/tmp/onionsim-ci -exp all -quick -seed 1 -parallel 1 > /tmp/onionsim-p1.txt
	/tmp/onionsim-ci -exp all -quick -seed 1 -parallel 4 > /tmp/onionsim-p4.txt
	cmp /tmp/onionsim-p1.txt /tmp/onionsim-p4.txt

sweep-smoke:
	$(GO) build -o /tmp/onionsim-ci ./cmd/onionsim
	/tmp/onionsim-ci -sweep examples/sweep/fig6-grid.json -parallel 4 -json > /dev/null
	/tmp/onionsim-ci -sweep examples/sweep/fig5-fig6-quick.json -parallel 4 -json > /dev/null
	# The churn grid doubles as the dynamic-membership determinism gate:
	# the full JSON document must be byte-identical at any worker count.
	/tmp/onionsim-ci -sweep examples/sweep/churn-grid.json -parallel 1 -json > /tmp/onionsim-churn-p1.json
	/tmp/onionsim-ci -sweep examples/sweep/churn-grid.json -parallel 4 -json > /tmp/onionsim-churn-p4.json
	cmp /tmp/onionsim-churn-p1.json /tmp/onionsim-churn-p4.json
	# Same gate for the churn × SOAP composition: a live mitigation
	# campaign against a moving population must stay byte-deterministic.
	/tmp/onionsim-ci -sweep examples/sweep/churn-soap-grid.json -parallel 1 -json > /tmp/onionsim-churnsoap-p1.json
	/tmp/onionsim-ci -sweep examples/sweep/churn-soap-grid.json -parallel 4 -json > /tmp/onionsim-churnsoap-p4.json
	cmp /tmp/onionsim-churnsoap-p1.json /tmp/onionsim-churnsoap-p4.json
	# And for the infrastructure fault plane: correlated HSDir outages,
	# retry budgets, and repair republishes must not cost determinism.
	/tmp/onionsim-ci -sweep examples/sweep/hsdir-outage-grid.json -parallel 1 -json > /tmp/onionsim-faults-p1.json
	/tmp/onionsim-ci -sweep examples/sweep/hsdir-outage-grid.json -parallel 4 -json > /tmp/onionsim-faults-p4.json
	cmp /tmp/onionsim-faults-p1.json /tmp/onionsim-faults-p4.json
	# Store-backend A/B: the three DescriptorStore backends must be
	# observably identical, and the sweep itself byte-deterministic.
	/tmp/onionsim-ci -sweep examples/sweep/store-ab.json -parallel 1 -json > /tmp/onionsim-store-p1.json
	/tmp/onionsim-ci -sweep examples/sweep/store-ab.json -parallel 4 -json > /tmp/onionsim-store-p4.json
	cmp /tmp/onionsim-store-p1.json /tmp/onionsim-store-p4.json

# scenario-smoke runs the whole named-question library in quick mode —
# every expectation must PASS (non-zero exit otherwise) — and
# byte-compares the full output at -parallel 1 vs 4. Replay scenarios
# resolve trace files relative to the repo root, so run from here.
scenario-smoke:
	$(GO) build -o /tmp/onionsim-ci ./cmd/onionsim
	/tmp/onionsim-ci -scenario all -quick -parallel 1 > /tmp/onionsim-scenario-p1.txt
	/tmp/onionsim-ci -scenario all -quick -parallel 4 > /tmp/onionsim-scenario-p4.txt
	cmp /tmp/onionsim-scenario-p1.txt /tmp/onionsim-scenario-p4.txt

# serve-smoke is the crash-safety gate for server mode: submit a fig6
# grid to a live `onionsim -serve`, kill -9 the process mid-sweep,
# restart it over the same jobs dir, and byte-compare the resumed
# result against an uninterrupted batch run (scripts/serve_smoke.sh).
serve-smoke:
	$(GO) build -o /tmp/onionsim-ci ./cmd/onionsim
	BIN=/tmp/onionsim-ci ./scripts/serve_smoke.sh

# linkcheck fails on dangling docs/*.md references anywhere in the tree
# (markdown or Go docs), so the handbook cannot silently rot.
linkcheck:
	@refs=$$(grep -rhoE 'docs/[A-Za-z0-9_.-]+\.md' --include='*.md' --include='*.go' . | sort -u); \
	status=0; \
	for f in $$refs; do \
		if [ ! -f "$$f" ]; then echo "dangling doc reference: $$f"; status=1; fi; \
	done; \
	exit $$status
