// SuperOnion: the Section VII-B construction (Figure 8: n=5 hosts, m=3
// virtual nodes each, i=2 peers per virtual node) under a SOAP
// campaign. Hosts run indistinguishable connectivity probes, detect
// soaped virtual nodes, and regrow them — staying ahead of containment
// where a basic botnet of the same size falls.
//
//	go run ./examples/superonion
package main

import (
	"fmt"
	"os"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/soap"
	"onionbots/internal/superonion"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "superonion: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	bn, err := core.NewBotNet(21, 20, core.BotConfig{DMin: 2, DMax: 4})
	if err != nil {
		return err
	}
	// Replaced virtual nodes re-bootstrap through the C&C's hotlist of
	// registered bots — clones cannot register, so the list is clean.
	bn.Master.HotlistSize = 3

	fleet, err := superonion.BuildFleet(bn, 5, superonion.Config{
		M: 3, I: 2, ProbeInterval: 2 * time.Minute,
	})
	if err != nil {
		return err
	}
	bn.Run(6 * time.Minute)
	fmt.Printf("SuperOnion fleet: %d hosts x 3 virtual nodes = %d virtual bots\n",
		len(fleet.Hosts), fleet.VirtualCount())

	attacker := soap.NewAttacker(bn.Net, bn.Master.NetKey(),
		soap.Config{RoundInterval: 5 * time.Minute})
	attacker.Start(fleet.Hosts[0].Virtuals()[0].Onion())
	isBenign := func(onion string) bool { return !attacker.IsClone(onion) }

	fmt.Println("\nSOAP campaign against the fleet:")
	for q := 1; q <= 8; q++ {
		bn.Run(15 * time.Minute)
		detected, replaced := 0, 0
		for _, h := range fleet.Hosts {
			detected += h.Stats().SoapedDetected
			replaced += h.Stats().VirtualsReplaced
		}
		fmt.Printf("t=%3dm contained hosts=%d/%d soaped-detected=%d replaced=%d clones=%d\n",
			q*15, fleet.ContainedHosts(isBenign), len(fleet.Hosts),
			detected, replaced, attacker.Stats().ClonesCreated)
	}

	fmt.Println("\na host is lost only while ALL of its virtual nodes are soaped at once;")
	fmt.Println("probe detection plus hotlist re-bootstrap keeps pulling hosts back out.")
	return nil
}
