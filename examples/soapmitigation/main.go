// SOAP mitigation: neutralize a simulated OnionBot network exactly as
// Section VI-B describes — capture one bot, crawl outward, and surround
// every discovered bot with clones hosted on a single defender machine.
//
//	go run ./examples/soapmitigation
package main

import (
	"fmt"
	"os"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/soap"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "soapmitigation: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	bn, err := core.NewBotNet(11, 20, core.BotConfig{DMin: 2, DMax: 4})
	if err != nil {
		return err
	}
	// The paper's recommended bootstrap combines hardcoded peer lists
	// with hotlists; the C&C answers rallies with known-bot addresses.
	bn.Master.HotlistSize = 3
	if err := bn.Grow(10, nil); err != nil {
		return err
	}
	bn.Run(6 * time.Minute)
	fmt.Printf("victim botnet: 10 bots, overlay edges: %d\n", bn.OverlayGraph().NumEdges())

	if err := bn.Broadcast("spam", nil, 1); err != nil {
		return err
	}
	bn.Run(2 * time.Minute)
	fmt.Printf("before SOAP: broadcast executed on %d/10 bots\n\n", bn.ExecutedCount("spam"))

	captured := bn.AliveBots()[0]
	fmt.Printf("defender captures bot %s, recovers the network key,\n", captured.Onion())
	fmt.Println("and starts spawning clones (all on ONE machine)...")
	attacker := soap.NewAttacker(bn.Net, bn.Master.NetKey(), soap.Config{})
	attacker.Start(captured.Onion())

	for step := 1; step <= 9; step++ {
		bn.Run(30 * time.Minute)
		fmt.Printf("step %d: discovered=%2d clones=%3d surrounded=%.0f%% contained=%.0f%%\n",
			step, len(attacker.KnownBots()), attacker.Stats().ClonesCreated,
			100*soap.CloneNeighborFraction(bn, attacker),
			100*soap.ContainmentFraction(bn, attacker))
	}

	if err := bn.Broadcast("spam2", nil, 1); err != nil {
		return err
	}
	bn.Run(2 * time.Minute)
	benign := soap.BenignOverlay(bn, attacker)
	fmt.Printf("\nafter SOAP: broadcast executed on %d/10 bots\n", bn.ExecutedCount("spam2"))
	fmt.Printf("benign bot-to-bot edges remaining: %d\n", benign.NumEdges())
	fmt.Printf("C&C traffic silently dropped by clones: %d messages\n",
		attacker.Stats().MessagesBlocked)
	fmt.Println("the botnet is partitioned and neutralized.")
	return nil
}
