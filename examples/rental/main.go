// Botnet-for-rent: the Section IV-E business flow. Mallory (the
// botmaster) signs a rental token for Trudy containing her public key,
// an expiry, and a command whitelist; bots verify the whole chain and
// execute exactly the commands the token allows, for exactly as long as
// it is valid — with no further involvement from Mallory.
//
//	go run ./examples/rental
package main

import (
	"crypto/ed25519"
	"fmt"
	"os"
	"time"

	"onionbots/internal/botcrypto"
	"onionbots/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rental: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	bn, err := core.NewBotNet(31, 20, core.BotConfig{})
	if err != nil {
		return err
	}
	if err := bn.Grow(8, nil); err != nil {
		return err
	}
	bn.Run(6 * time.Minute)

	// Trudy generates a keypair and Mallory signs her a 24-hour token
	// whitelisted for "spam" and "mine" only.
	trudyPub, trudyPriv, err := ed25519.GenerateKey(botcrypto.NewDRBG([]byte("trudy")))
	if err != nil {
		return err
	}
	now := bn.Net.Now()
	token := botcrypto.IssueToken(bn.Master.SignPriv(), trudyPub,
		now.Add(24*time.Hour), []string{"spam", "mine"})
	fmt.Printf("token issued: whitelist %v, expires %s\n", token.Whitelist,
		token.Expiry.Format(time.RFC3339))

	inject := func(cmd *core.Command) {
		env := &core.Envelope{Type: core.MsgBroadcast, TTL: 8, Payload: cmd.Encode()}
		copy(env.MsgID[:], botcrypto.NewDRBG(cmd.Sig).Bytes(16))
		bn.AliveBots()[0].Inject(env)
		bn.Run(2 * time.Minute)
	}

	// A whitelisted rented command: executes everywhere.
	spam := &core.Command{Name: "spam", Args: []byte("pills"), IssuedAt: bn.Net.Now()}
	spam.Nonce[0] = 1
	spam.SignRenter(trudyPriv, token)
	inject(spam)
	fmt.Printf("rented 'spam' executed on %d/8 bots\n", bn.ExecutedCount("spam"))

	// Off-whitelist: Trudy tries a DDoS she did not pay for.
	ddos := &core.Command{Name: "ddos", Args: []byte("example.com"), IssuedAt: bn.Net.Now()}
	ddos.Nonce[0] = 2
	ddos.SignRenter(trudyPriv, token)
	inject(ddos)
	fmt.Printf("rented 'ddos' (not whitelisted) executed on %d/8 bots\n", bn.ExecutedCount("ddos"))

	// After expiry: the token is dead, no signature can revive it.
	bn.Run(25 * time.Hour)
	late := &core.Command{Name: "mine", IssuedAt: bn.Net.Now()}
	late.Nonce[0] = 3
	late.SignRenter(trudyPriv, token)
	inject(late)
	fmt.Printf("rented 'mine' after expiry executed on %d/8 bots\n", bn.ExecutedCount("mine"))

	// The master's own commands need no token.
	master := bn.Master.NewCommand("update", nil)
	inject(master)
	fmt.Printf("master 'update' executed on %d/8 bots\n", bn.ExecutedCount("update"))
	return nil
}
