// Takedown resilience: the Figure 5 experiment in miniature. A
// 10-regular overlay of 1000 nodes suffers gradual node deletions; the
// DDSR self-repairing maintenance keeps it in one piece to ~95%
// deletion while the identical graph without repair shatters past 60%.
//
//	go run ./examples/takedown
package main

import (
	"fmt"
	"os"

	"onionbots/internal/ddsr"
	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "takedown: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n = 1000
		k = 10
	)
	rng := sim.NewRNG(42)
	overlay, err := ddsr.NewRegular(n, k, ddsr.DefaultConfig(k), rng)
	if err != nil {
		return err
	}
	baseline, err := ddsr.NewNormalRegular(n, k, sim.NewRNG(42))
	if err != nil {
		return err
	}
	perm := sim.NewRNG(7).Perm(n)

	fmt.Printf("%-10s %12s %12s %14s %14s\n",
		"deleted", "DDSR comps", "Norm comps", "DDSR diam", "Norm diam")
	mrng := sim.NewRNG(9)
	for i := 0; i < n-5; i++ {
		overlay.RemoveNode(perm[i])
		baseline.RemoveNode(perm[i])
		deleted := i + 1
		if deleted%100 != 0 {
			continue
		}
		dc := graph.NumComponents(overlay.Graph())
		nc := graph.NumComponents(baseline.Graph())
		dd, _ := graph.DiameterApprox(overlay.Graph(), 4, mrng)
		nd, _ := graph.DiameterApprox(baseline.Graph(), 4, mrng)
		fmt.Printf("%-10d %12d %12d %14d %14d\n", deleted, dc, nc, dd, nd)
	}

	st := overlay.Stats()
	fmt.Printf("\nDDSR maintenance: %d repair edges added, %d pruned, %d floor re-peerings\n",
		st.RepairEdgesAdded, st.EdgesPruned, st.FloorEdgesAdded)
	fmt.Println("(diameters are of the largest surviving component)")
	return nil
}
