// Quickstart: build a small OnionBot network on the simulated Tor
// substrate, push a broadcast command through the flooding mesh, take
// down a third of the bots, and watch the DDSR overlay self-heal.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// One simulated Tor network (20 relays), one botmaster, and a
	// deterministic seed: every run of this program prints the same
	// thing.
	bn, err := core.NewBotNet(7, 20, core.BotConfig{DMin: 3, DMax: 6})
	if err != nil {
		return err
	}
	fmt.Printf("C&C rally address: %s\n", bn.Master.Onion())

	// Infect 15 hosts. Each new bot bootstraps from its infector's
	// peer list (hardcoded-list strategy, inclusion probability 0.5).
	if err := bn.Grow(15, nil); err != nil {
		return err
	}
	bn.Run(6 * time.Minute) // settle + one NoN gossip round

	g := bn.OverlayGraph()
	diam, _ := graph.Diameter(g)
	fmt.Printf("overlay after formation: %d bots, %d edges, %d component(s), diameter %d\n",
		g.NumNodes(), g.NumEdges(), graph.NumComponents(g), diam)
	fmt.Printf("botmaster registry: %d bots reported K_B at rally\n", bn.Master.NumRegistered())

	// Push a broadcast through one entry bot; flooding delivers it to
	// everyone, with every hop sealed and fixed-size.
	if err := bn.Broadcast("ddos", []byte("example.com 300s"), 1); err != nil {
		return err
	}
	bn.Run(2 * time.Minute)
	fmt.Printf("broadcast executed on %d/15 bots\n", bn.ExecutedCount("ddos"))

	// Take down 5 bots, one at a time; survivors detect dead peers via
	// pings and repair around them using Neighbors-of-Neighbor state.
	for i := 0; i < 5; i++ {
		victim := bn.AliveBots()[0]
		bn.Takedown(victim)
		bn.Run(10 * time.Minute)
	}
	g = bn.OverlayGraph()
	fmt.Printf("after 5 takedowns: %d bots, %d edges, %d component(s)\n",
		g.NumNodes(), g.NumEdges(), graph.NumComponents(g))

	// The C&C can still reach a specific surviving bot directly, via
	// the shared-key address schedule.
	for _, rec := range bn.Master.Records() {
		if err := bn.Master.Reach(rec, bn.Master.NewCommand("status", nil)); err == nil {
			bn.Run(time.Minute)
			fmt.Printf("directed reach: bot %s executed 'status' (%d bot total)\n",
				rec.ID(), bn.ExecutedCount("status"))
			break
		}
	}
	return nil
}
