// Package superonion implements the Section VII-B SuperOnionBot
// construction: n physical hosts, each simulating m virtual nodes with
// i peers apiece (a total of n*m virtual nodes and m*i virtual peers
// per physical node — Figure 8 uses n=5, m=3, i=2).
//
// A virtual node is an ordinary OnionBot that shares its physical
// host's single proxy — the decoupling of host, IP address, and .onion
// address means the rest of the network cannot tell. The host
// periodically runs a connectivity test: a probe message floods out
// from one of its virtual nodes and should arrive at the other m-1.
// Because probes are sealed and indistinguishable from all other
// traffic, an authority (legally barred from participating in the
// botnet, as the paper argues) cannot selectively forward them. A
// virtual node that stops receiving probes has been surrounded — soaped
// — and the host discards it, creating a replacement that bootstraps
// from the peers of its still-connected siblings.
//
// The result is the paper's claim to evaluate: a single soaped virtual
// node no longer means a contained host; the whole host is lost only if
// all m virtual nodes are soaped simultaneously.
package superonion
