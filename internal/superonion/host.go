package superonion

import (
	"fmt"
	"time"

	"onionbots/internal/botcrypto"
	"onionbots/internal/core"
	"onionbots/internal/tor"
)

// Config tunes a SuperOnion host.
type Config struct {
	// M is the number of virtual nodes per host. Default 3 (Figure 8).
	M int
	// I is the peers per virtual node. Default 2 (Figure 8).
	I int
	// ProbeInterval spaces connectivity tests. Default 10m.
	ProbeInterval time.Duration
	// ProbeTimeout is how long after sending a probe the host judges
	// who received it. Default 1m.
	ProbeTimeout time.Duration
	// Grace protects newborn virtual nodes from being judged before
	// they finish peering. Default one ProbeInterval.
	Grace time.Duration
	// ProbeTTL bounds probe flooding. Default 10.
	ProbeTTL uint8
}

func (c Config) withDefaults() Config {
	if c.M == 0 {
		c.M = 3
	}
	if c.I == 0 {
		c.I = 2
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 10 * time.Minute
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = time.Minute
	}
	if c.Grace == 0 {
		c.Grace = c.ProbeInterval
	}
	if c.ProbeTTL == 0 {
		c.ProbeTTL = 10
	}
	return c
}

// Stats counts host activity.
type Stats struct {
	ProbesSent       int
	SoapedDetected   int
	VirtualsReplaced int
}

// virtualSlot tracks one virtual node's probe bookkeeping.
type virtualSlot struct {
	bot      *core.Bot
	born     time.Time
	received bool // current probe round
}

// Host is one SuperOnion physical machine: a single proxy hosting M
// virtual OnionBots plus the probe logic that detects soaping.
type Host struct {
	bn    *core.BotNet
	proxy *tor.OnionProxy
	cfg   Config
	drbg  *botcrypto.DRBG

	probeKey  []byte
	probeSeal *botcrypto.SealKey
	slots     []*virtualSlot
	probeSeq  int
	nextSrc   int
	running   bool
	stats     Stats
}

// NewHost creates a host with M virtual nodes, each rallied with
// bootstrap candidates produced by pick (called once per virtual node).
func NewHost(bn *core.BotNet, cfg Config, name string,
	pick func(slot int) []string) (*Host, error) {
	cfg = cfg.withDefaults()
	h := &Host{
		bn:       bn,
		proxy:    tor.NewProxy(bn.Net),
		cfg:      cfg,
		drbg:     botcrypto.NewDRBG([]byte("superonion-host:" + name)),
		probeKey: botcrypto.NewDRBG([]byte("probe-key:" + name)).Bytes(32),
	}
	h.probeSeal = botcrypto.NewSealKey(h.probeKey)
	for s := 0; s < cfg.M; s++ {
		if err := h.addVirtual(pick(s)); err != nil {
			return nil, fmt.Errorf("superonion: host %s slot %d: %w", name, s, err)
		}
	}
	return h, nil
}

// addVirtual creates, wires, and rallies one virtual node.
func (h *Host) addVirtual(bootstrap []string) error {
	b, err := h.bn.NewVirtualBot(h.proxy)
	if err != nil {
		return err
	}
	slot := &virtualSlot{bot: b, born: h.bn.Net.Now()}
	b.ProbeKey = h.probeKey
	b.OnProbe = func(inner []byte) { h.onProbe(slot, inner) }
	h.slots = append(h.slots, slot)
	return b.Rally(bootstrap)
}

// Stats returns a copy of the counters.
func (h *Host) Stats() Stats { return h.stats }

// Virtuals lists the host's alive virtual nodes.
func (h *Host) Virtuals() []*core.Bot {
	out := make([]*core.Bot, 0, len(h.slots))
	for _, s := range h.slots {
		if s.bot.Alive() {
			out = append(out, s.bot)
		}
	}
	return out
}

// Start schedules the periodic connectivity test.
func (h *Host) Start() {
	if h.running {
		return
	}
	h.running = true
	h.bn.Sched.Every(h.cfg.ProbeInterval, func() bool {
		if !h.running {
			return false
		}
		h.probe()
		return true
	})
}

// Stop halts probing.
func (h *Host) Stop() { h.running = false }

// probe floods a connectivity test from one virtual node and schedules
// the verdict.
func (h *Host) probe() {
	alive := h.aliveSlots()
	if len(alive) < 2 {
		return // nothing to compare against
	}
	src := alive[h.nextSrc%len(alive)]
	h.nextSrc++
	h.probeSeq++

	for _, s := range h.slots {
		s.received = false
	}
	src.received = true // the source trivially has it

	payload := []byte(fmt.Sprintf("probe-%d", h.probeSeq))
	inner, err := h.probeSeal.SealSized(payload, core.DirectedSealSize, h.drbg)
	if err != nil {
		return
	}
	env := &core.Envelope{Type: core.MsgDirected, TTL: h.cfg.ProbeTTL, Payload: inner}
	copy(env.MsgID[:], h.drbg.Bytes(16))
	src.bot.Inject(env)
	h.stats.ProbesSent++

	h.bn.Sched.After(h.cfg.ProbeTimeout, func() { h.judge(src) })
}

// onProbe records that a virtual node saw the current probe.
func (h *Host) onProbe(slot *virtualSlot, _ []byte) {
	slot.received = true
}

// judge inspects probe receipt and replaces soaped virtual nodes
// (Section VII-B: discard, re-create, re-bootstrap from connected
// siblings' peers).
func (h *Host) judge(src *virtualSlot) {
	now := h.bn.Net.Now()
	alive := h.aliveSlots()
	othersReached := 0
	for _, s := range alive {
		if s != src && s.received {
			othersReached++
		}
	}
	if othersReached == 0 {
		// Nobody heard the source: the source itself is the suspect.
		if now.Sub(src.born) > h.cfg.Grace {
			h.replace(src)
		}
		return
	}
	for _, s := range alive {
		if s.received || now.Sub(s.born) <= h.cfg.Grace {
			continue
		}
		h.replace(s)
	}
}

// replace discards a soaped virtual node and grows a fresh one from the
// connected siblings' peer lists.
func (h *Host) replace(victim *virtualSlot) {
	h.stats.SoapedDetected++
	victim.bot.Takedown()

	own := map[string]struct{}{}
	for _, s := range h.slots {
		if s.bot.Alive() {
			own[s.bot.Onion()] = struct{}{}
		}
	}
	var bootstrap []string
	seen := map[string]struct{}{}
	for _, s := range h.aliveSlots() {
		if !s.received {
			continue // only trust connected siblings
		}
		for _, p := range s.bot.PeerOnions() {
			if _, mine := own[p]; mine {
				continue
			}
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			bootstrap = append(bootstrap, p)
		}
	}
	if err := h.addVirtual(bootstrap); err == nil {
		h.stats.VirtualsReplaced++
	}
}

func (h *Host) aliveSlots() []*virtualSlot {
	out := make([]*virtualSlot, 0, len(h.slots))
	for _, s := range h.slots {
		if s.bot.Alive() {
			out = append(out, s)
		}
	}
	return out
}

// FullyContained reports whether every alive virtual node of the host
// is surrounded by non-bot peers according to isBenign (ground truth
// for experiments). A host with zero alive virtuals counts as
// contained.
func (h *Host) FullyContained(isBenign func(onion string) bool) bool {
	alive := h.Virtuals()
	if len(alive) == 0 {
		return true
	}
	for _, b := range alive {
		peers := b.PeerOnions()
		if len(peers) == 0 {
			continue // isolated counts toward containment
		}
		for _, p := range peers {
			if isBenign(p) {
				return false
			}
		}
	}
	return true
}

// Fleet is a set of SuperOnion hosts forming one botnet (Figure 8).
type Fleet struct {
	Hosts []*Host
}

// BuildFleet constructs n hosts of m virtual nodes with i peers each,
// wiring virtual node v of host k to virtual nodes of the previous i
// hosts on staggered slots — the Figure 8 topology generalized. The
// stagger (slot v+d-1 of host k-d) interleaves the per-slot rings into
// one connected overlay.
func BuildFleet(bn *core.BotNet, n int, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	f := &Fleet{}
	for k := 0; k < n; k++ {
		k := k
		host, err := NewHost(bn, cfg, fmt.Sprintf("host-%d", k), func(slot int) []string {
			var cands []string
			for d := 1; d <= cfg.I && d <= k; d++ {
				prev := f.Hosts[k-d]
				vs := prev.Virtuals()
				if len(vs) == 0 {
					continue
				}
				cands = append(cands, vs[(slot+d-1)%len(vs)].Onion())
			}
			return cands
		})
		if err != nil {
			return nil, err
		}
		f.Hosts = append(f.Hosts, host)
		bn.Run(2 * time.Second) // settle handshakes
	}
	for _, h := range f.Hosts {
		h.Start()
	}
	return f, nil
}

// VirtualCount reports alive virtual nodes across the fleet.
func (f *Fleet) VirtualCount() int {
	n := 0
	for _, h := range f.Hosts {
		n += len(h.Virtuals())
	}
	return n
}

// ContainedHosts counts fully contained hosts under ground truth.
func (f *Fleet) ContainedHosts(isBenign func(onion string) bool) int {
	n := 0
	for _, h := range f.Hosts {
		if h.FullyContained(isBenign) {
			n++
		}
	}
	return n
}
