package superonion

import (
	"testing"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/graph"
	"onionbots/internal/soap"
)

func buildFleet(t *testing.T, seed uint64, n int, cfg Config) (*core.BotNet, *Fleet) {
	t.Helper()
	bn, err := core.NewBotNet(seed, 15, core.BotConfig{DMin: 2, DMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	f, err := BuildFleet(bn, n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(6 * time.Minute) // settle + NoN gossip
	return bn, f
}

func TestFigure8Construction(t *testing.T) {
	// The paper's example: n=5 hosts, m=3 virtual nodes, i=2 peers.
	bn, f := buildFleet(t, 60, 5, Config{M: 3, I: 2})
	if got := f.VirtualCount(); got != 15 {
		t.Fatalf("virtual nodes = %d, want n*m = 15", got)
	}
	// Every virtual node should have roughly i peers (ring wiring gives
	// i except at construction edges, and DMin floor tops it up).
	for hi, h := range f.Hosts {
		for _, v := range h.Virtuals() {
			if d := v.Degree(); d == 0 {
				t.Fatalf("host %d virtual %s is isolated", hi, v.Onion())
			}
		}
	}
	// The overlay of all virtual nodes must be connected.
	g := bn.OverlayGraph()
	if n := graph.NumComponents(g); n != 1 {
		t.Fatalf("fleet overlay has %d components", n)
	}
}

func TestProbesFlowWhenHealthy(t *testing.T) {
	bn, f := buildFleet(t, 61, 4, Config{M: 3, I: 2, ProbeInterval: 5 * time.Minute})
	bn.Run(30 * time.Minute)
	for hi, h := range f.Hosts {
		st := h.Stats()
		if st.ProbesSent == 0 {
			t.Fatalf("host %d never probed", hi)
		}
		if st.SoapedDetected != 0 {
			t.Fatalf("host %d false-positive soap detections: %d", hi, st.SoapedDetected)
		}
	}
}

func TestHostDetectsAndReplacesSoapedVirtual(t *testing.T) {
	bn, f := buildFleet(t, 62, 4, Config{M: 3, I: 2, ProbeInterval: 5 * time.Minute})

	// Soap exactly one virtual node of host 0 by hand: surround it with
	// an attacker's clones.
	victim := f.Hosts[0].Virtuals()[0]
	a := soap.NewAttacker(bn.Net, bn.Master.NetKey(), soap.Config{RoundInterval: 15 * time.Second})
	a.Start(victim.Onion())
	// Give the attacker time to contain the single target; it will
	// discover others but we stop it before the campaign spreads far.
	bn.Run(20 * time.Minute)
	a.Stop()

	bn.Run(40 * time.Minute) // several probe cycles
	st := f.Hosts[0].Stats()
	if st.SoapedDetected == 0 {
		t.Fatalf("host never detected the soaped virtual node (victim degree=%d, clones=%d)",
			victim.Degree(), a.Stats().ClonesCreated)
	}
	if st.VirtualsReplaced == 0 {
		t.Fatal("host detected soaping but never replaced the virtual node")
	}
	if got := len(f.Hosts[0].Virtuals()); got < 3 {
		t.Fatalf("host down to %d virtual nodes, want 3 maintained", got)
	}
}

func TestFleetResistsFullSoapCampaign(t *testing.T) {
	// The paper's headline Section VII-B claim: the physical host is
	// immune as long as one of its m virtual nodes is not soaped —
	// probe detection plus replacement (re-bootstrapped through the
	// C&C's registered-bots hotlist, which clones cannot join) keeps
	// pulling hosts back out of containment. The race is parameterized
	// by probe frequency versus attacker wave rate; the fig8 experiment
	// shows the collapse when the attacker outpaces detection.
	bn, err := core.NewBotNet(63, 15, core.BotConfig{DMin: 2, DMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	bn.Master.HotlistSize = 3
	f, err := BuildFleet(bn, 4, Config{M: 3, I: 2, ProbeInterval: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(6 * time.Minute)
	entry := f.Hosts[0].Virtuals()[0]
	a := soap.NewAttacker(bn.Net, bn.Master.NetKey(),
		soap.Config{RoundInterval: 5 * time.Minute})
	a.Start(entry.Onion())

	isBenign := func(onion string) bool { return !a.IsClone(onion) }
	sumContained, samples := 0, 0
	for i := 0; i < 12; i++ {
		bn.Run(15 * time.Minute)
		sumContained += f.ContainedHosts(isBenign)
		samples++
	}
	avg := float64(sumContained) / float64(samples)
	if avg > float64(len(f.Hosts))/2 {
		t.Fatalf("average contained hosts %.2f/%d; fleet lost the race", avg, len(f.Hosts))
	}
	replaced := 0
	for _, h := range f.Hosts {
		replaced += h.Stats().VirtualsReplaced
	}
	if replaced == 0 {
		t.Fatal("fleet never replaced a virtual node; recovery loop dead")
	}
	t.Logf("avg contained %.2f/%d, virtuals replaced %d, clones %d",
		avg, len(f.Hosts), replaced, a.Stats().ClonesCreated)
}

func TestBaselineBotsAreContainedWhereFleetIsNot(t *testing.T) {
	// Comparison experiment: the same SOAP pressure fully contains a
	// basic (non-SuperOnion) population of the same size.
	bn, err := core.NewBotNet(63, 15, core.BotConfig{DMin: 2, DMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := bn.Grow(12, nil); err != nil { // same node count as 4 hosts x 3
		t.Fatal(err)
	}
	bn.Run(6 * time.Minute)
	a := soap.NewAttacker(bn.Net, bn.Master.NetKey(), soap.Config{})
	a.Start(bn.AliveBots()[0].Onion())
	bn.Run(3 * time.Hour)
	if frac := soap.ContainmentFraction(bn, a); frac < 0.9 {
		t.Fatalf("baseline containment only %.2f; expected near-total", frac)
	}
}
