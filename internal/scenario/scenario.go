// Package scenario is the curated library of named questions the
// simulator can answer and machine-check: each scenario couples a sweep
// specification (internal/experiment) with a declarative expectation
// block describing the *shape* the paper claims — a curve that falls
// with churn intensity, a threshold that lands inside an interval, a
// retry budget that buys back a minimum reachability gap. Running a
// scenario runs the sweep and evaluates the expectations against the
// aggregate, so "Fig 5 resilience degrades gracefully" is a CI gate,
// not a sentence in a README.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"onionbots/internal/experiment"
	"onionbots/internal/stats"
)

// Expectation statuses. ERROR means the expectation could not be
// evaluated at all (missing series, categorical axis under threshold_in,
// a single replicate under ci_excludes) — it fails the scenario just
// like FAIL, but points at the spec rather than the simulated shape.
const (
	StatusPass  = "PASS"
	StatusFail  = "FAIL"
	StatusError = "ERROR"
)

// Expectation is one machine-checked claim about a sweep's aggregate.
// Kind selects the check; the other fields parameterize it. All kinds
// share the (Result, Series, Stat) selectors, which address a series
// statistic exactly as Threshold does.
type Expectation struct {
	// Kind is "monotone", "bounded", "threshold_in", "gap", or
	// "ci_excludes".
	Kind string `json:"kind"`
	// Result restricts the check to result IDs matching this selector
	// (empty = all; trailing "*" matches by prefix).
	Result string `json:"result,omitempty"`
	// Series names the series whose statistic is checked.
	Series string `json:"series"`
	// Stat picks the per-task scalar ("first", "last", "min", "max";
	// "" defaults to "last").
	Stat string `json:"stat,omitempty"`
	// Axis names the swept axis monotone/threshold_in/gap walk.
	Axis string `json:"axis,omitempty"`

	// Direction is "decreasing" or "increasing" (monotone).
	Direction string `json:"direction,omitempty"`
	// Tolerance allows counter-direction wiggles up to this much
	// between adjacent axis values (monotone).
	Tolerance float64 `json:"tolerance,omitempty"`

	// Lo and Hi bound the pooled mean (bounded) or the interpolated
	// crossing position (threshold_in). Either side may be nil for a
	// one-sided check; bounds are inclusive.
	Lo *float64 `json:"lo,omitempty"`
	Hi *float64 `json:"hi,omitempty"`

	// Above and Below are the crossing bound (threshold_in); exactly
	// one must be set, as in Threshold.
	Above *float64 `json:"above,omitempty"`
	Below *float64 `json:"below,omitempty"`

	// From and To index the axis's listed values (gap); the check is
	// mean(To) − mean(From) ≥ MinGap in every group.
	From   int     `json:"from,omitempty"`
	To     int     `json:"to,omitempty"`
	MinGap float64 `json:"min_gap,omitempty"`

	// Excludes is the value the pooled 95% confidence interval must
	// not contain (ci_excludes).
	Excludes *float64 `json:"excludes,omitempty"`
}

// statName renders the effective stat for messages.
func (e Expectation) statName() string {
	if e.Stat == "" {
		return "last"
	}
	return e.Stat
}

// target renders the "series.stat" selector, with the result selector
// when one is set.
func (e Expectation) target() string {
	t := e.Series + "." + e.statName()
	if e.Result != "" {
		t = e.Result + ":" + t
	}
	return t
}

// Describe renders the expectation as the one-line claim the outcome
// table shows.
func (e Expectation) Describe() string {
	switch e.Kind {
	case "monotone":
		return fmt.Sprintf("%s %s along %s (tol %g)", e.target(), e.Direction, e.Axis, e.Tolerance)
	case "bounded":
		return fmt.Sprintf("mean %s in %s", e.target(), interval(e.Lo, e.Hi))
	case "threshold_in":
		return fmt.Sprintf("crossing of %s %s along %s lands in %s",
			e.target(), boundText(e.Above, e.Below), e.Axis, interval(e.Lo, e.Hi))
	case "gap":
		return fmt.Sprintf("%s[%s#%d] − %s[%s#%d] ≥ %g",
			e.target(), e.Axis, e.To, e.target(), e.Axis, e.From, e.MinGap)
	case "ci_excludes":
		v := "?"
		if e.Excludes != nil {
			v = fmt.Sprintf("%g", *e.Excludes)
		}
		return fmt.Sprintf("ci95 of %s excludes %s", e.target(), v)
	}
	return fmt.Sprintf("unknown expectation kind %q", e.Kind)
}

func interval(lo, hi *float64) string {
	l, h := "-inf", "+inf"
	if lo != nil {
		l = fmt.Sprintf("%g", *lo)
	}
	if hi != nil {
		h = fmt.Sprintf("%g", *hi)
	}
	return fmt.Sprintf("[%s, %s]", l, h)
}

func boundText(above, below *float64) string {
	if above != nil {
		return fmt.Sprintf("> %g", *above)
	}
	if below != nil {
		return fmt.Sprintf("< %g", *below)
	}
	return "(no bound)"
}

// validate rejects structurally broken expectations at registration
// time. It deliberately does not touch the filesystem (replay traces
// resolve at run time) and does not check axis sweeping — ScanAxis
// reports that at evaluation time, where it can name the spec.
func (e Expectation) validate() error {
	if e.Series == "" {
		return fmt.Errorf("expectation %s: no series named", e.Kind)
	}
	if !experiment.ValidStat(e.Stat) {
		return fmt.Errorf("expectation %s: unknown stat %q", e.Kind, e.Stat)
	}
	switch e.Kind {
	case "monotone":
		if e.Direction != "decreasing" && e.Direction != "increasing" {
			return fmt.Errorf("monotone: direction %q (want decreasing or increasing)", e.Direction)
		}
		if e.Axis == "" {
			return fmt.Errorf("monotone: no axis named")
		}
		if e.Tolerance < 0 {
			return fmt.Errorf("monotone: negative tolerance %g", e.Tolerance)
		}
	case "bounded":
		if e.Lo == nil && e.Hi == nil {
			return fmt.Errorf("bounded: neither lo nor hi set")
		}
	case "threshold_in":
		if e.Axis == "" {
			return fmt.Errorf("threshold_in: no axis named")
		}
		if (e.Above == nil) == (e.Below == nil) {
			return fmt.Errorf("threshold_in: exactly one of above/below must be set")
		}
		if e.Lo == nil && e.Hi == nil {
			return fmt.Errorf("threshold_in: neither lo nor hi set")
		}
	case "gap":
		if e.Axis == "" {
			return fmt.Errorf("gap: no axis named")
		}
		if e.From == e.To {
			return fmt.Errorf("gap: from and to index the same axis value %d", e.From)
		}
		if e.From < 0 || e.To < 0 {
			return fmt.Errorf("gap: negative axis index")
		}
	case "ci_excludes":
		if e.Excludes == nil {
			return fmt.Errorf("ci_excludes: no excluded value set")
		}
	default:
		return fmt.Errorf("unknown expectation kind %q (want monotone, bounded, threshold_in, gap, or ci_excludes)", e.Kind)
	}
	return nil
}

// Scenario is one named question: a sweep plus the expected shape of
// its answer.
type Scenario struct {
	// Name is the registry key ("churn-repair-lambda").
	Name string
	// Question is the one-sentence question the scenario answers.
	Question string
	// Figure names the paper figure/section the question comes from
	// ("Fig 5", "§VII-A"), or a PAPERS.md pointer for follow-on work.
	Figure string
	// Sweep is the grid to run. Its Name is overwritten with the
	// scenario name so aggregates are addressable.
	Sweep *experiment.Sweep
	// Expect is the expectation block evaluated against the aggregate.
	Expect []Expectation
}

// Outcome is one evaluated expectation.
type Outcome struct {
	Expectation Expectation `json:"expectation"`
	Status      string      `json:"status"`
	// Detail says what was measured — and on FAIL/ERROR, which
	// series/axis value is the offender.
	Detail string `json:"detail"`
}

// Report is a scenario run: the sweep's task results and aggregate,
// plus the evaluated expectations.
type Report struct {
	Scenario  *Scenario
	Tasks     []experiment.TaskResult
	Aggregate *experiment.Result
	Outcomes  []Outcome
}

// Passed reports whether every expectation PASSed.
func (r *Report) Passed() bool {
	for _, o := range r.Outcomes {
		if o.Status != StatusPass {
			return false
		}
	}
	return true
}

// Result renders the outcomes as a table-shaped experiment result, so
// scenario output flows through the same Render/CSV/JSON paths as
// everything else.
func (r *Report) Result() *experiment.Result {
	res := &experiment.Result{
		ID:     "scenario-" + r.Scenario.Name,
		Title:  r.Scenario.Question,
		Header: []string{"status", "expectation", "detail"},
	}
	for _, o := range r.Outcomes {
		res.Rows = append(res.Rows, []string{o.Status, o.Expectation.Describe(), o.Detail})
	}
	verdict := StatusPass
	if !r.Passed() {
		verdict = StatusFail
	}
	res.AddNote("figure: %s", r.Scenario.Figure)
	res.AddNote("verdict: %s (%d expectations over %d tasks)", verdict, len(r.Outcomes), len(r.Tasks))
	return res
}

// registry of named scenarios, keyed by Name.
var registry = map[string]*Scenario{}

// Register adds a scenario. It panics on duplicates or structurally
// invalid definitions: registration happens at init time, and a broken
// library is a programming error, not an input error.
func Register(sc Scenario) {
	if sc.Name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := registry[sc.Name]; dup {
		panic("scenario: duplicate " + sc.Name)
	}
	if sc.Question == "" || sc.Figure == "" {
		panic("scenario " + sc.Name + ": question and figure are required")
	}
	if sc.Sweep == nil || len(sc.Sweep.Experiments) == 0 {
		panic("scenario " + sc.Name + ": no sweep")
	}
	if len(sc.Expect) == 0 {
		panic("scenario " + sc.Name + ": no expectations")
	}
	for i, e := range sc.Expect {
		if err := e.validate(); err != nil {
			panic(fmt.Sprintf("scenario %s: expect[%d]: %v", sc.Name, i, err))
		}
	}
	sc.Sweep.Name = sc.Name
	registry[sc.Name] = &sc
}

// Lookup returns a registered scenario.
func Lookup(name string) (*Scenario, bool) {
	sc, ok := registry[name]
	return sc, ok
}

// Names returns all registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes a scenario: expand the sweep (forcing quick presets when
// quick is set), run it on the given runner (nil = defaults), aggregate,
// and evaluate the expectation block. The error covers infrastructure
// problems (bad grid); failed expectations are Outcomes, not errors.
func Run(sc *Scenario, quick bool, runner *experiment.Runner) (*Report, error) {
	s := *sc.Sweep
	if quick {
		s.Quick = true
	}
	tasks, err := s.Tasks()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if runner == nil {
		runner = &experiment.Runner{}
	}
	trs, err := runner.Run(tasks)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return &Report{
		Scenario:  sc,
		Tasks:     trs,
		Aggregate: s.Aggregate(trs),
		Outcomes:  Evaluate(&s, trs, sc.Expect),
	}, nil
}

// Evaluate checks every expectation against a sweep's task results.
func Evaluate(s *experiment.Sweep, trs []experiment.TaskResult, expect []Expectation) []Outcome {
	out := make([]Outcome, 0, len(expect))
	for _, e := range expect {
		out = append(out, evaluate(s, trs, e))
	}
	return out
}

func evaluate(s *experiment.Sweep, trs []experiment.TaskResult, e Expectation) Outcome {
	status, detail := func() (string, string) {
		switch e.Kind {
		case "monotone":
			return evalMonotone(s, trs, e)
		case "bounded":
			return evalBounded(trs, e)
		case "threshold_in":
			return evalThresholdIn(s, trs, e)
		case "gap":
			return evalGap(s, trs, e)
		case "ci_excludes":
			return evalCIExcludes(trs, e)
		}
		return StatusError, fmt.Sprintf("unknown expectation kind %q", e.Kind)
	}()
	return Outcome{Expectation: e, Status: status, Detail: detail}
}

// pool collects the selected series statistic from every successful
// task, in task order.
func pool(trs []experiment.TaskResult, e Expectation) []float64 {
	var vals []float64
	for _, tr := range trs {
		if tr.Err != nil {
			continue
		}
		for _, r := range tr.Results {
			if !experiment.MatchResultID(e.Result, r.ID) {
				continue
			}
			for _, sr := range r.Series {
				if sr.Name == e.Series {
					vals = append(vals, experiment.SeriesStat(sr, e.Stat))
				}
			}
		}
	}
	return vals
}

func evalMonotone(s *experiment.Sweep, trs []experiment.TaskResult, e Expectation) (string, string) {
	scan, err := s.ScanAxis(trs, e.Result, e.Series, e.Stat, e.Axis)
	if err != nil {
		return StatusError, err.Error()
	}
	sign := 1.0
	if e.Direction == "decreasing" {
		sign = -1.0
	}
	groups := 0
	for _, g := range scan.Groups {
		var cells []experiment.AxisCell
		for _, c := range g.Cells {
			if c.N > 0 {
				cells = append(cells, c)
			}
		}
		if len(cells) < 2 {
			return StatusError, fmt.Sprintf("series %q has data at %d axis value(s) in group %s — nothing to order",
				e.Series, len(cells), g.Group)
		}
		groups++
		for i := 1; i < len(cells); i++ {
			prev, cur := cells[i-1], cells[i]
			if sign*(cur.Mean-prev.Mean) < -e.Tolerance {
				return StatusFail, fmt.Sprintf(
					"series %q not %s along %s: %s=%s→%s moved %.4g→%.4g (group %s, tol %g)",
					e.Series, e.Direction, e.Axis, scan.Axis, prev.Label, cur.Label,
					prev.Mean, cur.Mean, g.Group, e.Tolerance)
			}
		}
	}
	if groups == 0 {
		return StatusError, fmt.Sprintf("no data for series %q on axis %s", e.Series, e.Axis)
	}
	return StatusPass, fmt.Sprintf("%s across %d group(s)", e.Direction, groups)
}

func evalBounded(trs []experiment.TaskResult, e Expectation) (string, string) {
	vals := pool(trs, e)
	if len(vals) == 0 {
		return StatusError, fmt.Sprintf("no data for series %q", e.Series)
	}
	var w stats.Welford
	for _, v := range vals {
		w.Add(v)
	}
	mean := w.Mean()
	if e.Lo != nil && mean < *e.Lo {
		return StatusFail, fmt.Sprintf("mean %s = %.4g below lo %g (%d tasks)", e.target(), mean, *e.Lo, len(vals))
	}
	if e.Hi != nil && mean > *e.Hi {
		return StatusFail, fmt.Sprintf("mean %s = %.4g above hi %g (%d tasks)", e.target(), mean, *e.Hi, len(vals))
	}
	return StatusPass, fmt.Sprintf("mean %s = %.4g over %d task(s)", e.target(), mean, len(vals))
}

func evalThresholdIn(s *experiment.Sweep, trs []experiment.TaskResult, e Expectation) (string, string) {
	th := experiment.Threshold{
		Result: e.Result, Series: e.Series, Stat: e.Stat, Axis: e.Axis,
		Above: e.Above, Below: e.Below,
	}
	scan, err := s.ScanAxis(trs, e.Result, e.Series, e.Stat, e.Axis)
	if err != nil {
		return StatusError, err.Error()
	}
	if !scan.Numeric {
		return StatusError, fmt.Sprintf(
			"axis %s is categorical here — threshold_in needs a numeric axis to place a crossing on", e.Axis)
	}
	if len(scan.Groups) == 0 {
		return StatusError, fmt.Sprintf("no data for series %q on axis %s", e.Series, e.Axis)
	}
	var labels []string
	for _, g := range scan.Groups {
		label, x, _, scanned, found := th.Crossing(scan, g)
		if !found {
			return StatusFail, fmt.Sprintf("series %q never crosses %s along %s (%d value(s) scanned, group %s)",
				e.Series, boundText(e.Above, e.Below), e.Axis, scanned, g.Group)
		}
		if (e.Lo != nil && x < *e.Lo) || (e.Hi != nil && x > *e.Hi) {
			return StatusFail, fmt.Sprintf("crossing %s outside %s (group %s)",
				label, interval(e.Lo, e.Hi), g.Group)
		}
		labels = append(labels, label)
	}
	return StatusPass, fmt.Sprintf("crossing at %s in %s", strings.Join(labels, ", "), interval(e.Lo, e.Hi))
}

func evalGap(s *experiment.Sweep, trs []experiment.TaskResult, e Expectation) (string, string) {
	scan, err := s.ScanAxis(trs, e.Result, e.Series, e.Stat, e.Axis)
	if err != nil {
		return StatusError, err.Error()
	}
	if len(scan.Groups) == 0 {
		return StatusError, fmt.Sprintf("no data for series %q on axis %s", e.Series, e.Axis)
	}
	var gaps []string
	for _, g := range scan.Groups {
		if e.From >= len(g.Cells) || e.To >= len(g.Cells) {
			return StatusError, fmt.Sprintf("axis %s has %d values; gap indexes %d and %d",
				e.Axis, len(g.Cells), e.From, e.To)
		}
		from, to := g.Cells[e.From], g.Cells[e.To]
		if from.N == 0 || to.N == 0 {
			return StatusError, fmt.Sprintf("series %q missing at %s=%s or %s=%s (group %s)",
				e.Series, e.Axis, from.Label, e.Axis, to.Label, g.Group)
		}
		gap := to.Mean - from.Mean
		if gap < e.MinGap {
			return StatusFail, fmt.Sprintf(
				"gap %s=%s→%s is %.4g (%.4g→%.4g), want ≥ %g (group %s)",
				e.Axis, from.Label, to.Label, gap, from.Mean, to.Mean, e.MinGap, g.Group)
		}
		gaps = append(gaps, fmt.Sprintf("%.4g", gap))
	}
	return StatusPass, fmt.Sprintf("gap %s ≥ %g", strings.Join(gaps, ", "), e.MinGap)
}

func evalCIExcludes(trs []experiment.TaskResult, e Expectation) (string, string) {
	vals := pool(trs, e)
	if len(vals) == 0 {
		return StatusError, fmt.Sprintf("no data for series %q", e.Series)
	}
	mean, _, half, ok := stats.MeanCI95(vals)
	if !ok {
		return StatusError, fmt.Sprintf("series %q has %d replicate(s) — a confidence interval needs at least 2",
			e.Series, len(vals))
	}
	lo, hi := mean-half, mean+half
	if *e.Excludes >= lo && *e.Excludes <= hi {
		return StatusFail, fmt.Sprintf("ci95 of %s = [%.4g, %.4g] contains %g (n=%d)",
			e.target(), lo, hi, *e.Excludes, len(vals))
	}
	return StatusPass, fmt.Sprintf("ci95 of %s = [%.4g, %.4g] excludes %g (n=%d)",
		e.target(), lo, hi, *e.Excludes, len(vals))
}

// f is a pointer-literal helper for expectation bounds.
func f(v float64) *float64 { return &v }
