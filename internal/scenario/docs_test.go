package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readRepoDoc loads a file relative to the repository root.
func readRepoDoc(t *testing.T, parts ...string) string {
	t.Helper()
	path := filepath.Join(append([]string{"..", ".."}, parts...)...)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing doc: %v", err)
	}
	return string(data)
}

// TestHandbookCataloguesScenarioLibrary: the handbook's scenario
// chapter promises one entry per registered scenario; adding a scenario
// without documenting it fails CI.
func TestHandbookCataloguesScenarioLibrary(t *testing.T) {
	handbook := readRepoDoc(t, "docs", "EXPERIMENTS.md")
	for _, name := range Names() {
		if !strings.Contains(handbook, "`"+name+"`") {
			t.Errorf("docs/EXPERIMENTS.md does not catalogue scenario %q", name)
		}
	}
}

// TestReadmeMentionsScenarioRunner: the README quickstart must show the
// -scenario entry point.
func TestReadmeMentionsScenarioRunner(t *testing.T) {
	readme := readRepoDoc(t, "README.md")
	if !strings.Contains(readme, "-scenario") {
		t.Error("README quickstart does not mention the -scenario runner")
	}
	for _, name := range []string{"churn-repair-lambda"} {
		if !strings.Contains(readme, "`"+name+"`") {
			t.Errorf("README does not name headline scenario %q", name)
		}
	}
}

// TestReplayTraceExistsAtDocumentedPath: replay scenarios resolve their
// trace file at run time, CWD-relative; make sure the committed trace
// actually sits where the library points.
func TestReplayTraceExistsAtDocumentedPath(t *testing.T) {
	for _, name := range Names() {
		sc, _ := Lookup(name)
		for _, cs := range sc.Sweep.Churn {
			if cs.TraceFile == "" {
				continue
			}
			path := filepath.Join(append([]string{"..", ".."}, strings.Split(cs.TraceFile, "/")...)...)
			if _, err := os.Stat(path); err != nil {
				t.Errorf("scenario %s points at missing trace: %v", name, err)
			}
		}
	}
}
