package scenario

import (
	"strings"
	"testing"

	"onionbots/internal/churn"
	"onionbots/internal/experiment"
)

// fixture builds synthetic task results over a sweep grid with the
// series value a pure function of the task label — no experiment runs,
// so evaluation mechanics are tested exactly.
func fixture(t *testing.T, s *experiment.Sweep, series string, y func(label string) float64) []experiment.TaskResult {
	t.Helper()
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]experiment.TaskResult, 0, len(tasks))
	for _, task := range tasks {
		trs = append(trs, experiment.TaskResult{Task: task, Results: []*experiment.Result{{
			ID: s.Experiments[0],
			Series: []experiment.Series{
				{Name: series, Points: []experiment.Point{{X: 0, Y: y(task.Label)}}},
			},
		}}})
	}
	return trs
}

// nSweep is the shared numeric fixture: an n axis with the series mean
// rising linearly (y = n/1000), so every crossing and gap is analytic.
func nSweep(trials int) *experiment.Sweep {
	return &experiment.Sweep{
		Name:        "fix",
		Experiments: []string{"fig6"},
		Ns:          []int{100, 200, 300},
		Seeds:       []uint64{1},
		Trials:      trials,
	}
}

func linearY(label string) float64 {
	switch {
	case strings.Contains(label, "/n=100"):
		return 0.1
	case strings.Contains(label, "/n=200"):
		return 0.2
	default:
		return 0.3
	}
}

// TestEvaluateExpectationTable is the satellite table: one (fixture,
// expectation, want status) row per expectation kind, including
// tolerance edges and intervals that exclude the crossing. A FAIL must
// name the offending series or axis value in its detail.
func TestEvaluateExpectationTable(t *testing.T) {
	cases := []struct {
		name       string
		expect     Expectation
		want       string
		wantDetail string // substring the detail must carry
	}{
		// --- monotone ---
		{"monotone increasing passes",
			Expectation{Kind: "monotone", Series: "q", Axis: "n", Direction: "increasing"},
			StatusPass, "increasing"},
		{"monotone decreasing fails naming the step",
			Expectation{Kind: "monotone", Series: "q", Axis: "n", Direction: "decreasing"},
			StatusFail, "n=100→200"},
		{"monotone tolerance edge is inclusive",
			// Each step rises exactly 0.1; a 0.1 tolerance forgives it.
			Expectation{Kind: "monotone", Series: "q", Axis: "n", Direction: "decreasing", Tolerance: 0.1},
			StatusPass, ""},
		{"monotone just under tolerance fails",
			Expectation{Kind: "monotone", Series: "q", Axis: "n", Direction: "decreasing", Tolerance: 0.0999},
			StatusFail, "q"},
		{"monotone unknown series errors",
			Expectation{Kind: "monotone", Series: "ghost", Axis: "n", Direction: "increasing"},
			StatusError, "ghost"},
		{"monotone unswept axis errors",
			Expectation{Kind: "monotone", Series: "q", Axis: "k", Direction: "increasing"},
			StatusError, "not swept"},

		// --- bounded ---
		{"bounded inside passes",
			Expectation{Kind: "bounded", Series: "q", Lo: f(0.1), Hi: f(0.3)},
			StatusPass, "0.2"},
		{"bounded below lo fails",
			Expectation{Kind: "bounded", Series: "q", Lo: f(0.25)},
			StatusFail, "below lo"},
		{"bounded above hi fails",
			Expectation{Kind: "bounded", Series: "q", Hi: f(0.15)},
			StatusFail, "above hi"},
		{"bounded missing series errors",
			Expectation{Kind: "bounded", Series: "ghost", Lo: f(0)},
			StatusError, "ghost"},

		// --- threshold_in ---
		{"threshold_in brackets the analytic crossing",
			// y crosses 0.25 at n = 250 exactly.
			Expectation{Kind: "threshold_in", Series: "q", Axis: "n", Above: f(0.25), Lo: f(240), Hi: f(260)},
			StatusPass, "n≈250"},
		{"threshold_in interval excluding the crossing fails",
			Expectation{Kind: "threshold_in", Series: "q", Axis: "n", Above: f(0.25), Lo: f(100), Hi: f(200)},
			StatusFail, "outside"},
		{"threshold_in never crossed fails",
			Expectation{Kind: "threshold_in", Series: "q", Axis: "n", Above: f(9), Lo: f(100), Hi: f(300)},
			StatusFail, "never crosses"},

		// --- gap ---
		{"gap meets the minimum",
			Expectation{Kind: "gap", Series: "q", Axis: "n", From: 0, To: 2, MinGap: 0.15},
			StatusPass, "0.2"},
		{"gap too small fails naming both axis values",
			Expectation{Kind: "gap", Series: "q", Axis: "n", From: 0, To: 2, MinGap: 0.25},
			StatusFail, "n=100→300"},
		{"gap index out of range errors",
			Expectation{Kind: "gap", Series: "q", Axis: "n", From: 0, To: 7, MinGap: 0.1},
			StatusError, "3 values"},

		// --- ci_excludes ---
		{"ci excludes a far value",
			Expectation{Kind: "ci_excludes", Series: "q", Excludes: f(0.9)},
			StatusPass, "excludes 0.9"},
		{"ci containing the value fails",
			Expectation{Kind: "ci_excludes", Series: "q", Excludes: f(0.2)},
			StatusFail, "contains 0.2"},
	}
	s := nSweep(2)
	trs := fixture(t, s, "q", linearY)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Evaluate(s, trs, []Expectation{tc.expect})[0]
			if got.Status != tc.want {
				t.Fatalf("status = %s (%s), want %s", got.Status, got.Detail, tc.want)
			}
			if !strings.Contains(got.Detail, tc.wantDetail) {
				t.Fatalf("detail %q does not mention %q", got.Detail, tc.wantDetail)
			}
		})
	}
}

// TestThresholdInCategoricalAxisErrors: a crossing position only exists
// on a numeric axis; a mixed-process churn axis must ERROR, not guess.
func TestThresholdInCategoricalAxisErrors(t *testing.T) {
	s := &experiment.Sweep{
		Name:        "cat",
		Experiments: []string{"churn-repair"},
		Churn: []churn.Spec{
			{Process: "poisson", Leave: 8},
			{Process: "diurnal", Join: 2, Leave: 2, Amplitude: 0.8},
		},
		Seeds: []uint64{1},
	}
	trs := fixture(t, s, "quality", func(string) float64 { return 0.1 })
	got := Evaluate(s, trs, []Expectation{
		{Kind: "threshold_in", Series: "quality", Axis: "churn", Below: f(0.5), Lo: f(0), Hi: f(10)},
	})[0]
	if got.Status != StatusError || !strings.Contains(got.Detail, "categorical") {
		t.Fatalf("got %s (%s), want ERROR about a categorical axis", got.Status, got.Detail)
	}
}

// TestCIExcludesSingleReplicateErrors: one replicate carries no
// interval, and the outcome must say so rather than fail or pass.
func TestCIExcludesSingleReplicateErrors(t *testing.T) {
	s := &experiment.Sweep{
		Name:        "one",
		Experiments: []string{"fig6"},
		Ns:          []int{100},
		Seeds:       []uint64{1},
	}
	trs := fixture(t, s, "q", func(string) float64 { return 0.5 })
	got := Evaluate(s, trs, []Expectation{
		{Kind: "ci_excludes", Series: "q", Excludes: f(0)},
	})[0]
	if got.Status != StatusError || !strings.Contains(got.Detail, "at least 2") {
		t.Fatalf("got %s (%s), want ERROR about replicate count", got.Status, got.Detail)
	}
}

// TestMonotonePerGroupFailureNamesGroup: with a second axis swept, a
// violation in one group must name that group.
func TestMonotonePerGroupFailureNamesGroup(t *testing.T) {
	s := &experiment.Sweep{
		Name:        "grp",
		Experiments: []string{"fig6"},
		Ns:          []int{100, 200},
		Seeds:       []uint64{1, 2},
	}
	trs := fixture(t, s, "q", func(label string) float64 {
		// Seed 2's curve dips where seed 1's rises.
		if strings.Contains(label, "seed=2") && strings.Contains(label, "/n=200") {
			return 0.05
		}
		return linearY(label)
	})
	got := Evaluate(s, trs, []Expectation{
		{Kind: "monotone", Series: "q", Axis: "n", Direction: "increasing"},
	})[0]
	if got.Status != StatusFail || !strings.Contains(got.Detail, "seed=2") {
		t.Fatalf("got %s (%s), want FAIL naming the seed=2 group", got.Status, got.Detail)
	}
}

func TestReportPassedAndResultShape(t *testing.T) {
	s := nSweep(1)
	trs := fixture(t, s, "q", linearY)
	sc := &Scenario{Name: "shape", Question: "q?", Figure: "Fig 0", Sweep: s}
	rep := &Report{
		Scenario:  sc,
		Tasks:     trs,
		Aggregate: s.Aggregate(trs),
		Outcomes: Evaluate(s, trs, []Expectation{
			{Kind: "bounded", Series: "q", Lo: f(0)},
			{Kind: "bounded", Series: "q", Lo: f(0.9)},
		}),
	}
	if rep.Passed() {
		t.Fatal("report with a failing expectation claims Passed")
	}
	res := rep.Result()
	if res.ID != "scenario-shape" || len(res.Rows) != 2 {
		t.Fatalf("result shape: id=%q rows=%d", res.ID, len(res.Rows))
	}
	if res.Rows[0][0] != StatusPass || res.Rows[1][0] != StatusFail {
		t.Fatalf("status cells = %q, %q", res.Rows[0][0], res.Rows[1][0])
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "verdict: FAIL") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes omit the FAIL verdict: %v", res.Notes)
	}
}

// TestLibraryShape pins the registry contract the CLI and docs rely
// on: at least 10 scenarios, sorted stable names, and every entry's
// sweep expands without running anything.
func TestLibraryShape(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("library has %d scenarios, the issue requires >= 10: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, name := range names {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed a listed scenario", name)
		}
		if sc.Sweep.Name != name {
			t.Errorf("%s: sweep name %q not aligned with scenario name", name, sc.Sweep.Name)
		}
		if _, err := sc.Sweep.Tasks(); err != nil {
			t.Errorf("%s: sweep does not expand: %v", name, err)
		}
		if len(sc.Expect) == 0 {
			t.Errorf("%s: no expectations", name)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Fatal("Lookup invented a scenario")
	}
}

// TestRegisterRejectsBrokenDefinitions: the registry must refuse
// structurally invalid scenarios at init time.
func TestRegisterRejectsBrokenDefinitions(t *testing.T) {
	sweep := func() *experiment.Sweep {
		return &experiment.Sweep{Experiments: []string{"fig6"}, Ns: []int{100}}
	}
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"empty name", Scenario{Question: "q", Figure: "f", Sweep: sweep(),
			Expect: []Expectation{{Kind: "bounded", Series: "q", Lo: f(0)}}}},
		{"duplicate name", Scenario{Name: "fig5-resilience", Question: "q", Figure: "f", Sweep: sweep(),
			Expect: []Expectation{{Kind: "bounded", Series: "q", Lo: f(0)}}}},
		{"no expectations", Scenario{Name: "x1", Question: "q", Figure: "f", Sweep: sweep()}},
		{"unknown kind", Scenario{Name: "x2", Question: "q", Figure: "f", Sweep: sweep(),
			Expect: []Expectation{{Kind: "sorted", Series: "q"}}}},
		{"monotone without direction", Scenario{Name: "x3", Question: "q", Figure: "f", Sweep: sweep(),
			Expect: []Expectation{{Kind: "monotone", Series: "q", Axis: "n"}}}},
		{"bounded without bounds", Scenario{Name: "x4", Question: "q", Figure: "f", Sweep: sweep(),
			Expect: []Expectation{{Kind: "bounded", Series: "q"}}}},
		{"threshold_in with both bounds", Scenario{Name: "x5", Question: "q", Figure: "f", Sweep: sweep(),
			Expect: []Expectation{{Kind: "threshold_in", Series: "q", Axis: "n",
				Above: f(1), Below: f(2), Lo: f(0)}}}},
		{"gap onto itself", Scenario{Name: "x6", Question: "q", Figure: "f", Sweep: sweep(),
			Expect: []Expectation{{Kind: "gap", Series: "q", Axis: "n", From: 1, To: 1}}}},
		{"ci_excludes without value", Scenario{Name: "x7", Question: "q", Figure: "f", Sweep: sweep(),
			Expect: []Expectation{{Kind: "ci_excludes", Series: "q"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("Register accepted a broken scenario")
				}
			}()
			Register(tc.sc)
		})
	}
}

// TestRunScenarioEndToEnd runs the acceptance scenario for real in
// quick mode and checks the headline artifacts: every expectation
// PASSes and the aggregate carries an interpolated "λ≈…" threshold row
// with a CI column sized from the trial count.
func TestRunScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	sc, ok := Lookup("churn-repair-lambda")
	if !ok {
		t.Fatal("acceptance scenario missing")
	}
	rep, err := Run(sc, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if o.Status != StatusPass {
			t.Errorf("%s: %s — %s", o.Status, o.Expectation.Describe(), o.Detail)
		}
	}
	var interpolated, ci bool
	for _, row := range rep.Aggregate.Rows {
		if row[1] == "(threshold)" && strings.HasPrefix(row[4], "λ≈") {
			interpolated = true
		}
		if strings.Contains(row[2], "mean±sd") && strings.HasPrefix(row[10], "±") {
			ci = true
		}
	}
	if !interpolated {
		t.Error("aggregate has no interpolated λ≈ threshold row")
	}
	if !ci {
		t.Error("aggregate has no trial-count-sized CI cell")
	}
}
