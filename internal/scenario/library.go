package scenario

import (
	"onionbots/internal/churn"
	"onionbots/internal/experiment"
	"onionbots/internal/faults"
	"onionbots/internal/soap"
)

// The library: every named question the simulator answers and
// machine-checks. Numeric calibration (interval endpoints, gap sizes,
// tolerances) is against quick-mode presets, which are deterministic
// per (seed, label) — run `onionsim -scenario all -quick` to check
// them all. docs/EXPERIMENTS.md catalogues each entry; docs_test.go
// enforces that catalogue stays complete.
func init() {
	Register(Scenario{
		Name:     "fig5-resilience",
		Question: "Does the DDSR overlay stay connected under node deletion while a plain random graph shatters?",
		Figure:   "Fig 5",
		Sweep: &experiment.Sweep{
			Experiments: []string{"fig5"},
			Seeds:       []uint64{1},
		},
		Expect: []Expectation{
			// The paper's headline: the self-repairing overlay holds one
			// component through essentially total deletion...
			{Kind: "bounded", Result: "fig5-components-*", Series: "DDSR", Stat: "max", Hi: f(1)},
			// ...while the unrepaired graph fragments into many.
			{Kind: "bounded", Result: "fig5-components-*", Series: "Normal", Stat: "max", Lo: f(5)},
		},
	})

	Register(Scenario{
		Name:     "fig6-partition-threshold",
		Question: "Does the first-partition threshold grow with graph size, near the paper's 0.4·n line?",
		Figure:   "Fig 6",
		Sweep: &experiment.Sweep{
			Experiments: []string{"fig6"},
			Ns:          []int{600, 1000, 1400},
			Seeds:       []uint64{1},
			Thresholds: []experiment.Threshold{
				{Series: "Graph", Axis: "n", Above: f(400)},
			},
		},
		Expect: []Expectation{
			{Kind: "monotone", Series: "Graph", Axis: "n", Direction: "increasing"},
			// 400 deletions ≈ 0.4·1000: the crossing must land between the
			// grid points bracketing n=1000, interpolated ("n≈…").
			{Kind: "threshold_in", Series: "Graph", Axis: "n", Above: f(400), Lo: f(600), Hi: f(1000)},
		},
	})

	Register(Scenario{
		Name:     "churn-repair-lambda",
		Question: "At what Poisson leave rate λ does DDSR repair quality collapse below 0.8?",
		Figure:   "Fig 5 under §IV-C dynamics",
		Sweep: &experiment.Sweep{
			Experiments: []string{"churn-repair"},
			Churn: []churn.Spec{
				{Process: "poisson", Leave: 2},
				{Process: "poisson", Leave: 8},
				{Process: "poisson", Leave: 16},
				{Process: "poisson", Leave: 32},
			},
			Seeds:  []uint64{1},
			Trials: 2,
			Thresholds: []experiment.Threshold{
				{Series: "quality", Axis: "churn", Below: f(0.8)},
			},
		},
		Expect: []Expectation{
			{Kind: "monotone", Series: "quality", Axis: "churn", Direction: "decreasing", Tolerance: 0.02},
			// Repair keeps up through λ=8 and has collapsed by λ=16; the
			// interpolated crossing ("λ≈…") must land between them.
			{Kind: "threshold_in", Series: "quality", Axis: "churn", Below: f(0.8), Lo: f(8), Hi: f(16)},
		},
	})

	Register(Scenario{
		Name:     "churn-hotlist-staleness",
		Question: "Does hotlist staleness rise with churn intensity while the registry only ever grows?",
		Figure:   "§V-B bootstrap under §IV-C dynamics",
		Sweep: &experiment.Sweep{
			Experiments: []string{"churn-hotlist"},
			Churn: []churn.Spec{
				{Process: "poisson", Join: 1, Leave: 1},
				{Process: "poisson", Join: 4, Leave: 4},
				{Process: "poisson", Join: 12, Leave: 12},
			},
			Seeds:  []uint64{1},
			Trials: 2,
		},
		Expect: []Expectation{
			// Join and leave both vary, so this axis is categorical —
			// monotone walks the listed order.
			{Kind: "monotone", Series: "staleness", Axis: "churn", Direction: "increasing", Tolerance: 0.05},
			{Kind: "bounded", Series: "peak-staleness", Lo: f(0.9)},
			{Kind: "monotone", Series: "registered", Axis: "churn", Direction: "increasing"},
		},
	})

	Register(Scenario{
		Name:     "churn-soap-containment",
		Question: "Does population movement break SOAP containment that holds against a calm population?",
		Figure:   "§VII-A × §IV-C composition",
		Sweep: &experiment.Sweep{
			Experiments: []string{"churn-soap"},
			Churn: []churn.Spec{
				{Process: "poisson", Join: 0.5, Leave: 0.5},
				{Process: "poisson", Join: 6, Leave: 6},
			},
			Seeds:  []uint64{1},
			Trials: 2,
		},
		Expect: []Expectation{
			// Calm (index 0) beats stormy (index 1) by a wide containment
			// margin: churn is the campaign's real adversary.
			{Kind: "gap", Series: "final-contained", Axis: "churn", From: 1, To: 0, MinGap: 0.3},
			{Kind: "bounded", Series: "contained", Lo: f(0.5)},
		},
	})

	Register(Scenario{
		Name:     "soap-clone-budget",
		Question: "How many clones does a SOAP campaign need before containment holds through its worst moment?",
		Figure:   "Fig 7 / §VII-A",
		Sweep: &experiment.Sweep{
			Experiments: []string{"churn-soap"},
			Soap: []soap.Spec{
				{Clones: 4},
				{Clones: 16},
				{Clones: 64},
			},
			Seeds:  []uint64{1},
			Trials: 2,
			Thresholds: []experiment.Threshold{
				{Series: "min-contained", Axis: "soap", Above: f(0.5)},
			},
		},
		Expect: []Expectation{
			{Kind: "monotone", Series: "min-contained", Axis: "soap", Direction: "increasing"},
			// The budget that keeps worst-case containment above half
			// lands between 4 and 16 clones ("clones≈…", interpolated).
			{Kind: "threshold_in", Series: "min-contained", Axis: "soap", Above: f(0.5), Lo: f(4), Hi: f(16)},
		},
	})

	Register(Scenario{
		Name:     "pow-pricing",
		Question: "Does proof-of-work hardening shut out a non-paying SOAP attacker and tax a paying one?",
		Figure:   "§VII-A hardening",
		Sweep: &experiment.Sweep{
			Experiments: []string{"pow"},
			Seeds:       []uint64{1},
		},
		Expect: []Expectation{
			// Scenario order: basic/basic, hardened/basic, hardened/paying.
			// Basic bots fall to the baseline campaign...
			{Kind: "bounded", Series: "contained", Stat: "first", Lo: f(0.9)},
			// ...hardening shuts a non-paying attacker out completely...
			{Kind: "bounded", Series: "contained", Stat: "min", Hi: f(0)},
			// ...and a paying attacker burns millions of hashes to get
			// back in.
			{Kind: "bounded", Series: "attacker-hashes", Stat: "last", Lo: f(1e6)},
		},
	})

	Register(Scenario{
		Name:     "hsdir-outage-retries",
		Question: "Does a client retry budget buy back C&C reachability through a targeted 30% HSDir outage?",
		Figure:   "§VI-A fault plane",
		Sweep: &experiment.Sweep{
			Experiments: []string{"hsdir-outage"},
			Faults: []faults.Spec{
				{OutageFrac: 0.3, OutageAtH: 2, OutageTargeted: true, RetryAttempts: 1},
				{OutageFrac: 0.3, OutageAtH: 2, OutageTargeted: true, RetryAttempts: 2, RetryBackoffS: 1800},
				{OutageFrac: 0.3, OutageAtH: 2, OutageTargeted: true, RetryAttempts: 4, RetryBackoffS: 1800},
			},
			Seeds:  []uint64{1},
			Trials: 2,
		},
		Expect: []Expectation{
			{Kind: "monotone", Series: "outage-window-reachability", Axis: "faults", Direction: "increasing"},
			// No-retry clients lose the window entirely; a 4-attempt
			// budget restores it — the gap is the retry budget's value.
			{Kind: "gap", Series: "outage-window-reachability", Axis: "faults", From: 0, To: 2, MinGap: 0.5},
		},
	})

	Register(Scenario{
		Name:     "relay-outage-grind",
		Question: "Does the overlay ride out a sustained relay crash/restart grind without losing cohesion?",
		Figure:   "§VI fault plane",
		Sweep: &experiment.Sweep{
			Experiments: []string{"relay-outage"},
			Faults: []faults.Spec{
				{CrashRate: 12, RestartH: 8, RetryAttempts: 4, RetryBackoffS: 60},
			},
			Seeds:  []uint64{1},
			Trials: 3,
		},
		Expect: []Expectation{
			{Kind: "bounded", Series: "component-frac", Lo: f(0.99)},
			{Kind: "bounded", Series: "non-quality", Lo: f(0.99)},
			// Reachability under grind is statistically distinguishable
			// from a coin flip: the t-interval over 3 trials excludes 0.5.
			{Kind: "ci_excludes", Series: "reachability", Excludes: f(0.5)},
		},
	})

	Register(Scenario{
		Name:     "churn-soap-composition",
		Question: "Does a larger clone budget keep containing the NoN when churn and takedowns run underneath the campaign?",
		Figure:   "§VII-A × §IV-C × Fig 5 composition",
		Sweep: &experiment.Sweep{
			Experiments: []string{"churn-soap"},
			Churn: []churn.Spec{
				{Process: "poisson", Join: 2, Leave: 2},
				{Process: "takedown", Frac: 0.5, Regions: 2, AtH: 2},
			},
			Soap: []soap.Spec{
				{Clones: 8},
				{Clones: 64},
			},
			Seeds:  []uint64{1},
			Trials: 2,
		},
		Expect: []Expectation{
			// In every churn regime, the 64-clone budget lifts worst-case
			// containment well above the 8-clone campaign.
			{Kind: "gap", Series: "min-contained", Axis: "soap", From: 0, To: 1, MinGap: 0.3},
			{Kind: "bounded", Series: "final-contained", Lo: f(0.5)},
		},
	})

	Register(Scenario{
		Name:     "takedown-replay-ramnit",
		Question: "Does the overlay survive a replay of the February 2015 Ramnit takedown's seizure waves?",
		Figure:   "Fig 5 against PAPERS.md takedown timelines",
		Sweep: &experiment.Sweep{
			Experiments: []string{"churn-repair"},
			Churn: []churn.Spec{
				{Process: "replay", TraceFile: "examples/traces/ramnit-takedown-2015.json"},
			},
			Seeds:  []uint64{1},
			Trials: 3,
		},
		Expect: []Expectation{
			// The seizure waves halve the population but never partition
			// the survivors...
			{Kind: "bounded", Series: "components", Stat: "max", Hi: f(1)},
			{Kind: "bounded", Series: "population", Stat: "min", Lo: f(50)},
			// ...and repair quality stays publishable-high, with a
			// trial-count-sized interval that excludes 0.9.
			{Kind: "bounded", Series: "quality", Lo: f(0.95)},
			{Kind: "ci_excludes", Series: "quality", Excludes: f(0.9)},
		},
	})
}
