package experiment

import (
	"strings"
	"testing"
)

func TestDDSRAblationShapes(t *testing.T) {
	res, err := RunDDSRAblation(DefaultAblationConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 policies", len(res.Rows))
	}
	byName := map[string][]string{}
	for _, row := range res.Rows {
		byName[row[0]] = row
	}
	full := byName["full DDSR (repair+prune+floor)"]
	noPrune := byName["no pruning"]
	normal := byName["no repair (normal)"]
	if full == nil || noPrune == nil || normal == nil {
		t.Fatalf("missing policies: %v", res.Rows)
	}
	// Repair defers partition; no-repair partitions mid-run.
	if !strings.HasPrefix(full[1], "never") {
		t.Errorf("full DDSR partitioned: %v", full)
	}
	if strings.HasPrefix(normal[1], "never") {
		t.Errorf("no-repair never partitioned: %v", normal)
	}
	// Pruning is what bounds degree.
	if full[2] != "10" {
		t.Errorf("full DDSR max degree at 30%% = %s, want 10", full[2])
	}
	if noPrune[2] == "10" {
		t.Errorf("no-pruning max degree stayed at 10; repair inflation missing")
	}
	// Work accounting is present where expected.
	if full[4] == "0" {
		t.Error("full DDSR reported zero pruned edges")
	}
	if normal[3] != "0" {
		t.Error("normal policy reported repair work")
	}
}
