package experiment

import (
	"fmt"

	"onionbots/internal/botcrypto/legacy"
)

func init() {
	Register(Definition{
		ID:    "table1",
		Title: "Cryptographic use in different botnets, audited (Table I)",
		// The audit's DRBG seed is a fixed string so the regenerated
		// table matches the paper row-for-row regardless of task seed.
		Run: func(Params) ([]*Result, error) {
			r, err := RunTable1([]byte("onionsim"))
			if err != nil {
				return nil, err
			}
			if err := VerifyTable1Shape(r); err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// RunTable1 regenerates Table I ("Cryptographic use in different
// botnets") by auditing from-scratch reimplementations of each family's
// scheme, extended with the concrete attack outcomes and the OnionBot
// comparison row.
func RunTable1(seed []byte) (*Result, error) {
	rows, err := legacy.AuditAll(seed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "table1",
		Title:  "Cryptographic use in different botnets (audited)",
		Header: []string{"Botnet", "Crypto", "Signing", "Replay", "KeyRecovered", "Forged"},
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, []string{
			r.Botnet, r.Crypto, r.Signing,
			yesNo(r.Replayable), yesNo(r.KeyRecovered), yesNo(r.Forged),
		})
	}
	res.AddNote("paper rows: Miner none/none/yes, Storm XOR/none/yes, ZeroAccess v1 RC4/RSA512/yes, Zeus chainedXOR/RSA2048/yes")
	res.AddNote("the OnionBot scheme (sealed cells + Ed25519 + replay guard) resists all three probes")
	return res, nil
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// VerifyTable1Shape checks the regenerated table against the paper's
// published values, returning a descriptive error on the first
// mismatch. The bench harness calls this so a regression in any cipher
// or audit probe fails loudly.
func VerifyTable1Shape(res *Result) error {
	want := map[string][3]string{
		"Miner":         {"none", "none", "yes"},
		"Storm":         {"XOR", "none", "yes"},
		"ZeroAccess v1": {"RC4", "RSA 512", "yes"},
		"Zeus":          {"chained XOR", "RSA 2048", "yes"},
		"OnionBot":      {"AES-CTR+HMAC", "Ed25519", "no"},
	}
	if len(res.Rows) != len(want) {
		return fmt.Errorf("table1: %d rows, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		w, ok := want[row[0]]
		if !ok {
			return fmt.Errorf("table1: unexpected row %q", row[0])
		}
		if row[1] != w[0] || row[2] != w[1] || row[3] != w[2] {
			return fmt.Errorf("table1: %s = (%s,%s,%s), want (%s,%s,%s)",
				row[0], row[1], row[2], row[3], w[0], w[1], w[2])
		}
	}
	return nil
}
