package experiment

import (
	"strings"
	"testing"

	"onionbots/internal/sim"
)

// fastTasks are the cheap registered experiments, used to exercise the
// runner without the multi-second campaign experiments.
func fastTasks(seed uint64) []Task {
	var tasks []Task
	for _, id := range []string{"fig3", "fig6", "table1", "probing", "hsdir", "ablation"} {
		tasks = append(tasks, Task{
			Label:      id,
			Experiment: id,
			Params:     Params{Quick: true, Seed: seed},
		})
	}
	return tasks
}

func renderAll(trs []TaskResult) string {
	var b strings.Builder
	for _, tr := range trs {
		b.WriteString(tr.Task.Label)
		b.WriteString("\n")
		for _, r := range tr.Results {
			b.WriteString(r.Render())
			b.WriteString(r.CSV())
		}
	}
	return b.String()
}

func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	serial, err := (&Runner{Parallel: 1}).Run(fastTasks(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Parallel: 8}).Run(fastTasks(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Err != nil {
			t.Fatalf("%s: %v", serial[i].Task.Label, serial[i].Err)
		}
	}
	if a, b := renderAll(serial), renderAll(parallel); a != b {
		t.Fatalf("output differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

func TestRunnerResultsAreInTaskOrder(t *testing.T) {
	tasks := fastTasks(2)
	trs, err := (&Runner{Parallel: 4}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(trs), len(tasks))
	}
	for i := range tasks {
		if trs[i].Task.Label != tasks[i].Label {
			t.Fatalf("result %d is %q, want %q", i, trs[i].Task.Label, tasks[i].Label)
		}
	}
}

func TestRunnerDerivesSubstreamSeeds(t *testing.T) {
	tasks := []Task{
		{Label: "a", Experiment: "fig3", Params: Params{Seed: 7}},
		{Label: "b", Experiment: "fig3", Params: Params{Seed: 7}},
	}
	trs, err := (&Runner{}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if trs[0].EffectiveSeed != sim.SubstreamSeed(7, "a") {
		t.Fatalf("effective seed %d, want SubstreamSeed(7, a) = %d",
			trs[0].EffectiveSeed, sim.SubstreamSeed(7, "a"))
	}
	if trs[0].EffectiveSeed == trs[1].EffectiveSeed {
		t.Fatal("same-seed tasks with different labels share a substream")
	}
}

func TestRunnerUnknownExperiment(t *testing.T) {
	trs, err := (&Runner{Parallel: 2}).Run([]Task{
		{Label: "good", Experiment: "fig3", Params: Params{Quick: true, Seed: 1}},
		{Label: "bad", Experiment: "fig99", Params: Params{Quick: true, Seed: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if trs[0].Err != nil {
		t.Fatalf("good task failed: %v", trs[0].Err)
	}
	if trs[1].Err == nil || !strings.Contains(trs[1].Err.Error(), "unknown experiment") {
		t.Fatalf("bad task err = %v, want unknown experiment", trs[1].Err)
	}
	if trs[1].Error == "" {
		t.Fatal("JSON error mirror not populated")
	}
}

func TestRunnerRejectsDuplicateLabels(t *testing.T) {
	_, err := (&Runner{}).Run([]Task{
		{Label: "x", Experiment: "fig3"},
		{Label: "x", Experiment: "table1"},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate-label rejection", err)
	}
}

func TestRunnerProgressReportsEveryTask(t *testing.T) {
	var seen []string
	maxDone := 0
	r := &Runner{Parallel: 3, Progress: func(done, total int, tr TaskResult) {
		if total != 6 {
			t.Errorf("total = %d, want 6", total)
		}
		if done <= maxDone {
			t.Errorf("done not monotone: %d after %d", done, maxDone)
		}
		maxDone = done
		seen = append(seen, tr.Task.Label)
	}}
	if _, err := r.Run(fastTasks(3)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("progress fired %d times, want 6", len(seen))
	}
}

func TestRegistryCompleteness(t *testing.T) {
	// Every experiment the CLI and docs advertise must be registered
	// with a runnable definition.
	want := []string{"ablation", "churn-hotlist", "churn-repair", "churn-soap",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "hsdir", "hsdir-outage",
		"pow", "probing", "relay-outage", "table1"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("registry has %v, want %v", ids, want)
		}
		def, ok := Lookup(id)
		if !ok || def.Run == nil || def.Title == "" {
			t.Fatalf("%s: incomplete definition %+v", id, def)
		}
	}
}
