package experiment

import (
	"strings"
	"testing"

	"onionbots/internal/churn"
	"onionbots/internal/faults"
	"onionbots/internal/soap"
)

// syntheticAxisTrs builds task results over a sweep grid with the series
// value a pure function of the task label, so threshold mechanics are
// tested against analytically known crossings.
func syntheticAxisTrs(t *testing.T, s *Sweep, series string, y func(label string) float64) []TaskResult {
	t.Helper()
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	trs := make([]TaskResult, 0, len(tasks))
	for _, task := range tasks {
		trs = append(trs, TaskResult{Task: task, Results: []*Result{{
			ID:     s.Experiments[0],
			Series: []Series{{Name: series, Points: []Point{{X: 0, Y: y(task.Label)}}}},
		}}})
	}
	return trs
}

// TestThresholdInterpolatesNumericAxis pins the interpolation formula on
// a grid where the crossing is analytically known: the mean rises
// linearly with n (y = n/1000), so "above 0.25" must land exactly at
// n = 250 — between the listed grid points 200 and 300.
func TestThresholdInterpolatesNumericAxis(t *testing.T) {
	above := 0.25
	s := &Sweep{
		Name:        "interp",
		Experiments: []string{"fig6"},
		Ns:          []int{100, 200, 300},
		Seeds:       []uint64{1},
		Thresholds:  []Threshold{{Series: "comp", Axis: "n", Above: &above}},
	}
	trs := syntheticAxisTrs(t, s, "comp", func(label string) float64 {
		switch labelComponent(label, "n") {
		case "100":
			return 0.1
		case "200":
			return 0.2
		default:
			return 0.3
		}
	})
	agg := s.Aggregate(trs)
	var row []string
	for _, r := range agg.Rows {
		if r[1] == "(threshold)" {
			row = r
		}
	}
	if row == nil {
		t.Fatalf("no threshold row:\n%s", agg.Render())
	}
	if row[4] != "n≈250" {
		t.Fatalf("crossing = %q, want the analytic n≈250 (row %v)", row[4], row)
	}
	if !strings.Contains(row[2], "(interpolated)") {
		t.Fatalf("numeric rule not marked interpolated: %q", row[2])
	}
	// The crossing-side mean is still the grid-point mean, not the bound.
	if row[8] != "0.3" {
		t.Fatalf("crossing mean = %q, want 0.3", row[8])
	}
}

// TestThresholdCrossingAtFirstGridPoint: with no safe point to bracket
// against, the crossing reports the first grid value itself (no
// extrapolation below the grid).
func TestThresholdCrossingAtFirstGridPoint(t *testing.T) {
	below := 0.5
	s := &Sweep{
		Name:        "edge",
		Experiments: []string{"fig6"},
		Ns:          []int{100, 200},
		Seeds:       []uint64{1},
		Thresholds:  []Threshold{{Series: "comp", Axis: "n", Below: &below}},
	}
	trs := syntheticAxisTrs(t, s, "comp", func(string) float64 { return 0.1 })
	agg := s.Aggregate(trs)
	for _, r := range agg.Rows {
		if r[1] == "(threshold)" && r[4] != "n≈100" {
			t.Fatalf("first-point crossing = %q, want n≈100", r[4])
		}
	}
}

// TestThresholdCategoricalAxisKeepsFirstLabel: an axis mixing churn
// processes is not interpolatable; the crossing must be the first
// crossed value's label exactly as earlier aggregates reported it.
func TestThresholdCategoricalAxisKeepsFirstLabel(t *testing.T) {
	below := 0.5
	s := &Sweep{
		Name:        "cat",
		Experiments: []string{"churn-repair"},
		Churn: []churn.Spec{
			{Process: "poisson", Leave: 8},
			{Process: "diurnal", Join: 2, Leave: 2, Amplitude: 0.8},
		},
		Seeds:      []uint64{1},
		Thresholds: []Threshold{{Series: "quality", Axis: "churn", Below: &below}},
	}
	trs := syntheticAxisTrs(t, s, "quality", func(label string) float64 {
		if strings.HasPrefix(labelComponent(label, "churn"), "diurnal") {
			return 0.3
		}
		return 0.9
	})
	agg := s.Aggregate(trs)
	found := false
	for _, r := range agg.Rows {
		if r[1] != "(threshold)" {
			continue
		}
		found = true
		if r[4] != "diurnal;j=2;l=2;a=0.8" {
			t.Fatalf("categorical crossing = %q, want the exact label diurnal;j=2;l=2;a=0.8", r[4])
		}
		if strings.Contains(r[2], "interpolated") {
			t.Fatalf("categorical rule claims interpolation: %q", r[2])
		}
	}
	if !found {
		t.Fatalf("no threshold row:\n%s", agg.Render())
	}
}

// TestAxisNumericDetection pins which spec axes count as numeric: a
// single varying numeric knob over a shared shape is a ladder; mixed
// shapes or several varying knobs are categorical.
func TestAxisNumericDetection(t *testing.T) {
	t.Run("churn λ ladder", func(t *testing.T) {
		xs, display, ok := churnAxisNumeric([]churn.Spec{
			{Process: "poisson", Leave: 2}, {Process: "poisson", Leave: 8}, {Process: "poisson", Leave: 32},
		})
		if !ok || display != "λ" || len(xs) != 3 || xs[2] != 32 {
			t.Fatalf("λ ladder: xs=%v display=%q ok=%v", xs, display, ok)
		}
	})
	t.Run("mixed processes categorical", func(t *testing.T) {
		if _, _, ok := churnAxisNumeric([]churn.Spec{
			{Process: "poisson", Leave: 8}, {Process: "diurnal", Join: 2, Leave: 2},
		}); ok {
			t.Fatal("mixed churn processes must stay categorical")
		}
	})
	t.Run("two varying knobs categorical", func(t *testing.T) {
		if _, _, ok := churnAxisNumeric([]churn.Spec{
			{Process: "poisson", Join: 1, Leave: 2}, {Process: "poisson", Join: 2, Leave: 8},
		}); ok {
			t.Fatal("two varying knobs must stay categorical")
		}
	})
	t.Run("soap clone ladder", func(t *testing.T) {
		xs, display, ok := soapAxisNumeric([]soap.Spec{{Clones: 16}, {Clones: 64}})
		if !ok || display != "clones" || xs[1] != 64 {
			t.Fatalf("clone ladder: xs=%v display=%q ok=%v", xs, display, ok)
		}
	})
	t.Run("faults retry ladder", func(t *testing.T) {
		xs, display, ok := faultsAxisNumeric([]faults.Spec{
			{OutageFrac: 0.3, RetryAttempts: 1}, {OutageFrac: 0.3, RetryAttempts: 4},
		})
		if !ok || display != "retries" || xs[1] != 4 {
			t.Fatalf("retry ladder: xs=%v display=%q ok=%v", xs, display, ok)
		}
	})
	t.Run("single spec categorical", func(t *testing.T) {
		if _, _, ok := churnAxisNumeric([]churn.Spec{{Process: "poisson", Leave: 8}}); ok {
			t.Fatal("a one-point axis has nothing to interpolate")
		}
	})
}

func TestThresholdString(t *testing.T) {
	below, above := 0.8, 0.5
	cases := []struct {
		th   Threshold
		want string
	}{
		{Threshold{Series: "quality", Axis: "churn", Below: &below},
			"first churn with mean quality.last < 0.8"},
		{Threshold{Series: "comp", Stat: "min", Axis: "n", Above: &above},
			"first n with mean comp.min > 0.5"},
	}
	for _, tc := range cases {
		if got := tc.th.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// TestParseSweepRejectsSeedAxisThreshold: seeds are replicates, not a
// parameter — a threshold scanning them must fail at parse time.
func TestParseSweepRejectsSeedAxisThreshold(t *testing.T) {
	spec := `{"experiments":["fig6"],"seeds":[1,2,3],
		"thresholds":[{"series":"q","axis":"seed","below":1}]}`
	_, err := ParseSweep([]byte(spec))
	if err == nil || !strings.Contains(err.Error(), "seeds are replicates") {
		t.Fatalf("err = %v, want the seeds-are-replicates rejection", err)
	}
}

func TestMatchResultID(t *testing.T) {
	cases := []struct {
		selector, id string
		want         bool
	}{
		{"", "anything", true},
		{"fig5-components-n=400", "fig5-components-n=400", true},
		{"fig5-components-n=400", "fig5-components-n=4000", false},
		{"fig5-components-*", "fig5-components-n=4000", true},
		{"fig5-components-*", "fig5-reach-n=400", false},
	}
	for _, tc := range cases {
		if got := MatchResultID(tc.selector, tc.id); got != tc.want {
			t.Errorf("MatchResultID(%q, %q) = %v, want %v", tc.selector, tc.id, got, tc.want)
		}
	}
}
