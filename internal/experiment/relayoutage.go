package experiment

import (
	"fmt"
	"time"

	"onionbots/internal/churn"
	"onionbots/internal/core"
	"onionbots/internal/faults"
	"onionbots/internal/graph"
	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

func init() {
	Register(Definition{
		ID:    "relay-outage",
		Title: "NoN quality and C&C reachability under relay crash/restart faults",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultRelayOutageConfig(p.Quick)
			cfg.Seed = p.Seed
			if p.Store != "" {
				cfg.Store = p.Store
			}
			if p.N > 0 {
				cfg.Bots = p.N
			}
			if p.Faults != nil {
				cfg.Spec = *p.Faults
			}
			if p.Churn != nil {
				cfg.Churn = p.Churn
			}
			r, err := RunRelayOutage(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// RelayOutageConfig parameterizes the substrate-failure experiment: a
// Poisson relay crash/restart process (optionally plus intro-point
// faults) grinds against a live botnet, measuring how the Network of
// Neighbors overlay and C&C reachability degrade — and what a dial
// retry budget buys back. With Churn set, membership churn composes
// with the infrastructure faults on the same scheduler, answering
// whether an overlay that survives bot attrition also survives the
// ground shifting under it.
type RelayOutageConfig struct {
	// Relays sizes the simulated Tor substrate; Bots the initial
	// population.
	Relays, Bots int
	// ExtraRelays are young relays added after bootstrap. They carry no
	// HSDir flag for Config.HSDirUptime, which makes them the crash
	// process's victim pool: bootstrapped relays all hold the flag, and
	// RelayCrash spares directories by contract (directory loss is
	// HSDirOutage's axis).
	ExtraRelays int
	// Duration is the simulated span; SampleEvery the measurement (and
	// reachability-probe) cadence.
	Duration    time.Duration
	SampleEvery time.Duration
	// Spec is the fault plane and retry budget (the swept axis).
	Spec faults.Spec
	// Churn optionally composes a membership churn process with the
	// infrastructure faults (nil = static population).
	Churn *churn.Spec
	// Seed drives all randomness.
	Seed uint64
	// Store selects the tor.DescriptorStore backend ("" = default).
	Store string
}

// DefaultRelayOutageConfig returns the full or quick preset. The
// default fault plane crashes relays at a few events per virtual hour
// with hour-scale restarts, against a 3-attempt retry budget backing
// off from one virtual minute — transient path failures heal fast, so
// short backoffs pay here, unlike the directory-outage scenario.
func DefaultRelayOutageConfig(quick bool) RelayOutageConfig {
	spec := faults.Spec{CrashRate: 4, RestartH: 1, RetryAttempts: 3, RetryBackoffS: 60}
	if quick {
		return RelayOutageConfig{
			Relays: 30, Bots: 10, ExtraRelays: 15,
			Duration: 12 * time.Hour, SampleEvery: 2 * time.Hour,
			Spec: spec, Seed: 8,
		}
	}
	return RelayOutageConfig{
		Relays: 60, Bots: 30, ExtraRelays: 30,
		Duration: 24 * time.Hour, SampleEvery: time.Hour,
		Spec: spec, Seed: 8,
	}
}

// RunRelayOutage bootstraps a botnet, attaches the configured fault
// plane (and optional churn process), and samples over virtual time:
//
//   - relays: the live relay population as crashes and restarts fight.
//   - alive: the living bot population.
//   - component-frac: largest overlay component over alive bots — the
//     NoN cohesion signal.
//
// At every sample a fresh client probes the C&C under the spec's retry
// policy. Two single-point summary series feed sweep aggregation:
//
//   - reachability: fraction of probes whose dial eventually succeeded.
//   - non-quality: mean component-frac × mean degree-ratio (average
//     overlay degree over DMin, capped at 1) — 1.0 means the overlay
//     stayed cohesive at healthy degree throughout.
func RunRelayOutage(cfg RelayOutageConfig) (*Result, error) {
	rp := cfg.Spec.RetryPolicy()
	botCfg := core.BotConfig{
		DMin: 2, DMax: 6,
		PingInterval: 10 * time.Minute,
		NoNInterval:  30 * time.Minute,
		Retry:        rp,
		Store:        cfg.Store,
	}
	bn, err := core.NewBotNet(cfg.Seed, cfg.Relays, botCfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.ExtraRelays; i++ {
		if _, err := bn.Net.AddRelay(); err != nil {
			return nil, err
		}
	}
	if cfg.ExtraRelays > 0 {
		bn.Net.PublishConsensus()
	}
	if err := bn.Grow(cfg.Bots, nil); err != nil {
		return nil, err
	}

	eng := faults.NewEngine(bn.Sched, sim.SubstreamSeed(cfg.Seed, "relay-outage/faults"), bn.Net)
	if err := cfg.Spec.Attach(eng, faults.AttachOptions{TargetService: bn.Master.Onion()}); err != nil {
		return nil, err
	}
	var churnEng *churn.Engine
	if cfg.Churn != nil {
		target := churn.NewBotNetTarget(bn, nil, cfg.Churn.Regions)
		churnEng = churn.NewEngine(bn.Sched, sim.SubstreamSeed(cfg.Seed, "relay-outage/churn"), target)
		proc, err := cfg.Churn.Build()
		if err != nil {
			return nil, err
		}
		if err := churnEng.Attach(proc); err != nil {
			return nil, err
		}
	}

	res := &Result{
		ID: "relay-outage",
		Title: fmt.Sprintf("NoN under %s, %d relays, %d bots, over %s",
			cfg.Spec.Label(), cfg.Relays, cfg.Bots, cfg.Duration),
		XLabel: "hours", YLabel: "count / fraction",
	}
	relays := Series{Name: "relays"}
	alive := Series{Name: "alive"}
	compFrac := Series{Name: "component-frac"}

	ccOnion := bn.Master.Onion()
	probeOK, probeDone := 0, 0
	probe := func() {
		pr := tor.NewProxy(bn.Net)
		pr.Retry = rp
		pr.DialAsync(ccOnion, func(conn *tor.Conn, err error) {
			probeDone++
			if err == nil {
				probeOK++
				conn.Close()
			}
		})
	}

	fracSum, ratioSum := 0.0, 0.0
	sampled := 0
	start := bn.Sched.Elapsed() // Grow consumed virtual time already
	sample := func() {
		h := (bn.Sched.Elapsed() - start).Hours()
		relays.Points = append(relays.Points, Point{X: h, Y: float64(bn.Net.NumRelays())})
		n := bn.AliveCount()
		alive.Points = append(alive.Points, Point{X: h, Y: float64(n)})
		frac, ratio := 0.0, 0.0
		if n > 0 {
			g := bn.OverlayGraph()
			if sizes := graph.Components(g); len(sizes) > 0 {
				frac = float64(sizes[0]) / float64(n)
			}
			ratio = g.AvgDegree() / float64(botCfg.DMin)
			if ratio > 1 {
				ratio = 1
			}
		}
		compFrac.Points = append(compFrac.Points, Point{X: h, Y: frac})
		fracSum += frac
		ratioSum += ratio
		sampled++
		probe()
	}

	sample()
	for t := cfg.SampleEvery; t <= cfg.Duration; t += cfg.SampleEvery {
		bn.Sched.RunUntil(sim.Epoch.Add(start + t))
		sample()
	}
	// Drain tail: the last probe can wait the policy's full backoff
	// span before its outcome lands.
	bn.Sched.RunFor(rp.Span() + time.Hour)
	eng.Stop()
	if churnEng != nil {
		churnEng.Stop()
	}

	probes := sampled
	reach := float64(probeOK) / float64(probes)
	quality := (fracSum / float64(sampled)) * (ratioSum / float64(sampled))
	res.Series = append(res.Series, relays, alive, compFrac,
		Series{Name: "reachability", Points: []Point{{X: 0, Y: reach}}},
		Series{Name: "non-quality", Points: []Point{{X: 0, Y: quality}}})

	crashed, restarted, outaged, introFaults := eng.Counts()
	st := bn.Net.Stats()
	res.AddNote("faults %s: %d crashed, %d restarted, %d outaged, %d intro faults",
		cfg.Spec.Label(), crashed, restarted, outaged, introFaults)
	if churnEng != nil {
		joined, left, takendown := churnEng.Counts()
		res.AddNote("churn %s: %d joined, %d left, %d taken down",
			cfg.Churn.Label(), joined, left, takendown)
	}
	res.AddNote("probes: %d/%d reached C&C (%d completed); non-quality %.3f",
		probeOK, probes, probeDone, quality)
	res.AddNote("network: %d dial failures, %d retries, %d recoveries, %d intro faults injected, %d publish repairs",
		st.DialFailures, st.DialRetries, st.DialRecoveries, st.IntroFaultsInjected, st.PublishRepairs)
	return res, nil
}
