// Package experiment regenerates every table and figure of the
// OnionBots paper from this repository's implementations, and provides
// the engine that runs them — singly, in parallel, or swept over
// parameter grids.
//
// # Registry
//
// Each experiment registers itself from init under a stable ID (fig3,
// fig4, ..., table1, probing, hsdir, pow, ablation) with a Definition:
// a title and a run function taking the generic Params (quick preset,
// seed, and optional N/K/Frac overrides, which each experiment maps
// onto its own config knobs). Lookup and IDs expose the catalogue;
// cmd/onionsim is a thin shell over it.
//
// Every runner still has its direct Go API — a config struct whose
// Default*(quick) constructor offers the paper's full parameters
// (n=5000 and 15000 node graphs, 1000-15000 size sweeps) and a
// scaled-down quick preset — and returns Results: named series of
// (x, y) points and/or table rows plus free-form notes, rendering to
// ASCII, CSV, or JSON.
//
// # Runner
//
// Runner executes a set of labelled tasks across a worker pool. Before
// a task runs, its seed is replaced by sim.SubstreamSeed(seed, label),
// so every task owns an independent random stream that is a pure
// function of the root seed and the task's name. Combined with the
// rule that experiments never read wall-clock time (quick-mode probing
// assumes NominalKeyRate for exactly this reason), rendered output is
// byte-identical at any parallelism and any scheduling order; results
// come back in task order.
//
// # Sweeps
//
// Sweep is a JSON scenario spec: experiments crossed with grids of
// sizes, degrees, takedown fractions, seeds, and trial replications.
// Tasks expands the grid into labelled tasks for the Runner, and
// Aggregate folds the outcomes into one table-shaped Result
// (first/last/min/max per produced series) so a whole grid reads and
// exports as a single artifact. See examples/sweep for a ready-to-run
// spec.
//
// README.md records how to reproduce each figure on the command line;
// bench_test.go wraps each runner in a benchmark.
package experiment
