// Package experiment contains one runner per table and figure of the
// OnionBots paper, regenerating each result from this repository's
// implementations. Each runner accepts a config whose Default*(quick)
// constructor offers two presets: the paper's full parameters (n=5000
// and 15000 node graphs, 1000-15000 size sweeps) and a scaled-down
// quick mode for tests and benchmarks.
//
// Runners return a Result — named series of (x, y) points and/or table
// rows plus free-form notes — which renders to an ASCII table or CSV.
// EXPERIMENTS.md records the paper-vs-measured comparison for every
// runner; cmd/onionsim exposes them on the command line; bench_test.go
// wraps each in a benchmark.
package experiment
