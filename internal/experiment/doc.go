// Package experiment regenerates every table and figure of the
// OnionBots paper from this repository's implementations, and provides
// the engine that runs them — singly, in parallel, or swept over
// parameter grids.
//
// # Registry
//
// Each experiment registers itself from init under a stable ID (fig3,
// fig4, ..., table1, probing, hsdir, pow, ablation, churn-repair,
// churn-hotlist, churn-soap, relay-outage, hsdir-outage) with a
// Definition: a title and a run function taking the generic Params
// (quick preset, seed, and optional N/K/Frac/Churn/Soap/Faults
// overrides, which each experiment maps onto its own config knobs).
// Lookup and IDs expose the catalogue; cmd/onionsim is a thin shell
// over it, and docs/EXPERIMENTS.md is the prose handbook (a
// completeness test keeps it in sync with the registry).
//
// Every runner still has its direct Go API — a config struct whose
// Default*(quick) constructor offers the paper's full parameters
// (n=5000 and 15000 node graphs, 1000-15000 size sweeps) and a
// scaled-down quick preset — and returns Results: named series of
// (x, y) points and/or table rows plus free-form notes, rendering to
// ASCII, CSV, or JSON.
//
// # Runner
//
// Runner executes a set of labelled tasks across a worker pool. Before
// a task runs, its seed is replaced by sim.SubstreamSeed(seed, label),
// so every task owns an independent random stream that is a pure
// function of the root seed and the task's name. Combined with the
// rule that experiments never read wall-clock time (quick-mode probing
// assumes NominalKeyRate for exactly this reason), rendered output is
// byte-identical at any parallelism and any scheduling order; results
// come back in task order.
//
// # Sweeps
//
// Sweep is a JSON scenario spec: experiments crossed with grids of
// sizes, degrees, takedown fractions, churn scenarios (internal/churn
// specs — Poisson join/leave, diurnal cycles, correlated takedowns,
// trace replays), SOAP campaign configurations (internal/soap specs —
// clone budgets, wave cadence, proof-of-work policy), infrastructure
// fault planes (internal/faults specs — relay crash/restart rates,
// HSDir outage waves, intro-failure probability, client retry
// budgets), seeds, and trial
// replications. Tasks expands the grid into labelled
// tasks for the Runner, and Aggregate folds the outcomes into one
// table-shaped Result: first/last/min/max per produced series, mean ±
// sample stddev over trials per grid point when the spec replicates,
// and one row per declarative Threshold rule — "first value on a
// swept axis where a series statistic crosses a bound" — so a grid
// answers its question directly ("λ at first partition"). See
// examples/sweep for ready-to-run specs and docs/EXPERIMENTS.md for
// the schema walkthrough.
//
// README.md records how to reproduce each figure on the command line;
// bench_test.go wraps each runner in a benchmark.
package experiment
