package experiment

import (
	"fmt"
	"time"

	"onionbots/internal/churn"
	"onionbots/internal/core"
	"onionbots/internal/sim"
	"onionbots/internal/soap"
)

func init() {
	Register(Definition{
		ID:    "churn-soap",
		Title: "SOAP containment vs a churning population (Section VII-A × IV-C dynamics)",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultChurnSoapConfig(p.Quick)
			cfg.Seed = p.Seed
			if p.Store != "" {
				cfg.Store = p.Store
			}
			if p.N > 0 {
				cfg.Bots = p.N
			}
			if p.K > 0 {
				cfg.HotlistSize = p.K
			}
			if p.Churn != nil {
				cfg.Spec = *p.Churn
			}
			if p.Soap != nil {
				cfg.Soap = *p.Soap
			}
			r, err := RunChurnSoap(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// ChurnSoapConfig composes the two halves the paper evaluates in
// isolation: a SOAP containment campaign (Section VII-A's mitigation)
// running against a population that keeps moving underneath it (PR 4's
// churn engine at the protocol level). The question it answers is the
// one the takedown literature says decides real mitigations: does a
// clone budget that contains a static victim set still contain one
// whose members leave — taking their contained neighborhoods with
// them — while fresh infections rally in behind the attacker's back?
type ChurnSoapConfig struct {
	// Relays sizes the simulated Tor substrate; Bots the initial
	// population the campaign starts against.
	Relays, Bots int
	// HotlistSize is the C&C rally answer size — the defender-hostile
	// force (benign re-peering) the paper's webcache bootstrap supplies.
	HotlistSize int
	// Duration is the campaign span; SampleEvery the measurement
	// cadence.
	Duration    time.Duration
	SampleEvery time.Duration
	// PingInterval and NoNInterval tune bot maintenance.
	PingInterval, NoNInterval time.Duration
	// Spec is the churn scenario running under the campaign.
	Spec churn.Spec
	// Soap is the campaign knob group (clone budget, wave cadence,
	// proof-of-work policy).
	Soap soap.Spec
	// Seed drives all randomness.
	Seed uint64
	// Store selects the tor.DescriptorStore backend ("" = default).
	Store string
}

// DefaultChurnSoapConfig returns the full or quick preset: a balanced
// Poisson join/leave process under a hotlist-hardened SOAP campaign
// with the clone budget fig7 needed to finish a *static* population.
func DefaultChurnSoapConfig(quick bool) ChurnSoapConfig {
	spec := churn.Spec{Process: "poisson", Join: 2, Leave: 2}
	campaign := soap.Spec{Clones: 64}
	if quick {
		return ChurnSoapConfig{
			Relays: 25, Bots: 8, HotlistSize: 3,
			Duration: 8 * time.Hour, SampleEvery: time.Hour,
			PingInterval: 10 * time.Minute, NoNInterval: 30 * time.Minute,
			Spec: spec, Soap: campaign, Seed: 9,
		}
	}
	return ChurnSoapConfig{
		Relays: 40, Bots: 24, HotlistSize: 5,
		Duration: 24 * time.Hour, SampleEvery: time.Hour,
		PingInterval: 5 * time.Minute, NoNInterval: 15 * time.Minute,
		Spec: spec, Soap: campaign, Seed: 9,
	}
}

// RunChurnSoap grows a botnet, launches a SOAP campaign from a captured
// bot, attaches the configured churn process at the protocol level
// (joins are real infections that rally, register, and get discovered
// through gossip; leaves are takedowns that may delete already-contained
// bots), and samples over virtual time:
//
//   - contained: ground-truth contained fraction of the *alive*
//     population (soap.ContainmentFraction) — the campaign's grip.
//   - clone-neighbor: mean clone share of alive bots' peer lists.
//   - alive: the moving population.
//   - discovered: how many bots the attacker has found so far.
//
// Single-point summary series carry the final and minimum-after-onset
// contained fractions for sweep aggregation and threshold rows
// ("first churn where mean contained.final < 0.9").
func RunChurnSoap(cfg ChurnSoapConfig) (*Result, error) {
	bn, err := core.NewBotNet(cfg.Seed, cfg.Relays, core.BotConfig{
		DMin: 2, DMax: 4,
		PingInterval: cfg.PingInterval,
		NoNInterval:  cfg.NoNInterval,
		Store:        cfg.Store,
	})
	if err != nil {
		return nil, err
	}
	bn.Master.HotlistSize = cfg.HotlistSize
	if err := bn.Grow(cfg.Bots, nil); err != nil {
		return nil, err
	}
	bn.Run(6 * time.Minute)

	captured := bn.AliveBots()[0]
	attacker := soap.NewAttacker(bn.Net, bn.Master.NetKey(), cfg.Soap.Config())
	attacker.Start(captured.Onion())

	target := churn.NewBotNetTarget(bn, nil, cfg.Spec.Regions)
	eng := churn.NewEngine(bn.Sched, sim.SubstreamSeed(cfg.Seed, "churn-soap/engine"), target)
	proc, err := cfg.Spec.Build()
	if err != nil {
		return nil, err
	}
	if err := eng.Attach(proc); err != nil {
		return nil, err
	}

	res := &Result{
		ID: "churn-soap",
		Title: fmt.Sprintf("SOAP campaign (%s) vs churn %s, %d initial bots, hotlist %d, over %s",
			cfg.Soap.Label(), cfg.Spec.Label(), cfg.Bots, cfg.HotlistSize, cfg.Duration),
		XLabel: "hours", YLabel: "fraction / count",
	}
	contained := Series{Name: "contained"}
	cloneNeighbor := Series{Name: "clone-neighbor"}
	alive := Series{Name: "alive"}
	discovered := Series{Name: "discovered"}

	start := bn.Sched.Elapsed() // formation consumed virtual time already
	final, minAfterOnset := 0.0, 1.0
	onset := false
	sample := func() {
		h := (bn.Sched.Elapsed() - start).Hours()
		c := soap.ContainmentFraction(bn, attacker)
		final = c
		if c > 0 {
			onset = true
		}
		if onset && c < minAfterOnset {
			minAfterOnset = c
		}
		contained.Points = append(contained.Points, Point{X: h, Y: c})
		cloneNeighbor.Points = append(cloneNeighbor.Points, Point{X: h, Y: soap.CloneNeighborFraction(bn, attacker)})
		alive.Points = append(alive.Points, Point{X: h, Y: float64(bn.AliveCount())})
		discovered.Points = append(discovered.Points, Point{X: h, Y: float64(attacker.Stats().BotsDiscovered)})
	}

	sample()
	for t := cfg.SampleEvery; t <= cfg.Duration; t += cfg.SampleEvery {
		bn.Sched.RunUntil(sim.Epoch.Add(start + t))
		sample()
	}
	eng.Stop()
	attacker.Stop()
	if !onset {
		minAfterOnset = 0
	}

	joined, left, takendown := eng.Counts()
	st := attacker.Stats()
	res.Series = append(res.Series, contained, cloneNeighbor, alive, discovered,
		Series{Name: "final-contained", Points: []Point{{X: 0, Y: final}}},
		Series{Name: "min-contained", Points: []Point{{X: 0, Y: minAfterOnset}}})
	res.AddNote("churn %s: %d joined, %d left, %d taken down; %d alive at end",
		cfg.Spec.Label(), joined, left, takendown, bn.AliveCount())
	res.AddNote("campaign %s: %d clones against %d discovered bots; %d blocked messages, %d hashes paid",
		cfg.Soap.Label(), st.ClonesCreated, st.BotsDiscovered, st.MessagesBlocked, st.WorkHashes)
	res.AddNote("containment: final %.3f, min after onset %.3f (churn joins re-open the net the clones closed)",
		final, minAfterOnset)
	return res, nil
}
