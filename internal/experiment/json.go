package experiment

import "encoding/json"

// ResultsJSON renders a flat result list as an indented JSON document —
// the machine-readable counterpart of Render/CSV that cmd/onionsim
// emits under -json. Output is a pure function of the results (no
// timestamps, no host state), so fixed seeds give byte-identical JSON.
func ResultsJSON(results []*Result) ([]byte, error) {
	doc := struct {
		Results []*Result `json:"results"`
	}{Results: results}
	return json.MarshalIndent(doc, "", "  ")
}

// SweepJSON renders a sweep run — spec, every task's full output, and
// the aggregate table — as an indented JSON document.
func SweepJSON(s *Sweep, tasks []TaskResult, aggregate *Result) ([]byte, error) {
	doc := struct {
		Sweep     *Sweep       `json:"sweep"`
		Tasks     []TaskResult `json:"tasks"`
		Aggregate *Result      `json:"aggregate"`
	}{Sweep: s, Tasks: tasks, Aggregate: aggregate}
	return json.MarshalIndent(doc, "", "  ")
}
