package experiment

import (
	"fmt"
	"sort"
	"sync"

	"onionbots/internal/churn"
	"onionbots/internal/faults"
	"onionbots/internal/soap"
)

// Params is the generic parameter set an experiment task receives. The
// runner and the sweep engine only speak Params; each registered
// experiment maps the axes onto whichever knobs its own config has and
// ignores the rest (fig3 is a fixed walkthrough, table1 is an audit, so
// both ignore everything but Quick).
type Params struct {
	// Quick selects the scaled-down preset instead of the paper's full
	// parameters.
	Quick bool `json:"quick"`
	// Seed drives all randomness. The runner replaces it with a
	// substream derived from (Seed, task label) before the experiment
	// sees it; TaskResult.EffectiveSeed records the derived value.
	Seed uint64 `json:"seed"`
	// N overrides the population size (graph nodes, bots, or hosts,
	// whichever the experiment sweeps). 0 keeps the preset.
	N int `json:"n,omitempty"`
	// K overrides the overlay degree / regularity. 0 keeps the preset.
	K int `json:"k,omitempty"`
	// Frac overrides the takedown/deletion fraction for experiments
	// that have one (fig4). 0 keeps the preset.
	Frac float64 `json:"frac,omitempty"`
	// Churn overrides the dynamic-membership scenario for experiments
	// that run one (churn-repair, churn-hotlist, churn-soap). nil keeps
	// the preset; experiments without a churn phase ignore it.
	Churn *churn.Spec `json:"churn,omitempty"`
	// Soap overrides the mitigation campaign for experiments that run
	// one (churn-soap). nil keeps the preset; experiments without a
	// SOAP phase ignore it.
	Soap *soap.Spec `json:"soap,omitempty"`
	// Faults overrides the infrastructure fault plane for experiments
	// that run one (relay-outage, hsdir-outage): which fault processes
	// to inject and which client retry budget to fight them with. nil
	// keeps the preset; experiments without a fault phase ignore it.
	Faults *faults.Spec `json:"faults,omitempty"`
	// Store selects the tor.DescriptorStore backend for protocol-level
	// experiments ("flat", "sharded", "mmap"; "" keeps the default).
	// Backends are observably identical, so sweeping this axis is a
	// memory-plane A/B: same outputs, different footprint. Graph-only
	// experiments ignore it.
	Store string `json:"store,omitempty"`
}

// Definition is one registered experiment: a stable ID, a title for
// -list output, and a run function that regenerates the figure or table
// for the given parameters. Run must be deterministic: its output may
// depend only on p, never on wall-clock time or goroutine scheduling.
// The single sanctioned exception is full-mode probing, which exists to
// measure this machine's key-generation rate and labels its output as
// measured; with Quick set, every experiment is wall-clock-free.
type Definition struct {
	ID    string
	Title string
	Run   func(p Params) ([]*Result, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Definition{}
)

// Register adds a definition to the registry. Experiments register
// themselves from init, so importing the package is enough to populate
// the catalogue; registering a duplicate or incomplete definition
// panics because it is always a programming error.
func Register(def Definition) {
	if def.ID == "" || def.Run == nil {
		panic(fmt.Sprintf("experiment: incomplete definition %+v", def))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[def.ID]; dup {
		panic(fmt.Sprintf("experiment: duplicate registration of %q", def.ID))
	}
	registry[def.ID] = def
}

// Lookup returns the definition registered under id.
func Lookup(id string) (Definition, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	def, ok := registry[id]
	return def, ok
}

// IDs returns every registered experiment ID, sorted.
func IDs() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
