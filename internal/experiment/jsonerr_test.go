package experiment

import (
	"strings"
	"testing"
)

// A typo'd sweep file names its own bug: wrong-typed fields report the
// field and line, syntax errors report the offending position.
func TestParseSweepLocatesJSONErrors(t *testing.T) {
	_, err := ParseSweep([]byte("{\n  \"experiments\": [\"fig6\"],\n  \"ns\": \"eight hundred\"\n}\n"))
	if err == nil {
		t.Fatal("wrong-typed ns accepted")
	}
	if !strings.Contains(err.Error(), `field "ns"`) || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("type error does not name field and line: %v", err)
	}

	_, err = ParseSweep([]byte("{\n  \"experiments\": [\"fig6\"],\n  \"seeds\": [1, 2,]\n}\n"))
	if err == nil {
		t.Fatal("malformed seeds accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("syntax error does not locate line: %v", err)
	}
}
