package experiment

import (
	"strings"
	"testing"
)

func TestFig7CampaignNeutralizes(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level campaign; skipped in -short")
	}
	res, err := RunFig7(DefaultFig7Config(true))
	if err != nil {
		t.Fatal(err)
	}
	contained := res.SeriesByName("contained-fraction")
	if contained == nil {
		t.Fatal("missing contained-fraction series")
	}
	final := contained.Points[len(contained.Points)-1].Y
	if final < 0.9 {
		t.Fatalf("final containment %.2f, want >= 0.9", final)
	}
	// The surrounded fraction must be monotone-ish and reach ~1.
	surrounded := res.SeriesByName("clone-neighbor-fraction")
	if last := surrounded.Points[len(surrounded.Points)-1].Y; last < 0.9 {
		t.Fatalf("clone-neighbor fraction %.2f, want >= 0.9", last)
	}
	render := res.Render()
	if !strings.Contains(render, "broadcast reach before campaign: 8/8") {
		t.Fatalf("baseline broadcast did not reach everyone:\n%s", render)
	}
}

func TestFig8FleetBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level campaign; skipped in -short")
	}
	res, err := RunFig8(DefaultFig8Config(true))
	if err != nil {
		t.Fatal(err)
	}
	fleet := res.SeriesByName("SuperOnion hosts")
	base := res.SeriesByName("basic bots")
	if fleet == nil || base == nil {
		t.Fatal("missing series")
	}
	// Average containment: the fleet must strictly beat the basic
	// botnet under identical attacker pressure.
	avg := func(s *Series) float64 {
		sum := 0.0
		for _, p := range s.Points {
			sum += p.Y
		}
		return sum / float64(len(s.Points))
	}
	if avg(fleet) >= avg(base) {
		t.Fatalf("fleet avg containment %.2f >= baseline %.2f", avg(fleet), avg(base))
	}
}

func TestProbingFeasibilityTable(t *testing.T) {
	res, err := RunProbingFeasibility(0) // measure live
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	render := res.Render()
	// The 16-char (full address) scenario must be astronomically hard.
	if !strings.Contains(render, "vanity prefix 16 chars") {
		t.Fatal("missing full-address row")
	}
	if !strings.Contains(render, "centuries") {
		t.Fatalf("expected at least one 'centuries' cost:\n%s", render)
	}
}

func TestProbingFeasibilityFixedRateIsDeterministic(t *testing.T) {
	a, err := RunProbingFeasibility(NominalKeyRate)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProbingFeasibility(NominalKeyRate)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("fixed-rate probing output varies:\n%s\n---\n%s", a.Render(), b.Render())
	}
	if !strings.Contains(a.Render(), "assumed key-generation rate") {
		t.Fatalf("fixed-rate run should say so:\n%s", a.Render())
	}
}

func TestHSDirAttackDenialAndRecovery(t *testing.T) {
	res, err := RunHSDirAttack(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][1] != "no" {
		t.Fatalf("phase 1 should be denied, got reachable=%s", res.Rows[0][1])
	}
	if res.Rows[1][1] != "yes" {
		t.Fatalf("phase 2 should recover after period roll, got reachable=%s", res.Rows[1][1])
	}
}

func TestPoWDefenseOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol-level campaign; skipped in -short")
	}
	res, err := RunPoWDefense(10, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	// basic bots fall, hardened bots resist a non-paying attacker.
	basic, hardenedNoPay := res.Rows[0], res.Rows[1]
	if basic[1] == "0.00" {
		t.Fatalf("basic scenario contained nothing: %v", basic)
	}
	if hardenedNoPay[1] != "0.00" {
		t.Fatalf("hardened bots contained by a non-paying attacker: %v", hardenedNoPay)
	}
	if hardenedNoPay[2] != "0" {
		t.Fatalf("non-paying attacker spent hashes: %v", hardenedNoPay)
	}
	// The paying attacker spends real work.
	paying := res.Rows[2]
	if paying[2] == "0" {
		t.Fatalf("paying attacker spent no hashes: %v", paying)
	}
}
