package experiment

import (
	"strings"
	"testing"

	"onionbots/internal/graph"
)

func TestFig3GraphMatchesPaper(t *testing.T) {
	g := Fig3Graph()
	if g.NumNodes() != 12 || g.NumEdges() != 18 {
		t.Fatalf("nodes=%d edges=%d, want 12, 18", g.NumNodes(), g.NumEdges())
	}
	for _, v := range g.Nodes() {
		if g.Degree(v) != 3 {
			t.Fatalf("node %d degree %d, want 3-regular", v, g.Degree(v))
		}
	}
	// Node 7's neighborhood as drawn in the paper.
	nbrs := g.Neighbors(7)
	want := []int{0, 1, 4}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("neighbors(7) = %v, want %v", nbrs, want)
		}
	}
	// The repair edges must not pre-exist.
	for _, e := range [][2]int{{0, 1}, {1, 4}, {0, 4}} {
		if g.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v pre-exists; Fig 3 repair would be vacuous", e)
		}
	}
	if graph.NumComponents(g) != 1 {
		t.Fatal("Fig 3 graph must be connected")
	}
}

func TestFig3WalkthroughRepairsNode7(t *testing.T) {
	res, steps, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(Fig3RemovalOrder) {
		t.Fatalf("steps = %d, want %d", len(steps), len(Fig3RemovalOrder))
	}
	// Panel 2: removing node 7 creates the three dashed edges.
	first := steps[0]
	if first.Removed != 7 {
		t.Fatalf("first removal = %d, want 7", first.Removed)
	}
	wantEdges := map[[2]int]bool{{0, 1}: true, {0, 4}: true, {1, 4}: true}
	for _, e := range first.EdgesAdded {
		if !wantEdges[e] {
			t.Fatalf("unexpected repair edge %v", e)
		}
		delete(wantEdges, e)
	}
	if len(wantEdges) != 0 {
		t.Fatalf("missing repair edges: %v", wantEdges)
	}
	// Every panel stays connected, as the figure shows.
	for i, s := range steps {
		if !s.Connected {
			t.Fatalf("panel %d disconnected after removing %d", i+2, s.Removed)
		}
	}
	if !strings.Contains(res.Render(), "fig3") {
		t.Fatal("render lost the experiment id")
	}
}

func TestFig4ShapesMatchPaper(t *testing.T) {
	// Without pruning: degree centrality inflates. With pruning: it
	// stays near the starting value. Closeness stays stable (does not
	// collapse) in both. These are the four panels' headline shapes.
	cfgNo := DefaultFig4Config(true)
	cfgNo.Pruning = false
	closeNo, degNo, err := RunFig4(cfgNo)
	if err != nil {
		t.Fatal(err)
	}
	cfgYes := cfgNo
	cfgYes.Pruning = true
	closeYes, degYes, err := RunFig4(cfgYes)
	if err != nil {
		t.Fatal(err)
	}

	for _, res := range []*Result{closeNo, closeYes} {
		for _, s := range res.Series {
			first := s.Points[0].Y
			last := s.Points[len(s.Points)-1].Y
			if last < first*0.8 {
				t.Errorf("%s %s: closeness collapsed %.4f -> %.4f", res.ID, s.Name, first, last)
			}
		}
	}
	for _, s := range degNo.Series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if last < first*2 {
			t.Errorf("no pruning %s: degree centrality %.5f -> %.5f, expected growth", s.Name, first, last)
		}
	}
	for _, s := range degYes.Series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		// Bounded: normalization shrinks n-1, so a mild rise is
		// expected, but nothing like the unpruned blowup.
		if last > first*2 {
			t.Errorf("pruning %s: degree centrality %.5f -> %.5f, expected bounded", s.Name, first, last)
		}
	}

	// Higher k gives higher closeness at every sample (the paper's
	// dashed/solid ordering).
	k5 := closeYes.SeriesByName("deg=5")
	k15 := closeYes.SeriesByName("deg=15")
	if k5 == nil || k15 == nil {
		t.Fatal("missing series")
	}
	for i := range k5.Points {
		if k15.Points[i].Y <= k5.Points[i].Y {
			t.Fatalf("closeness(k=15) <= closeness(k=5) at sample %d", i)
		}
	}
}

func TestFig5ShapesMatchPaper(t *testing.T) {
	comps, degree, diam, err := RunFig5(DefaultFig5Config(true, 0))
	if err != nil {
		t.Fatal(err)
	}
	n := 400.0

	// 5a/5b: DDSR stays one component until at least 90% deletion; the
	// normal graph shatters into many pieces.
	ddsrComp := comps.SeriesByName("DDSR")
	normComp := comps.SeriesByName("Normal")
	for _, p := range ddsrComp.Points {
		if p.X <= 0.9*n && p.Y > 1 {
			t.Fatalf("DDSR partitioned at %.0f deletions (%.0f%%)", p.X, 100*p.X/n)
		}
	}
	maxNorm := 0.0
	for _, p := range normComp.Points {
		if p.Y > maxNorm {
			maxNorm = p.Y
		}
	}
	if maxNorm < 5 {
		t.Fatalf("normal graph max components = %.0f, expected shattering", maxNorm)
	}

	// 5c/5d: DDSR degree centrality rises modestly; normal's falls.
	ddsrDeg := degree.SeriesByName("DDSR")
	if last := ddsrDeg.Points[len(ddsrDeg.Points)-2].Y; last <= ddsrDeg.Points[0].Y {
		t.Errorf("DDSR degree centrality did not rise: %.5f -> %.5f", ddsrDeg.Points[0].Y, last)
	}

	// 5e/5f: DDSR diameter shrinks as the population does; the normal
	// graph's diameter grows before partition.
	ddsrDiam := diam.SeriesByName("DDSR")
	first := ddsrDiam.Points[0].Y
	lastQuarter := ddsrDiam.Points[3*len(ddsrDiam.Points)/4].Y
	if lastQuarter > first {
		t.Errorf("DDSR diameter grew %.0f -> %.0f; paper shows it shrinking", first, lastQuarter)
	}
	normDiam := diam.SeriesByName("Normal")
	maxNormDiam := 0.0
	for _, p := range normDiam.Points {
		if p.Y > maxNormDiam {
			maxNormDiam = p.Y
		}
	}
	if maxNormDiam <= first {
		t.Errorf("normal diameter never exceeded the start (%.0f <= %.0f)", maxNormDiam, first)
	}
}

func TestFig6ThresholdNearFortyPercent(t *testing.T) {
	res, err := RunFig6(DefaultFig6Config(true))
	if err != nil {
		t.Fatal(err)
	}
	measured := res.SeriesByName("Graph")
	if measured == nil || len(measured.Points) == 0 {
		t.Fatal("missing measured series")
	}
	for _, p := range measured.Points {
		frac := p.Y / p.X
		// Finite-size theory: the threshold fraction is about
		// (1/n)^(1/k), i.e. ~0.50 at n=1000 falling toward ~0.38 at
		// n=15000 — the paper's "about 40%".
		if frac < 0.35 || frac > 0.62 {
			t.Errorf("n=%.0f: first-partition fraction %.2f outside [0.35, 0.62] (paper: ~0.4)", p.X, frac)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := RunTable1([]byte("experiment test"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTable1Shape(res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.CSV(), "ZeroAccess v1,RC4,RSA 512,yes") {
		t.Fatal("CSV lost the ZeroAccess row")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		ID: "t", Title: "demo", XLabel: "x",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3}}},
			{Name: "b", Points: []Point{{X: 1, Y: 5}}},
		},
	}
	r.AddNote("hello %d", 7)
	out := r.Render()
	for _, want := range []string{"demo", "a", "b", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	csv := r.CSV()
	if !strings.Contains(csv, "x,a,b") || !strings.Contains(csv, "2,3,") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}
