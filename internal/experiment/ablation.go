package experiment

import (
	"fmt"

	"onionbots/internal/ddsr"
	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

func init() {
	Register(Definition{
		ID:    "ablation",
		Title: "DDSR maintenance-policy ablation under gradual takedown",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultAblationConfig(p.Quick)
			cfg.Seed = p.Seed
			if p.N > 0 {
				cfg.N = p.N
			}
			if p.K > 0 {
				cfg.K = p.K
			}
			r, err := RunDDSRAblation(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// AblationConfig parameterizes the DDSR design-choice ablation: each
// maintenance ingredient is toggled independently and the overlay is
// subjected to the same gradual takedown.
type AblationConfig struct {
	// N and K define the starting topology.
	N, K int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultAblationConfig returns presets.
func DefaultAblationConfig(quick bool) AblationConfig {
	if quick {
		return AblationConfig{N: 300, K: 10, Seed: 6}
	}
	return AblationConfig{N: 2000, K: 10, Seed: 6}
}

// RunDDSRAblation compares four maintenance policies under identical
// gradual takedown: full DDSR, DDSR without the DMin floor, DDSR
// without pruning, and no repair at all. For each it reports the
// deletion fraction at which the overlay first partitions, the final
// maximum degree, and the maintenance work performed.
func RunDDSRAblation(cfg AblationConfig) (*Result, error) {
	res := &Result{
		ID:    "ablation",
		Title: fmt.Sprintf("DDSR maintenance ablation, %d-regular n=%d", cfg.K, cfg.N),
		Header: []string{"policy", "first partition", "max degree at 30%",
			"repair edges", "pruned edges", "floor edges"},
	}

	type policy struct {
		name   string
		repair bool
		cfg    ddsr.Config
	}
	full := ddsr.DefaultConfig(cfg.K)
	noFloor := full
	noFloor.DMin = 0
	noPrune := ddsr.Config{Pruning: false}
	policies := []policy{
		{"full DDSR (repair+prune+floor)", true, full},
		{"no DMin floor", true, noFloor},
		{"no pruning", true, noPrune},
		{"no repair (normal)", false, ddsr.Config{}},
	}

	for _, p := range policies {
		rng := sim.NewRNG(cfg.Seed)
		var m ddsr.Maintainer
		var overlay *ddsr.Overlay
		if p.repair {
			o, err := ddsr.NewRegular(cfg.N, cfg.K, p.cfg, rng)
			if err != nil {
				return nil, err
			}
			overlay = o
			m = o
		} else {
			nrm, err := ddsr.NewNormalRegular(cfg.N, cfg.K, rng)
			if err != nil {
				return nil, err
			}
			m = nrm
		}
		//onionlint:allow substream -- pre-substream seed schedule pinned by archived ablation runs; relabeling would reshuffle every published curve
		perm := sim.NewRNG(cfg.Seed + 1).Perm(cfg.N)

		firstPartition := -1
		maxDegAt30 := 0
		checkpoint30 := int(0.3 * float64(cfg.N))
		for i := 0; i < cfg.N-3; i++ {
			m.RemoveNode(perm[i])
			if i+1 == checkpoint30 {
				maxDegAt30 = m.Graph().MaxDegree()
			}
			if firstPartition < 0 && (i+1)%10 == 0 {
				if graph.NumComponents(m.Graph()) > 1 {
					firstPartition = i + 1
				}
			}
		}
		partition := "never (to 3 survivors)"
		if firstPartition >= 0 {
			partition = fmt.Sprintf("%.0f%%", 100*float64(firstPartition)/float64(cfg.N))
		}
		var st ddsr.Stats
		if overlay != nil {
			st = overlay.Stats()
		}
		res.Rows = append(res.Rows, []string{
			p.name, partition, fmt.Sprintf("%d", maxDegAt30),
			fmt.Sprintf("%d", st.RepairEdgesAdded),
			fmt.Sprintf("%d", st.EdgesPruned),
			fmt.Sprintf("%d", st.FloorEdgesAdded),
		})
	}
	res.AddNote("repair is what defers partition; pruning is what keeps degrees small; the floor tops up starved nodes")
	return res, nil
}
