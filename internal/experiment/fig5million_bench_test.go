package experiment

import (
	"runtime"
	"testing"
)

// BenchmarkFig5MillionNode is the tentpole exit criterion made routine:
// one n=10^6 Fig 5 grid point — build a million-node 10-regular DDSR
// overlay and its no-repair control, churn both down to a residue
// through the full deletion sweep, measuring components/centrality/
// diameter along the way. Beyond wall clock it reports the post-run
// heap high-water mark (heap-MiB) so BENCH_pr9.json records the memory
// profile staying flat at million-bot scale. Run with -benchtime=1x:
// one iteration IS the experiment (the Makefile bench target does
// this; the point costs tens of seconds, not nanoseconds).
func BenchmarkFig5MillionNode(b *testing.B) {
	const n = 1_000_000
	cfg := Fig5Config{
		N: n,
		K: 10,
		// 8 measurement stops: each snapshot is an O(n·K) CSR build plus
		// BFS sweeps, so sampling density is where the wall-clock budget
		// goes. The paper's curves need ~50 points; the routine grid
		// point needs enough to see the partition knee.
		MeasureEvery:   n / 8,
		DiameterSweeps: 2,
		Seed:           2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		comps, _, _, err := RunFig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(comps.Series) != 2 {
			b.Fatalf("expected 2 series, got %d", len(comps.Series))
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "heap-MiB")
}
