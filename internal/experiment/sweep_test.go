package experiment

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestParseSweepValidates(t *testing.T) {
	cases := []struct {
		name, spec, wantErr string
	}{
		{"no experiments", `{"name":"x"}`, "no experiments"},
		{"unknown field", `{"experiments":["fig6"],"seed":[1]}`, "seed"},
		{"negative trials", `{"experiments":["fig6"],"trials":-1}`, "negative trials"},
		{"bad json", `{`, "parse sweep"},
	}
	for _, tc := range cases {
		if _, err := ParseSweep([]byte(tc.spec)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseSweepDefaultsName(t *testing.T) {
	s, err := ParseSweep([]byte(`{"experiments":["fig6","fig3"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "fig6+fig3" {
		t.Fatalf("defaulted name = %q", s.Name)
	}
}

func TestSweepGridExpansion(t *testing.T) {
	s := &Sweep{
		Name:        "grid",
		Experiments: []string{"fig6"},
		Quick:       true,
		Ns:          []int{500, 600},
		Seeds:       []uint64{1, 2, 3},
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 6 {
		t.Fatalf("expanded to %d tasks, want 2*3 = 6", len(tasks))
	}
	// Deterministic order, axis values threaded into params, labels
	// reflect only the axes the spec set.
	first := tasks[0]
	if first.Label != "fig6/n=500/seed=1" {
		t.Fatalf("first label = %q", first.Label)
	}
	if first.Params.N != 500 || first.Params.Seed != 1 || !first.Params.Quick {
		t.Fatalf("first params = %+v", first.Params)
	}
	if first.Params.K != 0 || first.Params.Frac != 0 {
		t.Fatalf("unset axes leaked into params: %+v", first.Params)
	}
	last := tasks[5]
	if last.Label != "fig6/n=600/seed=3" || last.Params.N != 600 || last.Params.Seed != 3 {
		t.Fatalf("last task = %+v", last)
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.Label] {
			t.Fatalf("duplicate label %q", task.Label)
		}
		seen[task.Label] = true
	}
}

func TestSweepTrialsGetDistinctSubstreams(t *testing.T) {
	s := &Sweep{Name: "t", Experiments: []string{"fig3"}, Trials: 3}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("expanded to %d tasks, want 3 trials", len(tasks))
	}
	trs, err := (&Runner{Parallel: 3}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[uint64]bool{}
	for _, tr := range trs {
		seeds[tr.EffectiveSeed] = true
	}
	if len(seeds) != 3 {
		t.Fatalf("trials share substreams: %d distinct effective seeds, want 3", len(seeds))
	}
}

func TestSweepRejectsUnknownExperiment(t *testing.T) {
	s := &Sweep{Name: "bad", Experiments: []string{"fig6", "nope"}}
	if _, err := s.Tasks(); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestSweepEndToEndAggregate(t *testing.T) {
	// Acceptance shape: >= 9 grid points fanned through the pool into
	// one aggregated result, identical at any parallelism.
	s := &Sweep{
		Name:        "fig6-mini",
		Experiments: []string{"fig6"},
		Quick:       true,
		Ns:          []int{500, 600, 700},
		Seeds:       []uint64{1, 2, 3},
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 9 {
		t.Fatalf("grid = %d tasks, want 9", len(tasks))
	}
	run := func(parallel int) (*Result, []TaskResult) {
		trs, err := (&Runner{Parallel: parallel}).Run(tasks)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trs {
			if tr.Err != nil {
				t.Fatalf("%s: %v", tr.Task.Label, tr.Err)
			}
		}
		return s.Aggregate(trs), trs
	}
	agg1, _ := run(1)
	agg8, trs := run(8)
	if agg1.Render() != agg8.Render() {
		t.Fatalf("aggregate differs across parallelism:\n%s\n---\n%s", agg1.Render(), agg8.Render())
	}
	// 9 tasks x 2 series (Graph + reference line) = 18 raw rows, plus
	// one cross-seed (mean±sd seeds) row per n × series = 6 more.
	if len(agg8.Rows) != 24 {
		t.Fatalf("aggregate has %d rows, want 24", len(agg8.Rows))
	}
	if agg8.ID != "sweep-fig6-mini" {
		t.Fatalf("aggregate id = %q", agg8.ID)
	}

	doc, err := SweepJSON(s, trs, agg8)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Sweep struct {
			Name string `json:"name"`
		} `json:"sweep"`
		Tasks []struct {
			Task struct {
				Label string `json:"label"`
			} `json:"task"`
			EffectiveSeed uint64 `json:"effective_seed"`
		} `json:"tasks"`
		Aggregate struct {
			ID   string     `json:"id"`
			Rows [][]string `json:"rows"`
		} `json:"aggregate"`
	}
	if err := json.Unmarshal(doc, &decoded); err != nil {
		t.Fatalf("sweep JSON does not round-trip: %v", err)
	}
	if decoded.Sweep.Name != "fig6-mini" || len(decoded.Tasks) != 9 || len(decoded.Aggregate.Rows) != 24 {
		t.Fatalf("decoded doc wrong shape: %+v", decoded)
	}
	if decoded.Tasks[0].EffectiveSeed == 0 {
		t.Fatal("effective seed missing from JSON")
	}
}

func TestSweepAggregateReportsFailures(t *testing.T) {
	s := &Sweep{Name: "f", Experiments: []string{"fig3"}}
	agg := s.Aggregate([]TaskResult{
		{Task: Task{Label: "broken"}, Err: errors.New("boom")},
	})
	if len(agg.Rows) != 1 || !strings.Contains(agg.Rows[0][1], "error: boom") {
		t.Fatalf("failure row missing: %v", agg.Rows)
	}
	found := false
	for _, n := range agg.Notes {
		if strings.Contains(n, "1/1 tasks failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure note missing: %v", agg.Notes)
	}
}
