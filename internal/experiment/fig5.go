package experiment

import (
	"fmt"

	"onionbots/internal/ddsr"
	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

func init() {
	Register(Definition{
		ID:    "fig5",
		Title: "DDSR vs normal graph resilience under takedown (Figs 5a-5f)",
		Run: func(p Params) ([]*Result, error) {
			sizes := []int{5000, 15000}
			switch {
			case p.N > 0:
				sizes = []int{p.N}
			case p.Quick:
				sizes = []int{0} // quick preset ignores the size argument
			}
			var out []*Result
			for _, n := range sizes {
				cfg := DefaultFig5Config(p.Quick, n)
				cfg.Seed = p.Seed
				if p.Quick && p.N > 0 {
					// Quick presets pin N; keep the preset's sampling
					// density when a sweep overrides the size.
					cfg.N = p.N
					cfg.MeasureEvery = max(1, p.N/10)
				}
				if p.K > 0 {
					cfg.K = p.K
				}
				comps, degree, diam, err := RunFig5(cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, comps, degree, diam)
			}
			return out, nil
		},
	})
}

// Fig5Config parameterizes the Figure 5 resilience comparison: gradual
// deletion in a 10-regular graph, DDSR versus a normal (no-repair)
// graph, tracking connected components, degree centrality, and
// diameter.
type Fig5Config struct {
	// N is the graph size. The paper plots 5000 (left column) and
	// 15000 (right column).
	N int
	// K is the regularity. Paper: 10.
	K int
	// MeasureEvery samples each this many deletions.
	MeasureEvery int
	// DiameterSweeps controls the double-sweep diameter approximation.
	DiameterSweeps int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultFig5Config returns the paper's parameters for the given size
// (5000 or 15000), or a scaled-down quick preset.
func DefaultFig5Config(quick bool, n int) Fig5Config {
	if quick {
		return Fig5Config{N: 400, K: 10, MeasureEvery: 40, DiameterSweeps: 4, Seed: 2}
	}
	return Fig5Config{N: n, K: 10, MeasureEvery: max(1, n/50), DiameterSweeps: 4, Seed: 2}
}

// RunFig5 regenerates Figures 5a/5b (components), 5c/5d (degree
// centrality) and 5e/5f (diameter) for one graph size. Each result has
// a DDSR and a Normal series.
func RunFig5(cfg Fig5Config) (components, degree, diameter *Result, err error) {
	components = &Result{
		ID:     fmt.Sprintf("fig5-components-n=%d", cfg.N),
		Title:  fmt.Sprintf("Connected components under deletion, %d-regular n=%d", cfg.K, cfg.N),
		XLabel: "nodes deleted", YLabel: "connected components",
	}
	degree = &Result{
		ID:     fmt.Sprintf("fig5-degree-n=%d", cfg.N),
		Title:  fmt.Sprintf("Avg degree centrality under deletion, %d-regular n=%d", cfg.K, cfg.N),
		XLabel: "nodes deleted", YLabel: "degree centrality",
	}
	diameter = &Result{
		ID:     fmt.Sprintf("fig5-diameter-n=%d", cfg.N),
		Title:  fmt.Sprintf("Diameter under deletion, %d-regular n=%d", cfg.K, cfg.N),
		XLabel: "nodes deleted", YLabel: "diameter (largest component)",
	}

	type variant struct {
		name string
		m    ddsr.Maintainer
	}
	rng := sim.NewRNG(cfg.Seed)
	o, oerr := ddsr.NewRegular(cfg.N, cfg.K, ddsr.DefaultConfig(cfg.K), rng)
	if oerr != nil {
		return nil, nil, nil, oerr
	}
	nrm, nerr := ddsr.NewNormalRegular(cfg.N, cfg.K, sim.NewRNG(cfg.Seed))
	if nerr != nil {
		return nil, nil, nil, nerr
	}
	variants := []variant{{"DDSR", o}, {"Normal", nrm}}

	for _, v := range variants {
		//onionlint:allow substream -- pre-substream seed schedule pinned by archived Fig 5 runs; relabeling would reshuffle the takedown permutation
		perm := sim.NewRNG(cfg.Seed + 7).Perm(cfg.N)
		comp := Series{Name: v.name}
		deg := Series{Name: v.name}
		diam := Series{Name: v.name}
		//onionlint:allow substream -- same pinned schedule, maintenance stream
		mrng := sim.NewRNG(cfg.Seed + 11)
		measure := func(deleted int) {
			g := v.m.Graph()
			if g.NumNodes() == 0 {
				return
			}
			// One CSR snapshot feeds both the component count and the
			// diameter sweep; the seed built a fresh snapshot for each.
			ix := g.Snapshot()
			comp.Points = append(comp.Points, Point{X: float64(deleted), Y: float64(len(ix.Components()))})
			deg.Points = append(deg.Points, Point{X: float64(deleted), Y: graph.AvgDegreeCentrality(g)})
			d, _ := ix.DiameterApprox(cfg.DiameterSweeps, mrng)
			diam.Points = append(diam.Points, Point{X: float64(deleted), Y: float64(d)})
		}
		measure(0)
		// Delete all but a residue of 3 nodes, as the paper's x axes run
		// essentially to the full population.
		limit := cfg.N - 3
		for i := 0; i < limit; i++ {
			v.m.RemoveNode(perm[i])
			if (i+1)%cfg.MeasureEvery == 0 || i+1 == limit {
				measure(i + 1)
			}
		}
		components.Series = append(components.Series, comp)
		degree.Series = append(degree.Series, deg)
		diameter.Series = append(diameter.Series, diam)
	}
	annotateFig5(components, degree, diameter, cfg)
	return components, degree, diameter, nil
}

func annotateFig5(components, degree, diameter *Result, cfg Fig5Config) {
	// The paper's claims: DDSR stays a single component until almost
	// every node is gone; the normal graph shatters sharply after ~60%
	// deletion; DDSR degree centrality rises slightly (fixed degree,
	// shrinking population); DDSR diameter falls as the graph shrinks
	// while the normal diameter rises until partition.
	if ddsrSeries := components.SeriesByName("DDSR"); ddsrSeries != nil {
		maxComp := 0.0
		lastSingle := 0.0
		for _, p := range ddsrSeries.Points {
			if p.Y > maxComp {
				maxComp = p.Y
			}
			if p.Y <= 1 {
				lastSingle = p.X
			}
		}
		components.AddNote("DDSR stays connected through %.0f%% deletions (max components %.0f)",
			100*lastSingle/float64(cfg.N), maxComp)
	}
	if nrm := components.SeriesByName("Normal"); nrm != nil {
		for _, p := range nrm.Points {
			if p.Y > 1 {
				components.AddNote("Normal first partitions near %.0f%% deletions",
					100*p.X/float64(cfg.N))
				break
			}
		}
	}
	_ = degree
	_ = diameter
}
