package experiment

import (
	"fmt"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one named curve of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Result is a regenerated table or figure.
type Result struct {
	// ID is the experiment identifier ("fig4a", "table1", ...).
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// XLabel and YLabel name the axes for series-shaped results.
	XLabel string `json:"x_label,omitempty"`
	YLabel string `json:"y_label,omitempty"`
	// Series holds the curves (figure-shaped results).
	Series []Series `json:"series,omitempty"`
	// Header and Rows hold tabular results (table-shaped results).
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	// Notes records observations (thresholds, comparisons) the paper
	// states in prose.
	Notes []string `json:"notes,omitempty"`
}

// AddNote appends an observation.
func (r *Result) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AddPoint appends one sample to the named series, creating the series
// on first use (in first-use order, which keeps output deterministic).
func (r *Result) AddPoint(series string, x, y float64) {
	if s := r.SeriesByName(series); s != nil {
		s.Points = append(s.Points, Point{X: x, Y: y})
		return
	}
	r.Series = append(r.Series, Series{Name: series, Points: []Point{{X: x, Y: y}}})
}

// SeriesByName returns the named series, or nil.
func (r *Result) SeriesByName(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// Render produces a human-readable ASCII form.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Rows) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i < len(widths) {
					fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
				}
			}
			b.WriteString("\n")
		}
		writeRow(r.Header)
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	if len(r.Series) > 0 {
		fmt.Fprintf(&b, "%-12s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(&b, "%16s", s.Name)
		}
		b.WriteString("\n")
		// Series may sample different x values; print the union grid.
		grid := map[float64]struct{}{}
		for _, s := range r.Series {
			for _, p := range s.Points {
				grid[p.X] = struct{}{}
			}
		}
		xs := make([]float64, 0, len(grid))
		for x := range grid {
			xs = append(xs, x)
		}
		sortFloats(xs)
		for _, x := range xs {
			fmt.Fprintf(&b, "%-12.6g", x)
			for _, s := range r.Series {
				if y, ok := lookup(s, x); ok {
					fmt.Fprintf(&b, "%16.6g", y)
				} else {
					fmt.Fprintf(&b, "%16s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated values (series results get
// an x column plus one column per series; table results get the rows).
func (r *Result) CSV() string {
	var b strings.Builder
	if len(r.Rows) > 0 {
		b.WriteString(strings.Join(r.Header, ","))
		b.WriteString("\n")
		for _, row := range r.Rows {
			b.WriteString(strings.Join(row, ","))
			b.WriteString("\n")
		}
		return b.String()
	}
	cols := []string{r.XLabel}
	for _, s := range r.Series {
		cols = append(cols, s.Name)
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteString("\n")
	grid := map[float64]struct{}{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			grid[p.X] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(grid))
	for x := range grid {
		xs = append(xs, x)
	}
	sortFloats(xs)
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range r.Series {
			if y, ok := lookup(s, x); ok {
				fmt.Fprintf(&b, ",%g", y)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
