package experiment

import (
	"fmt"
	"strings"

	"onionbots/internal/ddsr"
	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

func init() {
	Register(Definition{
		ID:    "fig3",
		Title: "Self-repair walkthrough in the 12-node 3-regular graph (Fig 3)",
		// The walkthrough is a fixed scripted sequence; it has no
		// tunable parameters and takes no randomness from the task seed.
		Run: func(Params) ([]*Result, error) {
			r, _, err := RunFig3()
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// Fig3Graph builds the 12-node 3-regular topology of Figure 3, in which
// node 7's neighbors are 0, 1 and 4 and none of those three are
// adjacent to each other (the figure's dashed repair edges (0,1), (1,4)
// and (0,4) must not pre-exist).
func Fig3Graph() *graph.Graph {
	g := graph.New()
	edges := [][2]int{
		{7, 0}, {7, 1}, {7, 4},
		{0, 2}, {0, 3},
		{1, 5}, {1, 6},
		{4, 8}, {4, 9},
		{5, 6}, {5, 8},
		{6, 9},
		{8, 10},
		{9, 11},
		{2, 10}, {2, 11},
		{3, 10}, {3, 11},
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// Fig3RemovalOrder is the deletion sequence the figure's eight panels
// walk through.
var Fig3RemovalOrder = []int{7, 11, 8, 10, 9, 1, 4}

// Fig3Step records one panel of the walkthrough.
type Fig3Step struct {
	Removed    int
	EdgesAdded [][2]int
	NodesLeft  int
	EdgesLeft  int
	Connected  bool
	MaxDegree  int
}

// RunFig3 replays the Figure 3 self-repair walkthrough and reports each
// panel.
func RunFig3() (*Result, []Fig3Step, error) {
	g := Fig3Graph()
	// DMax 4 matches the figure: removing node 7 links its neighbors
	// pairwise, transiently raising their degrees to 4 before later
	// pruning; with DMax 3 the third dashed edge would be pruned away
	// immediately, which is not what the paper draws.
	o, err := ddsr.New(g, ddsr.Config{DMin: 2, DMax: 4, Pruning: true}, sim.NewRNG(3))
	if err != nil {
		return nil, nil, err
	}
	res := &Result{
		ID:     "fig3",
		Title:  "Node removal and self-repair in a 3-regular graph of 12 nodes",
		Header: []string{"step", "removed", "repair edges added", "nodes", "edges", "connected", "max degree"},
	}
	var steps []Fig3Step
	for i, victim := range Fig3RemovalOrder {
		before := edgeSet(o.Graph())
		statsBefore := o.Stats().RepairEdgesAdded
		o.RemoveNode(victim)
		added := newEdges(before, o.Graph())
		_, connected := graph.Diameter(o.Graph())
		step := Fig3Step{
			Removed:    victim,
			EdgesAdded: added,
			NodesLeft:  o.Graph().NumNodes(),
			EdgesLeft:  o.Graph().NumEdges(),
			Connected:  connected,
			MaxDegree:  o.Graph().MaxDegree(),
		}
		steps = append(steps, step)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", victim),
			renderEdges(added),
			fmt.Sprintf("%d", step.NodesLeft),
			fmt.Sprintf("%d", step.EdgesLeft),
			fmt.Sprintf("%v", step.Connected),
			fmt.Sprintf("%d", step.MaxDegree),
		})
		_ = statsBefore
	}
	res.AddNote("removing node 7 links its orphaned neighbors {0,1,4} pairwise, as in the paper's panel 2")
	res.AddNote("the survivor graph stays connected through all %d removals", len(Fig3RemovalOrder))
	return res, steps, nil
}

func edgeSet(g *graph.Graph) map[[2]int]struct{} {
	set := map[[2]int]struct{}{}
	for _, u := range g.Nodes() {
		for _, v := range g.Neighbors(u) {
			if u < v {
				set[[2]int{u, v}] = struct{}{}
			}
		}
	}
	return set
}

func newEdges(before map[[2]int]struct{}, g *graph.Graph) [][2]int {
	var out [][2]int
	for _, u := range g.Nodes() {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if _, ok := before[[2]int{u, v}]; !ok {
					out = append(out, [2]int{u, v})
				}
			}
		}
	}
	return out
}

func renderEdges(edges [][2]int) string {
	if len(edges) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(edges))
	for _, e := range edges {
		parts = append(parts, fmt.Sprintf("(%d,%d)", e[0], e[1]))
	}
	return strings.Join(parts, " ")
}
