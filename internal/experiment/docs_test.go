package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readRepoDoc loads a file relative to the repository root.
func readRepoDoc(t *testing.T, parts ...string) string {
	t.Helper()
	path := filepath.Join(append([]string{"..", ".."}, parts...)...)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing doc: %v", err)
	}
	return string(data)
}

func TestExperimentsHandbookCoversRegistry(t *testing.T) {
	// The handbook promises to catalogue every registered experiment;
	// hold it to that, so adding an experiment without documenting it
	// fails CI.
	handbook := readRepoDoc(t, "docs", "EXPERIMENTS.md")
	for _, id := range IDs() {
		if !strings.Contains(handbook, "`"+id+"`") {
			t.Errorf("docs/EXPERIMENTS.md does not catalogue experiment %q", id)
		}
	}
}

func TestHandbookIsLinkedFromReadmeAndArchitecture(t *testing.T) {
	for _, doc := range [][]string{{"README.md"}, {"docs", "ARCHITECTURE.md"}} {
		content := readRepoDoc(t, doc...)
		if !strings.Contains(content, "EXPERIMENTS.md") {
			t.Errorf("%s does not link docs/EXPERIMENTS.md", filepath.Join(doc...))
		}
	}
}

func TestReadmeReproductionTableCoversRegistry(t *testing.T) {
	readme := readRepoDoc(t, "README.md")
	for _, id := range IDs() {
		if !strings.Contains(readme, "`"+id+"`") {
			t.Errorf("README reproduction table misses experiment %q", id)
		}
	}
}
