package experiment

import (
	"fmt"
	"strings"

	"onionbots/internal/churn"
	"onionbots/internal/faults"
	"onionbots/internal/soap"
	"onionbots/internal/stats"
)

// Threshold is a declarative answer-extraction rule for a sweep grid.
// For every combination of the sweep's other axes, Aggregate walks the
// named axis in spec order, averages the chosen per-task series
// statistic over replicates at each axis value, and reports where the
// mean crosses the bound. A churn grid with
//
//	{"series": "quality", "stat": "last", "axis": "churn", "below": 0.8}
//
// therefore answers "at which churn intensity does repair quality
// first drop under 0.8?" as a single aggregate row.
//
// On a numeric axis the crossing is linearly interpolated between the
// last grid point on the safe side and the first on the crossed side,
// so the row reads "λ≈12.4" rather than "first listed λ" — the grid
// brackets the answer instead of quantizing it. Numeric axes are n, k,
// and frac, plus any churn/soap/faults axis whose specs share a shape
// and differ in exactly one numeric knob (a leave-rate ladder, a clone
// budget ladder, ...). Genuinely categorical axes — mixed processes,
// several knobs varying at once — keep the historical behavior and
// report the first crossing value's label exactly.
type Threshold struct {
	// Result restricts the scan to results with this ID (empty = all;
	// a trailing "*" matches by prefix, for per-size result IDs like
	// "fig5-components-n=400").
	Result string `json:"result,omitempty"`
	// Series names the series whose statistic is scanned.
	Series string `json:"series"`
	// Stat picks the per-task scalar: "first", "last" (default),
	// "min", or "max" of the series' y values.
	Stat string `json:"stat,omitempty"`
	// Axis is the swept axis to walk: "n", "k", "frac", "churn",
	// "soap", or "faults". It must actually be swept by the spec.
	// "seed" is rejected — interpolating over seeds is meaningless;
	// seeds are replicates, not a parameter. Replicate with trials (or
	// read the cross-seed mean±sd rows) instead.
	Axis string `json:"axis"`
	// Above and Below are the crossing bounds; exactly one must be set.
	Above *float64 `json:"above,omitempty"`
	Below *float64 `json:"below,omitempty"`
}

// validate checks the threshold against the spec's swept axes.
func (th Threshold) validate(s *Sweep) error {
	if th.Series == "" {
		return fmt.Errorf("threshold: no series named")
	}
	if !ValidStat(th.Stat) {
		return fmt.Errorf("threshold: unknown stat %q (want first, last, min, or max)", th.Stat)
	}
	if (th.Above == nil) == (th.Below == nil) {
		return fmt.Errorf("threshold: exactly one of above/below must be set")
	}
	if th.Axis == "seed" {
		return fmt.Errorf("threshold: axis \"seed\" cannot be scanned — seeds are replicates, not a parameter, and interpolating over them is meaningless; use trials (or the cross-seed mean±sd rows) instead")
	}
	swept := map[string]bool{
		"n": len(s.Ns) > 0, "k": len(s.Ks) > 0, "frac": len(s.Fracs) > 0,
		"churn": len(s.Churn) > 0, "soap": len(s.Soap) > 0,
		"faults": len(s.Faults) > 0,
	}
	isSwept, known := swept[th.Axis]
	if !known {
		return fmt.Errorf("threshold: unknown axis %q (want n, k, frac, churn, soap, or faults)", th.Axis)
	}
	if !isSwept {
		return fmt.Errorf("threshold: axis %q is not swept by this spec", th.Axis)
	}
	return nil
}

// crossed reports whether a mean value satisfies the bound.
func (th Threshold) crossed(mean float64) bool {
	if th.Above != nil {
		return mean > *th.Above
	}
	return mean < *th.Below
}

// bound renders the crossing rule ("> 0.5", "< 0.8").
func (th Threshold) bound() string {
	if th.Above != nil {
		return fmt.Sprintf("> %g", *th.Above)
	}
	return fmt.Sprintf("< %g", *th.Below)
}

// String renders the rule for aggregate rows and error messages:
// "first churn with mean quality.last < 0.8". On numeric axes the
// reported crossing is linearly interpolated between grid points
// (rendered "axis≈value" in the row), not the first listed value.
func (th Threshold) String() string {
	stat := th.Stat
	if stat == "" {
		stat = "last"
	}
	return fmt.Sprintf("first %s with mean %s.%s %s", th.Axis, th.Series, stat, th.bound())
}

// ValidStat reports whether stat names a known per-task scalar
// ("first", "last", "min", "max", or "" for the last-value default).
func ValidStat(stat string) bool {
	switch stat {
	case "", "first", "last", "min", "max":
		return true
	}
	return false
}

// SeriesStat extracts the named scalar from a series: the first, last,
// minimum, or maximum of its y values ("" defaults to "last").
func SeriesStat(s Series, stat string) float64 {
	first, last, min, max := seriesStats(s)
	switch stat {
	case "first":
		return first
	case "min":
		return min
	case "max":
		return max
	default:
		return last
	}
}

// MatchResultID reports whether a result ID matches a selector: empty
// matches everything, a trailing "*" matches by prefix, anything else
// matches exactly. Experiments that embed parameters in result IDs
// ("fig5-components-n=400") stay selectable across grid points via the
// prefix form.
func MatchResultID(selector, id string) bool {
	if selector == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(selector, "*"); ok {
		return strings.HasPrefix(id, prefix)
	}
	return selector == id
}

// AxisCell is one scanned value of a swept axis for one group: the
// axis value's label (exactly as task labels embed it), its numeric
// position when the axis is numeric, and the replicate mean of the
// scanned statistic.
type AxisCell struct {
	// Label is the axis value as task labels embed it ("16",
	// "poisson;l=16", ...).
	Label string
	// X is the numeric axis value; meaningful only when the scan is
	// numeric.
	X float64
	// Mean is the mean of the scanned statistic over the replicates at
	// this axis value; N counts them. N == 0 means no task produced the
	// scanned series here.
	Mean float64
	N    int
}

// AxisScan is the result of walking one swept axis: for each
// combination of the sweep's other axes (a "group"), the replicate-mean
// statistic at every axis value, in spec order.
type AxisScan struct {
	// Axis names the scanned axis; Display is how crossings render the
	// axis ("n", "λ", "clones", ...). Numeric reports whether the axis
	// values carry interpolatable numeric positions.
	Axis    string
	Display string
	Numeric bool
	// Groups holds one entry per combination of the non-scanned axes,
	// in first-appearance (task) order. Every group's Cells slice is
	// parallel to the axis's spec-order values.
	Groups []AxisGroup
}

// AxisGroup is one combination of the non-scanned axes.
type AxisGroup struct {
	// Group is the task label with the scanned-axis and trial
	// components stripped ("churn-repair/seed=1").
	Group string
	Cells []AxisCell
}

// ScanAxis walks a swept axis: for every combination of the sweep's
// other axes it averages the named series statistic over replicates at
// each axis value. This is the shared machinery under threshold rows
// and the scenario library's axis-shaped expectations (monotone,
// threshold_in, gap). resultID selects which sub-results contribute
// (see MatchResultID); stat is a SeriesStat name.
func (s *Sweep) ScanAxis(trs []TaskResult, resultID, series, stat, axis string) (*AxisScan, error) {
	if series == "" {
		return nil, fmt.Errorf("scan axis: no series named")
	}
	if !ValidStat(stat) {
		return nil, fmt.Errorf("scan axis: unknown stat %q (want first, last, min, or max)", stat)
	}
	labels := s.axisValueLabels(axis)
	if len(labels) == 0 {
		return nil, fmt.Errorf("scan axis: axis %q is not swept by this spec", axis)
	}
	scan := &AxisScan{Axis: axis}
	var xs []float64
	xs, scan.Display, scan.Numeric = s.axisNumericValues(axis)

	index := make(map[string]int, len(labels))
	for i, l := range labels {
		index[l] = i
	}
	type acc = stats.Welford
	groups := map[string][]*acc{}
	var order []string
	for _, tr := range trs {
		if tr.Err != nil {
			continue
		}
		axisVal := labelComponent(tr.Task.Label, axis)
		ai, ok := index[axisVal]
		if !ok {
			continue
		}
		group := stripComponents(tr.Task.Label, axis, "trial")
		cells, seen := groups[group]
		if !seen {
			cells = make([]*acc, len(labels))
			groups[group] = cells
			order = append(order, group)
		}
		for _, r := range tr.Results {
			if !MatchResultID(resultID, r.ID) {
				continue
			}
			for _, sr := range r.Series {
				if sr.Name != series {
					continue
				}
				if cells[ai] == nil {
					cells[ai] = &acc{}
				}
				cells[ai].Add(SeriesStat(sr, stat))
			}
		}
	}
	for _, group := range order {
		g := AxisGroup{Group: group, Cells: make([]AxisCell, len(labels))}
		for i, c := range groups[group] {
			g.Cells[i] = AxisCell{Label: labels[i]}
			if scan.Numeric {
				g.Cells[i].X = xs[i]
			}
			if c != nil {
				g.Cells[i].Mean = c.Mean()
				g.Cells[i].N = c.N()
			}
		}
		scan.Groups = append(scan.Groups, g)
	}
	return scan, nil
}

// Crossing locates where the replicate-mean statistic first satisfies
// the threshold's bound along one group's cells. On a numeric scan the
// crossing is linearly interpolated between the last safe grid point
// and the first crossed one ("λ≈12.4"), with x carrying the
// interpolated position; on a categorical scan it is the first crossed
// value's label, exactly (x is meaningless). found is false when no
// scanned cell crosses; scanned counts cells with data.
func (th Threshold) Crossing(scan *AxisScan, g AxisGroup) (label string, x, mean float64, scanned int, found bool) {
	type pt struct {
		x, mean float64
	}
	var prev *pt
	for _, c := range g.Cells {
		if c.N == 0 {
			continue
		}
		scanned++
		if !found && th.crossed(c.Mean) {
			found = true
			mean = c.Mean
			if !scan.Numeric {
				label = c.Label
			} else {
				x = c.X
				if prev != nil && c.Mean != prev.mean {
					// Interpolate the axis value where the mean meets the
					// bound between the bracketing grid points.
					b := th.boundValue()
					x = prev.x + (b-prev.mean)*(c.X-prev.x)/(c.Mean-prev.mean)
				}
				label = FormatAxisValue(scan.Display, x)
			}
		}
		prev = &pt{x: c.X, mean: c.Mean}
	}
	return label, x, mean, scanned, found
}

// boundValue returns the crossing bound as a number.
func (th Threshold) boundValue() float64 {
	if th.Above != nil {
		return *th.Above
	}
	return *th.Below
}

// FormatAxisValue renders an interpolated numeric axis crossing
// ("λ≈12.4", "n≈1123"). Four significant digits keep rows readable
// while still localizing a crossing far more finely than the grid.
func FormatAxisValue(display string, x float64) string {
	return fmt.Sprintf("%s≈%.4g", display, x)
}

// axisNumericValues reports whether a swept axis carries numeric,
// interpolatable positions, and if so which values and under what
// display name. n/k/frac are numeric by construction. A churn, soap,
// or faults axis is numeric when its specs share a shape (same
// process/flags) and differ in exactly one numeric knob — a λ ladder,
// a clone-budget ladder, an outage-fraction ladder. Anything else
// (mixed processes, several knobs varying) is categorical.
func (s *Sweep) axisNumericValues(axis string) ([]float64, string, bool) {
	switch axis {
	case "n", "k":
		var src []int
		if axis == "n" {
			src = s.Ns
		} else {
			src = s.Ks
		}
		xs := make([]float64, len(src))
		for i, v := range src {
			xs[i] = float64(v)
		}
		return xs, axis, len(xs) > 0
	case "frac":
		return append([]float64(nil), s.Fracs...), axis, len(s.Fracs) > 0
	case "churn":
		return churnAxisNumeric(s.Churn)
	case "soap":
		return soapAxisNumeric(s.Soap)
	case "faults":
		return faultsAxisNumeric(s.Faults)
	}
	return nil, "", false
}

// axisKnob is one numeric field of a spec axis, sampled across the
// axis's specs.
type axisKnob struct {
	name string
	vals []float64
}

// singleVaryingKnob returns the one knob whose values differ across
// the axis, if exactly one does.
func singleVaryingKnob(knobs []axisKnob) ([]float64, string, bool) {
	varying := -1
	for i, k := range knobs {
		for _, v := range k.vals[1:] {
			if v != k.vals[0] {
				if varying >= 0 && varying != i {
					return nil, "", false
				}
				varying = i
				break
			}
		}
	}
	if varying < 0 {
		return nil, "", false
	}
	return knobs[varying].vals, knobs[varying].name, true
}

func churnAxisNumeric(specs []churn.Spec) ([]float64, string, bool) {
	if len(specs) < 2 {
		return nil, "", false
	}
	for _, sp := range specs[1:] {
		if sp.Process != specs[0].Process || sp.TraceFile != specs[0].TraceFile {
			return nil, "", false
		}
	}
	knobs := []axisKnob{
		// The leave rate is THE λ of the churn literature; the join
		// rate gets a distinguishing suffix.
		{"λ", nil}, {"λjoin", nil}, {"amplitude", nil}, {"period_h", nil},
		{"regions", nil}, {"frac", nil}, {"at_h", nil}, {"hops", nil},
	}
	for _, sp := range specs {
		knobs[0].vals = append(knobs[0].vals, sp.Leave)
		knobs[1].vals = append(knobs[1].vals, sp.Join)
		knobs[2].vals = append(knobs[2].vals, sp.Amplitude)
		knobs[3].vals = append(knobs[3].vals, sp.PeriodH)
		knobs[4].vals = append(knobs[4].vals, float64(sp.Regions))
		knobs[5].vals = append(knobs[5].vals, sp.Frac)
		knobs[6].vals = append(knobs[6].vals, sp.AtH)
		knobs[7].vals = append(knobs[7].vals, float64(sp.Hops))
	}
	return singleVaryingKnob(knobs)
}

func soapAxisNumeric(specs []soap.Spec) ([]float64, string, bool) {
	if len(specs) < 2 {
		return nil, "", false
	}
	for _, sp := range specs[1:] {
		if sp.SolvePoW != specs[0].SolvePoW {
			return nil, "", false
		}
	}
	knobs := []axisKnob{
		{"clones", nil}, {"round_s", nil}, {"non", nil}, {"bits", nil},
	}
	for _, sp := range specs {
		knobs[0].vals = append(knobs[0].vals, float64(sp.Clones))
		knobs[1].vals = append(knobs[1].vals, sp.RoundS)
		knobs[2].vals = append(knobs[2].vals, float64(sp.NoN))
		knobs[3].vals = append(knobs[3].vals, float64(sp.SolveBits))
	}
	return singleVaryingKnob(knobs)
}

func faultsAxisNumeric(specs []faults.Spec) ([]float64, string, bool) {
	if len(specs) < 2 {
		return nil, "", false
	}
	for _, sp := range specs[1:] {
		if sp.OutageTargeted != specs[0].OutageTargeted {
			return nil, "", false
		}
	}
	knobs := []axisKnob{
		{"crash_rate", nil}, {"restart_h", nil}, {"outage_frac", nil},
		{"outage_at_h", nil}, {"intro_fail_p", nil}, {"retries", nil},
		{"backoff_s", nil},
	}
	for _, sp := range specs {
		knobs[0].vals = append(knobs[0].vals, sp.CrashRate)
		knobs[1].vals = append(knobs[1].vals, sp.RestartH)
		knobs[2].vals = append(knobs[2].vals, sp.OutageFrac)
		knobs[3].vals = append(knobs[3].vals, sp.OutageAtH)
		knobs[4].vals = append(knobs[4].vals, sp.IntroFailP)
		knobs[5].vals = append(knobs[5].vals, float64(sp.RetryAttempts))
		knobs[6].vals = append(knobs[6].vals, sp.RetryBackoffS)
	}
	return singleVaryingKnob(knobs)
}

// appendThreshold emits the threshold's extracted rows: for each
// combination of the non-scanned axes (in first-appearance order), the
// scanned axis is walked in spec order and the crossing — interpolated
// on numeric axes, the first crossed label on categorical ones — is
// reported in the y.first column, with the crossing-side mean in
// last.mean.
func (s *Sweep) appendThreshold(res *Result, trs []TaskResult, th Threshold) {
	scan, err := s.ScanAxis(trs, th.Result, th.Series, th.Stat, th.Axis)
	if err != nil {
		// Thresholds are validated at parse time; a scan error here
		// means the spec was built programmatically and is malformed.
		// Surface it as a row rather than dropping the rule silently.
		res.Rows = append(res.Rows, []string{
			"-", "(threshold)", th.String(), "-",
			"error: " + err.Error(), "-", "-", "-", "-", "-", "-",
		})
		return
	}
	rule := th.String()
	if scan.Numeric {
		rule += " (interpolated)"
	}
	for _, g := range scan.Groups {
		label, _, mean, scanned, found := th.Crossing(scan, g)
		crossing, crossingMean := "(not crossed)", "-"
		if found {
			crossing = label
			crossingMean = fmt.Sprintf("%g", mean)
		}
		res.Rows = append(res.Rows, []string{
			g.Group, "(threshold)", rule,
			fmt.Sprintf("%d", scanned),
			crossing, "-", "-", "-", crossingMean, "-", "-",
		})
	}
}
