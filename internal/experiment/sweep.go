package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Sweep is a scenario-sweep specification: one or more registered
// experiments crossed with parameter grids. The zero value of every
// axis means "keep the experiment's preset"; listing values fans the
// experiment out over them. A sweep with E experiments, |ns| sizes,
// |ks| degrees, |fracs| fractions, |seeds| seeds and T trials expands
// to E*|ns|*|ks|*|fracs|*|seeds|*T tasks, each with its own RNG
// substream derived from (seed, task label).
//
// Sweeps are written as JSON files (see examples/sweep):
//
//	{
//	  "name": "fig6-grid",
//	  "experiments": ["fig6"],
//	  "quick": true,
//	  "ns": [800, 1000, 1200],
//	  "seeds": [1, 2, 3]
//	}
type Sweep struct {
	// Name labels the sweep; the aggregate result's ID is "sweep-"+Name.
	Name string `json:"name"`
	// Experiments are the registry IDs to fan out.
	Experiments []string `json:"experiments"`
	// Quick selects the scaled-down presets for every task.
	Quick bool `json:"quick,omitempty"`
	// Ns, Ks, Fracs and Seeds are the grid axes (empty = preset).
	Ns    []int     `json:"ns,omitempty"`
	Ks    []int     `json:"ks,omitempty"`
	Fracs []float64 `json:"fracs,omitempty"`
	Seeds []uint64  `json:"seeds,omitempty"`
	// Trials replicates every grid point this many times (default 1).
	// Replicas share Params but get distinct labels, hence distinct RNG
	// substreams — the cheap way to average away seed noise.
	Trials int `json:"trials,omitempty"`
}

// ParseSweep decodes and validates a JSON sweep spec. Unknown fields
// are rejected so a typo ("seed" for "seeds") cannot silently collapse
// a grid axis.
func ParseSweep(data []byte) (*Sweep, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Sweep
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parse sweep: %w", err)
	}
	if len(s.Experiments) == 0 {
		return nil, fmt.Errorf("parse sweep: no experiments listed")
	}
	if s.Trials < 0 {
		return nil, fmt.Errorf("parse sweep: negative trials %d", s.Trials)
	}
	if s.Name == "" {
		s.Name = strings.Join(s.Experiments, "+")
	}
	return &s, nil
}

// LoadSweep reads and parses a sweep spec file.
func LoadSweep(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSweep(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Tasks expands the sweep into its full task grid, in deterministic
// order (experiments × ns × ks × fracs × seeds × trials). Every
// experiment ID is checked against the registry up front so a bad spec
// fails before any work starts.
func (s *Sweep) Tasks() ([]Task, error) {
	for _, id := range s.Experiments {
		if _, ok := Lookup(id); !ok {
			return nil, fmt.Errorf("sweep %s: unknown experiment %q", s.Name, id)
		}
	}
	ns, nSet := axisInts(s.Ns)
	ks, kSet := axisInts(s.Ks)
	fracs, fracSet := axisFloats(s.Fracs)
	seeds, seedSet := axisSeeds(s.Seeds)
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}

	var tasks []Task
	for _, id := range s.Experiments {
		for _, n := range ns {
			for _, k := range ks {
				for _, frac := range fracs {
					for _, seed := range seeds {
						for trial := 0; trial < trials; trial++ {
							var label strings.Builder
							label.WriteString(id)
							if nSet {
								fmt.Fprintf(&label, "/n=%d", n)
							}
							if kSet {
								fmt.Fprintf(&label, "/k=%d", k)
							}
							if fracSet {
								fmt.Fprintf(&label, "/frac=%g", frac)
							}
							if seedSet {
								fmt.Fprintf(&label, "/seed=%d", seed)
							}
							if s.Trials > 1 {
								fmt.Fprintf(&label, "/trial=%d", trial)
							}
							tasks = append(tasks, Task{
								Label:      label.String(),
								Experiment: id,
								Params: Params{
									Quick: s.Quick, Seed: seed,
									N: n, K: k, Frac: frac,
								},
							})
						}
					}
				}
			}
		}
	}
	return tasks, nil
}

// axisInts maps an absent axis to the single "keep preset" value.
func axisInts(xs []int) ([]int, bool) {
	if len(xs) == 0 {
		return []int{0}, false
	}
	return xs, true
}

func axisFloats(xs []float64) ([]float64, bool) {
	if len(xs) == 0 {
		return []float64{0}, false
	}
	return xs, true
}

func axisSeeds(xs []uint64) ([]uint64, bool) {
	if len(xs) == 0 {
		return []uint64{1}, false
	}
	return xs, true
}

// Aggregate folds a sweep's task results into one table-shaped Result:
// a row per produced series (first/last/min/max of y) and a row per
// table-shaped sub-result, so a whole grid reads as a single table and
// exports through the usual Render/CSV/JSON paths. Failed tasks appear
// as error rows rather than vanishing.
func (s *Sweep) Aggregate(trs []TaskResult) *Result {
	res := &Result{
		ID:    "sweep-" + s.Name,
		Title: fmt.Sprintf("Scenario sweep %s: %s over %d tasks", s.Name, strings.Join(s.Experiments, ","), len(trs)),
		Header: []string{"task", "result", "series", "points",
			"y.first", "y.last", "y.min", "y.max"},
	}
	failed := 0
	for _, tr := range trs {
		if tr.Err != nil {
			failed++
			res.Rows = append(res.Rows, []string{
				tr.Task.Label, "error: " + tr.Err.Error(), "-", "-", "-", "-", "-", "-",
			})
			continue
		}
		for _, r := range tr.Results {
			for _, series := range r.Series {
				first, last, min, max := seriesStats(series)
				res.Rows = append(res.Rows, []string{
					tr.Task.Label, r.ID, series.Name,
					fmt.Sprintf("%d", len(series.Points)),
					fmt.Sprintf("%g", first), fmt.Sprintf("%g", last),
					fmt.Sprintf("%g", min), fmt.Sprintf("%g", max),
				})
			}
			if len(r.Rows) > 0 {
				res.Rows = append(res.Rows, []string{
					tr.Task.Label, r.ID, "(table)",
					fmt.Sprintf("%d", len(r.Rows)), "-", "-", "-", "-",
				})
			}
		}
	}
	res.AddNote("grid: %d experiments × ns=%v ks=%v fracs=%v seeds=%v trials=%d",
		len(s.Experiments), s.Ns, s.Ks, s.Fracs, s.Seeds, max(1, s.Trials))
	if failed > 0 {
		res.AddNote("%d/%d tasks failed", failed, len(trs))
	}
	return res
}

func seriesStats(s Series) (first, last, min, max float64) {
	if len(s.Points) == 0 {
		return 0, 0, 0, 0
	}
	first = s.Points[0].Y
	last = s.Points[len(s.Points)-1].Y
	min, max = first, first
	for _, p := range s.Points {
		if p.Y < min {
			min = p.Y
		}
		if p.Y > max {
			max = p.Y
		}
	}
	return first, last, min, max
}
