package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"onionbots/internal/churn"
	"onionbots/internal/faults"
	"onionbots/internal/jsonx"
	"onionbots/internal/soap"
	"onionbots/internal/stats"
	"onionbots/internal/tor"
)

// Sweep is a scenario-sweep specification: one or more registered
// experiments crossed with parameter grids. The zero value of every
// axis means "keep the experiment's preset"; listing values fans the
// experiment out over them. A sweep with E experiments, |ns| sizes,
// |ks| degrees, |fracs| fractions, |seeds| seeds and T trials expands
// to E*|ns|*|ks|*|fracs|*|seeds|*T tasks, each with its own RNG
// substream derived from (seed, task label).
//
// Sweeps are written as JSON files (see examples/sweep):
//
//	{
//	  "name": "fig6-grid",
//	  "experiments": ["fig6"],
//	  "quick": true,
//	  "ns": [800, 1000, 1200],
//	  "seeds": [1, 2, 3]
//	}
type Sweep struct {
	// Name labels the sweep; the aggregate result's ID is "sweep-"+Name.
	Name string `json:"name"`
	// Experiments are the registry IDs to fan out.
	Experiments []string `json:"experiments"`
	// Quick selects the scaled-down presets for every task.
	Quick bool `json:"quick,omitempty"`
	// Ns, Ks, Fracs and Seeds are the grid axes (empty = preset).
	Ns    []int     `json:"ns,omitempty"`
	Ks    []int     `json:"ks,omitempty"`
	Fracs []float64 `json:"fracs,omitempty"`
	Seeds []uint64  `json:"seeds,omitempty"`
	// Churn sweeps dynamic-membership scenarios, one task per listed
	// spec, exactly like the static axes — the lever behind questions
	// such as "how does DDSR repair degrade under Poisson leave at λ?".
	Churn []churn.Spec `json:"churn,omitempty"`
	// Soap sweeps mitigation-campaign configurations the same way —
	// crossed with Churn it answers "does a clone budget that contains
	// a static population still contain a moving one?".
	Soap []soap.Spec `json:"soap,omitempty"`
	// Faults sweeps infrastructure fault planes (relay crashes, HSDir
	// outage waves, intro failures) bundled with client retry budgets —
	// one axis crossing failure intensity against resilience, which is
	// how "does a retry budget buy back C&C reachability under a 30%
	// directory outage?" becomes a grid question.
	Faults []faults.Spec `json:"faults,omitempty"`
	// Stores sweeps the DescriptorStore backend ("flat", "sharded",
	// "mmap"). Backends are observably identical, so this axis checks
	// the memory plane, not the protocol: the per-store rows of a grid
	// must agree exactly, while the bench harness shows the footprint
	// difference.
	Stores []string `json:"stores,omitempty"`
	// Trials replicates every grid point this many times (default 1).
	// Replicas share Params but get distinct labels, hence distinct RNG
	// substreams — the cheap way to average away seed noise.
	Trials int `json:"trials,omitempty"`
	// Thresholds extract answers from the aggregated grid: each one
	// scans a swept axis for the first value where a series statistic
	// crosses a bound ("λ at first partition"). See Threshold.
	Thresholds []Threshold `json:"thresholds,omitempty"`
}

// ParseSweep decodes and validates a JSON sweep spec. Unknown fields
// are rejected so a typo ("seed" for "seeds") cannot silently collapse
// a grid axis.
func ParseSweep(data []byte) (*Sweep, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Sweep
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parse sweep: %w", jsonx.Describe(data, err))
	}
	if len(s.Experiments) == 0 {
		return nil, fmt.Errorf("parse sweep: no experiments listed")
	}
	if s.Trials < 0 {
		return nil, fmt.Errorf("parse sweep: negative trials %d", s.Trials)
	}
	seen := make(map[string]struct{}, len(s.Churn))
	for i, spec := range s.Churn {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("parse sweep: churn[%d]: %w", i, err)
		}
		// Distinct specs must produce distinct labels: the label is the
		// task's (and substream's) identity on this axis.
		if _, dup := seen[spec.Label()]; dup {
			return nil, fmt.Errorf("parse sweep: duplicate churn spec %q", spec.Label())
		}
		seen[spec.Label()] = struct{}{}
	}
	seenSoap := make(map[string]struct{}, len(s.Soap))
	for i, spec := range s.Soap {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("parse sweep: soap[%d]: %w", i, err)
		}
		if _, dup := seenSoap[spec.Label()]; dup {
			return nil, fmt.Errorf("parse sweep: duplicate soap spec %q", spec.Label())
		}
		seenSoap[spec.Label()] = struct{}{}
	}
	seenFaults := make(map[string]struct{}, len(s.Faults))
	for i, spec := range s.Faults {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("parse sweep: faults[%d]: %w", i, err)
		}
		if _, dup := seenFaults[spec.Label()]; dup {
			return nil, fmt.Errorf("parse sweep: duplicate faults spec %q", spec.Label())
		}
		seenFaults[spec.Label()] = struct{}{}
	}
	seenStores := make(map[string]struct{}, len(s.Stores))
	for i, name := range s.Stores {
		if _, err := tor.NewDescriptorStoreByName(name); err != nil {
			return nil, fmt.Errorf("parse sweep: stores[%d]: %w", i, err)
		}
		if _, dup := seenStores[name]; dup {
			return nil, fmt.Errorf("parse sweep: duplicate store %q", name)
		}
		seenStores[name] = struct{}{}
	}
	for i, th := range s.Thresholds {
		if err := th.validate(&s); err != nil {
			return nil, fmt.Errorf("parse sweep: thresholds[%d]: %w", i, err)
		}
	}
	if s.Name == "" {
		s.Name = strings.Join(s.Experiments, "+")
	}
	return &s, nil
}

// LoadSweep reads and parses a sweep spec file.
func LoadSweep(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSweep(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Tasks expands the sweep into its full task grid, in deterministic
// order (experiments × ns × ks × fracs × churn × soap × faults ×
// stores × seeds × trials). Every experiment ID is checked against the registry
// up front so a bad spec fails before any work starts.
func (s *Sweep) Tasks() ([]Task, error) {
	for _, id := range s.Experiments {
		if _, ok := Lookup(id); !ok {
			return nil, fmt.Errorf("sweep %s: unknown experiment %q", s.Name, id)
		}
	}
	ns, nSet := axisInts(s.Ns)
	ks, kSet := axisInts(s.Ks)
	fracs, fracSet := axisFloats(s.Fracs)
	churns, churnSet := axisChurn(s.Churn)
	soaps, soapSet := axisSoap(s.Soap)
	faultSpecs, faultsSet := axisFaults(s.Faults)
	stores, storeSet := axisStores(s.Stores)
	seeds, seedSet := axisSeeds(s.Seeds)
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}

	var tasks []Task
	for _, id := range s.Experiments {
		for _, n := range ns {
			for _, k := range ks {
				for _, frac := range fracs {
					for ci := range churns {
						for si := range soaps {
							for fi := range faultSpecs {
								for _, store := range stores {
									for _, seed := range seeds {
										for trial := 0; trial < trials; trial++ {
											var label strings.Builder
											label.WriteString(id)
											if nSet {
												fmt.Fprintf(&label, "/n=%d", n)
											}
											if kSet {
												fmt.Fprintf(&label, "/k=%d", k)
											}
											if fracSet {
												fmt.Fprintf(&label, "/frac=%g", frac)
											}
											var cspec *churn.Spec
											if churnSet {
												cspec = &churns[ci]
												fmt.Fprintf(&label, "/churn=%s", cspec.Label())
											}
											var sspec *soap.Spec
											if soapSet {
												sspec = &soaps[si]
												fmt.Fprintf(&label, "/soap=%s", sspec.Label())
											}
											var fspec *faults.Spec
											if faultsSet {
												fspec = &faultSpecs[fi]
												fmt.Fprintf(&label, "/faults=%s", fspec.Label())
											}
											if storeSet {
												fmt.Fprintf(&label, "/store=%s", store)
											}
											if seedSet {
												fmt.Fprintf(&label, "/seed=%d", seed)
											}
											if s.Trials > 1 {
												fmt.Fprintf(&label, "/trial=%d", trial)
											}
											// Tasks that differ only in store share a
											// substream (SeedLabel strips the store
											// component), so the store axis compares
											// backends on identical random streams.
											seedLabel := ""
											if storeSet {
												seedLabel = strings.Replace(label.String(), "/store="+store, "", 1)
											}
											tasks = append(tasks, Task{
												Label:      label.String(),
												SeedLabel:  seedLabel,
												Experiment: id,
												Params: Params{
													Quick: s.Quick, Seed: seed,
													N: n, K: k, Frac: frac,
													Churn:  cspec,
													Soap:   sspec,
													Faults: fspec,
													Store:  store,
												},
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return tasks, nil
}

// axisInts maps an absent axis to the single "keep preset" value.
func axisInts(xs []int) ([]int, bool) {
	if len(xs) == 0 {
		return []int{0}, false
	}
	return xs, true
}

func axisFloats(xs []float64) ([]float64, bool) {
	if len(xs) == 0 {
		return []float64{0}, false
	}
	return xs, true
}

func axisSeeds(xs []uint64) ([]uint64, bool) {
	if len(xs) == 0 {
		return []uint64{1}, false
	}
	return xs, true
}

// axisChurn maps an absent churn axis to a single "keep preset" slot
// (represented as a nil *Spec downstream).
func axisChurn(xs []churn.Spec) ([]churn.Spec, bool) {
	if len(xs) == 0 {
		return make([]churn.Spec, 1), false
	}
	return xs, true
}

// axisSoap is axisChurn for the mitigation-campaign axis.
func axisSoap(xs []soap.Spec) ([]soap.Spec, bool) {
	if len(xs) == 0 {
		return make([]soap.Spec, 1), false
	}
	return xs, true
}

// axisFaults is axisChurn for the infrastructure-fault axis.
func axisFaults(xs []faults.Spec) ([]faults.Spec, bool) {
	if len(xs) == 0 {
		return make([]faults.Spec, 1), false
	}
	return xs, true
}

// axisStores maps an absent store axis to the single "keep preset"
// backend (the empty name).
func axisStores(xs []string) ([]string, bool) {
	if len(xs) == 0 {
		return []string{""}, false
	}
	return xs, true
}

// Aggregate folds a sweep's task results into one table-shaped Result:
// a row per produced series (first/last/min/max of y) and a row per
// table-shaped sub-result, so a whole grid reads as a single table and
// exports through the usual Render/CSV/JSON paths. Failed tasks appear
// as error rows rather than vanishing.
//
// On top of the per-task rows, the aggregate carries cross-task
// statistics: when the spec replicates grid points (Trials > 1), every
// (grid point, result, series) gets a "(mean±sd)" row with the mean,
// sample standard deviation, and Student-t 95% confidence half-width
// (sized from the trial count) of the series' last value over the
// trials; when the spec sweeps several seeds, every seed-free grid
// point additionally gets a "(mean±sd seeds)" row pooling all
// seed × trial replicates; and every Threshold in the spec contributes
// one "(threshold)" row per combination of the non-scanned axes,
// reporting where the replicate-mean crosses the bound — linearly
// interpolated on numeric axes ("λ≈12.4"), the first crossed label on
// categorical ones. A grid therefore answers its question — "mean
// recovery at each λ, and where does it break?" — without
// post-processing.
func (s *Sweep) Aggregate(trs []TaskResult) *Result {
	res := &Result{
		ID:    "sweep-" + s.Name,
		Title: fmt.Sprintf("Scenario sweep %s: %s over %d tasks", s.Name, strings.Join(s.Experiments, ","), len(trs)),
		Header: []string{"task", "result", "series", "points",
			"y.first", "y.last", "y.min", "y.max", "last.mean", "last.stddev", "last.ci95"},
	}
	failed := 0
	for _, tr := range trs {
		if tr.Err != nil {
			failed++
			res.Rows = append(res.Rows, []string{
				tr.Task.Label, "error: " + tr.Err.Error(), "-", "-", "-", "-", "-", "-", "-", "-", "-",
			})
			continue
		}
		for _, r := range tr.Results {
			for _, series := range r.Series {
				first, last, min, max := seriesStats(series)
				res.Rows = append(res.Rows, []string{
					tr.Task.Label, r.ID, series.Name,
					fmt.Sprintf("%d", len(series.Points)),
					fmt.Sprintf("%g", first), fmt.Sprintf("%g", last),
					fmt.Sprintf("%g", min), fmt.Sprintf("%g", max),
					"-", "-", "-",
				})
			}
			if len(r.Rows) > 0 {
				res.Rows = append(res.Rows, []string{
					tr.Task.Label, r.ID, "(table)",
					fmt.Sprintf("%d", len(r.Rows)), "-", "-", "-", "-", "-", "-", "-",
				})
			}
		}
	}
	s.appendReplicateStats(res, trs)
	for _, th := range s.Thresholds {
		s.appendThreshold(res, trs, th)
	}
	res.AddNote("grid: %d experiments × ns=%v ks=%v fracs=%v churn=%v soap=%v faults=%v stores=%v seeds=%v trials=%d",
		len(s.Experiments), s.Ns, s.Ks, s.Fracs, churnLabels(s.Churn), soapLabels(s.Soap), faultsLabels(s.Faults), s.Stores, s.Seeds, max(1, s.Trials))
	if failed > 0 {
		res.AddNote("%d/%d tasks failed", failed, len(trs))
	}
	return res
}

// churnLabels renders the churn axis for the grid note.
func churnLabels(specs []churn.Spec) []string {
	out := make([]string, len(specs))
	for i, spec := range specs {
		out[i] = spec.Label()
	}
	return out
}

// soapLabels renders the soap axis for the grid note.
func soapLabels(specs []soap.Spec) []string {
	out := make([]string, len(specs))
	for i, spec := range specs {
		out[i] = spec.Label()
	}
	return out
}

// faultsLabels renders the faults axis for the grid note.
func faultsLabels(specs []faults.Spec) []string {
	out := make([]string, len(specs))
	for i, spec := range specs {
		out[i] = spec.Label()
	}
	return out
}

// stripComponents removes the named label components ("trial", ...)
// from a task label ("fig6/n=800/seed=1/trial=2").
func stripComponents(label string, keys ...string) string {
	parts := strings.Split(label, "/")
	out := parts[:0]
	for _, p := range parts {
		drop := false
		for _, k := range keys {
			if strings.HasPrefix(p, k+"=") {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, p)
		}
	}
	return strings.Join(out, "/")
}

// labelComponent extracts the value of one label component, or "".
func labelComponent(label, key string) string {
	for _, p := range strings.Split(label, "/") {
		if v, ok := strings.CutPrefix(p, key+"="); ok {
			return v
		}
	}
	return ""
}

// appendReplicateStats emits the cross-replicate statistics rows:
//
//   - "(mean±sd)" — with Trials > 1, one row per (grid point, result,
//     series) over the point's trial replicas.
//   - "(mean±sd seeds)" — with several seeds swept, one row per
//     seed-free grid point pooling every seed × trial replicate, the
//     cross-seed statistic the per-seed rows cannot show.
//
// Both carry a Student-t 95% confidence half-width in the last.ci95
// column, sized from the replicate count (see internal/stats).
func (s *Sweep) appendReplicateStats(res *Result, trs []TaskResult) {
	if s.Trials > 1 {
		s.appendStatRows(res, trs, " (mean±sd)", "trial")
	}
	if len(s.Seeds) > 1 {
		s.appendStatRows(res, trs, " (mean±sd seeds)", "trial", "seed")
	}
}

// appendStatRows pools the last value of every (grid point, result,
// series) over the replicate components named in strip, and emits one
// mean / stddev / CI row per pool.
func (s *Sweep) appendStatRows(res *Result, trs []TaskResult, suffix string, strip ...string) {
	type key struct{ point, result, series string }
	pools := map[key]*stats.Welford{}
	var order []key
	for _, tr := range trs {
		if tr.Err != nil {
			continue
		}
		point := stripComponents(tr.Task.Label, strip...)
		for _, r := range tr.Results {
			for _, series := range r.Series {
				k := key{point, r.ID, series.Name}
				w, seen := pools[k]
				if !seen {
					w = &stats.Welford{}
					pools[k] = w
					order = append(order, k)
				}
				_, last, _, _ := seriesStats(series)
				w.Add(last)
			}
		}
	}
	for _, k := range order {
		w := pools[k]
		ci := "-"
		if half, ok := stats.CI95Half(w.Stddev(), w.N()); ok {
			ci = fmt.Sprintf("±%.4g", half)
		}
		res.Rows = append(res.Rows, []string{
			k.point, k.result, k.series + suffix,
			fmt.Sprintf("%d", w.N()),
			"-", "-", "-", "-",
			fmt.Sprintf("%g", w.Mean()), fmt.Sprintf("%g", w.Stddev()), ci,
		})
	}
}

// axisValueLabels renders a swept axis's values exactly as task labels
// embed them, in spec order.
func (s *Sweep) axisValueLabels(axis string) []string {
	var out []string
	switch axis {
	case "n":
		for _, n := range s.Ns {
			out = append(out, fmt.Sprintf("%d", n))
		}
	case "k":
		for _, k := range s.Ks {
			out = append(out, fmt.Sprintf("%d", k))
		}
	case "frac":
		for _, f := range s.Fracs {
			out = append(out, fmt.Sprintf("%g", f))
		}
	case "churn":
		out = churnLabels(s.Churn)
	case "soap":
		out = soapLabels(s.Soap)
	case "faults":
		out = faultsLabels(s.Faults)
	case "store":
		out = append(out, s.Stores...)
	case "seed":
		for _, seed := range s.Seeds {
			out = append(out, fmt.Sprintf("%d", seed))
		}
	}
	return out
}

func seriesStats(s Series) (first, last, min, max float64) {
	if len(s.Points) == 0 {
		return 0, 0, 0, 0
	}
	first = s.Points[0].Y
	last = s.Points[len(s.Points)-1].Y
	min, max = first, first
	for _, p := range s.Points {
		if p.Y < min {
			min = p.Y
		}
		if p.Y > max {
			max = p.Y
		}
	}
	return first, last, min, max
}
