package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"onionbots/internal/churn"
	"onionbots/internal/faults"
	"onionbots/internal/soap"
)

// Sweep is a scenario-sweep specification: one or more registered
// experiments crossed with parameter grids. The zero value of every
// axis means "keep the experiment's preset"; listing values fans the
// experiment out over them. A sweep with E experiments, |ns| sizes,
// |ks| degrees, |fracs| fractions, |seeds| seeds and T trials expands
// to E*|ns|*|ks|*|fracs|*|seeds|*T tasks, each with its own RNG
// substream derived from (seed, task label).
//
// Sweeps are written as JSON files (see examples/sweep):
//
//	{
//	  "name": "fig6-grid",
//	  "experiments": ["fig6"],
//	  "quick": true,
//	  "ns": [800, 1000, 1200],
//	  "seeds": [1, 2, 3]
//	}
type Sweep struct {
	// Name labels the sweep; the aggregate result's ID is "sweep-"+Name.
	Name string `json:"name"`
	// Experiments are the registry IDs to fan out.
	Experiments []string `json:"experiments"`
	// Quick selects the scaled-down presets for every task.
	Quick bool `json:"quick,omitempty"`
	// Ns, Ks, Fracs and Seeds are the grid axes (empty = preset).
	Ns    []int     `json:"ns,omitempty"`
	Ks    []int     `json:"ks,omitempty"`
	Fracs []float64 `json:"fracs,omitempty"`
	Seeds []uint64  `json:"seeds,omitempty"`
	// Churn sweeps dynamic-membership scenarios, one task per listed
	// spec, exactly like the static axes — the lever behind questions
	// such as "how does DDSR repair degrade under Poisson leave at λ?".
	Churn []churn.Spec `json:"churn,omitempty"`
	// Soap sweeps mitigation-campaign configurations the same way —
	// crossed with Churn it answers "does a clone budget that contains
	// a static population still contain a moving one?".
	Soap []soap.Spec `json:"soap,omitempty"`
	// Faults sweeps infrastructure fault planes (relay crashes, HSDir
	// outage waves, intro failures) bundled with client retry budgets —
	// one axis crossing failure intensity against resilience, which is
	// how "does a retry budget buy back C&C reachability under a 30%
	// directory outage?" becomes a grid question.
	Faults []faults.Spec `json:"faults,omitempty"`
	// Trials replicates every grid point this many times (default 1).
	// Replicas share Params but get distinct labels, hence distinct RNG
	// substreams — the cheap way to average away seed noise.
	Trials int `json:"trials,omitempty"`
	// Thresholds extract answers from the aggregated grid: each one
	// scans a swept axis for the first value where a series statistic
	// crosses a bound ("λ at first partition"). See Threshold.
	Thresholds []Threshold `json:"thresholds,omitempty"`
}

// Threshold is a declarative answer-extraction rule for a sweep grid.
// For every combination of the sweep's other axes, Aggregate walks the
// named axis in spec order, averages the chosen per-task series
// statistic over trials at each axis value, and reports the first axis
// value whose mean crosses the bound. A churn grid with
//
//	{"series": "quality", "stat": "last", "axis": "churn", "below": 0.8}
//
// therefore answers "at which churn intensity does repair quality
// first drop under 0.8?" as a single aggregate row.
type Threshold struct {
	// Result restricts the scan to results with this ID (empty = all).
	Result string `json:"result,omitempty"`
	// Series names the series whose statistic is scanned.
	Series string `json:"series"`
	// Stat picks the per-task scalar: "first", "last" (default),
	// "min", or "max" of the series' y values.
	Stat string `json:"stat,omitempty"`
	// Axis is the swept axis to walk: "n", "k", "frac", "churn",
	// "soap", "faults", or "seed". It must actually be swept by the
	// spec.
	Axis string `json:"axis"`
	// Above and Below are the crossing bounds; exactly one must be set.
	Above *float64 `json:"above,omitempty"`
	Below *float64 `json:"below,omitempty"`
}

// validate checks the threshold against the spec's swept axes.
func (th Threshold) validate(s *Sweep) error {
	if th.Series == "" {
		return fmt.Errorf("threshold: no series named")
	}
	switch th.Stat {
	case "", "first", "last", "min", "max":
	default:
		return fmt.Errorf("threshold: unknown stat %q (want first, last, min, or max)", th.Stat)
	}
	if (th.Above == nil) == (th.Below == nil) {
		return fmt.Errorf("threshold: exactly one of above/below must be set")
	}
	swept := map[string]bool{
		"n": len(s.Ns) > 0, "k": len(s.Ks) > 0, "frac": len(s.Fracs) > 0,
		"churn": len(s.Churn) > 0, "soap": len(s.Soap) > 0,
		"faults": len(s.Faults) > 0,
		"seed":   len(s.Seeds) > 0,
	}
	isSwept, known := swept[th.Axis]
	if !known {
		return fmt.Errorf("threshold: unknown axis %q (want n, k, frac, churn, soap, faults, or seed)", th.Axis)
	}
	if !isSwept {
		return fmt.Errorf("threshold: axis %q is not swept by this spec", th.Axis)
	}
	return nil
}

// stat extracts the configured statistic from one series.
func (th Threshold) stat(s Series) float64 {
	first, last, min, max := seriesStats(s)
	switch th.Stat {
	case "first":
		return first
	case "min":
		return min
	case "max":
		return max
	default:
		return last
	}
}

// crossed reports whether a mean value satisfies the bound.
func (th Threshold) crossed(mean float64) bool {
	if th.Above != nil {
		return mean > *th.Above
	}
	return mean < *th.Below
}

// describe renders the rule for the aggregate table.
func (th Threshold) describe() string {
	stat := th.Stat
	if stat == "" {
		stat = "last"
	}
	bound := ""
	if th.Above != nil {
		bound = fmt.Sprintf("> %g", *th.Above)
	} else {
		bound = fmt.Sprintf("< %g", *th.Below)
	}
	return fmt.Sprintf("first %s with mean %s.%s %s", th.Axis, th.Series, stat, bound)
}

// ParseSweep decodes and validates a JSON sweep spec. Unknown fields
// are rejected so a typo ("seed" for "seeds") cannot silently collapse
// a grid axis.
func ParseSweep(data []byte) (*Sweep, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Sweep
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("parse sweep: %w", err)
	}
	if len(s.Experiments) == 0 {
		return nil, fmt.Errorf("parse sweep: no experiments listed")
	}
	if s.Trials < 0 {
		return nil, fmt.Errorf("parse sweep: negative trials %d", s.Trials)
	}
	seen := make(map[string]struct{}, len(s.Churn))
	for i, spec := range s.Churn {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("parse sweep: churn[%d]: %w", i, err)
		}
		// Distinct specs must produce distinct labels: the label is the
		// task's (and substream's) identity on this axis.
		if _, dup := seen[spec.Label()]; dup {
			return nil, fmt.Errorf("parse sweep: duplicate churn spec %q", spec.Label())
		}
		seen[spec.Label()] = struct{}{}
	}
	seenSoap := make(map[string]struct{}, len(s.Soap))
	for i, spec := range s.Soap {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("parse sweep: soap[%d]: %w", i, err)
		}
		if _, dup := seenSoap[spec.Label()]; dup {
			return nil, fmt.Errorf("parse sweep: duplicate soap spec %q", spec.Label())
		}
		seenSoap[spec.Label()] = struct{}{}
	}
	seenFaults := make(map[string]struct{}, len(s.Faults))
	for i, spec := range s.Faults {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("parse sweep: faults[%d]: %w", i, err)
		}
		if _, dup := seenFaults[spec.Label()]; dup {
			return nil, fmt.Errorf("parse sweep: duplicate faults spec %q", spec.Label())
		}
		seenFaults[spec.Label()] = struct{}{}
	}
	for i, th := range s.Thresholds {
		if err := th.validate(&s); err != nil {
			return nil, fmt.Errorf("parse sweep: thresholds[%d]: %w", i, err)
		}
	}
	if s.Name == "" {
		s.Name = strings.Join(s.Experiments, "+")
	}
	return &s, nil
}

// LoadSweep reads and parses a sweep spec file.
func LoadSweep(path string) (*Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSweep(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Tasks expands the sweep into its full task grid, in deterministic
// order (experiments × ns × ks × fracs × churn × soap × faults ×
// seeds × trials). Every experiment ID is checked against the registry
// up front so a bad spec fails before any work starts.
func (s *Sweep) Tasks() ([]Task, error) {
	for _, id := range s.Experiments {
		if _, ok := Lookup(id); !ok {
			return nil, fmt.Errorf("sweep %s: unknown experiment %q", s.Name, id)
		}
	}
	ns, nSet := axisInts(s.Ns)
	ks, kSet := axisInts(s.Ks)
	fracs, fracSet := axisFloats(s.Fracs)
	churns, churnSet := axisChurn(s.Churn)
	soaps, soapSet := axisSoap(s.Soap)
	faultSpecs, faultsSet := axisFaults(s.Faults)
	seeds, seedSet := axisSeeds(s.Seeds)
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}

	var tasks []Task
	for _, id := range s.Experiments {
		for _, n := range ns {
			for _, k := range ks {
				for _, frac := range fracs {
					for ci := range churns {
						for si := range soaps {
							for fi := range faultSpecs {
								for _, seed := range seeds {
									for trial := 0; trial < trials; trial++ {
										var label strings.Builder
										label.WriteString(id)
										if nSet {
											fmt.Fprintf(&label, "/n=%d", n)
										}
										if kSet {
											fmt.Fprintf(&label, "/k=%d", k)
										}
										if fracSet {
											fmt.Fprintf(&label, "/frac=%g", frac)
										}
										var cspec *churn.Spec
										if churnSet {
											cspec = &churns[ci]
											fmt.Fprintf(&label, "/churn=%s", cspec.Label())
										}
										var sspec *soap.Spec
										if soapSet {
											sspec = &soaps[si]
											fmt.Fprintf(&label, "/soap=%s", sspec.Label())
										}
										var fspec *faults.Spec
										if faultsSet {
											fspec = &faultSpecs[fi]
											fmt.Fprintf(&label, "/faults=%s", fspec.Label())
										}
										if seedSet {
											fmt.Fprintf(&label, "/seed=%d", seed)
										}
										if s.Trials > 1 {
											fmt.Fprintf(&label, "/trial=%d", trial)
										}
										tasks = append(tasks, Task{
											Label:      label.String(),
											Experiment: id,
											Params: Params{
												Quick: s.Quick, Seed: seed,
												N: n, K: k, Frac: frac,
												Churn:  cspec,
												Soap:   sspec,
												Faults: fspec,
											},
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return tasks, nil
}

// axisInts maps an absent axis to the single "keep preset" value.
func axisInts(xs []int) ([]int, bool) {
	if len(xs) == 0 {
		return []int{0}, false
	}
	return xs, true
}

func axisFloats(xs []float64) ([]float64, bool) {
	if len(xs) == 0 {
		return []float64{0}, false
	}
	return xs, true
}

func axisSeeds(xs []uint64) ([]uint64, bool) {
	if len(xs) == 0 {
		return []uint64{1}, false
	}
	return xs, true
}

// axisChurn maps an absent churn axis to a single "keep preset" slot
// (represented as a nil *Spec downstream).
func axisChurn(xs []churn.Spec) ([]churn.Spec, bool) {
	if len(xs) == 0 {
		return make([]churn.Spec, 1), false
	}
	return xs, true
}

// axisSoap is axisChurn for the mitigation-campaign axis.
func axisSoap(xs []soap.Spec) ([]soap.Spec, bool) {
	if len(xs) == 0 {
		return make([]soap.Spec, 1), false
	}
	return xs, true
}

// axisFaults is axisChurn for the infrastructure-fault axis.
func axisFaults(xs []faults.Spec) ([]faults.Spec, bool) {
	if len(xs) == 0 {
		return make([]faults.Spec, 1), false
	}
	return xs, true
}

// Aggregate folds a sweep's task results into one table-shaped Result:
// a row per produced series (first/last/min/max of y) and a row per
// table-shaped sub-result, so a whole grid reads as a single table and
// exports through the usual Render/CSV/JSON paths. Failed tasks appear
// as error rows rather than vanishing.
//
// On top of the per-task rows, the aggregate carries cross-task
// statistics: when the spec replicates grid points (Trials > 1), every
// (grid point, result, series) gets a "(mean±sd)" row with the mean
// and sample standard deviation of the series' last value over the
// trials; and every Threshold in the spec contributes one "(threshold)"
// row per combination of the non-scanned axes, reporting the first
// scanned-axis value whose trial-mean crosses the bound. A grid
// therefore answers its question — "mean recovery at each λ, and
// where does it first break?" — without post-processing.
func (s *Sweep) Aggregate(trs []TaskResult) *Result {
	res := &Result{
		ID:    "sweep-" + s.Name,
		Title: fmt.Sprintf("Scenario sweep %s: %s over %d tasks", s.Name, strings.Join(s.Experiments, ","), len(trs)),
		Header: []string{"task", "result", "series", "points",
			"y.first", "y.last", "y.min", "y.max", "last.mean", "last.stddev"},
	}
	failed := 0
	for _, tr := range trs {
		if tr.Err != nil {
			failed++
			res.Rows = append(res.Rows, []string{
				tr.Task.Label, "error: " + tr.Err.Error(), "-", "-", "-", "-", "-", "-", "-", "-",
			})
			continue
		}
		for _, r := range tr.Results {
			for _, series := range r.Series {
				first, last, min, max := seriesStats(series)
				res.Rows = append(res.Rows, []string{
					tr.Task.Label, r.ID, series.Name,
					fmt.Sprintf("%d", len(series.Points)),
					fmt.Sprintf("%g", first), fmt.Sprintf("%g", last),
					fmt.Sprintf("%g", min), fmt.Sprintf("%g", max),
					"-", "-",
				})
			}
			if len(r.Rows) > 0 {
				res.Rows = append(res.Rows, []string{
					tr.Task.Label, r.ID, "(table)",
					fmt.Sprintf("%d", len(r.Rows)), "-", "-", "-", "-", "-", "-",
				})
			}
		}
	}
	s.appendTrialStats(res, trs)
	for _, th := range s.Thresholds {
		s.appendThreshold(res, trs, th)
	}
	res.AddNote("grid: %d experiments × ns=%v ks=%v fracs=%v churn=%v soap=%v faults=%v seeds=%v trials=%d",
		len(s.Experiments), s.Ns, s.Ks, s.Fracs, churnLabels(s.Churn), soapLabels(s.Soap), faultsLabels(s.Faults), s.Seeds, max(1, s.Trials))
	if failed > 0 {
		res.AddNote("%d/%d tasks failed", failed, len(trs))
	}
	return res
}

// churnLabels renders the churn axis for the grid note.
func churnLabels(specs []churn.Spec) []string {
	out := make([]string, len(specs))
	for i, spec := range specs {
		out[i] = spec.Label()
	}
	return out
}

// soapLabels renders the soap axis for the grid note.
func soapLabels(specs []soap.Spec) []string {
	out := make([]string, len(specs))
	for i, spec := range specs {
		out[i] = spec.Label()
	}
	return out
}

// faultsLabels renders the faults axis for the grid note.
func faultsLabels(specs []faults.Spec) []string {
	out := make([]string, len(specs))
	for i, spec := range specs {
		out[i] = spec.Label()
	}
	return out
}

// stripComponents removes the named label components ("trial", ...)
// from a task label ("fig6/n=800/seed=1/trial=2").
func stripComponents(label string, keys ...string) string {
	parts := strings.Split(label, "/")
	out := parts[:0]
	for _, p := range parts {
		drop := false
		for _, k := range keys {
			if strings.HasPrefix(p, k+"=") {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, p)
		}
	}
	return strings.Join(out, "/")
}

// labelComponent extracts the value of one label component, or "".
func labelComponent(label, key string) string {
	for _, p := range strings.Split(label, "/") {
		if v, ok := strings.CutPrefix(p, key+"="); ok {
			return v
		}
	}
	return ""
}

// appendTrialStats emits one mean±stddev row per (grid point, result,
// series) over the point's trial replicas. With Trials <= 1 there is
// nothing to average and no rows are added.
func (s *Sweep) appendTrialStats(res *Result, trs []TaskResult) {
	if s.Trials <= 1 {
		return
	}
	type key struct{ point, result, series string }
	lasts := map[key][]float64{}
	var order []key
	for _, tr := range trs {
		if tr.Err != nil {
			continue
		}
		point := stripComponents(tr.Task.Label, "trial")
		for _, r := range tr.Results {
			for _, series := range r.Series {
				k := key{point, r.ID, series.Name}
				if _, seen := lasts[k]; !seen {
					order = append(order, k)
				}
				_, last, _, _ := seriesStats(series)
				lasts[k] = append(lasts[k], last)
			}
		}
	}
	for _, k := range order {
		mean, sd := meanStddev(lasts[k])
		res.Rows = append(res.Rows, []string{
			k.point, k.result, k.series + " (mean±sd)",
			fmt.Sprintf("%d", len(lasts[k])),
			"-", "-", "-", "-",
			fmt.Sprintf("%g", mean), fmt.Sprintf("%g", sd),
		})
	}
}

// appendThreshold emits the threshold's extracted rows: for each
// combination of the non-scanned axes (in first-appearance order), the
// scanned axis is walked in spec order and the first value whose
// trial-mean statistic crosses the bound is reported in the y.first
// column, with the crossing mean in last.mean.
func (s *Sweep) appendThreshold(res *Result, trs []TaskResult, th Threshold) {
	axisVals := s.axisValueLabels(th.Axis)
	type cell struct {
		sum float64
		n   int
	}
	groups := map[string]map[string]*cell{} // group -> axis value -> mean acc
	var order []string
	for _, tr := range trs {
		if tr.Err != nil {
			continue
		}
		axisVal := labelComponent(tr.Task.Label, th.Axis)
		if axisVal == "" {
			continue
		}
		group := stripComponents(tr.Task.Label, th.Axis, "trial")
		if _, seen := groups[group]; !seen {
			groups[group] = map[string]*cell{}
			order = append(order, group)
		}
		for _, r := range tr.Results {
			if th.Result != "" && r.ID != th.Result {
				continue
			}
			for _, series := range r.Series {
				if series.Name != th.Series {
					continue
				}
				c := groups[group][axisVal]
				if c == nil {
					c = &cell{}
					groups[group][axisVal] = c
				}
				c.sum += th.stat(series)
				c.n++
			}
		}
	}
	for _, group := range order {
		crossing, crossingMean := "(not crossed)", "-"
		scanned := 0
		for _, v := range axisVals {
			c := groups[group][v]
			if c == nil || c.n == 0 {
				continue
			}
			scanned++
			mean := c.sum / float64(c.n)
			if crossing == "(not crossed)" && th.crossed(mean) {
				crossing = v
				crossingMean = fmt.Sprintf("%g", mean)
			}
		}
		res.Rows = append(res.Rows, []string{
			group, "(threshold)", th.describe(),
			fmt.Sprintf("%d", scanned),
			crossing, "-", "-", "-", crossingMean, "-",
		})
	}
}

// axisValueLabels renders a swept axis's values exactly as task labels
// embed them, in spec order.
func (s *Sweep) axisValueLabels(axis string) []string {
	var out []string
	switch axis {
	case "n":
		for _, n := range s.Ns {
			out = append(out, fmt.Sprintf("%d", n))
		}
	case "k":
		for _, k := range s.Ks {
			out = append(out, fmt.Sprintf("%d", k))
		}
	case "frac":
		for _, f := range s.Fracs {
			out = append(out, fmt.Sprintf("%g", f))
		}
	case "churn":
		out = churnLabels(s.Churn)
	case "soap":
		out = soapLabels(s.Soap)
	case "faults":
		out = faultsLabels(s.Faults)
	case "seed":
		for _, seed := range s.Seeds {
			out = append(out, fmt.Sprintf("%d", seed))
		}
	}
	return out
}

// meanStddev returns the mean and sample standard deviation.
func meanStddev(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sd / float64(len(xs)-1))
}

func seriesStats(s Series) (first, last, min, max float64) {
	if len(s.Points) == 0 {
		return 0, 0, 0, 0
	}
	first = s.Points[0].Y
	last = s.Points[len(s.Points)-1].Y
	min, max = first, first
	for _, p := range s.Points {
		if p.Y < min {
			min = p.Y
		}
		if p.Y > max {
			max = p.Y
		}
	}
	return first, last, min, max
}
