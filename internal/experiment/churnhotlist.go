package experiment

import (
	"fmt"
	"time"

	"onionbots/internal/churn"
	"onionbots/internal/core"
	"onionbots/internal/sim"
)

func init() {
	Register(Definition{
		ID:    "churn-hotlist",
		Title: "C&C hotlist staleness under diurnal churn (Section IV-C dynamics)",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultChurnHotlistConfig(p.Quick)
			cfg.Seed = p.Seed
			if p.Store != "" {
				cfg.Store = p.Store
			}
			if p.N > 0 {
				cfg.Bots = p.N
			}
			if p.K > 0 {
				cfg.HotlistSize = p.K
			}
			if p.Churn != nil {
				cfg.Spec = *p.Churn
			}
			r, err := RunChurnHotlist(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// ChurnHotlistConfig parameterizes the protocol-level churn
// experiment: a real BotNet (simulated Tor, rally, peering, rotation)
// under a diurnal join/leave process, measuring how stale the
// botmaster's hotlist answers grow as registered bots die off — the
// availability question the webcache bootstrap (Section IV-C) hinges
// on under realistic membership dynamics.
type ChurnHotlistConfig struct {
	// Relays sizes the simulated Tor substrate; Bots the initial
	// population.
	Relays, Bots int
	// HotlistSize is the number of addresses a rally answer carries.
	HotlistSize int
	// Duration is the simulated span; SampleEvery the measurement
	// cadence.
	Duration    time.Duration
	SampleEvery time.Duration
	// PingInterval and NoNInterval tune bot maintenance (longer than
	// the bot defaults: the experiment spans virtual days).
	PingInterval, NoNInterval time.Duration
	// Spec is the churn scenario (the swept axis).
	Spec churn.Spec
	// Seed drives all randomness.
	Seed uint64
	// Store selects the tor.DescriptorStore backend ("" = default).
	Store string
}

// DefaultChurnHotlistConfig returns the full or quick preset. The
// default scenario is a diurnal join/leave cycle (amplitude 0.8 over a
// 24h period); address rotation is always on so hotlist answers must
// track the key schedule across period rollovers.
func DefaultChurnHotlistConfig(quick bool) ChurnHotlistConfig {
	spec := churn.Spec{Process: "diurnal", Join: 1.5, Leave: 1.5, Amplitude: 0.8, PeriodH: 24}
	if quick {
		return ChurnHotlistConfig{
			Relays: 30, Bots: 10, HotlistSize: 5,
			Duration: 24 * time.Hour, SampleEvery: 2 * time.Hour,
			PingInterval: 10 * time.Minute, NoNInterval: 30 * time.Minute,
			Spec: spec, Seed: 6,
		}
	}
	return ChurnHotlistConfig{
		Relays: 60, Bots: 40, HotlistSize: 10,
		Duration: 48 * time.Hour, SampleEvery: time.Hour,
		PingInterval: 5 * time.Minute, NoNInterval: 15 * time.Minute,
		Spec: spec, Seed: 6,
	}
}

// RunChurnHotlist bootstraps a botnet, attaches the configured churn
// process at the protocol level (joins are real infections that rally
// and register; leaves are takedowns), and samples over virtual time:
//
//   - staleness: fraction of registered C&C records whose bot is dead —
//     the expected dead-address fraction of a hotlist answer, since the
//     registry never forgets (the paper's legally-constrained defenders
//     cannot forge registrations, and the master has no liveness oracle).
//   - alive: the living population.
//   - registered: total registry size (monotone under churn).
//
// A single-point "peak-staleness" series carries max staleness for
// sweep aggregation and threshold extraction.
func RunChurnHotlist(cfg ChurnHotlistConfig) (*Result, error) {
	bn, err := core.NewBotNet(cfg.Seed, cfg.Relays, core.BotConfig{
		DMin: 2, DMax: 6,
		PingInterval: cfg.PingInterval,
		NoNInterval:  cfg.NoNInterval,
		Rotation:     true,
		Store:        cfg.Store,
	})
	if err != nil {
		return nil, err
	}
	bn.Master.HotlistSize = cfg.HotlistSize
	if err := bn.Grow(cfg.Bots, nil); err != nil {
		return nil, err
	}

	target := churn.NewBotNetTarget(bn, nil, cfg.Spec.Regions)
	eng := churn.NewEngine(bn.Sched, sim.SubstreamSeed(cfg.Seed, "churn-hotlist/engine"), target)
	proc, err := cfg.Spec.Build()
	if err != nil {
		return nil, err
	}
	if err := eng.Attach(proc); err != nil {
		return nil, err
	}

	res := &Result{
		ID: "churn-hotlist",
		Title: fmt.Sprintf("Hotlist staleness under churn %s, %d bots, hotlist %d, over %s",
			cfg.Spec.Label(), cfg.Bots, cfg.HotlistSize, cfg.Duration),
		XLabel: "hours", YLabel: "fraction / count",
	}
	staleness := Series{Name: "staleness"}
	alive := Series{Name: "alive"}
	registered := Series{Name: "registered"}

	peak := 0.0
	start := bn.Sched.Elapsed() // Grow consumed virtual time already
	sample := func() {
		h := (bn.Sched.Elapsed() - start).Hours()
		s := bn.HotlistStaleness()
		if s > peak {
			peak = s
		}
		staleness.Points = append(staleness.Points, Point{X: h, Y: s})
		alive.Points = append(alive.Points, Point{X: h, Y: float64(bn.AliveCount())})
		registered.Points = append(registered.Points, Point{X: h, Y: float64(bn.Master.NumRegistered())})
	}

	sample()
	for t := cfg.SampleEvery; t <= cfg.Duration; t += cfg.SampleEvery {
		bn.Sched.RunUntil(sim.Epoch.Add(start + t))
		sample()
	}
	eng.Stop()

	joined, left, takendown := eng.Counts()
	res.Series = append(res.Series, staleness, alive, registered,
		Series{Name: "peak-staleness", Points: []Point{{X: 0, Y: peak}}})
	res.AddNote("churn %s: %d joined, %d left, %d taken down; %d alive of %d ever registered",
		cfg.Spec.Label(), joined, left, takendown, bn.AliveCount(), bn.Master.NumRegistered())
	res.AddNote("staleness: final %.3f, peak %.3f (registry has no liveness oracle; hotlist answers decay with churn)",
		staleness.Points[len(staleness.Points)-1].Y, peak)
	return res, nil
}
