package experiment_test

import (
	"fmt"

	"onionbots/internal/experiment"
)

// ExampleRunner runs one registered experiment through the worker
// pool. The fig3 walkthrough is fully scripted, so its output is the
// same on every machine.
func ExampleRunner() {
	tasks := []experiment.Task{{
		Label:      "fig3",
		Experiment: "fig3",
		Params:     experiment.Params{Quick: true, Seed: 1},
	}}
	results, err := (&experiment.Runner{Parallel: 4}).Run(tasks)
	if err != nil {
		panic(err)
	}
	r := results[0].Results[0]
	fmt.Println(r.ID, "panels:", len(r.Rows))
	// Output: fig3 panels: 7
}

// ExampleSweep_Tasks expands a scenario grid into labelled tasks. Each
// label doubles as the task's RNG substream name, which is what makes
// sweep output independent of worker count and scheduling order.
func ExampleSweep_Tasks() {
	spec, err := experiment.ParseSweep([]byte(`{
		"experiments": ["fig6"],
		"quick": true,
		"ns": [500, 600],
		"seeds": [1, 2]
	}`))
	if err != nil {
		panic(err)
	}
	tasks, err := spec.Tasks()
	if err != nil {
		panic(err)
	}
	for _, t := range tasks {
		fmt.Println(t.Label)
	}
	// Output:
	// fig6/n=500/seed=1
	// fig6/n=500/seed=2
	// fig6/n=600/seed=1
	// fig6/n=600/seed=2
}
