package experiment

import (
	"strings"
	"testing"
	"time"
)

// A timed-out task is retried MaxTaskRetries times, every abandoned
// attempt is counted, and the task still fails when the budget runs dry
// — without failing the run.
func TestRunnerRetriesAndAbandonAccounting(t *testing.T) {
	r := &Runner{TaskTimeout: time.Nanosecond, MaxTaskRetries: 2}
	trs, err := r.Run([]Task{{Label: "slow", Experiment: "hsdir-outage", Params: Params{Quick: true, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if trs[0].Err == nil || !strings.Contains(trs[0].Err.Error(), "timed out") {
		t.Fatalf("expected timeout error, got %v", trs[0].Err)
	}
	c := r.Counts()
	want := Counts{Attempts: 3, Completed: 0, Failed: 1, Retried: 2, Abandoned: 3}
	if c != want {
		t.Fatalf("counts = %+v, want %+v", c, want)
	}
}

// Deterministic failures (unknown experiment, experiment errors) are
// not retried: they would fail identically, so the budget is reserved
// for transient panics and timeouts.
func TestRunnerDoesNotRetryDeterministicErrors(t *testing.T) {
	r := &Runner{MaxTaskRetries: 3}
	trs, err := r.Run([]Task{{Label: "bad", Experiment: "no-such-exp", Params: Params{Quick: true, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if trs[0].Err == nil {
		t.Fatal("expected unknown-experiment error")
	}
	c := r.Counts()
	if c.Attempts != 1 || c.Retried != 0 || c.Failed != 1 {
		t.Fatalf("counts = %+v, want exactly one unretried attempt", c)
	}
}

// Successful tasks land in Completed and never consume retries.
func TestRunnerCountsCompleted(t *testing.T) {
	r := &Runner{Parallel: 2, MaxTaskRetries: 1}
	trs, err := r.Run(fastTasks(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs {
		if tr.Err != nil {
			t.Fatalf("%s: %v", tr.Task.Label, tr.Err)
		}
	}
	c := r.Counts()
	if c.Completed != int64(len(trs)) || c.Failed != 0 || c.Retried != 0 || c.Abandoned != 0 {
		t.Fatalf("counts = %+v, want %d clean completions", c, len(trs))
	}
}

// A pre-closed stop channel drains the run before any task starts; a
// nil one is exactly Run.
func TestRunnerStoppable(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	tasks := fastTasks(1)
	results, ran, err := (&Runner{Parallel: 2}).RunStoppable(tasks, stop)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(tasks) || len(ran) != len(tasks) {
		t.Fatalf("got %d results / %d ran flags for %d tasks", len(results), len(ran), len(tasks))
	}
	started := 0
	for _, r := range ran {
		if r {
			started++
		}
	}
	// Workers may have grabbed at most Parallel tasks before the stop
	// select won; with a pre-closed channel the dispatcher races the
	// workers, so allow the worker-count worst case but not a full run.
	if started > 2 {
		t.Fatalf("%d tasks started after stop, want at most the worker count (2)", started)
	}
	for i, r := range ran {
		if !r && results[i].Task.Label != "" {
			t.Fatalf("unran slot %d holds a result", i)
		}
	}

	results, ran, err = (&Runner{Parallel: 4}).RunStoppable(tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if !ran[i] {
			t.Fatalf("task %d skipped with nil stop channel", i)
		}
		if results[i].Err != nil {
			t.Fatalf("%s: %v", results[i].Task.Label, results[i].Err)
		}
	}
}

// Mid-run stop: tasks completed before the stop are intact and flagged,
// and the runner returns without executing the full set. The stop fires
// from the Progress hook, which is exactly how serve-mode cancellation
// uses it.
func TestRunnerStoppableMidRun(t *testing.T) {
	stop := make(chan struct{})
	var stopped bool
	r := &Runner{Parallel: 1, Progress: func(done, total int, tr TaskResult) {
		if done == 2 && !stopped {
			stopped = true
			close(stop)
		}
	}}
	tasks := fastTasks(1)
	results, ran, err := r.RunStoppable(tasks, stop)
	if err != nil {
		t.Fatal(err)
	}
	started := 0
	for i := range ran {
		if ran[i] {
			started++
			if results[i].Err != nil {
				t.Fatalf("%s: %v", results[i].Task.Label, results[i].Err)
			}
		}
	}
	// Serial worker: two tasks completed, and at most one more was
	// already dispatched when the stop channel closed.
	if started < 2 || started > 3 {
		t.Fatalf("%d tasks started, want 2 or 3 (stop after the second)", started)
	}
	if started == len(tasks) {
		t.Fatal("stop did not prevent the full run")
	}
}
