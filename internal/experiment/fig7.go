package experiment

import (
	"fmt"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/soap"
)

func init() {
	Register(Definition{
		ID:    "fig7",
		Title: "SOAP containment campaign against basic OnionBots (Fig 7)",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultFig7Config(p.Quick)
			cfg.Seed = p.Seed
			if p.Store != "" {
				cfg.Store = p.Store
			}
			if p.N > 0 {
				cfg.Bots = p.N
			}
			r, err := RunFig7(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// Fig7Config parameterizes the SOAP campaign experiment at the protocol
// level (full Tor substrate, real crypto).
type Fig7Config struct {
	// Bots is the victim network size.
	Bots int
	// Relays is the simulated Tor network size.
	Relays int
	// Duration is the campaign length (virtual time).
	Duration time.Duration
	// SampleEvery spaces progress samples.
	SampleEvery time.Duration
	// Seed drives all randomness.
	Seed uint64
	// Store selects the tor.DescriptorStore backend ("" = default).
	Store string
}

// DefaultFig7Config returns campaign presets.
func DefaultFig7Config(quick bool) Fig7Config {
	if quick {
		return Fig7Config{Bots: 8, Relays: 15, Duration: 4 * time.Hour, SampleEvery: 30 * time.Minute, Seed: 4}
	}
	return Fig7Config{Bots: 24, Relays: 25, Duration: 8 * time.Hour, SampleEvery: 30 * time.Minute, Seed: 4}
}

// RunFig7 regenerates the Figure 7 soaping walkthrough as a campaign:
// clone-neighbor fraction and contained fraction over time, ending with
// the broadcast-reach comparison that demonstrates neutralization.
func RunFig7(cfg Fig7Config) (*Result, error) {
	bn, err := core.NewBotNet(cfg.Seed, cfg.Relays, core.BotConfig{DMin: 2, DMax: 4, Store: cfg.Store})
	if err != nil {
		return nil, err
	}
	// Hardcoded-list + hotlist bootstrap, the paper's recommended combo
	// (Section IV-B); without the hotlist, large formations can leave
	// starved stragglers that would muddy the before/after comparison.
	bn.Master.HotlistSize = 3
	if err := bn.Grow(cfg.Bots, nil); err != nil {
		return nil, err
	}
	bn.Run(6 * time.Minute)

	// Baseline reach before the campaign.
	if err := bn.Broadcast("baseline", nil, 1); err != nil {
		return nil, err
	}
	bn.Run(2 * time.Minute)
	baselineReach := bn.ExecutedCount("baseline")

	captured := bn.AliveBots()[0]
	// The hotlist actively fights containment: bots that drop below
	// DMin re-rally and the C&C hands them fresh benign peers. The
	// attacker therefore needs a clone budget comfortably above the
	// default to finish every target (a finding in its own right — the
	// per-bot cost of SOAP rises with bootstrap quality).
	attacker := soap.NewAttacker(bn.Net, bn.Master.NetKey(),
		soap.Config{MaxClonesPerTarget: 64})
	attacker.Start(captured.Onion())

	res := &Result{
		ID:     "fig7",
		Title:  fmt.Sprintf("SOAP campaign against %d bots (basic OnionBots)", cfg.Bots),
		XLabel: "minutes", YLabel: "fraction",
	}
	surrounded := Series{Name: "clone-neighbor-fraction"}
	contained := Series{Name: "contained-fraction"}
	for elapsed := time.Duration(0); elapsed < cfg.Duration; elapsed += cfg.SampleEvery {
		bn.Run(cfg.SampleEvery)
		x := (elapsed + cfg.SampleEvery).Minutes()
		surrounded.Points = append(surrounded.Points, Point{X: x, Y: soap.CloneNeighborFraction(bn, attacker)})
		contained.Points = append(contained.Points, Point{X: x, Y: soap.ContainmentFraction(bn, attacker)})
	}
	res.Series = append(res.Series, surrounded, contained)

	// Post-campaign reach: the neutralization proof.
	if err := bn.Broadcast("after", nil, 1); err != nil {
		return nil, err
	}
	bn.Run(2 * time.Minute)
	afterReach := bn.ExecutedCount("after")

	benign := soap.BenignOverlay(bn, attacker)
	res.AddNote("broadcast reach before campaign: %d/%d bots", baselineReach, cfg.Bots)
	res.AddNote("broadcast reach after campaign: %d/%d bots", afterReach, cfg.Bots)
	res.AddNote("benign overlay edges remaining: %d", benign.NumEdges())
	res.AddNote("clones created: %d on a single machine (IP/.onion decoupling)",
		attacker.Stats().ClonesCreated)
	final := contained.Points[len(contained.Points)-1].Y
	res.AddNote("final contained fraction: %.2f", final)
	return res, nil
}
