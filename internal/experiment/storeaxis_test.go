package experiment

import (
	"reflect"
	"strings"
	"testing"

	"onionbots/internal/tor"
)

// TestStoreAxisExpansion pins the stores sweep axis: label component,
// Params threading, and validation of unknown backend names.
func TestStoreAxisExpansion(t *testing.T) {
	s := &Sweep{
		Name:        "stores",
		Experiments: []string{"churn-hotlist"},
		Quick:       true,
		Stores:      []string{"sharded", "mmap"},
		Seeds:       []uint64{1},
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("expanded to %d tasks, want 2", len(tasks))
	}
	if tasks[0].Label != "churn-hotlist/store=sharded/seed=1" {
		t.Fatalf("first label = %q", tasks[0].Label)
	}
	if tasks[1].Params.Store != "mmap" {
		t.Fatalf("second params = %+v", tasks[1].Params)
	}
	// Both tasks must share one substream: the store axis compares
	// backends on the same random stream, not two unrelated runs.
	want := "churn-hotlist/seed=1"
	for _, task := range tasks {
		if task.SeedLabel != want {
			t.Fatalf("task %q seed label = %q, want %q", task.Label, task.SeedLabel, want)
		}
	}
}

// TestStoreSweepResultsIdenticalAcrossBackends runs a store-axis sweep
// through the real Runner and requires every backend's task to emit the
// same results for the same seed — the end-to-end form of the A/B
// guarantee the store knob advertises.
func TestStoreSweepResultsIdenticalAcrossBackends(t *testing.T) {
	s := &Sweep{
		Name:        "store-ab",
		Experiments: []string{"churn-hotlist"},
		Quick:       true,
		Stores:      tor.StoreBackendNames(),
		Seeds:       []uint64{1},
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Parallel: len(tasks)}
	results, err := r.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range results {
		if tr.Err != nil {
			t.Fatalf("%s: %v", tr.Task.Label, tr.Err)
		}
		if tr.EffectiveSeed != results[0].EffectiveSeed {
			t.Fatalf("%s ran on seed %d, want shared seed %d",
				tr.Task.Label, tr.EffectiveSeed, results[0].EffectiveSeed)
		}
		if i > 0 && !reflect.DeepEqual(tr.Results, results[0].Results) {
			t.Fatalf("%s diverges from %s", tr.Task.Label, results[0].Task.Label)
		}
	}
}

func TestParseSweepRejectsBadStore(t *testing.T) {
	spec := `{"experiments":["fig6"],"stores":["ramdisk"]}`
	if _, err := ParseSweep([]byte(spec)); err == nil || !strings.Contains(err.Error(), "ramdisk") {
		t.Fatalf("bad store accepted: %v", err)
	}
	dup := `{"experiments":["fig6"],"stores":["mmap","mmap"]}`
	if _, err := ParseSweep([]byte(dup)); err == nil || !strings.Contains(err.Error(), "duplicate store") {
		t.Fatalf("duplicate store accepted: %v", err)
	}
}

// TestStoreBackendsByteIdenticalOutputs is the acceptance gate for the
// store knob: a fixed-seed protocol-level experiment must produce
// exactly the same results on every DescriptorStore backend — the
// backend is a memory plane, not a behavior knob. churn-hotlist is the
// experiment that exercises the store hardest (rotation on, rally
// registration, hotlist lookups under churn).
func TestStoreBackendsByteIdenticalOutputs(t *testing.T) {
	def, ok := Lookup("churn-hotlist")
	if !ok {
		t.Fatal("churn-hotlist not registered")
	}
	var baseline []*Result
	for i, store := range tor.StoreBackendNames() {
		res, err := def.Run(Params{Quick: true, Seed: 3, Store: store})
		if err != nil {
			t.Fatalf("store=%s: %v", store, err)
		}
		if i == 0 {
			baseline = res
			continue
		}
		if !reflect.DeepEqual(baseline, res) {
			t.Fatalf("store=%s diverges from store=%s:\n%+v\nvs\n%+v",
				store, tor.StoreBackendNames()[0], res, baseline)
		}
	}
}
