package experiment

import (
	"fmt"
	"sync"

	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

func init() {
	Register(Definition{
		ID:    "fig6",
		Title: "First-partition threshold vs graph size (Fig 6)",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultFig6Config(p.Quick)
			cfg.Seed = p.Seed
			if p.N > 0 {
				cfg.Sizes = []int{p.N}
			}
			if p.K > 0 {
				cfg.K = p.K
			}
			r, err := RunFig6(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// Fig6Config parameterizes the partition-threshold experiment: how many
// simultaneous (unrepaired) deletions a 10-regular graph of each size
// absorbs before it first partitions.
type Fig6Config struct {
	// Sizes are the graph sizes. Paper: 1000..15000.
	Sizes []int
	// K is the regularity. Paper: 10.
	K int
	// Trials averages the threshold over several deletion orders.
	Trials int
	// CheckFrom skips connectivity checks below this deleted fraction
	// (partition never happens that early; checking from 0 wastes most
	// of the runtime).
	CheckFrom float64
	// CheckStride coarse-checks connectivity every this many deletions,
	// then backtracks one checkpoint and fine-scans for the exact
	// threshold. Keeps the n=15000 sweep tractable.
	CheckStride int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultFig6Config returns the paper's sweep or a quick preset. The
// quick preset uses the smallest paper sizes; below n≈1000 the
// finite-size threshold sits well above 0.4 and would not reproduce the
// figure's shape.
func DefaultFig6Config(quick bool) Fig6Config {
	if quick {
		return Fig6Config{
			Sizes: []int{1000, 2000}, K: 10, Trials: 2,
			CheckFrom: 0.1, CheckStride: 10, Seed: 3,
		}
	}
	sizes := make([]int, 0, 15)
	for n := 1000; n <= 15000; n += 1000 {
		sizes = append(sizes, n)
	}
	return Fig6Config{Sizes: sizes, K: 10, Trials: 3, CheckFrom: 0.1, CheckStride: 50, Seed: 3}
}

// RunFig6 regenerates Figure 6: the average number of deletions at
// which each graph first splits, plotted against size, with the paper's
// f(x) = 0.4x reference line.
func RunFig6(cfg Fig6Config) (*Result, error) {
	res := &Result{
		ID:     "fig6",
		Title:  fmt.Sprintf("First-partition threshold under simultaneous takedown, %d-regular", cfg.K),
		XLabel: "nodes", YLabel: "nodes deleted at first partition",
	}
	measured := Series{Name: "Graph"}
	reference := Series{Name: "f(x)=.4x"}
	stride := cfg.CheckStride
	if stride < 1 {
		stride = 1
	}
	// Every (size, trial) cell is independent with its own RNG: sweep
	// them in parallel, deterministically.
	thresholds := make([][]int, len(cfg.Sizes))
	errs := make([][]error, len(cfg.Sizes))
	var wg sync.WaitGroup
	for si, n := range cfg.Sizes {
		thresholds[si] = make([]int, cfg.Trials)
		errs[si] = make([]error, cfg.Trials)
		for trial := 0; trial < cfg.Trials; trial++ {
			si, n, trial := si, n, trial
			wg.Add(1)
			go func() {
				defer wg.Done()
				//onionlint:allow substream -- pre-substream (n, trial) schedule pinned by archived Fig 6 runs; grid points are distinct by construction
				rng := sim.NewRNG(cfg.Seed + uint64(n)*31 + uint64(trial))
				g, err := graph.RandomRegular(n, cfg.K, rng)
				if err != nil {
					errs[si][trial] = err
					return
				}
				perm := rng.Perm(n)
				threshold := n // if it never partitions (cannot happen), report n
				start := int(float64(n) * cfg.CheckFrom)
				// lag trails g by at most one coarse stride: one clone up
				// front, then the same deletions replayed a checkpoint
				// late. When a coarse connectivity check fails, the exact
				// threshold is fine-scanned on lag — O(1) amortized per
				// deletion where the seed cloned the whole graph at every
				// passing checkpoint.
				lag := g.Clone()
				lagAt := 0
				for i := 0; i < n-1; i++ {
					g.RemoveNode(perm[i])
					if i+1 < start {
						continue
					}
					coarse := (i+1)%stride == 0 || i+1 == n-1
					if !coarse {
						continue
					}
					if !g.Connected() {
						// Fine-scan from the last connected checkpoint.
						for j := lagAt; j <= i; j++ {
							lag.RemoveNode(perm[j])
							if !lag.Connected() {
								threshold = j + 1
								break
							}
						}
						break
					}
					for ; lagAt <= i; lagAt++ {
						lag.RemoveNode(perm[lagAt])
					}
				}
				thresholds[si][trial] = threshold
			}()
		}
	}
	wg.Wait()
	for si, n := range cfg.Sizes {
		total := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			if errs[si][trial] != nil {
				return nil, errs[si][trial]
			}
			total += thresholds[si][trial]
		}
		avg := float64(total) / float64(cfg.Trials)
		measured.Points = append(measured.Points, Point{X: float64(n), Y: avg})
		reference.Points = append(reference.Points, Point{X: float64(n), Y: 0.4 * float64(n)})
	}
	res.Series = append(res.Series, measured, reference)

	// The paper's stated takeaway: ~40% of nodes must go down
	// simultaneously before the network splits.
	sumFrac := 0.0
	for _, p := range measured.Points {
		sumFrac += p.Y / p.X
	}
	res.AddNote("mean first-partition fraction %.3f (paper: about 0.4)", sumFrac/float64(len(measured.Points)))
	return res, nil
}
