package experiment

import (
	"fmt"
	"sync"

	"onionbots/internal/ddsr"
	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

func init() {
	Register(Definition{
		ID:    "fig4",
		Title: "Centrality under gradual takedown, with/without pruning (Figs 4a-4d)",
		Run: func(p Params) ([]*Result, error) {
			var out []*Result
			for _, pruning := range []bool{false, true} {
				cfg := DefaultFig4Config(p.Quick)
				cfg.Pruning = pruning
				cfg.Seed = p.Seed
				if p.N > 0 {
					cfg.N = p.N
				}
				if p.K > 0 {
					cfg.Degrees = []int{p.K}
				}
				if p.Frac > 0 {
					cfg.DeleteFrac = p.Frac
				}
				closeness, degree, err := RunFig4(cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, closeness, degree)
			}
			return out, nil
		},
	})
}

// Fig4Config parameterizes the Figure 4 centrality experiments: gradual
// node deletion with DDSR repair in k-regular graphs, with and without
// pruning.
type Fig4Config struct {
	// N is the graph size. Paper: 5000.
	N int
	// Degrees are the k values. Paper: 5, 10, 15.
	Degrees []int
	// DeleteFrac is the fraction of nodes deleted. Paper: 0.3.
	DeleteFrac float64
	// MeasureEvery samples metrics each this many deletions.
	MeasureEvery int
	// ClosenessSample bounds BFS sources per measurement (0 = exact).
	ClosenessSample int
	// Pruning selects the 4a/4c (false) or 4b/4d (true) variants.
	Pruning bool
	// Seed drives all randomness.
	Seed uint64
}

// DefaultFig4Config returns the paper's parameters, or a scaled-down
// quick preset.
func DefaultFig4Config(quick bool) Fig4Config {
	if quick {
		return Fig4Config{
			N: 300, Degrees: []int{5, 10, 15}, DeleteFrac: 0.3,
			MeasureEvery: 30, ClosenessSample: 60, Seed: 1,
		}
	}
	return Fig4Config{
		N: 5000, Degrees: []int{5, 10, 15}, DeleteFrac: 0.3,
		MeasureEvery: 100, ClosenessSample: 128, Seed: 1,
	}
}

// RunFig4 regenerates Figures 4a-4d for one pruning setting: the
// average closeness centrality (first result) and average degree
// centrality (second result) after each batch of deletions.
func RunFig4(cfg Fig4Config) (closeness, degree *Result, err error) {
	suffix := "a/4c (no pruning)"
	if cfg.Pruning {
		suffix = "b/4d (with pruning)"
	}
	closeness = &Result{
		ID:     fmt.Sprintf("fig4-closeness-pruning=%v", cfg.Pruning),
		Title:  fmt.Sprintf("Avg closeness centrality under deletion, Fig 4%s", suffix),
		XLabel: "nodes deleted", YLabel: "closeness centrality",
	}
	degree = &Result{
		ID:     fmt.Sprintf("fig4-degree-pruning=%v", cfg.Pruning),
		Title:  fmt.Sprintf("Avg degree centrality under deletion, Fig 4%s", suffix),
		XLabel: "nodes deleted", YLabel: "degree centrality",
	}
	deletions := int(float64(cfg.N) * cfg.DeleteFrac)
	// Each degree value is an independent sweep with its own seeded RNG:
	// run them in parallel, deterministically.
	type sweep struct {
		c, d Series
		err  error
	}
	sweeps := make([]sweep, len(cfg.Degrees))
	var wg sync.WaitGroup
	for idx, k := range cfg.Degrees {
		idx, k := idx, k
		wg.Add(1)
		go func() {
			defer wg.Done()
			//onionlint:allow substream -- pre-substream seed schedule pinned by archived Fig 4 runs; k values never collide within one sweep point
			rng := sim.NewRNG(cfg.Seed + uint64(k))
			dcfg := ddsr.DefaultConfig(k)
			dcfg.Pruning = cfg.Pruning
			overlay, oerr := ddsr.NewRegular(cfg.N, k, dcfg, rng)
			if oerr != nil {
				sweeps[idx].err = oerr
				return
			}
			perm := rng.Perm(cfg.N)
			cSeries := Series{Name: fmt.Sprintf("deg=%d", k)}
			dSeries := Series{Name: fmt.Sprintf("deg=%d", k)}
			measure := func(deleted int) {
				g := overlay.Graph()
				c := graph.AvgCloseness(g, cfg.ClosenessSample, rng)
				cSeries.Points = append(cSeries.Points, Point{X: float64(deleted), Y: c})
				dSeries.Points = append(dSeries.Points, Point{X: float64(deleted), Y: graph.AvgDegreeCentrality(g)})
			}
			measure(0)
			for i := 0; i < deletions; i++ {
				overlay.RemoveNode(perm[i])
				if (i+1)%cfg.MeasureEvery == 0 || i+1 == deletions {
					measure(i + 1)
				}
			}
			sweeps[idx].c, sweeps[idx].d = cSeries, dSeries
		}()
	}
	wg.Wait()
	for _, s := range sweeps {
		if s.err != nil {
			return nil, nil, s.err
		}
		closeness.Series = append(closeness.Series, s.c)
		degree.Series = append(degree.Series, s.d)
	}
	annotateFig4(closeness, degree, cfg)
	return closeness, degree, nil
}

func annotateFig4(closeness, degree *Result, cfg Fig4Config) {
	// The paper's observations: closeness stays stable under deletion;
	// degree centrality grows without pruning and stays flat with it.
	for _, s := range closeness.Series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		closeness.AddNote("%s: closeness %.4f -> %.4f (stable or rising)", s.Name, first, last)
	}
	for _, s := range degree.Series {
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		verdict := "grows (no pruning)"
		if cfg.Pruning {
			verdict = "bounded (pruning)"
		}
		degree.AddNote("%s: degree centrality %.5f -> %.5f, %s", s.Name, first, last, verdict)
	}
}
