package experiment

import (
	"fmt"
	"time"

	"onionbots/internal/botcrypto"
	"onionbots/internal/core"
	"onionbots/internal/pow"
	"onionbots/internal/sim"
	"onionbots/internal/soap"
	"onionbots/internal/tor"
)

func init() {
	Register(Definition{
		ID:    "probing",
		Title: "Random-probing and vanity-prefix infeasibility (Section IV-B)",
		// Quick runs assume the nominal rate so output is a pure
		// function of the parameters; full runs measure this machine.
		Run: func(p Params) ([]*Result, error) {
			rate := 0.0
			if p.Quick {
				rate = NominalKeyRate
			}
			r, err := RunProbingFeasibility(rate)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
	Register(Definition{
		ID:    "hsdir",
		Title: "HSDir positioning attack and descriptor-period recovery (Section VI-A)",
		Run: func(p Params) ([]*Result, error) {
			r, err := RunHSDirAttack(p.Seed)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
	Register(Definition{
		ID:    "pow",
		Title: "Proof-of-work hardening vs SOAP (Section VII-A)",
		Run: func(p Params) ([]*Result, error) {
			r, err := RunPoWDefense(p.Seed, p.Quick)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// NominalKeyRate is the assumed onion-address derivation rate
// (addresses/second) used when a probing run must be deterministic: it
// is the right order of magnitude for one 2015-era CPU core, and using
// a fixed value keeps quick-mode output byte-identical across machines
// and runs.
const NominalKeyRate = 25000.0

// RunProbingFeasibility regenerates the Section IV-B infeasibility
// arguments: the 32^16 address space against random-probing bootstrap,
// and the vanity-prefix search cost (the paper cites ~25 days for an
// 8-character prefix with 2015-era tooling). A positive rate is taken
// as the key-generation rate (addresses/second); rate <= 0 measures it
// live on this machine.
func RunProbingFeasibility(rate float64) (*Result, error) {
	measured := rate <= 0
	rateLabel := "at assumed rate"
	if measured {
		rateLabel = "at measured rate"
	}
	res := &Result{
		ID:     "probing",
		Title:  "Random probing and vanity-prefix infeasibility (Section IV-B)",
		Header: []string{"scenario", "expected tries", rateLabel},
	}

	if measured {
		// Measure identity derivations per second (one derivation = one
		// candidate onion address).
		const trials = 2000
		drbg := botcrypto.NewDRBG([]byte("probing-rate"))
		//onionlint:allow detclock -- measures this host's real derivation throughput; the rate is reported, never fed back into simulated state
		start := time.Now()
		var seed [32]byte
		for i := 0; i < trials; i++ {
			copy(seed[:], drbg.Bytes(32))
			id := tor.IdentityFromSeed(seed)
			_ = id.ServiceID()
		}
		//onionlint:allow detclock -- wall-clock half of the same throughput probe
		rate = float64(trials) / time.Since(start).Seconds()
	}

	for _, prefix := range []int{4, 6, 8, 12, 16} {
		tries := tor.VanityPrefixTries(prefix)
		dur := tor.EstimateVanitySearchDuration(prefix, rate)
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("vanity prefix %d chars", prefix),
			fmt.Sprintf("%.3g", tries),
			humanDuration(dur),
		})
	}
	for _, size := range []int{1000, 10000, 100000} {
		dials := core.RandomProbingExpectedDials(size)
		// Expected dials / rate == VanityPrefixTries(16) / (rate * size).
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("random probe, botnet of %d", size),
			fmt.Sprintf("%.3g", dials),
			humanDuration(tor.EstimateVanitySearchDuration(16, rate*float64(size))),
		})
	}
	if measured {
		res.AddNote("measured key-generation rate: %.0f addresses/s on this machine", rate)
	} else {
		res.AddNote("assumed key-generation rate: %.0f addresses/s (deterministic quick mode)", rate)
	}
	res.AddNote("full namespace is 32^16 = %.3g addresses; random probing cannot bootstrap", tor.OnionAddressSpace())
	return res, nil
}

func humanDuration(d time.Duration) string {
	switch {
	case d >= 24*time.Hour*365*100:
		return "centuries"
	case d >= 24*time.Hour*365:
		return fmt.Sprintf("%.1f years", d.Hours()/24/365)
	case d >= 24*time.Hour:
		return fmt.Sprintf("%.1f days", d.Hours()/24)
	default:
		return d.Round(time.Second).String()
	}
}

// RunHSDirAttack regenerates the Section VI-A mitigation analysis: an
// adversary positions relays on the descriptor ring to deny access to a
// bot's hidden service, subject to the 25-hour HSDir-flag delay and the
// daily descriptor-period treadmill.
func RunHSDirAttack(seed uint64) (*Result, error) {
	res := &Result{
		ID:     "hsdir",
		Title:  "HSDir positioning attack against a hidden service (Section VI-A)",
		Header: []string{"phase", "reachable", "detail"},
	}
	sched := sim.NewScheduler()
	n := tor.NewNetwork(sched, sim.NewRNG(seed), tor.Config{})

	var idSeed [32]byte
	idSeed[0] = 0x42
	id := tor.IdentityFromSeed(idSeed)
	sid := id.ServiceID()

	// Pre-position malicious relays for the post-bootstrap period.
	future := n.Now().Add(26 * time.Hour)
	for r := 0; r < tor.NumReplicas; r++ {
		descID := tor.ComputeDescriptorID(sid, nil, r, future)
		for _, fp := range tor.PositionFingerprints(descID, tor.HSDirsPerReplica) {
			relay, err := n.InjectRelayAtFingerprint(fp)
			if err != nil {
				return nil, err
			}
			relay.SetMalicious(true)
		}
	}
	if err := n.Bootstrap(20); err != nil {
		return nil, err
	}
	server := tor.NewProxy(n)
	hs, err := server.Host(id, func(*tor.Conn) {})
	if err != nil {
		return nil, err
	}

	record := func(phase string) {
		_, err := tor.NewProxy(n).Dial(hs.Onion())
		res.Rows = append(res.Rows, []string{
			phase, yesNo(err == nil), errString(err),
		})
	}
	record("all 6 responsible HSDirs malicious")
	// Estimate the key-search work against a ring position the
	// adversary does NOT already occupy (a future period's descriptor
	// id): the cost of staying on the treadmill.
	freshID := tor.ComputeDescriptorID(sid, nil, 0, n.Now().Add(72*time.Hour))
	tries := tor.ExpectedKeySearchTries(n.Consensus(), freshID)
	res.AddNote("expected brute-force key tries to take the next period's responsible slot: %.3g", tries)

	// The descriptor period rolls; the service republishes at fresh
	// positions the adversary does not hold.
	sched.RunFor(25 * time.Hour)
	record("next descriptor period (adversary stale)")

	res.AddNote("denial requires re-positioning every period and 25h of advance uptime per relay")
	return res, nil
}

func errString(err error) string {
	if err == nil {
		return "-"
	}
	return err.Error()
}

// RunPoWDefense regenerates the Section VII-A evaluation: SOAP against
// basic bots, PoW-hardened bots with a non-solving attacker, and
// hardened bots with a paying attacker, reporting containment and work.
func RunPoWDefense(seed uint64, quick bool) (*Result, error) {
	res := &Result{
		ID:     "powdefense",
		Title:  "Proof-of-work hardening vs SOAP (Section VII-A)",
		Header: []string{"scenario", "contained", "attacker hashes", "honest hashes", "clones"},
	}
	bots := 8
	duration := 3 * time.Hour
	if quick {
		duration = 90 * time.Minute
	}

	type scenario struct {
		name     string
		harden   bool
		solvePoW bool
	}
	for _, sc := range []scenario{
		{"basic bots, basic SOAP", false, false},
		{"hardened bots, basic SOAP", true, false},
		{"hardened bots, paying SOAP", true, true},
	} {
		bn, err := core.NewBotNet(seed, 15, core.BotConfig{DMin: 2, DMax: 4})
		if err != nil {
			return nil, err
		}
		if err := bn.Grow(bots, nil); err != nil {
			return nil, err
		}
		bn.Run(6 * time.Minute)
		if sc.harden {
			for _, b := range bn.AliveBots() {
				b := b
				ad := pow.NewAdmission(6, 2, 18, time.Hour)
				b.AcceptVet = func(onion string, nonce uint64, bits uint8) (bool, []byte, uint8) {
					return ad.Vet(onion, nonce, bits, bn.Net.Now())
				}
			}
		}
		a := soap.NewAttacker(bn.Net, bn.Master.NetKey(),
			soap.Config{SolvePoW: sc.solvePoW, MaxSolveBits: 18})
		a.Start(bn.AliveBots()[0].Onion())
		bn.Run(duration)

		honest := uint64(0)
		for _, b := range bn.AliveBots() {
			honest += b.Stats().HashesSpent
		}
		contained := soap.ContainmentFraction(bn, a)
		res.Rows = append(res.Rows, []string{
			sc.name,
			fmt.Sprintf("%.2f", contained),
			fmt.Sprintf("%d", a.Stats().WorkHashes),
			fmt.Sprintf("%d", honest),
			fmt.Sprintf("%d", a.Stats().ClonesCreated),
		})
		// Summary series mirror the table so sweeps and scenario
		// expectations can target the pow experiment like any other:
		// x is the scenario index in table order.
		x := float64(len(res.Rows) - 1)
		res.AddPoint("contained", x, contained)
		res.AddPoint("attacker-hashes", x, float64(a.Stats().WorkHashes))
	}
	res.AddNote("hardening stops a non-paying attacker outright and taxes a paying one with escalating difficulty")
	return res, nil
}
