package experiment

import (
	"fmt"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/soap"
	"onionbots/internal/superonion"
)

func init() {
	Register(Definition{
		ID:    "fig8",
		Title: "SuperOnion fleet vs basic botnet under SOAP (Fig 8)",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultFig8Config(p.Quick)
			cfg.Seed = p.Seed
			if p.Store != "" {
				cfg.Store = p.Store
			}
			if p.N > 0 {
				cfg.Hosts = p.N
			}
			r, err := RunFig8(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// Fig8Config parameterizes the SuperOnion experiment: the Figure 8
// construction plus the SOAP-resistance comparison of Section VII-B.
type Fig8Config struct {
	// Hosts (n), VirtualsPerHost (m) and PeersPerVirtual (i) define the
	// construction. Figure 8 uses 5, 3, 2.
	Hosts, VirtualsPerHost, PeersPerVirtual int
	// Relays sizes the Tor substrate.
	Relays int
	// ProbeInterval is the hosts' connectivity-test period.
	ProbeInterval time.Duration
	// AttackInterval spaces the SOAP attacker's clone waves.
	AttackInterval time.Duration
	// Duration is the campaign length; SampleEvery spaces samples.
	Duration, SampleEvery time.Duration
	// Seed drives all randomness.
	Seed uint64
	// Store selects the tor.DescriptorStore backend ("" = default).
	Store string
}

// DefaultFig8Config returns presets. Quick shrinks the fleet and the
// campaign.
func DefaultFig8Config(quick bool) Fig8Config {
	cfg := Fig8Config{
		Hosts: 5, VirtualsPerHost: 3, PeersPerVirtual: 2,
		Relays:        15,
		ProbeInterval: 2 * time.Minute, AttackInterval: 5 * time.Minute,
		Duration: 3 * time.Hour, SampleEvery: 15 * time.Minute,
		Seed: 5,
	}
	if quick {
		cfg.Hosts = 4
		cfg.Duration = 90 * time.Minute
	}
	return cfg
}

// RunFig8 builds the Figure 8 SuperOnion fleet, runs a SOAP campaign
// against it, and compares host containment against an equal-size basic
// botnet under the same attacker.
func RunFig8(cfg Fig8Config) (*Result, error) {
	res := &Result{
		ID: "fig8",
		Title: fmt.Sprintf("SuperOnion (n=%d, m=%d, i=%d) under SOAP vs basic botnet",
			cfg.Hosts, cfg.VirtualsPerHost, cfg.PeersPerVirtual),
		XLabel: "minutes", YLabel: "contained fraction",
	}

	// SuperOnion fleet with the C&C hotlist that replacements rely on.
	bn, err := core.NewBotNet(cfg.Seed, cfg.Relays, core.BotConfig{DMin: 2, DMax: 4, Store: cfg.Store})
	if err != nil {
		return nil, err
	}
	bn.Master.HotlistSize = 3
	fleet, err := superonion.BuildFleet(bn, cfg.Hosts, superonion.Config{
		M: cfg.VirtualsPerHost, I: cfg.PeersPerVirtual, ProbeInterval: cfg.ProbeInterval,
	})
	if err != nil {
		return nil, err
	}
	bn.Run(6 * time.Minute)
	res.AddNote("construction: %d hosts x %d virtuals = %d virtual nodes, %d virtual peers per host",
		cfg.Hosts, cfg.VirtualsPerHost, fleet.VirtualCount(),
		cfg.VirtualsPerHost*cfg.PeersPerVirtual)

	attacker := soap.NewAttacker(bn.Net, bn.Master.NetKey(),
		soap.Config{RoundInterval: cfg.AttackInterval})
	attacker.Start(fleet.Hosts[0].Virtuals()[0].Onion())
	isBenign := func(onion string) bool { return !attacker.IsClone(onion) }

	// Baseline: same population of basic bots, same attacker pressure.
	base, err := core.NewBotNet(cfg.Seed, cfg.Relays, core.BotConfig{DMin: 2, DMax: 4, Store: cfg.Store})
	if err != nil {
		return nil, err
	}
	if err := base.Grow(cfg.Hosts*cfg.VirtualsPerHost, nil); err != nil {
		return nil, err
	}
	base.Run(6 * time.Minute)
	baseAttacker := soap.NewAttacker(base.Net, base.Master.NetKey(),
		soap.Config{RoundInterval: cfg.AttackInterval})
	baseAttacker.Start(base.AliveBots()[0].Onion())

	fleetSeries := Series{Name: "SuperOnion hosts"}
	baseSeries := Series{Name: "basic bots"}
	for elapsed := time.Duration(0); elapsed < cfg.Duration; elapsed += cfg.SampleEvery {
		bn.Run(cfg.SampleEvery)
		base.Run(cfg.SampleEvery)
		x := (elapsed + cfg.SampleEvery).Minutes()
		fleetSeries.Points = append(fleetSeries.Points, Point{
			X: x,
			Y: float64(fleet.ContainedHosts(isBenign)) / float64(len(fleet.Hosts)),
		})
		baseSeries.Points = append(baseSeries.Points, Point{
			X: x,
			Y: soap.ContainmentFraction(base, baseAttacker),
		})
	}
	res.Series = append(res.Series, fleetSeries, baseSeries)

	replaced, detected := 0, 0
	for _, h := range fleet.Hosts {
		replaced += h.Stats().VirtualsReplaced
		detected += h.Stats().SoapedDetected
	}
	res.AddNote("fleet detected %d soaped virtuals, replaced %d", detected, replaced)
	res.AddNote("final: SuperOnion hosts contained %.2f vs basic bots %.2f",
		fleetSeries.Points[len(fleetSeries.Points)-1].Y,
		baseSeries.Points[len(baseSeries.Points)-1].Y)
	res.AddNote("attacker spent %d clones on the fleet vs %d on the basic botnet",
		attacker.Stats().ClonesCreated, baseAttacker.Stats().ClonesCreated)
	return res, nil
}
