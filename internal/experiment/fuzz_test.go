package experiment

import (
	"strings"
	"testing"
)

// FuzzParseSweep hunts for sweep specs that panic the parser or break
// the expansion contract: any accepted sweep must expand into a task
// grid with unique labels (the runner's substream-independence
// precondition) — or fail Tasks() cleanly on an unknown experiment ID.
func FuzzParseSweep(f *testing.F) {
	f.Add([]byte(`{"experiments": ["fig6"], "ns": [800, 1000], "seeds": [1, 2]}`))
	f.Add([]byte(`{"experiments": ["churn-repair"], "quick": true, "churn": [{"process": "poisson", "leave": 8}]}`))
	f.Add([]byte(`{"experiments": ["churn-hotlist"], "stores": ["flat", "sharded", "mmap"], "seeds": [1]}`))
	f.Add([]byte(`{"experiments": ["fig4"], "fracs": [0.1, 0.2], "trials": 2}`))
	f.Add([]byte(`{"experiments": ["fig6"], "thresholds": [{"series": "reach", "stat": "last", "axis": "n", "below": 0.5}]}`))
	f.Add([]byte(`{"experiments": []}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Replay churn specs open fuzzer-chosen files; the trace format
		// has its own fuzz target in internal/churn.
		if strings.Contains(string(data), "trace_file") {
			t.Skip()
		}
		s, err := ParseSweep(data)
		if err != nil {
			return
		}
		// Bound the grid before expanding: the fuzzer may legitimately
		// write trials:1e9, and the contract under test is label
		// uniqueness, not memory exhaustion.
		size := len(s.Experiments)
		for _, n := range []int{len(s.Ns), len(s.Ks), len(s.Fracs), len(s.Churn),
			len(s.Soap), len(s.Faults), len(s.Stores), len(s.Seeds), s.Trials} {
			if n > 1 {
				size *= n
			}
			if size > 4096 {
				t.Skip()
			}
		}
		tasks, terr := s.Tasks()
		if terr != nil {
			return // unknown experiment ID — a clean failure
		}
		seen := make(map[string]struct{}, len(tasks))
		for _, task := range tasks {
			if task.Label == "" {
				t.Fatalf("task with empty label from input %q", data)
			}
			if _, dup := seen[task.Label]; dup {
				t.Fatalf("duplicate task label %q from input %q", task.Label, data)
			}
			seen[task.Label] = struct{}{}
		}
	})
}
