package experiment

import (
	"strings"
	"testing"
	"time"

	"onionbots/internal/churn"
	"onionbots/internal/faults"
)

// The headline shape claim of the fault plane: under a targeted 30%
// HSDir outage, a retry budget buys back a measurable share of C&C
// reachability inside the outage window, while single-attempt clients
// go dark. The margin is generous (0.25) because the claim is about
// the mechanism, not a precise rate.
func TestHSDirOutageRetriesBeatNoRetry(t *testing.T) {
	withRetry := DefaultHSDirOutageConfig(true)
	r1, err := RunHSDirOutage(withRetry)
	if err != nil {
		t.Fatalf("with retry: %v", err)
	}
	noRetry := DefaultHSDirOutageConfig(true)
	noRetry.Spec.RetryAttempts = 1
	noRetry.Spec.RetryBackoffS = 0
	r0, err := RunHSDirOutage(noRetry)
	if err != nil {
		t.Fatalf("no retry: %v", err)
	}

	reach := func(r *Result, name string) float64 {
		s := r.SeriesByName(name)
		if s == nil || len(s.Points) == 0 {
			t.Fatalf("%s: missing series %q", r.ID, name)
		}
		return s.Points[0].Y
	}
	r1win := reach(r1, "outage-window-reachability")
	r0win := reach(r0, "outage-window-reachability")
	if r1win < r0win+0.25 {
		t.Fatalf("retry budget bought nothing: with retry %.3f, without %.3f", r1win, r0win)
	}
	// The self-healing floor: once the consensus drops the dead
	// directories and the service republishes, even single-attempt
	// clients reach the C&C again — retries only bridge the window.
	if fin := reach(r0, "final-reachability"); fin < 1 {
		t.Fatalf("no-retry run never healed: final reachability %.3f", fin)
	}
	if fin := reach(r1, "final-reachability"); fin < 1 {
		t.Fatalf("retry run never healed: final reachability %.3f", fin)
	}
}

// A targeted outage must actually darken the window for single-attempt
// clients — otherwise the shape test above is vacuous.
func TestHSDirOutageTargetedWaveDarkensWindow(t *testing.T) {
	cfg := DefaultHSDirOutageConfig(true)
	cfg.Spec.RetryAttempts = 1
	cfg.Spec.RetryBackoffS = 0
	r, err := RunHSDirOutage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if win := r.SeriesByName("outage-window-reachability").Points[0].Y; win > 0.2 {
		t.Fatalf("targeted 30%% outage barely registered: window reachability %.3f", win)
	}
	hs := r.SeriesByName("hsdirs")
	min := hs.Points[0].Y
	for _, p := range hs.Points {
		if p.Y < min {
			min = p.Y
		}
	}
	if min >= hs.Points[0].Y {
		t.Fatalf("hsdir series never dipped: %v", hs.Points)
	}
}

// relay-outage must compose infrastructure faults with membership
// churn on one scheduler and stay deterministic doing it.
func TestRelayOutageComposesWithChurn(t *testing.T) {
	cfg := DefaultRelayOutageConfig(true)
	cfg.Duration = 6 * time.Hour
	cfg.Churn = &churn.Spec{Process: "poisson", Join: 1, Leave: 1}
	run := func() *Result {
		r, err := RunRelayOutage(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := run(), run()
	if r1.Render() != r2.Render() {
		t.Fatalf("relay-outage with churn not deterministic:\n%s\n---\n%s", r1.Render(), r2.Render())
	}
	notes := strings.Join(r1.Notes, "\n")
	if !strings.Contains(notes, "churn") || !strings.Contains(notes, "faults") {
		t.Fatalf("composition notes missing fault/churn counts:\n%s", notes)
	}
	for _, name := range []string{"relays", "alive", "component-frac", "reachability", "non-quality"} {
		if r1.SeriesByName(name) == nil {
			t.Fatalf("missing series %q", name)
		}
	}
}

// The faults sweep axis: parse, validation, labels, threshold wiring,
// and byte-identical output across worker counts.
func TestSweepFaultsAxis(t *testing.T) {
	spec := []byte(`{
		"name": "faults-grid",
		"experiments": ["hsdir-outage"],
		"quick": true,
		"faults": [
			{"outage_frac": 0.3, "outage_at_h": 2, "outage_targeted": true, "retry_attempts": 1},
			{"outage_frac": 0.3, "outage_at_h": 2, "outage_targeted": true, "retry_attempts": 4, "retry_backoff_s": 1800}
		],
		"thresholds": [
			{"series": "outage-window-reachability", "axis": "faults", "above": 0.5}
		]
	}`)
	s, err := ParseSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("expected 2 tasks, got %d", len(tasks))
	}
	for i, task := range tasks {
		if !strings.Contains(task.Label, "/faults=faults;outage=0.3") {
			t.Fatalf("task %d label missing faults component: %q", i, task.Label)
		}
		if task.Params.Faults == nil {
			t.Fatalf("task %d has no faults spec", i)
		}
	}

	var renders []string
	for _, parallel := range []int{1, 4} {
		trs, err := (&Runner{Parallel: parallel}).Run(tasks)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trs {
			if tr.Err != nil {
				t.Fatalf("task %s: %v", tr.Task.Label, tr.Err)
			}
		}
		renders = append(renders, s.Aggregate(trs).Render())
	}
	if renders[0] != renders[1] {
		t.Fatalf("faults-axis sweep differs across parallelism:\n%s\n---\n%s", renders[0], renders[1])
	}
	if !strings.Contains(renders[0], "(threshold)") {
		t.Fatalf("aggregate missing threshold row:\n%s", renders[0])
	}
}

func TestSweepFaultsAxisValidation(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"bad spec", `{"experiments":["fig3"],"faults":[{"outage_frac": 1.5}]}`},
		{"unknown field", `{"experiments":["fig3"],"faults":[{"outage": 0.5}]}`},
		{"duplicate", `{"experiments":["fig3"],"faults":[{"intro_fail_p":0.5},{"intro_fail_p":0.5}]}`},
		{"threshold unswept", `{"experiments":["fig3"],"thresholds":[{"series":"x","axis":"faults","above":1}]}`},
	}
	for _, c := range cases {
		if _, err := ParseSweep([]byte(c.spec)); err == nil {
			t.Errorf("%s: accepted invalid sweep", c.name)
		}
	}
}

// The runner's wall-clock valve: a task that outlives TaskTimeout is
// reported as an error row instead of hanging the run.
func TestRunnerTaskTimeout(t *testing.T) {
	tasks := []Task{{Label: "slow", Experiment: "hsdir-outage", Params: Params{Quick: true, Seed: 1}}}
	trs, err := (&Runner{TaskTimeout: time.Nanosecond}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if trs[0].Err == nil || !strings.Contains(trs[0].Err.Error(), "timed out") {
		t.Fatalf("expected timeout error, got %v", trs[0].Err)
	}
	// Zero timeout keeps the runner unbounded (and on the fast path).
	trs, err = (&Runner{}).Run([]Task{{Label: "ok", Experiment: "fig3", Params: Params{Quick: true, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if trs[0].Err != nil {
		t.Fatalf("unbounded run failed: %v", trs[0].Err)
	}
}

// Params.Faults must override the experiment presets end to end.
func TestParamsFaultsOverride(t *testing.T) {
	def, ok := Lookup("relay-outage")
	if !ok {
		t.Fatal("relay-outage not registered")
	}
	spec := faults.Spec{IntroFailP: 0.5, RetryAttempts: 2, RetryBackoffS: 30}
	results, err := def.Run(Params{Quick: true, Seed: 3, N: 6, Faults: &spec})
	if err != nil {
		t.Fatal(err)
	}
	notes := strings.Join(results[0].Notes, "\n")
	if !strings.Contains(notes, "introp=0.5") {
		t.Fatalf("spec override not honored in notes:\n%s", notes)
	}
}
