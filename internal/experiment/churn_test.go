package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"onionbots/internal/churn"
)

func quickChurnRepairConfig(seed uint64, spec churn.Spec) ChurnRepairConfig {
	cfg := DefaultChurnRepairConfig(true)
	cfg.Seed = seed
	cfg.Spec = spec
	return cfg
}

func qualityOf(t *testing.T, res *Result) float64 {
	t.Helper()
	q := res.SeriesByName("quality")
	if q == nil || len(q.Points) != 1 {
		t.Fatalf("missing quality summary series: %+v", res.Series)
	}
	return q.Points[0].Y
}

func TestChurnRepairQualityDegradesMonotonicallyWithLeaveRate(t *testing.T) {
	// The ROADMAP's scenario-library direction: expected-shape
	// assertions, not just smoke. Repair quality must fall as Poisson
	// leave outruns the repair cadence — the dynamic counterpart of
	// Fig 5's "resilient until ~90% deletion".
	quality := func(lambda float64) float64 {
		res, err := RunChurnRepair(quickChurnRepairConfig(11,
			churn.Spec{Process: "poisson", Leave: lambda}))
		if err != nil {
			t.Fatal(err)
		}
		return qualityOf(t, res)
	}
	q4, q16, q64 := quality(4), quality(16), quality(64)
	if !(q4 > q16 && q16 > q64) {
		t.Fatalf("quality not monotone in λ: q(4)=%.3f q(16)=%.3f q(64)=%.3f", q4, q16, q64)
	}
	if q4-q16 < 0.1 || q16-q64 < 0.1 {
		t.Errorf("degradation too shallow to be the expected cliff: %.3f, %.3f, %.3f", q4, q16, q64)
	}
	if q4 < 0.9 {
		t.Errorf("mild churn (λ=4/h vs 30m repair) should keep quality high, got %.3f", q4)
	}
}

func TestChurnRepairInstantRepairIsRateBlind(t *testing.T) {
	// With RepairEvery=0 the overlay heals inside every removal, so the
	// survival-pressure aside, degree health cannot depend on rate —
	// the negative control that motivates the lagged maintainer.
	run := func(lambda float64) *Result {
		cfg := quickChurnRepairConfig(11, churn.Spec{Process: "poisson", Join: lambda, Leave: lambda})
		cfg.RepairEvery = 0
		cfg.Duration = 12 * time.Hour
		res, err := RunChurnRepair(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, lambda := range []float64{4, 64} {
		res := run(lambda)
		comps := res.SeriesByName("components")
		for _, p := range comps.Points {
			if p.Y != 1 {
				t.Fatalf("λ=%g: instant repair let components hit %g at h=%g", lambda, p.Y, p.X)
			}
		}
	}
}

func TestChurnHotlistStalenessShape(t *testing.T) {
	cfg := DefaultChurnHotlistConfig(true)
	cfg.Seed = 7
	res, err := RunChurnHotlist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stale := res.SeriesByName("staleness")
	reg := res.SeriesByName("registered")
	alive := res.SeriesByName("alive")
	if stale == nil || reg == nil || alive == nil {
		t.Fatalf("missing series: %+v", res.Series)
	}
	if first := stale.Points[0].Y; first != 0 {
		t.Errorf("staleness starts at %g, want 0 (everyone just registered)", first)
	}
	grew := false
	for i, p := range stale.Points {
		if p.Y < 0 || p.Y > 1 {
			t.Fatalf("staleness %g outside [0, 1]", p.Y)
		}
		if p.Y > 0.2 {
			grew = true
		}
		if i > 0 && reg.Points[i].Y < reg.Points[i-1].Y {
			t.Fatalf("registry shrank %g -> %g; it never forgets", reg.Points[i-1].Y, reg.Points[i].Y)
		}
	}
	if !grew {
		t.Error("staleness never exceeded 0.2 under a day of diurnal churn")
	}
	if last := alive.Points[len(alive.Points)-1].Y; last <= 0 {
		t.Errorf("population died under balanced diurnal churn: %g alive", last)
	}
}

func TestChurnSweepByteIdenticalAcrossParallelism(t *testing.T) {
	// The acceptance gate: a churn sweep's full JSON document (tasks +
	// aggregate) must not depend on the worker count.
	spec := `{
		"name": "churn-diff",
		"experiments": ["churn-repair"],
		"quick": true,
		"churn": [{"process": "poisson", "leave": 8}, {"process": "poisson", "leave": 16}],
		"seeds": [1],
		"trials": 2,
		"thresholds": [{"series": "quality", "axis": "churn", "below": 0.8}]
	}`
	s, err := ParseSweep([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("expanded to %d tasks, want 2 churn × 1 seed × 2 trials = 4", len(tasks))
	}
	doc := func(parallel int) []byte {
		trs, err := (&Runner{Parallel: parallel}).Run(tasks)
		if err != nil {
			t.Fatal(err)
		}
		out, err := SweepJSON(s, trs, s.Aggregate(trs))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	p1, p4 := doc(1), doc(4)
	if !bytes.Equal(p1, p4) {
		t.Fatal("churn sweep JSON differs between -parallel 1 and 4")
	}
}

func TestSweepChurnAxisExpansion(t *testing.T) {
	s := &Sweep{
		Name:        "c",
		Experiments: []string{"churn-repair"},
		Quick:       true,
		Churn: []churn.Spec{
			{Process: "poisson", Leave: 8},
			{Process: "diurnal", Join: 2, Leave: 2, Amplitude: 0.8},
		},
		Seeds: []uint64{1, 2},
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("expanded to %d tasks, want 2 churn × 2 seeds", len(tasks))
	}
	if tasks[0].Label != "churn-repair/churn=poisson;l=8/seed=1" {
		t.Fatalf("first label = %q", tasks[0].Label)
	}
	if tasks[2].Label != "churn-repair/churn=diurnal;j=2;l=2;a=0.8/seed=1" {
		t.Fatalf("third label = %q", tasks[2].Label)
	}
	if tasks[0].Params.Churn == nil || tasks[0].Params.Churn.Leave != 8 {
		t.Fatalf("churn spec not threaded into params: %+v", tasks[0].Params)
	}
	// The axis must produce distinct substreams per spec.
	if tasks[0].Label == tasks[2].Label {
		t.Fatal("distinct churn specs share a label")
	}
}

func TestParseSweepValidatesChurnAndThresholds(t *testing.T) {
	cases := []struct{ name, spec, wantErr string }{
		{"bad churn process",
			`{"experiments":["fig6"],"churn":[{"process":"flash"}]}`, "unknown process"},
		{"duplicate churn specs",
			`{"experiments":["fig6"],"churn":[{"process":"poisson","leave":8},{"process":"poisson","leave":8}]}`,
			"duplicate churn spec"},
		{"churn unknown field",
			`{"experiments":["fig6"],"churn":[{"process":"poisson","rate":8}]}`, "unknown field"},
		{"threshold needs swept axis",
			`{"experiments":["fig6"],"thresholds":[{"series":"q","axis":"churn","below":1}]}`, "not swept"},
		{"threshold unknown axis",
			`{"experiments":["fig6"],"ns":[10],"thresholds":[{"series":"q","axis":"size","below":1}]}`, "unknown axis"},
		{"threshold both bounds",
			`{"experiments":["fig6"],"ns":[10],"thresholds":[{"series":"q","axis":"n","above":1,"below":2}]}`, "exactly one"},
		{"threshold no bounds",
			`{"experiments":["fig6"],"ns":[10],"thresholds":[{"series":"q","axis":"n"}]}`, "exactly one"},
		{"threshold bad stat",
			`{"experiments":["fig6"],"ns":[10],"thresholds":[{"series":"q","axis":"n","stat":"median","below":1}]}`, "unknown stat"},
		{"threshold no series",
			`{"experiments":["fig6"],"ns":[10],"thresholds":[{"axis":"n","below":1}]}`, "no series"},
	}
	for _, tc := range cases {
		if _, err := ParseSweep([]byte(tc.spec)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// syntheticChurnTrs builds task results shaped like a churn × seeds ×
// trials grid without running any experiment, so aggregate mechanics
// are tested exactly.
func syntheticChurnTrs(s *Sweep, lastQuality func(churnLabel string, seed uint64, trial int) float64) []TaskResult {
	tasks, _ := s.Tasks()
	trs := make([]TaskResult, 0, len(tasks))
	for _, task := range tasks {
		label := labelComponent(task.Label, "churn")
		trial := 0
		if tv := labelComponent(task.Label, "trial"); tv == "1" {
			trial = 1
		}
		y := lastQuality(label, task.Params.Seed, trial)
		trs = append(trs, TaskResult{Task: task, Results: []*Result{{
			ID: "churn-repair",
			Series: []Series{{Name: "quality",
				Points: []Point{{X: 0, Y: y}}}},
		}}})
	}
	return trs
}

func TestAggregateTrialStatsAndThresholdRows(t *testing.T) {
	below := 0.8
	s := &Sweep{
		Name:        "agg",
		Experiments: []string{"churn-repair"},
		Churn: []churn.Spec{
			{Process: "poisson", Leave: 4},
			{Process: "poisson", Leave: 16},
		},
		Seeds:  []uint64{1, 2},
		Trials: 2,
		Thresholds: []Threshold{
			{Series: "quality", Axis: "churn", Below: &below},
			{Series: "nonexistent", Axis: "churn", Below: &below},
		},
	}
	// λ=4 healthy (0.95, 0.97 per trial); λ=16 broken (0.4, 0.5).
	agg := s.Aggregate(syntheticChurnTrs(s, func(label string, seed uint64, trial int) float64 {
		base := 0.95
		if label == "poisson;l=16" {
			base = 0.4
		}
		return base + float64(trial)*0.02
	}))

	var trialRows, seedRows, thresholdRows [][]string
	for _, row := range agg.Rows {
		switch {
		case strings.Contains(row[2], "mean±sd seeds"):
			seedRows = append(seedRows, row)
		case strings.Contains(row[2], "mean±sd"):
			trialRows = append(trialRows, row)
		}
		if row[1] == "(threshold)" {
			thresholdRows = append(thresholdRows, row)
		}
	}
	// 2 churn × 2 seeds grid points, one quality series each; plus one
	// cross-seed row per churn value pooling seeds × trials.
	if len(trialRows) != 4 {
		t.Fatalf("got %d mean±sd rows, want 4:\n%s", len(trialRows), agg.Render())
	}
	for _, row := range trialRows {
		if row[3] != "2" {
			t.Fatalf("mean row over %s trials, want 2: %v", row[3], row)
		}
		if strings.Contains(row[0], "trial=") {
			t.Fatalf("grid-point label still carries trial component: %v", row)
		}
	}
	// First point: trials 0.95 and 0.97 -> mean 0.96, sd ~0.0141, and a
	// Student-t interval sized from n=2 (t=12.706): ±12.706·sd/√2 ≈ 0.127.
	if got := trialRows[0][8]; got != "0.96" {
		t.Fatalf("mean = %q, want 0.96", got)
	}
	if !strings.HasPrefix(trialRows[0][9], "0.014") {
		t.Fatalf("stddev = %q, want ~0.0141", trialRows[0][9])
	}
	if !strings.HasPrefix(trialRows[0][10], "±0.127") {
		t.Fatalf("ci95 = %q, want ~±0.1271", trialRows[0][10])
	}
	if len(seedRows) != 2 {
		t.Fatalf("got %d cross-seed rows, want one per churn value:\n%s", len(seedRows), agg.Render())
	}
	for _, row := range seedRows {
		if row[3] != "4" {
			t.Fatalf("cross-seed row pools %s replicates, want 2 seeds × 2 trials = 4: %v", row[3], row)
		}
		if strings.Contains(row[0], "seed=") || strings.Contains(row[0], "trial=") {
			t.Fatalf("cross-seed label still carries replicate components: %v", row)
		}
	}

	// Quality threshold: one row per seed group. The churn axis varies a
	// single numeric knob (λ), so the crossing is interpolated between
	// λ=4 (mean 0.96) and λ=16 (mean 0.41): 4 + (0.96-0.8)/(0.96-0.41)·12
	// ≈ 7.491. The nonexistent series yields "(not crossed)" with 0 scanned.
	if len(thresholdRows) != 4 {
		t.Fatalf("got %d threshold rows, want 2 thresholds × 2 seed groups:\n%s",
			len(thresholdRows), agg.Render())
	}
	for _, row := range thresholdRows[:2] {
		if row[4] != "λ≈7.491" {
			t.Fatalf("quality threshold crossed at %q, want λ≈7.491 (row %v)", row[4], row)
		}
		if !strings.Contains(row[2], "(interpolated)") {
			t.Fatalf("numeric-axis threshold rule not marked interpolated: %v", row)
		}
		if row[8] == "-" {
			t.Fatalf("crossing mean missing: %v", row)
		}
	}
	for _, row := range thresholdRows[2:] {
		if row[4] != "(not crossed)" || row[3] != "0" {
			t.Fatalf("nonexistent series should scan nothing: %v", row)
		}
	}

	// The note line must advertise the churn axis.
	noteOK := false
	for _, n := range agg.Notes {
		if strings.Contains(n, "churn=[poisson;l=4 poisson;l=16]") {
			noteOK = true
		}
	}
	if !noteOK {
		t.Fatalf("aggregate note omits the churn axis: %v", agg.Notes)
	}
}

func TestSweepJSONRoundTripsChurnAxisAndStatRows(t *testing.T) {
	below := 0.8
	s := &Sweep{
		Name:        "rt",
		Experiments: []string{"churn-repair"},
		Churn:       []churn.Spec{{Process: "poisson", Leave: 4}, {Process: "poisson", Leave: 16}},
		Trials:      2,
		Thresholds:  []Threshold{{Series: "quality", Axis: "churn", Below: &below}},
	}
	trs := syntheticChurnTrs(s, func(label string, _ uint64, trial int) float64 {
		if label == "poisson;l=16" {
			return 0.3
		}
		return 0.95
	})
	doc, err := SweepJSON(s, trs, s.Aggregate(trs))
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Sweep struct {
			Churn []struct {
				Process string  `json:"process"`
				Leave   float64 `json:"leave"`
			} `json:"churn"`
			Thresholds []struct {
				Series string   `json:"series"`
				Axis   string   `json:"axis"`
				Below  *float64 `json:"below"`
			} `json:"thresholds"`
		} `json:"sweep"`
		Tasks []struct {
			Task struct {
				Label  string `json:"label"`
				Params struct {
					Churn *struct {
						Process string  `json:"process"`
						Leave   float64 `json:"leave"`
					} `json:"churn"`
				} `json:"params"`
			} `json:"task"`
		} `json:"tasks"`
		Aggregate struct {
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
		} `json:"aggregate"`
	}
	if err := json.Unmarshal(doc, &decoded); err != nil {
		t.Fatalf("sweep JSON does not round-trip: %v", err)
	}
	if len(decoded.Sweep.Churn) != 2 || decoded.Sweep.Churn[1].Leave != 16 {
		t.Fatalf("churn axis lost in JSON: %+v", decoded.Sweep.Churn)
	}
	if len(decoded.Sweep.Thresholds) != 1 || decoded.Sweep.Thresholds[0].Below == nil {
		t.Fatalf("thresholds lost in JSON: %+v", decoded.Sweep.Thresholds)
	}
	if decoded.Tasks[0].Task.Params.Churn == nil || decoded.Tasks[0].Task.Params.Churn.Process != "poisson" {
		t.Fatalf("params.churn lost in JSON: %+v", decoded.Tasks[0].Task.Params)
	}
	wantHeader := []string{"task", "result", "series", "points",
		"y.first", "y.last", "y.min", "y.max", "last.mean", "last.stddev", "last.ci95"}
	if len(decoded.Aggregate.Header) != len(wantHeader) {
		t.Fatalf("aggregate header = %v, want %v", decoded.Aggregate.Header, wantHeader)
	}
	for i, h := range wantHeader {
		if decoded.Aggregate.Header[i] != h {
			t.Fatalf("aggregate header = %v, want %v", decoded.Aggregate.Header, wantHeader)
		}
	}
	foundMean, foundThreshold := false, false
	for _, row := range decoded.Aggregate.Rows {
		if strings.Contains(row[2], "mean±sd") {
			foundMean = true
		}
		if row[1] == "(threshold)" && strings.HasPrefix(row[4], "λ≈") {
			foundThreshold = true
		}
	}
	if !foundMean || !foundThreshold {
		t.Fatalf("aggregate rows missing stats (mean=%v threshold=%v)", foundMean, foundThreshold)
	}
	// A churn-free spec must keep churn and thresholds out of its JSON
	// entirely (omitempty), so pre-churn sweep documents are unchanged.
	plain, err := json.Marshal(&Sweep{Name: "p", Experiments: []string{"fig6"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "churn") || strings.Contains(string(plain), "thresholds") {
		t.Fatalf("zero-value sweep leaks churn fields: %s", plain)
	}
}

func TestParamsJSONOmitsNilChurn(t *testing.T) {
	plain, err := json.Marshal(Params{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "churn") {
		t.Fatalf("nil churn leaks into params JSON: %s", plain)
	}
	spec := churn.Spec{Process: "poisson", Leave: 8}
	withChurn, err := json.Marshal(Params{Seed: 1, Churn: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(withChurn), `"process":"poisson"`) {
		t.Fatalf("churn spec missing from params JSON: %s", withChurn)
	}
}
