package experiment

import (
	"fmt"
	"sync"
	"time"

	"onionbots/internal/sim"
)

// Task names one experiment invocation: which registered experiment to
// run, under which label, with which parameters. The label doubles as
// the task's RNG substream name — see Runner.
type Task struct {
	// Label uniquely identifies the task within one Runner.Run call
	// ("fig6", "fig6/n=1000/seed=2/trial=0", ...).
	Label string `json:"label"`
	// Experiment is the registry ID to run.
	Experiment string `json:"experiment"`
	// Params are the generic parameters passed to the experiment.
	Params Params `json:"params"`
}

// TaskResult pairs a task with its outcome. Results are positionally
// stable: Runner.Run returns them in task order whatever the worker
// count or completion order was.
type TaskResult struct {
	Task Task `json:"task"`
	// EffectiveSeed is the substream seed the experiment actually ran
	// with: sim.SubstreamSeed(Task.Params.Seed, Task.Label). Feeding it
	// back through Params.Seed with an identical label reproduces the
	// task bit-for-bit.
	EffectiveSeed uint64 `json:"effective_seed"`
	// Results holds the regenerated figures/tables (nil on error).
	Results []*Result `json:"results,omitempty"`
	// Err is the task's failure, if any.
	Err error `json:"-"`
	// Error mirrors Err as a string for JSON output.
	Error string `json:"error,omitempty"`
	// Elapsed is the task's wall-clock duration. It is reported on
	// stderr progress lines only and deliberately excluded from JSON so
	// machine-readable output stays byte-identical across runs.
	Elapsed time.Duration `json:"-"`
}

// Runner executes experiment tasks across a worker pool with
// deterministic results.
//
// Determinism contract: before invoking an experiment, the runner
// replaces the task's seed with sim.SubstreamSeed(seed, label), giving
// every task an independent random stream that is a pure function of
// (root seed, task label). Experiments are forbidden from consulting
// wall-clock time or shared mutable state, so the rendered output of a
// task set is byte-identical at any Parallel value and any scheduling
// order.
type Runner struct {
	// Parallel is the worker count. Values below 1 mean serial.
	Parallel int
	// Progress, if set, is called after each task completes, serialized
	// under a lock, with the number of finished tasks so far. It is for
	// stderr reporting; it must not write to stdout.
	Progress func(done, total int, tr TaskResult)
	// TaskTimeout, when positive, bounds each task's wall-clock
	// duration: a task still running after the deadline is reported as
	// TaskResult.Err instead of hanging the whole run. Off by default —
	// experiments have no cancellation points, so a timed-out task's
	// goroutine keeps running to completion in the background and its
	// result is discarded; the timeout is a sweep-survival valve, not a
	// scheduler. Wall-clock bounds are inherently nondeterministic, so
	// never enable this when byte-identical output matters.
	TaskTimeout time.Duration
}

// Run executes every task and returns one TaskResult per task, in task
// order. Per-task failures (unknown experiment ID, experiment error,
// panic) are reported in TaskResult.Err; Run itself fails only on a
// malformed task set (duplicate labels, which would break the substream
// independence guarantee).
func (r *Runner) Run(tasks []Task) ([]TaskResult, error) {
	seen := make(map[string]struct{}, len(tasks))
	for _, t := range tasks {
		if _, dup := seen[t.Label]; dup {
			return nil, fmt.Errorf("duplicate task label %q", t.Label)
		}
		seen[t.Label] = struct{}{}
	}

	workers := r.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	results := make([]TaskResult, len(tasks))
	idx := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runBounded(tasks[i])
				if r.Progress != nil {
					mu.Lock()
					done++
					r.Progress(done, len(tasks), results[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, nil
}

// runBounded runs one task under the runner's wall-clock budget. With
// no TaskTimeout it is runTask itself — same goroutine, no channel.
func (r *Runner) runBounded(t Task) TaskResult {
	if r.TaskTimeout <= 0 {
		return runTask(t)
	}
	ch := make(chan TaskResult, 1)
	go func() { ch <- runTask(t) }()
	select {
	case tr := <-ch:
		return tr
	case <-time.After(r.TaskTimeout):
		tr := TaskResult{Task: t, EffectiveSeed: sim.SubstreamSeed(t.Params.Seed, t.Label)}
		tr.Err = fmt.Errorf("task %s timed out after %s", t.Label, r.TaskTimeout)
		tr.Error = tr.Err.Error()
		tr.Elapsed = r.TaskTimeout
		return tr
	}
}

func runTask(t Task) (tr TaskResult) {
	start := time.Now()
	tr = TaskResult{Task: t, EffectiveSeed: sim.SubstreamSeed(t.Params.Seed, t.Label)}
	defer func() {
		if p := recover(); p != nil {
			tr.Err = fmt.Errorf("task %s panicked: %v", t.Label, p)
		}
		if tr.Err != nil {
			tr.Error = tr.Err.Error()
			tr.Results = nil
		}
		tr.Elapsed = time.Since(start)
	}()
	def, ok := Lookup(t.Experiment)
	if !ok {
		tr.Err = fmt.Errorf("unknown experiment %q", t.Experiment)
		return tr
	}
	p := t.Params
	p.Seed = tr.EffectiveSeed
	tr.Results, tr.Err = def.Run(p)
	return tr
}
