package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"onionbots/internal/sim"
)

// Task names one experiment invocation: which registered experiment to
// run, under which label, with which parameters. The label doubles as
// the task's RNG substream name — see Runner.
type Task struct {
	// Label uniquely identifies the task within one Runner.Run call
	// ("fig6", "fig6/n=1000/seed=2/trial=0", ...).
	Label string `json:"label"`
	// Experiment is the registry ID to run.
	Experiment string `json:"experiment"`
	// Params are the generic parameters passed to the experiment.
	Params Params `json:"params"`
	// SeedLabel, when non-empty, replaces Label in the substream seed
	// derivation. The sweep engine sets it on tasks that differ only in
	// the descriptor-store backend so the whole group shares one random
	// stream: the store axis is then a pure memory-plane A/B whose task
	// outputs are byte-identical across backends. Empty means "use
	// Label", which keeps every other task's identity unchanged.
	SeedLabel string `json:"seed_label,omitempty"`
}

// seedLabel returns the label the substream seed is derived from.
func (t Task) seedLabel() string {
	if t.SeedLabel != "" {
		return t.SeedLabel
	}
	return t.Label
}

// TaskResult pairs a task with its outcome. Results are positionally
// stable: Runner.Run returns them in task order whatever the worker
// count or completion order was.
type TaskResult struct {
	Task Task `json:"task"`
	// EffectiveSeed is the substream seed the experiment actually ran
	// with: sim.SubstreamSeed(Task.Params.Seed, Task.seedLabel()).
	// Feeding it back through Params.Seed with an identical label
	// reproduces the task bit-for-bit.
	EffectiveSeed uint64 `json:"effective_seed"`
	// Results holds the regenerated figures/tables (nil on error).
	Results []*Result `json:"results,omitempty"`
	// Err is the task's failure, if any.
	Err error `json:"-"`
	// Error mirrors Err as a string for JSON output.
	Error string `json:"error,omitempty"`
	// Elapsed is the task's wall-clock duration. It is reported on
	// stderr progress lines only and deliberately excluded from JSON so
	// machine-readable output stays byte-identical across runs.
	Elapsed time.Duration `json:"-"`
}

// Counts is a snapshot of a runner's task accounting, read with
// Runner.Counts. Attempts counts every execution attempt (a task retried
// once contributes two); the remaining fields count terminal outcomes
// plus the two events that never appear in TaskResult on their own:
// Retried, the number of extra attempts granted to panicked or timed-out
// tasks, and Abandoned, the number of timed-out attempts whose goroutine
// was left running to completion in the background with its result
// discarded. Abandoned > 0 means wall-clock budget was spent on work
// nobody collected — the batch CLI and the serve-mode /metrics endpoint
// both surface it so stuck tasks are visible instead of silently leaked.
type Counts struct {
	Attempts  int64 `json:"attempts"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Retried   int64 `json:"retried"`
	Abandoned int64 `json:"abandoned"`
}

// Runner executes experiment tasks across a worker pool with
// deterministic results.
//
// Determinism contract: before invoking an experiment, the runner
// replaces the task's seed with sim.SubstreamSeed(seed, label), giving
// every task an independent random stream that is a pure function of
// (root seed, task label). Experiments are forbidden from consulting
// wall-clock time or shared mutable state, so the rendered output of a
// task set is byte-identical at any Parallel value and any scheduling
// order. Retries preserve the contract: a re-attempted task runs on the
// same substream seed, so whenever it completes it produces the same
// bytes it would have produced the first time.
type Runner struct {
	// Parallel is the worker count. Values below 1 mean serial.
	Parallel int
	// Progress, if set, is called after each task completes, serialized
	// under a lock, with the number of finished tasks so far. It is for
	// stderr reporting and for completion hooks (the serve-mode
	// checkpoint journal appends from it); it must not write to stdout.
	// It fires once per task, after the final attempt, never per retry.
	Progress func(done, total int, tr TaskResult)
	// TaskTimeout, when positive, bounds each task's wall-clock
	// duration: a task still running after the deadline is reported as
	// TaskResult.Err instead of hanging the whole run. Off by default —
	// experiments have no cancellation points, so a timed-out task's
	// goroutine keeps running to completion in the background and its
	// result is discarded (counted in Counts.Abandoned); the timeout is
	// a sweep-survival valve, not a scheduler. Wall-clock bounds are
	// inherently nondeterministic, so never enable this when
	// byte-identical output matters.
	TaskTimeout time.Duration
	// MaxTaskRetries grants each task this many extra attempts when an
	// attempt panics or times out, before the task is marked failed.
	// Deterministic experiment errors are not retried — they would fail
	// identically — so retries only chase transient conditions
	// (wall-clock timeouts under load, allocation panics under memory
	// pressure). One grid point exhausting its budget fails that task
	// only, never the run.
	MaxTaskRetries int
	// TaskRetryBackoff is the sleep before the second attempt, doubled
	// per subsequent attempt. Zero means retry immediately.
	TaskRetryBackoff time.Duration

	attempts  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	retried   atomic.Int64
	abandoned atomic.Int64
}

// Counts returns a snapshot of the runner's task accounting. Counters
// accumulate across Run calls on the same Runner.
func (r *Runner) Counts() Counts {
	return Counts{
		Attempts:  r.attempts.Load(),
		Completed: r.completed.Load(),
		Failed:    r.failed.Load(),
		Retried:   r.retried.Load(),
		Abandoned: r.abandoned.Load(),
	}
}

// Run executes every task and returns one TaskResult per task, in task
// order. Per-task failures (unknown experiment ID, experiment error,
// panic) are reported in TaskResult.Err; Run itself fails only on a
// malformed task set (duplicate labels, which would break the substream
// independence guarantee).
func (r *Runner) Run(tasks []Task) ([]TaskResult, error) {
	results, _, err := r.RunStoppable(tasks, nil)
	return results, err
}

// RunStoppable is Run with a drain valve: when stop is closed, workers
// finish the tasks they already started but pick up no new ones, and
// RunStoppable returns early. The returned ran slice records, in task
// order, which tasks actually executed — results[i] is meaningful only
// where ran[i] is true. A nil stop channel makes it exactly Run. This is
// the hook serve-mode graceful shutdown and job cancellation stand on:
// in-flight grid points drain (and reach the checkpoint journal via
// Progress), unstarted ones are left for the resumed run.
func (r *Runner) RunStoppable(tasks []Task, stop <-chan struct{}) ([]TaskResult, []bool, error) {
	seen := make(map[string]struct{}, len(tasks))
	for _, t := range tasks {
		if _, dup := seen[t.Label]; dup {
			return nil, nil, fmt.Errorf("duplicate task label %q", t.Label)
		}
		seen[t.Label] = struct{}{}
	}

	workers := r.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	results := make([]TaskResult, len(tasks))
	ran := make([]bool, len(tasks))
	idx := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				ran[i] = true
				results[i] = r.runBounded(tasks[i])
				if r.Progress != nil {
					mu.Lock()
					done++
					r.Progress(done, len(tasks), results[i])
					mu.Unlock()
				}
			}
		}()
	}
dispatch:
	for i := range tasks {
		select {
		case idx <- i:
		case <-stop:
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	return results, ran, nil
}

// runBounded runs one task under the runner's wall-clock and retry
// budgets. With no TaskTimeout and no retries it is runTask itself —
// same goroutine, no channel.
func (r *Runner) runBounded(t Task) TaskResult {
	for attempt := 0; ; attempt++ {
		tr, transient := r.attemptTask(t)
		if tr.Err == nil {
			r.completed.Add(1)
			return tr
		}
		if !transient || attempt >= r.MaxTaskRetries {
			r.failed.Add(1)
			return tr
		}
		r.retried.Add(1)
		if r.TaskRetryBackoff > 0 {
			//onionlint:allow detclock -- retry backoff paces real re-execution of a crashed task; simulated results never observe it
			time.Sleep(r.TaskRetryBackoff << attempt)
		}
	}
}

// attemptTask makes one execution attempt. transient reports whether the
// failure mode is worth retrying (panic or timeout, as opposed to a
// deterministic experiment error).
func (r *Runner) attemptTask(t Task) (tr TaskResult, transient bool) {
	r.attempts.Add(1)
	if r.TaskTimeout <= 0 {
		tr, transient = runTask(t)
		return tr, transient
	}
	type attempt struct {
		tr        TaskResult
		transient bool
	}
	ch := make(chan attempt, 1)
	go func() {
		tr, transient := runTask(t)
		ch <- attempt{tr, transient}
	}()
	//onionlint:allow detclock -- TaskTimeout bounds real runtime of a wedged task; a timeout abandons the task rather than altering its output
	timer := time.NewTimer(r.TaskTimeout)
	defer timer.Stop()
	select {
	case a := <-ch:
		return a.tr, a.transient
	case <-timer.C:
		r.abandoned.Add(1)
		tr := TaskResult{Task: t, EffectiveSeed: sim.SubstreamSeed(t.Params.Seed, t.seedLabel())}
		tr.Err = fmt.Errorf("task %s timed out after %s", t.Label, r.TaskTimeout)
		tr.Error = tr.Err.Error()
		tr.Elapsed = r.TaskTimeout
		return tr, true
	}
}

func runTask(t Task) (tr TaskResult, panicked bool) {
	//onionlint:allow detclock -- Elapsed is progress/ops telemetry on stderr; the deterministic result document never includes it
	start := time.Now()
	tr = TaskResult{Task: t, EffectiveSeed: sim.SubstreamSeed(t.Params.Seed, t.seedLabel())}
	defer func() {
		if p := recover(); p != nil {
			tr.Err = fmt.Errorf("task %s panicked: %v", t.Label, p)
			panicked = true
		}
		if tr.Err != nil {
			tr.Error = tr.Err.Error()
			tr.Results = nil
		}
		//onionlint:allow detclock -- wall-clock half of the same telemetry measurement
		tr.Elapsed = time.Since(start)
	}()
	def, ok := Lookup(t.Experiment)
	if !ok {
		tr.Err = fmt.Errorf("unknown experiment %q", t.Experiment)
		return tr, false
	}
	p := t.Params
	p.Seed = tr.EffectiveSeed
	tr.Results, tr.Err = def.Run(p)
	return tr, false
}
