package experiment

import (
	"fmt"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/faults"
	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

func init() {
	Register(Definition{
		ID:    "hsdir-outage",
		Title: "C&C reachability through a correlated HSDir outage (fault plane vs retry budget)",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultHSDirOutageConfig(p.Quick)
			cfg.Seed = p.Seed
			if p.Store != "" {
				cfg.Store = p.Store
			}
			if p.N > 0 {
				cfg.Bots = p.N
			}
			if p.Faults != nil {
				cfg.Spec = *p.Faults
			}
			r, err := RunHSDirOutage(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// HSDirOutageConfig parameterizes the directory-seizure experiment: a
// correlated HSDir outage wave hits the directories hosting the C&C
// descriptor, and reachability probes measure how dark the C&C goes —
// and how much of the blackout a client retry budget buys back while
// the consensus and republish machinery heal the descriptor onto
// surviving directories. This is the infrastructure-level mitigation
// scenario the paper's takedown analysis gestures at: defenders seize
// directories, not bots.
type HSDirOutageConfig struct {
	// Relays sizes the simulated Tor substrate; Bots the botnet
	// population rallying against it.
	Relays, Bots int
	// Probes is the number of reachability probes launched inside the
	// outage window, evenly spaced; the same number measures the healed
	// steady state after the drain tail.
	Probes int
	// Window is the probing window opening just after the outage wave.
	// It should end before the consensus/republish cycle heals the
	// descriptor, so the window isolates what retries alone contribute.
	Window time.Duration
	// Duration is the simulated span; SampleEvery the measurement
	// cadence for the directory-population series.
	Duration    time.Duration
	SampleEvery time.Duration
	// Spec is the fault plane and retry budget (the swept axis). The
	// preset is a targeted 30% outage with a 4-attempt retry budget.
	Spec faults.Spec
	// Seed drives all randomness.
	Seed uint64
	// Store selects the tor.DescriptorStore backend ("" = default).
	Store string
}

// DefaultHSDirOutageConfig returns the full or quick preset. The
// default fault plane removes 30% of the HSDir ring two virtual hours
// in, centered on the C&C's responsible directories (OutageTargeted),
// against a 4-attempt retry budget backing off from 30 virtual
// minutes — enough to straddle the next consensus and republish cycle.
func DefaultHSDirOutageConfig(quick bool) HSDirOutageConfig {
	spec := faults.Spec{
		OutageFrac: 0.3, OutageAtH: 2, OutageTargeted: true,
		RetryAttempts: 4, RetryBackoffS: 1800,
	}
	if quick {
		return HSDirOutageConfig{
			Relays: 40, Bots: 8, Probes: 6,
			Window: time.Hour, Duration: 8 * time.Hour, SampleEvery: time.Hour,
			Spec: spec, Seed: 7,
		}
	}
	return HSDirOutageConfig{
		Relays: 80, Bots: 20, Probes: 12,
		Window: time.Hour, Duration: 12 * time.Hour, SampleEvery: time.Hour,
		Spec: spec, Seed: 7,
	}
}

// RunHSDirOutage bootstraps a botnet, attaches the configured fault
// plane targeted at the botmaster's rally service, and probes C&C
// reachability from fresh clients launched inside the outage window.
// Each probe dials under the spec's retry policy; without retries a
// probe fails the moment every responsible directory is dead, with
// retries it can outwait the blackout until the consensus drops the
// dead directories and the service republishes to the survivors.
//
// The result carries directory/relay population series over virtual
// hours plus two single-point summary series for sweep aggregation:
//
//   - outage-window-reachability: fraction of window probes whose dial
//     eventually succeeded (the retry budget's purchase).
//   - final-reachability: fraction of single-attempt probes succeeding
//     after the drain tail (the self-healing floor — republish repairs
//     this to 1.0 regardless of client retries).
func RunHSDirOutage(cfg HSDirOutageConfig) (*Result, error) {
	if cfg.Probes < 1 {
		return nil, fmt.Errorf("hsdir-outage: need at least one probe")
	}
	rp := cfg.Spec.RetryPolicy()
	bn, err := core.NewBotNet(cfg.Seed, cfg.Relays, core.BotConfig{
		DMin: 2, DMax: 6,
		PingInterval: 10 * time.Minute,
		NoNInterval:  30 * time.Minute,
		Retry:        rp,
		Store:        cfg.Store,
	})
	if err != nil {
		return nil, err
	}
	if err := bn.Grow(cfg.Bots, nil); err != nil {
		return nil, err
	}

	eng := faults.NewEngine(bn.Sched, sim.SubstreamSeed(cfg.Seed, "hsdir-outage/faults"), bn.Net)
	if err := cfg.Spec.Attach(eng, faults.AttachOptions{TargetService: bn.Master.Onion()}); err != nil {
		return nil, err
	}

	res := &Result{
		ID: "hsdir-outage",
		Title: fmt.Sprintf("C&C reachability under %s, %d relays, %d bots, over %s",
			cfg.Spec.Label(), cfg.Relays, cfg.Bots, cfg.Duration),
		XLabel: "hours", YLabel: "count / fraction",
	}
	hsdirs := Series{Name: "hsdirs"}
	relays := Series{Name: "relays"}

	start := bn.Sched.Elapsed() // Grow consumed virtual time already
	sample := func() {
		h := (bn.Sched.Elapsed() - start).Hours()
		live := 0
		if c := bn.Net.Consensus(); c != nil {
			for _, fp := range c.HSDirs() {
				if bn.Net.Relay(fp) != nil {
					live++
				}
			}
		}
		hsdirs.Points = append(hsdirs.Points, Point{X: h, Y: float64(live)})
		relays.Points = append(relays.Points, Point{X: h, Y: float64(bn.Net.NumRelays())})
	}

	// Window probes: fresh clients (no warm descriptor cache) dialing
	// the C&C under the retry policy, launched at even offsets across
	// the window. The first probe runs one virtual minute after the
	// wave instant so it always observes the outage, never a same-tick
	// race with it.
	ccOnion := bn.Master.Onion()
	winOK, winDone := 0, 0
	wave := time.Duration(cfg.Spec.OutageAtH * float64(time.Hour))
	gap := cfg.Window / time.Duration(cfg.Probes)
	for i := 0; i < cfg.Probes; i++ {
		at := wave + time.Minute + time.Duration(i)*gap
		bn.Sched.After(at, func() {
			pr := tor.NewProxy(bn.Net)
			pr.Retry = rp
			pr.DialAsync(ccOnion, func(conn *tor.Conn, err error) {
				winDone++
				if err == nil {
					winOK++
					conn.Close()
				}
			})
		})
	}

	sample()
	for t := cfg.SampleEvery; t <= cfg.Duration; t += cfg.SampleEvery {
		bn.Sched.RunUntil(sim.Epoch.Add(start + t))
		sample()
	}
	// Drain tail: a probe launched at the window's edge can wait the
	// policy's full backoff span past Duration before its outcome lands.
	bn.Sched.RunFor(rp.Span() + time.Hour)

	// Healed steady state: single-attempt probes after the drain. The
	// republish machinery, not client retries, owns this number.
	finalOK := 0
	for i := 0; i < cfg.Probes; i++ {
		pr := tor.NewProxy(bn.Net)
		if conn, err := pr.Dial(ccOnion); err == nil {
			finalOK++
			conn.Close()
		}
	}
	eng.Stop()

	windowReach := float64(winOK) / float64(cfg.Probes)
	finalReach := float64(finalOK) / float64(cfg.Probes)
	res.Series = append(res.Series, hsdirs, relays,
		Series{Name: "outage-window-reachability", Points: []Point{{X: 0, Y: windowReach}}},
		Series{Name: "final-reachability", Points: []Point{{X: 0, Y: finalReach}}})

	crashed, restarted, outaged, introFaults := eng.Counts()
	st := bn.Net.Stats()
	res.AddNote("faults %s: %d crashed, %d restarted, %d outaged, %d intro faults",
		cfg.Spec.Label(), crashed, restarted, outaged, introFaults)
	res.AddNote("window probes: %d/%d reached C&C (%d completed); final probes %d/%d",
		winOK, cfg.Probes, winDone, finalOK, cfg.Probes)
	res.AddNote("network: %d dial failures, %d retries, %d recoveries, %d intro faults injected, %d publish repairs",
		st.DialFailures, st.DialRetries, st.DialRecoveries, st.IntroFaultsInjected, st.PublishRepairs)
	return res, nil
}
