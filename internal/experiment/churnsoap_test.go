package experiment

import (
	"bytes"
	"strings"
	"testing"

	"onionbots/internal/churn"
	"onionbots/internal/soap"
)

func TestChurnSoapShape(t *testing.T) {
	cfg := DefaultChurnSoapConfig(true)
	cfg.Seed = 11
	res, err := RunChurnSoap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	contained := res.SeriesByName("contained")
	alive := res.SeriesByName("alive")
	discovered := res.SeriesByName("discovered")
	finalC := res.SeriesByName("final-contained")
	minC := res.SeriesByName("min-contained")
	if contained == nil || alive == nil || discovered == nil || finalC == nil || minC == nil {
		t.Fatalf("missing series: %+v", res.Series)
	}
	for i, p := range contained.Points {
		if p.Y < 0 || p.Y > 1 {
			t.Fatalf("contained fraction %g outside [0, 1]", p.Y)
		}
		if i > 0 && discovered.Points[i].Y < discovered.Points[i-1].Y {
			t.Fatal("attacker intel shrank; discovery is monotone")
		}
	}
	if contained.Points[0].Y != 0 {
		t.Errorf("campaign starts pre-contact with contained = %g, want 0", contained.Points[0].Y)
	}
	grip := false
	for _, p := range contained.Points {
		if p.Y > 0.5 {
			grip = true
		}
	}
	if !grip {
		t.Error("a 64-clone campaign never got real grip on an 8-bot population")
	}
	if last := alive.Points[len(alive.Points)-1].Y; last <= 0 {
		t.Errorf("population died under balanced churn: %g alive", last)
	}
	if len(finalC.Points) != 1 || len(minC.Points) != 1 {
		t.Fatalf("summary series must be single-point: %+v, %+v", finalC.Points, minC.Points)
	}
	if minC.Points[0].Y > finalC.Points[0].Y+1e-9 && finalC.Points[0].Y > 0 {
		// min-after-onset can equal but not exceed the final value when
		// the final sample is the minimum; it must never exceed a
		// nonzero final by construction.
		t.Fatalf("min-contained %g exceeds final-contained %g", minC.Points[0].Y, finalC.Points[0].Y)
	}
}

// TestChurnSoapChurnMatters is the expected-shape assertion: heavy
// churn must not leave the attacker with a *tighter* grip than a
// near-static population — fresh infections re-open the net.
func TestChurnSoapChurnMatters(t *testing.T) {
	minContained := func(join, leave float64) float64 {
		cfg := DefaultChurnSoapConfig(true)
		cfg.Seed = 11
		cfg.Spec = churn.Spec{Process: "poisson", Join: join, Leave: leave}
		res, err := RunChurnSoap(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := res.SeriesByName("min-contained")
		return s.Points[0].Y
	}
	calm := minContained(0.25, 0.25)
	stormy := minContained(8, 8)
	t.Logf("min contained after onset: calm=%.3f stormy=%.3f", calm, stormy)
	if stormy > calm+1e-9 {
		t.Fatalf("heavy churn tightened containment (calm %.3f, stormy %.3f)", calm, stormy)
	}
}

func TestSweepSoapAxisExpansion(t *testing.T) {
	s := &Sweep{
		Name:        "cs",
		Experiments: []string{"churn-soap"},
		Quick:       true,
		Churn:       []churn.Spec{{Process: "poisson", Join: 2, Leave: 2}},
		Soap:        []soap.Spec{{Clones: 16}, {Clones: 64, SolvePoW: true}},
		Seeds:       []uint64{1},
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("expanded to %d tasks, want 1 churn × 2 soap × 1 seed = 2", len(tasks))
	}
	if tasks[0].Label != "churn-soap/churn=poisson;j=2;l=2/soap=soap;c=16/seed=1" {
		t.Fatalf("first label = %q", tasks[0].Label)
	}
	if tasks[1].Label != "churn-soap/churn=poisson;j=2;l=2/soap=soap;c=64;pow/seed=1" {
		t.Fatalf("second label = %q", tasks[1].Label)
	}
	if tasks[0].Params.Soap == nil || tasks[0].Params.Soap.Clones != 16 {
		t.Fatalf("soap spec not threaded into params: %+v", tasks[0].Params)
	}
	if tasks[1].Params.Soap == nil || !tasks[1].Params.Soap.SolvePoW {
		t.Fatalf("soap spec not threaded into params: %+v", tasks[1].Params)
	}
}

func TestParseSweepValidatesSoapAxis(t *testing.T) {
	cases := []struct{ name, spec, wantErr string }{
		{"bad soap knob",
			`{"experiments":["churn-soap"],"soap":[{"clones":-1}]}`, "negative clone"},
		{"duplicate soap specs",
			`{"experiments":["churn-soap"],"soap":[{"clones":16},{"clones":16}]}`, "duplicate soap spec"},
		{"soap unknown field",
			`{"experiments":["churn-soap"],"soap":[{"budget":16}]}`, "unknown field"},
		{"threshold needs swept soap axis",
			`{"experiments":["churn-soap"],"thresholds":[{"series":"final-contained","axis":"soap","below":1}]}`,
			"not swept"},
	}
	for _, tc := range cases {
		if _, err := ParseSweep([]byte(tc.spec)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestChurnSoapGridByteIdenticalAcrossParallelism is the determinism
// gate for the new composition: a churn × soap grid's full JSON
// document must not depend on the worker count.
func TestChurnSoapGridByteIdenticalAcrossParallelism(t *testing.T) {
	spec := `{
		"name": "churn-soap-diff",
		"experiments": ["churn-soap"],
		"quick": true,
		"churn": [{"process": "poisson", "join": 2, "leave": 2}],
		"soap": [{"clones": 16}, {"clones": 64}],
		"seeds": [1],
		"thresholds": [{"series": "final-contained", "axis": "soap", "above": 0.9}]
	}`
	s, err := ParseSweep([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := s.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	doc := func(parallel int) []byte {
		trs, err := (&Runner{Parallel: parallel}).Run(tasks)
		if err != nil {
			t.Fatal(err)
		}
		out, err := SweepJSON(s, trs, s.Aggregate(trs))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	p1, p4 := doc(1), doc(4)
	if !bytes.Equal(p1, p4) {
		t.Fatal("churn-soap sweep JSON differs between -parallel 1 and 4")
	}
}
