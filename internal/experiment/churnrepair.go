package experiment

import (
	"fmt"
	"time"

	"onionbots/internal/churn"
	"onionbots/internal/ddsr"
	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

func init() {
	Register(Definition{
		ID:    "churn-repair",
		Title: "DDSR repair quality under continuous churn (dynamic Figs 5/6)",
		Run: func(p Params) ([]*Result, error) {
			cfg := DefaultChurnRepairConfig(p.Quick)
			cfg.Seed = p.Seed
			if p.N > 0 {
				cfg.N = p.N
			}
			if p.K > 0 {
				cfg.K = p.K
			}
			if p.Churn != nil {
				cfg.Spec = *p.Churn
			}
			r, err := RunChurnRepair(cfg)
			if err != nil {
				return nil, err
			}
			return []*Result{r}, nil
		},
	})
}

// ChurnRepairConfig parameterizes the dynamic-membership counterpart of
// the Figure 5/6 resilience analysis: instead of one-shot deletion, a
// churn process runs against a DDSR overlay for a stretch of virtual
// time and repair quality is sampled as it fights the flow.
type ChurnRepairConfig struct {
	// N is the initial overlay size and K its regularity (paper: 10).
	N, K int
	// Duration is the simulated span; SampleEvery the measurement
	// cadence.
	Duration    time.Duration
	SampleEvery time.Duration
	// JoinPeers is the bootstrap candidate count for joining nodes.
	JoinPeers int
	// RepairEvery is the maintenance cadence: removals accumulate
	// unrepaired between passes (ddsr.Lagged), which is what puts the
	// churn rate in a race with repair. Zero repairs instantaneously,
	// degenerating to the static Fig 5 behaviour where rate cannot
	// matter.
	RepairEvery time.Duration
	// Spec is the churn scenario (the swept axis).
	Spec churn.Spec
	// Seed drives all randomness.
	Seed uint64
}

// DefaultChurnRepairConfig returns the full or quick preset. The
// default scenario is symmetric Poisson join/leave at 8 events/hour —
// override it through Params.Churn or a sweep's churn axis, which is
// the whole point of the experiment.
func DefaultChurnRepairConfig(quick bool) ChurnRepairConfig {
	spec := churn.Spec{Process: "poisson", Join: 8, Leave: 8}
	if quick {
		return ChurnRepairConfig{
			N: 250, K: 10, Duration: 24 * time.Hour, SampleEvery: time.Hour,
			JoinPeers: 10, RepairEvery: 30 * time.Minute, Spec: spec, Seed: 5,
		}
	}
	return ChurnRepairConfig{
		N: 5000, K: 10, Duration: 72 * time.Hour, SampleEvery: time.Hour,
		JoinPeers: 10, RepairEvery: 30 * time.Minute, Spec: spec, Seed: 5,
	}
}

// RunChurnRepair builds a K-regular DDSR overlay of N nodes with a
// RepairEvery maintenance cadence (ddsr.Lagged), attaches the
// configured churn process, and samples the overlay every SampleEvery
// for Duration. The result carries four series over virtual hours —
// population, connected components, degree-ratio (average degree over
// K, the repair-health signal), plus a single-point "quality" summary
// series for sweep aggregation:
//
//	quality = mean(degree-ratio over all samples, empty = 0)
//	        × fraction of samples alive and in one component
//
// so 1.0 means "full degree, never partitioned, never extinct" and it
// degrades toward 0 as churn outruns the repair cadence or drains the
// population. Sweeping Spec over leave rates reproduces the paper's
// resilience story as a function of λ instead of a one-shot deletion
// fraction.
func RunChurnRepair(cfg ChurnRepairConfig) (*Result, error) {
	sched := sim.NewScheduler()
	base, err := ddsr.NewRegular(cfg.N, cfg.K, ddsr.DefaultConfig(cfg.K),
		sim.NewSubstream(cfg.Seed, "churn-repair/build"))
	if err != nil {
		return nil, err
	}
	var m ddsr.Maintainer = base
	if cfg.RepairEvery > 0 {
		lagged := ddsr.NewLagged(base)
		sched.Every(cfg.RepairEvery, func() bool {
			lagged.Flush()
			return true
		})
		m = lagged
	}
	target := churn.NewOverlayTarget(m, churn.OverlayOptions{
		JoinPeers: cfg.JoinPeers, Regions: cfg.Spec.Regions,
	})
	eng := churn.NewEngine(sched, sim.SubstreamSeed(cfg.Seed, "churn-repair/engine"), target)
	proc, err := cfg.Spec.Build()
	if err != nil {
		return nil, err
	}
	if err := eng.Attach(proc); err != nil {
		return nil, err
	}

	res := &Result{
		ID: "churn-repair",
		Title: fmt.Sprintf("DDSR repair under churn %s, %d-regular n=%d over %s",
			cfg.Spec.Label(), cfg.K, cfg.N, cfg.Duration),
		XLabel: "hours", YLabel: "see series",
	}
	pop := Series{Name: "population"}
	comps := Series{Name: "components"}
	degRatio := Series{Name: "degree-ratio"}

	ratioSum := 0.0
	connected, sampled := 0, 0
	sample := func() {
		h := sched.Elapsed().Hours()
		g := m.Graph()
		n := g.NumNodes()
		pop.Points = append(pop.Points, Point{X: h, Y: float64(n)})
		nc := 0
		if n > 0 {
			nc = graph.NumComponents(g)
		}
		comps.Points = append(comps.Points, Point{X: h, Y: float64(nc)})
		ratio := 0.0
		if n > 0 {
			ratio = g.AvgDegree() / float64(cfg.K)
		}
		ratioSum += ratio
		degRatio.Points = append(degRatio.Points, Point{X: h, Y: ratio})
		sampled++
		if nc == 1 {
			connected++
		}
	}

	sample()
	for t := cfg.SampleEvery; t <= cfg.Duration; t += cfg.SampleEvery {
		sched.RunUntil(sim.Epoch.Add(t))
		sample()
	}
	eng.Stop()

	meanRatio := ratioSum / float64(sampled)
	connFrac := float64(connected) / float64(sampled)
	quality := meanRatio * connFrac
	res.Series = append(res.Series, pop, comps, degRatio,
		Series{Name: "quality", Points: []Point{{X: 0, Y: quality}}})

	joined, left, takendown := eng.Counts()
	st := base.Stats()
	res.AddNote("churn %s: %d joined, %d left, %d taken down; final population %d",
		cfg.Spec.Label(), joined, left, takendown, target.Size())
	res.AddNote("repair: %d clique edges, %d pruned, %d floor edges, %d join edges",
		st.RepairEdgesAdded, st.EdgesPruned, st.FloorEdgesAdded, st.JoinEdgesAdded)
	res.AddNote("connected %d/%d samples, mean degree-ratio %.3f, quality %.3f",
		connected, sampled, meanRatio, quality)
	return res, nil
}
