package graph

import (
	"errors"
	"fmt"

	"onionbots/internal/sim"
)

// ErrInfeasibleRegular reports parameters for which no simple k-regular
// graph exists.
var ErrInfeasibleRegular = errors.New("graph: no simple k-regular graph with these parameters")

// RandomRegular generates a uniform-ish random simple k-regular graph on
// nodes 0..n-1 using the configuration model: pair up n*k stubs at
// random, then remove self-loops and parallel edges with double-edge
// swaps against randomly chosen good edges. This is the standard
// practical construction for the sizes in the paper (n up to 15000,
// k up to 15).
//
// Requirements: n > k >= 1 and n*k even.
func RandomRegular(n, k int, rng *sim.RNG) (*Graph, error) {
	if k < 1 || n <= k {
		return nil, fmt.Errorf("%w: n=%d k=%d (need n > k >= 1)", ErrInfeasibleRegular, n, k)
	}
	if n*k%2 != 0 {
		return nil, fmt.Errorf("%w: n=%d k=%d (n*k must be even)", ErrInfeasibleRegular, n, k)
	}

	const maxRestarts = 100
	for attempt := 0; attempt < maxRestarts; attempt++ {
		g, ok := tryRegular(n, k, rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: random regular generation failed after %d restarts (n=%d k=%d)", maxRestarts, n, k)
}

func tryRegular(n, k int, rng *sim.RNG) (*Graph, bool) {
	stubs := make([]int, 0, n*k)
	for v := 0; v < n; v++ {
		for i := 0; i < k; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	g := New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
	}
	// edgeList mirrors g's edges so we can pick a uniform random edge in
	// O(1) during repair swaps.
	type edge struct{ u, v int }
	edgeList := make([]edge, 0, n*k/2)
	addEdge := func(u, v int) bool {
		if g.AddEdge(u, v) {
			edgeList = append(edgeList, edge{u, v})
			return true
		}
		return false
	}

	var bad []edge // self-loops and duplicates left over from pairing
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			bad = append(bad, edge{u, v})
			continue
		}
		addEdge(u, v)
	}

	// Repair each bad pairing with double-edge swaps: pick a random good
	// edge (x, y) and replace {bad(u,v), (x,y)} with {(u,x), (v,y)} when
	// that keeps the graph simple.
	const triesPerBad = 2000
	for len(bad) > 0 {
		b := bad[len(bad)-1]
		repaired := false
		for try := 0; try < triesPerBad; try++ {
			if len(edgeList) == 0 {
				break
			}
			ei := rng.Intn(len(edgeList))
			e := edgeList[ei]
			x, y := e.u, e.v
			if rng.Bool(0.5) {
				x, y = y, x
			}
			u, v := b.u, b.v
			if u == x || u == y || v == x || v == y {
				continue
			}
			if g.HasEdge(u, x) || g.HasEdge(v, y) {
				continue
			}
			// Commit the swap.
			g.RemoveEdge(e.u, e.v)
			edgeList[ei] = edgeList[len(edgeList)-1]
			edgeList = edgeList[:len(edgeList)-1]
			addEdge(u, x)
			addEdge(v, y)
			repaired = true
			break
		}
		if !repaired {
			return nil, false
		}
		bad = bad[:len(bad)-1]
	}

	// The pairing can still leave a node short if its bad stubs involved
	// duplicates of one another; verify regularity before accepting.
	for v := 0; v < n; v++ {
		if g.Degree(v) != k {
			return nil, false
		}
	}
	return g, true
}

// Ring returns the n-cycle 0-1-...-(n-1)-0. Used by tests and the Fig 3
// walkthrough scaffolding.
func Ring(n int) *Graph {
	g := New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
	}
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	return g
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	g := New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Path returns the path graph 0-1-...-(n-1).
func Path(n int) *Graph {
	g := New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
	}
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New()
	for v := 0; v < n; v++ {
		g.AddNode(v)
	}
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}
