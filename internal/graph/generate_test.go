package graph

import (
	"errors"
	"testing"

	"onionbots/internal/sim"
)

func TestRandomRegularProducesRegularSimpleGraph(t *testing.T) {
	tests := []struct{ n, k int }{
		{10, 3}, {50, 5}, {100, 10}, {200, 15}, {51, 4}, {1000, 10},
	}
	for _, tt := range tests {
		g, err := RandomRegular(tt.n, tt.k, sim.NewRNG(1))
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tt.n, tt.k, err)
		}
		if g.NumNodes() != tt.n {
			t.Fatalf("n=%d k=%d: nodes = %d", tt.n, tt.k, g.NumNodes())
		}
		if g.NumEdges() != tt.n*tt.k/2 {
			t.Fatalf("n=%d k=%d: edges = %d, want %d", tt.n, tt.k, g.NumEdges(), tt.n*tt.k/2)
		}
		for v := 0; v < tt.n; v++ {
			if g.Degree(v) != tt.k {
				t.Fatalf("n=%d k=%d: degree(%d) = %d", tt.n, tt.k, v, g.Degree(v))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d k=%d: %v", tt.n, tt.k, err)
		}
	}
}

func TestRandomRegularRejectsInfeasible(t *testing.T) {
	tests := []struct{ n, k int }{
		{5, 0}, // k < 1
		{5, 5}, // n <= k
		{5, 3}, // n*k odd
		{3, 4}, // n <= k
		{0, 1}, // n <= k
	}
	for _, tt := range tests {
		if _, err := RandomRegular(tt.n, tt.k, sim.NewRNG(1)); !errors.Is(err, ErrInfeasibleRegular) {
			t.Errorf("RandomRegular(%d,%d) error = %v, want ErrInfeasibleRegular", tt.n, tt.k, err)
		}
	}
}

func TestRandomRegularDeterministicPerSeed(t *testing.T) {
	a, err := RandomRegular(100, 6, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(100, 6, sim.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 100; v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("node %d neighbor counts differ", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("same seed produced different graphs at node %d", v)
			}
		}
	}
	c, err := RandomRegular(100, 6, sim.NewRNG(43))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := 0; v < 100 && same; v++ {
		na, nc := a.Neighbors(v), c.Neighbors(v)
		for i := range na {
			if na[i] != nc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomRegularIsTypicallyConnected(t *testing.T) {
	// Random k-regular graphs with k >= 3 are connected with high
	// probability; at these sizes a disconnected draw would indicate a
	// generator bug.
	for seed := uint64(0); seed < 5; seed++ {
		g, err := RandomRegular(500, 5, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if n := NumComponents(g); n != 1 {
			t.Fatalf("seed %d: components = %d, want 1", seed, n)
		}
	}
}

func TestFixedTopologies(t *testing.T) {
	if g := Ring(5); g.NumEdges() != 5 || g.Degree(0) != 2 {
		t.Fatalf("Ring(5): edges=%d deg0=%d", g.NumEdges(), g.Degree(0))
	}
	if g := Complete(5); g.NumEdges() != 10 || g.Degree(0) != 4 {
		t.Fatalf("Complete(5): edges=%d deg0=%d", g.NumEdges(), g.Degree(0))
	}
	if g := Path(5); g.NumEdges() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("Path(5) malformed")
	}
	if g := Star(5); g.NumEdges() != 4 || g.Degree(0) != 4 || g.Degree(1) != 1 {
		t.Fatalf("Star(5) malformed")
	}
}
