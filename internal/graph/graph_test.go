package graph

import (
	"testing"
	"testing/quick"

	"onionbots/internal/sim"
)

func TestAddRemoveNodeEdgeBasics(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(1) // idempotent
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
	if !g.AddEdge(1, 2) {
		t.Fatal("AddEdge(1,2) = false, want true")
	}
	if g.AddEdge(1, 2) || g.AddEdge(2, 1) {
		t.Fatal("duplicate AddEdge returned true")
	}
	if g.AddEdge(3, 3) {
		t.Fatal("self-loop AddEdge returned true")
	}
	if g.HasNode(3) {
		t.Fatal("rejected self-loop should not create its node")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("nodes=%d edges=%d, want 2, 1", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(2, 1) {
		t.Fatal("HasEdge not symmetric")
	}
	if !g.RemoveEdge(1, 2) || g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge idempotency broken")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodeReturnsSortedNeighbors(t *testing.T) {
	g := New()
	g.AddEdge(5, 9)
	g.AddEdge(5, 1)
	g.AddEdge(5, 7)
	nbrs := g.RemoveNode(5)
	want := []int{1, 7, 9}
	if len(nbrs) != 3 {
		t.Fatalf("neighbors = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v (sorted)", nbrs, want)
		}
	}
	if g.HasNode(5) || g.NumEdges() != 0 {
		t.Fatal("RemoveNode left residue")
	}
	if g.RemoveNode(5) != nil {
		t.Fatal("removing absent node should return nil")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAndNeighborsSorted(t *testing.T) {
	g := Star(5)
	if g.Degree(0) != 4 {
		t.Fatalf("star center degree = %d, want 4", g.Degree(0))
	}
	nbrs := g.Neighbors(0)
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Fatalf("Neighbors not sorted: %v", nbrs)
		}
	}
	if g.Degree(99) != 0 {
		t.Fatal("absent node degree != 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Ring(6)
	c := g.Clone()
	c.RemoveNode(0)
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatal("mutating clone affected original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAvgDegree(t *testing.T) {
	tests := []struct {
		name   string
		g      *Graph
		maxDeg int
		avgDeg float64
	}{
		{"empty", New(), 0, 0},
		{"ring10", Ring(10), 2, 2},
		{"star5", Star(5), 4, 8.0 / 5},
		{"complete4", Complete(4), 3, 3},
		{"path3", Path(3), 2, 4.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.MaxDegree(); got != tt.maxDeg {
				t.Errorf("MaxDegree = %d, want %d", got, tt.maxDeg)
			}
			if got := tt.g.AvgDegree(); got != tt.avgDeg {
				t.Errorf("AvgDegree = %v, want %v", got, tt.avgDeg)
			}
		})
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	// Corrupt: make edge asymmetric by reaching into the representation.
	delete(g.adj[2], 1)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted an asymmetric edge")
	}
}

func TestGraphPropertyRandomMutations(t *testing.T) {
	// Random interleavings of mutations always leave a valid graph.
	f := func(seed uint64, opsRaw uint8) bool {
		rng := sim.NewRNG(seed)
		g := New()
		ops := int(opsRaw)%200 + 20
		for i := 0; i < ops; i++ {
			u, v := rng.Intn(30), rng.Intn(30)
			switch rng.Intn(4) {
			case 0:
				g.AddEdge(u, v)
			case 1:
				g.RemoveEdge(u, v)
			case 2:
				g.AddNode(u)
			case 3:
				g.RemoveNode(u)
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedSparseAndNegativeIDs(t *testing.T) {
	// Negative and hash-like sparse ids take the map-visited fallback;
	// the answer must match the snapshot-based component count.
	g := New()
	g.AddEdge(-5, 1000000007)
	g.AddEdge(1000000007, 3)
	if !g.Connected() {
		t.Fatal("3-node path reported disconnected")
	}
	g.AddNode(42)
	if g.Connected() {
		t.Fatal("graph with isolated node reported connected")
	}
	if got := NumComponents(g); got != 2 {
		t.Fatalf("NumComponents = %d, want 2", got)
	}
}

func TestConnectedMatchesComponents(t *testing.T) {
	rng := sim.NewRNG(31)
	g, err := RandomRegular(60, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(60)
	for i := 0; i < 57; i++ {
		g.RemoveNode(perm[i])
		want := NumComponents(g) <= 1
		if got := g.Connected(); got != want {
			t.Fatalf("after %d deletions: Connected=%v, NumComponents says %v", i+1, got, want)
		}
	}
}
