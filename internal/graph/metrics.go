package graph

import (
	"onionbots/internal/sim"
)

// Components returns the sizes of the connected components, largest
// first. An empty graph has no components.
func Components(g *Graph) []int {
	return g.Snapshot().Components()
}

// NumComponents reports the number of connected components.
func NumComponents(g *Graph) int { return len(Components(g)) }

// Components returns component sizes, largest first.
func (ix *Indexed) Components() []int {
	n := ix.N()
	sc := ix.newScratch()
	sc.next()
	var sizes []int
	for s := 0; s < n; s++ {
		if sc.seen(int32(s)) {
			continue
		}
		size := 0
		head := len(sc.queue)
		sc.queue = append(sc.queue, int32(s))
		sc.visit(int32(s))
		for ; head < len(sc.queue); head++ {
			u := sc.queue[head]
			size++
			for _, v := range ix.nbr[ix.off[u]:ix.off[u+1]] {
				if !sc.seen(v) {
					sc.visit(v)
					sc.queue = append(sc.queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	// Largest first (insertion sort: component counts are tiny in every
	// experiment until the graph shatters, and even then this is cheap
	// relative to the BFS above).
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] > sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	return sizes
}

// Connected reports whether the graph is connected. Empty and
// single-node graphs count as connected.
func (ix *Indexed) Connected() bool {
	if ix.N() <= 1 {
		return true
	}
	sc := ix.newScratch()
	_, reached, _ := ix.bfs(0, sc)
	return reached == ix.N()
}

// AvgDegreeCentrality reports the mean normalized degree centrality:
// mean(deg(u)) / (n-1), the quantity plotted in Figs 4c/4d and 5c/5d.
// Graphs with fewer than two nodes report 0.
func AvgDegreeCentrality(g *Graph) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	return g.AvgDegree() / float64(n-1)
}

// AvgCloseness reports the mean closeness centrality over the graph,
// estimated from sample BFS sources (sample <= 0 or >= n means exact).
// Closeness of u follows the Wasserman-Faust form used by standard graph
// toolkits, which handles disconnected graphs gracefully:
//
//	C(u) = ((r-1) / sum_dist) * ((r-1) / (n-1))
//
// where r is the number of nodes reachable from u. On a connected graph
// this is the textbook (n-1)/sum_dist. Isolated nodes score 0.
func AvgCloseness(g *Graph, sample int, rng *sim.RNG) float64 {
	ix := g.Snapshot()
	return ix.AvgCloseness(sample, rng)
}

// AvgCloseness is the snapshot form of the package-level AvgCloseness.
func (ix *Indexed) AvgCloseness(sample int, rng *sim.RNG) float64 {
	n := ix.N()
	if n < 2 {
		return 0
	}
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	if sample > 0 && sample < n {
		if rng == nil {
			rng = sim.NewRNG(0)
		}
		rng.Shuffle(n, func(i, j int) { sources[i], sources[j] = sources[j], sources[i] })
		sources = sources[:sample]
	}
	sc := ix.newScratch()
	total := 0.0
	for _, src := range sources {
		sum, reached, _ := ix.bfs(src, sc)
		if reached < 2 || sum == 0 {
			continue // isolated node contributes 0
		}
		r1 := float64(reached - 1)
		total += (r1 / float64(sum)) * (r1 / float64(n-1))
	}
	return total / float64(len(sources))
}

// Diameter reports the exact diameter (longest shortest path) of the
// graph's largest connected component, along with whether the whole
// graph is connected. The paper treats the diameter of a partitioned
// graph as infinite; callers use the connected flag to decide how to
// plot. Graphs with fewer than two nodes have diameter 0.
func Diameter(g *Graph) (diam int, connected bool) {
	ix := g.Snapshot()
	return ix.Diameter()
}

// Diameter is the snapshot form of the package-level Diameter.
func (ix *Indexed) Diameter() (diam int, connected bool) {
	n := ix.N()
	if n == 0 {
		return 0, true
	}
	sc := ix.newScratch()
	members := largestComponentMembers(ix, sc)
	var max int32
	for _, s := range members {
		_, _, ecc := ix.bfs(s, sc)
		if ecc > max {
			max = ecc
		}
	}
	return int(max), len(members) == n
}

// DiameterApprox lower-bounds the diameter of the largest component with
// repeated double sweeps: BFS from a random source, then BFS again from
// the farthest node found. On the random regular graphs used throughout
// the paper the bound is almost always exact; tests cross-check against
// Diameter on small graphs. sweeps <= 0 defaults to 4.
func DiameterApprox(g *Graph, sweeps int, rng *sim.RNG) (diam int, connected bool) {
	ix := g.Snapshot()
	return ix.DiameterApprox(sweeps, rng)
}

// DiameterApprox is the snapshot form of the package-level DiameterApprox.
func (ix *Indexed) DiameterApprox(sweeps int, rng *sim.RNG) (diam int, connected bool) {
	n := ix.N()
	if n == 0 {
		return 0, true
	}
	if sweeps <= 0 {
		sweeps = 4
	}
	if rng == nil {
		rng = sim.NewRNG(0)
	}
	sc := ix.newScratch()
	_, reached, _ := ix.bfs(0, sc)
	connected = reached == n

	// Identify the largest component so sweeps start inside it.
	members := largestComponentMembers(ix, sc)
	var best int32
	for s := 0; s < sweeps; s++ {
		src := members[rng.Intn(len(members))]
		_, _, _ = ix.bfs(src, sc)
		// Farthest node from src: scan dist ascending by index, gated on
		// the visit stamp (unstamped entries hold stale generations).
		far, fd := src, int32(0)
		for i, d := range sc.dist {
			if sc.stamp[i] == sc.gen && d > fd {
				far, fd = int32(i), d
			}
		}
		_, _, ecc := ix.bfs(far, sc)
		if ecc > best {
			best = ecc
		}
	}
	return int(best), connected
}

// largestComponentMembers runs the shared largest-component scan: one
// BFS sweep labelling every component, returning the members of the
// biggest. Diameter and DiameterApprox both restrict their eccentricity
// sweeps to it, passing their scratch (whose generation this consumes).
// On an empty graph it returns {0} for the convenience of sweep
// callers, which never see that case (they guard n == 0).
func largestComponentMembers(ix *Indexed, sc *bfsScratch) []int32 {
	n := ix.N()
	sc.next()
	var best []int32
	for s := 0; s < n; s++ {
		if sc.seen(int32(s)) {
			continue
		}
		sc.queue = sc.queue[:0]
		sc.queue = append(sc.queue, int32(s))
		sc.visit(int32(s))
		for head := 0; head < len(sc.queue); head++ {
			u := sc.queue[head]
			for _, v := range ix.nbr[ix.off[u]:ix.off[u+1]] {
				if !sc.seen(v) {
					sc.visit(v)
					sc.queue = append(sc.queue, v)
				}
			}
		}
		if len(sc.queue) > len(best) {
			best = append(best[:0:0], sc.queue...)
		}
	}
	if best == nil {
		best = []int32{0}
	}
	return best
}
