package graph

import (
	"fmt"
	"sort"
)

// Graph is a mutable, undirected, simple graph over int node ids.
// The zero value is not usable; call New.
type Graph struct {
	adj   map[int]map[int]struct{}
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[int]map[int]struct{})}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges reports the number of (undirected) edges.
func (g *Graph) NumEdges() int { return g.edges }

// HasNode reports whether id is present.
func (g *Graph) HasNode(id int) bool {
	_, ok := g.adj[id]
	return ok
}

// AddNode inserts an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(id int) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[int]struct{})
	}
}

// RemoveNode deletes id and every incident edge, returning the sorted
// list of its former neighbors (the DDSR repair step needs exactly this).
// Removing an absent node returns nil.
func (g *Graph) RemoveNode(id int) []int {
	nbrs, ok := g.adj[id]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(nbrs))
	for v := range nbrs {
		out = append(out, v)
		delete(g.adj[v], id)
		g.edges--
	}
	delete(g.adj, id)
	sort.Ints(out)
	return out
}

// AddEdge inserts the undirected edge (u, v), creating missing endpoints.
// Self-loops are rejected. It reports whether a new edge was added.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		return false
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	return true
}

// AddEdgesAmong links every pair of the given nodes (clique insertion),
// returning the number of edges created. It is the hot path of DDSR
// repair on dense graphs and avoids AddEdge's per-call overhead. Nodes
// must already exist; absent ids are ignored.
func (g *Graph) AddEdgesAmong(nodes []int) int {
	added := 0
	for i := 0; i < len(nodes); i++ {
		mi, ok := g.adj[nodes[i]]
		if !ok {
			continue
		}
		for j := i + 1; j < len(nodes); j++ {
			mj, ok := g.adj[nodes[j]]
			if !ok {
				continue
			}
			if _, dup := mi[nodes[j]]; dup {
				continue
			}
			mi[nodes[j]] = struct{}{}
			mj[nodes[i]] = struct{}{}
			g.edges++
			added++
		}
	}
	return added
}

// RemoveEdge deletes the undirected edge (u, v) and reports whether it
// existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
	return true
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Degree reports the degree of id (0 for an absent node).
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Neighbors returns the sorted neighbors of id.
func (g *Graph) Neighbors(id int) []int {
	nbrs := g.adj[id]
	out := make([]int, 0, len(nbrs))
	for v := range nbrs {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Nodes returns all node ids, sorted.
func (g *Graph) Nodes() []int {
	out := make([]int, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// MaxDegree reports the largest degree in the graph (0 if empty).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// AvgDegree reports the mean degree (0 if empty).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make(map[int]map[int]struct{}, len(g.adj)), edges: g.edges}
	for u, nbrs := range g.adj {
		m := make(map[int]struct{}, len(nbrs))
		for v := range nbrs {
			m[v] = struct{}{}
		}
		c.adj[u] = m
	}
	return c
}

// Validate checks internal consistency (symmetry, no self-loops, edge
// count) and returns a descriptive error on the first violation. It is
// used by tests and by property checks after mutation-heavy experiments.
func (g *Graph) Validate() error {
	count := 0
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u == v {
				return fmt.Errorf("graph: self-loop at node %d", u)
			}
			back, ok := g.adj[v]
			if !ok {
				return fmt.Errorf("graph: edge (%d,%d) points to missing node", u, v)
			}
			if _, ok := back[u]; !ok {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, v)
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency half-edges %d", g.edges, count)
	}
	return nil
}
