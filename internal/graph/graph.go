package graph

import (
	"fmt"
	"sort"
)

// Graph is a mutable, undirected, simple graph over int node ids.
// The zero value is not usable; call New.
type Graph struct {
	adj      map[int]map[int]struct{}
	edges    int
	maxID    int // largest id ever added; sizes the Connected scratch
	minID    int // smallest id ever added; gates the dense fast path
	peakSize int // largest population ever held; gates the dense fast path

	// Connected's reusable BFS scratch: index-stamped visit slice (a
	// node is visited iff visit[id] == visitGen, so a new sweep is a
	// generation bump, not a reset or an allocation) plus the BFS queue.
	// Clones do not inherit the scratch; it is rebuilt on first use.
	visit    []uint32
	visitGen uint32
	queue    []int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[int]map[int]struct{})}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges reports the number of (undirected) edges.
func (g *Graph) NumEdges() int { return g.edges }

// HasNode reports whether id is present.
func (g *Graph) HasNode(id int) bool {
	_, ok := g.adj[id]
	return ok
}

// AddNode inserts an isolated node. Adding an existing node is a no-op.
func (g *Graph) AddNode(id int) {
	if _, ok := g.adj[id]; !ok {
		g.adj[id] = make(map[int]struct{})
		if id > g.maxID {
			g.maxID = id
		}
		if id < g.minID {
			g.minID = id
		}
		if len(g.adj) > g.peakSize {
			g.peakSize = len(g.adj)
		}
	}
}

// RemoveNode deletes id and every incident edge, returning the sorted
// list of its former neighbors (the DDSR repair step needs exactly this).
// Removing an absent node returns nil.
func (g *Graph) RemoveNode(id int) []int {
	nbrs, ok := g.adj[id]
	if !ok {
		return nil
	}
	out := make([]int, 0, len(nbrs))
	for v := range nbrs {
		out = append(out, v)
		delete(g.adj[v], id)
		g.edges--
	}
	delete(g.adj, id)
	sort.Ints(out)
	return out
}

// AddEdge inserts the undirected edge (u, v), creating missing endpoints.
// Self-loops are rejected. It reports whether a new edge was added.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v {
		return false
	}
	g.AddNode(u)
	g.AddNode(v)
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.edges++
	return true
}

// AddEdgesAmong links every pair of the given nodes (clique insertion),
// returning the number of edges created. It is the hot path of DDSR
// repair on dense graphs and avoids AddEdge's per-call overhead. Nodes
// must already exist; absent ids are ignored.
func (g *Graph) AddEdgesAmong(nodes []int) int {
	added := 0
	for i := 0; i < len(nodes); i++ {
		mi, ok := g.adj[nodes[i]]
		if !ok {
			continue
		}
		for j := i + 1; j < len(nodes); j++ {
			mj, ok := g.adj[nodes[j]]
			if !ok {
				continue
			}
			if _, dup := mi[nodes[j]]; dup {
				continue
			}
			mi[nodes[j]] = struct{}{}
			mj[nodes[i]] = struct{}{}
			g.edges++
			added++
		}
	}
	return added
}

// RemoveEdge deletes the undirected edge (u, v) and reports whether it
// existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.edges--
	return true
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Degree reports the degree of id (0 for an absent node).
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Neighbors returns the sorted neighbors of id.
func (g *Graph) Neighbors(id int) []int {
	return g.AppendNeighbors(nil, id)
}

// AppendNeighbors appends the sorted neighbors of id to buf and returns
// the extended slice — the allocation-free form of Neighbors for hot
// loops that pass a reused scratch buffer (DDSR repair calls this per
// prune/floor step).
func (g *Graph) AppendNeighbors(buf []int, id int) []int {
	nbrs := g.adj[id]
	if buf == nil {
		buf = make([]int, 0, len(nbrs))
	}
	start := len(buf)
	for v := range nbrs {
		buf = append(buf, v)
	}
	sort.Ints(buf[start:])
	return buf
}

// Nodes returns all node ids, sorted.
func (g *Graph) Nodes() []int {
	out := make([]int, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// MaxDegree reports the largest degree in the graph (0 if empty).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// AvgDegree reports the mean degree (0 if empty).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// Connected reports whether the graph is connected, without building an
// Indexed snapshot: one BFS straight over the adjacency maps, visited
// bookkeeping in the reusable index-stamped scratch. Empty and
// single-node graphs count as connected. This is the fast path behind
// partition-threshold scans (Fig 6), which ask "still one component?"
// after every deletion batch; the answer is independent of traversal
// order, so the map-iteration start node does not affect determinism.
//
// The stamped scratch is indexed by node id, so it assumes the densely
// packed non-negative ids every generator in this repository produces;
// graphs with negative or very sparse ids (judged against the peak
// population, so deletion-heavy scans never lose the fast path) fall
// back to a map-visited BFS (same answer, per-call allocation).
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n <= 1 {
		return true
	}
	if g.minID < 0 || g.maxID > 4*g.peakSize+1024 {
		return g.connectedByMap()
	}
	if len(g.visit) <= g.maxID {
		g.visit = make([]uint32, g.maxID+1)
		g.visitGen = 0
	}
	g.visitGen++
	if g.visitGen == 0 {
		clear(g.visit)
		g.visitGen = 1
	}
	gen := g.visitGen
	g.queue = g.queue[:0]
	//onionlint:allow maporder -- any start node: Connected returns a bool, unaffected by which node seeds the BFS
	for id := range g.adj {
		g.visit[id] = gen
		g.queue = append(g.queue, id)
		break
	}
	reached := 1
	for head := 0; head < len(g.queue); head++ {
		//onionlint:allow maporder -- BFS frontier is private scratch; the reached count is visit-order independent
		for v := range g.adj[g.queue[head]] {
			if g.visit[v] != gen {
				g.visit[v] = gen
				g.queue = append(g.queue, v)
				reached++
			}
		}
	}
	return reached == n
}

// connectedByMap is Connected's fallback for id spaces the stamped
// scratch cannot index.
func (g *Graph) connectedByMap() bool {
	visited := make(map[int]struct{}, len(g.adj))
	queue := make([]int, 0, len(g.adj))
	//onionlint:allow maporder -- any start node: connectivity is a bool, unaffected by which node seeds the BFS
	for id := range g.adj {
		visited[id] = struct{}{}
		queue = append(queue, id)
		break
	}
	for head := 0; head < len(queue); head++ {
		//onionlint:allow maporder -- BFS frontier is private scratch; the visited count is visit-order independent
		for v := range g.adj[queue[head]] {
			if _, ok := visited[v]; !ok {
				visited[v] = struct{}{}
				queue = append(queue, v)
			}
		}
	}
	return len(visited) == len(g.adj)
}

// Clone returns a deep copy (without the Connected scratch, which the
// copy rebuilds on first use).
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make(map[int]map[int]struct{}, len(g.adj)), edges: g.edges,
		maxID: g.maxID, minID: g.minID, peakSize: g.peakSize}
	for u, nbrs := range g.adj {
		m := make(map[int]struct{}, len(nbrs))
		for v := range nbrs {
			m[v] = struct{}{}
		}
		c.adj[u] = m
	}
	return c
}

// Validate checks internal consistency (symmetry, no self-loops, edge
// count) and returns a descriptive error on the first violation. It is
// used by tests and by property checks after mutation-heavy experiments.
func (g *Graph) Validate() error {
	count := 0
	for u, nbrs := range g.adj {
		for v := range nbrs {
			if u == v {
				return fmt.Errorf("graph: self-loop at node %d", u)
			}
			back, ok := g.adj[v]
			if !ok {
				return fmt.Errorf("graph: edge (%d,%d) points to missing node", u, v)
			}
			if _, ok := back[u]; !ok {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, v)
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency half-edges %d", g.edges, count)
	}
	return nil
}
