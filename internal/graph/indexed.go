package graph

import "slices"

// Indexed is an immutable compressed-adjacency snapshot of a Graph with
// dense ids 0..N-1. Metrics run against snapshots because repeated BFS
// over map-based adjacency is an order of magnitude slower.
type Indexed struct {
	// IDs maps dense index -> original node id, sorted ascending.
	IDs []int
	// off/nbr form a CSR structure: neighbors of dense node i are
	// nbr[off[i]:off[i+1]].
	off []int32
	nbr []int32
}

// Snapshot builds an Indexed view of g.
func (g *Graph) Snapshot() *Indexed {
	ids := g.Nodes()
	index := make(map[int]int32, len(ids))
	for i, id := range ids {
		index[id] = int32(i)
	}
	off := make([]int32, len(ids)+1)
	for i, id := range ids {
		off[i+1] = off[i] + int32(g.Degree(id))
	}
	nbr := make([]int32, off[len(ids)])
	cursor := make([]int32, len(ids))
	copy(cursor, off[:len(ids)])
	for i, id := range ids {
		for v := range g.adj[id] {
			nbr[cursor[i]] = index[v]
			cursor[i]++
		}
		// Map iteration order is random; sort each row so snapshots — and
		// everything order-sensitive built on them, like the double-sweep
		// diameter heuristic — are a pure function of the graph.
		slices.Sort(nbr[off[i]:off[i+1]])
	}
	return &Indexed{IDs: ids, off: off, nbr: nbr}
}

// N reports the number of nodes in the snapshot.
func (ix *Indexed) N() int { return len(ix.IDs) }

// Degree reports the degree of dense node i.
func (ix *Indexed) Degree(i int) int { return int(ix.off[i+1] - ix.off[i]) }

// bfsScratch holds reusable BFS buffers so that metric loops allocate
// once per snapshot rather than once per source. Visited bookkeeping is
// index-stamped: stamp[i] == gen marks node i as reached by the current
// sweep, so starting a new BFS is a generation bump instead of an O(n)
// slice reset (and instead of the per-sweep map or []bool allocations
// the seed helpers paid).
type bfsScratch struct {
	dist  []int32
	stamp []uint32
	gen   uint32
	queue []int32
}

func (ix *Indexed) newScratch() *bfsScratch {
	return &bfsScratch{
		dist:  make([]int32, ix.N()),
		stamp: make([]uint32, ix.N()),
		queue: make([]int32, 0, ix.N()),
	}
}

// next advances the scratch to a fresh generation, handling the (in
// practice unreachable) uint32 wraparound with one full reset.
func (sc *bfsScratch) next() {
	sc.gen++
	if sc.gen == 0 {
		clear(sc.stamp)
		sc.gen = 1
	}
	sc.queue = sc.queue[:0]
}

// seen reports whether i was visited in the current generation.
func (sc *bfsScratch) seen(i int32) bool { return sc.stamp[i] == sc.gen }

// visit marks i visited in the current generation.
func (sc *bfsScratch) visit(i int32) { sc.stamp[i] = sc.gen }

// bfs runs a breadth-first search from src and returns (sum of distances
// to reached nodes, number of reached nodes including src, eccentricity).
// Callers reading sc.dist afterwards must gate each entry on sc.seen.
func (ix *Indexed) bfs(src int32, sc *bfsScratch) (sum int64, reached int, ecc int32) {
	sc.next()
	sc.dist[src] = 0
	sc.visit(src)
	sc.queue = append(sc.queue, src)
	reached = 1
	for head := 0; head < len(sc.queue); head++ {
		u := sc.queue[head]
		du := sc.dist[u]
		if du > ecc {
			ecc = du
		}
		sum += int64(du)
		for _, v := range ix.nbr[ix.off[u]:ix.off[u+1]] {
			if !sc.seen(v) {
				sc.visit(v)
				sc.dist[v] = du + 1
				sc.queue = append(sc.queue, v)
				reached++
			}
		}
	}
	return sum, reached, ecc
}
