package graph

import (
	"math"
	"testing"
	"testing/quick"

	"onionbots/internal/sim"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestComponents(t *testing.T) {
	g := New()
	// Two triangles plus an isolated node.
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(10, 11)
	g.AddEdge(11, 12)
	g.AddEdge(12, 10)
	g.AddNode(99)
	sizes := Components(g)
	want := []int{3, 3, 1}
	if len(sizes) != len(want) {
		t.Fatalf("components = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("components = %v, want %v (largest first)", sizes, want)
		}
	}
	if NumComponents(New()) != 0 {
		t.Fatal("empty graph should have 0 components")
	}
	if !New().Snapshot().Connected() {
		t.Fatal("empty graph should report connected")
	}
}

func TestDiameterKnownGraphs(t *testing.T) {
	tests := []struct {
		name      string
		g         *Graph
		diam      int
		connected bool
	}{
		{"single", func() *Graph { g := New(); g.AddNode(0); return g }(), 0, true},
		{"path5", Path(5), 4, true},
		{"ring6", Ring(6), 3, true},
		{"ring7", Ring(7), 3, true},
		{"complete8", Complete(8), 1, true},
		{"star9", Star(9), 2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, conn := Diameter(tt.g)
			if d != tt.diam || conn != tt.connected {
				t.Fatalf("Diameter = (%d,%v), want (%d,%v)", d, conn, tt.diam, tt.connected)
			}
		})
	}
}

func TestDiameterDisconnectedUsesLargestComponent(t *testing.T) {
	g := Path(6) // diameter 5
	g.AddEdge(100, 101)
	d, conn := Diameter(g)
	if conn {
		t.Fatal("disconnected graph reported connected")
	}
	if d != 5 {
		t.Fatalf("diameter of largest component = %d, want 5", d)
	}
}

func TestDiameterApproxMatchesExactOnSmallGraphs(t *testing.T) {
	rng := sim.NewRNG(7)
	for seed := uint64(0); seed < 10; seed++ {
		g, err := RandomRegular(60, 4, sim.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		exact, _ := Diameter(g)
		approx, _ := DiameterApprox(g, 6, rng)
		if approx > exact {
			t.Fatalf("approx %d exceeds exact %d", approx, exact)
		}
		if exact-approx > 1 {
			t.Fatalf("approx %d too far below exact %d", approx, exact)
		}
	}
}

func TestClosenessKnownValues(t *testing.T) {
	// Star: center closeness = 1; leaf = (n-1)/(1 + 2(n-2)).
	n := 6
	g := Star(n)
	ix := g.Snapshot()
	// Exact average over all nodes.
	center := 1.0
	leaf := float64(n-1) / float64(1+2*(n-2))
	want := (center + float64(n-1)*leaf) / float64(n)
	got := ix.AvgCloseness(0, nil)
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("star avg closeness = %v, want %v", got, want)
	}

	// Complete graph: everyone at distance 1 -> closeness 1 for all.
	if got := AvgCloseness(Complete(5), 0, nil); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("complete avg closeness = %v, want 1", got)
	}

	// Path of 3: ends (2/3 + ... ) C(end) = 2/3, C(mid) = 1.
	want = (2.0/3 + 1 + 2.0/3) / 3
	if got := AvgCloseness(Path(3), 0, nil); !almostEqual(got, want, 1e-12) {
		t.Fatalf("path3 avg closeness = %v, want %v", got, want)
	}
}

func TestClosenessDisconnectedWassermanFaust(t *testing.T) {
	// Two disjoint edges on 4 nodes: each node reaches 1 other at
	// distance 1: C = (1/1) * (1/3) = 1/3.
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if got := AvgCloseness(g, 0, nil); !almostEqual(got, 1.0/3, 1e-12) {
		t.Fatalf("avg closeness = %v, want 1/3", got)
	}
	// Isolated nodes contribute 0.
	g2 := New()
	g2.AddNode(0)
	g2.AddNode(1)
	if got := AvgCloseness(g2, 0, nil); got != 0 {
		t.Fatalf("isolated-only graph closeness = %v, want 0", got)
	}
}

func TestClosenessSampledApproximatesExact(t *testing.T) {
	g, err := RandomRegular(400, 8, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	exact := AvgCloseness(g, 0, nil)
	approx := AvgCloseness(g, 100, sim.NewRNG(5))
	if !almostEqual(exact, approx, 0.02) {
		t.Fatalf("sampled closeness %v deviates from exact %v", approx, exact)
	}
}

func TestAvgDegreeCentrality(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want float64
	}{
		{"empty", New(), 0},
		{"single", func() *Graph { g := New(); g.AddNode(0); return g }(), 0},
		{"complete5", Complete(5), 1},
		{"ring10", Ring(10), 2.0 / 9},
		{"star5", Star(5), (8.0 / 5) / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AvgDegreeCentrality(tt.g); !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("AvgDegreeCentrality = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSnapshotMatchesGraph(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		g := New()
		for i := 0; i < 100; i++ {
			g.AddEdge(rng.Intn(40), rng.Intn(40))
		}
		ix := g.Snapshot()
		if ix.N() != g.NumNodes() {
			return false
		}
		for i, id := range ix.IDs {
			if ix.Degree(i) != g.Degree(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClosenessPropertyBounds(t *testing.T) {
	// Closeness average is always within [0, 1].
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := sim.NewRNG(seed)
		g := New()
		for i := 0; i < n; i++ {
			g.AddNode(i)
		}
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		c := AvgCloseness(g, 0, nil)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSnapshot5000x10(b *testing.B) {
	g, err := RandomRegular(5000, 10, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Snapshot()
	}
}

func BenchmarkBFS5000x10(b *testing.B) {
	g, err := RandomRegular(5000, 10, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	ix := g.Snapshot()
	sc := ix.newScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.bfs(int32(i%ix.N()), sc)
	}
}

func BenchmarkAvgClosenessSampled5000(b *testing.B) {
	g, err := RandomRegular(5000, 10, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AvgCloseness(g, 64, rng)
	}
}
