// Package graph implements the undirected-graph substrate for the
// OnionBots topology experiments: a mutable adjacency structure, a random
// k-regular generator (the paper's Section V workload), and the metrics
// reported in Figures 4-6 — closeness centrality, degree centrality,
// diameter, and connected components.
//
// Mutation (AddEdge/RemoveNode/...) happens on Graph. Measurement happens
// on an Indexed snapshot: a compressed adjacency form with dense integer
// ids that makes repeated BFS cheap. Experiments mutate, snapshot,
// measure, and repeat. Two exceptions to the snapshot rule keep hot
// loops allocation-free: Graph.Connected answers "still one component?"
// straight off the adjacency maps (the Fig 6 partition scan asks it
// after every deletion batch), and AppendNeighbors is the scratch-buffer
// form of Neighbors for per-step repair scans. All BFS helpers mark
// visited nodes by stamping a reusable slice with the sweep's generation
// number, so starting a sweep is a counter bump rather than a reset or
// an allocation.
//
// Determinism: iteration-order-sensitive helpers (Nodes, Neighbors)
// return sorted slices, so callers that combine them with a seeded RNG
// get reproducible runs even though the underlying storage is Go maps.
package graph
