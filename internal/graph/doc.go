// Package graph implements the undirected-graph substrate for the
// OnionBots topology experiments: a mutable adjacency structure, a random
// k-regular generator (the paper's Section V workload), and the metrics
// reported in Figures 4-6 — closeness centrality, degree centrality,
// diameter, and connected components.
//
// Mutation (AddEdge/RemoveNode/...) happens on Graph. Measurement happens
// on an Indexed snapshot: a compressed adjacency form with dense integer
// ids that makes repeated BFS cheap. Experiments mutate, snapshot,
// measure, and repeat.
//
// Determinism: iteration-order-sensitive helpers (Nodes, Neighbors)
// return sorted slices, so callers that combine them with a seeded RNG
// get reproducible runs even though the underlying storage is Go maps.
package graph
