package serve

import (
	"math"
	"sync"
	"time"
)

// TokenBucket is the job-admission throttle: submissions each take one
// token, the bucket refills at a steady rate up to a burst capacity,
// and an empty bucket rejects with the exact wait until the next token
// — which the server hands back verbatim as a Retry-After header, so a
// well-behaved client never has to guess a backoff.
type TokenBucket struct {
	mu       sync.Mutex
	capacity float64
	tokens   float64
	perSec   float64
	last     time.Time

	// now is the clock, injectable for tests.
	now func() time.Time
}

// NewTokenBucket builds a bucket holding at most capacity tokens,
// refilled at perSec tokens per second, starting full.
func NewTokenBucket(capacity, perSec float64) *TokenBucket {
	if capacity < 1 {
		capacity = 1
	}
	if perSec <= 0 {
		perSec = 1
	}
	//onionlint:allow detclock -- admission control meters real HTTP clients in wall-clock time; tests inject a fake now()
	b := &TokenBucket{capacity: capacity, tokens: capacity, perSec: perSec, now: time.Now}
	b.last = b.now()
	return b
}

// Take attempts to consume one token. When the bucket is empty it
// returns ok=false and the duration after which one token will have
// accumulated.
func (b *TokenBucket) Take() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = math.Min(b.capacity, b.tokens+now.Sub(b.last).Seconds()*b.perSec)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.perSec * float64(time.Second))
}
