package serve

import "testing"

func TestHealthTrackerGrading(t *testing.T) {
	record := func(h *HealthTracker, ok, failed, timedOut int) {
		for i := 0; i < ok; i++ {
			h.RecordTask(false, false)
		}
		for i := 0; i < failed; i++ {
			h.RecordTask(true, false)
		}
		for i := 0; i < timedOut; i++ {
			h.RecordTask(false, true)
		}
	}
	cases := []struct {
		name                  string
		ok, failed, timedOut  int
		want                  HealthStatus
		wantFail, wantTimeout float64
	}{
		{"empty window", 0, 0, 0, Healthy, 0, 0},
		{"below min samples stays healthy", 1, 3, 0, Healthy, 0.75, 0},
		{"all ok", 10, 0, 0, Healthy, 0, 0},
		{"ten percent failures degrades", 9, 1, 0, Degraded, 0.1, 0},
		{"ten percent timeouts degrades", 9, 0, 1, Degraded, 0.1, 0.1},
		{"half failing is unhealthy", 5, 5, 0, Unhealthy, 0.5, 0},
		{"timeouts count toward failure rate", 5, 3, 2, Unhealthy, 0.5, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHealthTracker(0, 0)
			record(h, tc.ok, tc.failed, tc.timedOut)
			rep := h.Eval()
			if rep.Status != tc.want {
				t.Fatalf("status %s, want %s (report %+v)", rep.Status, tc.want, rep)
			}
			if rep.FailureRate != tc.wantFail || rep.TimeoutRate != tc.wantTimeout {
				t.Fatalf("rates %g/%g, want %g/%g", rep.FailureRate, rep.TimeoutRate, tc.wantFail, tc.wantTimeout)
			}
			if rep.Window != tc.ok+tc.failed+tc.timedOut {
				t.Fatalf("window %d, want %d", rep.Window, tc.ok+tc.failed+tc.timedOut)
			}
		})
	}
}

// Old outcomes age out of the ring buffer: a burst of failures followed
// by a full window of successes reads healthy again.
func TestHealthTrackerSlidingWindow(t *testing.T) {
	h := NewHealthTracker(8, 1)
	for i := 0; i < 8; i++ {
		h.RecordTask(true, false)
	}
	if rep := h.Eval(); rep.Status != Unhealthy {
		t.Fatalf("all-failed window graded %s", rep.Status)
	}
	for i := 0; i < 8; i++ {
		h.RecordTask(false, false)
	}
	rep := h.Eval()
	if rep.Status != Healthy || rep.FailureRate != 0 {
		t.Fatalf("recovered window graded %+v", rep)
	}
	if rep.Window != 8 {
		t.Fatalf("window %d, want 8", rep.Window)
	}
}

func TestHealthStatusHTTPStatus(t *testing.T) {
	if Healthy.HTTPStatus() != 200 || Degraded.HTTPStatus() != 200 {
		t.Fatal("healthy/degraded must keep answering 200 for load balancers")
	}
	if Unhealthy.HTTPStatus() != 503 {
		t.Fatal("unhealthy must answer 503")
	}
}
