package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the server's atomic counter block, exposed verbatim on
// /metrics. Counters only ever increase (except the queue-depth gauge);
// reading them takes no locks on the hot path, so a scrape never stalls
// a sweep. Per-experiment latency is aggregated under a small mutex off
// the hot path — one update per completed task, not per event.
type Metrics struct {
	// Task outcomes across all jobs. TasksRetried counts extra attempts
	// granted to panicked/timed-out tasks; TasksAbandoned counts
	// timed-out attempts whose goroutine was left running with its
	// result discarded (see experiment.Counts).
	TasksRun       atomic.Int64
	TasksFailed    atomic.Int64
	TasksRetried   atomic.Int64
	TasksAbandoned atomic.Int64
	TasksReplayed  atomic.Int64

	// Job lifecycle.
	JobsSubmitted atomic.Int64
	JobsResumed   atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	JobsRejected  atomic.Int64

	// QueueDepth gauges jobs admitted but not yet finished executing.
	QueueDepth atomic.Int64

	mu      sync.Mutex
	latency map[string]*latencyAgg
}

type latencyAgg struct {
	count   int64
	totalMS float64
	maxMS   float64
}

// ObserveTask records one completed task attempt's latency under its
// experiment ID.
func (m *Metrics) ObserveTask(experimentID string, elapsed time.Duration) {
	ms := float64(elapsed) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.latency == nil {
		m.latency = make(map[string]*latencyAgg)
	}
	agg := m.latency[experimentID]
	if agg == nil {
		agg = &latencyAgg{}
		m.latency[experimentID] = agg
	}
	agg.count++
	agg.totalMS += ms
	if ms > agg.maxMS {
		agg.maxMS = ms
	}
}

// LatencySnapshot is one experiment's latency aggregate in a /metrics
// response.
type LatencySnapshot struct {
	Experiment string  `json:"experiment"`
	Count      int64   `json:"count"`
	MeanMS     float64 `json:"mean_ms"`
	MaxMS      float64 `json:"max_ms"`
}

// MetricsSnapshot is the JSON shape of /metrics.
type MetricsSnapshot struct {
	TasksRun       int64             `json:"tasks_run"`
	TasksFailed    int64             `json:"tasks_failed"`
	TasksRetried   int64             `json:"tasks_retried"`
	TasksAbandoned int64             `json:"tasks_abandoned"`
	TasksReplayed  int64             `json:"tasks_replayed"`
	JobsSubmitted  int64             `json:"jobs_submitted"`
	JobsResumed    int64             `json:"jobs_resumed"`
	JobsCompleted  int64             `json:"jobs_completed"`
	JobsFailed     int64             `json:"jobs_failed"`
	JobsCancelled  int64             `json:"jobs_cancelled"`
	JobsRejected   int64             `json:"jobs_rejected"`
	QueueDepth     int64             `json:"queue_depth"`
	TaskLatency    []LatencySnapshot `json:"task_latency,omitempty"`
}

// Snapshot captures every counter, with per-experiment latency rows
// sorted by experiment ID for stable output.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		TasksRun:       m.TasksRun.Load(),
		TasksFailed:    m.TasksFailed.Load(),
		TasksRetried:   m.TasksRetried.Load(),
		TasksAbandoned: m.TasksAbandoned.Load(),
		TasksReplayed:  m.TasksReplayed.Load(),
		JobsSubmitted:  m.JobsSubmitted.Load(),
		JobsResumed:    m.JobsResumed.Load(),
		JobsCompleted:  m.JobsCompleted.Load(),
		JobsFailed:     m.JobsFailed.Load(),
		JobsCancelled:  m.JobsCancelled.Load(),
		JobsRejected:   m.JobsRejected.Load(),
		QueueDepth:     m.QueueDepth.Load(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.latency))
	for id := range m.latency {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		agg := m.latency[id]
		s.TaskLatency = append(s.TaskLatency, LatencySnapshot{
			Experiment: id,
			Count:      agg.count,
			MeanMS:     agg.totalMS / float64(agg.count),
			MaxMS:      agg.maxMS,
		})
	}
	return s
}
