package serve

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"onionbots/internal/experiment"
)

// Executor drains the job queue one job at a time, running each job's
// task grid on an experiment.Runner worker pool. It owns the
// crash-safety protocol:
//
//  1. replay the job's checkpoint journal and re-emit the completed
//     tasks as replayed progress events,
//  2. run only the labels the journal is missing, appending each
//     completion to the journal (fsync per record) from the runner's
//     serialized Progress hook,
//  3. when every label has a result, aggregate in original task order
//     and atomically write result.json — byte-identical to what an
//     uninterrupted batch `onionsim -sweep -json` run would print.
//
// Closing the stop channel (graceful shutdown) or a job's cancel
// channel drains in-flight tasks — each one still reaches the journal —
// and stops dispatching new ones.
type Executor struct {
	// Parallel, TaskTimeout, TaskRetries and TaskRetryBackoff configure
	// the per-job runner.
	Parallel         int
	TaskTimeout      time.Duration
	TaskRetries      int
	TaskRetryBackoff time.Duration

	metrics *Metrics
	health  *HealthTracker
	queue   chan *Job
	stop    chan struct{}
	wg      sync.WaitGroup
	logf    func(format string, args ...any)
}

// NewExecutor builds an executor whose queue holds queueCap jobs.
func NewExecutor(queueCap int, metrics *Metrics, health *HealthTracker, logf func(string, ...any)) *Executor {
	if queueCap < 1 {
		queueCap = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Executor{
		metrics: metrics,
		health:  health,
		queue:   make(chan *Job, queueCap),
		stop:    make(chan struct{}),
		logf:    logf,
	}
}

// Start launches the drain loop.
func (e *Executor) Start() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		for {
			select {
			case <-e.stop:
				return
			case j := <-e.queue:
				e.metrics.QueueDepth.Add(-1)
				e.runJob(j)
			}
		}
	}()
}

// Enqueue admits a job, returning false when the queue is full.
func (e *Executor) Enqueue(j *Job) bool {
	select {
	case e.queue <- j:
		e.metrics.QueueDepth.Add(1)
		return true
	default:
		return false
	}
}

// Shutdown stops dispatching new tasks, waits for in-flight ones to
// drain into the journal, and returns. Jobs left mid-run are persisted
// as queued so the next start resumes them.
func (e *Executor) Shutdown() {
	close(e.stop)
	e.wg.Wait()
}

// isTimeoutResult matches the runner's timeout failure shape.
func isTimeoutResult(tr experiment.TaskResult) bool {
	return tr.Err != nil && strings.Contains(tr.Error, "timed out after")
}

// runJob executes (or resumes) one job end to end.
func (e *Executor) runJob(j *Job) {
	if j.State().Terminal() {
		return // cancelled while queued
	}
	j.setState(JobRunning, "")
	e.logf("job %s: running (%s)", j.ID, j.Spec.Name)

	tasks, err := j.Spec.Tasks()
	if err != nil {
		e.failJob(j, fmt.Errorf("expand spec: %w", err))
		return
	}
	labelIdx := make(map[string]int, len(tasks))
	for i, t := range tasks {
		labelIdx[t.Label] = i
	}

	// Phase 1: replay the checkpoint journal. Unknown labels mean the
	// journal does not belong to this spec — resuming would silently
	// produce a franken-sweep, so fail loudly instead.
	journaled, torn, err := ReplayJournal(j.journalPath())
	if err != nil {
		e.failJob(j, err)
		return
	}
	if torn {
		e.logf("job %s: %v", j.ID, ErrTornTail)
	}
	results := make([]experiment.TaskResult, len(tasks))
	have := make([]bool, len(tasks))
	j.resetProgress()
	for _, tr := range journaled {
		i, ok := labelIdx[tr.Task.Label]
		if !ok {
			e.failJob(j, fmt.Errorf("journal references unknown label %q — journal does not match the job spec", tr.Task.Label))
			return
		}
		results[i] = tr
		have[i] = true
		e.metrics.TasksReplayed.Add(1)
		j.taskDone(tr.Task.Label, tr.Error, true, 0)
	}
	var pending []experiment.Task
	for i, t := range tasks {
		if !have[i] {
			pending = append(pending, t)
		}
	}
	if len(journaled) > 0 {
		e.logf("job %s: resumed %d/%d tasks from journal", j.ID, len(journaled), len(tasks))
	}

	// Phase 2: run the missing labels, checkpointing each completion.
	interrupted := false
	if len(pending) > 0 {
		journal, err := OpenJournal(j.journalPath())
		if err != nil {
			e.failJob(j, err)
			return
		}
		var appendErr error
		abort := make(chan struct{})
		stop, release := mergeStops(e.stop, j.cancelled(), abort)
		defer release()
		runner := &experiment.Runner{
			Parallel:         e.Parallel,
			TaskTimeout:      e.TaskTimeout,
			MaxTaskRetries:   e.TaskRetries,
			TaskRetryBackoff: e.TaskRetryBackoff,
			// Progress is serialized by the runner, so journal appends
			// and event fan-out need no extra locking here.
			Progress: func(done, total int, tr experiment.TaskResult) {
				if appendErr == nil {
					if aerr := journal.Append(tr); aerr != nil {
						appendErr = aerr
						close(abort)
						return
					}
				}
				e.metrics.TasksRun.Add(1)
				if tr.Err != nil {
					e.metrics.TasksFailed.Add(1)
				}
				e.metrics.ObserveTask(tr.Task.Experiment, tr.Elapsed)
				e.health.RecordTask(tr.Err != nil, isTimeoutResult(tr))
				j.taskDone(tr.Task.Label, tr.Error, false, float64(tr.Elapsed)/float64(time.Millisecond))
			},
		}
		before := runner.Counts()
		fresh, ran, rerr := runner.RunStoppable(pending, stop)
		counts := runner.Counts()
		e.metrics.TasksRetried.Add(counts.Retried - before.Retried)
		e.metrics.TasksAbandoned.Add(counts.Abandoned - before.Abandoned)
		journal.Close()
		if rerr != nil {
			e.failJob(j, rerr)
			return
		}
		if appendErr != nil {
			e.failJob(j, fmt.Errorf("checkpoint failed: %w", appendErr))
			return
		}
		for i, tr := range fresh {
			if ran[i] {
				results[labelIdx[tr.Task.Label]] = tr
				have[labelIdx[tr.Task.Label]] = true
			} else {
				interrupted = true
			}
		}
	}

	// Phase 3: finalize, or park the job for the next process.
	switch {
	case j.State() == JobCancelled:
		e.metrics.JobsCancelled.Add(1)
		e.logf("job %s: cancelled (%d/%d tasks checkpointed)", j.ID, countTrue(have), len(tasks))
	case interrupted:
		// Graceful shutdown drained the in-flight tasks into the
		// journal; hand the rest to the next server process.
		j.setState(JobQueued, "")
		e.logf("job %s: interrupted, %d/%d tasks checkpointed for resume", j.ID, countTrue(have), len(tasks))
	default:
		if err := e.finalize(j, results); err != nil {
			e.failJob(j, err)
			return
		}
		e.metrics.JobsCompleted.Add(1)
		st := j.Status()
		e.logf("job %s: completed (%d tasks, %d failed)", j.ID, st.Total, st.FailedTasks)
	}
}

// finalize aggregates the full task grid in original order and
// atomically writes result.json — the exact bytes `onionsim -sweep
// <spec> -json` prints for the same spec, which is what the kill/resume
// differential test and make serve-smoke byte-compare.
func (e *Executor) finalize(j *Job, results []experiment.TaskResult) error {
	aggregate := j.Spec.Aggregate(results)
	doc, err := experiment.SweepJSON(j.Spec, results, aggregate)
	if err != nil {
		return fmt.Errorf("render result: %w", err)
	}
	if err := atomicWrite(j.resultPath(), append(doc, '\n')); err != nil {
		return fmt.Errorf("write result: %w", err)
	}
	j.setState(JobCompleted, "")
	return nil
}

// failJob marks a job Failed with its infrastructure error.
func (e *Executor) failJob(j *Job, err error) {
	e.metrics.JobsFailed.Add(1)
	j.setState(JobFailed, err.Error())
	e.logf("job %s: FAILED: %v", j.ID, err)
}

// resetProgress clears the load-time progress counts before the
// executor re-emits replayed tasks, so done/total stay exact.
func (j *Job) resetProgress() {
	j.mu.Lock()
	j.done = 0
	j.failedTasks = 0
	j.mu.Unlock()
}

// mergeStops fans three stop channels into one. The returned release
// function frees the merge goroutine once the merged channel is no
// longer needed.
func mergeStops(a, b, c <-chan struct{}) (<-chan struct{}, func()) {
	out := make(chan struct{})
	quit := make(chan struct{})
	go func() {
		select {
		case <-a:
		case <-b:
		case <-c:
		case <-quit:
			return
		}
		close(out)
	}()
	var once sync.Once
	return out, func() { once.Do(func() { close(quit) }) }
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
