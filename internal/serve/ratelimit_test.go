package serve

import (
	"testing"
	"time"
)

// fakeClock makes the bucket deterministic: tests advance time by hand.
func fakeClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestTokenBucketBurstThenRefusal(t *testing.T) {
	b := NewTokenBucket(3, 1)
	clock, _ := fakeClock(time.Unix(1000, 0))
	b.now = clock
	b.last = clock()
	for i := 0; i < 3; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d refused within burst capacity", i)
		}
	}
	ok, retry := b.Take()
	if ok {
		t.Fatal("empty bucket granted a token")
	}
	if retry != time.Second {
		t.Fatalf("retryAfter = %v, want 1s at 1 token/s", retry)
	}
}

func TestTokenBucketRefills(t *testing.T) {
	b := NewTokenBucket(2, 2) // 2 tokens/s
	clock, advance := fakeClock(time.Unix(1000, 0))
	b.now = clock
	b.last = clock()
	b.Take()
	b.Take()
	if ok, retry := b.Take(); ok || retry != 500*time.Millisecond {
		t.Fatalf("empty at 2/s: ok=%v retry=%v, want refused/500ms", ok, retry)
	}
	advance(500 * time.Millisecond)
	if ok, _ := b.Take(); !ok {
		t.Fatal("token not refilled after the advertised wait")
	}
	// Refill is capped at capacity: a long idle stretch doesn't bank
	// unlimited burst.
	advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Take(); !ok {
			t.Fatalf("take %d after idle refused", i)
		}
	}
	if ok, _ := b.Take(); ok {
		t.Fatal("bucket exceeded capacity after long idle")
	}
}

func TestTokenBucketPartialRetryAfter(t *testing.T) {
	b := NewTokenBucket(1, 1)
	clock, advance := fakeClock(time.Unix(1000, 0))
	b.now = clock
	b.last = clock()
	b.Take()
	advance(300 * time.Millisecond) // 0.3 tokens accumulated
	ok, retry := b.Take()
	if ok {
		t.Fatal("0.3 tokens granted a take")
	}
	if retry != 700*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 700ms", retry)
	}
}

func TestTokenBucketDefensiveDefaults(t *testing.T) {
	b := NewTokenBucket(0, -1)
	if b.capacity != 1 || b.perSec != 1 {
		t.Fatalf("defaults = %g cap / %g per-sec, want 1/1", b.capacity, b.perSec)
	}
}
