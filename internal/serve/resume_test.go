package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onionbots/internal/experiment"
)

// resumeSpec is the differential-test grid: 3 seeds × 2 trials = 6
// tasks of the deterministic test experiment.
const resumeSpec = `{
  "name": "resume-grid",
  "experiments": ["serve-det"],
  "quick": true,
  "seeds": [1, 2, 3],
  "trials": 2
}`

// newTestExec builds a store + executor pair over dir.
func newTestExec(t *testing.T, dir string) (*Store, *Executor) {
	t.Helper()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(4, &Metrics{}, NewHealthTracker(0, 0), t.Logf)
	exec.Parallel = 2
	return store, exec
}

// runToCompletion enqueues the job on a fresh executor loop and waits
// for a terminal state.
func runToCompletion(t *testing.T, exec *Executor, j *Job) {
	t.Helper()
	_, ch, unsub := j.Subscribe()
	defer unsub()
	exec.Start()
	defer exec.Shutdown()
	if !exec.Enqueue(j) {
		t.Fatal("enqueue failed")
	}
	for ev := range ch {
		if ev.Type == "state" && ev.State.Terminal() {
			return
		}
	}
	t.Fatal("event stream closed before terminal state")
}

func readResult(t *testing.T, j *Job) []byte {
	t.Helper()
	data, err := os.ReadFile(j.resultPath())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The acceptance differential: a job journaled to 0, some, or all of
// its tasks and then resumed by a fresh store/executor (a new "process")
// produces a final document byte-identical to the uninterrupted batch
// run of the same spec.
func TestResumeByteIdenticalToUninterruptedRun(t *testing.T) {
	want, err := batchDocument([]byte(resumeSpec), 1)
	if err != nil {
		t.Fatal(err)
	}

	// Golden cross-check: a never-interrupted server job matches batch.
	dir := t.TempDir()
	store, exec := newTestExec(t, dir)
	j, err := store.Create([]byte(resumeSpec))
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, exec, j)
	if j.State() != JobCompleted {
		t.Fatalf("job state %s, want completed", j.State())
	}
	if got := readResult(t, j); !bytes.Equal(got, want) {
		t.Fatalf("uninterrupted server run differs from batch run (%d vs %d bytes)", len(got), len(want))
	}

	// Resume after completing 0, some, and all tasks: simulate the
	// crash by hand-building the job directory with a journal prefix,
	// then let a brand-new store (the "restarted process") finish it.
	spec, _ := experiment.ParseSweep([]byte(resumeSpec))
	tasks, _ := spec.Tasks()
	full, err := (&experiment.Runner{Parallel: 1}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, completed := range []int{0, 1, len(tasks) - 1, len(tasks)} {
		dir := t.TempDir()
		jobDir := filepath.Join(dir, "job-000001")
		if err := os.MkdirAll(jobDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(jobDir, "spec.json"), []byte(resumeSpec), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(jobDir, "state.json"), []byte(`{"state":"running"}`), 0o644); err != nil {
			t.Fatal(err)
		}
		writeJournal(t, filepath.Join(jobDir, "journal.jsonl"), full[:completed])

		store, exec := newTestExec(t, dir)
		resumable := store.Resumable()
		if len(resumable) != 1 {
			t.Fatalf("completed=%d: %d resumable jobs, want 1", completed, len(resumable))
		}
		rj := resumable[0]
		if rj.Status().Done != completed {
			t.Fatalf("completed=%d: loaded done=%d", completed, rj.Status().Done)
		}
		runToCompletion(t, exec, rj)
		if rj.State() != JobCompleted {
			t.Fatalf("completed=%d: resumed job state %s (%s)", completed, rj.State(), rj.Status().Error)
		}
		if got := readResult(t, rj); !bytes.Equal(got, want) {
			t.Fatalf("completed=%d: resumed document differs from uninterrupted batch run", completed)
		}
	}
}

// Kill-and-resume with a torn tail: truncate the journal mid-record
// before resuming; the torn record's task reruns and the document still
// byte-matches.
func TestResumeAfterTornTailByteIdentical(t *testing.T) {
	want, err := batchDocument([]byte(resumeSpec), 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := experiment.ParseSweep([]byte(resumeSpec))
	tasks, _ := spec.Tasks()
	full, err := (&experiment.Runner{Parallel: 1}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "job-000001")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "spec.json"), []byte(resumeSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	journalPath := filepath.Join(jobDir, "journal.jsonl")
	writeJournal(t, journalPath, full[:3])
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalPath, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	store, exec := newTestExec(t, dir)
	rj, ok := store.Get("job-000001")
	if !ok {
		t.Fatal("job not loaded")
	}
	runToCompletion(t, exec, rj)
	if rj.State() != JobCompleted {
		t.Fatalf("job state %s (%s)", rj.State(), rj.Status().Error)
	}
	if got := readResult(t, rj); !bytes.Equal(got, want) {
		t.Fatal("torn-tail resume differs from uninterrupted batch run")
	}
}

// A journal that references labels the spec never produced means the
// journal and spec do not belong together; resume must refuse loudly
// instead of fabricating a sweep.
func TestResumeUnknownJournalLabelFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "job-000001")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "spec.json"), []byte(resumeSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	alien, err := (&experiment.Runner{}).Run([]experiment.Task{
		{Label: "somebody-elses-label", Experiment: "serve-det", Params: experiment.Params{Seed: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	writeJournal(t, filepath.Join(jobDir, "journal.jsonl"), alien)

	store, exec := newTestExec(t, dir)
	rj, _ := store.Get("job-000001")
	runToCompletion(t, exec, rj)
	st := rj.Status()
	if st.State != JobFailed {
		t.Fatalf("job state %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "unknown label") || !strings.Contains(st.Error, "somebody-elses-label") {
		t.Fatalf("failure does not name the alien label: %q", st.Error)
	}
}

// A mid-run drain (graceful shutdown) checkpoints completed tasks,
// parks the job queued, and a second executor finishes it to the same
// bytes.
func TestShutdownDrainThenResumeByteIdentical(t *testing.T) {
	want, err := batchDocument([]byte(resumeSpec), 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store, exec := newTestExec(t, dir)
	exec.Parallel = 1 // serialize so the drain point is mid-sweep
	j, err := store.Create([]byte(resumeSpec))
	if err != nil {
		t.Fatal(err)
	}
	_, ch, unsub := j.Subscribe()
	exec.Start()
	if !exec.Enqueue(j) {
		t.Fatal("enqueue failed")
	}
	// Drain as soon as the first task lands in the journal.
	for ev := range ch {
		if ev.Type == "task" {
			break
		}
	}
	unsub()
	exec.Shutdown()
	st := j.Status()
	if st.State == JobCompleted {
		t.Skip("job finished before the drain; nothing to resume")
	}
	if st.State != JobQueued {
		t.Fatalf("drained job state %s, want queued", st.State)
	}
	if st.Done == 0 || st.Done == st.Total {
		t.Fatalf("drain checkpointed %d/%d tasks, want a strict prefix", st.Done, st.Total)
	}

	// The "restarted process": a fresh store over the same directory.
	store2, exec2 := newTestExec(t, dir)
	resumable := store2.Resumable()
	if len(resumable) != 1 {
		t.Fatalf("%d resumable jobs after drain, want 1", len(resumable))
	}
	rj := resumable[0]
	runToCompletion(t, exec2, rj)
	if rj.State() != JobCompleted {
		t.Fatalf("resumed job state %s (%s)", rj.State(), rj.Status().Error)
	}
	if got := readResult(t, rj); !bytes.Equal(got, want) {
		t.Fatal("drain-and-resume differs from uninterrupted batch run")
	}
}

// Transient panics are retried per task and the job still completes;
// the retry is invisible in the final document because the retried task
// runs on the same substream.
func TestTransientPanicRetriedToCompletion(t *testing.T) {
	spec := `{
  "name": "flaky-grid",
  "experiments": ["serve-flaky"],
  "seeds": [101, 102, 103]
}`
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	metrics := &Metrics{}
	exec := NewExecutor(4, metrics, NewHealthTracker(0, 0), t.Logf)
	exec.Parallel = 2
	exec.TaskRetries = 2
	j, err := store.Create([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, exec, j)
	st := j.Status()
	if st.State != JobCompleted || st.FailedTasks != 0 {
		t.Fatalf("flaky job: state %s, %d failed tasks (%s)", st.State, st.FailedTasks, st.Error)
	}
	if got := metrics.TasksRetried.Load(); got != 3 {
		t.Fatalf("TasksRetried = %d, want 3 (one per seed)", got)
	}
}

// One permanently failing grid point must not fail the job: it lands as
// an error row in the aggregate and the job completes.
func TestFailingTaskDoesNotFailJob(t *testing.T) {
	spec := `{
  "name": "mixed-grid",
  "experiments": ["serve-det", "serve-fail"],
  "seeds": [7]
}`
	dir := t.TempDir()
	store, exec := newTestExec(t, dir)
	j, err := store.Create([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, exec, j)
	st := j.Status()
	if st.State != JobCompleted {
		t.Fatalf("job state %s, want completed despite the failing point", st.State)
	}
	if st.FailedTasks != 1 {
		t.Fatalf("FailedTasks = %d, want 1", st.FailedTasks)
	}
	doc := readResult(t, j)
	if !bytes.Contains(doc, []byte("deliberate failure")) {
		t.Fatal("aggregate lost the failing task's error row")
	}
}
