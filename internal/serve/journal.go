package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"onionbots/internal/experiment"
)

// Journal is the crash-safety backbone of a job: an append-only JSONL
// file under the job's directory recording one completed task per line.
// Every Append marshals the TaskResult compactly, writes it with a
// trailing newline in a single call, and fsyncs before returning, so a
// record either survives a kill -9 whole or is a torn final line that
// Replay discards. Because every grid point runs on its own RNG
// substream derived from (root seed, task label), a journaled result is
// exactly the bytes a rerun of that label would produce — which is what
// makes resume-by-label byte-exact: replay the journal, run only the
// labels it is missing, merge in task order.
type Journal struct {
	f *os.File
}

// OpenJournal opens (creating if needed) the journal at path for
// appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append durably records one completed task. It must not be called
// concurrently; the executor serializes appends through the runner's
// Progress lock.
func (j *Journal) Append(tr experiment.TaskResult) error {
	line, err := json.Marshal(tr)
	if err != nil {
		return fmt.Errorf("journal %s: marshal: %w", tr.Task.Label, err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal %s: write: %w", tr.Task.Label, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal %s: fsync: %w", tr.Task.Label, err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// ErrTornTail is wrapped into ReplayNotes when a journal's final line
// was torn by a crash; the line is discarded and its task reruns.
var ErrTornTail = errors.New("torn final journal record discarded")

// ReplayJournal reads a journal back into completed TaskResults, in
// append order. A missing file is an empty journal (nothing completed
// before the crash). Torn final lines — a crash landed mid-write — are
// discarded and reported via torn; the affected task simply reruns. Any
// other malformation (garbage mid-file, duplicate labels) is corruption
// the resume must not paper over, and fails loudly.
//
// The Err field of a replayed result is reconstructed from its JSON
// Error mirror, so downstream aggregation treats a journaled failure
// exactly like a fresh one.
func ReplayJournal(path string) (results []experiment.TaskResult, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("replay journal: %w", err)
	}
	return replayJournalData(data)
}

// replayJournalData is the pure bytes→records core of ReplayJournal,
// split out so the torn-tail recovery logic is directly fuzzable
// (FuzzReplayJournal) without touching the filesystem.
func replayJournalData(data []byte) (results []experiment.TaskResult, torn bool, err error) {
	seen := make(map[string]struct{})
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var tr experiment.TaskResult
		if uerr := json.Unmarshal(line, &tr); uerr != nil {
			// Only the final line may be torn: it means the process died
			// mid-append. Anything earlier is corruption.
			if !sc.Scan() {
				return results, true, nil
			}
			return nil, false, fmt.Errorf("replay journal: line %d corrupt: %v", lineNo, uerr)
		}
		if tr.Task.Label == "" {
			if !hasMoreLines(data, line) {
				return results, true, nil
			}
			return nil, false, fmt.Errorf("replay journal: line %d has no task label", lineNo)
		}
		if _, dup := seen[tr.Task.Label]; dup {
			return nil, false, fmt.Errorf("replay journal: duplicate record for label %q (line %d)", tr.Task.Label, lineNo)
		}
		seen[tr.Task.Label] = struct{}{}
		if tr.Error != "" {
			tr.Err = errors.New(tr.Error)
		}
		results = append(results, tr)
	}
	if serr := sc.Err(); serr != nil {
		return nil, false, fmt.Errorf("replay journal: %w", serr)
	}
	// A file that does not end in a newline had its final record torn
	// mid-write even if the prefix happened to parse; discard it.
	if len(data) > 0 && data[len(data)-1] != '\n' && len(results) > 0 {
		results = results[:len(results)-1]
		torn = true
	}
	return results, torn, nil
}

// hasMoreLines reports whether line is followed by further content in
// data — i.e. whether it can still claim to be the (possibly torn)
// final record.
func hasMoreLines(data, line []byte) bool {
	i := bytes.LastIndex(data, line)
	if i < 0 {
		return true
	}
	rest := data[i+len(line):]
	rest = bytes.TrimPrefix(rest, []byte{'\n'})
	return len(bytes.TrimSpace(rest)) > 0
}
