package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"onionbots/internal/experiment"
)

// JobState is a job's lifecycle position. Queued and Running jobs are
// resumable: a process that dies (or drains on SIGTERM) leaves them on
// disk with their checkpoint journal, and the next server start picks
// them back up. The terminal states are Completed (result.json written;
// per-task failures land in the aggregate's error rows, they do not
// fail the job), Failed (infrastructure failure: corrupt journal,
// journal/spec mismatch, unwritable disk), and Cancelled.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobCompleted || s == JobFailed || s == JobCancelled
}

// Event is one NDJSON line on a job's stream: a task completion (live
// or replayed from the checkpoint journal) or a state transition.
type Event struct {
	Type string `json:"type"` // "task" or "state"
	// Task events.
	Label    string `json:"label,omitempty"`
	Error    string `json:"error,omitempty"`
	Replayed bool   `json:"replayed,omitempty"`
	Done     int    `json:"done,omitempty"`
	Total    int    `json:"total,omitempty"`
	// ElapsedMS is the live task's wall-clock duration; zero for
	// replayed records (the journal deliberately stores no timings).
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// State events.
	State JobState `json:"state,omitempty"`
}

// JobStatus is the JSON shape of GET /jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	Total int      `json:"total"`
	Done  int      `json:"done"`
	// FailedTasks counts grid points whose result is an error row. The
	// job still completes; this is the "how much of my sweep is usable"
	// number.
	FailedTasks int    `json:"failed_tasks"`
	Error       string `json:"error,omitempty"`
}

// subscriber buffers events for one stream reader. A reader that falls
// more than cap(ch) events behind is dropped (lagged=true) rather than
// allowed to stall the executor; the journal and result file remain the
// durable record.
type subscriber struct {
	ch     chan Event
	lagged bool
}

// Job is one submitted sweep: its parsed spec, its on-disk directory
// (spec.json, journal.jsonl, state.json, result.json), and its live
// progress fan-out.
type Job struct {
	ID   string
	Spec *experiment.Sweep
	dir  string

	mu          sync.Mutex
	state       JobState
	errMsg      string
	total       int
	done        int
	failedTasks int
	events      []Event
	subs        map[*subscriber]struct{}
	cancel      chan struct{}
	cancelOnce  sync.Once
}

// persistedState is the state.json shape — tiny and rewritten
// atomically on every transition, so a crashed process knows on restart
// which jobs were in flight.
type persistedState struct {
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
}

func (j *Job) journalPath() string { return filepath.Join(j.dir, "journal.jsonl") }
func (j *Job) resultPath() string  { return filepath.Join(j.dir, "result.json") }
func (j *Job) statePath() string   { return filepath.Join(j.dir, "state.json") }
func (j *Job) specPath() string    { return filepath.Join(j.dir, "spec.json") }

// Status snapshots the job for the status endpoint.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.ID, State: j.state, Total: j.total, Done: j.done,
		FailedTasks: j.failedTasks, Error: j.errMsg,
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cancel moves a non-terminal job to Cancelled and wakes the executor
// valve. Safe to call repeatedly; returns false if the job was already
// terminal.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.mu.Unlock()
	// Persist first so a crash right after still remembers the cancel,
	// then flip the in-memory state and close the valve.
	j.setState(JobCancelled, "")
	j.cancelOnce.Do(func() { close(j.cancel) })
	return true
}

// cancelled returns the channel the executor merges into its stop
// valve.
func (j *Job) cancelled() <-chan struct{} { return j.cancel }

// setState persists and broadcasts a state transition. Persist errors
// are deliberately non-fatal at this layer: the in-memory transition
// still happens (a running server must keep serving truth), and the
// executor surfaces disk trouble through job failure paths.
func (j *Job) setState(st JobState, errMsg string) {
	data, _ := json.Marshal(persistedState{State: st, Error: errMsg})
	_ = atomicWrite(j.statePath(), append(data, '\n'))
	j.mu.Lock()
	j.state = st
	j.errMsg = errMsg
	j.mu.Unlock()
	j.publish(Event{Type: "state", State: st, Error: errMsg})
}

// taskDone records one task completion (live or replayed) and fans it
// out to stream subscribers.
func (j *Job) taskDone(label, errStr string, replayed bool, elapsedMS float64) {
	j.mu.Lock()
	j.done++
	if errStr != "" {
		j.failedTasks++
	}
	done, total := j.done, j.total
	j.mu.Unlock()
	j.publish(Event{
		Type: "task", Label: label, Error: errStr, Replayed: replayed,
		Done: done, Total: total, ElapsedMS: elapsedMS,
	})
}

// publish appends to the event history and offers the event to every
// subscriber without ever blocking the executor.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	//onionlint:allow maporder -- fan-out to independent subscribers; each one sees the same events in history order regardless of delivery order
	for s := range j.subs {
		select {
		case s.ch <- ev:
		default:
			s.lagged = true
			delete(j.subs, s)
			close(s.ch)
		}
	}
}

// Subscribe returns the event history so far plus a channel of
// subsequent events. The channel closes when the subscriber lags
// hopelessly; callers detect job completion from terminal state events,
// and must call the returned unsubscribe function when done.
func (j *Job) Subscribe() (history []Event, ch <-chan Event, unsubscribe func()) {
	s := &subscriber{ch: make(chan Event, 4096)}
	j.mu.Lock()
	history = append([]Event(nil), j.events...)
	if j.subs == nil {
		j.subs = make(map[*subscriber]struct{})
	}
	j.subs[s] = struct{}{}
	j.mu.Unlock()
	return history, s.ch, func() {
		j.mu.Lock()
		if _, live := j.subs[s]; live {
			delete(j.subs, s)
			close(s.ch)
		}
		j.mu.Unlock()
	}
}

// Store manages the jobs directory: one subdirectory per job, scanned
// on startup so queued and running jobs survive the process.
type Store struct {
	dir string

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
}

// OpenStore opens (creating if needed) the jobs directory and loads
// every job recorded in it.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs dir: %w", err)
	}
	s := &Store{dir: dir, jobs: make(map[string]*Job), nextID: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "job-") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		j, err := s.load(id)
		if err != nil {
			return nil, err
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		var n int
		if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
	}
	return s, nil
}

// load rebuilds one job from its directory: spec, persisted state, and
// completed-task count replayed from the journal.
func (s *Store) load(id string) (*Job, error) {
	j := &Job{ID: id, dir: filepath.Join(s.dir, id), cancel: make(chan struct{}), state: JobQueued}
	specBytes, err := os.ReadFile(j.specPath())
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", id, err)
	}
	spec, err := experiment.ParseSweep(specBytes)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", id, err)
	}
	j.Spec = spec
	if tasks, err := spec.Tasks(); err == nil {
		j.total = len(tasks)
	}
	if data, err := os.ReadFile(j.statePath()); err == nil {
		var ps persistedState
		if err := json.Unmarshal(data, &ps); err == nil && ps.State != "" {
			j.state = ps.State
			j.errMsg = ps.Error
		}
	}
	// A job found in Running state died mid-run; it resumes from its
	// journal, so present it as queued again.
	if j.state == JobRunning {
		j.state = JobQueued
	}
	switch j.state {
	case JobCompleted:
		j.done = j.total
	case JobQueued:
		if replayed, _, err := ReplayJournal(j.journalPath()); err == nil {
			j.done = len(replayed)
			for _, tr := range replayed {
				if tr.Error != "" {
					j.failedTasks++
				}
			}
		}
	}
	if j.state.Terminal() {
		j.cancelOnce.Do(func() { close(j.cancel) })
	}
	return j, nil
}

// Create validates a submitted sweep spec, assigns the next job ID, and
// durably records the job (spec bytes fsync'd, state queued) before
// returning — a 201 response means a kill -9 no longer loses the job.
func (s *Store) Create(specBytes []byte) (*Job, error) {
	spec, err := experiment.ParseSweep(specBytes)
	if err != nil {
		return nil, err
	}
	tasks, err := spec.Tasks()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.nextID++
	s.mu.Unlock()

	j := &Job{
		ID: id, Spec: spec, dir: filepath.Join(s.dir, id),
		state: JobQueued, total: len(tasks), cancel: make(chan struct{}),
	}
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return nil, fmt.Errorf("create %s: %w", id, err)
	}
	if err := atomicWrite(j.specPath(), specBytes); err != nil {
		return nil, fmt.Errorf("create %s: %w", id, err)
	}
	st, _ := json.Marshal(persistedState{State: JobQueued})
	if err := atomicWrite(j.statePath(), append(st, '\n')); err != nil {
		return nil, fmt.Errorf("create %s: %w", id, err)
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	return j, nil
}

// Get returns the job by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns every job in creation order.
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Resumable returns the jobs a fresh server start must re-enqueue:
// everything the previous process left non-terminal.
func (s *Store) Resumable() []*Job {
	var out []*Job
	for _, j := range s.List() {
		if !j.State().Terminal() {
			out = append(out, j)
		}
	}
	return out
}

// atomicWrite writes data to path via a same-directory temp file,
// fsyncs, and renames — so readers (including the next process) see the
// old bytes or the new bytes, never a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
