package serve

import "sync"

// HealthStatus is the server's graded readiness value object: not a
// boolean, because a sweep server with a few timed-out grid points is
// degraded — worth draining traffic from — long before it is down.
type HealthStatus string

const (
	Healthy   HealthStatus = "healthy"
	Degraded  HealthStatus = "degraded"
	Unhealthy HealthStatus = "unhealthy"
)

// HTTPStatus maps the grade onto a probe response code: load balancers
// keep routing to a degraded server (200) but drop an unhealthy one
// (503).
func (s HealthStatus) HTTPStatus() int {
	if s == Unhealthy {
		return 503
	}
	return 200
}

// taskOutcome is one completed task's contribution to health.
type taskOutcome uint8

const (
	outcomeOK taskOutcome = iota
	outcomeFailed
	outcomeTimedOut
)

// HealthTracker grades the server from recent task failure and timeout
// rates over a sliding window of the last N task completions. Rates are
// over completions, not wall time, so an idle server neither heals nor
// decays — its last known behavior stands.
type HealthTracker struct {
	mu     sync.Mutex
	window []taskOutcome // ring buffer
	next   int
	filled bool

	// minSamples gates grading: with fewer completions than this the
	// tracker reports Healthy, because one early failure out of one
	// task is noise, not a trend.
	minSamples int
}

// NewHealthTracker tracks the last windowSize task completions
// (default 32) and starts grading once minSamples (default 5) have
// been seen.
func NewHealthTracker(windowSize, minSamples int) *HealthTracker {
	if windowSize <= 0 {
		windowSize = 32
	}
	if minSamples <= 0 {
		minSamples = 5
	}
	return &HealthTracker{window: make([]taskOutcome, windowSize), minSamples: minSamples}
}

// RecordTask folds one completed task into the window.
func (h *HealthTracker) RecordTask(failed, timedOut bool) {
	o := outcomeOK
	switch {
	case timedOut:
		o = outcomeTimedOut
	case failed:
		o = outcomeFailed
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.window[h.next] = o
	h.next++
	if h.next == len(h.window) {
		h.next = 0
		h.filled = true
	}
}

// HealthReport is the JSON shape of /healthz.
type HealthReport struct {
	Status      HealthStatus `json:"status"`
	Window      int          `json:"window"`
	FailureRate float64      `json:"failure_rate"`
	TimeoutRate float64      `json:"timeout_rate"`
}

// Eval grades the current window. Thresholds: ≥50% of recent tasks
// failing is Unhealthy (the server is spending its time producing
// nothing); ≥10% failing or ≥10% timing out is Degraded (grid points
// are being lost or abandoned often enough to matter); otherwise
// Healthy.
func (h *HealthTracker) Eval() HealthReport {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.next
	if h.filled {
		n = len(h.window)
	}
	rep := HealthReport{Status: Healthy, Window: n}
	if n == 0 {
		return rep
	}
	var failed, timedOut int
	for _, o := range h.window[:n] {
		switch o {
		case outcomeFailed:
			failed++
		case outcomeTimedOut:
			timedOut++
		}
	}
	rep.FailureRate = float64(failed+timedOut) / float64(n)
	rep.TimeoutRate = float64(timedOut) / float64(n)
	if n < h.minSamples {
		return rep
	}
	switch {
	case rep.FailureRate >= 0.5:
		rep.Status = Unhealthy
	case rep.FailureRate >= 0.1 || rep.TimeoutRate >= 0.1:
		rep.Status = Degraded
	}
	return rep
}
