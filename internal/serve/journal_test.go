package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onionbots/internal/experiment"
)

func sampleResults(t *testing.T, n int) []experiment.TaskResult {
	t.Helper()
	tasks := make([]experiment.Task, n)
	for i := range tasks {
		tasks[i] = experiment.Task{
			Label:      "serve-det/seed=" + string(rune('1'+i)),
			Experiment: "serve-det",
			Params:     experiment.Params{Quick: true, Seed: uint64(i + 1)},
		}
	}
	trs, err := (&experiment.Runner{Parallel: 1}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return trs
}

func writeJournal(t *testing.T, path string, trs []experiment.TaskResult) {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, tr := range trs {
		if err := j.Append(tr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	trs := sampleResults(t, 3)
	writeJournal(t, path, trs)
	replayed, torn, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean journal reported torn")
	}
	if len(replayed) != len(trs) {
		t.Fatalf("replayed %d records, want %d", len(replayed), len(trs))
	}
	for i := range trs {
		if replayed[i].Task.Label != trs[i].Task.Label {
			t.Fatalf("record %d label %q, want %q", i, replayed[i].Task.Label, trs[i].Task.Label)
		}
		if replayed[i].EffectiveSeed != trs[i].EffectiveSeed {
			t.Fatalf("record %d effective seed drifted", i)
		}
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	replayed, torn, err := ReplayJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || torn || len(replayed) != 0 {
		t.Fatalf("missing journal: got %d records, torn=%v, err=%v", len(replayed), torn, err)
	}
}

// A kill -9 mid-append leaves a truncated final line; replay discards
// exactly that record and resumes cleanly.
func TestJournalTornFinalRecordDiscarded(t *testing.T) {
	trs := sampleResults(t, 3)
	for _, cut := range []int{1, 7, 40} {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		writeJournal(t, path, trs)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if cut >= len(data) {
			t.Fatalf("cut %d exceeds journal size %d", cut, len(data))
		}
		if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		replayed, torn, err := ReplayJournal(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !torn {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if len(replayed) != len(trs)-1 {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(replayed), len(trs)-1)
		}
		for i := range replayed {
			if replayed[i].Task.Label != trs[i].Task.Label {
				t.Fatalf("cut %d: surviving record %d is %q", cut, i, replayed[i].Task.Label)
			}
		}
	}
}

// Garbage mid-file is corruption, not a torn tail: replay must fail
// loudly rather than silently dropping completed work.
func TestJournalMidFileCorruptionFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	trs := sampleResults(t, 2)
	writeJournal(t, path, trs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	corrupt := "{\"task\": GARBAGE\n" + lines[1]
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReplayJournal(path)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption err = %v, want loud failure", err)
	}
}

func TestJournalDuplicateLabelFailsLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	trs := sampleResults(t, 1)
	writeJournal(t, path, []experiment.TaskResult{trs[0], trs[0]})
	_, _, err := ReplayJournal(path)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate record err = %v, want loud failure", err)
	}
}

// A journaled failure round-trips as a failure: the Err field is
// reconstructed from its JSON mirror so aggregation renders the same
// error row a fresh run would.
func TestJournalReplaysErrorsAsErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	tasks := []experiment.Task{{Label: "serve-fail/x", Experiment: "serve-fail", Params: experiment.Params{Seed: 9}}}
	trs, err := (&experiment.Runner{}).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if trs[0].Err == nil {
		t.Fatal("serve-fail task did not fail")
	}
	writeJournal(t, path, trs)
	replayed, _, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if replayed[0].Err == nil || replayed[0].Err.Error() != trs[0].Error || replayed[0].Error != trs[0].Error {
		t.Fatalf("replayed failure lost its error: %+v", replayed[0])
	}
}
