// Package serve turns the batch sweep engine into a long-running
// simulation service: submit sweep specs as jobs over HTTP, stream
// per-task progress as NDJSON, and read results when they land. Every
// completed grid point is checkpointed to an fsync'd append-only
// journal before the server acknowledges it, so a kill -9 (or a
// graceful SIGTERM drain) costs at most the tasks in flight — the next
// server start replays the journal and reruns only the missing labels,
// and because every label runs on its own deterministic RNG substream,
// the resumed job's final document is byte-identical to an
// uninterrupted run. Admission control (token bucket + bounded queue,
// 429 with Retry-After), a graded /healthz (healthy / degraded /
// unhealthy from recent failure and timeout rates), and atomic-counter
// /metrics make it a production citizen rather than a CLI in a loop.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"time"
)

// Config parameterizes a Server. Zero values select the documented
// defaults.
type Config struct {
	// Addr is the listen address ("127.0.0.1:8080", ":8080"; ":0"
	// picks a free port, see Server.Addr).
	Addr string
	// JobsDir is the persistence root: one subdirectory per job holding
	// spec.json, journal.jsonl, state.json, and result.json.
	JobsDir string
	// Parallel is the per-job worker count (default 1).
	Parallel int
	// QueueDepth bounds jobs admitted but not yet finished (default 8);
	// submissions beyond it get 429 + Retry-After.
	QueueDepth int
	// SubmitBurst and SubmitPerSec shape the token-bucket admission
	// throttle (defaults: burst 8, 1 submission/second refill).
	SubmitBurst  float64
	SubmitPerSec float64
	// TaskTimeout, TaskRetries and TaskRetryBackoff configure per-task
	// resilience: a panicked or timed-out grid point is retried
	// TaskRetries times (backoff doubling from TaskRetryBackoff) before
	// its error row lands in the aggregate. Failure of one point never
	// fails the job.
	TaskTimeout      time.Duration
	TaskRetries      int
	TaskRetryBackoff time.Duration
	// MaxSpecBytes bounds a submitted spec (default 1 MiB).
	MaxSpecBytes int64
	// Logf receives operational log lines (default: stderr).
	Logf func(format string, args ...any)
}

// Server is the simulation-as-a-service front end.
type Server struct {
	cfg      Config
	store    *Store
	exec     *Executor
	metrics  *Metrics
	health   *HealthTracker
	bucket   *TokenBucket
	mux      *http.ServeMux
	shutdown chan struct{}

	ln net.Listener
}

// New opens the jobs directory, re-enqueues every job the previous
// process left unfinished, and returns a server ready to Run.
func New(cfg Config) (*Server, error) {
	if cfg.JobsDir == "" {
		return nil, fmt.Errorf("serve: JobsDir is required")
	}
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 8
	}
	if cfg.SubmitBurst <= 0 {
		cfg.SubmitBurst = 8
	}
	if cfg.SubmitPerSec <= 0 {
		cfg.SubmitPerSec = 1
	}
	if cfg.MaxSpecBytes <= 0 {
		cfg.MaxSpecBytes = 1 << 20
	}
	if cfg.Logf == nil {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "onionsim-serve: "+format+"\n", args...)
		}
	}
	store, err := OpenStore(cfg.JobsDir)
	if err != nil {
		return nil, err
	}
	metrics := &Metrics{}
	health := NewHealthTracker(0, 0)
	resumable := store.Resumable()
	exec := NewExecutor(cfg.QueueDepth+len(resumable), metrics, health, cfg.Logf)
	exec.Parallel = cfg.Parallel
	exec.TaskTimeout = cfg.TaskTimeout
	exec.TaskRetries = cfg.TaskRetries
	exec.TaskRetryBackoff = cfg.TaskRetryBackoff

	s := &Server{
		cfg:      cfg,
		store:    store,
		exec:     exec,
		metrics:  metrics,
		health:   health,
		bucket:   NewTokenBucket(cfg.SubmitBurst, cfg.SubmitPerSec),
		shutdown: make(chan struct{}),
	}
	for _, j := range resumable {
		if exec.Enqueue(j) {
			metrics.JobsResumed.Add(1)
			cfg.Logf("job %s: re-enqueued for resume", j.ID)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Addr returns the bound listen address once Run has started the
// listener — the way tests (and :0 users) learn the real port.
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Handler exposes the route table (httptest hook).
func (s *Server) Handler() http.Handler { return s.mux }

// Run serves until ctx is cancelled (the CLI wires SIGTERM/SIGINT into
// that), then shuts down gracefully: stop accepting connections, drain
// in-flight tasks into the checkpoint journal, park interrupted jobs as
// queued, and return nil so the process exits 0. Jobs still unfinished
// simply resume on the next start.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.exec.Start()
	srv := &http.Server{Handler: s.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	s.cfg.Logf("listening on %s (jobs dir %s, parallel %d)", s.Addr(), s.cfg.JobsDir, s.cfg.Parallel)

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	s.cfg.Logf("shutting down: draining in-flight tasks")
	close(s.shutdown) // unblocks live NDJSON streams
	s.exec.Shutdown() // drains + checkpoints, parks interrupted jobs
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	s.cfg.Logf("shutdown complete")
	return nil
}

// writeJSON emits one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// handleSubmit admits one sweep spec as a job: token bucket first, then
// queue capacity, then spec validation — both admission failures answer
// 429 with a Retry-After the client can follow blindly.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if ok, retryAfter := s.bucket.Take(); !ok {
		s.metrics.JobsRejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(retryAfter.Seconds()))))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: fmt.Sprintf("submission rate limited; retry in %s", retryAfter.Round(time.Millisecond))})
		return
	}
	if depth := s.metrics.QueueDepth.Load(); depth >= int64(s.cfg.QueueDepth) {
		s.metrics.JobsRejected.Add(1)
		w.Header().Set("Retry-After", "30")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: fmt.Sprintf("job queue saturated (%d queued)", depth)})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSpecBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("read spec: %v", err)})
		return
	}
	if int64(len(body)) > s.cfg.MaxSpecBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: fmt.Sprintf("spec exceeds %d bytes", s.cfg.MaxSpecBytes)})
		return
	}
	j, err := s.store.Create(body)
	if err != nil {
		// The jsonx-described message names the offending field and
		// line, so a typo'd grid file debugs itself from the 400 body.
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if !s.exec.Enqueue(j) {
		s.metrics.JobsRejected.Add(1)
		j.setState(JobFailed, "job queue saturated at admission")
		w.Header().Set("Retry-After", "30")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "job queue saturated"})
		return
	}
	s.metrics.JobsSubmitted.Add(1)
	s.cfg.Logf("job %s: submitted (%s, %d tasks)", j.ID, j.Spec.Name, j.Status().Total)
	writeJSON(w, http.StatusCreated, j.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.List()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: statuses})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown job %q", r.PathValue("id"))})
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

// handleStream replays the job's event history, then follows live
// events as NDJSON — one JSON object per line, flushed per event —
// until the job reaches a terminal state, the client goes away, or the
// server shuts down.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	history, ch, unsubscribe := j.Subscribe()
	defer unsubscribe()
	emit := func(ev Event) (terminal bool) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
		return ev.Type == "state" && ev.State.Terminal()
	}
	for _, ev := range history {
		if emit(ev) {
			return
		}
	}
	if j.State().Terminal() {
		// The job went terminal before (or while) we subscribed, but no
		// terminal event sat in the history — either the history
		// predates this process (a job loaded from disk) or the closing
		// events are still in our channel. Drain what is buffered, then
		// synthesize the closing state line if it never arrived.
		for {
			select {
			case ev, open := <-ch:
				if !open {
					return
				}
				if emit(ev) {
					return
				}
			default:
				emit(Event{Type: "state", State: j.State()})
				return
			}
		}
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // lagged subscriber, dropped
			}
			if emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			return
		}
	}
}

// handleResult serves the finished job's result document — the exact
// bytes an uninterrupted `onionsim -sweep <spec> -json` run prints.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := j.Status()
	if st.State != JobCompleted {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s is %s, result exists only for completed jobs", j.ID, st.State)})
		return
	}
	data, err := os.ReadFile(j.resultPath())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("read result: %v", err)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if !j.Cancel() {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job %s already %s", j.ID, j.State())})
		return
	}
	s.cfg.Logf("job %s: cancel requested", j.ID)
	writeJSON(w, http.StatusOK, j.Status())
}

// handleHealthz reports the graded health value object; load balancers
// get 503 only when Unhealthy.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := s.health.Eval()
	writeJSON(w, rep.Status.HTTPStatus(), rep)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}
