package serve

import (
	"fmt"
	"sync"
	"time"

	"onionbots/internal/experiment"
	"onionbots/internal/sim"
)

// Test-only experiments, registered in this test binary only (the
// experiment package's registry-completeness test runs in its own
// binary and never sees them).
//
//   - serve-det: deterministic output from the seed, with a small
//     wall-clock delay so shutdown tests can interrupt mid-sweep.
//   - serve-flaky: panics the first time each substream seed runs,
//     succeeds on retry — the transient-failure path.
//   - serve-fail: always errors — the error-row / health path.
//   - serve-gate: blocks until released — the cancellation path.
var (
	flakySeen sync.Map // seed → attempted once

	gateMu       sync.Mutex
	gateReleased chan struct{}
)

// testTaskDelay paces serve-det so a multi-task job is reliably
// interruptible; output stays a pure function of the seed.
const testTaskDelay = 10 * time.Millisecond

// gate returns the current gate channel.
func gate() chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	if gateReleased == nil {
		gateReleased = make(chan struct{})
	}
	return gateReleased
}

// releaseGate opens the gate and leaves it open, so gated tasks that
// start after the release (e.g. queued jobs draining during test
// cleanup) sail through instead of wedging the executor.
func releaseGate() {
	gateMu.Lock()
	defer gateMu.Unlock()
	if gateReleased == nil {
		gateReleased = make(chan struct{})
	}
	select {
	case <-gateReleased:
	default:
		close(gateReleased)
	}
}

// resetGate arms a fresh closed gate for a test that needs blocking
// tasks.
func resetGate() {
	gateMu.Lock()
	defer gateMu.Unlock()
	gateReleased = make(chan struct{})
}

func init() {
	experiment.Register(experiment.Definition{
		ID: "serve-det", Title: "serve test: deterministic",
		Run: func(p experiment.Params) ([]*experiment.Result, error) {
			time.Sleep(testTaskDelay)
			rng := sim.NewRNG(p.Seed)
			r := &experiment.Result{ID: "serve-det", Title: "serve test", XLabel: "i"}
			for i := 0; i < 5; i++ {
				r.AddPoint("y", float64(i), float64(rng.Uint64()%1000000))
			}
			r.AddNote("n=%d quick=%v", p.N, p.Quick)
			return []*experiment.Result{r}, nil
		},
	})
	experiment.Register(experiment.Definition{
		ID: "serve-flaky", Title: "serve test: panics once per substream",
		Run: func(p experiment.Params) ([]*experiment.Result, error) {
			if _, attempted := flakySeen.LoadOrStore(p.Seed, true); !attempted {
				panic(fmt.Sprintf("transient failure for seed %d", p.Seed))
			}
			r := &experiment.Result{ID: "serve-flaky", Title: "recovered"}
			r.AddPoint("ok", 0, float64(p.Seed%97))
			return []*experiment.Result{r}, nil
		},
	})
	experiment.Register(experiment.Definition{
		ID: "serve-fail", Title: "serve test: always fails",
		Run: func(p experiment.Params) ([]*experiment.Result, error) {
			return nil, fmt.Errorf("deliberate failure (seed %d)", p.Seed)
		},
	})
	experiment.Register(experiment.Definition{
		ID: "serve-gate", Title: "serve test: blocks until released",
		Run: func(p experiment.Params) ([]*experiment.Result, error) {
			<-gate()
			r := &experiment.Result{ID: "serve-gate", Title: "released"}
			r.AddPoint("ok", 0, 1)
			return []*experiment.Result{r}, nil
		},
	})
}

// batchDocument renders the byte-exact document an uninterrupted
// `onionsim -sweep <spec> -json` run prints (plus the trailing newline
// the CLI's Println adds) — the golden value every resume path must
// reproduce.
func batchDocument(specBytes []byte, parallel int) ([]byte, error) {
	spec, err := experiment.ParseSweep(specBytes)
	if err != nil {
		return nil, err
	}
	tasks, err := spec.Tasks()
	if err != nil {
		return nil, err
	}
	trs, err := (&experiment.Runner{Parallel: parallel}).Run(tasks)
	if err != nil {
		return nil, err
	}
	doc, err := experiment.SweepJSON(spec, trs, spec.Aggregate(trs))
	if err != nil {
		return nil, err
	}
	return append(doc, '\n'), nil
}
