package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a Server over a temp jobs dir, starts its
// executor, and fronts it with httptest. The returned base URL has no
// trailing slash.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{
		JobsDir:      t.TempDir(),
		Parallel:     2,
		QueueDepth:   4,
		SubmitBurst:  1000,
		SubmitPerSec: 1000,
		Logf:         t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.exec.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		close(s.shutdown)
		s.exec.Shutdown()
	})
	return s, ts.URL
}

func submit(t *testing.T, base, spec string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("submit response %q: %v", body, err)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return st, resp
}

func waitState(t *testing.T, base, id string, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (%s), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// Submit → stream → result: the end-to-end happy path, with the result
// byte-identical to the batch document.
func TestServerSubmitStreamResult(t *testing.T) {
	_, base := newTestServer(t, nil)
	st, resp := submit(t, base, resumeSpec)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	if st.Total != 6 || st.State != JobQueued {
		t.Fatalf("submit status = %+v", st)
	}

	// Stream until terminal; count live task events.
	streamResp, err := http.Get(base + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	taskEvents, terminal := 0, JobState("")
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "task":
			taskEvents++
			if ev.Replayed {
				t.Fatalf("fresh job emitted replayed event %+v", ev)
			}
		case "state":
			if ev.State.Terminal() {
				terminal = ev.State
			}
		}
	}
	if terminal != JobCompleted {
		t.Fatalf("stream ended at %q, want completed", terminal)
	}
	if taskEvents != 6 {
		t.Fatalf("stream carried %d task events, want 6", taskEvents)
	}

	want, err := batchDocument([]byte(resumeSpec), 1)
	if err != nil {
		t.Fatal(err)
	}
	resResp, err := http.Get(base + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resResp.Body.Close()
	got, _ := io.ReadAll(resResp.Body)
	if !bytes.Equal(got, want) {
		t.Fatalf("served result differs from batch document (%d vs %d bytes)", len(got), len(want))
	}
}

// A malformed spec names its own bug in the 400 body: offending field
// and line, courtesy of jsonx.
func TestServerRejectsMalformedSpecWithLocation(t *testing.T) {
	_, base := newTestServer(t, nil)
	_, resp := submit(t, base, "{\n  \"experiments\": [\"serve-det\"],\n  \"ns\": \"lots\"\n}")
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), `field \"ns\"`) || !strings.Contains(string(body), "line 3") {
		t.Fatalf("400 body does not locate the bug: %s", body)
	}
}

// Admission control: an exhausted token bucket answers 429 with a
// usable Retry-After.
func TestServerRateLimitsSubmissions(t *testing.T) {
	_, base := newTestServer(t, func(cfg *Config) {
		cfg.SubmitBurst = 1
		cfg.SubmitPerSec = 0.01 // one token every 100 s
	})
	if _, resp := submit(t, base, resumeSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	_, resp := submit(t, base, resumeSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// Queue saturation: with the single execution slot blocked and the
// queue full, further submissions get 429 + Retry-After.
func TestServerRejectsWhenQueueSaturated(t *testing.T) {
	resetGate()
	defer releaseGate()
	gateSpec := `{"name":"gated","experiments":["serve-gate"],"seeds":[1]}`
	_, base := newTestServer(t, func(cfg *Config) { cfg.QueueDepth = 1 })
	st, resp := submit(t, base, gateSpec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	waitState(t, base, st.ID, JobRunning)
	if _, resp := submit(t, base, gateSpec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}
	_, resp = submit(t, base, gateSpec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// Cancellation: a gated running job cancels, its state persists, and a
// second cancel is a 409.
func TestServerCancel(t *testing.T) {
	resetGate()
	defer releaseGate()
	gateSpec := `{"name":"gated-cancel","experiments":["serve-gate"],"seeds":[1,2]}`
	s, base := newTestServer(t, nil)
	st, resp := submit(t, base, gateSpec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, base, st.ID, JobRunning)
	cresp, err := http.Post(base+"/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", cresp.StatusCode)
	}
	releaseGate() // free the in-flight task so the drain completes
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, _ := s.store.Get(st.ID)
		if j.State() == JobCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", j.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cresp2, err := http.Post(base+"/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp2.Body.Close()
	if cresp2.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: %d, want 409", cresp2.StatusCode)
	}
	rresp, err := http.Get(base + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("result of cancelled job: %d, want 409", rresp.StatusCode)
	}
}

// Health grading: a fresh server is healthy; a sweep of failing tasks
// drives it unhealthy (503 on the probe); metrics expose the damage.
func TestServerHealthAndMetrics(t *testing.T) {
	s, base := newTestServer(t, nil)
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var rep HealthReport
	json.NewDecoder(hresp.Body).Decode(&rep)
	hresp.Body.Close()
	if hresp.StatusCode != 200 || rep.Status != Healthy {
		t.Fatalf("fresh server: %d %+v", hresp.StatusCode, rep)
	}

	failSpec := `{"name":"all-fail","experiments":["serve-fail"],"seeds":[1,2,3,4,5,6]}`
	st, resp := submit(t, base, failSpec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitState(t, base, st.ID, JobCompleted)

	hresp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	rep = HealthReport{}
	json.NewDecoder(hresp.Body).Decode(&rep)
	hresp.Body.Close()
	if hresp.StatusCode != 503 || rep.Status != Unhealthy {
		t.Fatalf("after all-fail sweep: %d %+v, want 503 unhealthy", hresp.StatusCode, rep)
	}
	if rep.FailureRate != 1 {
		t.Fatalf("failure rate %g, want 1", rep.FailureRate)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	json.NewDecoder(mresp.Body).Decode(&snap)
	mresp.Body.Close()
	if snap.TasksRun != 6 || snap.TasksFailed != 6 {
		t.Fatalf("metrics = %+v, want 6 run / 6 failed", snap)
	}
	if snap.JobsSubmitted != 1 || snap.JobsCompleted != 1 {
		t.Fatalf("metrics = %+v, want 1 submitted / 1 completed", snap)
	}
	if len(snap.TaskLatency) != 1 || snap.TaskLatency[0].Experiment != "serve-fail" || snap.TaskLatency[0].Count != 6 {
		t.Fatalf("latency rows = %+v", snap.TaskLatency)
	}
	_ = s
}

// Unknown job IDs are 404s everywhere.
func TestServerUnknownJob(t *testing.T) {
	_, base := newTestServer(t, nil)
	for _, path := range []string{"/jobs/job-999999", "/jobs/job-999999/stream", "/jobs/job-999999/result"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
}

// The jobs listing carries every job in creation order.
func TestServerListJobs(t *testing.T) {
	_, base := newTestServer(t, nil)
	var ids []string
	for i := 0; i < 3; i++ {
		spec := fmt.Sprintf(`{"name":"list-%d","experiments":["serve-det"],"seeds":[%d]}`, i, i+1)
		st, resp := submit(t, base, spec)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	resp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 3 {
		t.Fatalf("listing has %d jobs, want 3", len(listing.Jobs))
	}
	for i, st := range listing.Jobs {
		if st.ID != ids[i] {
			t.Fatalf("listing[%d] = %s, want %s", i, st.ID, ids[i])
		}
	}
}
