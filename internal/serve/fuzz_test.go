package serve

import (
	"testing"
)

// FuzzReplayJournal throws arbitrary bytes at the crash-recovery path
// that normally only ever sees this process's own appends. The replay
// contract under fuzz: never panic, and any accepted journal yields
// records with unique non-empty labels — the resume logic keys on
// labels, so a duplicate or blank one slipping through would corrupt
// the merged result set silently.
func FuzzReplayJournal(f *testing.F) {
	f.Add([]byte(`{"task":{"label":"fig6/seed=1","experiment":"fig6","params":{"quick":true,"seed":1}},"effective_seed":42}` + "\n"))
	f.Add([]byte(`{"task":{"label":"a","experiment":"fig6","params":{"quick":false,"seed":0}},"effective_seed":1}` + "\n" +
		`{"task":{"label":"b","experiment":"fig6","params":{"quick":false,"seed":0}},"effective_seed":2,"error":"boom"}` + "\n"))
	// A torn tail: the crash landed mid-append.
	f.Add([]byte(`{"task":{"label":"a","experiment":"fig6","params":{"quick":false,"seed":0}},"effective_seed":1}` + "\n" +
		`{"task":{"label":"b","exper`))
	// Garbage mid-file: corruption, must fail loudly.
	f.Add([]byte("garbage\n" + `{"task":{"label":"a","experiment":"fig6","params":{"quick":false,"seed":0}},"effective_seed":1}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		results, torn, err := replayJournalData(data)
		if err != nil {
			return
		}
		seen := make(map[string]struct{}, len(results))
		for _, tr := range results {
			if tr.Task.Label == "" {
				t.Fatalf("replay accepted a record with no label (torn=%v)\ninput: %q", torn, data)
			}
			if _, dup := seen[tr.Task.Label]; dup {
				t.Fatalf("replay accepted duplicate label %q\ninput: %q", tr.Task.Label, data)
			}
			seen[tr.Task.Label] = struct{}{}
			if tr.Error != "" && tr.Err == nil {
				t.Fatalf("journaled failure %q not reconstructed into Err", tr.Error)
			}
		}
	})
}
