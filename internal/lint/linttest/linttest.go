// Package linttest runs a lint.Analyzer against fixture packages under
// a testdata/src tree and checks its diagnostics against `// want`
// comments — the same contract as x/tools' analysistest, rebuilt on the
// stdlib so the module keeps zero external dependencies.
//
// A fixture file marks each line expected to produce a diagnostic:
//
//	rng := rand.New(rand.NewSource(1)) // want `raw rand\.New`
//
// The backquoted string is a regular expression matched against the
// diagnostic message; several `// want` patterns on one line expect that
// many diagnostics. Lines with no marker must produce none. Directive
// errors from the allow machinery (pseudo-analyzer "onionlint") take
// part like any other diagnostic, so fixtures can assert suppression
// and unused-allow behaviour end to end.
package linttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"onionbots/internal/lint"
)

var wantRE = regexp.MustCompile("// want (.*)$")
var patRE = regexp.MustCompile("`([^`]*)`")

// Run loads testdata/src/<importPath> relative to dir and checks
// analyzer's diagnostics (plus allow-directive diagnostics) against the
// fixture's want comments.
func Run(t *testing.T, dir string, analyzer *lint.Analyzer, importPath string) {
	t.Helper()
	srcRoot := filepath.Join(dir, "testdata", "src")
	pkg, err := lint.LoadDir(srcRoot, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{analyzer})

	wants, err := collectWants(pkg.Fset, pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	unmatched := map[key][]lint.Diagnostic{}
	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		unmatched[k] = append(unmatched[k], d)
	}
	for _, w := range wants {
		k := key{w.file, w.line}
		found := -1
		for i, d := range unmatched[k] {
			if w.re.MatchString(d.Message) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			continue
		}
		unmatched[k] = append(unmatched[k][:found], unmatched[k][found+1:]...)
	}
	for _, ds := range unmatched {
		for _, d := range ds {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses the fixture files' comments for want markers.
func collectWants(fset *token.FileSet, dir string) ([]want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pats := patRE.FindAllStringSubmatch(m[1], -1)
				if len(pats) == 0 {
					return nil, fmt.Errorf("%s: want comment without backquoted pattern: %s", path, c.Text)
				}
				pos := fset.Position(c.Pos())
				for _, p := range pats {
					re, err := regexp.Compile(p[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", path, pos.Line, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}
