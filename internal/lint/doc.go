// Package lint is onionlint: a static-analysis suite that turns this
// repository's determinism contract into build-breaking diagnostics.
//
// Every figure, sweep, and scenario rests on two promises — byte-identical
// output at any -parallel value, and DRBG-exact key derivation across the
// identity pool and churn substreams. Both have been broken before, and
// both times the violation shipped and was found by accident at diff time:
//
//   - PR 1 fixed a map-iteration-order leak in Graph.Snapshot, where a
//     `for … range` over the adjacency map appended neighbours to the
//     snapshot slice in whatever order the runtime walked the buckets.
//   - PR 4 fixed an X25519 keygen drift: the stdlib's GenerateKey inserts
//     a randomized zero-or-one-byte read (randutil.MaybeReadByte) before
//     consuming the caller's reader, shifting every byte a seeded DRBG
//     hands out afterwards on a per-process coin flip.
//
// The four analyzers in this package ban those bug classes at compile
// time:
//
//   - detclock: no wall-clock (time.Now, time.Since, time.Sleep, …) in
//     simulation-facing packages. Simulated time comes from the scheduler.
//   - detrand: no global math/rand state, no crypto/rand, and no stdlib
//     key generation outside botcrypto's byte-exact wrappers — the
//     MaybeReadByte bug class, banned forever.
//   - maporder: no map iteration feeding an order-sensitive sink (slice
//     append, writer/builder output, float accumulation) without sorting
//     — the Graph.Snapshot bug class.
//   - substream: no ad-hoc RNG construction or seed arithmetic outside
//     internal/sim — derive streams with sim.NewSubstream/SubstreamSeed.
//
// Findings that are intentional (the experiment runner's wall-clock
// progress timing, pre-substream seed schedules pinned by archived runs)
// are suppressed with an explicit, audited escape hatch:
//
//	//onionlint:allow <analyzer> -- <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory; a directive that suppresses nothing is itself an error,
// and docs/LINT_ALLOWLIST.txt must mirror the set of live directives (a
// test enforces both), so allows cannot rot silently.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, testdata fixtures with `// want` comments) but is built on
// the standard library's go/ast + go/types only, so the module keeps zero
// external dependencies. Should x/tools become available, each Analyzer
// here maps 1:1 onto an analysis.Analyzer.
package lint
