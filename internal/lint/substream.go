package lint

import (
	"go/ast"
	"strings"
)

// Substream enforces that random streams are derived through
// sim.NewSubstream / sim.SubstreamSeed rather than ad hoc. Two rules,
// both scoped to code outside internal/sim (which owns the primitives):
//
//   - no raw math/rand construction (rand.New, rand.NewPCG, …): a
//     generator that does not descend from the run's root seed via a
//     labelled substream silently couples output to scheduling order.
//   - no seed arithmetic fed to sim.NewRNG/NewSubstream/SubstreamSeed:
//     expressions like NewRNG(seed+7) or NewRNG(seed+n*31+trial) are
//     exactly the collision-prone hand-rolled derivations SubstreamSeed
//     (FNV-1a label hash + splitmix64 finalizer) exists to replace.
//     Structurally similar inputs land on correlated streams, and two
//     call sites can collide on the same derived seed.
var Substream = &Analyzer{
	Name: "substream",
	Doc: "forbid raw math/rand construction and ad-hoc seed arithmetic " +
		"outside internal/sim; derive streams with sim.NewSubstream or " +
		"sim.SubstreamSeed(root, label)",
	Applies: func(importPath string) bool {
		seg := lastSegment(importPath)
		return seg != "sim" && !simExemptPackages[seg]
	},
	Run: runSubstream,
}

// simExemptPackages may construct generators directly: botcrypto owns
// DRBGs (crypto-grade streams are not sim substreams).
var simExemptPackages = map[string]bool{"botcrypto": true, "legacy": true}

// seedTakingFuncs are the sim entry points whose first argument is a
// root or derived seed.
var seedTakingFuncs = map[string]bool{
	"NewRNG":        true,
	"NewSubstream":  true,
	"SubstreamSeed": true,
}

func runSubstream(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				path, name, ok := pkgLevelRef(info, e.Fun)
				if !ok {
					return true
				}
				if lastSegment(path) == "sim" && seedTakingFuncs[name] && len(e.Args) > 0 {
					if arith := findArith(e.Args[0]); arith != nil {
						pass.Reportf(arith.Pos(), "ad-hoc seed arithmetic fed to sim.%s; derive with sim.SubstreamSeed(root, label) so streams cannot collide or correlate", name)
						return false
					}
				}
				return true
			case ast.Expr:
				path, name, ok := pkgLevelRef(info, e)
				if !ok {
					return true
				}
				if (path == "math/rand" || path == "math/rand/v2") && randConstructors[name] {
					pass.Reportf(e.Pos(), "raw %s.%s outside internal/sim bypasses the substream contract; use sim.NewSubstream(root, label)", strings.TrimPrefix(path, "math/"), name)
					return false
				}
			}
			return true
		})
	}
	return nil
}

// findArith returns the first binary arithmetic expression inside e
// (looking through parens and conversions), or nil.
func findArith(e ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if b, ok := n.(*ast.BinaryExpr); ok {
			found = b
			return false
		}
		return true
	})
	return found
}
