package lint_test

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"onionbots/internal/lint"
)

// allowlistPath is the audited inventory of every live
// //onionlint:allow directive, relative to the module root. Each line is
//
//	<file> <analyzer> <count>
//
// sorted by file then analyzer. The file exists so that suppressions
// show up in review as a diff to a single ledger; this test fails when
// the ledger and the tree disagree in either direction.
const allowlistPath = "docs/LINT_ALLOWLIST.txt"

var directiveRE = regexp.MustCompile(`^` + regexp.QuoteMeta(lint.DirectivePrefix) + `[ \t]+([^ \t]+)[ \t]+--[ \t]`)

// TestAllowlistInSync walks the tree for allow directives (fixtures
// under testdata excluded — those exercise the machinery) and compares
// the inventory against docs/LINT_ALLOWLIST.txt. Set
// LINT_ALLOWLIST_UPDATE=1 to rewrite the ledger from the tree.
func TestAllowlistInSync(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	got, err := scanDirectives(root)
	if err != nil {
		t.Fatal(err)
	}
	rendered := renderAllowlist(got)

	path := filepath.Join(root, allowlistPath)
	if os.Getenv("LINT_ALLOWLIST_UPDATE") == "1" {
		if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d entries)", allowlistPath, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v\nrun with LINT_ALLOWLIST_UPDATE=1 to create the ledger", err)
	}
	if string(want) != rendered {
		t.Errorf("%s is out of sync with the tree's //onionlint:allow directives.\n--- ledger ---\n%s--- tree ---\n%s"+
			"Run: LINT_ALLOWLIST_UPDATE=1 go test ./internal/lint -run TestAllowlistInSync",
			allowlistPath, want, rendered)
	}
}

// scanDirectives returns "relpath analyzer" → count for every directive
// in tracked Go source, skipping testdata fixtures. Files are parsed so
// that only real comments count — directive grammar quoted inside doc
// comments or string literals does not.
func scanDirectives(root string) (map[string]int, error) {
	counts := map[string]int{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == "bin" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := directiveRE.FindStringSubmatch(c.Text); m != nil {
					counts[filepath.ToSlash(rel)+" "+m[1]]++
				}
			}
		}
		return nil
	})
	return counts, err
}

func renderAllowlist(counts map[string]int) string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# Audited //onionlint:allow directives: <file> <analyzer> <count>.\n")
	b.WriteString("# Regenerate: LINT_ALLOWLIST_UPDATE=1 go test ./internal/lint -run TestAllowlistInSync\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, counts[k])
	}
	return b.String()
}
