// Package botcrypto is a fixture stand-in for the real
// onionbots/internal/botcrypto: detrand recognizes its DRBG type as a
// byte-exact reader.
package botcrypto

// DRBG is a deterministic byte stream.
type DRBG struct{ ctr byte }

// NewDRBG seeds a stream (the fixture ignores the seed).
func NewDRBG(seed []byte) *DRBG { return &DRBG{ctr: byte(len(seed))} }

// Read fills p deterministically.
func (d *DRBG) Read(p []byte) (int, error) {
	for i := range p {
		d.ctr++
		p[i] = d.ctr
	}
	return len(p), nil
}
