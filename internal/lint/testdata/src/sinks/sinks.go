// Package sinks is a maporder fixture dependency: Record is sink-shaped
// by name, exercising cross-package sink detection.
package sinks

// Record pretends to log its argument somewhere order-sensitive.
func Record(string) {}

// Lookup is not sink-shaped; calls to it inside a map range are fine.
func Lookup(string) int { return 0 }
