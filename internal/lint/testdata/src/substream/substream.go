// Package substream is the substream fixture: raw generator
// construction and ad-hoc seed arithmetic outside internal/sim.
package substream

import (
	"math/rand"
	randv2 "math/rand/v2"

	"sim"
)

func rawV1() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `raw rand\.New outside internal/sim` `raw rand\.NewSource outside internal/sim`
}

func rawV2() *randv2.PCG {
	return randv2.NewPCG(1, 2) // want `raw rand/v2\.NewPCG outside internal/sim`
}

func seedOffset(seed uint64) *sim.RNG {
	return sim.NewRNG(seed + 7) // want `ad-hoc seed arithmetic fed to sim\.NewRNG`
}

func seedMix(seed uint64, n, trial int) *sim.RNG {
	return sim.NewRNG(seed + uint64(n)*31 + uint64(trial)) // want `ad-hoc seed arithmetic fed to sim\.NewRNG`
}

func seedXor(seed uint64) uint64 {
	return sim.SubstreamSeed(seed^3, "label") // want `ad-hoc seed arithmetic fed to sim\.SubstreamSeed`
}

func derivedRootForSubstream(seed uint64) *sim.RNG {
	return sim.NewSubstream(seed*2, "label") // want `ad-hoc seed arithmetic fed to sim\.NewSubstream`
}

// The blessed derivations: a plain root into NewRNG, labels for
// everything else. Conversions alone are not arithmetic.
func proper(seed uint64, trial int) {
	_ = sim.NewRNG(seed)
	_ = sim.NewRNG(uint64(trial))
	_ = sim.NewRNG(42)
	_ = sim.NewSubstream(seed, "experiment/trial=1")
	_ = sim.NewSubstream(sim.SubstreamSeed(seed, "parent"), "child")
}

func allowed(seed uint64) *sim.RNG {
	//onionlint:allow substream -- fixture: pinned legacy seed schedule
	return sim.NewRNG(seed + 1)
}
