// Package sim is a fixture stand-in for onionbots/internal/sim: the one
// package allowed to construct math/rand generators directly.
package sim

import "math/rand/v2"

// RNG mirrors the real substream handle.
type RNG struct{ r *rand.Rand }

// NewRNG builds a stream from a root or derived seed. Inside sim, raw
// construction is the whole point; the substream analyzer must stay
// silent on this file.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, 1))}
}

// SubstreamSeed derives a child seed from (root, label).
func SubstreamSeed(root uint64, label string) uint64 {
	h := root
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 0x100000001b3
	}
	return h
}

// NewSubstream returns NewRNG(SubstreamSeed(root, label)).
func NewSubstream(root uint64, label string) *RNG {
	return NewRNG(SubstreamSeed(root, label))
}
