// Package randmisuse is the detrand fixture: global math/rand state,
// live OS entropy, and stdlib keygen outside botcrypto.
package randmisuse

import (
	"crypto/ecdh"
	"crypto/ed25519"
	cryptorand "crypto/rand"
	"crypto/rsa"
	"io"
	"math/rand"
	randv2 "math/rand/v2"

	"botcrypto"
)

func globalV1() int {
	return rand.Intn(6) // want `global math/rand state \(rand\.Intn\)`
}

func globalV2() int {
	return randv2.IntN(6) // want `global math/rand state \(rand/v2\.IntN\)`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand state \(rand\.Shuffle\)`
}

// Constructors build local generators: placement is the substream
// analyzer's concern, so detrand stays silent here.
func constructorsAreFine() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func osEntropy(p []byte) {
	cryptorand.Read(p) // want `crypto/rand\.Read is live OS entropy`
}

func osReader() io.Reader {
	return cryptorand.Reader // want `crypto/rand\.Reader is live OS entropy`
}

func keygenLive() {
	ed25519.GenerateKey(cryptorand.Reader) // want `ed25519\.GenerateKey fed a live reader` `crypto/rand\.Reader is live OS entropy`
}

func keygenNil() {
	ed25519.GenerateKey(nil) // want `ed25519\.GenerateKey fed a live reader`
}

func keygenOpaque(r io.Reader) {
	ed25519.GenerateKey(r) // want `ed25519\.GenerateKey fed a live reader`
}

// A statically-proven DRBG reader is byte-exact: allowed.
func keygenDRBG() {
	ed25519.GenerateKey(botcrypto.NewDRBG([]byte("seed")))
}

func keygenDRBGVar(d *botcrypto.DRBG) {
	ed25519.GenerateKey(d)
}

func keygenRSA(r io.Reader) {
	rsa.GenerateKey(r, 512) // want `rsa\.GenerateKey consumes a randomized extra byte`
}

func keygenECDH(r io.Reader) {
	ecdh.X25519().GenerateKey(r) // want `ecdh GenerateKey consumes a randomized extra byte`
}

func allowedKeygen(r io.Reader) {
	//onionlint:allow detrand -- fixture: legitimate live-entropy site
	ed25519.GenerateKey(r)
}
