// Package plainpkg is outside the simulation-facing set: detclock must
// stay silent here even though it reads the wall clock.
package plainpkg

import "time"

// Stamp reads the host clock, legitimately.
func Stamp() time.Time { return time.Now() }
