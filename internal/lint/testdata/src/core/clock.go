// Package core is a detclock fixture: its name puts it in the
// simulation-facing set, so wall-clock reads must be flagged.
package core

import "time"

func readsClock() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}

func sleeps() {
	time.Sleep(time.Second) // want `wall-clock time\.Sleep`
}

func waits() <-chan time.Time {
	return time.After(time.Minute) // want `wall-clock time\.After`
}

func timers() *time.Timer {
	return time.NewTimer(time.Second) // want `wall-clock time\.NewTimer`
}

func measures(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock time\.Since`
}

// Durations, formatting, and construction from parts are fine: only
// reading or waiting on the host clock is banned.
func durationsAreFine(d time.Duration) time.Duration { return d * 2 }

func formattingIsFine(t time.Time) string { return t.Format(time.RFC3339) }

func allowedAbove() time.Time {
	//onionlint:allow detclock -- fixture: suppression via a directive on the line above
	return time.Now()
}

func allowedTrailing() {
	time.Sleep(time.Millisecond) //onionlint:allow detclock -- fixture: suppression via a trailing directive
}

//onionlint:allow detclock -- fixture: stale directive, nothing below to suppress // want `unused onionlint:allow directive for detclock`
func cleanButAnnotated() {}

//onionlint:allow detclock missing the separator // want `malformed directive`
func malformedDirective() {}

//onionlint:allow gofancy -- no such analyzer // want `unknown analyzer gofancy`
func unknownAnalyzer() {}
