// Package mapsort is the maporder fixture: map iteration feeding
// order-sensitive sinks, with and without the saving sort.
package mapsort

import (
	"fmt"
	"sort"
	"strings"

	"sinks"
)

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `order-sensitive sink \(append to keys`
		keys = append(keys, k)
	}
	return keys
}

// The collect-then-sort idiom: clean.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// A slices.Sort* call also counts.
func collectThenSortFunc(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.SliceStable(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// A local sort helper (sortInts, sortFloats, …) counts as a sort.
func localSortHelper(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sortInts(ks)
	return ks
}

func sortInts(xs []int) { sort.Ints(xs) }

func builderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `order-sensitive sink \(call to method WriteString`
		b.WriteString(k)
	}
	return b.String()
}

func printing(m map[string]int) {
	for k, v := range m { // want `order-sensitive sink \(call to fmt\.Println`
		fmt.Println(k, v)
	}
}

// Cross-package: sinks.Record is sink-shaped by name.
func crossPackageSink(m map[string]int) {
	for k := range m { // want `order-sensitive sink \(call to sinks\.Record`
		sinks.Record(k)
	}
}

// Non-sink cross-package calls are fine.
func crossPackagePure(m map[string]int) int {
	total := 0
	for k := range m {
		total += sinks.Lookup(k)
	}
	return total
}

// Keyed writes commute: order-independent.
func keyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Integer accumulation is exact under reordering.
func intSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Float addition does not associate: accumulation order leaks.
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `order-sensitive sink \(float accumulation into sum`
		sum += v
	}
	return sum
}

// Keyed float accumulation commutes per key: clean.
func keyedFloatSum(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// Cursor writes are appends in disguise: the original Graph.Snapshot
// bug filled CSR rows this way.
func cursorWrite(m map[int]int, out []int) {
	cur := 0
	for k := range m { // want `order-sensitive sink \(write to out at a loop-independent index`
		out[cur] = k
		cur++
	}
}

// …but a cursor-filled row that is sorted afterwards is clean, exactly
// like collect-then-sort.
func cursorWriteThenSort(m map[int]int, out []int) {
	cur := 0
	for k := range m {
		out[cur] = k
		cur++
	}
	sortInts(out)
}

// Keyed slice writes commute (each key hits its own slot).
func keyedSliceWrite(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v
	}
}

// Stamping by range value commutes too: every iteration writes the
// same generation.
func stampByValue(m map[int][]int, stamp []bool) {
	for _, vs := range m {
		for _, v := range vs {
			stamp[v] = true
		}
	}
}

func sendsOnChannel(m map[string]int, ch chan<- string) {
	for k := range m { // want `order-sensitive sink \(channel send`
		ch <- k
	}
}

func allowed(m map[string]int) []string {
	var keys []string
	//onionlint:allow maporder -- fixture: consumer tolerates arbitrary order
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
