package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand bans the entropy sources that have broken (or would break)
// DRBG-exact derivation:
//
//   - global math/rand state (rand.Intn, rand.Shuffle, …, in v1 and v2):
//     process-global streams make output depend on everything else that
//     consumed them. Constructors (rand.New, rand.NewPCG, …) are
//     substream's concern, not detrand's.
//   - crypto/rand (Reader, Read, Int, Prime, Text): live OS entropy by
//     definition; all key material must flow from seeded DRBGs.
//   - stdlib key generation outside botcrypto: rsa/ecdsa/ecdh
//     GenerateKey call randutil.MaybeReadByte, which consumes a
//     coin-flip byte from the caller's reader — the PR 4 bug class; even
//     a DRBG argument drifts. ed25519.GenerateKey reads byte-exactly and
//     is allowed iff its reader is statically a *botcrypto.DRBG.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand state, crypto/rand, and stdlib key " +
		"generation outside botcrypto's byte-exact wrappers (the " +
		"randutil.MaybeReadByte bug class)",
	Applies: func(importPath string) bool {
		// botcrypto (and its legacy subpackage) is the one place
		// allowed to touch stdlib keygen: it owns the byte-exact
		// wrappers and the deliberate weak-crypto reproductions.
		return !strings.Contains(importPath, "botcrypto")
	},
	Run: runDetRand,
}

// randConstructors are the math/rand entry points that build a local
// generator rather than touching global state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// maybeReadByteFuncs generate keys through randutil.MaybeReadByte: the
// stdlib randomizes whether one byte is consumed from the reader before
// keygen, so no reader — DRBG or not — yields stable keys.
var maybeReadByteFuncs = map[string]bool{
	"crypto/rsa.GenerateKey":           true,
	"crypto/rsa.GenerateMultiPrimeKey": true,
	"crypto/ecdsa.GenerateKey":         true,
	"crypto/dsa.GenerateKey":           true,
	"crypto/dsa.GenerateParameters":    true,
}

func runDetRand(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			// Method form: (ecdh.Curve).GenerateKey — MaybeReadByte class.
			if recvPkg, name, ok := methodRef(info, e); ok {
				if recvPkg == "crypto/ecdh" && name == "GenerateKey" {
					pass.Reportf(e.Pos(), "ecdh GenerateKey consumes a randomized extra byte (randutil.MaybeReadByte) and drifts even on a DRBG; use botcrypto.NewEncryptionKeyPair")
					return false
				}
				return true
			}
			path, name, ok := pkgLevelRef(info, e)
			if !ok {
				return true
			}
			switch {
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				pass.Reportf(e.Pos(), "global math/rand state (%s.%s) breaks seeded determinism; draw from a sim.RNG substream", strings.TrimPrefix(path, "math/"), name)
				return false
			case path == "crypto/rand":
				pass.Reportf(e.Pos(), "crypto/rand.%s is live OS entropy; derive bytes from a seeded botcrypto.DRBG", name)
				return false
			case maybeReadByteFuncs[path+"."+name]:
				pass.Reportf(e.Pos(), "%s.%s consumes a randomized extra byte (randutil.MaybeReadByte) and drifts even on a DRBG; wrap it in botcrypto", lastSegment(path), name)
				return false
			case path == "crypto/ed25519" && name == "GenerateKey":
				if call := enclosingCall(info, e, f); call != nil {
					if len(call.Args) == 1 && isDRBG(info.Types[call.Args[0]].Type) {
						return false // byte-exact reader, statically proven
					}
					pass.Reportf(e.Pos(), "ed25519.GenerateKey fed a live reader; pass a *botcrypto.DRBG (or derive via botcrypto wrappers)")
					return false
				}
				pass.Reportf(e.Pos(), "ed25519.GenerateKey used as a value cannot be proven DRBG-fed; wrap it in botcrypto")
				return false
			}
			return true
		})
	}
	return nil
}

// enclosingCall returns the CallExpr whose Fun is exactly e, if any.
func enclosingCall(info *types.Info, e ast.Expr, f *ast.File) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == e {
			found = call
			return false
		}
		return true
	})
	return found
}

// isDRBG reports whether t is (a pointer to) botcrypto's DRBG type.
func isDRBG(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "DRBG" && obj.Pkg() != nil && lastSegment(obj.Pkg().Path()) == "botcrypto"
}
