package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for … := range m` over a map when the loop body feeds
// an order-sensitive sink — the Graph.Snapshot bug class, where
// neighbours were appended to the snapshot slice in runtime bucket
// order. Sinks:
//
//   - append whose result lands in a variable declared outside the loop
//   - a send on a channel
//   - += accumulation into an outer float (addition does not associate)
//   - a call to an output-shaped function or method: fmt printing,
//     Write*/WriteString on builders/buffers/writers, or — in any
//     package — a callee named like a recorder (Write*, Print*, Emit*,
//     Record*, Append*, Push*, Log*)
//
// The collect-then-sort idiom is recognized: a loop whose only sinks are
// appends is clean if every appended slice is passed to sort.* or
// slices.Sort* later in the same function. Anything else needs either a
// sort or an //onionlint:allow maporder directive with a reason.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration feeding an order-sensitive sink (slice append, " +
		"writer/recorder call, channel send, float accumulation) without a " +
		"subsequent sort — map order is randomized per run",
	Run: runMapOrder,
}

// sinkNamePrefixes marks callee names that record or emit, wherever they
// are declared — this is what catches cross-package sinks like
// trace.Record(k) or w.WriteString(k).
var sinkNamePrefixes = []string{
	"Write", "Print", "Fprint", "Emit", "Record", "Append", "Push", "Log",
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk function bodies so each range statement knows its
		// enclosing body (the sort-after-loop search space).
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// Nested function literals get their own checkBody call with
		// their own body as the sort-search space; skip them here.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[rs.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rs, body)
		return true
	})
}

// a sink is one order-sensitive operation found in a map-range body.
type sink struct {
	pos  token.Pos
	desc string
	// appendTo is non-nil for pure appends; such sinks are forgiven if
	// the slice is sorted after the loop.
	appendTo *types.Var
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.TypesInfo
	var sinks []sink
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			sinks = append(sinks, sink{pos: st.Pos(), desc: "channel send"})
		case *ast.AssignStmt:
			if s, ok := classifyAssign(info, st, rs); ok {
				sinks = append(sinks, s)
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if desc, isSink := sinkCall(info, call); isSink {
					sinks = append(sinks, sink{pos: call.Pos(), desc: desc})
				}
			}
		}
		return true
	})
	if len(sinks) == 0 {
		return
	}
	// Collect-then-sort: every sink is an append, and every appended
	// slice is sorted somewhere after the loop in this function.
	allSorted := true
	for _, s := range sinks {
		if s.appendTo == nil || !sortedAfter(info, funcBody, rs.End(), s.appendTo) {
			allSorted = false
			break
		}
	}
	if allSorted {
		return
	}
	first := sinks[0]
	pass.Reportf(rs.For, "map iteration order is randomized but the loop body feeds an order-sensitive sink (%s at %s); sort keys first or //onionlint:allow maporder -- <reason>",
		first.desc, pass.Fset.Position(first.pos))
}

// classifyAssign detects appends to outer variables and float
// accumulation into outer variables.
func classifyAssign(info *types.Info, st *ast.AssignStmt, rs *ast.RangeStmt) (sink, bool) {
	// x += expr accumulation. Keyed writes (m2[k] += v) are
	// order-independent and exempt; only whole-variable accumulators
	// order-depend, and only floats, where addition does not associate.
	if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 {
		lhs := ast.Unparen(st.Lhs[0])
		if _, indexed := lhs.(*ast.IndexExpr); !indexed {
			if v := outerVar(info, lhs, rs); v != nil && isFloat(v.Type()) {
				return sink{pos: st.Pos(), desc: "float accumulation into " + v.Name()}, true
			}
		}
	}
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		return sink{}, false
	}
	// Cursor-style writes: s[cur] = v where s is an outer slice and the
	// index does not involve the range variables. That is an append in
	// disguise (the original Graph.Snapshot bug wrote rows this way);
	// keyed writes like visit[k] = gen commute and are exempt.
	if st.Tok == token.ASSIGN {
		for _, lhs := range st.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			tv, ok := info.Types[ix.X]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
				continue
			}
			v := outerVar(info, ix.X, rs)
			if v == nil || rangeVarMentioned(info, ix.Index, rs) || indexDependsOnLoop(info, ix.Index, rs) {
				continue
			}
			return sink{pos: st.Pos(), desc: "write to " + v.Name() + " at a loop-independent index", appendTo: v}, true
		}
	}
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i >= len(st.Lhs) {
			continue
		}
		if v := outerVar(info, st.Lhs[i], rs); v != nil {
			return sink{pos: st.Pos(), desc: "append to " + v.Name(), appendTo: v}, true
		}
	}
	return sink{}, false
}

// outerVar resolves e to a variable declared outside the range
// statement (including struct-field writes through an outer receiver).
func outerVar(info *types.Info, e ast.Expr, rs *ast.RangeStmt) *types.Var {
	e = ast.Unparen(e)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			// o.field: treat the field as the written object but
			// require the base to be outer.
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if base := rootIdentVar(info, x.X); base != nil && declaredOutside(base, rs) {
					if fv, ok := sel.Obj().(*types.Var); ok {
						return fv
					}
				}
				return nil
			}
			return nil
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && declaredOutside(v, rs) {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok && declaredOutside(v, rs) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func rootIdentVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rangeVarMentioned reports whether e mentions the range statement's
// key or value variable.
func rangeVarMentioned(info *types.Info, e ast.Expr, rs *ast.RangeStmt) bool {
	for _, rv := range [2]ast.Expr{rs.Key, rs.Value} {
		id, ok := rv.(*ast.Ident)
		if !ok {
			continue
		}
		obj, _ := info.Defs[id].(*types.Var)
		if obj == nil {
			obj, _ = info.Uses[id].(*types.Var)
		}
		if obj != nil && mentionsVar(info, e, obj) {
			return true
		}
	}
	return false
}

// indexDependsOnLoop reports whether e mentions any variable declared
// inside the range statement — a data-dependent slot (keyed write,
// commutative) as opposed to a pure outer cursor (append in disguise).
func indexDependsOnLoop(info *types.Info, e ast.Expr, rs *ast.RangeStmt) bool {
	dependent := false
	ast.Inspect(e, func(n ast.Node) bool {
		if dependent {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil {
			v, _ = info.Defs[id].(*types.Var)
		}
		if v != nil && !declaredOutside(v, rs) {
			dependent = true
			return false
		}
		return true
	})
	return dependent
}

func declaredOutside(v *types.Var, rs *ast.RangeStmt) bool {
	return v.Pos() < rs.Pos() || v.Pos() > rs.End()
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sinkCall reports whether call is an output-shaped call: fmt printing,
// a Write*/sink-named method on any receiver, or a sink-named function
// in any package (cross-package detection is by name, deliberately).
func sinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if recvPkg, name, ok := methodRef(info, call.Fun); ok {
		if hasSinkPrefix(name) {
			return "call to method " + name + " (" + lastSegment(recvPkg) + ")", true
		}
		return "", false
	}
	if path, name, ok := pkgLevelRef(info, call.Fun); ok {
		if path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			return "call to fmt." + name, true
		}
		if hasSinkPrefix(name) {
			return "call to " + lastSegment(path) + "." + name, true
		}
		return "", false
	}
	// Local (same-package unqualified) function calls.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isFunc := info.Uses[id].(*types.Func); isFunc && hasSinkPrefix(id.Name) {
			return "call to " + id.Name, true
		}
	}
	return "", false
}

func hasSinkPrefix(name string) bool {
	for _, p := range sinkNamePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// sortedAfter reports whether v is handed to a sorting call after pos
// within body: sort.*, slices.Sort*, any function or method whose name
// begins with "sort" (local helpers like sortInts/sortUint64 count), or
// a Sort method invoked on v itself.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortCallee(info, call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsVar(info, arg, v) {
				found = true
				return false
			}
		}
		// v.Sort()-style: the sorted slice is the receiver.
		if sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); okSel {
			if mentionsVar(info, sel.X, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCallee(info *types.Info, fun ast.Expr) bool {
	if path, name, ok := pkgLevelRef(info, fun); ok {
		return path == "sort" ||
			(path == "slices" && strings.HasPrefix(name, "Sort")) ||
			strings.HasPrefix(strings.ToLower(name), "sort")
	}
	if _, name, ok := methodRef(info, fun); ok {
		return strings.HasPrefix(strings.ToLower(name), "sort")
	}
	if id, ok := ast.Unparen(fun).(*ast.Ident); ok {
		if _, isFunc := info.Uses[id].(*types.Func); isFunc {
			return strings.HasPrefix(strings.ToLower(id.Name), "sort")
		}
	}
	return false
}

func mentionsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
			return false
		}
		return !found
	})
	return found
}
