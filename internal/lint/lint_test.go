package lint_test

import (
	"testing"

	"onionbots/internal/lint"
	"onionbots/internal/lint/linttest"
)

func TestDetClock(t *testing.T) {
	linttest.Run(t, ".", lint.DetClock, "core")
}

// detclock is scoped: packages outside the simulation-facing set may
// read the wall clock freely.
func TestDetClockIgnoresNonSimPackages(t *testing.T) {
	linttest.Run(t, ".", lint.DetClock, "plainpkg")
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, ".", lint.DetRand, "randmisuse")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, ".", lint.MapOrder, "mapsort")
}

func TestSubstream(t *testing.T) {
	linttest.Run(t, ".", lint.Substream, "substream")
}

// internal/sim owns the RNG primitives; substream must not fire there.
func TestSubstreamExemptsSim(t *testing.T) {
	linttest.Run(t, ".", lint.Substream, "sim")
}
