package lint

import (
	"go/token"
	"strings"
)

// DirectivePrefix introduces an allow directive. The full grammar is
//
//	//onionlint:allow <analyzer> -- <reason>
//
// The directive suppresses diagnostics from <analyzer> on its own line
// and on the line directly below it (so it can trail the offending
// statement or sit on its own line above). The reason is mandatory and
// non-empty; a directive that suppresses nothing is an error. The
// audited inventory of live directives is docs/LINT_ALLOWLIST.txt,
// kept in sync by a test.
const DirectivePrefix = "//onionlint:allow"

// A directive is one parsed //onionlint:allow comment.
type directive struct {
	pos      token.Position // position of the comment
	analyzer string
	reason   string
	used     bool
}

type directiveSet struct {
	// byLine maps file → line → directives anchored there.
	byLine map[string]map[int][]*directive
	// all preserves source order for the unused-directive sweep, so
	// onionlint does not itself iterate a map into output.
	all []*directive
}

// collectDirectives parses every allow directive in the package. Bad
// directives (missing analyzer, unknown analyzer, missing " -- reason")
// are returned as diagnostics under the pseudo-analyzer "onionlint".
func collectDirectives(pkg *Package) (directiveSet, []Diagnostic) {
	set := directiveSet{byLine: map[string]map[int][]*directive{}}
	var diags []Diagnostic
	names := suiteNames()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				name, reason, ok := splitDirective(rest)
				if !ok {
					diags = append(diags, Diagnostic{
						Analyzer: "onionlint",
						Position: pos,
						Message:  `malformed directive: want "//onionlint:allow <analyzer> -- <reason>"`,
					})
					continue
				}
				if !names[name] {
					diags = append(diags, Diagnostic{
						Analyzer: "onionlint",
						Position: pos,
						Message:  "directive names unknown analyzer " + name,
					})
					continue
				}
				d := &directive{pos: pos, analyzer: name, reason: reason}
				lines := set.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*directive{}
					set.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
				set.all = append(set.all, d)
			}
		}
	}
	return set, diags
}

// splitDirective parses ` <analyzer> -- <reason>`.
func splitDirective(rest string) (name, reason string, ok bool) {
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return "", "", false
	}
	name, reason, found := strings.Cut(strings.TrimSpace(rest), " -- ")
	name = strings.TrimSpace(name)
	reason = strings.TrimSpace(reason)
	if !found || name == "" || strings.ContainsAny(name, " \t") || reason == "" {
		return "", "", false
	}
	return name, reason, true
}

// suppress reports whether a directive covers d, marking it used.
func (s directiveSet) suppress(d Diagnostic) bool {
	lines := s.byLine[d.Position.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Position.Line, d.Position.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzer == d.Analyzer {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// unused returns one diagnostic per directive that suppressed nothing —
// a stale allow is itself a contract violation.
func (s directiveSet) unused() []Diagnostic {
	var diags []Diagnostic
	for _, d := range s.all {
		if !d.used {
			diags = append(diags, Diagnostic{
				Analyzer: "onionlint",
				Position: d.pos,
				Message:  "unused onionlint:allow directive for " + d.analyzer + " (suppresses nothing; delete it)",
			})
		}
	}
	return diags
}
