package lint

import (
	"go/ast"
)

// simFacingPackages are the package names (final import-path segment)
// whose code runs under — or feeds — the simulated clock. Inside them,
// wall-clock reads are a determinism leak: a result that depends on
// time.Now differs run to run, and a time.Sleep couples simulated
// behaviour to host scheduling. Simulated time comes from the scheduler
// (sim.Scheduler); real-time concerns (retry backoff in the runner,
// progress rate reporting, serve-mode rate limiting) carry an explicit
// //onionlint:allow detclock directive with the reason.
var simFacingPackages = map[string]bool{
	"core":       true,
	"sim":        true,
	"tor":        true,
	"churn":      true,
	"faults":     true,
	"soap":       true,
	"ddsr":       true,
	"pow":        true,
	"superonion": true,
	"scenario":   true,
	"graph":      true,
	"serve":      true,
	"experiment": true,
}

// bannedClock is the set of wall-clock entry points in package time.
// Durations and formatting are fine; reading or waiting on the host
// clock is not.
var bannedClock = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// DetClock forbids wall-clock access in simulation-facing packages.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc: "forbid time.Now/Since/Sleep/After/… in simulation-facing packages; " +
		"simulated time comes from the scheduler, and wall-clock reads make " +
		"output differ run to run",
	Applies: func(importPath string) bool {
		return simFacingPackages[lastSegment(importPath)]
	},
	Run: runDetClock,
}

func runDetClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, isExpr := n.(ast.Expr)
			if !isExpr {
				return true
			}
			if path, name, ok := pkgLevelRef(pass.TypesInfo, e); ok && path == "time" && bannedClock[name] {
				pass.Reportf(e.Pos(), "wall-clock time.%s in simulation-facing package %s; use the scheduler's simulated clock", name, lastSegment(pass.ImportPath))
				return false
			}
			return true
		})
	}
	return nil
}
