package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape deliberately
// mirrors golang.org/x/tools/go/analysis.Analyzer so the suite could be
// rehosted on the upstream driver without touching analyzer bodies.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //onionlint:allow directives.
	Name string
	// Doc is a one-paragraph description shown by `onionlint -help`.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
	// Applies gates the analyzer to a subset of packages (nil = all).
	// It receives the package import path; fixture packages use bare
	// paths ("core"), real ones full paths ("onionbots/internal/core").
	Applies func(importPath string) bool
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer   *Analyzer
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// Suite returns the onionlint analyzers in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{DetClock, DetRand, MapOrder, Substream}
}

// suiteNames is the set of valid analyzer names for allow directives.
func suiteNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Suite() {
		names[a.Name] = true
	}
	return names
}

// Run executes every analyzer in the suite against pkgs, applies the
// //onionlint:allow directives, and returns the surviving diagnostics
// sorted by position. Directive errors (malformed or unused allows) are
// reported under the pseudo-analyzer name "onionlint".
func Run(pkgs []*Package) []Diagnostic {
	return RunAnalyzers(pkgs, Suite())
}

// RunAnalyzers is Run with an explicit analyzer list (tests use it to
// exercise a single analyzer against a fixture package).
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, runPackage(pkg, analyzers)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

func runPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			ImportPath: pkg.ImportPath,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			report:     func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			raw = append(raw, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("internal error: %v", err),
			})
		}
	}
	dirs, dirDiags := collectDirectives(pkg)
	out := dirDiags
	for _, d := range raw {
		if dirs.suppress(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, dirs.unused()...)
	return out
}

// --- shared type-resolution helpers used by the analyzers ---

// pkgLevelRef resolves e (after unwrapping parens) to a package-level
// object reference "path.Name", e.g. time.Now or crypto/rand.Reader.
// It returns ok=false for locals, methods, and unresolved selectors.
func pkgLevelRef(info *types.Info, e ast.Expr) (path, name string, ok bool) {
	e = ast.Unparen(e)
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	// A true package selector has no Selections entry (those are field
	// or method selections on a value).
	if _, isMethod := info.Selections[sel]; isMethod {
		return "", "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	switch obj.(type) {
	case *types.Func, *types.Var, *types.Const:
		return obj.Pkg().Path(), obj.Name(), true
	}
	return "", "", false
}

// methodRef resolves e to a method reference, returning the method name
// and the import path of the package that declares the receiver type.
func methodRef(info *types.Info, e ast.Expr) (recvPkg, name string, ok bool) {
	e = ast.Unparen(e)
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return "", "", false
	}
	f, isFunc := s.Obj().(*types.Func)
	if !isFunc || f.Pkg() == nil {
		return "", "", false
	}
	return f.Pkg().Path(), f.Name(), true
}

// lastSegment returns the final path element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
