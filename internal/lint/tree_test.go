package lint_test

import (
	"path/filepath"
	"testing"

	"onionbots/internal/lint"
)

// TestTreeIsClean runs the full onionlint suite over the module — the
// same check as `make lint` — and fails on any finding. Re-introducing
// either historical determinism bug (the map-order Graph.Snapshot leak,
// a live-reader GenerateKey) turns this red without waiting for an
// end-to-end byte-compare to notice.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := lint.Run(pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the finding, or annotate it with `%s <analyzer> -- <reason>` and record it in docs/LINT_ALLOWLIST.txt", lint.DirectivePrefix)
	}
}
