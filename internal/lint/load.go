package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Load enumerates packages matching patterns with `go list` run in dir
// (the module root) and type-checks each against the standard library
// using the stdlib source importer — no external loader dependency.
// Only non-test files are loaded: onionlint enforces the contract on
// code that ships; benchmarks and tests measure wall-clock freely.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newImporter(fset)
	var pkgs []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory as one package with the given import
// path, resolving non-stdlib imports under srcRoot (GOPATH-style layout,
// as in x/tools' analysistest). Test fixtures use it.
func LoadDir(srcRoot, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		srcRoot:  srcRoot,
		fset:     fset,
		fallback: newImporter(fset),
		cache:    map[string]*types.Package{},
	}
	return imp.load(importPath)
}

type listMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

func goList(dir string, patterns []string) ([]listMeta, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var metas []listMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var m listMeta
		if err := dec.Decode(&m); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// newImporter returns a source importer for the standard library and,
// via the go command, this module's own packages. Cgo is disabled so the
// pure-Go variants of stdlib packages (net, os/user) are loaded; the
// simulator itself has no cgo.
func newImporter(fset *token.FileSet) types.ImporterFrom {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// dirImporter adapts an ImporterFrom to plain Import calls rooted at a
// fixed source directory, so import resolution does not depend on the
// process working directory.
type dirImporter struct {
	imp types.ImporterFrom
	dir string
}

func (d dirImporter) Import(path string) (*types.Package, error) {
	return d.imp.ImportFrom(path, d.dir, 0)
}

func typeCheck(fset *token.FileSet, imp types.ImporterFrom, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: dirImporter{imp: imp, dir: dir}}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// fixtureImporter resolves import paths to directories under srcRoot
// first (loading them recursively, so fixtures can exercise cross-package
// sink detection), then falls back to the standard library.
type fixtureImporter struct {
	srcRoot  string
	fset     *token.FileSet
	fallback types.ImporterFrom
	cache    map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.fallback.ImportFrom(path, fi.srcRoot, 0)
}

func (fi *fixtureImporter) load(importPath string) (*Package, error) {
	dir := filepath.Join(fi.srcRoot, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: fi}
	tpkg, err := conf.Check(importPath, fi.fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fi.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	fi.cache[importPath] = tpkg
	return pkg, nil
}
