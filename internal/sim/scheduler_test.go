package sim

import (
	"testing"
	"time"
)

func TestSchedulerStartsAtEpoch(t *testing.T) {
	s := NewScheduler()
	if !s.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), Epoch)
	}
	if s.Elapsed() != 0 {
		t.Fatalf("Elapsed() = %v, want 0", s.Elapsed())
	}
}

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	if n := s.RunAll(0); n != 3 {
		t.Fatalf("RunAll ran %d events, want 3", n)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulerSimultaneousEventsAreFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	at := s.Now().Add(time.Second)
	for i := 0; i < 100; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.RunAll(0)
	for i := 0; i < 100; i++ {
		if order[i] != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO for equal times)", i, order[i], i)
		}
	}
}

func TestSchedulerClockAdvancesToEventTime(t *testing.T) {
	s := NewScheduler()
	fired := time.Time{}
	s.After(42*time.Minute, func() { fired = s.Now() })
	s.Step()
	want := Epoch.Add(42 * time.Minute)
	if !fired.Equal(want) {
		t.Fatalf("event fired at %v, want %v", fired, want)
	}
}

func TestSchedulerPastEventsRunNow(t *testing.T) {
	s := NewScheduler()
	s.RunFor(time.Hour)
	ran := false
	s.At(Epoch, func() { ran = true }) // in the past
	s.Step()
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
	if got := s.Elapsed(); got != time.Hour {
		t.Fatalf("clock moved backwards: elapsed %v, want 1h", got)
	}
}

func TestSchedulerNegativeAfterClampsToZero(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Step()
	if !ran || s.Elapsed() != 0 {
		t.Fatalf("ran=%v elapsed=%v, want true, 0", ran, s.Elapsed())
	}
}

func TestSchedulerRunUntilAdvancesClock(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.After(time.Second, func() { count++ })
	s.After(time.Minute, func() { count++ })
	s.After(time.Hour, func() { count++ })

	n := s.RunUntil(Epoch.Add(30 * time.Minute))
	if n != 2 || count != 2 {
		t.Fatalf("ran %d events (count %d), want 2", n, count)
	}
	if got := s.Elapsed(); got != 30*time.Minute {
		t.Fatalf("elapsed = %v, want 30m", got)
	}
	if s.Len() != 1 {
		t.Fatalf("pending = %d, want 1", s.Len())
	}
}

func TestSchedulerEveryRepeatsUntilFalse(t *testing.T) {
	s := NewScheduler()
	count := 0
	s.Every(time.Minute, func() bool {
		count++
		return count < 5
	})
	s.RunAll(100)
	if count != 5 {
		t.Fatalf("recurring event ran %d times, want 5", count)
	}
	if got := s.Elapsed(); got != 5*time.Minute {
		t.Fatalf("elapsed = %v, want 5m", got)
	}
}

func TestSchedulerEveryRejectsNonPositiveInterval(t *testing.T) {
	s := NewScheduler()
	s.Every(0, func() bool { return true })
	s.Every(-time.Second, func() bool { return true })
	if s.Len() != 0 {
		t.Fatalf("non-positive Every scheduled %d events, want 0", s.Len())
	}
}

func TestSchedulerRunAllCap(t *testing.T) {
	s := NewScheduler()
	s.Every(time.Second, func() bool { return true }) // runs forever
	if n := s.RunAll(50); n != 50 {
		t.Fatalf("RunAll(50) ran %d events, want 50", n)
	}
}

func TestSchedulerEventsScheduledDuringEvents(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.After(time.Second, func() {
		order = append(order, "outer")
		s.After(time.Second, func() { order = append(order, "inner") })
	})
	s.After(2*time.Second, func() { order = append(order, "peer") })
	s.RunAll(0)
	// inner and peer both fire at t=2s; peer was scheduled first so it
	// must run first.
	want := []string{"outer", "peer", "inner"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
