package sim

import "time"

// Batched recurring timers. A simulation with n bots, each running an
// Every(period) maintenance timer, pays n heap insertions per period and
// keeps n pending events alive. EveryBatched collapses all subscribers
// that share a (period, subscription instant) pair into one recurring
// wheel event that iterates the due callbacks in subscription order —
// one event per period per setup burst, regardless of population.
//
// Ordering contract: within a batch, subscribers run back to back in
// subscription order — the order their individual timers would have
// fired, since simultaneous events fire FIFO. Against other same-instant
// events, the batch event occupies the sequence position of the *first*
// subscriber's individual timer: it is created when that subscriber
// subscribes and reschedules at every instant the individual timers
// would all have rescheduled. That makes batching output-identical to
// individual Every timers provided no *foreign* event, scheduled
// between two subscriptions of the same burst, fires at exactly a tick
// instant of the batch (it would interleave between individual timers
// but sort entirely before or after the batch; the repository's bot
// populations subscribe contiguously at setup, and the CI byte-compare
// holds). Subscribers arriving at a *different* virtual instant never
// join an existing batch (even when their phase lines up) precisely
// because their individual timer would have carried a fresh sequence
// number; they start a new batch, which for a population trickling in
// one at a time degrades gracefully to per-subscriber timers.
type batchKey struct {
	period  int64
	created int64 // virtual ns the batch was created; implies the phase
}

// Ticker is the closure-free batched-timer subscriber: one object
// implements every periodic duty it owns, dispatching on the tag it
// subscribed with. A population of n entities with k timers each then
// costs n·k two-word batchSub entries in flat arrays instead of n·k
// heap-allocated closures, and a tick streams those arrays without
// chasing captured-variable blocks. Return false to unsubscribe, as
// with Every.
type Ticker interface {
	BatchTick(tag uint8) bool
}

// batchSub is one subscription in a batch: either a closure (fn set,
// the EveryBatched path) or a (Ticker, tag) pair (the EveryBatchedTick
// path). Mixed batches are fine — ordering depends only on
// subscription order, never on which form a subscriber used.
type batchSub struct {
	fn  func() bool
	t   Ticker
	tag uint8
}

func (s batchSub) run() bool {
	if s.fn != nil {
		return s.fn()
	}
	return s.t.BatchTick(s.tag)
}

// tickBatch is the shared recurring event for one (period, instant).
// Note the key is (period, instant) only, not the call site: distinct
// logical timer groups subscribed interleaved at one instant with one
// period merge into a single batch, which preserves exactly the
// interleaved subscription order their individual timers would fire in.
type tickBatch struct {
	subs []batchSub
}

// EveryBatched schedules fn like Every(d, fn) — first run d from now,
// repeating while fn returns true — but multiplexes every subscriber
// with the same period and subscription instant onto a single recurring
// event. Use it for per-entity maintenance timers in large populations
// built in setup bursts. A non-positive d is rejected by doing nothing.
func (s *Scheduler) EveryBatched(d time.Duration, fn func() bool) {
	s.everyBatchedSub(d, batchSub{fn: fn})
}

// EveryBatchedTick is EveryBatched without the closure: the subscriber
// is a (Ticker, tag) pair stored inline in the batch's subscriber
// array, and each tick calls t.BatchTick(tag). Firing order is
// identical to an EveryBatched closure subscribed at the same point —
// the two forms share one batch per (period, instant) — so swapping a
// closure for a Ticker cannot perturb trace output.
func (s *Scheduler) EveryBatchedTick(d time.Duration, t Ticker, tag uint8) {
	s.everyBatchedSub(d, batchSub{t: t, tag: tag})
}

func (s *Scheduler) everyBatchedSub(d time.Duration, sub batchSub) {
	if d <= 0 {
		return
	}
	key := batchKey{period: int64(d), created: s.nowNS}
	if s.batches == nil {
		s.batches = make(map[batchKey]*tickBatch)
	}
	if b, ok := s.batches[key]; ok {
		b.subs = append(b.subs, sub)
		return
	}
	b := &tickBatch{subs: []batchSub{sub}}
	s.batches[key] = b
	first := true
	s.Every(d, func() bool {
		if first {
			// Joins are only possible at the creation instant, which has
			// passed by the first tick; drop the lookup entry so a
			// trickling population does not accumulate dead map keys.
			first = false
			delete(s.batches, key)
		}
		// Compact in place with an explicit index: a subscriber may
		// append to b.subs mid-iteration (a same-instant EveryBatched
		// call from inside a tick); re-reading len each step keeps it.
		w := 0
		for i := 0; i < len(b.subs); i++ {
			sub := b.subs[i]
			if sub.run() {
				b.subs[w] = sub
				w++
			}
		}
		// Zero dropped tails so unsubscribed closures and tickers become
		// collectable.
		for i := w; i < len(b.subs); i++ {
			b.subs[i] = batchSub{}
		}
		b.subs = b.subs[:w]
		return len(b.subs) > 0
	})
}
