package sim

import (
	"fmt"
	"testing"
	"time"
)

// tickEntity mirrors the subscriber population of
// TestEveryBatchedMatchesEvery as a Ticker: one object owning an "a"
// duty (fires a bounded number of times), an "r" duty (fires until an
// elapsed deadline), and a "b" duty on a longer period — a bot-shaped
// mix of maintenance timers.
type tickEntity struct {
	s     *Scheduler
	trace *[]string
	i     int
	aLeft int
}

const (
	tickTagA uint8 = iota
	tickTagR
	tickTagB
)

func (e *tickEntity) BatchTick(tag uint8) bool {
	switch tag {
	case tickTagA:
		*e.trace = append(*e.trace, fmt.Sprintf("a%d@%d", e.i, e.s.Elapsed()/time.Second))
		e.aLeft--
		return e.aLeft > 0
	case tickTagR:
		*e.trace = append(*e.trace, fmt.Sprintf("r%d@%d", e.i, e.s.Elapsed()/time.Second))
		return e.s.Elapsed() < 4*time.Minute
	default:
		*e.trace = append(*e.trace, fmt.Sprintf("b%d@%d", e.i, e.s.Elapsed()/time.Second))
		return e.s.Elapsed() < 20*time.Minute
	}
}

// TestEveryBatchedTickMatchesClosures pins the closure-free subscriber
// path: a population subscribed via EveryBatchedTick must fire exactly
// like the same population subscribed as EveryBatched closures — same
// instants, same order, same stop semantics. This is the A/B gate that
// let Bot.startTimers drop its three per-bot closures without a byte
// of trace drift.
func TestEveryBatchedTickMatchesClosures(t *testing.T) {
	closures := func() []string {
		s := NewScheduler()
		var trace []string
		for i := 0; i < 5; i++ {
			e := &tickEntity{s: s, trace: &trace, i: i, aLeft: 2 + i}
			s.EveryBatched(time.Minute, func() bool { return e.BatchTick(tickTagA) })
			s.EveryBatched(time.Minute, func() bool { return e.BatchTick(tickTagR) })
		}
		for i := 0; i < 3; i++ {
			e := &tickEntity{s: s, trace: &trace, i: i}
			s.EveryBatched(5*time.Minute, func() bool { return e.BatchTick(tickTagB) })
		}
		s.RunAll(10000)
		return trace
	}()
	tickers := func() []string {
		s := NewScheduler()
		var trace []string
		for i := 0; i < 5; i++ {
			e := &tickEntity{s: s, trace: &trace, i: i, aLeft: 2 + i}
			s.EveryBatchedTick(time.Minute, e, tickTagA)
			s.EveryBatchedTick(time.Minute, e, tickTagR)
		}
		for i := 0; i < 3; i++ {
			e := &tickEntity{s: s, trace: &trace, i: i}
			s.EveryBatchedTick(5*time.Minute, e, tickTagB)
		}
		s.RunAll(10000)
		return trace
	}()
	if len(closures) != len(tickers) {
		t.Fatalf("closures fired %d, tickers fired %d", len(closures), len(tickers))
	}
	for i := range closures {
		if closures[i] != tickers[i] {
			t.Fatalf("firing %d diverges: closure %s, ticker %s", i, closures[i], tickers[i])
		}
	}
}

// TestEveryBatchedMixedForms pins that closures and Tickers subscribed
// interleaved at one instant share a single batch and fire strictly in
// subscription order — the form a subscriber uses must never affect
// sequencing.
func TestEveryBatchedMixedForms(t *testing.T) {
	s := NewScheduler()
	var trace []string
	e0 := &tickEntity{s: s, trace: &trace, i: 0, aLeft: 2}
	s.EveryBatched(time.Minute, func() bool {
		trace = append(trace, fmt.Sprintf("c0@%d", s.Elapsed()/time.Second))
		return s.Elapsed() < 2*time.Minute
	})
	s.EveryBatchedTick(time.Minute, e0, tickTagA)
	s.EveryBatched(time.Minute, func() bool {
		trace = append(trace, fmt.Sprintf("c1@%d", s.Elapsed()/time.Second))
		return false
	})
	e1 := &tickEntity{s: s, trace: &trace, i: 1, aLeft: 3}
	s.EveryBatchedTick(time.Minute, e1, tickTagA)
	s.RunAll(1000)
	want := []string{
		"c0@60", "a0@60", "c1@60", "a1@60",
		"c0@120", "a0@120", "a1@120",
		"a1@180",
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full: %v)", i, trace[i], want[i], trace)
		}
	}
}

// TestEveryBatchedTickNoPerTickAllocs pins the point of the ticker
// form: once a population's batch exists, ticking it allocates nothing
// — the subscriber array is flat (Ticker, tag) pairs, with no closure
// blocks to allocate or chase.
func TestEveryBatchedTickNoPerTickAllocs(t *testing.T) {
	s := NewScheduler()
	var fired int
	for i := 0; i < 1024; i++ {
		s.EveryBatchedTick(time.Minute, countTicker{&fired}, 0)
	}
	s.RunFor(time.Minute) // warm: first tick drops the join key
	allocs := testing.AllocsPerRun(32, func() {
		s.RunFor(time.Minute)
	})
	if allocs != 0 {
		t.Fatalf("steady batched tick allocated %.1f objects/period, want 0", allocs)
	}
	if fired == 0 {
		t.Fatal("tickers never fired")
	}
}

type countTicker struct{ n *int }

func (c countTicker) BatchTick(uint8) bool { *c.n++; return true }
