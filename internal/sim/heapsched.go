package sim

import (
	"container/heap"
	"time"
)

// HeapScheduler is the original container/heap event queue, kept as the
// executable specification of the scheduling contract. The timer-wheel
// Scheduler must fire an identical workload event-for-event in the same
// order (see the differential test in scheduler_test.go); benchmarks
// compare the two to quantify the wheel's steady-state win. Production
// code should use Scheduler.
type HeapScheduler struct {
	now time.Time
	seq uint64
	pq  refEventHeap
}

type refEvent struct {
	at  time.Time
	seq uint64
	fn  func()
}

// NewHeapScheduler returns a reference scheduler starting at Epoch.
func NewHeapScheduler() *HeapScheduler {
	return &HeapScheduler{now: Epoch}
}

// Now reports the current virtual time.
func (s *HeapScheduler) Now() time.Time { return s.now }

// Elapsed reports how much virtual time has passed since Epoch.
func (s *HeapScheduler) Elapsed() time.Duration { return s.now.Sub(Epoch) }

// Len reports the number of pending events.
func (s *HeapScheduler) Len() int { return s.pq.Len() }

// At schedules fn to run at virtual time t, clamping past times to now.
func (s *HeapScheduler) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &refEvent{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (s *HeapScheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Every schedules fn to run every d while it returns true; non-positive
// d is rejected.
func (s *HeapScheduler) Every(d time.Duration, fn func() bool) {
	if d <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if fn() {
			s.After(d, tick)
		}
	}
	s.After(d, tick)
}

// Step runs the single next pending event, advancing the clock to its
// firing time. It reports whether an event was run.
func (s *HeapScheduler) Step() bool {
	if s.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.pq).(*refEvent)
	s.now = ev.at
	ev.fn()
	return true
}

// RunUntil runs every event with firing time <= t, then advances the
// clock to t, returning the number of events run.
func (s *HeapScheduler) RunUntil(t time.Time) int {
	n := 0
	for s.pq.Len() > 0 && !s.pq[0].at.After(t) {
		s.Step()
		n++
	}
	if t.After(s.now) {
		s.now = t
	}
	return n
}

// RunFor runs the simulation for d of virtual time (see RunUntil).
func (s *HeapScheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.now.Add(d))
}

// RunAll runs events until the queue drains or maxEvents have run
// (maxEvents <= 0 means no cap), returning the number run.
func (s *HeapScheduler) RunAll(maxEvents int) int {
	n := 0
	for s.pq.Len() > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		s.Step()
		n++
	}
	return n
}

// refEventHeap orders events by (time, sequence), so simultaneous events
// fire in the order they were scheduled.
type refEventHeap []*refEvent

func (h refEventHeap) Len() int { return len(h) }

func (h refEventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h refEventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *refEventHeap) Push(x any) { *h = append(*h, x.(*refEvent)) }

func (h *refEventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
