package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministicAcrossInstances(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d/100 draws", same)
	}
}

func TestRNGForkIsDeterministic(t *testing.T) {
	mk := func() []uint64 {
		g := NewRNG(7)
		child := g.Fork()
		out := make([]uint64, 10)
		for i := range out {
			out[i] = child.Uint64()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forked streams diverged at %d", i)
		}
	}
}

func TestSubstreamSeedIsPureFunction(t *testing.T) {
	if SubstreamSeed(1, "fig6/n=800/seed=1") != SubstreamSeed(1, "fig6/n=800/seed=1") {
		t.Fatal("SubstreamSeed is not deterministic")
	}
	a := NewSubstream(1, "task-a")
	b := NewSubstream(1, "task-a")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("identical substreams diverged at draw %d", i)
		}
	}
}

func TestSubstreamSeedSeparatesLabelsAndRoots(t *testing.T) {
	// Structurally similar labels and adjacent roots must land on
	// unrelated streams: check pairwise distinctness across a small
	// grid of (root, label) combinations.
	seen := map[uint64]string{}
	for root := uint64(0); root < 4; root++ {
		for trial := 0; trial < 8; trial++ {
			label := "fig6/trial=" + string(rune('0'+trial))
			s := SubstreamSeed(root, label)
			key := label + "@" + string(rune('0'+root))
			if prev, dup := seen[s]; dup {
				t.Fatalf("substream collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	// The empty label is valid and distinct from the root itself.
	if SubstreamSeed(42, "") == 42 {
		t.Fatal("empty label is the identity")
	}
}

func TestRNGExpFloat64MeanAndDeterminism(t *testing.T) {
	a, b := NewRNG(77), NewRNG(77)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		av, bv := a.ExpFloat64(), b.ExpFloat64()
		if av != bv {
			t.Fatalf("ExpFloat64 streams diverged at %d", i)
		}
		if av < 0 {
			t.Fatalf("negative exponential draw %g", av)
		}
		sum += av
	}
	if mean := sum / n; mean < 0.95 || mean > 1.05 {
		t.Fatalf("ExpFloat64 mean %.3f, want ~1", mean)
	}
}

func TestRNGIntnRange(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		g := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := g.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGBoolProbabilityEdges(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolFrequency(t *testing.T) {
	g := NewRNG(11)
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		if g.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.22 || got > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %.3f, want ~0.25", got)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRNGBytesLengthAndVariety(t *testing.T) {
	g := NewRNG(5)
	for _, n := range []int{0, 1, 7, 8, 9, 31, 32, 33, 1000} {
		b := g.Bytes(n)
		if len(b) != n {
			t.Fatalf("Bytes(%d) returned %d bytes", n, len(b))
		}
	}
	b := g.Bytes(1024)
	counts := map[byte]int{}
	for _, v := range b {
		counts[v]++
	}
	if len(counts) < 200 {
		t.Fatalf("Bytes(1024) produced only %d distinct byte values", len(counts))
	}
}

func TestChoiceCoversAllElements(t *testing.T) {
	g := NewRNG(9)
	xs := []string{"a", "b", "c", "d"}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		seen[Choice(g, xs)] = true
	}
	if len(seen) != len(xs) {
		t.Fatalf("Choice covered %d/%d elements in 200 draws", len(seen), len(xs))
	}
}

func TestSampleDistinctAndBounded(t *testing.T) {
	g := NewRNG(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	for _, k := range []int{-1, 0, 3, 10, 15} {
		got := Sample(g, xs, k)
		wantLen := k
		if k < 0 {
			wantLen = 0
		}
		if k > len(xs) {
			wantLen = len(xs)
		}
		if len(got) != wantLen {
			t.Fatalf("Sample(k=%d) returned %d elements, want %d", k, len(got), wantLen)
		}
		seen := map[int]bool{}
		for _, v := range got {
			if seen[v] {
				t.Fatalf("Sample(k=%d) returned duplicate %d", k, v)
			}
			seen[v] = true
		}
	}
	// The input slice must not be mutated.
	for i, v := range xs {
		if v != i {
			t.Fatal("Sample mutated its input slice")
		}
	}
}
