package sim

import (
	"encoding/binary"
	"math/rand/v2"
)

// RNG is the single random stream for a simulation run. Every random
// decision in an experiment must come from the run's RNG so that one seed
// reproduces the whole run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a PCG-backed stream seeded from seed. Two RNGs with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	// The second PCG word is a fixed odd constant so that seed 0 is a
	// valid, distinct stream.
	return &RNG{r: rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// Fork derives an independent child stream. The child is a pure function
// of the parent's state at the time of the call, preserving determinism
// while letting subsystems consume randomness without perturbing each
// other's sequences.
func (g *RNG) Fork() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()|1))}
}

// SubstreamSeed derives a child seed from a root seed and a label. The
// result is a pure function of (root, label): the experiment runner uses
// it to give every task its own independent stream, so output depends
// only on the root seed and the task's name — never on worker count or
// scheduling order. Labels are hashed (FNV-1a) and the digest is mixed
// with the root through two rounds of the splitmix64 finalizer, so
// structurally similar labels ("trial=1" vs "trial=2") still land on
// unrelated streams.
func SubstreamSeed(root uint64, label string) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	return splitmix64(splitmix64(root^0x6a09e667f3bcc908) ^ h)
}

// NewSubstream returns NewRNG(SubstreamSeed(root, label)).
func NewSubstream(root uint64, label string) *RNG {
	return NewRNG(SubstreamSeed(root, label))
}

// splitmix64 is the finalizer of Vigna's SplitMix64 generator — a
// full-avalanche mixing of one 64-bit word.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.IntN(n) }

// Int63 returns a uniform non-negative int64.
func (g *RNG) Int63() int64 { return g.r.Int64() }

// Uint64 returns a uniform uint64.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bool returns true with probability p (clamped to [0, 1]).
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1). Scale by 1/λ for other rates; the churn engine derives
// Poisson inter-arrival times this way.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a uniform permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes n elements using the provided swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bytes fills a fresh n-byte slice with pseudorandom bytes. It is used
// for nonces and padding inside the simulator; it is not a CSPRNG and
// must never be used for real key material outside tests.
func (g *RNG) Bytes(n int) []byte {
	b := make([]byte, n)
	g.Fill(b)
	return b
}

// Fill overwrites b with pseudorandom bytes, consuming exactly the same
// stream positions as Bytes(len(b)) — hot paths can reuse a stack buffer
// without perturbing a seeded run.
func (g *RNG) Fill(b []byte) {
	var word [8]byte
	for i := 0; i < len(b); i += 8 {
		binary.LittleEndian.PutUint64(word[:], g.r.Uint64())
		copy(b[i:], word[:])
	}
}

// Choice returns a uniform element of xs. It panics on an empty slice,
// matching Intn's contract.
func Choice[T any](g *RNG, xs []T) T {
	return xs[g.Intn(len(xs))]
}

// Sample returns k distinct uniform elements of xs in random order. If
// k >= len(xs) it returns a shuffled copy of all of xs.
func Sample[T any](g *RNG, xs []T, k int) []T {
	if k < 0 {
		k = 0
	}
	out := make([]T, len(xs))
	copy(out, xs)
	g.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if k < len(out) {
		out = out[:k]
	}
	return out
}
