// Package sim provides the deterministic discrete-event simulation kernel
// used by every experiment in this repository.
//
// The kernel has two halves:
//
//   - Scheduler: a virtual clock plus an event queue — a hierarchical
//     timer wheel cascading into a small near-term heap, with a pooled
//     event arena so steady-state scheduling allocates nothing. Events
//     scheduled for the same instant fire in FIFO order (stable sequence
//     numbers), so a run is bit-reproducible given the same inputs;
//     HeapScheduler keeps the original container/heap queue as the
//     executable specification the wheel is differentially tested
//     against. EveryBatched multiplexes recurring per-entity timers that
//     share a period and subscription instant onto one wheel event,
//     output-identically to individual Every timers.
//   - RNG: a seeded PCG random stream with the helpers the experiments
//     need (permutations, weighted coins, exponential inter-arrival
//     draws for churn processes, byte strings). All randomness in a run
//     must flow through one RNG so that a single seed reproduces an
//     entire figure. SubstreamSeed derives named child seeds from a root
//     seed and a label; the experiment runner gives every task its own
//     substream this way (and the churn engine gives every attached
//     process one), which is what makes parallel experiment output
//     independent of worker count and scheduling order.
//
// The virtual epoch is 2015-01-14 UTC, the day the OnionBots paper was
// posted to arXiv; experiments only ever use relative durations, the
// epoch is cosmetic.
package sim
