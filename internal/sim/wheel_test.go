package sim

import (
	"fmt"
	"testing"
	"time"
)

// timeline is the scheduling contract both implementations must satisfy.
type timeline interface {
	Now() time.Time
	Len() int
	At(time.Time, func())
	After(time.Duration, func())
	Every(time.Duration, func() bool)
	Step() bool
	RunUntil(time.Time) int
	RunFor(time.Duration) int
	RunAll(int) int
}

var (
	_ timeline = (*Scheduler)(nil)
	_ timeline = (*HeapScheduler)(nil)
)

// driveRandomWorkload runs one randomized mixed workload against a
// timeline and returns the trace of (firing id, firing time) pairs. The
// workload mixes At/After/Every, past-time clamps, same-tick pileups,
// events scheduled from inside events, and far-future outliers that
// exercise the wheel's higher levels and overflow list.
func driveRandomWorkload(s timeline, seed uint64) []string {
	rng := NewRNG(seed)
	var trace []string
	id := 0
	record := func(tag string) func() {
		id++
		n := id
		return func() {
			trace = append(trace, fmt.Sprintf("%s#%d@%d", tag, n, s.Now().UnixNano()))
		}
	}
	randDelay := func() time.Duration {
		switch rng.Intn(6) {
		case 0:
			return time.Duration(rng.Intn(5)) * time.Millisecond // same level-0 bucket pileups
		case 1:
			return time.Duration(rng.Intn(2000)) * time.Millisecond
		case 2:
			return time.Duration(rng.Intn(90)) * time.Minute
		case 3:
			return time.Duration(rng.Intn(50)) * time.Hour
		case 4:
			return -time.Duration(rng.Intn(10)) * time.Second // negative clamp
		default:
			return time.Duration(rng.Intn(3650*24)) * time.Hour // years out: top levels / overflow
		}
	}

	for i := 0; i < 400; i++ {
		switch rng.Intn(4) {
		case 0:
			s.After(randDelay(), record("after"))
		case 1:
			// At with a chance of landing in the past (clamped to now).
			t := s.Now().Add(randDelay())
			s.At(t, record("at"))
		case 2:
			left := 1 + rng.Intn(4)
			fire := record("every")
			s.Every(time.Duration(1+rng.Intn(600))*time.Second, func() bool {
				fire()
				left--
				return left > 0
			})
		case 3:
			// Schedule from inside an event, including a same-instant child.
			inner := record("inner")
			d := randDelay()
			s.After(d, func() {
				trace = append(trace, fmt.Sprintf("outer@%d", s.Now().UnixNano()))
				s.After(0, inner)
				s.At(s.Now().Add(-time.Hour), record("past-child"))
			})
		}
		// Interleave scheduling with partial draining, as simulations do.
		if rng.Intn(3) == 0 {
			s.RunFor(time.Duration(rng.Intn(120)) * time.Second)
		}
	}
	s.RunAll(200000)
	return trace
}

// TestWheelMatchesHeapScheduler drives the timer-wheel Scheduler and the
// reference HeapScheduler with identical randomized workloads and
// requires event-for-event identical firing sequences — the determinism
// contract the wheel swap must preserve.
func TestWheelMatchesHeapScheduler(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		wheel := driveRandomWorkload(NewScheduler(), seed)
		ref := driveRandomWorkload(NewHeapScheduler(), seed)
		if len(wheel) != len(ref) {
			t.Fatalf("seed %d: wheel fired %d events, heap fired %d", seed, len(wheel), len(ref))
		}
		for i := range wheel {
			if wheel[i] != ref[i] {
				t.Fatalf("seed %d: firing %d diverges:\n  wheel: %s\n  heap:  %s",
					seed, i, wheel[i], ref[i])
			}
		}
	}
}

// TestWheelFarFutureOverflow pins the overflow path: events beyond the
// wheel's ~4.6-year span must still fire, in order.
func TestWheelFarFutureOverflow(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(10*365*24*time.Hour, func() { order = append(order, 2) })
	s.After(6*365*24*time.Hour, func() { order = append(order, 1) })
	s.After(20*365*24*time.Hour, func() { order = append(order, 3) })
	s.After(time.Second, func() { order = append(order, 0) })
	if n := s.RunAll(0); n != 4 {
		t.Fatalf("ran %d events, want 4", n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
	if got := s.Elapsed(); got != 20*365*24*time.Hour {
		t.Fatalf("elapsed = %v, want 20y", got)
	}
}

// TestWheelHorizonClamp pins the int64 saturation edge: a time so far
// out that time.Time.Sub saturates (or an After summing past the
// horizon) must still fire instead of wedging in the overflow list.
func TestWheelHorizonClamp(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(time.Date(2400, 1, 1, 0, 0, 0, 0, time.UTC), func() { fired++ })
	s.After(time.Duration(maxInt64), func() { fired++ })
	if n := s.RunAll(0); n != 2 || fired != 2 {
		t.Fatalf("ran %d events, fired %d, want 2/2 (Len now %d)", n, fired, s.Len())
	}
}

// TestSchedulerSteadyStateZeroAlloc asserts the pooled event arena
// claim: once warm, a schedule/fire cycle performs no heap allocations.
func TestSchedulerSteadyStateZeroAlloc(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm the arena, the heap slice, and the wheel.
	for i := 0; i < 256; i++ {
		s.After(time.Duration(i)*time.Millisecond, fn)
	}
	s.RunAll(0)
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(3*time.Millisecond, fn)
		s.After(90*time.Second, fn)
		s.RunAll(0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire allocated %.1f objects/op, want 0", allocs)
	}
}

// TestEveryBatchedMatchesEvery pins the batched-tick contract: a batch
// fires its subscribers at the same instants, in subscription order,
// honoring the per-subscriber stop return, exactly like n individual
// Every timers. The subscription pattern deliberately interleaves two
// logical same-period groups per entity ("a" and "r", like a bot's
// hourly republish and rotation timers) plus a different period whose
// firings coincide every fifth tick — the orders that would drift if
// batches were keyed per call site or mis-sequenced across groups.
func TestEveryBatchedMatchesEvery(t *testing.T) {
	run := func(schedule func(s *Scheduler, period time.Duration, fn func() bool)) []string {
		s := NewScheduler()
		var trace []string
		for i := 0; i < 5; i++ {
			i := i
			left := 2 + i
			schedule(s, time.Minute, func() bool {
				trace = append(trace, fmt.Sprintf("a%d@%d", i, s.Elapsed()/time.Second))
				left--
				return left > 0
			})
			schedule(s, time.Minute, func() bool {
				trace = append(trace, fmt.Sprintf("r%d@%d", i, s.Elapsed()/time.Second))
				return s.Elapsed() < 4*time.Minute
			})
		}
		for i := 0; i < 3; i++ {
			i := i
			schedule(s, 5*time.Minute, func() bool {
				trace = append(trace, fmt.Sprintf("b%d@%d", i, s.Elapsed()/time.Second))
				return s.Elapsed() < 20*time.Minute
			})
		}
		s.RunAll(10000)
		return trace
	}
	individual := run(func(s *Scheduler, d time.Duration, fn func() bool) { s.Every(d, fn) })
	batched := run(func(s *Scheduler, d time.Duration, fn func() bool) { s.EveryBatched(d, fn) })
	if len(individual) != len(batched) {
		t.Fatalf("individual fired %d, batched fired %d", len(individual), len(batched))
	}
	for i := range individual {
		if individual[i] != batched[i] {
			t.Fatalf("firing %d diverges: individual %s, batched %s", i, individual[i], batched[i])
		}
	}
}

// TestEveryBatchedLateJoiner pins the join semantics: a subscriber added
// at a later instant — even one whose phase lines up with an existing
// batch — gets its own batch, firing exactly when and in the sequence
// position an individual Every timer would (here: scheduled from inside
// the first batch's tick, so it precedes the first batch's rescheduled
// event at 2m, exactly as a nested individual Every would).
func TestEveryBatchedLateJoiner(t *testing.T) {
	s := NewScheduler()
	var trace []string
	s.EveryBatched(time.Minute, func() bool {
		trace = append(trace, fmt.Sprintf("first@%v", s.Elapsed()))
		if s.Elapsed() == time.Minute {
			// Same instant as the batch tick: must first fire at 2m.
			s.EveryBatched(time.Minute, func() bool {
				trace = append(trace, fmt.Sprintf("joined@%v", s.Elapsed()))
				return false
			})
		}
		return s.Elapsed() < 3*time.Minute
	})
	s.RunFor(30 * time.Second)
	// Off-phase subscriber: period 1m starting at 30s → fires at 1m30s.
	s.EveryBatched(time.Minute, func() bool {
		trace = append(trace, fmt.Sprintf("offphase@%v", s.Elapsed()))
		return false
	})
	s.RunAll(1000)
	want := []string{"first@1m0s", "offphase@1m30s", "joined@2m0s", "first@2m0s", "first@3m0s"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full: %v)", i, trace[i], want[i], trace)
		}
	}
}

// BenchmarkSchedulerSteadyState measures the steady-state cost of one
// schedule+fire cycle with a large standing population of pending
// timers, wheel versus reference heap. The wheel's win is exactly the
// gap this shows: O(1) bucket pushes and a small near-term heap versus
// O(log n) sift over the whole pending set.
func BenchmarkSchedulerSteadyState(b *testing.B) {
	for _, standing := range []int{1000, 100000} {
		bench := func(b *testing.B, s timeline) {
			fn := func() {}
			// Standing population of far-out timers (the 10^5 bots).
			for i := 0; i < standing; i++ {
				s.After(time.Hour+time.Duration(i)*time.Millisecond, fn)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.After(50*time.Millisecond, fn)
				s.Step()
			}
		}
		b.Run(fmt.Sprintf("wheel/standing=%d", standing), func(b *testing.B) {
			bench(b, NewScheduler())
		})
		b.Run(fmt.Sprintf("heap/standing=%d", standing), func(b *testing.B) {
			bench(b, NewHeapScheduler())
		})
	}
}

// BenchmarkSchedulerBatchedTicks measures one maintenance period of an
// n-bot population, per-bot timers versus one batched tick.
func BenchmarkSchedulerBatchedTicks(b *testing.B) {
	const bots = 10000
	b.Run("per-bot", func(b *testing.B) {
		s := NewScheduler()
		for i := 0; i < bots; i++ {
			s.Every(time.Minute, func() bool { return true })
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.RunFor(time.Minute)
		}
	})
	b.Run("batched", func(b *testing.B) {
		s := NewScheduler()
		for i := 0; i < bots; i++ {
			s.EveryBatched(time.Minute, func() bool { return true })
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.RunFor(time.Minute)
		}
	})
}
