package sim

import (
	"math/bits"
	"time"
)

// Epoch is the virtual time at which every Scheduler starts. The date is
// the arXiv posting date of the OnionBots paper; nothing depends on the
// absolute value.
var Epoch = time.Date(2015, time.January, 14, 0, 0, 0, 0, time.UTC)

// Timer-wheel geometry. Virtual times are nanoseconds since Epoch;
// level L buckets are tickNS<<(wheelBits*L) wide and each level holds
// wheelSlots of them, so the wheel spans ~4.6 virtual years before the
// (practically unreachable) overflow list kicks in:
//
//	L0 ~2.1ms/slot, L1 ~134ms, L2 ~8.6s, L3 ~9.2min, L4 ~9.8h, L5 ~26d
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 6
	tickShift   = 21 // 2^21 ns ≈ 2.1ms level-0 granularity
)

// event is one scheduled callback. Events are arena-pooled: the wheel
// links them through next (bucket lists and the freelist), and the
// near-term heap holds bare pointers, so steady-state scheduling does
// zero heap allocations.
type event struct {
	at   int64 // virtual ns since Epoch
	seq  uint64
	fn   func()
	next *event
}

// wheelLevel is one ring of coarse buckets. Slot lists are unsorted
// (LIFO push); exact (time, seq) order is restored when a due bucket
// cascades into the near-term heap.
type wheelLevel struct {
	slots    [wheelSlots]*event
	occupied uint64 // bit i set ⇔ slots[i] non-empty
}

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock. It is intentionally not safe for concurrent use: determinism is
// the whole point, and every experiment drives it from one goroutine.
//
// Internally it is a hierarchical timer wheel cascading into a small
// near-term binary heap. The heap alone carries the ordering contract —
// events fire in exact (time, sequence) order, simultaneous events in
// FIFO order — while the wheel keeps far-future events out of the heap
// so steady-state scheduling costs O(1) bucket pushes instead of
// O(log n) heap churn over the whole pending set.
type Scheduler struct {
	nowNS int64
	seq   uint64
	n     int // total pending events (heap + wheel + overflow)

	// near holds every pending event with at < drainedUntil, ordered by
	// (at, seq). All other events sit in wheel buckets or overflow.
	near         []*event
	drainedUntil int64

	levels [wheelLevels]wheelLevel

	// nextBucket caches the earliest start time of any occupied bucket
	// (or overflow minimum); maxInt64 when the wheel is empty. Events
	// may be popped from the heap only while heapTop.at < nextBucket.
	nextBucket int64

	// overflow collects events beyond the top level's span. Effectively
	// unreachable in real simulations (~4.6 virtual years) but kept
	// correct for the differential tests' extreme random workloads.
	overflow    *event
	overflowMin int64

	free *event // event arena freelist

	batches map[batchKey]*tickBatch
}

const maxInt64 = int64(1<<63 - 1)

// NewScheduler returns a scheduler whose clock starts at Epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{nextBucket: maxInt64, overflowMin: maxInt64}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Time { return Epoch.Add(time.Duration(s.nowNS)) }

// Elapsed reports how much virtual time has passed since Epoch.
func (s *Scheduler) Elapsed() time.Duration { return time.Duration(s.nowNS) }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return s.n }

// newEvent takes an event off the freelist (or allocates one).
func (s *Scheduler) newEvent(at int64, fn func()) *event {
	ev := s.free
	if ev == nil {
		ev = new(event)
	} else {
		s.free = ev.next
	}
	s.seq++
	ev.at, ev.seq, ev.fn, ev.next = at, s.seq, fn, nil
	return ev
}

// release returns a fired event to the freelist.
func (s *Scheduler) release(ev *event) {
	ev.fn = nil
	ev.next = s.free
	s.free = ev
}

// At schedules fn to run at virtual time t. Scheduling in the past runs
// the event at the current time (it still goes through the queue so that
// ordering relative to other due events is stable). Times beyond the
// int64-nanosecond horizon (~292 years after Epoch, where time.Time.Sub
// itself saturates) clamp just below the horizon so the event still
// fires rather than colliding with the internal maxInt64 sentinel.
func (s *Scheduler) At(t time.Time, fn func()) {
	at := t.Sub(Epoch).Nanoseconds()
	if at == maxInt64 {
		at = maxInt64 - 1
	}
	if at < s.nowNS {
		at = s.nowNS
	}
	s.insert(s.newEvent(at, fn))
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero; delays overflowing the int64 horizon
// clamp like At.
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	at := s.nowNS + int64(d)
	if at < s.nowNS || at == maxInt64 { // overflow or sentinel collision
		at = maxInt64 - 1
	}
	s.insert(s.newEvent(at, fn))
}

// insert places an event in the heap (when it lands inside the drained
// horizon), a wheel bucket, or the overflow list.
func (s *Scheduler) insert(ev *event) {
	s.n++
	if ev.at < s.drainedUntil {
		s.heapPush(ev)
		return
	}
	base := s.drainedUntil >> tickShift
	slot := ev.at >> tickShift
	for l := 0; l < wheelLevels; l++ {
		if slot-base < wheelSlots {
			idx := slot & wheelMask
			lv := &s.levels[l]
			ev.next = lv.slots[idx]
			lv.slots[idx] = ev
			lv.occupied |= 1 << uint(idx)
			if start := slot << (tickShift + uint(l)*wheelBits); start < s.nextBucket {
				s.nextBucket = start
			}
			return
		}
		base >>= wheelBits
		slot >>= wheelBits
	}
	ev.next = s.overflow
	s.overflow = ev
	if ev.at < s.overflowMin {
		s.overflowMin = ev.at
		if ev.at < s.nextBucket {
			s.nextBucket = ev.at
		}
	}
}

// recomputeNextBucket rescans the occupancy bitmaps for the earliest
// bucket start; called after a drain empties a slot.
func (s *Scheduler) recomputeNextBucket() {
	s.nextBucket = s.overflowMin
	base := s.drainedUntil >> tickShift
	for l := 0; l < wheelLevels; l++ {
		lv := &s.levels[l]
		if lv.occupied != 0 {
			w := base & wheelMask
			// First occupied slot at or after the window start, circular.
			rot := lv.occupied>>uint(w) | lv.occupied<<uint(wheelSlots-w)
			off := int64(bits.TrailingZeros64(rot))
			start := (base + off) << (tickShift + uint(l)*wheelBits)
			if start < s.nextBucket {
				s.nextBucket = start
			}
		}
		base >>= wheelBits
	}
}

// drainEarliest moves the earliest occupied bucket into finer structure:
// level-0 buckets cascade into the near-term heap, higher levels
// redistribute into lower wheels. Ties across levels drain the highest
// level first so its events land in lower buckets before those drain.
func (s *Scheduler) drainEarliest() {
	// Locate the earliest bucket, preferring the highest level on ties.
	bestStart := maxInt64
	bestLevel := -1
	base := s.drainedUntil >> tickShift
	for l := 0; l < wheelLevels; l++ {
		lv := &s.levels[l]
		if lv.occupied != 0 {
			w := base & wheelMask
			rot := lv.occupied>>uint(w) | lv.occupied<<uint(wheelSlots-w)
			off := int64(bits.TrailingZeros64(rot))
			start := (base + off) << (tickShift + uint(l)*wheelBits)
			if start < bestStart || (start == bestStart && l > bestLevel) {
				bestStart, bestLevel = start, l
			}
		}
		base >>= wheelBits
	}
	if bestLevel < 0 {
		// Wheel empty: flush the overflow list back through insert.
		if s.overflow == nil {
			s.nextBucket = maxInt64
			return
		}
		list := s.overflow
		s.overflow = nil
		s.overflowMin = maxInt64
		// Jump the horizon to the overflow's era so at least the
		// earliest event fits the wheel on reinsertion.
		min := maxInt64
		for ev := list; ev != nil; ev = ev.next {
			if ev.at < min {
				min = ev.at
			}
		}
		if aligned := min >> tickShift << tickShift; aligned > s.drainedUntil {
			s.drainedUntil = aligned
		}
		for list != nil {
			ev := list
			list = list.next
			ev.next = nil
			s.n-- // insert re-counts
			s.insert(ev)
		}
		s.recomputeNextBucket()
		return
	}

	shift := tickShift + uint(bestLevel)*wheelBits
	idx := (bestStart >> shift) & wheelMask
	lv := &s.levels[bestLevel]
	list := lv.slots[idx]
	lv.slots[idx] = nil
	lv.occupied &^= 1 << uint(idx)

	// Advance the drained horizon: a level-0 drain proves everything
	// before the bucket's end is now in the heap; a higher-level drain
	// only proves everything before its start.
	if bestLevel == 0 {
		s.drainedUntil = bestStart + 1<<tickShift
	} else if bestStart > s.drainedUntil {
		s.drainedUntil = bestStart
	}

	if bestLevel == 0 {
		for list != nil {
			ev := list
			list = list.next
			ev.next = nil
			s.heapPush(ev)
		}
	} else {
		for list != nil {
			ev := list
			list = list.next
			ev.next = nil
			s.n-- // insert re-counts
			s.insert(ev)
		}
	}
	s.recomputeNextBucket()
}

// peek returns the next event to fire without popping it, cascading
// wheel buckets into the heap until the heap top is provably global-min.
// Returns nil when nothing is pending.
func (s *Scheduler) peek() *event {
	for {
		if len(s.near) > 0 && s.near[0].at < s.nextBucket {
			return s.near[0]
		}
		if s.nextBucket == maxInt64 {
			if len(s.near) > 0 {
				return s.near[0]
			}
			return nil
		}
		s.drainEarliest()
	}
}

// Step runs the single next pending event, advancing the clock to its
// firing time. It reports whether an event was run.
func (s *Scheduler) Step() bool {
	ev := s.peek()
	if ev == nil {
		return false
	}
	s.heapPop()
	s.n--
	s.nowNS = ev.at
	fn := ev.fn
	s.release(ev)
	fn()
	return true
}

// RunUntil runs every event with firing time <= t, then advances the
// clock to t. It returns the number of events run.
func (s *Scheduler) RunUntil(t time.Time) int {
	target := t.Sub(Epoch).Nanoseconds()
	n := 0
	for {
		ev := s.peek()
		if ev == nil || ev.at > target {
			break
		}
		s.Step()
		n++
	}
	if target > s.nowNS {
		s.nowNS = target
	}
	return n
}

// RunFor runs the simulation for d of virtual time (see RunUntil).
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.Now().Add(d))
}

// RunAll runs events until the queue drains or maxEvents have run,
// whichever comes first. maxEvents <= 0 means no cap. It returns the
// number of events run; callers that pass a cap can compare against it to
// detect runaway recurring events.
func (s *Scheduler) RunAll(maxEvents int) int {
	n := 0
	for s.n > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// Every schedules fn to run every d, starting d from now, for as long as
// fn keeps returning true. A non-positive d is rejected by doing nothing;
// recurring zero-delay events would otherwise wedge the clock.
func (s *Scheduler) Every(d time.Duration, fn func() bool) {
	if d <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if fn() {
			s.After(d, tick)
		}
	}
	s.After(d, tick)
}

// near-term heap: a hand-rolled binary heap of *event ordered by
// (at, seq), avoiding container/heap's interface boxing on the hot path.

func (s *Scheduler) heapPush(ev *event) {
	s.near = append(s.near, ev)
	i := len(s.near) - 1
	for i > 0 {
		parent := (i - 1) / 2
		p := s.near[parent]
		if p.at < ev.at || (p.at == ev.at && p.seq < ev.seq) {
			break
		}
		s.near[i] = p
		i = parent
	}
	s.near[i] = ev
}

func (s *Scheduler) heapPop() *event {
	h := s.near
	top := h[0]
	last := h[len(h)-1]
	h[len(h)-1] = nil
	h = h[:len(h)-1]
	s.near = h
	if len(h) > 0 {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			if l >= len(h) {
				break
			}
			c := l
			if r < len(h) {
				cr := h[r]
				cl := h[l]
				if cr.at < cl.at || (cr.at == cl.at && cr.seq < cl.seq) {
					c = r
				}
			}
			ch := h[c]
			if last.at < ch.at || (last.at == ch.at && last.seq < ch.seq) {
				break
			}
			h[i] = ch
			i = c
		}
		h[i] = last
	}
	return top
}
