package sim

import (
	"container/heap"
	"time"
)

// Epoch is the virtual time at which every Scheduler starts. The date is
// the arXiv posting date of the OnionBots paper; nothing depends on the
// absolute value.
var Epoch = time.Date(2015, time.January, 14, 0, 0, 0, 0, time.UTC)

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock. It is intentionally not safe for concurrent use: determinism is
// the whole point, and every experiment drives it from one goroutine.
type Scheduler struct {
	now time.Time
	seq uint64
	pq  eventHeap
}

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

// NewScheduler returns a scheduler whose clock starts at Epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{now: Epoch}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Elapsed reports how much virtual time has passed since Epoch.
func (s *Scheduler) Elapsed() time.Duration { return s.now.Sub(Epoch) }

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return s.pq.Len() }

// At schedules fn to run at virtual time t. Scheduling in the past runs
// the event at the current time (it still goes through the queue so that
// ordering relative to other due events is stable).
func (s *Scheduler) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Every schedules fn to run every d, starting d from now, for as long as
// fn keeps returning true. A non-positive d is rejected by doing nothing;
// recurring zero-delay events would otherwise wedge the clock.
func (s *Scheduler) Every(d time.Duration, fn func() bool) {
	if d <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if fn() {
			s.After(d, tick)
		}
	}
	s.After(d, tick)
}

// Step runs the single next pending event, advancing the clock to its
// firing time. It reports whether an event was run.
func (s *Scheduler) Step() bool {
	if s.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.pq).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// RunUntil runs every event with firing time <= t, then advances the
// clock to t. It returns the number of events run.
func (s *Scheduler) RunUntil(t time.Time) int {
	n := 0
	for s.pq.Len() > 0 && !s.pq[0].at.After(t) {
		s.Step()
		n++
	}
	if t.After(s.now) {
		s.now = t
	}
	return n
}

// RunFor runs the simulation for d of virtual time (see RunUntil).
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.now.Add(d))
}

// RunAll runs events until the queue drains or maxEvents have run,
// whichever comes first. maxEvents <= 0 means no cap. It returns the
// number of events run; callers that pass a cap can compare against it to
// detect runaway recurring events.
func (s *Scheduler) RunAll(maxEvents int) int {
	n := 0
	for s.pq.Len() > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		s.Step()
		n++
	}
	return n
}

// eventHeap orders events by (time, sequence), so simultaneous events
// fire in the order they were scheduled.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
