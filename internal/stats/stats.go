// Package stats provides the small, dependency-free statistics layer
// the experiment aggregator and the scenario assertion library share:
// single-pass (Welford) mean/variance accumulation and Student-t
// confidence intervals sized from the replicate count.
//
// Everything here is deterministic — a pure function of its inputs —
// because aggregate output must stay byte-identical across runs and
// worker counts.
package stats

import "math"

// Welford accumulates mean and variance in one pass using Welford's
// online algorithm, which stays numerically stable where the naive
// sum-of-squares update cancels catastrophically (large means, small
// spreads — exactly what cross-trial series statistics look like).
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n-1 denominator), or 0 when
// fewer than two observations exist.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// tTable holds two-sided 95% Student-t critical values by degrees of
// freedom. Entries are the standard printed table; lookups between
// entries round the df DOWN to the nearest entry, which rounds the
// critical value (and therefore the interval) conservatively UP.
var tTable = []struct {
	df int
	t  float64
}{
	{1, 12.706}, {2, 4.303}, {3, 3.182}, {4, 2.776}, {5, 2.571},
	{6, 2.447}, {7, 2.365}, {8, 2.306}, {9, 2.262}, {10, 2.228},
	{11, 2.201}, {12, 2.179}, {13, 2.160}, {14, 2.145}, {15, 2.131},
	{16, 2.120}, {17, 2.110}, {18, 2.101}, {19, 2.093}, {20, 2.086},
	{21, 2.080}, {22, 2.074}, {23, 2.069}, {24, 2.064}, {25, 2.060},
	{26, 2.056}, {27, 2.052}, {28, 2.048}, {29, 2.045}, {30, 2.042},
	{40, 2.021}, {50, 2.009}, {60, 2.000}, {80, 1.990}, {100, 1.984},
	{120, 1.980},
}

// tInf is the df→∞ (normal) critical value used above the table.
const tInf = 1.960

// TCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom. df < 1 returns NaN (no interval
// exists); df beyond the table uses the asymptotic normal value.
func TCritical95(df int) float64 {
	if df < 1 {
		return math.NaN()
	}
	if df > tTable[len(tTable)-1].df {
		return tInf
	}
	t := tTable[0].t
	for _, e := range tTable {
		if e.df <= df {
			t = e.t
		} else {
			break
		}
	}
	return t
}

// CI95Half returns the half-width of the two-sided 95% Student-t
// confidence interval for a mean estimated from n observations with
// sample standard deviation sd: t(n-1) * sd / sqrt(n). ok is false when
// n < 2 (a single replicate carries no interval). Zero variance yields
// a legitimate zero-width interval.
func CI95Half(sd float64, n int) (half float64, ok bool) {
	if n < 2 {
		return 0, false
	}
	return TCritical95(n-1) * sd / math.Sqrt(float64(n)), true
}

// MeanCI95 summarizes a sample: mean, sample standard deviation, and
// the 95% confidence half-width. ok is false when n < 2, in which case
// half is 0 and mean/sd are still reported (sd as 0).
func MeanCI95(xs []float64) (mean, sd, half float64, ok bool) {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean, sd = w.Mean(), w.Stddev()
	half, ok = CI95Half(sd, w.N())
	return mean, sd, half, ok
}
