package stats

import (
	"math"
	"testing"
)

// naiveMeanVar is the textbook two-pass reference implementation the
// Welford accumulator must agree with.
func naiveMeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	return mean, variance / float64(len(xs)-1)
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
	}{
		{"empty", nil},
		{"single", []float64{3.25}},
		{"pair", []float64{0.95, 0.97}},
		{"paper thresholds", []float64{0.4, 0.42, 0.38, 0.45, 0.41}},
		{"large mean small spread", []float64{1e9 + 1, 1e9 + 2, 1e9 + 3, 1e9 + 4}},
		{"negative and zero", []float64{-4, 0, 4, -2, 2}},
		{"constant", []float64{7, 7, 7, 7, 7, 7}},
	}
	for _, tc := range cases {
		var w Welford
		for _, x := range tc.xs {
			w.Add(x)
		}
		wantMean, wantVar := naiveMeanVar(tc.xs)
		if w.N() != len(tc.xs) {
			t.Errorf("%s: N = %d, want %d", tc.name, w.N(), len(tc.xs))
		}
		if math.Abs(w.Mean()-wantMean) > 1e-9*math.Max(1, math.Abs(wantMean)) {
			t.Errorf("%s: mean = %g, want %g", tc.name, w.Mean(), wantMean)
		}
		if math.Abs(w.Variance()-wantVar) > 1e-6*math.Max(1, wantVar) {
			t.Errorf("%s: variance = %g, want %g", tc.name, w.Variance(), wantVar)
		}
	}
}

func TestTCritical95KnownValues(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {4, 2.776}, {29, 2.045}, {30, 2.042},
		{35, 2.042},   // between entries: rounds df down (conservative)
		{1000, 1.960}, // beyond the table: asymptotic normal value
	}
	for _, tc := range cases {
		if got := TCritical95(tc.df); got != tc.want {
			t.Errorf("TCritical95(%d) = %g, want %g", tc.df, got, tc.want)
		}
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("TCritical95(0) should be NaN (no interval exists)")
	}
}

// TestCIWidthsKnownValues pins the t-sized interval half-widths the
// issue calls out: n=2, 3, 5, and 30 replicates of unit-ish spread.
func TestCIWidthsKnownValues(t *testing.T) {
	cases := []struct {
		n    int
		sd   float64
		want float64 // t(n-1) * sd / sqrt(n)
	}{
		{2, 1, 12.706 / math.Sqrt2},
		{3, 1, 4.303 / math.Sqrt(3)},
		{5, 1, 2.776 / math.Sqrt(5)},
		{30, 1, 2.045 / math.Sqrt(30)},
		{5, 0.02, 2.776 * 0.02 / math.Sqrt(5)},
	}
	for _, tc := range cases {
		half, ok := CI95Half(tc.sd, tc.n)
		if !ok {
			t.Errorf("CI95Half(sd=%g, n=%d) not ok", tc.sd, tc.n)
			continue
		}
		if math.Abs(half-tc.want) > 1e-12 {
			t.Errorf("CI95Half(sd=%g, n=%d) = %g, want %g", tc.sd, tc.n, half, tc.want)
		}
	}
}

func TestCIDegenerateCases(t *testing.T) {
	// A single trial carries no interval.
	if _, ok := CI95Half(1, 1); ok {
		t.Error("n=1 should not produce a CI")
	}
	if mean, sd, half, ok := MeanCI95([]float64{0.5}); ok || mean != 0.5 || sd != 0 || half != 0 {
		t.Errorf("single sample: mean=%g sd=%g half=%g ok=%v, want 0.5 0 0 false", mean, sd, half, ok)
	}
	// No samples at all: no interval either.
	if _, _, _, ok := MeanCI95(nil); ok {
		t.Error("empty sample should not produce a CI")
	}
	// Zero variance is a legitimate zero-width interval.
	mean, sd, half, ok := MeanCI95([]float64{2, 2, 2})
	if !ok || mean != 2 || sd != 0 || half != 0 {
		t.Errorf("constant sample: mean=%g sd=%g half=%g ok=%v, want 2 0 0 true", mean, sd, half, ok)
	}
}
