package ddsr_test

import (
	"fmt"

	"onionbots/internal/ddsr"
	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

// Example demonstrates the DDSR self-repair step on the paper's
// Figure 3 scenario: removing a node whose neighbors then link up
// pairwise.
func Example() {
	g := graph.Star(5) // node 0 is the hub; 1..4 are leaves
	overlay, err := ddsr.New(g, ddsr.Config{DMin: 2, DMax: 4, Pruning: true}, sim.NewRNG(1))
	if err != nil {
		panic(err)
	}

	overlay.RemoveNode(0) // take down the hub

	fmt.Println("repair edges added:", overlay.Stats().RepairEdgesAdded)
	fmt.Println("survivors still connected:", graph.NumComponents(overlay.Graph()) == 1)
	fmt.Println("max degree after prune:", overlay.Graph().MaxDegree())
	// Output:
	// repair edges added: 6
	// survivors still connected: true
	// max degree after prune: 3
}
