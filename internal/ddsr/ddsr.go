package ddsr

import (
	"fmt"

	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

// Maintainer is a graph that supports node takedown under some
// maintenance policy. DDSR overlays self-repair; Normal graphs do not.
type Maintainer interface {
	// RemoveNode takes down one node, applying the policy's repair.
	RemoveNode(id int)
	// Graph exposes the current topology for measurement.
	Graph() *graph.Graph
}

// Joiner is a Maintainer whose policy also covers nodes joining the
// overlay — the other half of membership churn. The churn engine
// (internal/churn) feeds joins through this when the target supports it.
type Joiner interface {
	Maintainer
	// Join adds a fresh node and links it to candidate peers under the
	// policy, returning the number of edges created.
	Join(id int, peers []int) int
}

// Config tunes the DDSR maintenance policy.
type Config struct {
	// DMin is the degree below which a node tries to acquire new peers
	// from its neighbors-of-neighbors. Zero disables the floor.
	DMin int
	// DMax is the degree ceiling enforced by pruning. Zero with
	// Pruning=true is invalid.
	DMax int
	// Pruning enables the prune step. Figures 4a/4c use Pruning=false,
	// 4b/4d use Pruning=true.
	Pruning bool
}

// DefaultConfig returns the policy used throughout the paper's Section V
// for an initially k-regular topology: prune above k, re-peer below
// max(2, k/2).
func DefaultConfig(k int) Config {
	dmin := k / 2
	if dmin < 2 {
		dmin = 2
	}
	return Config{DMin: dmin, DMax: k, Pruning: true}
}

// Stats counts maintenance actions, exposed for the ablation benchmarks.
type Stats struct {
	// RepairEdgesAdded counts edges created by the clique-repair step.
	RepairEdgesAdded int
	// EdgesPruned counts edges removed by the pruning step.
	EdgesPruned int
	// FloorEdgesAdded counts edges created by DMin enforcement.
	FloorEdgesAdded int
	// NodesRemoved counts takedowns processed.
	NodesRemoved int
	// NodesJoined counts joins processed, and JoinEdgesAdded the direct
	// links they created (churn scenarios). Floor re-peering triggered
	// by a join counts toward FloorEdgesAdded, never here.
	NodesJoined    int
	JoinEdgesAdded int
}

// Overlay is a DDSR-maintained graph.
type Overlay struct {
	g     *graph.Graph
	cfg   Config
	rng   *sim.RNG
	stats Stats
	// nbuf and nnbuf are reusable neighbor-list scratches for the
	// prune/floor scans, which would otherwise allocate and sort one
	// (or, for NoN scans, k+1) slices per repair step.
	nbuf  []int
	nnbuf []int
}

var (
	_ Maintainer = (*Overlay)(nil)
	_ Joiner     = (*Overlay)(nil)
)

// New wraps g (taking ownership) in a DDSR overlay. rng drives the
// random tie-breaks mandated by the pruning rule.
func New(g *graph.Graph, cfg Config, rng *sim.RNG) (*Overlay, error) {
	if cfg.Pruning && cfg.DMax < 1 {
		return nil, fmt.Errorf("ddsr: pruning enabled with DMax=%d", cfg.DMax)
	}
	if cfg.DMin > cfg.DMax && cfg.DMax > 0 {
		return nil, fmt.Errorf("ddsr: DMin=%d exceeds DMax=%d", cfg.DMin, cfg.DMax)
	}
	if rng == nil {
		rng = sim.NewRNG(0)
	}
	return &Overlay{g: g, cfg: cfg, rng: rng}, nil
}

// NewRegular builds a random k-regular graph of n nodes and wraps it.
func NewRegular(n, k int, cfg Config, rng *sim.RNG) (*Overlay, error) {
	g, err := graph.RandomRegular(n, k, rng)
	if err != nil {
		return nil, fmt.Errorf("ddsr: %w", err)
	}
	return New(g, cfg, rng)
}

// Graph exposes the current topology. Callers must treat it as
// read-only; mutate only through RemoveNode.
func (o *Overlay) Graph() *graph.Graph { return o.g }

// Config returns the active policy.
func (o *Overlay) Config() Config { return o.cfg }

// Stats returns a copy of the maintenance counters.
func (o *Overlay) Stats() Stats { return o.stats }

// RemoveNode takes down node id and runs the self-repair protocol:
// clique the orphaned neighborhood, prune back to DMax, then re-peer
// nodes that fell below DMin. Removing an absent node is a no-op.
func (o *Overlay) RemoveNode(id int) {
	nbrs := o.g.RemoveNode(id)
	if nbrs == nil {
		return
	}
	o.stats.NodesRemoved++
	o.repairNeighborhood(nbrs)
}

// repairNeighborhood runs the post-removal maintenance steps (clique
// repair, prune, floor) for one orphaned neighborhood. Members that
// have since been removed themselves are skipped by the graph
// primitives, so deferred repair (Lagged) can replay stale
// neighborhoods safely.
func (o *Overlay) repairNeighborhood(nbrs []int) {
	// Repairing: every pair of former neighbors links up.
	o.stats.RepairEdgesAdded += o.g.AddEdgesAmong(nbrs)

	if !o.cfg.Pruning {
		return
	}

	// Pruning: each former neighbor trims its highest-degree peers until
	// back within DMax.
	lost := make(map[int]struct{}) // nodes that lost an edge to pruning
	for _, v := range nbrs {
		for o.g.Degree(v) > o.cfg.DMax {
			w := o.highestDegreePeer(v)
			o.g.RemoveEdge(v, w)
			o.stats.EdgesPruned++
			lost[w] = struct{}{}
			lost[v] = struct{}{}
		}
	}

	if o.cfg.DMin <= 0 {
		return
	}
	// Floor: any node involved in this round whose degree dropped below
	// DMin re-peers with its lowest-degree neighbors-of-neighbors.
	candidates := make([]int, 0, len(nbrs)+len(lost))
	candidates = append(candidates, nbrs...)
	for w := range lost {
		candidates = append(candidates, w)
	}
	sortInts(candidates)
	seen := make(map[int]struct{}, len(candidates))
	for _, v := range candidates {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		o.enforceFloor(v)
	}
}

// Lagged wraps an Overlay so self-repair runs with latency instead of
// instantaneously: RemoveNode deletes the node at once but queues its
// orphaned neighborhood, and Flush replays the queued repairs in
// removal order. This models what the protocol actually does — a bot's
// neighbors only notice its death at their next ping interval — and is
// what makes churn rate a meaningful axis: between flushes, damage
// accumulates unrepaired, so a Poisson leave process at rate λ races
// the maintenance cadence. Joins and direct Overlay methods remain
// immediate.
type Lagged struct {
	*Overlay
	pending [][]int
}

var (
	_ Maintainer = (*Lagged)(nil)
	_ Joiner     = (*Lagged)(nil)
)

// NewLagged wraps o (taking ownership) with deferred repair.
func NewLagged(o *Overlay) *Lagged { return &Lagged{Overlay: o} }

// RemoveNode deletes the node immediately and queues the repair of its
// orphaned neighborhood for the next Flush.
func (l *Lagged) RemoveNode(id int) {
	nbrs := l.g.RemoveNode(id)
	if nbrs == nil {
		return
	}
	l.stats.NodesRemoved++
	l.pending = append(l.pending, nbrs)
}

// Flush replays every queued repair in removal order and returns how
// many neighborhoods were repaired. Members removed since their
// neighborhood was queued are skipped.
func (l *Lagged) Flush() int {
	n := len(l.pending)
	for _, nbrs := range l.pending {
		l.repairNeighborhood(nbrs)
	}
	l.pending = l.pending[:0]
	return n
}

// PendingRepairs reports the queued, not-yet-flushed repair count.
func (l *Lagged) PendingRepairs() int { return len(l.pending) }

// Join adds node id and links it to the candidate peers under the
// maintenance policy: the newcomer accepts candidates until it reaches
// DMax, and a candidate pushed above DMax by the new link immediately
// runs the prune rule (trim highest-degree peers) — accept-then-prune,
// so a newcomer connects even into a saturated k-regular graph instead
// of being refused everywhere and stranded. Afterwards the floor rule
// tops up the newcomer and any prune victims that fell below DMin from
// their neighbors-of-neighbors; those edges count toward
// Stats.FloorEdgesAdded only, keeping the repair counters disjoint. It
// returns the number of direct links created for the newcomer. Joining
// an existing node is a no-op returning 0.
func (o *Overlay) Join(id int, peers []int) int {
	if o.g.HasNode(id) {
		return 0
	}
	o.g.AddNode(id)
	o.stats.NodesJoined++
	added := 0
	var lost map[int]struct{}
	for _, p := range peers {
		if o.cfg.DMax > 0 && o.g.Degree(id) >= o.cfg.DMax {
			break
		}
		if !o.g.AddEdge(id, p) {
			continue
		}
		added++
		if !o.cfg.Pruning {
			continue
		}
		for o.g.Degree(p) > o.cfg.DMax {
			w := o.highestDegreePeer(p)
			o.g.RemoveEdge(p, w)
			o.stats.EdgesPruned++
			if lost == nil {
				lost = make(map[int]struct{})
			}
			lost[p] = struct{}{}
			lost[w] = struct{}{}
		}
	}
	if o.cfg.DMin > 0 {
		o.enforceFloor(id)
		candidates := make([]int, 0, len(lost))
		for w := range lost {
			candidates = append(candidates, w)
		}
		sortInts(candidates)
		for _, v := range candidates {
			o.enforceFloor(v)
		}
	}
	o.stats.JoinEdgesAdded += added
	return added
}

// highestDegreePeer returns the neighbor of v with the largest degree,
// choosing uniformly at random among ties as the paper specifies.
func (o *Overlay) highestDegreePeer(v int) int {
	o.nbuf = o.g.AppendNeighbors(o.nbuf[:0], v)
	nbrs := o.nbuf
	best := -1
	bestDeg := -1
	count := 0
	for _, w := range nbrs {
		d := o.g.Degree(w)
		switch {
		case d > bestDeg:
			best, bestDeg, count = w, d, 1
		case d == bestDeg:
			count++
			if o.rng.Intn(count) == 0 {
				best = w
			}
		}
	}
	return best
}

// enforceFloor connects v to lowest-degree NoN candidates until its
// degree reaches DMin or no candidate remains. Candidates must not
// already be peers and must have headroom under DMax.
func (o *Overlay) enforceFloor(v int) {
	if !o.g.HasNode(v) || o.g.Degree(v) >= o.cfg.DMin {
		return
	}
	for o.g.Degree(v) < o.cfg.DMin {
		cand := o.lowestDegreeNoN(v)
		if cand < 0 {
			return
		}
		if o.g.AddEdge(v, cand) {
			o.stats.FloorEdgesAdded++
		} else {
			return
		}
	}
}

// lowestDegreeNoN returns v's non-adjacent neighbor-of-neighbor with the
// smallest degree and headroom under DMax, or -1 if none exists. Ties
// break uniformly at random.
func (o *Overlay) lowestDegreeNoN(v int) int {
	best := -1
	bestDeg := int(^uint(0) >> 1)
	count := 0
	o.nbuf = o.g.AppendNeighbors(o.nbuf[:0], v)
	for _, u := range o.nbuf {
		o.nnbuf = o.g.AppendNeighbors(o.nnbuf[:0], u)
		for _, w := range o.nnbuf {
			if w == v || o.g.HasEdge(v, w) {
				continue
			}
			d := o.g.Degree(w)
			if o.cfg.DMax > 0 && d >= o.cfg.DMax {
				continue
			}
			switch {
			case d < bestDeg:
				best, bestDeg, count = w, d, 1
			case d == bestDeg && w != best:
				count++
				if o.rng.Intn(count) == 0 {
					best = w
				}
			}
		}
	}
	return best
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
