// Package ddsr implements the paper's Dynamic Distributed Self-Repairing
// (DDSR) graph — the Neighbors-of-Neighbor (NoN) based self-healing
// overlay that is the topological core of the OnionBot design
// (Section IV-C).
//
// The maintenance protocol, exactly as the paper specifies it:
//
//   - Repairing: when node u is deleted, every pair (uj, uk) of u's
//     former neighbors forms an edge iff it does not already exist. Each
//     neighbor can do this locally because NoN state tells it who u's
//     other neighbors are.
//   - Pruning: to keep degrees within [DMin, DMax], each former neighbor
//     of the deleted node removes its highest-degree peer (uniformly at
//     random among ties) until its degree is back in range. Removing the
//     highest-degree peer preserves reachability.
//   - Forgetting: pruned peers forget each other; at this abstraction
//     level that is simply the edge disappearing. (Address rotation, the
//     other half of forgetting, lives in the protocol layer,
//     internal/core.)
//
// DMin is enforced opportunistically — a node whose degree fell below
// DMin reconnects to its lowest-degree neighbors-of-neighbors — and, as
// the paper notes, only applies while enough nodes survive.
//
// The package also provides the Normal baseline (identical deletions, no
// repair), which the paper plots against DDSR in Figures 5 and 6.
package ddsr
