package ddsr

import (
	"testing"
	"testing/quick"

	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

func TestRepairCliquesOrphanedNeighborhood(t *testing.T) {
	// Star: removing the center must leave the leaves fully connected.
	g := graph.Star(5) // center 0, leaves 1..4
	o, err := New(g, Config{Pruning: false}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	o.RemoveNode(0)
	for u := 1; u <= 4; u++ {
		for v := u + 1; v <= 4; v++ {
			if !o.Graph().HasEdge(u, v) {
				t.Fatalf("repair missed edge (%d,%d)", u, v)
			}
		}
	}
	if got := o.Stats().RepairEdgesAdded; got != 6 {
		t.Fatalf("RepairEdgesAdded = %d, want 6", got)
	}
}

func TestRepairSkipsExistingEdges(t *testing.T) {
	// Triangle 1-2-3 plus hub 0 connected to all: removing 0 adds nothing.
	g := graph.New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	o, err := New(g, Config{Pruning: false}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	o.RemoveNode(0)
	if got := o.Stats().RepairEdgesAdded; got != 0 {
		t.Fatalf("RepairEdgesAdded = %d, want 0", got)
	}
	if o.Graph().NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", o.Graph().NumEdges())
	}
}

func TestRemoveAbsentNodeIsNoop(t *testing.T) {
	o, err := NewRegular(20, 4, DefaultConfig(4), sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	o.RemoveNode(999)
	if o.Stats().NodesRemoved != 0 {
		t.Fatal("absent-node removal counted as takedown")
	}
	if o.Graph().NumNodes() != 20 {
		t.Fatal("absent-node removal mutated graph")
	}
}

func TestPruningBoundsDegree(t *testing.T) {
	for _, k := range []int{5, 10, 15} {
		rng := sim.NewRNG(uint64(k))
		o, err := NewRegular(200, k, DefaultConfig(k), rng)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(200)
		for _, id := range perm[:60] { // 30% gradual takedown
			o.RemoveNode(id)
			if max := o.Graph().MaxDegree(); max > k {
				t.Fatalf("k=%d: max degree %d exceeds DMax after takedown", k, max)
			}
		}
		if err := o.Graph().Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestNoPruningDegreeGrows(t *testing.T) {
	rng := sim.NewRNG(3)
	o, err := NewRegular(200, 10, Config{Pruning: false}, rng)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(200)
	for _, id := range perm[:60] {
		o.RemoveNode(id)
	}
	if max := o.Graph().MaxDegree(); max <= 10 {
		t.Fatalf("without pruning max degree stayed at %d; repair should inflate it", max)
	}
}

func TestDDSRStaysConnectedUnderMassTakedown(t *testing.T) {
	// The paper's headline property (Fig 5a/5b): DDSR remains connected
	// even at 90% gradual node deletion, where a normal graph shatters.
	rng := sim.NewRNG(17)
	o, err := NewRegular(300, 10, DefaultConfig(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(300)
	for _, id := range perm[:270] { // 90%
		o.RemoveNode(id)
		if n := graph.NumComponents(o.Graph()); n > 1 {
			t.Fatalf("DDSR partitioned into %d components at %d survivors",
				n, o.Graph().NumNodes())
		}
	}
}

func TestNormalShattersUnderMassTakedown(t *testing.T) {
	rng := sim.NewRNG(17)
	m, err := NewNormalRegular(300, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(300)
	for _, id := range perm[:270] {
		m.RemoveNode(id)
	}
	if n := graph.NumComponents(m.Graph()); n <= 1 {
		t.Fatalf("normal graph still connected after 90%% deletion (components=%d)", n)
	}
}

func TestFloorReconnectsLowDegreeNodes(t *testing.T) {
	// After heavy takedown with pruning, surviving nodes should sit
	// within [DMin, DMax] whenever the survivor count allows it.
	rng := sim.NewRNG(5)
	cfg := DefaultConfig(10)
	o, err := NewRegular(200, 10, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(200)
	for _, id := range perm[:100] {
		o.RemoveNode(id)
	}
	below := 0
	for _, v := range o.Graph().Nodes() {
		if o.Graph().Degree(v) < cfg.DMin {
			below++
		}
	}
	// The floor is opportunistic, not absolute; with 100 survivors and
	// DMin=5 nearly everyone should be in range.
	if below > 5 {
		t.Fatalf("%d/100 survivors below DMin", below)
	}
}

func TestFloorRePeersViaNeighborsOfNeighbors(t *testing.T) {
	// x-v-u-w chain: removing x leaves v at degree 1 (< DMin=2), and v's
	// only NoN candidate is w, so the floor step must create (v, w).
	g := graph.New()
	g.AddEdge(100, 1) // x-v
	g.AddEdge(1, 2)   // v-u
	g.AddEdge(2, 3)   // u-w
	o, err := New(g, Config{DMin: 2, DMax: 3, Pruning: true}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	o.RemoveNode(100)
	if !o.Graph().HasEdge(1, 3) {
		t.Fatal("floor step did not re-peer v with its neighbor-of-neighbor")
	}
	if got := o.Stats().FloorEdgesAdded; got != 1 {
		t.Fatalf("FloorEdgesAdded = %d, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(graph.New(), Config{Pruning: true, DMax: 0}, nil); err == nil {
		t.Fatal("accepted pruning with DMax=0")
	}
	if _, err := New(graph.New(), Config{DMin: 5, DMax: 3, Pruning: true}, nil); err == nil {
		t.Fatal("accepted DMin > DMax")
	}
	if _, err := New(graph.New(), Config{}, nil); err != nil {
		t.Fatalf("rejected valid no-pruning config: %v", err)
	}
}

func TestDefaultConfig(t *testing.T) {
	tests := []struct {
		k, dmin, dmax int
	}{
		{5, 2, 5}, {10, 5, 10}, {15, 7, 15}, {3, 2, 3},
	}
	for _, tt := range tests {
		cfg := DefaultConfig(tt.k)
		if cfg.DMin != tt.dmin || cfg.DMax != tt.dmax || !cfg.Pruning {
			t.Errorf("DefaultConfig(%d) = %+v, want dmin=%d dmax=%d pruning",
				tt.k, cfg, tt.dmin, tt.dmax)
		}
	}
}

func TestNormalBaselineDoesNotRepair(t *testing.T) {
	g := graph.Star(5)
	m := NewNormal(g)
	m.RemoveNode(0)
	if m.Graph().NumEdges() != 0 {
		t.Fatal("normal baseline added edges after removal")
	}
	if m.Graph().NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4", m.Graph().NumNodes())
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []int {
		rng := sim.NewRNG(seed)
		o, err := NewRegular(100, 6, DefaultConfig(6), rng)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(100)
		for _, id := range perm[:50] {
			o.RemoveNode(id)
		}
		var degs []int
		for _, v := range o.Graph().Nodes() {
			degs = append(degs, v, o.Graph().Degree(v))
		}
		return degs
	}
	a, b := run(9), run(9)
	if len(a) != len(b) {
		t.Fatal("same seed produced different survivor sets")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different maintenance outcomes")
		}
	}
}

func TestPropertyInvariantsUnderRandomTakedown(t *testing.T) {
	f := func(seed uint64, frac uint8) bool {
		rng := sim.NewRNG(seed)
		const n, k = 80, 6
		o, err := NewRegular(n, k, DefaultConfig(k), rng)
		if err != nil {
			return false
		}
		kill := int(frac)%60 + 1
		perm := rng.Perm(n)
		for _, id := range perm[:kill] {
			o.RemoveNode(id)
		}
		g := o.Graph()
		if g.Validate() != nil {
			return false
		}
		if g.MaxDegree() > k {
			return false
		}
		return g.NumNodes() == n-kill
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinIntoSaturatedGraphConnects(t *testing.T) {
	// Every node of a fresh k-regular graph sits exactly at DMax, so a
	// naive "skip full candidates" join would strand the newcomer.
	// Accept-then-prune must connect it while restoring the ceiling.
	const n, k = 60, 6
	rng := sim.NewRNG(21)
	o, err := NewRegular(n, k, DefaultConfig(k), rng)
	if err != nil {
		t.Fatal(err)
	}
	added := o.Join(n, []int{3, 7, 11, 19})
	if added == 0 {
		t.Fatal("join created no edges")
	}
	g := o.Graph()
	if g.Degree(n) < o.Config().DMin {
		t.Fatalf("newcomer degree %d below DMin %d", g.Degree(n), o.Config().DMin)
	}
	if g.MaxDegree() > k {
		t.Fatalf("max degree %d exceeds DMax %d after join", g.MaxDegree(), k)
	}
	if !g.Connected() {
		t.Fatal("graph disconnected after join")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.NodesJoined != 1 || st.JoinEdgesAdded != added {
		t.Fatalf("stats = %+v, want 1 join with %d edges", st, added)
	}
	// Re-joining an existing id is a no-op.
	if o.Join(n, []int{1}) != 0 {
		t.Fatal("duplicate join created edges")
	}
}

func TestNormalJoinLinksUnconditionally(t *testing.T) {
	rng := sim.NewRNG(22)
	m, err := NewNormalRegular(30, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if added := m.Join(30, []int{0, 1, 2, 3, 4, 5}); added != 6 {
		t.Fatalf("normal join added %d edges, want all 6", added)
	}
	if m.Graph().Degree(30) != 6 {
		t.Fatalf("degree = %d, want 6 (no ceiling)", m.Graph().Degree(30))
	}
}

func BenchmarkRemoveNodeWithPruning(b *testing.B) {
	rng := sim.NewRNG(1)
	o, err := NewRegular(5000, 10, DefaultConfig(10), rng)
	if err != nil {
		b.Fatal(err)
	}
	perm := rng.Perm(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.RemoveNode(perm[i%4000])
	}
}
