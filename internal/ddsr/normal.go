package ddsr

import (
	"fmt"

	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

// Normal is the paper's baseline: the same topology and the same
// deletions as a DDSR overlay, but with no repair of any kind. Figures 5
// and 6 plot DDSR against this.
type Normal struct {
	g *graph.Graph
}

var _ Maintainer = (*Normal)(nil)

// NewNormal wraps g (taking ownership) with the no-repair policy.
func NewNormal(g *graph.Graph) *Normal { return &Normal{g: g} }

// NewNormalRegular builds a random k-regular graph of n nodes and wraps
// it with the no-repair policy.
func NewNormalRegular(n, k int, rng *sim.RNG) (*Normal, error) {
	g, err := graph.RandomRegular(n, k, rng)
	if err != nil {
		return nil, fmt.Errorf("ddsr: %w", err)
	}
	return NewNormal(g), nil
}

// RemoveNode deletes the node and its edges; nothing heals.
func (m *Normal) RemoveNode(id int) { m.g.RemoveNode(id) }

// Graph exposes the current topology.
func (m *Normal) Graph() *graph.Graph { return m.g }
