package ddsr

import (
	"fmt"

	"onionbots/internal/graph"
	"onionbots/internal/sim"
)

// Normal is the paper's baseline: the same topology and the same
// deletions as a DDSR overlay, but with no repair of any kind. Figures 5
// and 6 plot DDSR against this.
type Normal struct {
	g *graph.Graph
}

var _ Maintainer = (*Normal)(nil)

// NewNormal wraps g (taking ownership) with the no-repair policy.
func NewNormal(g *graph.Graph) *Normal { return &Normal{g: g} }

// NewNormalRegular builds a random k-regular graph of n nodes and wraps
// it with the no-repair policy.
func NewNormalRegular(n, k int, rng *sim.RNG) (*Normal, error) {
	g, err := graph.RandomRegular(n, k, rng)
	if err != nil {
		return nil, fmt.Errorf("ddsr: %w", err)
	}
	return NewNormal(g), nil
}

var _ Joiner = (*Normal)(nil)

// RemoveNode deletes the node and its edges; nothing heals.
func (m *Normal) RemoveNode(id int) { m.g.RemoveNode(id) }

// Join adds the node and links it to every candidate peer — no policy,
// no degree bounds, mirroring RemoveNode's "no maintenance" stance. It
// returns the number of edges created.
func (m *Normal) Join(id int, peers []int) int {
	if m.g.HasNode(id) {
		return 0
	}
	m.g.AddNode(id)
	added := 0
	for _, p := range peers {
		if m.g.AddEdge(id, p) {
			added++
		}
	}
	return added
}

// Graph exposes the current topology.
func (m *Normal) Graph() *graph.Graph { return m.g }
