package pow

import (
	"time"
)

// Admission is the per-bot escalating proof-of-work gate on peering.
// Each acceptance within Window raises the difficulty by StepBits, so a
// clone flood faces an exponentially growing bill while organic churn
// stays cheap.
type Admission struct {
	// BaseBits is the difficulty with no recent acceptances. Default 8.
	BaseBits uint8
	// StepBits is added per acceptance within Window. Default 2.
	StepBits uint8
	// MaxBits caps escalation. Default 24.
	MaxBits uint8
	// Window is the escalation look-back. Default 1h.
	Window time.Duration

	accepts    []time.Time
	challenges map[string][]byte
	nextChal   uint64
}

// NewAdmission returns an admission gate with defaults filled in.
func NewAdmission(base, step, max uint8, window time.Duration) *Admission {
	if base == 0 {
		base = 8
	}
	if step == 0 {
		step = 2
	}
	if max == 0 {
		max = 24
	}
	if window == 0 {
		window = time.Hour
	}
	return &Admission{
		BaseBits:   base,
		StepBits:   step,
		MaxBits:    max,
		Window:     window,
		challenges: make(map[string][]byte),
	}
}

// RequiredBits reports the current difficulty.
func (a *Admission) RequiredBits(now time.Time) uint8 {
	recent := 0
	for _, t := range a.accepts {
		if now.Sub(t) <= a.Window {
			recent++
		}
	}
	bits := int(a.BaseBits) + recent*int(a.StepBits)
	if bits > int(a.MaxBits) {
		bits = int(a.MaxBits)
	}
	return uint8(bits)
}

// Vet implements the challenge-response admission: the first request
// from an onion receives a challenge and the current difficulty; a
// follow-up request carrying a valid proof at (or above) the required
// difficulty is admitted.
func (a *Admission) Vet(onion string, nonce uint64, proofBits uint8, now time.Time) (ok bool, challenge []byte, required uint8) {
	required = a.RequiredBits(now)
	ch, issued := a.challenges[onion]
	if issued && proofBits >= required && Verify(ch, nonce, proofBits) {
		delete(a.challenges, onion)
		a.accepts = append(a.accepts, now)
		a.gc(now)
		return true, nil, 0
	}
	if !issued {
		ch = a.mintChallenge(onion)
		a.challenges[onion] = ch
	}
	return false, ch, required
}

// mintChallenge derives a per-requester challenge. It need not be
// unpredictable, only unique per (gate, requester, sequence), so a
// counter-hash suffices and keeps the package dependency-free.
func (a *Admission) mintChallenge(onion string) []byte {
	a.nextChal++
	seed := make([]byte, 0, len(onion)+16)
	seed = append(seed, []byte("pow-challenge:")...)
	seed = append(seed, onion...)
	seed = append(seed, byte(a.nextChal), byte(a.nextChal>>8),
		byte(a.nextChal>>16), byte(a.nextChal>>24))
	d := digest(seed, a.nextChal)
	return d[:16]
}

func (a *Admission) gc(now time.Time) {
	if len(a.accepts) < 256 {
		return
	}
	kept := a.accepts[:0]
	for _, t := range a.accepts {
		if now.Sub(t) <= a.Window {
			kept = append(kept, t)
		}
	}
	a.accepts = kept
}

// RateLimiter delays acceptances proportionally to peer-list size
// (the second Section VII-A mechanism).
type RateLimiter struct {
	// BasePerPeer is the required gap per existing peer. Default 1m.
	BasePerPeer time.Duration
	last        time.Time
	primed      bool
}

// NewRateLimiter builds a limiter.
func NewRateLimiter(basePerPeer time.Duration) *RateLimiter {
	if basePerPeer == 0 {
		basePerPeer = time.Minute
	}
	return &RateLimiter{BasePerPeer: basePerPeer}
}

// Allow reports whether another peer may be accepted now, given the
// current peer count, and records the acceptance when it is.
func (r *RateLimiter) Allow(now time.Time, peerCount int) bool {
	if !r.primed {
		r.primed = true
		r.last = now
		return true
	}
	wait := r.BasePerPeer * time.Duration(peerCount)
	if now.Sub(r.last) < wait {
		return false
	}
	r.last = now
	return true
}
