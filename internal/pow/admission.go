package pow

import (
	"time"
)

// Admission is the per-bot escalating proof-of-work gate on peering.
// Each acceptance within Window raises the difficulty by StepBits, so a
// clone flood faces an exponentially growing bill while organic churn
// stays cheap.
type Admission struct {
	// BaseBits is the difficulty with no recent acceptances. Default 8.
	BaseBits uint8
	// StepBits is added per acceptance within Window. Default 2.
	StepBits uint8
	// MaxBits caps escalation. Default 24.
	MaxBits uint8
	// Window is the escalation look-back. Default 1h.
	Window time.Duration
	// MaxPending caps the unsolved-challenge table. Default 1024.
	MaxPending int

	accepts    []time.Time
	challenges map[string]pendingChallenge
	// mintOrder lists (requester, mint time) in mint order (Vet's now
	// arguments are non-decreasing), so cap eviction pops the oldest in
	// O(1) amortized; entries whose challenge was solved, swept, or
	// re-minted meanwhile no longer match the table and are skipped
	// lazily, and the slice is compacted at sweep cadence.
	mintOrder []mintRecord
	nextChal  uint64
	lastSweep time.Time
}

// mintRecord is one mint-order queue entry; minted disambiguates a
// stale entry from a later re-mint by the same requester.
type mintRecord struct {
	onion  string
	minted time.Time
}

// pendingChallenge is an unsolved challenge plus its mint time, so the
// table can expire entries that will never come back with a proof.
type pendingChallenge struct {
	bytes  []byte
	minted time.Time
}

// NewAdmission returns an admission gate with defaults filled in.
func NewAdmission(base, step, max uint8, window time.Duration) *Admission {
	if base == 0 {
		base = 8
	}
	if step == 0 {
		step = 2
	}
	if max == 0 {
		max = 24
	}
	if window == 0 {
		window = time.Hour
	}
	return &Admission{
		BaseBits:   base,
		StepBits:   step,
		MaxBits:    max,
		Window:     window,
		MaxPending: 1024,
		challenges: make(map[string]pendingChallenge),
	}
}

// PendingChallenges reports the unsolved-challenge table size (for
// tests and monitoring).
func (a *Admission) PendingChallenges() int { return len(a.challenges) }

// RequiredBits reports the current difficulty.
func (a *Admission) RequiredBits(now time.Time) uint8 {
	recent := 0
	for _, t := range a.accepts {
		if now.Sub(t) <= a.Window {
			recent++
		}
	}
	bits := int(a.BaseBits) + recent*int(a.StepBits)
	if bits > int(a.MaxBits) {
		bits = int(a.MaxBits)
	}
	return uint8(bits)
}

// Vet implements the challenge-response admission: the first request
// from an onion receives a challenge and the current difficulty; a
// follow-up request carrying a valid proof at (or above) the required
// difficulty is admitted.
//
// Unsolved challenges expire: a SOAP-style clone flood mints a fresh
// onion per clone and never returns with a proof, so without expiry the
// gate leaked one table entry per clone forever — the exact adversary
// it exists to price out could blow up its memory for free. Entries
// older than Window are swept opportunistically, and the table is
// hard-capped at MaxPending (when full, the oldest entry is evicted to
// make room — forgetting an unsolved challenge only costs that
// requester a re-challenge).
func (a *Admission) Vet(onion string, nonce uint64, proofBits uint8, now time.Time) (ok bool, challenge []byte, required uint8) {
	a.expireChallenges(now)
	required = a.RequiredBits(now)
	pc, issued := a.challenges[onion]
	if issued && proofBits >= required && Verify(pc.bytes, nonce, proofBits) {
		delete(a.challenges, onion)
		a.accepts = append(a.accepts, now)
		a.gc(now)
		return true, nil, 0
	}
	if !issued {
		if max := a.maxPending(); len(a.challenges) >= max {
			a.evictOldest()
		}
		pc = pendingChallenge{bytes: a.mintChallenge(onion), minted: now}
		a.challenges[onion] = pc
		a.mintOrder = append(a.mintOrder, mintRecord{onion: onion, minted: now})
	}
	return false, pc.bytes, required
}

func (a *Admission) maxPending() int {
	if a.MaxPending > 0 {
		return a.MaxPending
	}
	return 1024
}

// expireChallenges drops unsolved challenges older than Window and
// compacts the mint-order queue. The sweep runs at most every
// Window/4, so its cost amortizes to O(1) per request.
func (a *Admission) expireChallenges(now time.Time) {
	if len(a.challenges) == 0 || now.Sub(a.lastSweep) < a.Window/4 {
		return
	}
	a.lastSweep = now
	for onion, pc := range a.challenges {
		if now.Sub(pc.minted) > a.Window {
			delete(a.challenges, onion)
		}
	}
	// Compact the queue: drop entries whose challenge was solved,
	// evicted, re-minted at a later position, or just swept, so the
	// slice stays proportional to the live table.
	kept := a.mintOrder[:0]
	for _, rec := range a.mintOrder {
		if pc, live := a.challenges[rec.onion]; live && pc.minted.Equal(rec.minted) {
			kept = append(kept, rec)
		}
	}
	a.mintOrder = kept
}

// evictOldest removes the oldest pending challenge: pop the mint-order
// queue past any stale entries (solved or swept meanwhile) to the
// first still-pending one. Amortized O(1) — every queued entry is
// popped at most once — where a table scan would cost O(MaxPending)
// per request during exactly the flood the cap defends against.
func (a *Admission) evictOldest() {
	for len(a.mintOrder) > 0 {
		rec := a.mintOrder[0]
		a.mintOrder = a.mintOrder[1:]
		if pc, live := a.challenges[rec.onion]; live && pc.minted.Equal(rec.minted) {
			delete(a.challenges, rec.onion)
			return
		}
	}
}

// mintChallenge derives a per-requester challenge. It need not be
// unpredictable, only unique per (gate, requester, sequence), so a
// counter-hash suffices and keeps the package dependency-free.
func (a *Admission) mintChallenge(onion string) []byte {
	a.nextChal++
	seed := make([]byte, 0, len(onion)+16)
	seed = append(seed, []byte("pow-challenge:")...)
	seed = append(seed, onion...)
	seed = append(seed, byte(a.nextChal), byte(a.nextChal>>8),
		byte(a.nextChal>>16), byte(a.nextChal>>24))
	d := digest(seed, a.nextChal)
	return d[:16]
}

func (a *Admission) gc(now time.Time) {
	if len(a.accepts) < 256 {
		return
	}
	kept := a.accepts[:0]
	for _, t := range a.accepts {
		if now.Sub(t) <= a.Window {
			kept = append(kept, t)
		}
	}
	a.accepts = kept
}

// RateLimiter delays acceptances proportionally to peer-list size
// (the second Section VII-A mechanism).
type RateLimiter struct {
	// BasePerPeer is the required gap per existing peer. Default 1m.
	BasePerPeer time.Duration
	last        time.Time
	primed      bool
}

// NewRateLimiter builds a limiter.
func NewRateLimiter(basePerPeer time.Duration) *RateLimiter {
	if basePerPeer == 0 {
		basePerPeer = time.Minute
	}
	return &RateLimiter{BasePerPeer: basePerPeer}
}

// Allow reports whether another peer may be accepted now, given the
// current peer count, and records the acceptance when it is.
func (r *RateLimiter) Allow(now time.Time, peerCount int) bool {
	if !r.primed {
		r.primed = true
		r.last = now
		return true
	}
	wait := r.BasePerPeer * time.Duration(peerCount)
	if now.Sub(r.last) < wait {
		return false
	}
	r.last = now
	return true
}
