// Package pow implements the attacker-side counter-mitigations of
// Section VII-A, with which a next-generation OnionBot would resist
// SOAP:
//
//   - hashcash-style proof-of-work on peering: a new node must solve a
//     SHA-256 puzzle before being accepted, and the difficulty escalates
//     with recent acceptance volume, so older nodes are preferred and a
//     clone flood pays an exponentially growing bill;
//   - rate limiting: the delay before accepting another peer grows
//     proportionally to the current peer-list size.
//
// Both mechanisms trade recoverability for adversarial resilience — the
// open question the paper poses — and the experiment harness measures
// exactly that trade: attacker hashes per contained bot versus honest
// repair cost under takedown.
//
// The package is dependency-free within the project (internal/core
// imports it for the requester-side solver), so the hardening can be
// wired into any bot via core.Bot.AcceptVet.
package pow
