package pow

import (
	"crypto/sha256"
	"encoding/binary"
	"math/bits"
)

// MaxDifficulty bounds puzzle hardness; beyond ~30 bits a single solve
// becomes impractical inside a simulation tick.
const MaxDifficulty = 30

// Verify reports whether nonce solves the challenge at the given
// difficulty (leading zero bits of SHA-256(challenge || nonce)).
func Verify(challenge []byte, nonce uint64, difficulty uint8) bool {
	if difficulty == 0 {
		return true
	}
	if difficulty > MaxDifficulty {
		return false
	}
	return leadingZeroBits(digest(challenge, nonce)) >= int(difficulty)
}

// Solve finds a nonce meeting the difficulty and reports how many hash
// evaluations it spent — the attacker-work currency of the Section
// VII-A evaluation.
func Solve(challenge []byte, difficulty uint8) (nonce uint64, hashes uint64) {
	if difficulty == 0 {
		return 0, 0
	}
	for n := uint64(0); ; n++ {
		hashes++
		if leadingZeroBits(digest(challenge, n)) >= int(difficulty) {
			return n, hashes
		}
	}
}

// ExpectedHashes is the analytic cost of one solve: 2^difficulty.
func ExpectedHashes(difficulty uint8) float64 {
	return float64(uint64(1) << difficulty)
}

func digest(challenge []byte, nonce uint64) [sha256.Size]byte {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], nonce)
	h := sha256.New()
	h.Write(challenge)
	h.Write(n[:])
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

func leadingZeroBits(d [sha256.Size]byte) int {
	total := 0
	for i := 0; i < len(d); i += 8 {
		word := binary.BigEndian.Uint64(d[i : i+8])
		lz := bits.LeadingZeros64(word)
		total += lz
		if lz < 64 {
			break
		}
	}
	return total
}
