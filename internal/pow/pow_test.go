package pow

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestSolveVerifyRoundTrip(t *testing.T) {
	for _, bits := range []uint8{0, 1, 4, 8, 12, 16} {
		challenge := []byte{1, 2, 3, byte(bits)}
		nonce, hashes := Solve(challenge, bits)
		if !Verify(challenge, nonce, bits) {
			t.Fatalf("bits=%d: solved nonce fails verification", bits)
		}
		if bits > 0 && hashes == 0 {
			t.Fatalf("bits=%d: zero hashes reported", bits)
		}
	}
}

func TestVerifyRejectsWrongNonceAndOverclaim(t *testing.T) {
	challenge := []byte("challenge")
	nonce, _ := Solve(challenge, 8)
	if Verify(challenge, nonce+1, 8) && Verify(challenge, nonce+2, 8) && Verify(challenge, nonce+3, 8) {
		t.Fatal("arbitrary nonces keep verifying; puzzle is broken")
	}
	if Verify(challenge, nonce, MaxDifficulty+1) {
		t.Fatal("difficulty above MaxDifficulty accepted")
	}
	if !Verify(challenge, 12345, 0) {
		t.Fatal("zero difficulty must always verify")
	}
}

func TestSolveCostGrowsWithDifficulty(t *testing.T) {
	challenge := []byte("cost")
	var prev uint64
	for _, bits := range []uint8{4, 8, 12} {
		total := uint64(0)
		for i := 0; i < 8; i++ {
			_, h := Solve(append(challenge, byte(i)), bits)
			total += h
		}
		if total <= prev {
			t.Fatalf("cost at %d bits (%d) not above previous (%d)", bits, total, prev)
		}
		prev = total
	}
	if ExpectedHashes(10) != 1024 {
		t.Fatalf("ExpectedHashes(10) = %v", ExpectedHashes(10))
	}
}

func TestSolveCostMatchesExpectation(t *testing.T) {
	// Average solve cost at 8 bits should be near 2^8 = 256.
	challenge := []byte("expectation")
	total := uint64(0)
	const trials = 64
	for i := 0; i < trials; i++ {
		_, h := Solve(append(challenge, byte(i), byte(i>>8)), 8)
		total += h
	}
	avg := float64(total) / trials
	if avg < 64 || avg > 1024 {
		t.Fatalf("average cost at 8 bits = %.0f, want within [64, 1024]", avg)
	}
}

func TestLeadingZeroBitsProperty(t *testing.T) {
	err := quick.Check(func(challenge []byte, nonce uint64) bool {
		d := digest(challenge, nonce)
		lz := leadingZeroBits(d)
		if lz < 0 || lz > 256 {
			return false
		}
		// Definitional check against a bit-by-bit count.
		count := 0
		for _, b := range d {
			if b == 0 {
				count += 8
				continue
			}
			for mask := byte(0x80); mask != 0; mask >>= 1 {
				if b&mask != 0 {
					return lz == count
				}
				count++
			}
		}
		return lz == count
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionChallengeResponse(t *testing.T) {
	ad := NewAdmission(8, 2, 24, time.Hour)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)

	// First contact: challenged.
	ok, ch, bits := ad.Vet("bot-a", 0, 0, now)
	if ok || ch == nil || bits != 8 {
		t.Fatalf("first Vet = (%v, %v, %d), want challenge at 8 bits", ok, ch, bits)
	}
	// Solve and retry: admitted.
	nonce, _ := Solve(ch, bits)
	ok, _, _ = ad.Vet("bot-a", nonce, bits, now)
	if !ok {
		t.Fatal("valid proof rejected")
	}
	// The challenge is consumed: replaying the proof fails.
	ok, _, _ = ad.Vet("bot-a", nonce, bits, now)
	if ok {
		t.Fatal("replayed proof admitted")
	}
}

func TestAdmissionEscalates(t *testing.T) {
	ad := NewAdmission(8, 2, 24, time.Hour)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		name := string(rune('a' + i))
		_, ch, bits := ad.Vet(name, 0, 0, now)
		want := uint8(8 + 2*i)
		if bits != want {
			t.Fatalf("acceptance %d: required bits = %d, want %d", i, bits, want)
		}
		nonce, _ := Solve(ch, bits)
		if ok, _, _ := ad.Vet(name, nonce, bits, now); !ok {
			t.Fatalf("acceptance %d failed", i)
		}
	}
	// Outside the window the difficulty relaxes back to base.
	if got := ad.RequiredBits(now.Add(2 * time.Hour)); got != 8 {
		t.Fatalf("difficulty after window = %d, want 8", got)
	}
	// Escalation saturates at MaxBits.
	ad2 := NewAdmission(20, 10, 24, time.Hour)
	ad2.accepts = append(ad2.accepts, now, now, now)
	if got := ad2.RequiredBits(now); got != 24 {
		t.Fatalf("saturated difficulty = %d, want 24", got)
	}
}

func TestRateLimiterScalesWithPeerCount(t *testing.T) {
	rl := NewRateLimiter(time.Minute)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	if !rl.Allow(now, 5) {
		t.Fatal("first acceptance must pass")
	}
	// 5 peers -> 5 minute gap.
	if rl.Allow(now.Add(4*time.Minute), 5) {
		t.Fatal("accepted before the scaled delay elapsed")
	}
	if !rl.Allow(now.Add(6*time.Minute), 5) {
		t.Fatal("rejected after the delay elapsed")
	}
}

func BenchmarkSolve12Bits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Solve([]byte{byte(i), byte(i >> 8)}, 12)
	}
}

// TestAdmissionChallengeTableBounded is the clone-flood regression: a
// SOAP-style attacker minting a fresh onion per request must not grow
// the unsolved-challenge table without bound — exactly the adversary
// the gate prices out used to leak one map entry per clone forever.
func TestAdmissionChallengeTableBounded(t *testing.T) {
	ad := NewAdmission(8, 2, 24, time.Hour)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5000; i++ {
		onion := fmt.Sprintf("clone-%04d.onion", i)
		if ok, ch, _ := ad.Vet(onion, 0, 0, now); ok || ch == nil {
			t.Fatal("proofless first contact must be challenged, not admitted")
		}
		now = now.Add(time.Second)
	}
	if got := ad.PendingChallenges(); got > ad.MaxPending {
		t.Fatalf("flood grew the challenge table to %d entries, cap is %d", got, ad.MaxPending)
	}
	if got := ad.PendingChallenges(); got == 0 {
		t.Fatal("cap eviction emptied the table entirely")
	}
}

// TestAdmissionExpiresUnsolvedChallenges pins the time-based path: a
// burst of never-returning requesters is swept out one Window later.
func TestAdmissionExpiresUnsolvedChallenges(t *testing.T) {
	ad := NewAdmission(8, 2, 24, time.Hour)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		ad.Vet(fmt.Sprintf("ghost-%d.onion", i), 0, 0, now)
	}
	if got := ad.PendingChallenges(); got != 100 {
		t.Fatalf("expected 100 pending challenges, got %d", got)
	}
	// A single request far past the window triggers the sweep.
	later := now.Add(2 * time.Hour)
	ad.Vet("fresh.onion", 0, 0, later)
	if got := ad.PendingChallenges(); got != 1 {
		t.Fatalf("stale challenges survived the sweep: %d pending, want 1 (the fresh requester)", got)
	}
}

// TestAdmissionHonestFlowSurvivesExpiry pins that the honest
// challenge-solve-retry flow still works, including after an eviction
// forced a re-challenge.
func TestAdmissionHonestFlowSurvivesExpiry(t *testing.T) {
	ad := NewAdmission(8, 2, 24, time.Hour)
	ad.MaxPending = 4
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	ok, ch, bits := ad.Vet("honest.onion", 0, 0, now)
	if ok {
		t.Fatal("admitted without proof")
	}
	// A burst of strangers evicts the honest bot's pending challenge.
	for i := 0; i < 10; i++ {
		ad.Vet(fmt.Sprintf("stranger-%d.onion", i), 0, 0, now.Add(time.Second))
	}
	// Its solved proof no longer matches a pending challenge; it gets a
	// fresh one and succeeds on the retry.
	nonce, _ := Solve(ch, bits)
	ok, ch2, bits2 := ad.Vet("honest.onion", nonce, bits, now.Add(time.Minute))
	if ok {
		t.Fatal("stale proof accepted after eviction")
	}
	if ch2 == nil {
		t.Fatal("no re-challenge after eviction")
	}
	nonce2, _ := Solve(ch2, bits2)
	if ok, _, _ := ad.Vet("honest.onion", nonce2, bits2, now.Add(2*time.Minute)); !ok {
		t.Fatal("fresh proof rejected")
	}
}
