package core

// aliveIndex is the struct-of-arrays form of the living-bot index: two
// flat int32 slices instead of a []*Bot plus a map[*Bot]int. ids holds
// roster indices (positions in BotNet.bots) in swap-remove order —
// exactly the order the previous pointer-slice maintained, so uniform
// draws over it are byte-identical to the old layout (pinned by
// TestAliveIndexMatchesReference). pos is the inverse permutation,
// indexed by roster index, -1 for dead bots.
//
// The layout buys three things at 10^6 bots: population counts and
// victim draws touch two cache-resident int32 arrays instead of
// hashing pointers; takedown is two array writes with zero map
// traffic; and the GC sees two pointer-free slices instead of a
// million-entry map of pointer keys.
type aliveIndex struct {
	ids []int32 // roster indices of currently alive bots
	pos []int32 // roster index -> position in ids, or -1
}

// add registers roster index idx as alive. Indices arrive in adoption
// order, so pos grows by exactly one slot per call.
func (a *aliveIndex) add(idx int32) {
	for int(idx) >= len(a.pos) {
		a.pos = append(a.pos, -1)
	}
	a.pos[idx] = int32(len(a.ids))
	a.ids = append(a.ids, idx)
}

// remove marks roster index idx dead via the same swap-remove the
// pointer-based index used: the last alive entry moves into the hole.
// Removing an already-dead index is a no-op.
func (a *aliveIndex) remove(idx int32) {
	if int(idx) >= len(a.pos) {
		return
	}
	p := a.pos[idx]
	if p < 0 {
		return
	}
	last := int32(len(a.ids) - 1)
	moved := a.ids[last]
	a.ids[p] = moved
	a.pos[moved] = p
	a.ids = a.ids[:last]
	a.pos[idx] = -1
}

// count reports the alive population.
func (a *aliveIndex) count() int { return len(a.ids) }
