package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"onionbots/internal/botcrypto"
	"onionbots/internal/sim"
)

// churnScriptFingerprint drives one deterministic churn script —
// interleaved takedowns, joins from a private substream, staleness
// samples — and renders the complete observable state of the run:
// every bot's address, liveness and peer list, the master's registry,
// the staleness series, and the network RNG position.
func churnScriptFingerprint(t *testing.T, seed uint64, configure func(*BotNet)) string {
	t.Helper()
	bn, err := NewBotNet(seed, 40, BotConfig{
		DMin: 2, DMax: 5,
		PingInterval: 5 * time.Minute, NoNInterval: 15 * time.Minute,
		Rotation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(bn)
	}
	bn.Master.HotlistSize = 4
	if err := bn.Grow(10, nil); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewSubstream(seed, "pool-equivalence")
	var sb strings.Builder
	for round := 0; round < 8; round++ {
		if round%2 == 0 {
			if b := bn.RandomAliveBot(rng); b != nil {
				bn.Takedown(b)
			}
		}
		if _, err := bn.InfectFrom(nil, rng); err != nil {
			t.Fatal(err)
		}
		bn.Run(10 * time.Minute)
		fmt.Fprintf(&sb, "round=%d staleness=%.9f alive=%d registered=%d\n",
			round, bn.HotlistStaleness(), bn.AliveCount(), bn.Master.NumRegistered())
	}
	bn.Run(time.Hour)
	for i, b := range bn.Bots() {
		fmt.Fprintf(&sb, "bot=%d onion=%s alive=%v peers=%v\n", i, b.Onion(), b.Alive(), b.PeerOnions())
	}
	for _, r := range bn.Master.Records() {
		fmt.Fprintf(&sb, "rec=%s onion=%s\n", r.ID(), bn.Master.CurrentOnionOf(r))
	}
	fmt.Fprintf(&sb, "netRNG=%d scriptRNG=%d\n", bn.RNG.Uint64(), rng.Uint64())
	return sb.String()
}

// TestPooledRunByteIdenticalToUnpooled is the exact-equivalence gate of
// the identity pool: for the same seed, a pooled run and an unpooled
// run must produce byte-identical traces — the pool moves keygen in
// time, it never changes an outcome. Batch size must not matter either.
func TestPooledRunByteIdenticalToUnpooled(t *testing.T) {
	unpooled := churnScriptFingerprint(t, 99, func(bn *BotNet) { bn.SetIdentityPool(0) })
	pooledDefault := churnScriptFingerprint(t, 99, nil)
	pooledOdd := churnScriptFingerprint(t, 99, func(bn *BotNet) { bn.SetIdentityPool(7) })
	pooledWarmed := churnScriptFingerprint(t, 99, func(bn *BotNet) {
		bn.SetIdentityPool(3)
		bn.WarmIdentities(25)
	})
	if unpooled != pooledDefault {
		t.Fatalf("pooled run diverges from unpooled:\n--- unpooled ---\n%s--- pooled ---\n%s", unpooled, pooledDefault)
	}
	if unpooled != pooledOdd {
		t.Fatal("batch size changed the run")
	}
	if unpooled != pooledWarmed {
		t.Fatal("explicit warmup changed the run")
	}
	if !strings.Contains(unpooled, "staleness") {
		t.Fatal("fingerprint missing staleness samples")
	}
}

func TestIdentityPoolStatsAndDrawdown(t *testing.T) {
	bn, err := NewBotNet(3, 30, BotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bn.SetIdentityPool(4)
	if err := bn.Grow(6, nil); err != nil {
		t.Fatal(err)
	}
	st := bn.IdentityPoolStats()
	if st.Served != 6 {
		t.Fatalf("pool served %d infections, want 6", st.Served)
	}
	if st.Derived != 8 { // two warmup batches of 4
		t.Fatalf("pool derived %d entries, want 8 (2 batches of 4)", st.Derived)
	}
	if st.Refreshed != 0 {
		t.Fatalf("unexpected refreshes: %d", st.Refreshed)
	}
}

// TestPoolRefreshAfterPeriodRollover pins the period-drift path: an
// entry warmed in one rotation period and drawn in the next must be
// re-derived for the current period, yielding exactly the identity a
// live derivation would have produced.
func TestPoolRefreshAfterPeriodRollover(t *testing.T) {
	bn, err := NewBotNet(5, 30, BotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bn.SetIdentityPool(8)
	bn.WarmIdentities(8)
	bn.Run(26 * time.Hour) // cross a rotation-period boundary
	b, err := bn.InfectOne(nil)
	if err != nil {
		t.Fatal(err)
	}
	ip := botcrypto.PeriodIndex(bn.Net.Now())
	want := botcrypto.DeriveIdentity(bn.Master.SignPub(), b.KB(), ip).Onion()
	if b.Onion() != want {
		t.Fatalf("pooled bot hosts %s after rollover, want the period-%d identity %s", b.Onion(), ip, want)
	}
	if st := bn.IdentityPoolStats(); st.Refreshed == 0 {
		t.Fatal("rollover draw did not refresh the entry")
	}
}

// TestPoolDrawIsCheap asserts the pool draw itself (a warmed
// takeMaterial hit) stays allocation-trivial: the join path must not
// re-grow material that warmup already built.
func TestPoolDrawIsCheap(t *testing.T) {
	bn, err := NewBotNet(7, 30, BotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bn.SetIdentityPool(4)
	bn.WarmIdentities(256)
	allocs := testing.AllocsPerRun(100, func() {
		bn.nextBot++
		if mat := bn.takeMaterial(bn.nextBot); mat == nil {
			t.Fatal("warmed pool returned no material")
		}
	})
	if allocs > 1 { // at most the map-delete bookkeeping
		t.Fatalf("pool draw allocates %.1f objects/op, want <= 1", allocs)
	}
}
