package core

import (
	"testing"
	"time"
)

func TestGossipFanoutStillDeliversBroadly(t *testing.T) {
	// Gossip with fanout 2 on a well-connected 12-bot overlay should
	// still reach (nearly) everyone, with fewer relayed messages than
	// full flooding.
	flood := measureDissemination(t, 110, 0)
	gossip := measureDissemination(t, 110, 2)

	if flood.reached != 12 {
		t.Fatalf("full flooding reached %d/12", flood.reached)
	}
	if gossip.reached < 10 {
		t.Fatalf("gossip fanout 2 reached only %d/12", gossip.reached)
	}
	if gossip.relayed >= flood.relayed {
		t.Fatalf("gossip relayed %d messages >= flooding's %d; no complexity win",
			gossip.relayed, flood.relayed)
	}
	t.Logf("flood: reach %d relayed %d; gossip: reach %d relayed %d",
		flood.reached, flood.relayed, gossip.reached, gossip.relayed)
}

type dissemination struct {
	reached int
	relayed int
}

func measureDissemination(t *testing.T, seed uint64, fanout int) dissemination {
	t.Helper()
	cfg := BotConfig{DMin: 3, DMax: 6, GossipFanout: fanout}
	bn := newTestBotNet(t, seed, cfg)
	bn.Master.HotlistSize = 3
	grow(t, bn, 12)
	requireConnected(t, bn)
	if err := bn.Broadcast("gossip-test", nil, 1); err != nil {
		t.Fatal(err)
	}
	bn.Run(3 * time.Minute)
	relayed := 0
	for _, b := range bn.AliveBots() {
		relayed += b.Stats().MessagesRelayed
	}
	return dissemination{reached: bn.ExecutedCount("gossip-test"), relayed: relayed}
}
