package core

import (
	"testing"
	"time"

	"onionbots/internal/graph"
)

// Churn and failure-injection scenarios beyond the basic happy paths.

func TestContinuousChurnKeepsOverlayConnected(t *testing.T) {
	// Interleave infections and takedowns for a while; the overlay must
	// end connected with bounded degrees.
	cfg := BotConfig{DMin: 2, DMax: 5}
	bn := newTestBotNet(t, 80, cfg)
	bn.Master.HotlistSize = 3
	grow(t, bn, 10)
	for round := 0; round < 6; round++ {
		// Kill the oldest alive bot.
		bn.Takedown(bn.AliveBots()[0])
		bn.Run(5 * time.Minute)
		// Infect a replacement from a random survivor.
		alive := bn.AliveBots()
		infector := alive[len(alive)/2]
		if _, err := bn.InfectOne([]string{infector.Onion()}); err != nil {
			t.Fatal(err)
		}
		bn.Run(5 * time.Minute)
	}
	bn.Run(15 * time.Minute)
	requireConnected(t, bn)
	for _, b := range bn.AliveBots() {
		if b.Degree() > cfg.DMax {
			t.Fatalf("degree %d exceeds DMax after churn", b.Degree())
		}
	}
}

func TestBroadcastDuringTakedownStillPropagates(t *testing.T) {
	bn := newTestBotNet(t, 81, BotConfig{DMin: 2, DMax: 5})
	bn.Master.HotlistSize = 3
	grow(t, bn, 12)
	requireConnected(t, bn)

	// Take down three bots and immediately broadcast, before repair has
	// a chance to finish: the flood must still reach the survivors
	// because the overlay is well-connected.
	for i := 0; i < 3; i++ {
		bn.Takedown(bn.AliveBots()[0])
	}
	if err := bn.Broadcast("resilient", nil, 2); err != nil {
		t.Fatal(err)
	}
	bn.Run(20 * time.Minute)
	got := bn.ExecutedCount("resilient")
	if got < 8 {
		t.Fatalf("broadcast reached %d/9 survivors during takedown", got)
	}
}

func TestReplayedBroadcastEnvelopeIgnored(t *testing.T) {
	bn := newTestBotNet(t, 82, BotConfig{})
	grow(t, bn, 6)
	cmd := bn.Master.NewCommand("once", nil)
	env := &Envelope{Type: MsgBroadcast, TTL: 6, Payload: cmd.Encode()}
	env.MsgID[0] = 0x77
	entry := bn.AliveBots()[0]
	entry.Inject(env)
	bn.Run(5 * time.Minute)
	if got := bn.ExecutedCount("once"); got != 6 {
		t.Fatalf("first injection reached %d/6", got)
	}
	// Replay the identical envelope at a different entry point: the
	// command nonce is already burned everywhere.
	other := bn.AliveBots()[3]
	other.Inject(env)
	bn.Run(5 * time.Minute)
	for _, b := range bn.AliveBots() {
		count := 0
		for _, rec := range b.Executed() {
			if rec.Name == "once" {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("bot executed replayed broadcast %d times", count)
		}
	}
}

func TestStaleCommandRejected(t *testing.T) {
	bn := newTestBotNet(t, 83, BotConfig{ReplayWindow: 10 * time.Minute})
	grow(t, bn, 4)
	cmd := bn.Master.NewCommand("timely", nil)
	// Age the command past the freshness window before injecting.
	bn.Run(30 * time.Minute)
	env := &Envelope{Type: MsgBroadcast, TTL: 6, Payload: cmd.Encode()}
	env.MsgID[0] = 0x88
	bn.AliveBots()[0].Inject(env)
	bn.Run(5 * time.Minute)
	if got := bn.ExecutedCount("timely"); got != 0 {
		t.Fatalf("stale command executed on %d bots", got)
	}
}

func TestTTLBoundsFloodDepth(t *testing.T) {
	// A line topology: bot[i] peers only with bot[i-1]. TTL 2 reaches
	// the entry bot plus two more hops, and no further.
	bn := newTestBotNet(t, 84, BotConfig{DMin: 1, DMax: 2})
	var prev *Bot
	for i := 0; i < 6; i++ {
		var bootstrap []string
		if prev != nil {
			bootstrap = []string{prev.Onion()}
		}
		b, err := bn.InfectOne(bootstrap)
		if err != nil {
			t.Fatal(err)
		}
		bn.Run(2 * time.Second)
		prev = b
	}
	// Avoid DMin-floor rewiring by keeping the run window short.
	cmd := bn.Master.NewCommand("hop", nil)
	env := &Envelope{Type: MsgBroadcast, TTL: 2, Payload: cmd.Encode()}
	env.MsgID[0] = 0x99
	bn.Bots()[0].Inject(env)
	bn.Run(2 * time.Minute)
	got := bn.ExecutedCount("hop")
	if got != 3 {
		t.Fatalf("TTL=2 flood reached %d bots, want exactly 3 (entry + 2 hops)", got)
	}
}

func TestOverlayGraphIgnoresDeadPeersEdges(t *testing.T) {
	bn := newTestBotNet(t, 85, BotConfig{DMin: 2, DMax: 4})
	grow(t, bn, 8)
	victim := bn.AliveBots()[2]
	bn.Takedown(victim)
	// Immediately after takedown (before repair), survivors may still
	// list the victim; the overlay graph must only contain alive nodes.
	g := bn.OverlayGraph()
	if g.NumNodes() != 7 {
		t.Fatalf("overlay nodes = %d, want 7", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = graph.NumComponents(g) // must not panic on partial state
}

func TestBotmasterIdentityDeterministic(t *testing.T) {
	// The C&C onion must be a pure function of the seed. This once
	// flipped run to run: ecdh's GenerateKey consumed a randomized
	// zero-or-one extra DRBG byte, shifting the identity seed read
	// after it (see botcrypto.TestEncryptionKeyPairDeterministicFromDRBG).
	onion := func() string {
		bn := newTestBotNet(t, 311, BotConfig{})
		return bn.Master.Onion()
	}
	first := onion()
	for i := 0; i < 5; i++ {
		if got := onion(); got != first {
			t.Fatalf("master onion differs on rerun %d: %s vs %s", i, got, first)
		}
	}
}
