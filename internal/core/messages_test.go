package core

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"onionbots/internal/botcrypto"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	e := &Envelope{Type: MsgBroadcast, TTL: 7, Payload: []byte("payload")}
	e.MsgID[3] = 9
	got, err := DecodeEnvelope(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != e.Type || got.TTL != e.TTL || got.MsgID != e.MsgID ||
		!bytes.Equal(got.Payload, e.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestEnvelopeRejectsTruncated(t *testing.T) {
	e := &Envelope{Type: MsgPing, Payload: []byte("0123456789")}
	raw := e.Encode()
	for _, n := range []int{0, 5, 19, len(raw) - 1} {
		if _, err := DecodeEnvelope(raw[:n]); err == nil {
			t.Fatalf("accepted truncation to %d bytes", n)
		}
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	t.Run("PeerReq", func(t *testing.T) {
		p := &PeerReq{Onion: "abcdefghij234567.onion", Degree: 4}
		got, err := DecodePeerReq(p.Encode())
		if err != nil || *got != *p {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("PeerAck", func(t *testing.T) {
		p := &PeerAck{Accepted: true, Onion: "self.onion", Degree: 3,
			Neighbors: []string{"a.onion", "b.onion"}}
		got, err := DecodePeerAck(p.Encode())
		if err != nil || got.Accepted != p.Accepted || got.Onion != p.Onion ||
			got.Degree != p.Degree || len(got.Neighbors) != 2 ||
			got.Neighbors[0] != "a.onion" {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("NoNUpdate", func(t *testing.T) {
		p := &NoNUpdate{Onion: "me.onion", Degree: 2, Neighbors: []string{"x.onion"}}
		got, err := DecodeNoNUpdate(p.Encode())
		if err != nil || got.Onion != p.Onion || got.Degree != 2 ||
			len(got.Neighbors) != 1 {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("AddrChange", func(t *testing.T) {
		p := &AddrChange{OldOnion: "old.onion", NewOnion: "new.onion"}
		got, err := DecodeAddrChange(p.Encode())
		if err != nil || *got != *p {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
	t.Run("Report", func(t *testing.T) {
		p := &Report{Onion: "bot.onion", SealedKB: []byte{1, 2, 3}}
		got, err := DecodeReport(p.Encode())
		if err != nil || got.Onion != p.Onion || !bytes.Equal(got.SealedKB, p.SealedKB) {
			t.Fatalf("got %+v err %v", got, err)
		}
	})
}

func TestPayloadDecodersRejectGarbage(t *testing.T) {
	garbage := [][]byte{nil, {1}, bytes.Repeat([]byte{0xff}, 5)}
	for _, g := range garbage {
		if _, err := DecodePeerReq(g); err == nil {
			t.Error("PeerReq accepted garbage")
		}
		if _, err := DecodePeerAck(g); err == nil {
			t.Error("PeerAck accepted garbage")
		}
		if _, err := DecodeNoNUpdate(g); err == nil {
			t.Error("NoNUpdate accepted garbage")
		}
		if _, err := DecodeAddrChange(g); err == nil {
			t.Error("AddrChange accepted garbage")
		}
		if _, err := DecodeReport(g); err == nil {
			t.Error("Report accepted garbage")
		}
		if _, err := DecodeCommand(g); err == nil {
			t.Error("Command accepted garbage")
		}
	}
}

func TestEnvelopePropertyRoundTrip(t *testing.T) {
	err := quick.Check(func(typ byte, ttl uint8, id [16]byte, payload []byte) bool {
		if len(payload) > 400 {
			payload = payload[:400]
		}
		e := &Envelope{Type: MsgType(typ), MsgID: id, TTL: ttl, Payload: payload}
		got, err := DecodeEnvelope(e.Encode())
		return err == nil && got.Type == e.Type && got.TTL == e.TTL &&
			got.MsgID == e.MsgID && bytes.Equal(got.Payload, e.Payload)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommandSignVerifyRoundTrip(t *testing.T) {
	drbg := botcrypto.NewDRBG([]byte("cmd test"))
	masterPub, masterPriv, err := ed25519GenerateKey(drbg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2015, 1, 15, 0, 0, 0, 0, time.UTC)
	cmd := &Command{Name: "ddos", Args: []byte("example.com"), IssuedAt: now}
	cmd.Nonce[0] = 1
	cmd.SignMaster(masterPriv)

	decoded, err := DecodeCommand(cmd.Encode())
	if err != nil {
		t.Fatal(err)
	}
	guard := botcrypto.NewReplayGuard(30 * time.Minute)
	if err := decoded.Authorize(masterPub, now, guard); err != nil {
		t.Fatalf("valid command rejected: %v", err)
	}
	// Replay.
	if err := decoded.Authorize(masterPub, now, guard); err == nil {
		t.Fatal("replayed command accepted")
	}
	// Tampered name.
	bad := *decoded
	bad.Name = "mine"
	if err := bad.Authorize(masterPub, now, nil); err == nil {
		t.Fatal("tampered command accepted")
	}
}

func TestRentedCommandEncodeAuthorize(t *testing.T) {
	drbg := botcrypto.NewDRBG([]byte("rent test"))
	masterPub, masterPriv, err := ed25519GenerateKey(drbg)
	if err != nil {
		t.Fatal(err)
	}
	renterPub, renterPriv, err := ed25519GenerateKey(drbg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2015, 1, 15, 0, 0, 0, 0, time.UTC)
	token := botcrypto.IssueToken(masterPriv, renterPub, now.Add(time.Hour), []string{"spam"})

	cmd := &Command{Name: "spam", Args: []byte("pills"), IssuedAt: now}
	cmd.Nonce[0] = 2
	cmd.SignRenter(renterPriv, token)

	decoded, err := DecodeCommand(cmd.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Rental == nil {
		t.Fatal("token lost in encoding")
	}
	if err := decoded.Authorize(masterPub, now, nil); err != nil {
		t.Fatalf("valid rented command rejected: %v", err)
	}
	// Not whitelisted.
	bad := &Command{Name: "ddos", IssuedAt: now}
	bad.Nonce[0] = 3
	bad.SignRenter(renterPriv, token)
	if err := bad.Authorize(masterPub, now, nil); err == nil {
		t.Fatal("off-whitelist rented command accepted")
	}
	// Expired.
	if err := decoded.Authorize(masterPub, now.Add(2*time.Hour), nil); err == nil {
		t.Fatal("expired rental accepted")
	}
}
