package core

import (
	"testing"

	"onionbots/internal/sim"
)

// aliveRef is the executable reference for aliveIndex: the previous
// pointer-slice-plus-map layout, reduced to roster indices. The SoA
// index must present identical observable state — same membership,
// same internal order (the order uniform victim draws are made over) —
// after any add/remove sequence.
type aliveRef struct {
	ids []int32
	pos map[int32]int
}

func newAliveRef() *aliveRef { return &aliveRef{pos: make(map[int32]int)} }

func (r *aliveRef) add(idx int32) {
	r.pos[idx] = len(r.ids)
	r.ids = append(r.ids, idx)
}

func (r *aliveRef) remove(idx int32) {
	i, ok := r.pos[idx]
	if !ok {
		return
	}
	last := len(r.ids) - 1
	moved := r.ids[last]
	r.ids[i] = moved
	r.pos[moved] = i
	r.ids = r.ids[:last]
	delete(r.pos, idx)
}

// TestAliveIndexMatchesReference drives the SoA index and the
// map-based reference through randomized adopt/takedown/draw sequences
// over several seeds and requires identical order at every step. Order
// equality (not just set equality) is the property that keeps
// RandomAliveBot draws — and therefore every churn trace — byte-
// identical across the layout change.
func TestAliveIndexMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rng := sim.NewRNG(seed)
		var a aliveIndex
		ref := newAliveRef()
		next := int32(0)
		for step := 0; step < 5000; step++ {
			switch {
			case len(ref.ids) == 0 || rng.Bool(0.5):
				a.add(next)
				ref.add(next)
				next++
			case rng.Bool(0.2):
				// Remove an index that may already be dead (Takedown is
				// idempotent; the index must tolerate the repeat).
				idx := int32(rng.Intn(int(next)))
				a.remove(idx)
				ref.remove(idx)
			default:
				// Remove a live index drawn the way churn picks victims.
				idx := ref.ids[rng.Intn(len(ref.ids))]
				a.remove(idx)
				ref.remove(idx)
			}
			if a.count() != len(ref.ids) {
				t.Fatalf("seed %d step %d: count=%d ref=%d", seed, step, a.count(), len(ref.ids))
			}
			for i, want := range ref.ids {
				if a.ids[i] != want {
					t.Fatalf("seed %d step %d: order diverges at %d: got %d want %d",
						seed, step, i, a.ids[i], want)
				}
			}
			for i, idx := range ref.ids {
				if a.pos[idx] != int32(i) {
					t.Fatalf("seed %d step %d: pos[%d]=%d want %d", seed, step, idx, a.pos[idx], i)
				}
			}
		}
	}
}

// TestAliveIndexSteadyChurnZeroAlloc pins the SoA claim on the hot
// path: once the arrays are warm, a takedown/adopt churn cycle
// allocates nothing (the old layout paid map traffic plus a takedown
// closure per adopted bot).
func TestAliveIndexSteadyChurnZeroAlloc(t *testing.T) {
	var a aliveIndex
	const n = 1024
	for i := int32(0); i < n; i++ {
		a.add(i)
	}
	i := int32(0)
	allocs := testing.AllocsPerRun(2000, func() {
		idx := i % n
		a.remove(idx)
		a.add(idx)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady churn allocated %.1f objects/op, want 0", allocs)
	}
}

// TestBotNetAliveIndex exercises the index through the public surface:
// adopt via infection, remove via takedown (including double-takedown),
// with AliveCount and RandomAliveBot as the observers.
func TestBotNetAliveIndex(t *testing.T) {
	bn, err := NewBotNet(21, 16, BotConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bn.Grow(8, nil); err != nil {
		t.Fatal(err)
	}
	if bn.AliveCount() != 8 {
		t.Fatalf("AliveCount = %d, want 8", bn.AliveCount())
	}
	bots := bn.Bots()
	bots[2].Takedown()
	bots[2].Takedown() // idempotent
	bots[5].Takedown()
	if bn.AliveCount() != 6 {
		t.Fatalf("AliveCount after takedowns = %d, want 6", bn.AliveCount())
	}
	rng := sim.NewRNG(99)
	for i := 0; i < 200; i++ {
		b := bn.RandomAliveBot(rng)
		if b == nil || !b.Alive() {
			t.Fatalf("draw %d returned dead or nil bot", i)
		}
		if b == bots[2] || b == bots[5] {
			t.Fatalf("draw %d returned a taken-down bot", i)
		}
	}
	for _, b := range bn.AliveBots() {
		b.Takedown()
	}
	if bn.AliveCount() != 0 || bn.RandomAliveBot(nil) != nil {
		t.Fatalf("emptied botnet still reports alive bots")
	}
}
