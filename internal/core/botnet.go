package core

import (
	"fmt"
	"math"
	"time"

	"onionbots/internal/graph"
	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

// BootstrapStrategy produces the candidate peer list a fresh infection
// rallies with (Section IV-B).
type BootstrapStrategy interface {
	// Candidates returns bootstrap addresses for a bot infected via
	// infector (nil for the very first bot).
	Candidates(bn *BotNet, infector *Bot) []string
}

// HardcodedList is the paper's recommended scheme: the infecting bot
// hands over its own address plus each of its peers independently with
// probability P.
type HardcodedList struct {
	P float64
}

var _ BootstrapStrategy = HardcodedList{}

// Candidates implements BootstrapStrategy.
func (h HardcodedList) Candidates(bn *BotNet, infector *Bot) []string {
	if infector == nil {
		return nil
	}
	out := []string{infector.Onion()}
	for _, p := range infector.PeerOnions() {
		if bn.RNG.Bool(h.P) {
			out = append(out, p)
		}
	}
	return out
}

// Hotlist is the webcache variant: fresh bots query designated cache
// bots. Protocol-wise a cache is just a bot — the PEER_ACK it answers
// with carries its neighbor list whether or not it accepts, which is
// exactly the hotlist lookup.
type Hotlist struct {
	Caches []string
}

var _ BootstrapStrategy = Hotlist{}

// Candidates implements BootstrapStrategy.
func (h Hotlist) Candidates(*BotNet, *Bot) []string {
	return append([]string(nil), h.Caches...)
}

// OutOfBand models a fixed peer list delivered through another channel
// (BitTorrent DHT, social networks, ...).
type OutOfBand struct {
	Addrs []string
}

var _ BootstrapStrategy = OutOfBand{}

// Candidates implements BootstrapStrategy.
func (o OutOfBand) Candidates(*BotNet, *Bot) []string {
	return append([]string(nil), o.Addrs...)
}

// RandomProbingExpectedDials quantifies Section IV-B's infeasibility
// argument: the expected number of random .onion dials before hitting
// any of networkSize bots in the 32^16 address space.
func RandomProbingExpectedDials(networkSize int) float64 {
	if networkSize <= 0 {
		return math.Inf(1)
	}
	return math.Pow(32, 16) / float64(networkSize)
}

// BotNet is the simulation orchestrator: one Tor network, one
// botmaster, and the growing bot population.
type BotNet struct {
	Sched  *sim.Scheduler
	RNG    *sim.RNG
	Net    *tor.Network
	Master *Botmaster

	cfg     BotConfig
	bots    []*Bot
	nextBot int
	seed    uint64
	// alive is the unordered swap-remove index of living bots
	// (maintained via Bot.Takedown through Bot.owner), giving churn
	// processes O(1) population counts and uniform victim picks without
	// scanning or copying the full roster per event. It holds int32
	// roster indices in struct-of-arrays form — pointer-free, so a
	// million-bot population adds two flat arrays, not a pointer-keyed
	// map the GC must walk. AliveBots still reports in infection order
	// off bn.bots.
	alive aliveIndex
	// pool pre-derives bot key material in batches (on by default; see
	// SetIdentityPool), making infections O(handshake) instead of
	// O(keygen) without changing a single output byte.
	pool *IdentityPool
	// SettleTime is how long Grow runs the clock after each infection
	// so peering handshakes complete. Default 2s of virtual time.
	SettleTime time.Duration
}

// NewBotNet bootstraps a Tor network of numRelays relays and a
// botmaster on it.
func NewBotNet(seed uint64, numRelays int, cfg BotConfig) (*BotNet, error) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	newStore, err := tor.NewDescriptorStoreByName(cfg.Store)
	if err != nil {
		return nil, err
	}
	net := tor.NewNetwork(sched, rng, tor.Config{NewDescriptorStore: newStore})
	if err := net.Bootstrap(numRelays); err != nil {
		return nil, err
	}
	master, err := NewBotmaster(net, []byte(fmt.Sprintf("seed-%d", seed)))
	if err != nil {
		return nil, err
	}
	if cfg.Retry.Enabled() {
		master.SetRetryPolicy(cfg.Retry)
	}
	return &BotNet{
		Sched:      sched,
		RNG:        rng,
		Net:        net,
		Master:     master,
		cfg:        cfg,
		seed:       seed,
		SettleTime: 2 * time.Second,
		pool:       newIdentityPool(defaultPoolBatch),
	}, nil
}

// adopt registers a freshly created bot in the roster and the alive
// index. The bot keeps its roster index and owner inline, so takedown
// is two array writes against the index — no per-bot closure.
func (bn *BotNet) adopt(b *Bot) {
	idx := int32(len(bn.bots))
	bn.bots = append(bn.bots, b)
	b.owner = bn
	b.rosterIdx = idx
	bn.alive.add(idx)
}

// Config returns the bot configuration used for infections.
func (bn *BotNet) Config() BotConfig { return bn.cfg.withDefaults() }

// Run advances virtual time.
func (bn *BotNet) Run(d time.Duration) { bn.Sched.RunFor(d) }

// Bots returns every bot ever created (including taken-down ones).
func (bn *BotNet) Bots() []*Bot { return append([]*Bot(nil), bn.bots...) }

// AliveBots returns the currently alive bots.
func (bn *BotNet) AliveBots() []*Bot {
	out := make([]*Bot, 0, len(bn.bots))
	for _, b := range bn.bots {
		if b.Alive() {
			out = append(out, b)
		}
	}
	return out
}

// AliveCount reports how many bots are currently alive — O(1) off the
// alive index; churn processes poll this every event.
func (bn *BotNet) AliveCount() int { return bn.alive.count() }

// RandomAliveBot returns a uniformly random alive bot drawn with rng
// (bn.RNG when nil), or nil when none is left. O(1) off the alive
// index; the draw is over the index's internal (deterministic) order,
// so it suits churn substreams that only need uniformity. The index
// maintains exactly the swap-remove order of the old pointer slice, so
// a given rng state draws the same bot as before the SoA layout.
func (bn *BotNet) RandomAliveBot(rng *sim.RNG) *Bot {
	if bn.alive.count() == 0 {
		return nil
	}
	if rng == nil {
		rng = bn.RNG
	}
	return bn.bots[bn.alive.ids[rng.Intn(len(bn.alive.ids))]]
}

// InfectOne creates a bot and rallies it with the given bootstrap
// candidates. The caller (or Grow) must pump the clock for the peering
// handshakes to finish. With the identity pool enabled (the default)
// the bot's key material comes pre-derived from the warmup batch;
// either way the bot is a pure function of (botnet seed, infection
// index).
func (bn *BotNet) InfectOne(bootstrap []string) (*Bot, error) {
	bn.nextBot++
	var b *Bot
	var err error
	if bn.pool != nil {
		if mat := bn.takeMaterial(bn.nextBot); mat != nil {
			b, err = newBotWithMaterial(tor.NewProxy(bn.Net), bn.Net, bn.cfg,
				bn.Master.SignPub(), bn.Master.enc.Pub, bn.Master.Onion(), mat)
			if b != nil {
				b.ownProxy = true
			}
		}
	}
	if b == nil && err == nil {
		seed := []byte(fmt.Sprintf("bot-%d-%d", bn.seed, bn.nextBot))
		b, err = NewBot(bn.Net, bn.cfg, bn.Master.SignPub(), bn.Master.EncPub().Pub,
			bn.Master.NetKey(), bn.Master.Onion(), seed)
	}
	if err != nil {
		return nil, err
	}
	bn.adopt(b)
	if err := b.Rally(bootstrap); err != nil {
		return nil, err
	}
	return b, nil
}

// InfectFrom infects one bot bootstrapped from a random alive infector,
// chosen with rng (bn.RNG when nil), using strategy (HardcodedList{P:
// 0.5} when nil). Unlike Grow it does not pump the clock: the peering
// handshakes settle as the simulation proceeds, which is exactly what a
// churn process attached to the running scheduler wants.
func (bn *BotNet) InfectFrom(strategy BootstrapStrategy, rng *sim.RNG) (*Bot, error) {
	if strategy == nil {
		strategy = HardcodedList{P: 0.5}
	}
	if rng == nil {
		rng = bn.RNG
	}
	// O(1) pick off the alive index — the former AliveBots() call
	// copied the full roster per churn join. The index's internal order
	// differs from infection order once takedowns have happened, so the
	// infector drawn for a given rng state changed when this landed
	// (outputs re-pinned).
	infector := bn.RandomAliveBot(rng)
	return bn.InfectOne(strategy.Candidates(bn, infector))
}

// Grow infects n bots using the strategy (HardcodedList{P: 0.5} when
// nil), choosing a random alive infector for each new bot and letting
// the network settle between infections.
func (bn *BotNet) Grow(n int, strategy BootstrapStrategy) error {
	for i := 0; i < n; i++ {
		if _, err := bn.InfectFrom(strategy, bn.RNG); err != nil {
			return fmt.Errorf("core: infection %d: %w", i, err)
		}
		bn.Run(bn.SettleTime)
	}
	return nil
}

// Takedown removes a bot (cleanup, seizure, or targeted DoS).
func (bn *BotNet) Takedown(b *Bot) { b.Takedown() }

// HotlistStaleness reports the fraction of registered C&C records whose
// bot is no longer alive — the expected staleness of a hotlist answer
// drawn right now, since the hotlist samples uniformly from the
// registry and the registry never forgets. Records are matched against
// bots by their current derived address, so the measure survives
// address rotation. An empty registry reports 0.
func (bn *BotNet) HotlistStaleness() float64 {
	nRecs := bn.Master.records.len()
	if nRecs == 0 {
		return 0
	}
	// Derive the alive-onion set from the swap-remove alive index: the
	// former full-roster scan (dead bots included) made every staleness
	// sample O(all bots ever infected).
	alive := make(map[string]struct{}, bn.alive.count())
	for _, idx := range bn.alive.ids {
		alive[bn.bots[idx].Onion()] = struct{}{}
	}
	dead := 0
	for i := 0; i < nRecs; i++ {
		if _, ok := alive[bn.Master.CurrentOnionOf(bn.Master.records.at(i))]; !ok {
			dead++
		}
	}
	return float64(dead) / float64(nRecs)
}

// NewVirtualBot constructs a bot on a caller-supplied proxy (a
// SuperOnion virtual node) wired to this botnet's master, and adopts it
// into the population. The caller rallies it.
func (bn *BotNet) NewVirtualBot(proxy *tor.OnionProxy) (*Bot, error) {
	bn.nextBot++
	seed := []byte(fmt.Sprintf("vbot-%d-%d", bn.seed, bn.nextBot))
	b, err := NewBotOnProxy(proxy, bn.Net, bn.cfg, bn.Master.SignPub(), bn.Master.EncPub().Pub,
		bn.Master.NetKey(), bn.Master.Onion(), seed)
	if err != nil {
		return nil, err
	}
	bn.adopt(b)
	return b, nil
}

// OverlayGraph snapshots the alive bots' peer relationships as an
// undirected graph (indices follow bn.AliveBots() order), letting the
// graph metrics of Figures 4-6 run against the protocol-level network.
func (bn *BotNet) OverlayGraph() *graph.Graph {
	alive := bn.AliveBots()
	index := make(map[string]int, len(alive))
	g := graph.New()
	for i, b := range alive {
		index[b.Onion()] = i
		g.AddNode(i)
	}
	for i, b := range alive {
		for _, peer := range b.PeerOnions() {
			if j, ok := index[peer]; ok {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Broadcast signs a command and pushes it through `via` random alive
// entry bots.
func (bn *BotNet) Broadcast(name string, args []byte, via int) error {
	alive := bn.AliveBots()
	if len(alive) == 0 {
		return fmt.Errorf("core: no alive bots to broadcast through")
	}
	if via < 1 {
		via = 1
	}
	entries := sim.Sample(bn.RNG, alive, via)
	onions := make([]string, 0, len(entries))
	for _, b := range entries {
		onions = append(onions, b.Onion())
	}
	cmd := bn.Master.NewCommand(name, args)
	return bn.Master.Broadcast(onions, cmd, bn.Config().FloodTTL)
}

// ExecutedCount reports how many alive bots have executed a command
// with the given name.
func (bn *BotNet) ExecutedCount(name string) int {
	count := 0
	for _, b := range bn.AliveBots() {
		for _, rec := range b.Executed() {
			if rec.Name == name {
				count++
				break
			}
		}
	}
	return count
}
