package core

import (
	"testing"
	"time"
)

func TestGroupCastReachesOnlyMembers(t *testing.T) {
	bn := newTestBotNet(t, 100, BotConfig{DMin: 2, DMax: 5})
	bn.Master.HotlistSize = 3
	grow(t, bn, 8)
	requireConnected(t, bn)

	recs := bn.Master.Records()
	members := recs[:3]
	if err := bn.Master.CreateGroup("ddos-team", members); err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Minute) // key delivery

	// Members hold the key; non-members do not.
	inGroup := 0
	for _, b := range bn.AliveBots() {
		for _, g := range b.Groups() {
			if g == "ddos-team" {
				inGroup++
			}
		}
	}
	if inGroup != 3 {
		t.Fatalf("%d bots joined the group, want 3", inGroup)
	}

	// Group-cast through an arbitrary entry bot.
	cmd := bn.Master.NewCommand("strike", []byte("example.com"))
	entry := bn.AliveBots()[5]
	if err := bn.Master.GroupCast("ddos-team", []string{entry.Onion()}, cmd, 8); err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Minute)
	if got := bn.ExecutedCount("strike"); got != 3 {
		t.Fatalf("group command executed on %d bots, want exactly the 3 members", got)
	}
	// Non-members relayed it (they cannot even tell it was a group
	// message they are not in).
	relayed := 0
	for _, b := range bn.AliveBots() {
		relayed += b.Stats().MessagesRelayed
	}
	if relayed == 0 {
		t.Fatal("group-cast was never relayed")
	}
}

func TestGroupCastUnknownGroupFails(t *testing.T) {
	bn := newTestBotNet(t, 101, BotConfig{})
	grow(t, bn, 3)
	cmd := bn.Master.NewCommand("x", nil)
	err := bn.Master.GroupCast("nope", []string{bn.AliveBots()[0].Onion()}, cmd, 4)
	if err == nil {
		t.Fatal("group-cast to unknown group succeeded")
	}
}

func TestPullBasedCommands(t *testing.T) {
	bn := newTestBotNet(t, 102, BotConfig{})
	grow(t, bn, 4)
	recs := bn.Master.Records()

	// Queue a command for one bot and another for everyone.
	bn.Master.QueueFor(recs[1], bn.Master.NewCommand("solo", nil))
	bn.Master.QueueForAll(bn.Master.NewCommand("everyone", nil))
	if bn.Master.PendingFor(recs[1]) != 2 {
		t.Fatalf("pending = %d, want 2", bn.Master.PendingFor(recs[1]))
	}

	// Nothing executes until bots poll.
	bn.Run(10 * time.Minute)
	if bn.ExecutedCount("solo") != 0 || bn.ExecutedCount("everyone") != 0 {
		t.Fatal("queued commands executed without polling")
	}

	for _, b := range bn.AliveBots() {
		if err := b.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	bn.Run(2 * time.Minute)
	if got := bn.ExecutedCount("everyone"); got != 4 {
		t.Fatalf("broadcast-queued command executed on %d/4", got)
	}
	if got := bn.ExecutedCount("solo"); got != 1 {
		t.Fatalf("solo-queued command executed on %d bots, want 1", got)
	}
	// Queues drain after delivery.
	if bn.Master.PendingFor(recs[1]) != 0 {
		t.Fatal("queue not drained after poll")
	}
}

func TestPeriodicPolling(t *testing.T) {
	bn := newTestBotNet(t, 103, BotConfig{})
	grow(t, bn, 3)
	for _, b := range bn.AliveBots() {
		b.StartPolling(10 * time.Minute)
	}
	bn.Master.QueueForAll(bn.Master.NewCommand("pulled", nil))
	bn.Run(15 * time.Minute) // one poll cycle
	if got := bn.ExecutedCount("pulled"); got != 3 {
		t.Fatalf("periodic polling delivered to %d/3", got)
	}
	// Replay safety: a second poll cycle must not re-execute.
	bn.Run(15 * time.Minute)
	for _, b := range bn.AliveBots() {
		count := 0
		for _, rec := range b.Executed() {
			if rec.Name == "pulled" {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("pulled command executed %d times", count)
		}
	}
}
