package core

import (
	"testing"

	"onionbots/internal/botcrypto"
)

// TestAllMessageTypesUniformOnWire is the indistinguishability property
// the paper demands: no relaying party can tell a peering request from
// a ping, a broadcast attack order, a group-cast, or an address
// rotation by looking at the wire. Every sealed protocol message must
// be exactly the same size with uniform-looking content.
func TestAllMessageTypesUniformOnWire(t *testing.T) {
	netKey := botcrypto.NewDRBG([]byte("netkey")).Bytes(32)
	drbg := botcrypto.NewDRBG([]byte("nonces"))

	payloads := map[string][]byte{
		"PeerReq":    (&PeerReq{Onion: "abcdefghij234567.onion", Degree: 4}).Encode(),
		"PeerAck":    (&PeerAck{Accepted: true, Onion: "abcdefghij234567.onion", Degree: 3, Neighbors: []string{"a.onion", "b.onion", "c.onion"}}).Encode(),
		"NoNUpdate":  (&NoNUpdate{Onion: "x.onion", Degree: 2, Neighbors: []string{"y.onion"}}).Encode(),
		"AddrChange": (&AddrChange{OldOnion: "old.onion", NewOnion: "new.onion"}).Encode(),
		"Ping":       nil,
		"Report":     (&Report{Onion: "bot.onion", SealedKB: make([]byte, botcrypto.ECIESSize)}).Encode(),
	}
	sizes := map[string]int{}
	for name, payload := range payloads {
		env := &Envelope{Type: MsgPing, Payload: payload}
		sealed, err := botcrypto.Seal(netKey, env.Encode(), drbg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sizes[name] = len(sealed)
	}
	want := sizes["Ping"]
	for name, size := range sizes {
		if size != want {
			t.Errorf("%s seals to %d bytes, others to %d — size leaks message type", name, size, want)
		}
	}
	if want != botcrypto.SealedSize {
		t.Fatalf("wire size %d != SealedSize %d", want, botcrypto.SealedSize)
	}

	// A directed command's inner seal plus envelope also fits the same
	// outer wire size.
	inner := make([]byte, DirectedSealSize)
	env := &Envelope{Type: MsgDirected, TTL: 8, Payload: inner}
	sealed, err := botcrypto.Seal(netKey, env.Encode(), drbg)
	if err != nil {
		t.Fatalf("directed envelope does not fit the uniform wire size: %v", err)
	}
	if len(sealed) != want {
		t.Fatalf("directed message size %d differs", len(sealed))
	}
	// Same for group-casts.
	genv := &Envelope{Type: MsgGroupcast, TTL: 8, Payload: make([]byte, GroupSealSize)}
	gsealed, err := botcrypto.Seal(netKey, genv.Encode(), drbg)
	if err != nil || len(gsealed) != want {
		t.Fatalf("group-cast message size differs: %v", err)
	}
}
