package core

import (
	"crypto/ed25519"
	"io"
	"testing"
	"time"

	"onionbots/internal/graph"
)

// ed25519GenerateKey wraps the stdlib generator with the argument order
// used throughout these tests.
func ed25519GenerateKey(random io.Reader) (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(random)
}

// newTestBotNet builds a bootstrapped botnet simulation.
func newTestBotNet(t *testing.T, seed uint64, cfg BotConfig) *BotNet {
	t.Helper()
	bn, err := NewBotNet(seed, 15, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bn
}

// grow adds n bots and settles the network.
func grow(t *testing.T, bn *BotNet, n int) {
	t.Helper()
	if err := bn.Grow(n, nil); err != nil {
		t.Fatal(err)
	}
	// One NoN gossip round so every bot has neighbor knowledge.
	bn.Run(6 * time.Minute)
}

// requireConnected asserts the alive overlay is one component.
func requireConnected(t *testing.T, bn *BotNet) {
	t.Helper()
	g := bn.OverlayGraph()
	if n := graph.NumComponents(g); n != 1 {
		t.Fatalf("overlay has %d components, want 1 (nodes=%d edges=%d)",
			n, g.NumNodes(), g.NumEdges())
	}
}
