// Package core implements the OnionBot reference design of Section IV:
// the bot life cycle (infection, rally, waiting, execution), bootstrap
// strategies, the peering protocol whose Neighbors-of-Neighbor exchange
// drives DDSR self-repair at the protocol level, TTL-flooded
// indistinguishable messaging, the C&C relationship (key establishment
// at rally, address rotation via the shared key schedule, push commands,
// rentals), and the simulation orchestrator that experiments drive.
//
// Everything runs against the in-process Tor simulator (internal/tor)
// under a deterministic clock; "infection" is a simulator event creating
// a node, nothing more. The package exists so that the paper's SOAP
// mitigation (internal/soap) and its hardening counter-measures
// (internal/pow, internal/superonion) have a faithful target to be
// evaluated against.
//
// Infections draw their key material from an IdentityPool (on by
// default): batches of Ed25519/X25519 derivations run ahead of the
// join events, each entry a pure function of (botnet seed, infection
// index), so protocol-level churn joins cost O(handshake) while pooled
// and unpooled runs stay byte-identical per seed.
//
// Bots degrade gracefully when the infrastructure fails under them
// (internal/faults): a rally that cannot reach the C&C still leaves
// the bot alive and peered with its bootstrap neighbors, counts the
// failure, and queues a re-rally on a capped exponential backoff so
// the bot registers once the C&C heals; dials run under the
// BotConfig.Retry policy (tor.RetryPolicy).
package core
