package core

import (
	"testing"
	"time"

	"onionbots/internal/tor"
)

// killResponsibleDirs removes every directory responsible for the
// master's descriptor (all replicas) without republishing the
// consensus — the targeted seizure a graceful bot must survive.
func killResponsibleDirs(t *testing.T, bn *BotNet) {
	t.Helper()
	sid, err := tor.ParseOnion(bn.Master.Onion())
	if err != nil {
		t.Fatal(err)
	}
	c := bn.Net.Consensus()
	now := bn.Net.Now()
	killed := 0
	for r := 0; r < tor.NumReplicas; r++ {
		for _, fp := range c.ResponsibleHSDirs(tor.ComputeDescriptorID(sid, nil, r, now)) {
			if bn.Net.Relay(fp) != nil {
				bn.Net.RemoveRelay(fp)
				killed++
			}
		}
	}
	if killed == 0 {
		t.Fatal("no responsible directory found to kill")
	}
}

// A bot whose rally dial fails must degrade gracefully: infection
// succeeds, bootstrap peering still happens, the failure is counted,
// and a queued re-rally registers the bot once the C&C heals.
func TestBotSurvivesFailedRallyAndReRallies(t *testing.T) {
	// Larger substrate than the default helper: the kill removes up to
	// six directories and path building must still have headroom.
	bn, err := NewBotNet(42, 24, BotConfig{DMin: 1, DMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := bn.InfectOne(nil)
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(5 * time.Second)
	registeredBefore := bn.Master.NumRegistered()

	killResponsibleDirs(t, bn)

	// Infection through a dark C&C: no error, the bot lives, peers via
	// bootstrap, and remembers the debt.
	b, err := bn.InfectOne([]string{a.Onion()})
	if err != nil {
		t.Fatalf("infection aborted on rally failure: %v", err)
	}
	bn.Run(5 * time.Second)
	if !b.Alive() {
		t.Fatal("bot died with its rally")
	}
	if got := b.Stats().RallyFailures; got == 0 {
		t.Fatal("failed rally not counted")
	}
	if got := b.PeerOnions(); len(got) != 1 || got[0] != a.Onion() {
		t.Fatalf("bootstrap peering skipped after rally failure: peers %v", got)
	}
	if bn.Master.NumRegistered() != registeredBefore {
		t.Fatal("dark C&C somehow registered the bot")
	}

	// Heal: the consensus drops the dead directories, the master's
	// service republishes to survivors, and the queued re-rally (10m
	// base, doubling) finds the C&C again.
	bn.Run(3 * time.Hour)
	if got := b.Stats().RallyRetries; got == 0 {
		t.Fatal("re-rally never fired")
	}
	if bn.Master.NumRegistered() != registeredBefore+1 {
		t.Fatalf("re-rally never registered the bot: %d registered, want %d",
			bn.Master.NumRegistered(), registeredBefore+1)
	}
}

// Re-rally gives up after its bounded budget instead of queueing
// forever against a C&C that never comes back.
func TestReRallyBudgetIsBounded(t *testing.T) {
	bn, err := NewBotNet(43, 24, BotConfig{DMin: 1, DMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := bn.InfectOne(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	killResponsibleDirs(t, bn)
	// Keep the C&C dark forever: re-kill the directories after every
	// consensus heal. Republish-to-survivors still revives the service
	// unless the descriptor itself is removed, so take the master's
	// proxy down entirely instead.
	bn.Master.proxy.Shutdown()

	b, err := bn.InfectOne([]string{a.Onion()})
	if err != nil {
		t.Fatal(err)
	}
	// The budget (8 attempts, 10m base doubling, 2h cap) spends itself
	// well within two virtual days.
	bn.Run(48 * time.Hour)
	retries := b.Stats().RallyRetries
	if retries == 0 {
		t.Fatal("re-rally never fired")
	}
	if retries > maxReRallyAttempts {
		t.Fatalf("%d re-rally attempts exceed the %d budget", retries, maxReRallyAttempts)
	}
	bn.Run(24 * time.Hour)
	if got := b.Stats().RallyRetries; got != retries {
		t.Fatalf("re-rally kept firing past its budget: %d -> %d", retries, got)
	}
}
