package core

import (
	"fmt"
)

// Section IV-D: "the botmaster can setup group keys to send encrypted
// messages for a group of bots." A group-cast travels exactly like a
// broadcast — flooded, sealed, fixed-size — but its payload is sealed
// again under a group key, so only members can open (and execute) it.
// Non-members relay blindly; on the wire nothing distinguishes a
// group-cast for group A from one for group B or from any directed
// message.

// GroupSealSize is the inner seal size of a group-cast payload; like
// DirectedSealSize it leaves room for the envelope.
const GroupSealSize = 400

// CreateGroup mints a group key, registers it with the botmaster, and
// delivers it to each member bot via a directed "join-group"
// maintenance command (sealed to the member's K_B).
func (m *Botmaster) CreateGroup(name string, members []*BotRecord) error {
	key := m.drbg.Bytes(32)
	m.groups.Add(name, key)
	payload := make([]byte, 0, len(name)+1+len(key))
	payload = append(payload, name...)
	payload = append(payload, 0)
	payload = append(payload, key...)
	for _, rec := range members {
		cmd := m.NewCommand("join-group", payload)
		if err := m.Reach(rec, cmd); err != nil {
			return fmt.Errorf("core: group %q: deliver key to %s: %w", name, rec.ID(), err)
		}
	}
	return nil
}

// GroupCast floods a command that only the named group's members can
// open, entering the network through the given bots.
func (m *Botmaster) GroupCast(group string, viaOnions []string, cmd *Command, ttl uint8) error {
	inner, err := m.groups.SealForSized(group, cmd.Encode(), GroupSealSize, m.drbg)
	if err != nil {
		return err
	}
	var env Envelope
	env.Type = MsgGroupcast
	copy(env.MsgID[:], m.drbg.Bytes(16))
	env.TTL = ttl
	env.Payload = inner
	delivered := 0
	for _, onion := range viaOnions {
		conn, err := m.proxy.Dial(onion)
		if err != nil {
			continue
		}
		sealed, err := m.netSeal.Seal(env.Encode(), m.drbg)
		if err != nil {
			return err
		}
		if conn.Send(sealed) == nil {
			delivered++
		}
	}
	if delivered == 0 {
		return fmt.Errorf("core: group-cast reached no entry bot")
	}
	return nil
}

// handleGroupcast tries the bot's group keyring; members execute,
// everyone relays.
func (b *Bot) handleGroupcast(env *Envelope) {
	if _, dup := b.seen[env.MsgID]; dup {
		return
	}
	b.markSeen(env.MsgID)
	if inner, _, err := b.groups.TryOpenSized(env.Payload, GroupSealSize); err == nil {
		if cmd, derr := DecodeCommand(inner); derr == nil {
			if cmd.Authorize(b.masterSignPub, b.net.Now(), b.guard) == nil {
				b.execute(cmd)
			}
		}
	}
	if env.TTL > 0 {
		b.relay(&Envelope{Type: MsgGroupcast, MsgID: env.MsgID, TTL: env.TTL - 1, Payload: env.Payload})
	}
}

// joinGroup installs a group key delivered by a "join-group"
// maintenance command. Payload: name || 0x00 || key.
func (b *Bot) joinGroup(payload []byte) {
	for i, c := range payload {
		if c == 0 {
			name := string(payload[:i])
			key := payload[i+1:]
			if name != "" && len(key) == 32 {
				b.groups.Add(name, key)
			}
			return
		}
	}
}

// Groups lists the group names this bot belongs to.
func (b *Bot) Groups() []string { return b.groups.Groups() }
