package core

import (
	"testing"
	"time"

	"onionbots/internal/graph"
)

func TestTwoBotPeeringHandshake(t *testing.T) {
	bn := newTestBotNet(t, 1, BotConfig{})
	a, err := bn.InfectOne(nil)
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Second)
	b, err := bn.InfectOne([]string{a.Onion()})
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Second)

	if got := b.PeerOnions(); len(got) != 1 || got[0] != a.Onion() {
		t.Fatalf("b peers = %v, want [%s]", got, a.Onion())
	}
	if got := a.PeerOnions(); len(got) != 1 || got[0] != b.Onion() {
		t.Fatalf("a peers = %v, want [%s]", got, b.Onion())
	}
	if a.Stage() != StageWaiting || b.Stage() != StageWaiting {
		t.Fatalf("stages = %v, %v, want waiting", a.Stage(), b.Stage())
	}
}

func TestRallyRegistersAtBotmaster(t *testing.T) {
	bn := newTestBotNet(t, 2, BotConfig{})
	grow(t, bn, 5)
	if got := bn.Master.NumRegistered(); got != 5 {
		t.Fatalf("registered bots = %d, want 5", got)
	}
	// The registry holds working K_B material: derived addresses match
	// what the bots actually host.
	recs := bn.Master.Records()
	onions := map[string]bool{}
	for _, b := range bn.AliveBots() {
		onions[b.Onion()] = true
	}
	for _, rec := range recs {
		if !onions[bn.Master.CurrentOnionOf(rec)] {
			t.Fatalf("derived address %s not hosted by any bot",
				bn.Master.CurrentOnionOf(rec))
		}
	}
}

func TestNetworkFormationConnectedAndBounded(t *testing.T) {
	cfg := BotConfig{DMin: 3, DMax: 6}
	bn := newTestBotNet(t, 3, cfg)
	grow(t, bn, 15)
	requireConnected(t, bn)
	for _, b := range bn.AliveBots() {
		if d := b.Degree(); d > cfg.DMax {
			t.Fatalf("bot %s degree %d exceeds DMax %d", b.Onion(), d, cfg.DMax)
		}
	}
	g := bn.OverlayGraph()
	if g.NumNodes() != 15 {
		t.Fatalf("overlay nodes = %d, want 15", g.NumNodes())
	}
}

func TestBroadcastFloodsToAllBots(t *testing.T) {
	bn := newTestBotNet(t, 4, BotConfig{})
	grow(t, bn, 12)
	requireConnected(t, bn)
	if err := bn.Broadcast("ddos", []byte("example.com"), 2); err != nil {
		t.Fatal(err)
	}
	bn.Run(time.Minute) // flood propagation
	if got := bn.ExecutedCount("ddos"); got != 12 {
		t.Fatalf("executed on %d/12 bots", got)
	}
}

func TestBroadcastExecutesOncePerBot(t *testing.T) {
	bn := newTestBotNet(t, 5, BotConfig{})
	grow(t, bn, 8)
	if err := bn.Broadcast("mine", nil, 3); err != nil {
		t.Fatal(err)
	}
	bn.Run(time.Minute)
	for _, b := range bn.AliveBots() {
		count := 0
		for _, rec := range b.Executed() {
			if rec.Name == "mine" {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("bot executed broadcast %d times, want exactly 1", count)
		}
	}
}

func TestForgedBroadcastIgnored(t *testing.T) {
	bn := newTestBotNet(t, 6, BotConfig{})
	grow(t, bn, 6)

	// An adversary knows the network key (say, from a captured bot) and
	// injects an unsigned command.
	imposter, err := NewBotmaster(bn.Net, []byte("imposter"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := imposter.NewCommand("uninstall", nil) // signed by the WRONG master
	entry := bn.AliveBots()[0]
	env := &Envelope{Type: MsgBroadcast, TTL: 4, Payload: cmd.Encode()}
	env.MsgID[0] = 0xAA
	entry.Inject(env)
	bn.Run(time.Minute)
	if got := bn.ExecutedCount("uninstall"); got != 0 {
		t.Fatalf("forged command executed on %d bots", got)
	}
}

func TestSelfHealingAfterTakedown(t *testing.T) {
	cfg := BotConfig{DMin: 3, DMax: 6}
	bn := newTestBotNet(t, 7, cfg)
	grow(t, bn, 12)
	requireConnected(t, bn)

	// Take down a third of the network, one at a time, letting pings
	// detect and repair around each loss (the DDSR protocol loop).
	for i := 0; i < 4; i++ {
		victim := bn.AliveBots()[0]
		bn.Takedown(victim)
		bn.Run(10 * time.Minute) // ping detection + repair + NoN refresh
	}
	alive := bn.AliveBots()
	if len(alive) != 8 {
		t.Fatalf("alive = %d, want 8", len(alive))
	}
	requireConnected(t, bn)
	// Repairs actually fired.
	repairs := 0
	for _, b := range alive {
		repairs += b.Stats().RepairsStarted
	}
	if repairs == 0 {
		t.Fatal("no repairs started despite takedowns")
	}
}

func TestDirectReachAfterAddressRotation(t *testing.T) {
	cfg := BotConfig{Rotation: true}
	bn := newTestBotNet(t, 8, cfg)
	grow(t, bn, 4)

	rec := bn.Master.Records()[0]
	before := bn.Master.CurrentOnionOf(rec)

	// Cross a rotation period (full virtual day) and let the hourly
	// rotation timers fire.
	bn.Run(25 * time.Hour)

	after := bn.Master.CurrentOnionOf(rec)
	if before == after {
		t.Fatal("derived address did not rotate across a period boundary")
	}
	// The C&C reaches the bot at its *new* address, no coordination
	// needed beyond the shared K_B (Section IV-D).
	cmd := bn.Master.NewCommand("status-report", nil)
	if err := bn.Master.Reach(rec, cmd); err != nil {
		t.Fatalf("reach after rotation failed: %v", err)
	}
	bn.Run(time.Minute)
	if got := bn.ExecutedCount("status-report"); got != 1 {
		t.Fatalf("directed command executed on %d bots, want 1", got)
	}
}

func TestRotationKeepsPeersLinked(t *testing.T) {
	cfg := BotConfig{Rotation: true, DMin: 2, DMax: 4}
	bn := newTestBotNet(t, 9, cfg)
	grow(t, bn, 6)
	requireConnected(t, bn)
	bn.Run(25 * time.Hour)
	// After everyone rotated, peer maps must be re-keyed to the new
	// addresses and the overlay must remain connected.
	rotations := 0
	for _, b := range bn.AliveBots() {
		rotations += b.Stats().Rotations
	}
	if rotations < 6 {
		t.Fatalf("only %d rotations happened", rotations)
	}
	alive := map[string]bool{}
	for _, b := range bn.AliveBots() {
		alive[b.Onion()] = true
	}
	for _, b := range bn.AliveBots() {
		for _, p := range b.PeerOnions() {
			if !alive[p] {
				t.Fatalf("bot %s still lists stale peer address %s", b.Onion(), p)
			}
		}
	}
	requireConnected(t, bn)
}

func TestFloodDirectedReachesOnlyTarget(t *testing.T) {
	bn := newTestBotNet(t, 10, BotConfig{})
	grow(t, bn, 8)
	requireConnected(t, bn)

	rec := bn.Master.Records()[3]
	cmd := bn.Master.NewCommand("exfiltrate", []byte("docs"))
	entry := bn.AliveBots()[0].Onion()
	if err := bn.Master.FloodDirected(entry, rec, cmd, 6); err != nil {
		t.Fatal(err)
	}
	bn.Run(time.Minute)
	if got := bn.ExecutedCount("exfiltrate"); got != 1 {
		t.Fatalf("directed command executed on %d bots, want exactly 1", got)
	}
	// The message transited relays that could not read it.
	relayed := 0
	for _, b := range bn.AliveBots() {
		relayed += b.Stats().MessagesRelayed
	}
	if relayed == 0 {
		t.Fatal("directed flood was never relayed")
	}
}

func TestMaintenanceCommandDropPeer(t *testing.T) {
	bn := newTestBotNet(t, 11, BotConfig{})
	grow(t, bn, 5)
	target := bn.AliveBots()[1]
	peers := target.PeerOnions()
	if len(peers) == 0 {
		t.Fatal("target has no peers")
	}
	victim := peers[0]
	rec := findRecordFor(t, bn, target)
	cmd := bn.Master.NewCommand("drop-peer", []byte(victim))
	if err := bn.Master.Reach(rec, cmd); err != nil {
		t.Fatal(err)
	}
	// Check right after delivery: the self-healing DMin floor would
	// legitimately re-acquire a dropped peer at the next ping tick,
	// which is by design.
	bn.Run(time.Second)
	if got := bn.ExecutedCount("drop-peer"); got != 1 {
		t.Fatalf("drop-peer executed on %d bots, want 1", got)
	}
	for _, p := range target.PeerOnions() {
		if p == victim {
			t.Fatal("maintenance drop-peer did not remove the peer")
		}
	}
}

// findRecordFor locates the registry record whose derived address
// matches the bot.
func findRecordFor(t *testing.T, bn *BotNet, b *Bot) *BotRecord {
	t.Helper()
	for _, rec := range bn.Master.Records() {
		if bn.Master.CurrentOnionOf(rec) == b.Onion() {
			return rec
		}
	}
	t.Fatal("no registry record for bot")
	return nil
}

func TestAcceptanceRuleDisplacesHighestDegree(t *testing.T) {
	cfg := BotConfig{DMin: 1, DMax: 2}
	bn := newTestBotNet(t, 12, cfg)
	a, err := bn.InfectOne(nil)
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Second)
	// Fill a to DMax.
	for i := 0; i < 2; i++ {
		if _, err := bn.InfectOne([]string{a.Onion()}); err != nil {
			t.Fatal(err)
		}
		bn.Run(2 * time.Second)
	}
	if a.Degree() != 2 {
		t.Fatalf("a degree = %d, want 2 (full)", a.Degree())
	}
	// Let NoN gossip propagate true degrees: a must know its peers'
	// real degrees for the displacement comparison to bite.
	bn.Run(6 * time.Minute)
	// A newcomer with a low declared degree displaces.
	d, err := bn.InfectOne([]string{a.Onion()})
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Second)
	if a.Degree() != 2 {
		t.Fatalf("a degree = %d after displacement, want 2", a.Degree())
	}
	found := false
	for _, p := range a.PeerOnions() {
		if p == d.Onion() {
			found = true
		}
	}
	if !found {
		t.Fatal("low-degree newcomer was not accepted by displacement")
	}
	if a.Stats().PeersPruned == 0 {
		t.Fatal("no peer was pruned during displacement")
	}
}

func TestOverlayGraphMatchesPeerLists(t *testing.T) {
	bn := newTestBotNet(t, 13, BotConfig{})
	grow(t, bn, 8)
	g := bn.OverlayGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 8 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if graph.NumComponents(g) != 1 {
		t.Fatal("overlay disconnected")
	}
}

func TestHotlistBootstrap(t *testing.T) {
	bn := newTestBotNet(t, 14, BotConfig{DMin: 2, DMax: 5})
	// Seed two cache bots.
	a, err := bn.InfectOne(nil)
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Second)
	b, err := bn.InfectOne([]string{a.Onion()})
	if err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Second)
	// Grow through the hotlist: everyone bootstraps via the caches and
	// then spreads out through NoN knowledge.
	if err := bn.Grow(8, Hotlist{Caches: []string{a.Onion(), b.Onion()}}); err != nil {
		t.Fatal(err)
	}
	bn.Run(10 * time.Minute)
	requireConnected(t, bn)
}

func TestRandomProbingInfeasible(t *testing.T) {
	dials := RandomProbingExpectedDials(100000)
	if dials < 1e18 {
		t.Fatalf("expected dials = %g, should be astronomically large", dials)
	}
}
