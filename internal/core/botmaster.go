package core

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"onionbots/internal/botcrypto"
	"onionbots/internal/tor"
)

// BotRecord is the botmaster's registry entry for one bot: the shared
// key K_B (everything else — including the bot's address at any future
// time — derives from it) and rally metadata.
type BotRecord struct {
	KB           []byte
	FirstOnion   string
	RegisteredAt time.Time

	seal *botcrypto.SealKey // lazily cached K_B sealing session

	// curOnion memoizes the derived address for curPeriod; the
	// derivation is deterministic per (K_B, period).
	curOnion  string
	curPeriod uint64

	id string // lazily cached ID (hash of K_B)
}

// sealKey returns the cached sealing session for the bot's K_B.
func (r *BotRecord) sealKey() *botcrypto.SealKey {
	if r.seal == nil {
		r.seal = botcrypto.NewSealKey(r.KB)
	}
	return r.seal
}

// ID is a stable identifier for the record (hash of K_B), computed
// once — rally replies compare IDs per candidate draw.
func (r *BotRecord) ID() string {
	if r.id == "" {
		r.id = recordID(r.KB)
	}
	return r.id
}

func recordID(kb []byte) string {
	sum := sha256.Sum256(kb)
	return hex.EncodeToString(sum[:8])
}

// recordChunkShift sizes record-arena chunks: 1024 records each.
const recordChunkShift = 10

// recordArena stores BotRecords by value in fixed-capacity chunks.
// Records never leave the registry, so the arena only appends; a chunk
// is allocated full-capacity up front and never reallocated, which
// makes &chunk[i] stable for the life of the botmaster — the registry
// map, rally replies, and callers of Records all hold pointers into
// it. Against the former one-pointer-per-record list this packs
// records contiguously (a hotlist index draw is one predictable
// indexed load) and drops a million heap objects to ~a thousand chunk
// allocations at paper scale.
type recordArena struct {
	chunks [][]BotRecord
	n      int
}

// add appends rec and returns its stable address.
func (a *recordArena) add(rec BotRecord) *BotRecord {
	if a.n>>recordChunkShift == len(a.chunks) {
		a.chunks = append(a.chunks, make([]BotRecord, 0, 1<<recordChunkShift))
	}
	c := &a.chunks[len(a.chunks)-1]
	*c = append(*c, rec)
	a.n++
	return &(*c)[len(*c)-1]
}

// at returns the stable address of record i (registration order).
func (a *recordArena) at(i int) *BotRecord {
	return &a.chunks[i>>recordChunkShift][i&(1<<recordChunkShift-1)]
}

// len reports how many records the arena holds.
func (a *recordArena) len() int { return a.n }

// Botmaster is the C&C operator: it holds the signing and encryption
// keys whose public halves are hardcoded into every bot, hosts the
// rally hidden service, and can reach any registered bot at any time
// through the shared key schedule — without ever revealing itself.
type Botmaster struct {
	net   *tor.Network
	proxy *tor.OnionProxy
	drbg  *botcrypto.DRBG

	signPub  ed25519.PublicKey
	signPriv ed25519.PrivateKey
	enc      *botcrypto.EncryptionKeyPair

	identity *tor.Identity
	hs       *tor.HiddenService
	netKey   []byte
	netSeal  *botcrypto.SealKey
	groups   *botcrypto.GroupKeyring
	queues   map[string][]*Command // pull-mode command queues by bot id

	registry map[string]*BotRecord // keyed by BotRecord.ID()
	// records holds the same records by value in registration order
	// (see recordArena). The registry never forgets, so the arena only
	// appends — an O(1)-indexable candidate pool for rally replies that
	// would otherwise sort and shuffle the whole registry per report.
	records recordArena
	// rallyOpens maps sealed-rally-report digests to the K_B inside,
	// primed by the identity pool for reports it pre-sealed (sealing and
	// opening are inverses, so the memo is exact). A hit skips the
	// X25519 exchange; unknown or forged blobs miss and take the real
	// path. Entries are consumed on hit.
	rallyOpens map[[sha256.Size]byte][]byte

	// HotlistSize, when positive, makes the C&C answer each rally
	// report with that many current addresses of other registered bots.
	// Registration requires sealing K_B to the master's key, which the
	// paper's legally-constrained authorities cannot do — so the
	// hotlist is clone-free by construction. SuperOnion replacements
	// (Section VII-B) rely on this to re-bootstrap out of containment.
	HotlistSize int
}

// NewBotmaster creates the C&C with deterministic keys from seed and
// hosts its rally service.
func NewBotmaster(net *tor.Network, seed []byte) (*Botmaster, error) {
	drbg := botcrypto.NewDRBG(append([]byte("botmaster:"), seed...))
	signPub, signPriv, err := ed25519.GenerateKey(drbg)
	if err != nil {
		return nil, fmt.Errorf("core: master sign keys: %w", err)
	}
	enc, err := botcrypto.NewEncryptionKeyPair(drbg)
	if err != nil {
		return nil, fmt.Errorf("core: master enc keys: %w", err)
	}
	m := &Botmaster{
		net:        net,
		proxy:      tor.NewProxy(net),
		drbg:       drbg,
		signPub:    signPub,
		signPriv:   signPriv,
		enc:        enc,
		netKey:     drbg.Bytes(32),
		groups:     botcrypto.NewGroupKeyring(),
		queues:     make(map[string][]*Command),
		registry:   make(map[string]*BotRecord),
		rallyOpens: make(map[[sha256.Size]byte][]byte),
	}
	m.netSeal = botcrypto.NewSealKey(m.netKey)
	var idSeed [32]byte
	copy(idSeed[:], drbg.Bytes(32))
	m.identity = tor.IdentityFromSeed(idSeed)
	hs, err := m.proxy.Host(m.identity, m.onInboundConn)
	if err != nil {
		return nil, fmt.Errorf("core: host C&C service: %w", err)
	}
	m.hs = hs
	return m, nil
}

// SetRetryPolicy installs a dial retry policy on the master's proxy,
// so Reach survives transient infrastructure faults the same way bot
// dials do. BotNet wires the BotConfig policy through here.
func (m *Botmaster) SetRetryPolicy(rp tor.RetryPolicy) { m.proxy.Retry = rp }

// SignPub is the public key hardcoded into bots for command
// verification and the address schedule.
func (m *Botmaster) SignPub() ed25519.PublicKey { return m.signPub }

// SignPriv exposes the master signing key (used by rental issuance).
func (m *Botmaster) SignPriv() ed25519.PrivateKey { return m.signPriv }

// EncPub is the public encryption key bots seal K_B to at rally.
func (m *Botmaster) EncPub() *botcrypto.EncryptionKeyPair {
	return &botcrypto.EncryptionKeyPair{Pub: m.enc.Pub}
}

// NetKey is the network-wide sealing key baked into bots at infection.
func (m *Botmaster) NetKey() []byte { return append([]byte(nil), m.netKey...) }

// Onion is the hardcoded rally address.
func (m *Botmaster) Onion() string { return m.identity.Onion() }

// Records lists registered bots, sorted by rally order then ID.
func (m *Botmaster) Records() []*BotRecord {
	out := make([]*BotRecord, 0, m.records.len())
	for i := 0; i < m.records.len(); i++ {
		out = append(out, m.records.at(i))
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].RegisteredAt.Equal(out[j].RegisteredAt) {
			return out[i].RegisteredAt.Before(out[j].RegisteredAt)
		}
		return out[i].ID() < out[j].ID()
	})
	return out
}

// NumRegistered reports registry size.
func (m *Botmaster) NumRegistered() int { return len(m.registry) }

func (m *Botmaster) onInboundConn(conn *tor.Conn) {
	conn.SetHandler(func(msg []byte) { m.onMessage(conn, msg) })
}

func (m *Botmaster) onMessage(conn *tor.Conn, raw []byte) {
	plain, err := m.netSeal.Open(raw)
	if err != nil {
		return
	}
	env, err := DecodeEnvelope(plain)
	if err != nil {
		return
	}
	if env.Type == MsgPoll {
		if rep, perr := DecodeReport(env.Payload); perr == nil {
			m.handlePoll(conn, rep)
		}
		return
	}
	if env.Type != MsgReport {
		return
	}
	rep, err := DecodeReport(env.Payload)
	if err != nil {
		return
	}
	kb, err := m.openRallyReport(rep.SealedKB)
	if err != nil {
		return // forged or corrupted rally report
	}
	// The ID is computed before any record exists, so a duplicate rally
	// report never allocates: the registered record answers the reply
	// (the hotlist only consults the reporter's ID, which matches).
	id := recordID(kb)
	rec, dup := m.registry[id]
	if !dup {
		rec = m.records.add(BotRecord{KB: kb, FirstOnion: rep.Onion, RegisteredAt: m.net.Now(), id: id})
		m.registry[id] = rec
	}
	m.replyHotlist(conn, rec)
}

// openRallyReport recovers K_B from a rally report, consulting the
// pool-primed memo before paying the X25519 exchange.
func (m *Botmaster) openRallyReport(sealed []byte) ([]byte, error) {
	if len(m.rallyOpens) > 0 {
		key := sha256.Sum256(sealed)
		if kb, ok := m.rallyOpens[key]; ok {
			delete(m.rallyOpens, key)
			return kb, nil
		}
	}
	return botcrypto.OpenWithPrivate(m.enc.Priv, sealed)
}

// PrimeRallyOpen records the plaintext of a rally report that was
// sealed in this process (by the identity pool), so its registration
// will skip the X25519 exchange. The memo is exact — SealToPublic and
// OpenWithPrivate are inverses — and one-shot per blob.
func (m *Botmaster) PrimeRallyOpen(sealed, kb []byte) {
	m.rallyOpens[sha256.Sum256(sealed)] = append([]byte(nil), kb...)
}

// replyHotlist answers a rally with current addresses of other
// registered bots (see HotlistSize). The candidate draw is O(HotlistSize)
// expected — distinct index draws with duplicate rejection over the
// append-only record list — instead of the former sort-and-shuffle of
// the entire registry, which made every rally reply linear in the
// population and dominated protocol-scale churn joins.
func (m *Botmaster) replyHotlist(conn *tor.Conn, reporter *BotRecord) {
	if m.HotlistSize <= 0 {
		return
	}
	rid := reporter.ID()
	avail := m.records.len()
	if _, registered := m.registry[rid]; registered {
		avail--
	}
	if avail <= 0 {
		return
	}
	var pool []string
	if m.HotlistSize >= avail {
		// Small registry: every other bot's current address, in
		// registration order.
		pool = make([]string, 0, avail)
		for i := 0; i < m.records.len(); i++ {
			r := m.records.at(i)
			if r.ID() == rid {
				continue
			}
			pool = append(pool, m.CurrentOnionOf(r))
		}
	} else {
		rng := m.net.RNG()
		pool = make([]string, 0, m.HotlistSize)
		seen := make(map[int]struct{}, m.HotlistSize+1)
		for len(pool) < m.HotlistSize {
			i := rng.Intn(m.records.len())
			if _, dup := seen[i]; dup {
				continue
			}
			seen[i] = struct{}{}
			r := m.records.at(i)
			if r.ID() == rid {
				continue
			}
			pool = append(pool, m.CurrentOnionOf(r))
		}
	}
	up := &NoNUpdate{Onion: "", Degree: 0, Neighbors: pool}
	var env Envelope
	env.Type = MsgNoNUpdate
	copy(env.MsgID[:], m.drbg.Bytes(16))
	env.Payload = up.Encode()
	sealed, err := m.netSeal.Seal(env.Encode(), m.drbg)
	if err != nil {
		return
	}
	_ = conn.Send(sealed)
}

// NewCommand builds a fresh master-signed command.
func (m *Botmaster) NewCommand(name string, args []byte) *Command {
	cmd := &Command{Name: name, Args: args, IssuedAt: m.net.Now()}
	copy(cmd.Nonce[:], m.drbg.Bytes(16))
	cmd.SignMaster(m.signPriv)
	return cmd
}

// CurrentOnionOf derives where a registered bot is reachable right now,
// using only K_B and the clock — the Section IV-D property that
// survives every rotation.
func (m *Botmaster) CurrentOnionOf(rec *BotRecord) string {
	ip := botcrypto.PeriodIndex(m.net.Now())
	if rec.curOnion == "" || rec.curPeriod != ip {
		rec.curOnion = botcrypto.OnionForPeriod(m.signPub, rec.KB, ip)
		rec.curPeriod = ip
	}
	return rec.curOnion
}

// Reach dials a bot directly at its current derived address and
// delivers a command sealed to its K_B.
func (m *Botmaster) Reach(rec *BotRecord, cmd *Command) error {
	onion := m.CurrentOnionOf(rec)
	conn, err := m.proxy.Dial(onion)
	if err != nil {
		return fmt.Errorf("core: reach %s: %w", rec.ID(), err)
	}
	sealed, err := rec.sealKey().Seal(cmd.Encode(), m.drbg)
	if err != nil {
		return err
	}
	return conn.Send(sealed)
}

// Broadcast pushes a command into the network through the given entry
// bots; flooding does the rest.
func (m *Botmaster) Broadcast(viaOnions []string, cmd *Command, ttl uint8) error {
	var env Envelope
	env.Type = MsgBroadcast
	copy(env.MsgID[:], m.drbg.Bytes(16))
	env.TTL = ttl
	env.Payload = cmd.Encode()
	delivered := 0
	for _, onion := range viaOnions {
		conn, err := m.proxy.Dial(onion)
		if err != nil {
			continue
		}
		sealed, err := m.netSeal.Seal(env.Encode(), m.drbg)
		if err != nil {
			return err
		}
		if conn.Send(sealed) == nil {
			delivered++
		}
	}
	if delivered == 0 {
		return fmt.Errorf("core: broadcast reached no entry bot")
	}
	return nil
}

// FloodDirected pushes a command for one bot into the network through
// an arbitrary entry bot. Relays cannot open the inner seal and forward
// it blindly; only the target's K_B opens it.
func (m *Botmaster) FloodDirected(viaOnion string, rec *BotRecord, cmd *Command, ttl uint8) error {
	inner, err := rec.sealKey().SealSized(cmd.Encode(), DirectedSealSize, m.drbg)
	if err != nil {
		return err
	}
	var env Envelope
	env.Type = MsgDirected
	copy(env.MsgID[:], m.drbg.Bytes(16))
	env.TTL = ttl
	env.Payload = inner
	conn, err := m.proxy.Dial(viaOnion)
	if err != nil {
		return fmt.Errorf("core: flood-directed via %s: %w", viaOnion, err)
	}
	sealed, err := m.netSeal.Seal(env.Encode(), m.drbg)
	if err != nil {
		return err
	}
	return conn.Send(sealed)
}
