package core

import (
	"fmt"

	"onionbots/internal/botcrypto"
)

// defaultPoolBatch is the warmup batch size of a BotNet's identity
// pool. Any batch size produces byte-identical runs (each entry is a
// pure function of the bot seed and index); the batch only sets how
// much keygen is amortized per warmup.
const defaultPoolBatch = 64

// IdentityPool pre-derives bot key material in batches so a churn join
// is O(handshake) instead of O(keygen). Entry i of the pool is exactly
// what infection i would derive live — same K_B, same identity, same
// DRBG read order (see botcrypto.BotMaterial) — so pooled and unpooled
// runs are byte-identical for the same seed; the pool only moves the
// Ed25519/X25519 work out of the join event and into a warmup batch.
//
// Beyond the bot-side material, warmup also fronts the two signature
// workloads a join would trigger elsewhere in the simulation: the
// ESTABLISH_INTRO binding check its introduction points run
// (tor.Network.PreverifyIntro seeds the network's verify memo), and the
// X25519 exchange the botmaster pays to open the rally report
// (Botmaster.PrimeRallyOpen).
type IdentityPool struct {
	batch int
	// base and entries form a sliding window over bot indices:
	// entries[i] holds the material for bot index base+i, nil when not
	// yet derived or already consumed. Bot indices are consumed in
	// strictly increasing order (InfectOne increments nextBot before
	// drawing), so the window only slides forward; the consumed prefix
	// is trimmed on every take. Compared to the former map[int] this is
	// one flat pointer array of ~batch length — no hashing on the churn
	// path and nothing for the GC to walk beyond the window itself.
	base    int
	entries []*botcrypto.BotMaterial
	stats   IdentityPoolStats
}

// IdentityPoolStats counts pool activity.
type IdentityPoolStats struct {
	// Derived is how many entries warmup batches pre-derived.
	Derived int
	// Served is how many infections drew their material from the pool.
	Served int
	// Refreshed counts entries whose identity had to be re-derived at
	// draw time because the rotation period rolled past their warmup.
	Refreshed int
}

func newIdentityPool(batch int) *IdentityPool {
	return &IdentityPool{batch: batch}
}

// get returns the window slot for bot index idx, nil when outside the
// window or not derived.
func (p *IdentityPool) get(idx int) *botcrypto.BotMaterial {
	if idx < p.base || idx >= p.base+len(p.entries) {
		return nil
	}
	return p.entries[idx-p.base]
}

// set stores material for bot index idx, growing the window tail as
// needed. Indices behind the window were already consumed; storing
// them again is dropped.
func (p *IdentityPool) set(idx int, m *botcrypto.BotMaterial) {
	if len(p.entries) == 0 {
		p.base = idx
	}
	if idx < p.base {
		return
	}
	for idx >= p.base+len(p.entries) {
		p.entries = append(p.entries, nil)
	}
	p.entries[idx-p.base] = m
}

// take removes and returns the material for bot index idx, sliding the
// window past the consumed prefix.
func (p *IdentityPool) take(idx int) *botcrypto.BotMaterial {
	m := p.get(idx)
	if m == nil {
		return nil
	}
	p.entries[idx-p.base] = nil
	trim := 0
	for trim < len(p.entries) && p.entries[trim] == nil {
		trim++
	}
	p.entries = p.entries[trim:]
	p.base += trim
	return m
}

// SetIdentityPool resizes the botnet's identity pool warmup batch, or
// disables pooling entirely with batch <= 0 (every infection then pays
// full keygen inline — the unpooled baseline of the A/B benchmarks).
// Material already pre-derived is discarded; because pooled and
// unpooled derivations are byte-equivalent, switching modes mid-run
// does not change any outcome.
func (bn *BotNet) SetIdentityPool(batch int) {
	if batch <= 0 {
		bn.pool = nil
		return
	}
	bn.pool = newIdentityPool(batch)
}

// IdentityPoolStats reports pool activity (zero when pooling is off).
func (bn *BotNet) IdentityPoolStats() IdentityPoolStats {
	if bn.pool == nil {
		return IdentityPoolStats{}
	}
	return bn.pool.stats
}

// WarmIdentities pre-derives material for the next n infections right
// now (a no-op when pooling is off). Long-running campaigns call it
// during idle stretches so that a later join burst — a churn wave, a
// Grow — finds every identity already derived.
func (bn *BotNet) WarmIdentities(n int) {
	if bn.pool == nil {
		return
	}
	p := bn.pool
	ip := botcrypto.PeriodIndex(bn.Net.Now())
	signPub := bn.Master.SignPub()
	encPub := bn.Master.enc.Pub
	netKey := bn.Master.netKey
	for i := bn.nextBot + 1; i <= bn.nextBot+n; i++ {
		if p.get(i) != nil {
			continue
		}
		m, err := botcrypto.DeriveBotMaterial(signPub, encPub, netKey,
			[]byte(fmt.Sprintf("bot-%d-%d", bn.seed, i)), ip)
		if err != nil {
			return
		}
		bn.Net.PreverifyIntro(m.Identity)
		if m.SealedKB != nil {
			bn.Master.PrimeRallyOpen(m.SealedKB, m.KB)
		}
		p.set(i, m)
		p.stats.Derived++
	}
}

// takeMaterial returns the pre-derived material for bot index idx,
// warming the next batch when the pool has run dry. Returns nil when a
// derivation fails, which sends the caller down the live path.
func (bn *BotNet) takeMaterial(idx int) *botcrypto.BotMaterial {
	p := bn.pool
	ip := botcrypto.PeriodIndex(bn.Net.Now())
	mat := p.take(idx)
	if mat == nil {
		signPub := bn.Master.SignPub()
		encPub := bn.Master.enc.Pub
		netKey := bn.Master.netKey
		for i := idx; i < idx+p.batch; i++ {
			m, err := botcrypto.DeriveBotMaterial(signPub, encPub, netKey,
				[]byte(fmt.Sprintf("bot-%d-%d", bn.seed, i)), ip)
			if err != nil {
				return nil
			}
			bn.Net.PreverifyIntro(m.Identity)
			if m.SealedKB != nil {
				bn.Master.PrimeRallyOpen(m.SealedKB, m.KB)
			}
			p.set(i, m)
			p.stats.Derived++
		}
		mat = p.take(idx)
		if mat == nil {
			return nil
		}
	}
	if mat.Period != ip {
		// The rotation period rolled over since warmup: re-derive the
		// identity (K_B, the DRBG position, and the rally seal are
		// period-independent and survive).
		mat.Refresh(bn.Master.SignPub(), ip)
		bn.Net.PreverifyIntro(mat.Identity)
		p.stats.Refreshed++
	}
	p.stats.Served++
	return mat
}
