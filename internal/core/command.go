package core

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"

	"onionbots/internal/botcrypto"
)

// Command is an authenticated C&C instruction. Master-issued commands
// carry the master's signature; rented commands additionally carry a
// botcrypto.Token and are signed by the renter (Section IV-E).
type Command struct {
	Name     string
	Args     []byte
	IssuedAt time.Time
	Nonce    [16]byte
	// Rental is nil for master-issued commands.
	Rental *botcrypto.Token
	Sig    []byte
}

// ErrCommandRejected reports a command that failed authentication.
var ErrCommandRejected = errors.New("core: command rejected")

func (c *Command) signingBytes() []byte {
	var w writer
	w.raw([]byte("onionbots-cmd:"))
	w.str(c.Name)
	w.bytes(c.Args)
	w.u64(uint64(c.IssuedAt.Unix()))
	w.raw(c.Nonce[:])
	return w.buf
}

// SignMaster signs the command with the botmaster's key.
func (c *Command) SignMaster(priv ed25519.PrivateKey) {
	c.Rental = nil
	c.Sig = ed25519.Sign(priv, c.signingBytes())
}

// SignRenter signs the command with a renter's key under a token. The
// signature preimage is botcrypto's rented-command encoding, so
// Authorize can delegate verification to botcrypto.AuthorizeRented.
func (c *Command) SignRenter(priv ed25519.PrivateKey, token *botcrypto.Token) {
	c.Rental = token
	rc := botcrypto.SignRentedCommand(priv, token, c.Name, c.Args, c.IssuedAt, c.Nonce)
	c.Sig = rc.Sig
}

// Authorize performs the full bot-side check: signature chain, rental
// expiry and whitelist, and replay/freshness via guard (which may be
// nil to skip replay tracking, e.g. for relays that only forward).
func (c *Command) Authorize(masterPub ed25519.PublicKey, now time.Time,
	guard *botcrypto.ReplayGuard) error {
	if c.Rental == nil {
		if !ed25519.Verify(masterPub, c.signingBytes(), c.Sig) {
			return fmt.Errorf("%w: bad master signature", ErrCommandRejected)
		}
	} else {
		rc := &botcrypto.RentedCommand{
			Name:     c.Name,
			Args:     c.Args,
			IssuedAt: c.IssuedAt,
			Nonce:    c.Nonce,
			Token:    c.Rental,
			Sig:      c.Sig,
		}
		if err := botcrypto.AuthorizeRented(masterPub, rc, now); err != nil {
			return fmt.Errorf("%w: %v", ErrCommandRejected, err)
		}
	}
	if guard != nil {
		if err := guard.Check(c.Nonce, c.IssuedAt, now); err != nil {
			return fmt.Errorf("%w: %v", ErrCommandRejected, err)
		}
	}
	return nil
}

// Encode renders the command (including any token).
func (c *Command) Encode() []byte {
	var w writer
	w.str(c.Name)
	w.bytes(c.Args)
	w.u64(uint64(c.IssuedAt.Unix()))
	w.raw(c.Nonce[:])
	w.bytes(c.Sig)
	if c.Rental == nil {
		w.u8(0)
		return w.buf
	}
	w.u8(1)
	w.bytes(c.Rental.RenterPub)
	w.u64(uint64(c.Rental.Expiry.Unix()))
	w.u16(len(c.Rental.Whitelist))
	for _, cmd := range c.Rental.Whitelist {
		w.str(cmd)
	}
	w.bytes(c.Rental.Sig)
	return w.buf
}

// DecodeCommand parses a command payload.
func DecodeCommand(raw []byte) (*Command, error) {
	r := reader{buf: raw}
	c := &Command{Name: r.str(), Args: r.bytes()}
	c.IssuedAt = time.Unix(int64(r.u64()), 0).UTC()
	copy(c.Nonce[:], r.raw(16))
	c.Sig = r.bytes()
	hasToken := r.u8()
	if r.err != nil {
		return nil, fmt.Errorf("%w: Command", ErrBadMessage)
	}
	if hasToken == 1 {
		t := &botcrypto.Token{RenterPub: r.bytes()}
		t.Expiry = time.Unix(int64(r.u64()), 0).UTC()
		n := r.u16()
		if r.err != nil || n > 1024 {
			return nil, fmt.Errorf("%w: Command token", ErrBadMessage)
		}
		for i := 0; i < n; i++ {
			t.Whitelist = append(t.Whitelist, r.str())
		}
		t.Sig = r.bytes()
		if r.err != nil {
			return nil, fmt.Errorf("%w: Command token", ErrBadMessage)
		}
		c.Rental = t
	}
	return c, nil
}
