package core

import (
	"bytes"
	"crypto/ecdh"
	"crypto/ed25519"
	"fmt"
	"sort"
	"time"

	"onionbots/internal/botcrypto"
	"onionbots/internal/pow"
	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

// Stage is the bot life-cycle state (Section IV-A).
type Stage int

// Life-cycle stages.
const (
	StageInfection Stage = iota + 1
	StageRally
	StageWaiting
	StageExecution
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageInfection:
		return "infection"
	case StageRally:
		return "rally"
	case StageWaiting:
		return "waiting"
	case StageExecution:
		return "execution"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// DirectedSealSize is the wire size of the inner seal of a directed
// command (sealed to one bot's K_B). It is smaller than the transport
// seal so a directed command still fits inside a flooded envelope.
const DirectedSealSize = 400

// BotConfig tunes a bot's protocol behaviour.
type BotConfig struct {
	// DMin and DMax bound the peer list, as in the DDSR maintenance
	// rules. Defaults 3 and 6.
	DMin, DMax int
	// PingInterval is the dead-peer probe period (virtual time).
	// Default 1m.
	PingInterval time.Duration
	// NoNInterval is the neighbor-list gossip period. Default 5m.
	NoNInterval time.Duration
	// FloodTTL bounds broadcast propagation. Default 8.
	FloodTTL uint8
	// Rotation enables periodic .onion address rotation.
	Rotation bool
	// ReplayWindow is the command freshness window. Default 30m.
	ReplayWindow time.Duration
	// MaxSolveBits is the hardest proof-of-work challenge this bot will
	// solve to join a hardened peer (Section VII-A). Default 22.
	MaxSolveBits uint8
	// GossipFanout, when positive, relays flooded messages to that many
	// random peers instead of all of them — the low-message-complexity
	// gossip the paper suggests for SuperOnion probe dissemination
	// (Section VII-B). Zero keeps full flooding.
	GossipFanout int
	// Retry is the dial retry policy installed on every bot proxy (and
	// the botmaster's, via BotNet). The zero value keeps single-attempt
	// dials — byte-identical to a population predating the fault plane.
	Retry tor.RetryPolicy
	// Store selects the DescriptorStore backend every relay in the
	// botnet's Tor network uses: "flat", "sharded", "mmap", or "" for
	// the default (sharded). The backends are observably identical —
	// fixed-seed runs are byte-identical across them — so the knob
	// trades memory layout (heap maps vs off-heap append-log), never
	// behavior. BotNet construction rejects unknown names.
	Store string
}

func (c BotConfig) withDefaults() BotConfig {
	if c.DMin == 0 {
		c.DMin = 3
	}
	if c.DMax == 0 {
		c.DMax = 6
	}
	if c.PingInterval == 0 {
		c.PingInterval = time.Minute
	}
	if c.NoNInterval == 0 {
		c.NoNInterval = 5 * time.Minute
	}
	if c.FloodTTL == 0 {
		c.FloodTTL = 8
	}
	if c.ReplayWindow == 0 {
		c.ReplayWindow = 30 * time.Minute
	}
	if c.MaxSolveBits == 0 {
		c.MaxSolveBits = 22
	}
	return c
}

// BotStats counts protocol activity.
type BotStats struct {
	CommandsExecuted int
	MessagesRelayed  int
	PeersAccepted    int
	PeersRejected    int
	PeersPruned      int
	RepairsStarted   int
	Rotations        int
	// HashesSpent is the proof-of-work cost this bot paid to join
	// hardened peers — the honest side of the Section VII-A trade-off.
	HashesSpent uint64
	// RallyFailures counts C&C reports that exhausted their dial budget;
	// RallyRetries counts queued re-rallies that actually fired. Both
	// stay zero unless the infrastructure misbehaves.
	RallyFailures int
	RallyRetries  int
}

// ExecRecord logs one executed command.
type ExecRecord struct {
	Name   string
	Args   []byte
	At     time.Time
	Rented bool
}

// peerInfo is what a bot knows about one peer: its current address, the
// connection, its last declared degree, and its neighbor list (the NoN
// knowledge that powers self-repair).
type peerInfo struct {
	onion     string
	conn      *tor.Conn
	degree    int
	neighbors []string
}

// Bot is one OnionBot node.
type Bot struct {
	cfg      BotConfig
	net      *tor.Network
	proxy    *tor.OnionProxy
	ownProxy bool
	rng      *sim.RNG
	drbg     *botcrypto.DRBG

	masterSignPub ed25519.PublicKey
	masterEncPub  *ecdh.PublicKey
	netKey        []byte // network-wide sealing key, baked in at infection
	netSeal       *botcrypto.SealKey
	ccOnion       string // hardcoded C&C rally address

	kb        []byte // K_B shared with the botmaster
	kbSeal    *botcrypto.SealKey
	identity  *tor.Identity
	hs        *tor.HiddenService
	hostedFor uint64 // rotation period the current identity was derived for
	sealBuf   [botcrypto.SealedSize]byte
	// pendingSealedKB is a pool-pre-derived rally report ({K_B}_PK_CC),
	// consumed by the first reportToCC; later re-rallies seal live.
	pendingSealedKB []byte

	peers   map[string]*peerInfo
	pending map[string]*tor.Conn // dialed, awaiting PEER_ACK
	// dialing marks peer candidates with a dial in flight (a retrying
	// DialAsync resolves later), so overlapping acquisition rounds do
	// not double-dial one candidate.
	dialing map[string]struct{}
	seen    map[[16]byte]struct{}
	guard   *botcrypto.ReplayGuard
	groups  *botcrypto.GroupKeyring

	stage    Stage
	alive    bool
	executed []ExecRecord
	stats    BotStats
	// owner and rosterIdx tie the bot into its BotNet's flat alive
	// index (see aliveIndex): set once at adoption, consulted once at
	// takedown. Two inline words replace the per-bot closure the old
	// layout allocated for the same job.
	owner     *BotNet
	rosterIdx int32
	// lastHotlistQuery rate-limits re-rallying when the bot is starved
	// of peer candidates.
	lastHotlistQuery time.Time
	// reRallyPending / rallyFailed drive the graceful-degradation path:
	// a failed C&C report queues one bounded-backoff re-rally instead of
	// dropping off the C&C. rallyFailed counts consecutive exhausted
	// reports and resets on the first success.
	reRallyPending bool
	rallyFailed    int

	// proofs caches solved challenges per target onion, consumed by the
	// retry request.
	proofs   map[string]proofEntry
	attempts map[string]int

	// AcceptVet, when set, gates inbound peering with a
	// challenge-response (internal/pow wires an Admission here). A
	// false result rejects the request and sends the returned
	// challenge/difficulty back to the requester.
	AcceptVet func(onion string, proofNonce uint64, proofBits uint8) (ok bool, challenge []byte, requiredBits uint8)

	// ProbeKey and OnProbe support SuperOnion connectivity probes
	// (Section VII-B): a directed flood whose inner seal opens under
	// ProbeKey is reported via OnProbe and still relayed onward, so
	// sibling virtual nodes behind this one see it too.
	ProbeKey []byte
	OnProbe  func(inner []byte)

	// probeSeal caches the expanded sealing session for ProbeKey,
	// rebuilt whenever the key is set or swapped.
	probeSeal    *botcrypto.SealKey
	probeSealSrc []byte
}

type proofEntry struct {
	nonce uint64
	bits  uint8
}

// NewBot creates a bot in the infection stage: it derives K_B and its
// first .onion identity, and starts its hidden service. seed
// individualizes the bot deterministically.
func NewBot(net *tor.Network, cfg BotConfig, masterSignPub ed25519.PublicKey,
	masterEncPub *ecdh.PublicKey, netKey []byte, ccOnion string, seed []byte) (*Bot, error) {
	b, err := NewBotOnProxy(tor.NewProxy(net), net, cfg, masterSignPub, masterEncPub, netKey, ccOnion, seed)
	if err != nil {
		return nil, err
	}
	b.ownProxy = true
	return b, nil
}

// NewBotOnProxy is NewBot with a caller-supplied proxy, so several
// virtual bots can share one physical host (the SuperOnion layout).
func NewBotOnProxy(proxy *tor.OnionProxy, net *tor.Network, cfg BotConfig, masterSignPub ed25519.PublicKey,
	masterEncPub *ecdh.PublicKey, netKey []byte, ccOnion string, seed []byte) (*Bot, error) {
	b := &Bot{
		cfg:           cfg.withDefaults(),
		net:           net,
		proxy:         proxy,
		rng:           net.RNG(),
		drbg:          botcrypto.NewDRBG(append([]byte("bot:"), seed...)),
		masterSignPub: masterSignPub,
		masterEncPub:  masterEncPub,
		netKey:        append([]byte(nil), netKey...),
		ccOnion:       ccOnion,
		peers:         make(map[string]*peerInfo),
		pending:       make(map[string]*tor.Conn),
		dialing:       make(map[string]struct{}),
		seen:          make(map[[16]byte]struct{}),
		proofs:        make(map[string]proofEntry),
		attempts:      make(map[string]int),
		stage:         StageInfection,
		alive:         true,
	}
	b.guard = botcrypto.NewReplayGuard(b.cfg.ReplayWindow)
	b.groups = botcrypto.NewGroupKeyring()
	if b.cfg.Retry.Enabled() {
		proxy.Retry = b.cfg.Retry
	}
	b.kb = b.drbg.Bytes(botcrypto.BotKeySize)
	b.netSeal = botcrypto.NewSealKey(b.netKey)
	b.kbSeal = botcrypto.NewSealKey(b.kb)
	if err := b.hostCurrentIdentity(); err != nil {
		return nil, err
	}
	b.startTimers()
	return b, nil
}

// newBotWithMaterial builds a bot from pool-pre-derived key material
// (see core.IdentityPool): the DRBG arrives positioned past the birth
// reads, K_B and the identity are already derived, the sealing sessions
// already expanded, and the rally report already sealed — so only the
// hosting handshake and timers remain. The result is byte-equivalent to
// NewBot with the same seed.
func newBotWithMaterial(proxy *tor.OnionProxy, net *tor.Network, cfg BotConfig,
	masterSignPub ed25519.PublicKey, masterEncPub *ecdh.PublicKey, ccOnion string,
	mat *botcrypto.BotMaterial) (*Bot, error) {
	b := &Bot{
		cfg:             cfg.withDefaults(),
		net:             net,
		proxy:           proxy,
		rng:             net.RNG(),
		drbg:            mat.DRBG,
		masterSignPub:   masterSignPub,
		masterEncPub:    masterEncPub,
		ccOnion:         ccOnion,
		kb:              mat.KB,
		netKey:          mat.NetKey,
		netSeal:         mat.NetSeal,
		kbSeal:          mat.KBSeal,
		pendingSealedKB: mat.SealedKB,
		peers:           make(map[string]*peerInfo),
		pending:         make(map[string]*tor.Conn),
		dialing:         make(map[string]struct{}),
		seen:            make(map[[16]byte]struct{}),
		proofs:          make(map[string]proofEntry),
		attempts:        make(map[string]int),
		stage:           StageInfection,
		alive:           true,
	}
	b.guard = botcrypto.NewReplayGuard(b.cfg.ReplayWindow)
	b.groups = botcrypto.NewGroupKeyring()
	if b.cfg.Retry.Enabled() {
		proxy.Retry = b.cfg.Retry
	}
	hs, err := b.proxy.Host(mat.Identity, b.onInboundConn)
	if err != nil {
		return nil, fmt.Errorf("core: host identity: %w", err)
	}
	b.identity = mat.Identity
	b.hs = hs
	b.hostedFor = mat.Period
	b.startTimers()
	return b, nil
}

// hostCurrentIdentity derives the identity for the current period and
// hosts it.
func (b *Bot) hostCurrentIdentity() error {
	ip := botcrypto.PeriodIndex(b.net.Now())
	id := botcrypto.DeriveIdentity(b.masterSignPub, b.kb, ip)
	hs, err := b.proxy.Host(id, b.onInboundConn)
	if err != nil {
		return fmt.Errorf("core: host identity: %w", err)
	}
	b.identity = id
	b.hs = hs
	b.hostedFor = ip
	return nil
}

// Tags a bot subscribes its batched timers under (see Bot.BatchTick).
const (
	botTickPing uint8 = iota
	botTickGossip
	botTickRotate
)

// startTimers installs the bot's recurring maintenance timers. They are
// batched: every bot infected at the same virtual instant with the same
// periods shares one wheel event per period (ping/repair beacons, NoN
// gossip, rotation), so a 10^5-bot population schedules a handful of
// events per period instead of 3·10^5 — with firing order identical to
// per-bot timers for contiguously created populations (see
// sim.EveryBatched's ordering contract). The subscriptions are
// closure-free (Ticker, tag) pairs: a tick streams flat subscriber
// arrays instead of chasing three captured-variable blocks per bot.
func (b *Bot) startTimers() {
	sched := b.net.Scheduler()
	sched.EveryBatchedTick(b.cfg.PingInterval, b, botTickPing)
	sched.EveryBatchedTick(b.cfg.NoNInterval, b, botTickGossip)
	if b.cfg.Rotation {
		sched.EveryBatchedTick(time.Hour, b, botTickRotate)
	}
}

// BatchTick dispatches one batched maintenance duty (sim.Ticker). It
// keeps exactly the old closures' shape: dead bots unsubscribe, live
// ones run the duty the tag names.
func (b *Bot) BatchTick(tag uint8) bool {
	if !b.alive {
		return false
	}
	switch tag {
	case botTickPing:
		b.pingTick()
	case botTickGossip:
		b.gossipNoN()
	case botTickRotate:
		b.maybeRotate()
	}
	return true
}

// Onion reports the bot's current address.
func (b *Bot) Onion() string { return b.identity.Onion() }

// KB exposes the bot's shared key (the botmaster holds it too).
func (b *Bot) KB() []byte { return append([]byte(nil), b.kb...) }

// Stage reports the life-cycle stage.
func (b *Bot) Stage() Stage { return b.stage }

// Alive reports whether the bot is running.
func (b *Bot) Alive() bool { return b.alive }

// Stats returns a copy of the counters.
func (b *Bot) Stats() BotStats { return b.stats }

// Executed returns the commands this bot ran.
func (b *Bot) Executed() []ExecRecord {
	return append([]ExecRecord(nil), b.executed...)
}

// Degree reports the current peer count.
func (b *Bot) Degree() int { return len(b.peers) }

// PeerOnions lists current peer addresses, sorted.
func (b *Bot) PeerOnions() []string {
	out := make([]string, 0, len(b.peers))
	for o := range b.peers {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// NeighborsOf reports the bot's NoN knowledge for one peer.
func (b *Bot) NeighborsOf(peerOnion string) []string {
	p, ok := b.peers[peerOnion]
	if !ok {
		return nil
	}
	return append([]string(nil), p.neighbors...)
}

// Takedown models the node being cleaned up or seized: the hidden
// service stops, every circuit dies, timers unwind. A bot sharing its
// proxy with siblings (SuperOnion virtual node) tears down only its own
// service and connections.
func (b *Bot) Takedown() {
	if !b.alive {
		return
	}
	b.alive = false
	if b.owner != nil {
		b.owner.alive.remove(b.rosterIdx)
	}
	if b.ownProxy {
		b.proxy.Shutdown()
	} else {
		b.hs.Stop()
		for _, p := range b.peers {
			p.conn.Close()
		}
		for _, c := range b.pending {
			c.Close()
		}
	}
	b.peers = make(map[string]*peerInfo)
	b.pending = make(map[string]*tor.Conn)
	b.dialing = make(map[string]struct{})
}

// Rally performs the rally stage: report K_B to the C&C and request
// peering with the bootstrap list (Section IV-B). Peering completes
// asynchronously as PEER_ACK messages arrive. An unreachable C&C no
// longer aborts the rally: the bot still peers with its bootstrap
// candidates (NoN membership survives) and queues a bounded-backoff
// re-rally, so infrastructure faults degrade the C&C link gracefully
// instead of dropping the bot off the botnet.
func (b *Bot) Rally(bootstrap []string) error {
	b.stage = StageRally
	if err := b.reportToCC(); err != nil {
		return err
	}
	for _, onion := range bootstrap {
		b.requestPeering(onion)
	}
	b.stage = StageWaiting
	return nil
}

// reRally backoff bounds: a failed C&C report re-queues with this base
// delay doubled per consecutive failure (capped), giving up after
// maxReRallyAttempts — after which the pingTick hotlist fallback is the
// remaining pull-based path back to the C&C.
const (
	maxReRallyAttempts = 8
	reRallyBase        = 10 * time.Minute
	reRallyMax         = 2 * time.Hour
)

// reportToCC dials the hardcoded C&C address and delivers
// {current onion, {K_B}_PK_CC}. A hotlist-enabled C&C answers with
// bootstrap candidates, which the bot peers with. The dial runs under
// the proxy's retry policy; exhausting the budget counts a rally
// failure and queues a re-rally rather than erroring. Only seal
// construction can fail synchronously.
func (b *Bot) reportToCC() error {
	if b.ccOnion == "" {
		return nil // experiment without a C&C
	}
	sealedKB := b.pendingSealedKB
	if sealedKB != nil {
		b.pendingSealedKB = nil // the pool pre-sealed the first report
	} else {
		var err error
		sealedKB, err = botcrypto.SealToPublic(b.masterEncPub, b.kb, b.drbg)
		if err != nil {
			return err
		}
	}
	b.proxy.DialAsync(b.ccOnion, func(conn *tor.Conn, err error) {
		if err != nil {
			b.stats.RallyFailures++
			b.queueReRally()
			return
		}
		if !b.alive {
			conn.Close()
			return
		}
		b.rallyFailed = 0
		conn.SetHandler(func(msg []byte) { b.onCCReply(msg) })
		rep := &Report{Onion: b.Onion(), SealedKB: sealedKB}
		env := &Envelope{Type: MsgReport, MsgID: b.newMsgID(), Payload: rep.Encode()}
		_ = b.sendEnvelope(conn, env)
	})
	return nil
}

// queueReRally schedules one retry of the C&C report with exponential
// backoff on the virtual clock. At most one re-rally is pending at a
// time, and the bot gives up after maxReRallyAttempts consecutive
// failures.
func (b *Bot) queueReRally() {
	if b.reRallyPending || !b.alive || b.rallyFailed >= maxReRallyAttempts {
		return
	}
	b.rallyFailed++
	delay := reRallyBase << (b.rallyFailed - 1)
	if delay > reRallyMax {
		delay = reRallyMax
	}
	b.reRallyPending = true
	b.net.Scheduler().After(delay, func() {
		b.reRallyPending = false
		if !b.alive {
			return
		}
		b.stats.RallyRetries++
		_ = b.reportToCC()
	})
}

// onCCReply consumes the C&C's rally answer: a hotlist of registered
// bot addresses to bootstrap from.
func (b *Bot) onCCReply(raw []byte) {
	if !b.alive {
		return
	}
	plain, err := b.netSeal.Open(raw)
	if err != nil {
		return
	}
	env, err := DecodeEnvelope(plain)
	if err != nil || env.Type != MsgNoNUpdate {
		return
	}
	up, err := DecodeNoNUpdate(env.Payload)
	if err != nil {
		return
	}
	for _, cand := range trimSelf(up.Neighbors, b.Onion()) {
		if len(b.peers)+len(b.pending) >= b.cfg.DMax {
			break
		}
		b.requestPeering(cand)
	}
}

// requestPeering dials a candidate and sends PEER_REQ with the bot's
// truthfully declared degree. The dial runs under the proxy's retry
// policy; with retries enabled it may resolve after backoff, so the
// candidate is parked in the dialing set to stop overlapping
// acquisition rounds from double-dialing it.
func (b *Bot) requestPeering(onion string) {
	if onion == "" || onion == b.Onion() {
		return
	}
	if _, dup := b.peers[onion]; dup {
		return
	}
	if _, dup := b.pending[onion]; dup {
		return
	}
	if _, dup := b.dialing[onion]; dup {
		return
	}
	b.dialing[onion] = struct{}{}
	b.proxy.DialAsync(onion, func(conn *tor.Conn, err error) {
		delete(b.dialing, onion)
		if err != nil {
			return // candidate unreachable (taken down or rotated away)
		}
		if !b.alive {
			conn.Close()
			return
		}
		// A retried dial resolves later; the candidate may have peered
		// with us (or a parallel round) in the meantime.
		if _, dup := b.peers[onion]; dup {
			conn.Close()
			return
		}
		if _, dup := b.pending[onion]; dup {
			conn.Close()
			return
		}
		b.pending[onion] = conn
		conn.SetHandler(func(msg []byte) { b.onMessage(conn, msg) })
		req := &PeerReq{Onion: b.Onion(), Degree: b.Degree()}
		if pr, ok := b.proofs[onion]; ok {
			req.ProofNonce, req.ProofBits = pr.nonce, pr.bits
			delete(b.proofs, onion) // challenges are one-shot
		}
		env := &Envelope{Type: MsgPeerReq, MsgID: b.newMsgID(), Payload: req.Encode()}
		if err := b.sendEnvelope(conn, env); err != nil {
			delete(b.pending, onion)
		}
	})
}

// probeSealKey returns the cached sealing session for ProbeKey,
// rebuilding it when the key is first set or swapped by the SuperOnion
// host.
func (b *Bot) probeSealKey() *botcrypto.SealKey {
	if b.probeSeal == nil || !bytes.Equal(b.probeSealSrc, b.ProbeKey) {
		b.probeSeal = botcrypto.NewSealKey(b.ProbeKey)
		b.probeSealSrc = append([]byte(nil), b.ProbeKey...)
	}
	return b.probeSeal
}

// onInboundConn wires up an anonymous inbound connection.
func (b *Bot) onInboundConn(conn *tor.Conn) {
	conn.SetHandler(func(msg []byte) { b.onMessage(conn, msg) })
}

// sendEnvelope seals and transmits an envelope on a connection. The
// seal goes into a per-bot scratch cell: the transport copies payload
// bytes into wire cells immediately, so nothing retains the buffer.
func (b *Bot) sendEnvelope(conn *tor.Conn, env *Envelope) error {
	if err := b.netSeal.SealSizedInto(b.sealBuf[:], env.Encode(), b.drbg); err != nil {
		return err
	}
	return conn.Send(b.sealBuf[:])
}

func (b *Bot) newMsgID() [16]byte {
	var id [16]byte
	copy(id[:], b.drbg.Bytes(16))
	return id
}

// onMessage handles one sealed wire message.
func (b *Bot) onMessage(conn *tor.Conn, raw []byte) {
	if !b.alive {
		return
	}
	plain, err := b.netSeal.Open(raw)
	if err != nil {
		// Not a network envelope; try a direct command sealed to K_B.
		if inner, derr := b.kbSeal.Open(raw); derr == nil {
			b.handleDirectedPlain(inner)
		}
		return
	}
	env, err := DecodeEnvelope(plain)
	if err != nil {
		return
	}
	switch env.Type {
	case MsgPeerReq:
		b.handlePeerReq(conn, env)
	case MsgPeerAck:
		b.handlePeerAck(conn, env)
	case MsgNoNUpdate:
		b.handleNoNUpdate(env)
	case MsgAddrChange:
		b.handleAddrChange(conn, env)
	case MsgPing:
		pong := &Envelope{Type: MsgPong, MsgID: b.newMsgID()}
		_ = b.sendEnvelope(conn, pong)
	case MsgPong:
		// Liveness is tracked via conn state; nothing to do.
	case MsgBroadcast:
		b.handleBroadcast(env)
	case MsgDirected:
		b.handleDirected(env)
	case MsgGroupcast:
		b.handleGroupcast(env)
	case MsgReport:
		// Only the C&C consumes reports; bots ignore them.
	}
}

// handlePeerReq applies the acceptance rule: accept under DMax;
// otherwise displace the highest-declared-degree peer when the
// requester declares less. This single rule realizes DDSR pruning at
// the protocol level — and is precisely what SOAP clones exploit by
// declaring tiny degrees.
func (b *Bot) handlePeerReq(conn *tor.Conn, env *Envelope) {
	req, err := DecodePeerReq(env.Payload)
	if err != nil || req.Onion == b.Onion() {
		return
	}
	if b.AcceptVet != nil {
		ok, challenge, required := b.AcceptVet(req.Onion, req.ProofNonce, req.ProofBits)
		if !ok {
			b.stats.PeersRejected++
			ack := &PeerAck{
				Accepted:     false,
				Onion:        b.Onion(),
				Degree:       b.Degree(),
				Neighbors:    b.PeerOnions(),
				Challenge:    challenge,
				RequiredBits: required,
			}
			_ = b.sendEnvelope(conn, &Envelope{Type: MsgPeerAck, MsgID: b.newMsgID(), Payload: ack.Encode()})
			return
		}
	}
	accepted := false
	if existing, dup := b.peers[req.Onion]; dup {
		// Refresh: replace the connection, keep the entry.
		existing.conn = conn
		existing.degree = req.Degree
		accepted = true
	} else if len(b.peers) < b.cfg.DMax {
		accepted = true
	} else if victim := b.highestDegreePeer(); victim != "" &&
		req.Degree < b.peers[victim].degree {
		b.forgetPeer(victim)
		b.stats.PeersPruned++
		accepted = true
	}

	ack := &PeerAck{
		Accepted:  accepted,
		Onion:     b.Onion(),
		Degree:    b.Degree(),
		Neighbors: b.PeerOnions(),
	}
	if accepted {
		if _, dup := b.peers[req.Onion]; !dup {
			b.peers[req.Onion] = &peerInfo{onion: req.Onion, conn: conn, degree: req.Degree}
			b.stats.PeersAccepted++
		}
	} else {
		b.stats.PeersRejected++
	}
	_ = b.sendEnvelope(conn, &Envelope{Type: MsgPeerAck, MsgID: b.newMsgID(), Payload: ack.Encode()})
}

// handlePeerAck resolves a pending outbound peering request.
func (b *Bot) handlePeerAck(conn *tor.Conn, env *Envelope) {
	ack, err := DecodePeerAck(env.Payload)
	if err != nil {
		return
	}
	var dialed string
	for onion, c := range b.pending {
		if c == conn {
			dialed = onion
			break
		}
	}
	if dialed == "" {
		return // unsolicited ack
	}
	delete(b.pending, dialed)
	if !ack.Accepted {
		conn.Close()
		b.stats.PeersRejected++
		// A PoW-gated rejection carries a challenge: solve it (within
		// our work budget) and retry with the proof.
		if ack.Challenge != nil && ack.RequiredBits > 0 &&
			ack.RequiredBits <= b.cfg.MaxSolveBits && b.attempts[dialed] < 3 {
			b.attempts[dialed]++
			nonce, hashes := pow.Solve(ack.Challenge, ack.RequiredBits)
			b.stats.HashesSpent += hashes
			b.proofs[dialed] = proofEntry{nonce: nonce, bits: ack.RequiredBits}
			b.requestPeering(dialed)
			return
		}
		// Even a rejection teaches us the responder's neighbor list —
		// this is the hotlist lookup (Section IV-B): walk the returned
		// candidates while underpopulated.
		for _, cand := range trimSelf(ack.Neighbors, b.Onion()) {
			if len(b.peers)+len(b.pending) >= b.cfg.DMin {
				break
			}
			b.requestPeering(cand)
		}
		return
	}
	delete(b.attempts, dialed)
	b.peers[ack.Onion] = &peerInfo{
		onion:     ack.Onion,
		conn:      conn,
		degree:    ack.Degree,
		neighbors: trimSelf(ack.Neighbors, b.Onion()),
	}
	b.stats.PeersAccepted++
	// Over-acceptance can push us past DMax (simultaneous joins);
	// prune back, preferring to drop the highest-degree peer.
	for len(b.peers) > b.cfg.DMax {
		victim := b.highestDegreePeer()
		if victim == "" {
			break
		}
		b.forgetPeer(victim)
		b.stats.PeersPruned++
	}
}

// handleNoNUpdate refreshes a peer's neighbor list.
func (b *Bot) handleNoNUpdate(env *Envelope) {
	up, err := DecodeNoNUpdate(env.Payload)
	if err != nil {
		return
	}
	p, ok := b.peers[up.Onion]
	if !ok {
		return
	}
	p.degree = up.Degree
	p.neighbors = trimSelf(up.Neighbors, b.Onion())
}

// handleAddrChange re-keys a peer entry after its rotation.
func (b *Bot) handleAddrChange(conn *tor.Conn, env *Envelope) {
	ch, err := DecodeAddrChange(env.Payload)
	if err != nil {
		return
	}
	p, ok := b.peers[ch.OldOnion]
	if !ok {
		return
	}
	delete(b.peers, ch.OldOnion)
	p.onion = ch.NewOnion
	p.conn = conn // the announcing conn stays live across rotation
	b.peers[ch.NewOnion] = p
}

// handleBroadcast authenticates, executes, and re-floods a broadcast
// command.
func (b *Bot) handleBroadcast(env *Envelope) {
	if _, dup := b.seen[env.MsgID]; dup {
		return
	}
	b.markSeen(env.MsgID)
	cmd, err := DecodeCommand(env.Payload)
	if err != nil {
		return
	}
	if err := cmd.Authorize(b.masterSignPub, b.net.Now(), b.guard); err != nil {
		return // forged, stale or replayed: drop, do not relay
	}
	b.execute(cmd)
	if env.TTL > 0 {
		b.relay(&Envelope{Type: MsgBroadcast, MsgID: env.MsgID, TTL: env.TTL - 1, Payload: env.Payload})
	}
}

// handleDirected tries the inner seal with the bot's own K_B; on
// failure the message is for someone else and is relayed blindly. A
// SuperOnion probe key, when installed, is also tried — probes are
// reported and still relayed so sibling virtual nodes see them.
func (b *Bot) handleDirected(env *Envelope) {
	if _, dup := b.seen[env.MsgID]; dup {
		return
	}
	b.markSeen(env.MsgID)
	if inner, err := b.kbSeal.OpenSized(env.Payload, DirectedSealSize); err == nil {
		b.handleDirectedPlain(inner)
		return
	}
	if b.ProbeKey != nil && b.OnProbe != nil {
		if inner, err := b.probeSealKey().OpenSized(env.Payload, DirectedSealSize); err == nil {
			b.OnProbe(inner)
			// Fall through: the probe must keep flooding.
		}
	}
	if env.TTL > 0 {
		b.relay(&Envelope{Type: MsgDirected, MsgID: env.MsgID, TTL: env.TTL - 1, Payload: env.Payload})
	}
}

// handleDirectedPlain processes a decrypted directed command.
func (b *Bot) handleDirectedPlain(plain []byte) {
	cmd, err := DecodeCommand(plain)
	if err != nil {
		return
	}
	if err := cmd.Authorize(b.masterSignPub, b.net.Now(), b.guard); err != nil {
		return
	}
	b.execute(cmd)
}

// execute runs an authorized command. Maintenance commands act on the
// bot itself; anything else is recorded as an attack-stage execution.
func (b *Bot) execute(cmd *Command) {
	b.stage = StageExecution
	b.executed = append(b.executed, ExecRecord{
		Name:   cmd.Name,
		Args:   append([]byte(nil), cmd.Args...),
		At:     b.net.Now(),
		Rented: cmd.Rental != nil,
	})
	b.stats.CommandsExecuted++
	switch cmd.Name {
	case "rotate":
		b.rotate()
	case "drop-peer":
		b.forgetPeer(string(cmd.Args))
	case "join-group":
		b.joinGroup(cmd.Args)
	}
	b.stage = StageWaiting
}

// relay forwards an envelope to peers: all of them under full flooding,
// or a random GossipFanout-sized subset under gossip.
func (b *Bot) relay(env *Envelope) {
	targets := b.PeerOnions()
	if b.cfg.GossipFanout > 0 && b.cfg.GossipFanout < len(targets) {
		targets = sim.Sample(b.rng, targets, b.cfg.GossipFanout)
	}
	for _, onion := range targets {
		p := b.peers[onion]
		if p.conn.Closed() {
			continue
		}
		if err := b.sendEnvelope(p.conn, env); err == nil {
			b.stats.MessagesRelayed++
		}
	}
}

// Inject introduces an envelope into the network at this bot, as the
// C&C does when it pushes a broadcast through an arbitrary bot.
func (b *Bot) Inject(env *Envelope) {
	switch env.Type {
	case MsgBroadcast:
		b.handleBroadcast(env)
	case MsgDirected:
		b.handleDirected(env)
	}
}

// pingTick probes peers and repairs around dead ones.
func (b *Bot) pingTick() {
	for _, onion := range b.PeerOnions() {
		p := b.peers[onion]
		dead := p.conn.Closed()
		if !dead {
			env := &Envelope{Type: MsgPing, MsgID: b.newMsgID()}
			dead = b.sendEnvelope(p.conn, env) != nil
		}
		if dead {
			b.repairAround(p)
		}
	}
	// DMin floor: acquire peers from NoN knowledge when underpopulated.
	if len(b.peers) < b.cfg.DMin {
		cands := b.nonCandidates()
		for _, cand := range cands {
			if len(b.peers)+len(b.pending) >= b.cfg.DMin {
				break
			}
			b.requestPeering(cand)
		}
		// Starved: no NoN knowledge to draw on (e.g. a pendant pair
		// whose other edges were pruned away). Fall back to the
		// pull-based hotlist: re-rally with the C&C, whose reply
		// carries fresh candidates (Section IV-B webcache lookup).
		if len(cands) == 0 && len(b.pending) == 0 &&
			b.net.Now().Sub(b.lastHotlistQuery) > 10*b.cfg.PingInterval {
			b.lastHotlistQuery = b.net.Now()
			_ = b.reportToCC()
		}
	}
}

// repairAround implements the DDSR repair step at the protocol level:
// when a peer dies, connect to its former neighbors (known via NoN).
func (b *Bot) repairAround(dead *peerInfo) {
	delete(b.peers, dead.onion)
	b.stats.RepairsStarted++
	for _, cand := range dead.neighbors {
		if cand == b.Onion() {
			continue
		}
		if _, dup := b.peers[cand]; dup {
			continue
		}
		b.requestPeering(cand)
	}
}

// nonCandidates lists neighbors-of-neighbors not already peered, sorted
// for determinism.
func (b *Bot) nonCandidates() []string {
	set := map[string]struct{}{}
	for _, onion := range b.PeerOnions() {
		for _, nn := range b.peers[onion].neighbors {
			if nn == b.Onion() {
				continue
			}
			if _, dup := b.peers[nn]; dup {
				continue
			}
			set[nn] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// gossipNoN sends the current neighbor list to every peer.
func (b *Bot) gossipNoN() {
	up := &NoNUpdate{Onion: b.Onion(), Degree: b.Degree(), Neighbors: b.PeerOnions()}
	env := &Envelope{Type: MsgNoNUpdate, MsgID: b.newMsgID(), Payload: up.Encode()}
	for _, onion := range b.PeerOnions() {
		p := b.peers[onion]
		if !p.conn.Closed() {
			_ = b.sendEnvelope(p.conn, env)
		}
	}
}

// maybeRotate rotates the bot's address when the period has advanced.
// The derivation is a pure function of (K_B, period), so comparing the
// period the current identity was hosted for is equivalent to deriving
// the candidate identity and comparing addresses — without paying an
// Ed25519 key generation per tick.
func (b *Bot) maybeRotate() {
	if botcrypto.PeriodIndex(b.net.Now()) != b.hostedFor {
		b.rotate()
	}
}

// rotate derives and hosts the identity for the current period,
// announces the change to peers, and stops the old service
// (Section IV-C "Forgetting" plus Section IV-D reachability).
func (b *Bot) rotate() {
	old := b.Onion()
	oldHS := b.hs
	if err := b.hostCurrentIdentity(); err != nil {
		return // keep the old identity alive rather than going dark
	}
	if b.Onion() == old {
		return
	}
	b.stats.Rotations++
	ch := &AddrChange{OldOnion: old, NewOnion: b.Onion()}
	env := &Envelope{Type: MsgAddrChange, MsgID: b.newMsgID(), Payload: ch.Encode()}
	for _, onion := range b.PeerOnions() {
		p := b.peers[onion]
		if !p.conn.Closed() {
			_ = b.sendEnvelope(p.conn, env)
		}
	}
	oldHS.Stop()
}

// markSeen records a flooded message id, bounding the dedup cache.
func (b *Bot) markSeen(id [16]byte) {
	if len(b.seen) > 8192 {
		// Crude but adequate for simulation: drop history; replays of
		// very old messages are caught by the command replay guard.
		b.seen = make(map[[16]byte]struct{})
	}
	b.seen[id] = struct{}{}
}

// forgetPeer drops a peer entry and closes our side of the connection.
func (b *Bot) forgetPeer(onion string) {
	p, ok := b.peers[onion]
	if !ok {
		return
	}
	delete(b.peers, onion)
	p.conn.Close()
}

// highestDegreePeer returns the peer with the largest known degree
// (random tie-break), or "" when the bot has no peers.
func (b *Bot) highestDegreePeer() string {
	best := ""
	bestDeg := -1
	count := 0
	for _, onion := range b.PeerOnions() {
		d := b.peers[onion].degree
		switch {
		case d > bestDeg:
			best, bestDeg, count = onion, d, 1
		case d == bestDeg:
			count++
			if b.rng.Intn(count) == 0 {
				best = onion
			}
		}
	}
	return best
}

func trimSelf(onions []string, self string) []string {
	out := make([]string, 0, len(onions))
	for _, o := range onions {
		if o != self {
			out = append(out, o)
		}
	}
	return out
}
