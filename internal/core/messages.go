package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType tags a protocol message.
type MsgType byte

// Protocol message types.
const (
	MsgPeerReq MsgType = iota + 1
	MsgPeerAck
	MsgNoNUpdate
	MsgAddrChange
	MsgPing
	MsgPong
	MsgBroadcast
	MsgDirected
	MsgReport
	MsgGroupcast
	MsgPoll
)

// String names the message type.
func (m MsgType) String() string {
	switch m {
	case MsgPeerReq:
		return "PEER_REQ"
	case MsgPeerAck:
		return "PEER_ACK"
	case MsgNoNUpdate:
		return "NON_UPDATE"
	case MsgAddrChange:
		return "ADDR_CHANGE"
	case MsgPing:
		return "PING"
	case MsgPong:
		return "PONG"
	case MsgBroadcast:
		return "BROADCAST"
	case MsgDirected:
		return "DIRECTED"
	case MsgReport:
		return "REPORT"
	case MsgGroupcast:
		return "GROUPCAST"
	case MsgPoll:
		return "POLL"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(m))
	}
}

// ErrBadMessage reports a malformed protocol message.
var ErrBadMessage = errors.New("core: malformed message")

// Envelope is the flooding-aware frame around every payload. Inside the
// network it always travels sealed (fixed size, uniform), so relaying
// bots cannot see any of these fields for traffic they merely forward.
type Envelope struct {
	Type MsgType
	// MsgID deduplicates flooded messages.
	MsgID [16]byte
	// TTL bounds flooding depth; direct (non-flooded) messages use 0.
	TTL uint8
	// Payload is the type-specific encoding.
	Payload []byte
}

// Encode renders the envelope.
func (e *Envelope) Encode() []byte {
	out := make([]byte, 0, 20+len(e.Payload))
	out = append(out, byte(e.Type))
	out = append(out, e.MsgID[:]...)
	out = append(out, e.TTL)
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(e.Payload)))
	out = append(out, n[:]...)
	out = append(out, e.Payload...)
	return out
}

// DecodeEnvelope parses an envelope.
func DecodeEnvelope(raw []byte) (*Envelope, error) {
	if len(raw) < 20 {
		return nil, fmt.Errorf("%w: envelope %d bytes", ErrBadMessage, len(raw))
	}
	e := &Envelope{Type: MsgType(raw[0]), TTL: raw[17]}
	copy(e.MsgID[:], raw[1:17])
	n := int(binary.BigEndian.Uint16(raw[18:20]))
	if len(raw) < 20+n {
		return nil, fmt.Errorf("%w: payload declared %d, have %d", ErrBadMessage, n, len(raw)-20)
	}
	e.Payload = append([]byte(nil), raw[20:20+n]...)
	return e, nil
}

// --- small binary helpers -------------------------------------------------

type writer struct{ buf []byte }

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }
func (w *writer) u16(v int) {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], uint16(v))
	w.buf = append(w.buf, b[:]...)
}
func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}
func (w *writer) bytes(v []byte) { w.u16(len(v)); w.buf = append(w.buf, v...) }
func (w *writer) str(v string)   { w.bytes([]byte(v)) }
func (w *writer) raw(v []byte)   { w.buf = append(w.buf, v...) }

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrBadMessage
	}
}

func (r *reader) u8() byte {
	if r.err != nil || len(r.buf) < 1 {
		r.fail()
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) u16() int {
	if r.err != nil || len(r.buf) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[:2])
	r.buf = r.buf[2:]
	return int(v)
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[:8])
	r.buf = r.buf[8:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.u16()
	if r.err != nil || len(r.buf) < n {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) raw(n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return v
}

// --- payloads --------------------------------------------------------------

// PeerReq asks the receiver to accept the sender as a peer. Degree is
// self-declared — the trust SOAP exploits. ProofNonce/ProofBits carry
// an optional hashcash proof when the responder demanded one
// (Section VII-A hardening).
type PeerReq struct {
	Onion      string
	Degree     int
	ProofNonce uint64
	ProofBits  uint8
}

// Encode renders the payload.
func (p *PeerReq) Encode() []byte {
	var w writer
	w.str(p.Onion)
	w.u16(p.Degree)
	w.u64(p.ProofNonce)
	w.u8(p.ProofBits)
	return w.buf
}

// DecodePeerReq parses a PeerReq payload.
func DecodePeerReq(raw []byte) (*PeerReq, error) {
	r := reader{buf: raw}
	p := &PeerReq{Onion: r.str(), Degree: r.u16()}
	p.ProofNonce = r.u64()
	p.ProofBits = r.u8()
	if r.err != nil {
		return nil, fmt.Errorf("%w: PeerReq", ErrBadMessage)
	}
	return p, nil
}

// PeerAck answers a PeerReq, carrying the responder's own address,
// degree, and neighbor list (the NoN exchange). A rejection may carry a
// proof-of-work challenge the requester must solve to retry.
type PeerAck struct {
	Accepted  bool
	Onion     string
	Degree    int
	Neighbors []string
	// Challenge and RequiredBits are set on PoW-gated rejections.
	Challenge    []byte
	RequiredBits uint8
}

// Encode renders the payload.
func (p *PeerAck) Encode() []byte {
	var w writer
	if p.Accepted {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.str(p.Onion)
	w.u16(p.Degree)
	w.u16(len(p.Neighbors))
	for _, n := range p.Neighbors {
		w.str(n)
	}
	w.bytes(p.Challenge)
	w.u8(p.RequiredBits)
	return w.buf
}

// DecodePeerAck parses a PeerAck payload.
func DecodePeerAck(raw []byte) (*PeerAck, error) {
	r := reader{buf: raw}
	p := &PeerAck{Accepted: r.u8() == 1, Onion: r.str(), Degree: r.u16()}
	n := r.u16()
	if r.err != nil || n > 1024 {
		return nil, fmt.Errorf("%w: PeerAck", ErrBadMessage)
	}
	for i := 0; i < n; i++ {
		p.Neighbors = append(p.Neighbors, r.str())
	}
	p.Challenge = r.bytes()
	if len(p.Challenge) == 0 {
		p.Challenge = nil
	}
	p.RequiredBits = r.u8()
	if r.err != nil {
		return nil, fmt.Errorf("%w: PeerAck neighbors", ErrBadMessage)
	}
	return p, nil
}

// NoNUpdate refreshes the sender's neighbor list at a peer.
type NoNUpdate struct {
	Onion     string
	Degree    int
	Neighbors []string
}

// Encode renders the payload.
func (p *NoNUpdate) Encode() []byte {
	var w writer
	w.str(p.Onion)
	w.u16(p.Degree)
	w.u16(len(p.Neighbors))
	for _, n := range p.Neighbors {
		w.str(n)
	}
	return w.buf
}

// DecodeNoNUpdate parses a NoNUpdate payload.
func DecodeNoNUpdate(raw []byte) (*NoNUpdate, error) {
	r := reader{buf: raw}
	p := &NoNUpdate{Onion: r.str(), Degree: r.u16()}
	n := r.u16()
	if r.err != nil || n > 1024 {
		return nil, fmt.Errorf("%w: NoNUpdate", ErrBadMessage)
	}
	for i := 0; i < n; i++ {
		p.Neighbors = append(p.Neighbors, r.str())
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: NoNUpdate neighbors", ErrBadMessage)
	}
	return p, nil
}

// AddrChange announces the sender's periodic .onion rotation
// (Section IV-C "Forgetting").
type AddrChange struct {
	OldOnion string
	NewOnion string
}

// Encode renders the payload.
func (p *AddrChange) Encode() []byte {
	var w writer
	w.str(p.OldOnion)
	w.str(p.NewOnion)
	return w.buf
}

// DecodeAddrChange parses an AddrChange payload.
func DecodeAddrChange(raw []byte) (*AddrChange, error) {
	r := reader{buf: raw}
	p := &AddrChange{OldOnion: r.str(), NewOnion: r.str()}
	if r.err != nil {
		return nil, fmt.Errorf("%w: AddrChange", ErrBadMessage)
	}
	return p, nil
}

// Report is the rally-stage bot-to-C&C message: the bot's current
// address and its key K_B sealed to the master's public encryption key.
type Report struct {
	Onion    string
	SealedKB []byte
}

// Encode renders the payload.
func (p *Report) Encode() []byte {
	var w writer
	w.str(p.Onion)
	w.bytes(p.SealedKB)
	return w.buf
}

// DecodeReport parses a Report payload.
func DecodeReport(raw []byte) (*Report, error) {
	r := reader{buf: raw}
	p := &Report{Onion: r.str(), SealedKB: r.bytes()}
	if r.err != nil {
		return nil, fmt.Errorf("%w: Report", ErrBadMessage)
	}
	return p, nil
}
