package core

import (
	"testing"
	"time"
)

// benchSettle covers one join's wake: the rally report reaching the
// C&C (2 joined 3-hop circuits at the default 50ms hop latency) and the
// registration work it triggers there.
const benchSettle = 400 * time.Millisecond

// newInfectBenchNet builds the shared benchmark substrate: a settled
// 24-bot population on 40 relays. The maintenance timers are slowed so
// the measured window contains the join's own work, not the standing
// population's pings; the hotlist is off for the same reason — peer
// acquisition costs the two modes identical time and belongs to the
// bootstrap stage, while this pair isolates the infection event (birth,
// rally, registration) whose keygen the pool amortizes.
func newInfectBenchNet(b *testing.B, seed uint64, poolBatch int) *BotNet {
	b.Helper()
	bn, err := NewBotNet(seed, 40, BotConfig{
		DMin: 2, DMax: 6,
		PingInterval: time.Hour, NoNInterval: 4 * time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	bn.SetIdentityPool(poolBatch)
	if err := bn.Grow(24, nil); err != nil {
		b.Fatal(err)
	}
	bn.Run(5 * time.Minute)
	return bn
}

// infectOnce performs one complete churn join: the infection itself
// plus the settle window in which the report reaches the C&C and is
// registered.
func infectOnce(b *testing.B, bn *BotNet) {
	b.Helper()
	if _, err := bn.InfectFrom(OutOfBand{}, nil); err != nil {
		b.Fatal(err)
	}
	bn.Run(benchSettle)
}

// BenchmarkInfectFromUnpooled is the A side: every join pays Ed25519
// identity keygen, the intro-binding signature and its verification,
// and the full X25519 rally exchange (seal and master-side open)
// inline.
func BenchmarkInfectFromUnpooled(b *testing.B) {
	bn := newInfectBenchNet(b, 21, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infectOnce(b, bn)
	}
}

// BenchmarkInfectFromPooled is the B side: key material comes from a
// pool warmed ahead of the measured joins, so each join pays only the
// handshake — hosting circuits, one descriptor signature, the C&C
// dial. Warmup cost is deliberately outside the timed region: that the
// keygen can be moved out of the join event is the point of the pool
// (it runs in idle stretches of a campaign), and this benchmark
// measures the join-time cost a churn event actually pays.
func BenchmarkInfectFromPooled(b *testing.B) {
	bn := newInfectBenchNet(b, 21, 256)
	bn.WarmIdentities(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infectOnce(b, bn)
	}
}

// TestPooledInfectionSpeedup is the interleaved A/B measurement: twin
// botnets, alternating batches of joins, pooled vs unpooled, on one
// clock-source machine — the same protocol PR 1 and PR 3 used for
// their headline numbers. It asserts a conservative floor and logs the
// measured ratio (CHANGES.md records the full number).
func TestPooledInfectionSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short")
	}
	const batchJoins, batches = 25, 4

	benchCfg := BotConfig{
		DMin: 2, DMax: 6,
		PingInterval: time.Hour, NoNInterval: 4 * time.Hour,
	}
	pooled, err := NewBotNet(21, 40, benchCfg)
	if err != nil {
		t.Fatal(err)
	}
	unpooled, err := NewBotNet(21, 40, benchCfg)
	if err != nil {
		t.Fatal(err)
	}
	unpooled.SetIdentityPool(0)
	for _, bn := range []*BotNet{pooled, unpooled} {
		if err := bn.Grow(24, nil); err != nil {
			t.Fatal(err)
		}
		bn.Run(5 * time.Minute)
	}
	pooled.WarmIdentities(batchJoins * batches)

	join := func(bn *BotNet) {
		if _, err := bn.InfectFrom(OutOfBand{}, nil); err != nil {
			t.Fatal(err)
		}
		bn.Run(benchSettle)
	}
	var tPooled, tUnpooled time.Duration
	for batch := 0; batch < batches; batch++ {
		start := time.Now()
		for i := 0; i < batchJoins; i++ {
			join(pooled)
		}
		tPooled += time.Since(start)
		start = time.Now()
		for i := 0; i < batchJoins; i++ {
			join(unpooled)
		}
		tUnpooled += time.Since(start)
	}
	ratio := float64(tUnpooled) / float64(tPooled)
	t.Logf("interleaved A/B over %d joins each: unpooled %v, pooled %v, speedup %.2fx",
		batchJoins*batches, tUnpooled, tPooled, ratio)
	// In-tree the ratio is ~3.3x, because this PR's shared join-path
	// optimizations (sign-time verify memos, replica-unified descriptor
	// signing, O(count) relay picks, pipelined first-cell CTR) speed the
	// unpooled baseline up too. Against the pre-PR tree — the A/B
	// CHANGES.md reports, measured by interleaving this benchmark with
	// the identical one run in a worktree of the previous commit — the
	// pooled join is >= 5x faster. 2.5x is the in-tree regression floor,
	// chosen to stay robust on a noisy CI host.
	if ratio < 2.5 {
		t.Fatalf("pooled infection only %.2fx faster than unpooled, want >= 2.5x", ratio)
	}
	if st := pooled.IdentityPoolStats(); st.Served < batchJoins*batches {
		t.Fatalf("pool served %d joins, want >= %d", st.Served, batchJoins*batches)
	}
}
