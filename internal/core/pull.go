package core

import (
	"time"

	"onionbots/internal/botcrypto"
)

// Section IV-A: "command transmissions can be pull-based (bots make
// periodic queries to the C&C) or push-based...". This file implements
// the pull side: the botmaster queues commands per bot (or for
// everyone), and bots that poll collect what is pending. The paper's
// trade-off — aggressive polling speeds propagation but makes the bots
// chattier — falls out of the PollInterval configuration.

// QueueFor enqueues a command for one registered bot, delivered the
// next time that bot polls.
func (m *Botmaster) QueueFor(rec *BotRecord, cmd *Command) {
	m.queues[rec.ID()] = append(m.queues[rec.ID()], cmd)
}

// QueueForAll enqueues a command for every currently registered bot.
func (m *Botmaster) QueueForAll(cmd *Command) {
	for _, rec := range m.Records() {
		m.QueueFor(rec, cmd)
	}
}

// PendingFor reports the queue depth for a bot.
func (m *Botmaster) PendingFor(rec *BotRecord) int { return len(m.queues[rec.ID()]) }

// handlePoll answers a bot's poll: every queued command is sent back on
// the polling connection, sealed to the bot's K_B so the reply is
// indistinguishable from any other traffic.
func (m *Botmaster) handlePoll(conn connSender, rep *Report) {
	// Identify the poller by the K_B it proves knowledge of: the poll
	// carries {K_B}_PK_CC exactly like a rally report.
	kb, err := botcrypto.OpenWithPrivate(m.enc.Priv, rep.SealedKB)
	if err != nil {
		return
	}
	rec := &BotRecord{KB: kb}
	id := rec.ID()
	queued := m.queues[id]
	if len(queued) == 0 {
		return
	}
	delete(m.queues, id)
	// Reuse the registered record's cached session when the poller has
	// rallied before; unknown pollers pay the one-shot derivation.
	sk := rec.sealKey()
	if reg, ok := m.registry[id]; ok {
		sk = reg.sealKey()
	}
	for _, cmd := range queued {
		sealed, err := sk.Seal(cmd.Encode(), m.drbg)
		if err != nil {
			continue
		}
		_ = conn.Send(sealed)
	}
}

// connSender abstracts the reply channel for tests.
type connSender interface {
	Send([]byte) error
}

// Poll makes the bot query the C&C for pending commands. Replies arrive
// asynchronously on the polling connection and are handled like any
// directed command (sealed to K_B). Returns without error when there is
// no C&C configured.
func (b *Bot) Poll() error {
	if b.ccOnion == "" || !b.alive {
		return nil
	}
	sealedKB, err := botcrypto.SealToPublic(b.masterEncPub, b.kb, b.drbg)
	if err != nil {
		return err
	}
	conn, err := b.proxy.Dial(b.ccOnion)
	if err != nil {
		return err
	}
	conn.SetHandler(func(msg []byte) {
		// Pull replies are commands sealed directly to K_B.
		if inner, err := b.kbSeal.Open(msg); err == nil {
			b.handleDirectedPlain(inner)
		}
	})
	rep := &Report{Onion: b.Onion(), SealedKB: sealedKB}
	env := &Envelope{Type: MsgPoll, MsgID: b.newMsgID(), Payload: rep.Encode()}
	return b.sendEnvelope(conn, env)
}

// StartPolling schedules periodic polls (pull-based waiting stage).
// Polls batch onto one shared wheel event per (interval, phase), like
// the other per-bot maintenance timers.
func (b *Bot) StartPolling(every time.Duration) {
	if every <= 0 {
		return
	}
	b.net.Scheduler().EveryBatched(every, func() bool {
		if !b.alive {
			return false
		}
		_ = b.Poll()
		return true
	})
}
