package core
