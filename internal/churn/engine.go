package churn

import (
	"fmt"
	"time"

	"onionbots/internal/sim"
)

// Target is a population a churn process can act on. The engine calls
// these from inside scheduler events, so implementations must be
// synchronous and must draw any randomness from the rng they are
// handed — that rng belongs to the calling process's substream, which
// is what keeps a swept churn axis deterministic at any parallelism.
type Target interface {
	// Size reports the current population.
	Size() int
	// Join admits one fresh member, reporting whether a member was
	// actually added (a target may not support joins, or may fail).
	Join(rng *sim.RNG) bool
	// Leave removes one uniformly random member, reporting whether a
	// member was actually removed (false on an empty population).
	Leave(rng *sim.RNG) bool
}

// Regional is a Target partitioned into regions, supporting the
// correlated regional takedowns of the mitigation literature (ISP
// cleanups, national CERT actions) where a whole slice of the
// population disappears at one instant.
type Regional interface {
	Target
	// Regions reports the partition count.
	Regions() int
	// TakedownRegion removes frac of region's current members (chosen
	// uniformly) and returns how many were removed.
	TakedownRegion(rng *sim.RNG, region int, frac float64) int
}

// Neighborhood is a Target with topology, supporting correlated
// takedowns of a random member together with everything within k
// overlay hops — the shape of a peer-list walking takedown.
type Neighborhood interface {
	Target
	// TakedownNeighborhood removes a uniformly random member and its
	// k-hop overlay neighborhood, returning how many were removed.
	TakedownNeighborhood(rng *sim.RNG, hops int) int
}

// Kind classifies a churn trace event.
type Kind uint8

// Trace event kinds.
const (
	KindJoin Kind = iota + 1
	KindLeave
	KindTakedown
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindTakedown:
		return "takedown"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one entry of the churn trace: what happened, when (virtual
// time since sim.Epoch), under which process, and the population size
// right after.
type Event struct {
	At      time.Duration
	Process string
	Kind    Kind
	// Count is how many members the event affected (takedowns remove
	// whole regions or neighborhoods at once).
	Count int
	// Size is the target population immediately after the event.
	Size int
}

// Engine attaches churn processes to a running simulation: it owns the
// target, derives every attached process's RNG substream, and records
// the event trace. One engine drives one target; processes compose by
// attaching several to the same engine.
//
// Determinism contract: the engine never draws randomness itself. Each
// process is seeded with sim.NewSubstream(seed, "churn/"+name) at
// Attach time, so the full event trace is a pure function of (seed,
// attached process set, target state) — independent of sweep worker
// count or scheduling order, exactly like experiment task substreams.
type Engine struct {
	sched   *sim.Scheduler
	seed    uint64
	target  Target
	trace   []Event
	stopped bool
	names   map[string]struct{}
}

// NewEngine creates an engine driving target on sched. seed is the
// substream root for every attached process; experiments pass
// sim.SubstreamSeed(taskSeed, "<experiment>/churn") or similar.
func NewEngine(sched *sim.Scheduler, seed uint64, target Target) *Engine {
	return &Engine{
		sched:  sched,
		seed:   seed,
		target: target,
		names:  map[string]struct{}{},
	}
}

// Target returns the population under churn.
func (e *Engine) Target() Target { return e.target }

// Attach starts a process: it validates the process against the
// target's capabilities, derives the process's RNG substream from the
// engine seed and the process name, and schedules its first event.
// Attaching two processes with the same name is rejected — they would
// share a substream, breaking independence.
func (e *Engine) Attach(p Process) error {
	name := p.Name()
	if name == "" {
		return fmt.Errorf("churn: process has no name")
	}
	if _, dup := e.names[name]; dup {
		return fmt.Errorf("churn: duplicate process name %q (set Label to disambiguate)", name)
	}
	if err := p.validate(e.target); err != nil {
		return err
	}
	e.names[name] = struct{}{}
	p.attach(e, sim.NewSubstream(e.seed, "churn/"+name))
	return nil
}

// Stop halts every attached process: events already on the scheduler
// still fire but become no-ops. Use it to freeze the population for
// post-run measurement.
func (e *Engine) Stop() { e.stopped = true }

// Trace returns a copy of the recorded event trace, in firing order.
func (e *Engine) Trace() []Event { return append([]Event(nil), e.trace...) }

// Counts tallies the trace: members joined, left, and removed by
// takedowns.
func (e *Engine) Counts() (joined, left, takendown int) {
	for _, ev := range e.trace {
		switch ev.Kind {
		case KindJoin:
			joined += ev.Count
		case KindLeave:
			left += ev.Count
		case KindTakedown:
			takendown += ev.Count
		}
	}
	return joined, left, takendown
}

// record appends one trace event stamped with the current virtual time
// and population.
func (e *Engine) record(process string, kind Kind, count int) {
	e.trace = append(e.trace, Event{
		At:      e.sched.Elapsed(),
		Process: process,
		Kind:    kind,
		Count:   count,
		Size:    e.target.Size(),
	})
}
