package churn

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"
	"time"

	"onionbots/internal/jsonx"
)

// Spec is the declarative, JSON-serializable form of a churn process —
// what experiment parameters carry and what a sweep's "churn" axis
// lists. Build turns it into a live Process; Label renders it as a
// compact deterministic string for task labels (and therefore RNG
// substream names), so two distinct specs always sweep onto distinct
// random streams.
//
//	{"process": "poisson", "join": 4, "leave": 4}
//	{"process": "diurnal", "join": 2, "leave": 2, "amplitude": 0.8, "period_h": 24}
//	{"process": "takedown", "frac": 0.5, "regions": 4, "at_h": 6}
//	{"process": "takedown", "hops": 2, "at_h": 6}
//	{"process": "replay", "trace_file": "examples/traces/takedown-wave.json"}
type Spec struct {
	// Process selects the process type: "poisson", "diurnal",
	// "takedown", or "replay".
	Process string `json:"process"`
	// Join and Leave are mean event rates in events per virtual hour
	// (poisson, diurnal).
	Join  float64 `json:"join,omitempty"`
	Leave float64 `json:"leave,omitempty"`
	// Amplitude is the diurnal modulation swing, required in (0, 1]
	// for diurnal specs (zero would be an unmodulated process — write
	// it as poisson instead).
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodH is the diurnal cycle length in virtual hours (default 24).
	PeriodH float64 `json:"period_h,omitempty"`
	// Regions is the partition count for regional takedowns; targets
	// built from a spec adopt it.
	Regions int `json:"regions,omitempty"`
	// Frac is the fraction of the chosen region a takedown removes.
	Frac float64 `json:"frac,omitempty"`
	// AtH is the takedown instant, virtual hours after attach.
	AtH float64 `json:"at_h,omitempty"`
	// Hops switches the takedown to k-hop neighborhood mode.
	Hops int `json:"hops,omitempty"`
	// TraceFile names a recorded event trace (the engine's own JSON
	// trace format, see EncodeTrace) that a "replay" process plays back
	// as the membership schedule — the lever for evaluating mitigations
	// against how a real population actually moved.
	TraceFile string `json:"trace_file,omitempty"`
}

// ParseSpec decodes and validates a JSON spec. Unknown fields are
// rejected, mirroring sweep parsing, so a typo ("rate" for "leave")
// cannot silently disable an axis.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("parse churn spec: %w", jsonx.Describe(data, err))
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec without building it.
func (s Spec) Validate() error {
	_, err := s.build()
	return err
}

// Build constructs the live process the spec describes.
func (s Spec) Build() (Process, error) { return s.build() }

func (s Spec) build() (Process, error) {
	switch s.Process {
	case "poisson":
		p := &Poisson{JoinRate: s.Join, LeaveRate: s.Leave}
		if err := p.validate(nil); err != nil {
			return nil, err
		}
		return p, nil
	case "diurnal":
		d := &Diurnal{JoinRate: s.Join, LeaveRate: s.Leave, Amplitude: s.Amplitude,
			Period: time.Duration(s.PeriodH * float64(time.Hour))}
		if err := d.validate(nil); err != nil {
			return nil, err
		}
		return d, nil
	case "takedown":
		t := &Takedown{After: time.Duration(s.AtH * float64(time.Hour)),
			Frac: s.Frac, Region: -1, Hops: s.Hops}
		if t.After < 0 {
			return nil, fmt.Errorf("churn: takedown: negative at_h %g", s.AtH)
		}
		if t.Hops <= 0 {
			if t.Frac <= 0 || t.Frac > 1 {
				return nil, fmt.Errorf("churn: takedown: fraction %g outside (0, 1]", t.Frac)
			}
			if s.Regions < 1 {
				return nil, fmt.Errorf("churn: takedown: regional mode needs regions >= 1")
			}
		}
		return t, nil
	case "replay":
		if s.TraceFile == "" {
			return nil, fmt.Errorf("churn: replay: no trace_file")
		}
		events, err := LoadTrace(s.TraceFile)
		if err != nil {
			return nil, fmt.Errorf("churn: replay: %w", err)
		}
		r := &Replay{Events: events}
		if err := r.validate(nil); err != nil {
			return nil, err
		}
		return r, nil
	case "":
		return nil, fmt.Errorf("churn: spec has no process")
	default:
		return nil, fmt.Errorf("churn: unknown process %q (want poisson, diurnal, takedown, or replay)", s.Process)
	}
}

// Label renders the spec as a compact deterministic string: the
// process name plus every non-default knob, ";"-separated —
// "poisson;j=4;l=4", "diurnal;j=2;l=2;a=0.5", "takedown;hops=2;at=6".
// Task labels embed it ("churn-repair/churn=poisson;l=8/seed=1"), so
// it contains no "/" and no "," (which would break label splitting and
// CSV cells respectively).
func (s Spec) Label() string {
	var b strings.Builder
	b.WriteString(s.Process)
	part := func(k string, v float64) {
		if v != 0 {
			fmt.Fprintf(&b, ";%s=%g", k, v)
		}
	}
	part("j", s.Join)
	part("l", s.Leave)
	part("a", s.Amplitude)
	part("p", s.PeriodH)
	part("r", float64(s.Regions))
	part("frac", s.Frac)
	part("at", s.AtH)
	part("hops", float64(s.Hops))
	if s.TraceFile != "" {
		// The label embeds the trace's base name (sans extension),
		// sanitized so it can never carry a "/" or "," into task labels
		// or CSV cells, plus a short hash of the full path — two
		// distinct trace files that happen to share a basename
		// (traces/v1/wave.json vs traces/v2/wave.json) must not
		// collide into one label, which would merge their RNG
		// substreams and aggregation rows.
		base := filepath.Base(s.TraceFile)
		base = strings.TrimSuffix(base, filepath.Ext(base))
		clean := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
				r >= '0' && r <= '9', r == '-', r == '_', r == '.':
				return r
			}
			return '-'
		}, base)
		h := fnv.New32a()
		h.Write([]byte(s.TraceFile))
		fmt.Fprintf(&b, ";t=%s.%08x", clean, h.Sum32())
	}
	return b.String()
}
