package churn

import (
	"testing"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/sim"
)

// TestProtocolChurnTenThousandBots is the protocol-scale smoke test the
// identity pool exists for: grow a 10^4-bot botnet on a real simulated
// Tor substrate (every infection hosts a hidden service, rallies the
// C&C, and peers), then drive live churn — Poisson joins/leaves plus a
// correlated regional takedown — through the engine. Before the pool,
// keygen alone priced this population out of reach for a smoke test.
//
// Gated behind -short (CI's `go test ./...` runs it; `go test -short`
// skips it): it is a scale gate, not a unit test.
func TestProtocolChurnTenThousandBots(t *testing.T) {
	if testing.Short() {
		t.Skip("10^4-bot protocol churn; skipped in -short")
	}
	const n = 10000
	start := time.Now()
	bn, err := core.NewBotNet(42, 120, core.BotConfig{
		DMin: 2, DMax: 6,
		PingInterval: 30 * time.Minute,
		NoNInterval:  2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	bn.Master.HotlistSize = 5
	bn.SettleTime = 200 * time.Millisecond
	bn.WarmIdentities(n) // amortize keygen ahead of the join burst
	if err := bn.Grow(n, nil); err != nil {
		t.Fatal(err)
	}
	grew := time.Since(start)
	if got := bn.AliveCount(); got != n {
		t.Fatalf("grew %d bots, want %d", got, n)
	}

	target := NewBotNetTarget(bn, nil, 8)
	eng := NewEngine(bn.Sched, sim.SubstreamSeed(42, "scale/churn"), target)
	if err := eng.Attach(&Poisson{JoinRate: 300, LeaveRate: 300}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(&Takedown{After: time.Hour, Frac: 0.5, Region: -1}); err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Hour)
	eng.Stop()

	joined, left, takendown := eng.Counts()
	if joined < 300 || left < 300 {
		t.Fatalf("churn barely ran: %d joined, %d left", joined, left)
	}
	if takendown < n/32 {
		t.Fatalf("regional takedown removed only %d of a ~%d-bot region", takendown, n/8)
	}
	alive := bn.AliveCount()
	if alive < n/2 || alive > n+joined {
		t.Fatalf("population implausible after churn: %d alive", alive)
	}
	if s := bn.HotlistStaleness(); s <= 0 || s >= 1 {
		t.Fatalf("staleness %g implausible after heavy churn", s)
	}
	st := bn.IdentityPoolStats()
	if st.Served < n+joined {
		t.Fatalf("pool served %d infections, want >= %d", st.Served, n+joined)
	}
	t.Logf("10^4-bot churn: grow %v, total %v; %d joined %d left %d takendown, %d alive, staleness %.3f, pool %+v",
		grew.Round(time.Millisecond), time.Since(start).Round(time.Millisecond),
		joined, left, takendown, alive, bn.HotlistStaleness(), st)
}
