package churn

import (
	"onionbots/internal/core"
	"onionbots/internal/ddsr"
	"onionbots/internal/sim"
)

// OverlayOptions tunes an OverlayTarget.
type OverlayOptions struct {
	// JoinPeers is how many uniformly random alive peers a joining node
	// is introduced to (its bootstrap candidate list). Default 10; the
	// maintainer's own policy decides how many links actually form.
	JoinPeers int
	// Regions partitions nodes by id modulo Regions for correlated
	// regional takedowns. Zero leaves the target non-regional.
	Regions int
}

// OverlayTarget adapts a ddsr.Maintainer — a DDSR overlay or a Normal
// no-repair graph — to the churn engine. It tracks the alive id set in
// a swap-remove slice so uniform member selection is O(1), allocates
// fresh ids for joins, and implements both correlated-takedown
// capabilities (regions by id modulo, neighborhoods by BFS over the
// maintainer's graph).
//
// Joins require the maintainer to implement ddsr.Joiner (both Overlay
// and Normal do); on a plain Maintainer, Join reports false and a
// join/leave process degrades to pure departure.
type OverlayTarget struct {
	m      ddsr.Maintainer
	opts   OverlayOptions
	alive  []int
	pos    map[int]int // id -> index in alive
	nextID int
}

var (
	_ Regional     = (*OverlayTarget)(nil)
	_ Neighborhood = (*OverlayTarget)(nil)
)

// NewOverlayTarget wraps m, whose current nodes form the initial
// population.
func NewOverlayTarget(m ddsr.Maintainer, opts OverlayOptions) *OverlayTarget {
	if opts.JoinPeers <= 0 {
		opts.JoinPeers = 10
	}
	ids := m.Graph().Nodes()
	t := &OverlayTarget{
		m:     m,
		opts:  opts,
		alive: ids,
		pos:   make(map[int]int, len(ids)),
	}
	for i, id := range ids {
		t.pos[id] = i
		if id >= t.nextID {
			t.nextID = id + 1
		}
	}
	return t
}

// Maintainer returns the wrapped overlay for measurement.
func (t *OverlayTarget) Maintainer() ddsr.Maintainer { return t.m }

// Size implements Target.
func (t *OverlayTarget) Size() int { return len(t.alive) }

// Join implements Target: a fresh node is introduced to JoinPeers
// random alive nodes and linked under the maintainer's join policy.
func (t *OverlayTarget) Join(rng *sim.RNG) bool {
	j, ok := t.m.(ddsr.Joiner)
	if !ok {
		return false
	}
	peers := t.pickPeers(rng, t.opts.JoinPeers)
	id := t.nextID
	t.nextID++
	j.Join(id, peers)
	t.pos[id] = len(t.alive)
	t.alive = append(t.alive, id)
	return true
}

// pickPeers selects up to k distinct alive ids by index draws with
// duplicate rejection — O(k) expected for the small k ≪ n this serves
// (bootstrap candidate lists), instead of sim.Sample's full O(n)
// copy-and-shuffle, which would make every join event linear in the
// population. Collisions re-draw, so the draw count (and therefore the
// substream position) stays a pure function of the rng state.
func (t *OverlayTarget) pickPeers(rng *sim.RNG, k int) []int {
	n := len(t.alive)
	if k >= n {
		return append([]int(nil), t.alive...)
	}
	peers := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	for len(peers) < k {
		i := rng.Intn(n)
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		peers = append(peers, t.alive[i])
	}
	return peers
}

// Leave implements Target: a uniformly random alive node is removed
// under the maintainer's repair policy.
func (t *OverlayTarget) Leave(rng *sim.RNG) bool {
	if len(t.alive) == 0 {
		return false
	}
	t.remove(t.alive[rng.Intn(len(t.alive))])
	return true
}

// Regions implements Regional.
func (t *OverlayTarget) Regions() int { return t.opts.Regions }

// TakedownRegion implements Regional: remove frac of the region's
// current members (region = id modulo Regions), rounded to nearest, at
// least one when the region is non-empty and frac > 0.
func (t *OverlayTarget) TakedownRegion(rng *sim.RNG, region int, frac float64) int {
	if t.opts.Regions < 1 {
		return 0
	}
	members := make([]int, 0, len(t.alive)/t.opts.Regions+1)
	for _, id := range t.alive {
		if id%t.opts.Regions == region {
			members = append(members, id)
		}
	}
	n := int(frac*float64(len(members)) + 0.5)
	if n == 0 && len(members) > 0 && frac > 0 {
		n = 1
	}
	victims := sim.Sample(rng, members, n)
	for _, id := range victims {
		t.remove(id)
	}
	return len(victims)
}

// TakedownNeighborhood implements Neighborhood: a uniformly random
// member and everything within hops overlay hops of it are removed.
// The victim set is collected before any removal so the repair edges a
// self-healing maintainer adds mid-takedown cannot widen the blast.
func (t *OverlayTarget) TakedownNeighborhood(rng *sim.RNG, hops int) int {
	if len(t.alive) == 0 {
		return 0
	}
	src := t.alive[rng.Intn(len(t.alive))]
	g := t.m.Graph()
	victims := []int{src}
	seen := map[int]struct{}{src: {}}
	frontier := []int{src}
	for h := 0; h < hops; h++ {
		var next []int
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if _, dup := seen[w]; !dup {
					seen[w] = struct{}{}
					victims = append(victims, w)
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	for _, id := range victims {
		t.remove(id)
	}
	return len(victims)
}

// remove takes id out of the alive set and the maintainer.
func (t *OverlayTarget) remove(id int) {
	i, ok := t.pos[id]
	if !ok {
		return
	}
	last := len(t.alive) - 1
	moved := t.alive[last]
	t.alive[i] = moved
	t.pos[moved] = i
	t.alive = t.alive[:last]
	delete(t.pos, id)
	t.m.RemoveNode(id)
}

// BotNetTarget adapts a protocol-level core.BotNet: joins are real
// infections (key derivation, rally, peering handshakes settle as the
// simulation proceeds), leaves are takedowns of random alive bots, and
// regions partition bots by infection order modulo Regions.
type BotNetTarget struct {
	bn       *core.BotNet
	strategy core.BootstrapStrategy
	regions  int
}

var _ Regional = (*BotNetTarget)(nil)

// NewBotNetTarget wraps bn. strategy seeds each join's bootstrap
// candidates (nil = the Grow default, HardcodedList{P: 0.5}); regions
// partitions bots for correlated takedowns (0 = non-regional).
func NewBotNetTarget(bn *core.BotNet, strategy core.BootstrapStrategy, regions int) *BotNetTarget {
	return &BotNetTarget{bn: bn, strategy: strategy, regions: regions}
}

// Size implements Target. O(1): the botnet maintains an alive index.
func (t *BotNetTarget) Size() int { return t.bn.AliveCount() }

// Join implements Target by infecting one bot from a random alive
// infector.
func (t *BotNetTarget) Join(rng *sim.RNG) bool {
	_, err := t.bn.InfectFrom(t.strategy, rng)
	return err == nil
}

// Leave implements Target by taking down a uniformly random alive bot
// — an O(1) pick off the botnet's alive index, no roster copy per
// departure.
func (t *BotNetTarget) Leave(rng *sim.RNG) bool {
	b := t.bn.RandomAliveBot(rng)
	if b == nil {
		return false
	}
	t.bn.Takedown(b)
	return true
}

// Regions implements Regional.
func (t *BotNetTarget) Regions() int { return t.regions }

// TakedownRegion implements Regional: bots whose infection index is
// congruent to region modulo Regions are the region's members; frac of
// its alive members (rounded to nearest, at least one when non-empty)
// are taken down.
func (t *BotNetTarget) TakedownRegion(rng *sim.RNG, region int, frac float64) int {
	if t.regions < 1 {
		return 0
	}
	var members []*core.Bot
	for i, b := range t.bn.Bots() {
		if i%t.regions == region && b.Alive() {
			members = append(members, b)
		}
	}
	n := int(frac*float64(len(members)) + 0.5)
	if n == 0 && len(members) > 0 && frac > 0 {
		n = 1
	}
	victims := sim.Sample(rng, members, n)
	for _, b := range victims {
		t.bn.Takedown(b)
	}
	return len(victims)
}
