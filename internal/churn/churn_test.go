package churn

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"onionbots/internal/ddsr"
	"onionbots/internal/sim"
)

// countTarget is a minimal in-memory population for process-level tests.
type countTarget struct {
	n       int
	regions int
}

func (t *countTarget) Size() int { return t.n }
func (t *countTarget) Join(*sim.RNG) bool {
	t.n++
	return true
}
func (t *countTarget) Leave(*sim.RNG) bool {
	if t.n == 0 {
		return false
	}
	t.n--
	return true
}
func (t *countTarget) Regions() int { return t.regions }
func (t *countTarget) TakedownRegion(_ *sim.RNG, region int, frac float64) int {
	k := int(frac * float64(t.n) / float64(t.regions))
	t.n -= k
	return k
}

func newOverlay(t *testing.T, n, k int, seed uint64) *ddsr.Overlay {
	t.Helper()
	o, err := ddsr.NewRegular(n, k, ddsr.DefaultConfig(k), sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestPoissonInterArrivalDistribution(t *testing.T) {
	// A homogeneous Poisson process at rate λ must produce ~λT events
	// over T with exponential inter-arrivals: mean 1/λ and coefficient
	// of variation 1. This is the distribution-sanity anchor for every
	// process built on the thinning construction.
	sched := sim.NewScheduler()
	target := &countTarget{n: 1 << 30} // effectively inexhaustible
	eng := NewEngine(sched, 42, target)
	const lambda = 8.0 // leaves per hour
	if err := eng.Attach(&Poisson{LeaveRate: lambda}); err != nil {
		t.Fatal(err)
	}
	const hours = 500
	sched.RunFor(hours * time.Hour)

	trace := eng.Trace()
	want := lambda * hours
	if got := float64(len(trace)); got < 0.9*want || got > 1.1*want {
		t.Fatalf("event count %v far from λT = %v", got, want)
	}
	// Inter-arrival mean and standard deviation in hours.
	var gaps []float64
	prev := time.Duration(0)
	for _, ev := range trace {
		gaps = append(gaps, (ev.At - prev).Hours())
		prev = ev.At
	}
	mean, sd := meanStd(gaps)
	if wantMean := 1 / lambda; math.Abs(mean-wantMean) > 0.15*wantMean {
		t.Errorf("inter-arrival mean %.4f, want ~%.4f", mean, wantMean)
	}
	if cv := sd / mean; cv < 0.9 || cv > 1.1 {
		t.Errorf("inter-arrival CV %.3f, want ~1 (exponential)", cv)
	}
}

func TestPoissonJoinLeaveSplit(t *testing.T) {
	sched := sim.NewScheduler()
	target := &countTarget{n: 1 << 30}
	eng := NewEngine(sched, 7, target)
	if err := eng.Attach(&Poisson{JoinRate: 6, LeaveRate: 2}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(300 * time.Hour)
	joined, left, _ := eng.Counts()
	if joined == 0 || left == 0 {
		t.Fatalf("joined=%d left=%d, want both positive", joined, left)
	}
	// Joins should outnumber leaves ~3:1.
	ratio := float64(joined) / float64(left)
	if ratio < 2.2 || ratio > 4.0 {
		t.Errorf("join/leave ratio %.2f, want ~3", ratio)
	}
}

func TestEngineTraceDeterministic(t *testing.T) {
	run := func() []Event {
		sched := sim.NewScheduler()
		eng := NewEngine(sched, 99, NewOverlayTarget(newOverlay(t, 120, 6, 1), OverlayOptions{JoinPeers: 6}))
		if err := eng.Attach(&Poisson{JoinRate: 4, LeaveRate: 4}); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(48 * time.Hour)
		return eng.Trace()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different traces (%d vs %d events)", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}

func TestProcessesGetIndependentSubstreams(t *testing.T) {
	// Two processes with distinct names on one engine must not share a
	// stream: the trace must differ from a single double-rate process,
	// and duplicate names are rejected outright.
	sched := sim.NewScheduler()
	eng := NewEngine(sched, 5, &countTarget{n: 1 << 30})
	if err := eng.Attach(&Poisson{LeaveRate: 4, Label: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(&Poisson{LeaveRate: 4, Label: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(&Poisson{LeaveRate: 1, Label: "a"}); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name accepted: %v", err)
	}
	sched.RunFor(100 * time.Hour)
	byName := map[string]int{}
	for _, ev := range eng.Trace() {
		byName[ev.Process]++
	}
	if byName["a"] == 0 || byName["b"] == 0 {
		t.Fatalf("process starved: %v", byName)
	}
	if byName["a"] == byName["b"] {
		// Equal counts are possible but the full traces coinciding is
		// not; this is a cheap inequality proxy on expectation — allow
		// equality only if the arrival instants differ.
		var at [2][]time.Duration
		for _, ev := range eng.Trace() {
			if ev.Process == "a" {
				at[0] = append(at[0], ev.At)
			} else {
				at[1] = append(at[1], ev.At)
			}
		}
		if reflect.DeepEqual(at[0], at[1]) {
			t.Fatal("processes a and b fired at identical instants: shared substream")
		}
	}
}

func TestDiurnalModulationShapesArrivals(t *testing.T) {
	// With amplitude 1, sin > 0 in the first half-period and < 0 in the
	// second: arrivals must concentrate heavily in the first half of
	// each cycle.
	sched := sim.NewScheduler()
	eng := NewEngine(sched, 11, &countTarget{n: 1 << 30})
	if err := eng.Attach(&Diurnal{LeaveRate: 12, Amplitude: 1, Period: 24 * time.Hour}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(200 * 24 * time.Hour)
	peak, trough := 0, 0
	for _, ev := range eng.Trace() {
		if math.Mod(ev.At.Hours(), 24) < 12 {
			peak++
		} else {
			trough++
		}
	}
	if peak == 0 {
		t.Fatal("no events")
	}
	// ∫(1+sin) over the peak half vs the trough half: (12+24/π) vs
	// (12-24/π) ≈ 4.9:1.
	if ratio := float64(peak) / float64(trough+1); ratio < 3 {
		t.Errorf("peak/trough arrivals %d/%d (ratio %.1f), want strong diurnal skew", peak, trough, ratio)
	}
}

func TestOverlayTargetJoinLeave(t *testing.T) {
	o := newOverlay(t, 100, 6, 2)
	target := NewOverlayTarget(o, OverlayOptions{JoinPeers: 6})
	rng := sim.NewRNG(3)
	for i := 0; i < 40; i++ {
		if !target.Join(rng) {
			t.Fatal("join failed")
		}
	}
	for i := 0; i < 60; i++ {
		if !target.Leave(rng) {
			t.Fatal("leave failed")
		}
	}
	if target.Size() != 80 {
		t.Fatalf("size = %d, want 80", target.Size())
	}
	g := o.Graph()
	if g.NumNodes() != 80 {
		t.Fatalf("graph nodes = %d, want 80", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > o.Config().DMax {
		t.Fatalf("max degree %d exceeds DMax %d after churn", g.MaxDegree(), o.Config().DMax)
	}
	if !g.Connected() {
		t.Fatal("overlay disconnected after moderate churn with repair")
	}
	if o.Stats().NodesJoined != 40 {
		t.Fatalf("joins processed = %d, want 40", o.Stats().NodesJoined)
	}
}

func TestOverlayTargetRegionalTakedown(t *testing.T) {
	o := newOverlay(t, 200, 6, 4)
	target := NewOverlayTarget(o, OverlayOptions{JoinPeers: 6, Regions: 4})
	rng := sim.NewRNG(9)
	removed := target.TakedownRegion(rng, 2, 0.5)
	// Region 2 holds ids ≡ 2 (mod 4): 50 members, half = 25.
	if removed != 25 {
		t.Fatalf("removed %d, want 25", removed)
	}
	if target.Size() != 175 {
		t.Fatalf("size = %d, want 175", target.Size())
	}
	stillThere := 0
	for _, id := range o.Graph().Nodes() {
		if id%4 == 2 {
			stillThere++
		}
	}
	if stillThere != 25 {
		t.Fatalf("region 2 survivors = %d, want 25", stillThere)
	}
}

func TestOverlayTargetNeighborhoodTakedown(t *testing.T) {
	o := newOverlay(t, 200, 6, 5)
	target := NewOverlayTarget(o, OverlayOptions{JoinPeers: 6})
	rng := sim.NewRNG(4)
	removed := target.TakedownNeighborhood(rng, 1)
	// One node plus its (≤ DMax) neighbors.
	if removed < 2 || removed > 1+o.Config().DMax {
		t.Fatalf("1-hop takedown removed %d, want in [2, %d]", removed, 1+o.Config().DMax)
	}
	if target.Size() != 200-removed {
		t.Fatalf("size %d after removing %d from 200", target.Size(), removed)
	}
	if err := o.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTakedownProcessFiresOnce(t *testing.T) {
	sched := sim.NewScheduler()
	o := newOverlay(t, 80, 6, 6)
	eng := NewEngine(sched, 13, NewOverlayTarget(o, OverlayOptions{JoinPeers: 6, Regions: 4}))
	if err := eng.Attach(&Takedown{After: 6 * time.Hour, Frac: 1, Region: -1}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(5 * time.Hour)
	if len(eng.Trace()) != 0 {
		t.Fatal("takedown fired early")
	}
	sched.RunFor(2 * time.Hour)
	trace := eng.Trace()
	if len(trace) != 1 || trace[0].Kind != KindTakedown || trace[0].Count != 20 {
		t.Fatalf("trace = %+v, want one takedown of 20", trace)
	}
	sched.RunFor(100 * time.Hour)
	if len(eng.Trace()) != 1 {
		t.Fatal("takedown fired again")
	}
}

func TestAttachValidatesCapabilities(t *testing.T) {
	sched := sim.NewScheduler()
	eng := NewEngine(sched, 1, &countTarget{n: 10}) // no Neighborhood support
	err := eng.Attach(&Takedown{Hops: 2})
	if err == nil || !strings.Contains(err.Error(), "neighborhood") {
		t.Fatalf("err = %v, want neighborhood capability error", err)
	}
	err = eng.Attach(&Takedown{Frac: 0.5}) // regions = 0
	if err == nil || !strings.Contains(err.Error(), "regions") {
		t.Fatalf("err = %v, want regions error", err)
	}
	if err := eng.Attach(&Poisson{}); err == nil {
		t.Fatal("zero-rate Poisson accepted")
	}
	// A runaway rate must fail validation, not wedge the scheduler in
	// same-instant events.
	if err := eng.Attach(&Poisson{LeaveRate: 1e13, Label: "runaway"}); err == nil ||
		!strings.Contains(err.Error(), "cap") {
		t.Fatalf("err = %v, want rate-cap error", err)
	}
	if err := eng.Attach(&Diurnal{LeaveRate: MaxRate, Amplitude: 1, Label: "runaway2"}); err == nil {
		t.Fatal("diurnal peak rate above cap accepted")
	}
}

func TestEngineStopFreezesPopulation(t *testing.T) {
	sched := sim.NewScheduler()
	target := &countTarget{n: 1000}
	eng := NewEngine(sched, 2, target)
	if err := eng.Attach(&Poisson{LeaveRate: 10}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(10 * time.Hour)
	eng.Stop()
	frozen := target.Size()
	events := len(eng.Trace())
	sched.RunFor(100 * time.Hour)
	if target.Size() != frozen || len(eng.Trace()) != events {
		t.Fatalf("population moved after Stop: %d -> %d", frozen, target.Size())
	}
}

func TestSpecValidateAndLabel(t *testing.T) {
	cases := []struct {
		spec    Spec
		label   string
		wantErr string
	}{
		{Spec{Process: "poisson", Leave: 8}, "poisson;l=8", ""},
		{Spec{Process: "poisson", Join: 4, Leave: 4}, "poisson;j=4;l=4", ""},
		{Spec{Process: "diurnal", Join: 2, Leave: 2, Amplitude: 0.5, PeriodH: 12}, "diurnal;j=2;l=2;a=0.5;p=12", ""},
		{Spec{Process: "takedown", Frac: 0.5, Regions: 4, AtH: 6}, "takedown;r=4;frac=0.5;at=6", ""},
		{Spec{Process: "takedown", Hops: 2, AtH: 6}, "takedown;at=6;hops=2", ""},
		{Spec{}, "", "no process"},
		{Spec{Process: "flash"}, "", "unknown process"},
		{Spec{Process: "poisson"}, "", "both rates zero"},
		{Spec{Process: "diurnal", Leave: 2, Amplitude: 2}, "", "amplitude"},
		{Spec{Process: "diurnal", Leave: 2}, "", "amplitude"},
		{Spec{Process: "takedown", Frac: 1.5, Regions: 2}, "", "fraction"},
		{Spec{Process: "takedown", Frac: 0.5}, "", "regions"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%+v: err = %v, want containing %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%+v: unexpected error %v", tc.spec, err)
			continue
		}
		if got := tc.spec.Label(); got != tc.label {
			t.Errorf("label = %q, want %q", got, tc.label)
		}
		if strings.ContainsAny(tc.spec.Label(), "/,") {
			t.Errorf("label %q contains a reserved character", tc.spec.Label())
		}
		if _, err := tc.spec.Build(); err != nil {
			t.Errorf("%+v: build failed: %v", tc.spec, err)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"process":"poisson","rate":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	s, err := ParseSpec([]byte(`{"process":"poisson","leave":8}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Leave != 8 {
		t.Fatalf("parsed %+v", s)
	}
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)-1))
	return mean, sd
}
