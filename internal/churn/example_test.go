package churn_test

import (
	"fmt"
	"time"

	"onionbots/internal/churn"
	"onionbots/internal/ddsr"
	"onionbots/internal/sim"
)

// Attach a Poisson join/leave process and a scheduled regional takedown
// to a DDSR overlay, run two virtual days, and inspect the trace. The
// whole run is a pure function of the engine seed: rerunning this
// example always prints the same numbers.
func ExampleEngine_Attach() {
	sched := sim.NewScheduler()
	overlay, err := ddsr.NewRegular(200, 6, ddsr.DefaultConfig(6), sim.NewRNG(1))
	if err != nil {
		panic(err)
	}
	target := churn.NewOverlayTarget(overlay, churn.OverlayOptions{JoinPeers: 6, Regions: 4})
	eng := churn.NewEngine(sched, sim.SubstreamSeed(1, "example"), target)

	if err := eng.Attach(&churn.Poisson{JoinRate: 2, LeaveRate: 2}); err != nil {
		panic(err)
	}
	if err := eng.Attach(&churn.Takedown{After: 24 * time.Hour, Frac: 0.5, Region: -1}); err != nil {
		panic(err)
	}

	sched.RunFor(48 * time.Hour)
	eng.Stop()

	joined, left, takendown := eng.Counts()
	fmt.Println("joined:", joined)
	fmt.Println("left:", left)
	fmt.Println("taken down at once:", takendown)
	fmt.Println("still connected:", overlay.Graph().Connected())
	// Output:
	// joined: 107
	// left: 81
	// taken down at once: 29
	// still connected: true
}

// Specs are the declarative form sweeps and experiment parameters use;
// Build turns one into the process Attach expects.
func ExampleSpec_Build() {
	spec, err := churn.ParseSpec([]byte(`{"process": "diurnal", "join": 2, "leave": 2, "amplitude": 0.8}`))
	if err != nil {
		panic(err)
	}
	proc, err := spec.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.Label(), "->", proc.Name())
	// Output: diurnal;j=2;l=2;a=0.8 -> diurnal
}
