package churn

import (
	"fmt"
	"math"
	"time"

	"onionbots/internal/sim"
)

// Process is one churn process: a source of membership events that the
// engine schedules on the simulation's timer wheel. Implementations
// live in this package; experiments construct them directly or from a
// Spec.
type Process interface {
	// Name identifies the process: it tags trace events and names the
	// process's RNG substream, so it must be unique per engine.
	Name() string
	// validate checks the process parameters against the target's
	// capabilities before anything is scheduled.
	validate(t Target) error
	// attach schedules the process's first event. rng is the process's
	// private substream; all of the process's randomness (arrival
	// times, thinning, member selection) must come from it.
	attach(e *Engine, rng *sim.RNG)
}

// Poisson is a memoryless join/leave process: joins arrive at JoinRate
// and leaves at LeaveRate (events per virtual hour), with exponential
// inter-arrival times. An optional rate modulation function turns the
// homogeneous process into a non-homogeneous one via thinning: events
// are generated at the peak rate and each is accepted with probability
// proportional to the modulated rate at its arrival instant, which is
// the standard construction and keeps the arrival stream a pure
// function of the process substream.
type Poisson struct {
	// JoinRate and LeaveRate are mean event rates in events per virtual
	// hour. Zero disables that half of the process; at least one must
	// be positive.
	JoinRate, LeaveRate float64
	// Modulate, when set, scales both rates at virtual time t (duration
	// since sim.Epoch). Values are clamped to [0, ModulateMax].
	Modulate func(t time.Duration) float64
	// ModulateMax bounds Modulate's range (default 1). The thinning
	// construction generates candidates at (JoinRate+LeaveRate) ×
	// ModulateMax, so a bound far above Modulate's true maximum only
	// wastes events, never breaks correctness.
	ModulateMax float64
	// Label overrides the process name ("poisson" by default) so
	// several Poisson processes can share one engine.
	Label string
}

// Name implements Process.
func (p *Poisson) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "poisson"
}

// MaxRate bounds the combined peak event rate (events per virtual
// hour) a process accepts. Beyond this the exponential inter-arrival
// truncates toward zero virtual nanoseconds and a run degenerates into
// grinding through same-instant events — a typo in a sweep spec should
// fail validation, not hang the CLI.
const MaxRate = 1e6

func (p *Poisson) validate(Target) error {
	if p.JoinRate < 0 || p.LeaveRate < 0 {
		return fmt.Errorf("churn: %s: negative rate (join=%g leave=%g)", p.Name(), p.JoinRate, p.LeaveRate)
	}
	if p.JoinRate+p.LeaveRate == 0 {
		return fmt.Errorf("churn: %s: both rates zero", p.Name())
	}
	if p.Modulate != nil && p.ModulateMax < 0 {
		return fmt.Errorf("churn: %s: negative ModulateMax", p.Name())
	}
	modMax := p.ModulateMax
	if modMax <= 0 || p.Modulate == nil {
		modMax = 1
	}
	if peak := (p.JoinRate + p.LeaveRate) * modMax; peak > MaxRate {
		return fmt.Errorf("churn: %s: peak rate %g events/hour exceeds the %g cap", p.Name(), peak, float64(MaxRate))
	}
	return nil
}

func (p *Poisson) attach(e *Engine, rng *sim.RNG) {
	modMax := p.ModulateMax
	if modMax <= 0 {
		modMax = 1
	}
	if p.Modulate == nil {
		modMax = 1
	}
	peak := (p.JoinRate + p.LeaveRate) * modMax
	name := p.Name()
	var step func()
	schedule := func() {
		// Exponential inter-arrival at the peak rate; thinning below
		// discards candidates in proportion to the modulation deficit.
		d := time.Duration(rng.ExpFloat64() / peak * float64(time.Hour))
		e.sched.After(d, step)
	}
	step = func() {
		if e.stopped {
			return
		}
		m := 1.0
		if p.Modulate != nil {
			m = p.Modulate(e.sched.Elapsed())
			if m < 0 {
				m = 0
			}
			if m > modMax {
				m = modMax
			}
		}
		// One uniform draw splits [0, peak) into the accepted join
		// band, the accepted leave band, and the thinned remainder.
		u := rng.Float64() * peak
		switch {
		case u < p.JoinRate*m:
			if e.target.Join(rng) {
				e.record(name, KindJoin, 1)
			}
		case u < (p.JoinRate+p.LeaveRate)*m:
			if e.target.Leave(rng) {
				e.record(name, KindLeave, 1)
			}
		}
		schedule()
	}
	schedule()
}

// Diurnal is a Poisson join/leave process whose rates follow a
// sinusoidal day/night cycle:
//
//	rate(t) = base × (1 + Amplitude·sin(2πt/Period))
//
// with t measured from sim.Epoch. Amplitude 1 silences the trough
// entirely; for an unmodulated process use Poisson directly.
type Diurnal struct {
	// JoinRate and LeaveRate are the mean rates in events per virtual
	// hour (the sinusoid averages out over a full period).
	JoinRate, LeaveRate float64
	// Amplitude is the modulation swing, required in (0, 1]. Zero is
	// rejected rather than defaulted: a zero-amplitude "diurnal"
	// process is an unmodulated Poisson process wearing a different
	// label, and silently substituting a default would make an
	// amplitude-0 sweep point run as something it does not say.
	Amplitude float64
	// Period is the cycle length. Default 24 virtual hours.
	Period time.Duration
	// Label overrides the process name ("diurnal" by default).
	Label string
}

// Name implements Process.
func (d *Diurnal) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "diurnal"
}

func (d *Diurnal) period() time.Duration {
	if d.Period <= 0 {
		return 24 * time.Hour
	}
	return d.Period
}

func (d *Diurnal) validate(t Target) error {
	if a := d.Amplitude; a <= 0 || a > 1 {
		return fmt.Errorf("churn: %s: amplitude %g outside (0, 1] (use poisson for an unmodulated process)", d.Name(), a)
	}
	// Validate with the modulation bound attach will actually use, so
	// the rate cap applies to the sinusoid's peak, not the mean.
	return (&Poisson{
		JoinRate: d.JoinRate, LeaveRate: d.LeaveRate, Label: d.Name(),
		Modulate: func(time.Duration) float64 { return 1 }, ModulateMax: 1 + d.Amplitude,
	}).validate(t)
}

func (d *Diurnal) attach(e *Engine, rng *sim.RNG) {
	amp := d.Amplitude
	period := float64(d.period())
	p := &Poisson{
		JoinRate:  d.JoinRate,
		LeaveRate: d.LeaveRate,
		Label:     d.Name(),
		Modulate: func(t time.Duration) float64 {
			return 1 + amp*math.Sin(2*math.Pi*float64(t)/period)
		},
		ModulateMax: 1 + amp,
	}
	p.attach(e, rng)
}

// Takedown removes a correlated set of members at one scheduled
// instant: either a fraction of one region (the target must implement
// Regional) or a random member's k-hop overlay neighborhood (the
// target must implement Neighborhood). It models the mitigation
// studies' coordinated actions, as opposed to the independent
// departures of Poisson/Diurnal.
type Takedown struct {
	// After is how long after Attach the takedown fires.
	After time.Duration
	// Frac is the fraction of the chosen region to remove, in (0, 1].
	// Ignored when Hops is set.
	Frac float64
	// Region selects the region; negative means a uniformly random
	// one. Ignored when Hops is set.
	Region int
	// Hops, when positive, removes a random member and everything
	// within Hops overlay hops instead of a region.
	Hops int
	// Label overrides the process name ("takedown" by default).
	Label string
}

// Name implements Process.
func (t *Takedown) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return "takedown"
}

func (t *Takedown) validate(target Target) error {
	if t.After < 0 {
		return fmt.Errorf("churn: %s: negative delay", t.Name())
	}
	if t.Hops > 0 {
		if _, ok := target.(Neighborhood); !ok {
			return fmt.Errorf("churn: %s: target %T does not support neighborhood takedowns", t.Name(), target)
		}
		return nil
	}
	if t.Frac <= 0 || t.Frac > 1 {
		return fmt.Errorf("churn: %s: fraction %g outside (0, 1]", t.Name(), t.Frac)
	}
	rt, ok := target.(Regional)
	if !ok {
		return fmt.Errorf("churn: %s: target %T does not support regional takedowns", t.Name(), target)
	}
	if rt.Regions() < 1 {
		return fmt.Errorf("churn: %s: target has no regions configured", t.Name())
	}
	if t.Region >= rt.Regions() {
		return fmt.Errorf("churn: %s: region %d outside [0, %d)", t.Name(), t.Region, rt.Regions())
	}
	return nil
}

func (t *Takedown) attach(e *Engine, rng *sim.RNG) {
	name := t.Name()
	e.sched.After(t.After, func() {
		if e.stopped {
			return
		}
		removed := 0
		if t.Hops > 0 {
			removed = e.target.(Neighborhood).TakedownNeighborhood(rng, t.Hops)
		} else {
			rt := e.target.(Regional)
			region := t.Region
			if region < 0 {
				region = rng.Intn(rt.Regions())
			}
			removed = rt.TakedownRegion(rng, region, t.Frac)
		}
		if removed > 0 {
			e.record(name, KindTakedown, removed)
		}
	})
}
