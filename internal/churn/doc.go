// Package churn generates dynamic-membership scenarios: deterministic
// processes that join, remove, and mass-takedown members of a running
// population on the simulation's virtual clock. The paper evaluates
// resilience under one-shot deletion (Figs 5/6); real botnet
// populations churn continuously, and the mitigation literature (SOAP
// campaigns, regional cleanups) acts on exactly those dynamics — this
// package makes them a first-class experiment axis.
//
// # Model
//
// An Engine binds a Target — any population with join/leave semantics —
// to the scheduler and records an Event trace. Processes attach to the
// engine and compose freely:
//
//   - Poisson: memoryless join/leave at fixed mean rates, exponential
//     inter-arrival times drawn from the process's RNG substream.
//   - Diurnal: the same process under sinusoidal day/night rate
//     modulation, realized by thinning so arrivals stay a pure
//     function of the substream.
//   - Takedown: a correlated mass removal at one scheduled instant —
//     a fraction of one region, or a random member's k-hop overlay
//     neighborhood.
//   - Replay: a recorded event trace (EncodeTrace/ParseTrace, the
//     engine's own JSON format) played back as the membership
//     schedule, so mitigations can be evaluated against how a real
//     population actually moved.
//
// Two target adapters ship here: OverlayTarget drives a ddsr.Maintainer
// (the graph-level DDSR overlay or the no-repair Normal baseline, with
// joins under the policy via ddsr.Joiner), and BotNetTarget drives a
// protocol-level core.BotNet (joins are real infections, leaves are
// takedowns). Protocol-level joins draw pre-derived key material from
// the botnet's identity pool (core.IdentityPool), so BotNetTarget
// sustains 10^4-bot populations.
//
// # Determinism
//
// Every process draws all of its randomness — arrival times, thinning,
// member selection — from a private substream derived at Attach time
// as sim.NewSubstream(engineSeed, "churn/"+name). Events execute on
// the single-threaded scheduler in (time, sequence) order. The trace
// is therefore a pure function of (seed, process set, initial target
// state): a swept churn axis is byte-identical at any -parallel value,
// the same contract the experiment runner gives task seeds.
//
// # Specs
//
// Spec is the declarative JSON form ({"process": "poisson", "leave":
// 8}, or {"process": "replay", "trace_file": "..."}) used by
// experiment.Params.Churn and the sweep schema's "churn" axis;
// Spec.Label renders it into task labels so distinct specs land on
// distinct substreams. See docs/EXPERIMENTS.md for the end-to-end
// walkthrough of posing a churn question as a sweep.
package churn
