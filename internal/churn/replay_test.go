package churn

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"onionbots/internal/ddsr"
	"onionbots/internal/sim"
)

// replayTestOverlay builds a fresh DDSR overlay target of n nodes,
// mirroring the churn-repair substrate.
func replayTestOverlay(t *testing.T, seed uint64, n int) *OverlayTarget {
	t.Helper()
	o, err := ddsr.NewRegular(n, 4, ddsr.DefaultConfig(4), sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return NewOverlayTarget(o, OverlayOptions{JoinPeers: 6, Regions: 4})
}

// TestTraceJSONRoundTrip pins the trace wire format: encode, parse,
// re-encode must be a fixed point, and the parsed events must match
// the originals to nanosecond-level tolerance.
func TestTraceJSONRoundTrip(t *testing.T) {
	sched := sim.NewScheduler()
	target := replayTestOverlay(t, 31, 60)
	eng := NewEngine(sched, 31, target)
	if err := eng.Attach(&Poisson{JoinRate: 6, LeaveRate: 6}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Attach(&Takedown{After: 3 * time.Hour, Frac: 0.5, Region: -1, Label: "wave"}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(8 * time.Hour)
	eng.Stop()
	trace := eng.Trace()
	if len(trace) == 0 {
		t.Fatal("no events recorded")
	}

	enc, err := EncodeTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(trace) {
		t.Fatalf("round trip lost events: %d -> %d", len(trace), len(parsed))
	}
	for i := range trace {
		a, b := trace[i], parsed[i]
		if a.Kind != b.Kind || a.Count != b.Count || a.Process != b.Process || a.Size != b.Size {
			t.Fatalf("event %d mutated in round trip: %+v vs %+v", i, a, b)
		}
		if d := a.At - b.At; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("event %d time drifted %v in round trip", i, a.At-b.At)
		}
	}
	enc2, err := EncodeTrace(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != string(enc2) {
		t.Fatal("encode/parse/encode is not a fixed point")
	}
}

func TestParseTraceRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in, wantErr string }{
		{"unknown kind", `[{"at_s": 1, "kind": "reboot"}]`, "unknown kind"},
		{"unknown field", `[{"at_s": 1, "kind": "join", "who": 3}]`, "unknown field"},
		{"negative time", `[{"at_s": -1, "kind": "join"}]`, "negative time"},
		{"negative count", `[{"at_s": 1, "kind": "join", "count": -2}]`, "negative count"},
		{"time reversal", `[{"at_s": 9, "kind": "join"}, {"at_s": 3, "kind": "leave"}]`, "backwards"},
	}
	for _, tc := range cases {
		if _, err := ParseTrace([]byte(tc.in)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestReplayReproducesRecordedSchedule is the replay contract: a trace
// recorded from one run, replayed against a fresh same-sized
// population, reproduces the recorded membership timeline — same
// instants, same kinds, same counts, same population trajectory.
func TestReplayReproducesRecordedSchedule(t *testing.T) {
	record := func() []Event {
		sched := sim.NewScheduler()
		target := replayTestOverlay(t, 47, 80)
		eng := NewEngine(sched, 47, target)
		if err := eng.Attach(&Poisson{JoinRate: 4, LeaveRate: 4}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Attach(&Takedown{After: 4 * time.Hour, Frac: 0.4, Region: -1}); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(10 * time.Hour)
		eng.Stop()
		return eng.Trace()
	}
	recorded := record()

	sched := sim.NewScheduler()
	target := replayTestOverlay(t, 1234, 80) // different seed: fresh population
	eng := NewEngine(sched, 1234, target)
	if err := eng.Attach(&Replay{Events: recorded}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(10 * time.Hour)
	eng.Stop()
	replayed := eng.Trace()

	if len(replayed) != len(recorded) {
		t.Fatalf("replay fired %d events, recording had %d", len(replayed), len(recorded))
	}
	for i := range recorded {
		a, b := recorded[i], replayed[i]
		if a.At != b.At {
			t.Fatalf("event %d at %v, recorded %v", i, b.At, a.At)
		}
		if a.Kind != b.Kind || a.Count != b.Count {
			t.Fatalf("event %d is %v×%d, recorded %v×%d", i, b.Kind, b.Count, a.Kind, a.Count)
		}
		if b.Process != "replay" {
			t.Fatalf("event %d tagged %q, want replay", i, b.Process)
		}
		if a.Size != b.Size {
			t.Fatalf("population diverged at event %d: %d vs recorded %d", i, b.Size, a.Size)
		}
	}
}

// TestReplaySpecBuildsFromTraceFile wires the spec form: a "replay"
// process loads the committed example trace, carries a label-safe
// trace tag, and drives a target.
func TestReplaySpecBuildsFromTraceFile(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"process": "replay", "trace_file": "../../examples/traces/takedown-wave.json"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Label(); !strings.HasPrefix(got, "replay;t=takedown-wave.") {
		t.Fatalf("label = %q, want replay;t=takedown-wave.<pathhash>", got)
	}
	if strings.ContainsAny(spec.Label(), "/,") {
		t.Fatalf("label %q unsafe for task labels", spec.Label())
	}
	// Distinct paths sharing a basename must label distinctly: the
	// label is the spec's substream identity.
	other := Spec{Process: "replay", TraceFile: "elsewhere/takedown-wave.json"}
	if other.Label() == spec.Label() {
		t.Fatalf("distinct trace paths collided on label %q", spec.Label())
	}
	proc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	target := replayTestOverlay(t, 7, 40)
	eng := NewEngine(sched, 7, target)
	if err := eng.Attach(proc); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(6 * time.Hour)
	eng.Stop()
	joined, left, takendown := eng.Counts()
	// The example schedule sums to 8 joins, 3 leaves, and 13 members
	// taken down across the two waves.
	if joined != 8 || left != 3 || takendown != 13 {
		t.Fatalf("replayed counts joined=%d left=%d takendown=%d, want 8/3/13", joined, left, takendown)
	}

	// Missing and malformed files fail at Build/Validate time.
	if _, err := ParseSpec([]byte(`{"process": "replay"}`)); err == nil ||
		!strings.Contains(err.Error(), "no trace_file") {
		t.Fatalf("traceless replay accepted: %v", err)
	}
	if _, err := ParseSpec([]byte(`{"process": "replay", "trace_file": "/nonexistent.json"}`)); err == nil {
		t.Fatal("missing trace file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"at_s": 1, "kind": "reboot"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec([]byte(`{"process": "replay", "trace_file": "` + bad + `"}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("malformed trace accepted: %v", err)
	}
}
