package churn

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"onionbots/internal/sim"
)

// The engine's trace is a first-class artifact: EncodeTrace/ParseTrace
// round-trip it through JSON, and Replay plays a recorded trace back
// against a fresh target as a scheduled membership script — closing the
// loop the takedown literature works in, where a mitigation is
// evaluated by replaying how a real population actually moved while the
// defender acted. Record once (a measured run, or a trace transcribed
// from a real dataset), replay under any experiment.

// eventJSON is the wire form of one trace event. Times are virtual
// seconds since the trace origin, quantized to the microsecond so that
// encode/parse/encode is a byte-exact fixed point; kinds are the Kind
// strings.
type eventJSON struct {
	AtS     float64 `json:"at_s"`
	Process string  `json:"process,omitempty"`
	Kind    string  `json:"kind"`
	Count   int     `json:"count"`
	Size    int     `json:"size,omitempty"`
}

// EncodeTrace renders a trace as indented JSON (one event per entry,
// times in virtual seconds), suitable for committing next to a sweep
// spec.
func EncodeTrace(events []Event) ([]byte, error) {
	out := make([]eventJSON, 0, len(events))
	for _, ev := range events {
		out = append(out, eventJSON{
			AtS:     math.Round(ev.At.Seconds()*1e6) / 1e6,
			Process: ev.Process,
			Kind:    ev.Kind.String(),
			Count:   ev.Count,
			Size:    ev.Size,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// ParseTrace decodes a JSON trace, validating kinds, counts, and time
// ordering. Unknown fields are rejected like every other spec format
// in the tree.
func ParseTrace(data []byte) ([]Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw []eventJSON
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("parse churn trace: %w", err)
	}
	events := make([]Event, 0, len(raw))
	last := time.Duration(-1)
	for i, ej := range raw {
		var kind Kind
		switch ej.Kind {
		case "join":
			kind = KindJoin
		case "leave":
			kind = KindLeave
		case "takedown":
			kind = KindTakedown
		default:
			return nil, fmt.Errorf("parse churn trace: event %d: unknown kind %q", i, ej.Kind)
		}
		if ej.AtS < 0 {
			return nil, fmt.Errorf("parse churn trace: event %d: negative time %gs", i, ej.AtS)
		}
		at := time.Duration(math.Round(ej.AtS*1e6)) * time.Microsecond
		if at < last {
			return nil, fmt.Errorf("parse churn trace: event %d: time runs backwards (%v after %v)", i, at, last)
		}
		last = at
		count := ej.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			return nil, fmt.Errorf("parse churn trace: event %d: negative count %d", i, ej.Count)
		}
		events = append(events, Event{At: at, Process: ej.Process, Kind: kind, Count: count, Size: ej.Size})
	}
	return events, nil
}

// LoadTrace reads and parses a trace file.
func LoadTrace(path string) ([]Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	events, err := ParseTrace(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// Replay is a churn process that plays a recorded event trace back as a
// membership schedule: each event fires at its recorded offset after
// Attach (trace times are offsets from the recording's own attach
// instant, so a replay reproduces the recorded timeline shift-for-
// shift). Joins and leaves replay one member at a time; a takedown
// event removes Count uniformly random members at its instant — the
// trace records how many a coordinated action removed, not which
// (identities do not transfer between populations), which is exactly
// the shape a takedown schedule transcribed from a real dataset has.
//
// Determinism: member selection draws from the process substream like
// every other process, so a replayed schedule composes with live
// processes on the same engine without perturbing their streams.
type Replay struct {
	// Events is the schedule, time-ordered (as ParseTrace guarantees).
	Events []Event
	// Label overrides the process name ("replay" by default).
	Label string
}

// Name implements Process.
func (r *Replay) Name() string {
	if r.Label != "" {
		return r.Label
	}
	return "replay"
}

func (r *Replay) validate(Target) error {
	last := time.Duration(-1)
	for i, ev := range r.Events {
		if ev.At < 0 {
			return fmt.Errorf("churn: %s: event %d at negative offset %v", r.Name(), i, ev.At)
		}
		if ev.At < last {
			return fmt.Errorf("churn: %s: event %d out of order (%v after %v)", r.Name(), i, ev.At, last)
		}
		last = ev.At
		if ev.Count < 1 {
			return fmt.Errorf("churn: %s: event %d has count %d", r.Name(), i, ev.Count)
		}
		switch ev.Kind {
		case KindJoin, KindLeave, KindTakedown:
		default:
			return fmt.Errorf("churn: %s: event %d has unknown kind %v", r.Name(), i, ev.Kind)
		}
	}
	return nil
}

func (r *Replay) attach(e *Engine, rng *sim.RNG) {
	name := r.Name()
	for _, ev := range r.Events {
		ev := ev
		e.sched.After(ev.At, func() {
			if e.stopped {
				return
			}
			switch ev.Kind {
			case KindJoin:
				done := 0
				for i := 0; i < ev.Count; i++ {
					if e.target.Join(rng) {
						done++
					}
				}
				if done > 0 {
					e.record(name, KindJoin, done)
				}
			case KindLeave:
				done := 0
				for i := 0; i < ev.Count; i++ {
					if e.target.Leave(rng) {
						done++
					}
				}
				if done > 0 {
					e.record(name, KindLeave, done)
				}
			case KindTakedown:
				done := 0
				for i := 0; i < ev.Count; i++ {
					if e.target.Leave(rng) {
						done++
					}
				}
				if done > 0 {
					e.record(name, KindTakedown, done)
				}
			}
		})
	}
}
