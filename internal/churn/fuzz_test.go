package churn

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseSpec hunts for churn-spec inputs that panic the parser or
// break its contracts: an accepted spec must validate, must render a
// label safe for task-label embedding (no "/" or ","), and must
// round-trip through JSON back to an equal spec.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"process": "poisson", "join": 4, "leave": 4}`))
	f.Add([]byte(`{"process": "diurnal", "join": 2, "leave": 2, "amplitude": 0.8, "period_h": 24}`))
	f.Add([]byte(`{"process": "takedown", "frac": 0.5, "regions": 4, "at_h": 6}`))
	f.Add([]byte(`{"process": "takedown", "hops": 2, "at_h": 6}`))
	f.Add([]byte(`{"process": "bogus"}`))
	f.Add([]byte(`{"process": "poisson", "leave": 1e308}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Replay specs open the named trace file; feeding the parser
		// fuzzer-chosen paths means unbounded reads (/dev/zero). The
		// trace format itself is fuzzed by FuzzParseTrace.
		if strings.Contains(string(data), "trace_file") {
			t.Skip()
		}
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v\ninput: %q", verr, data)
		}
		label := s.Label()
		if strings.ContainsAny(label, "/,") {
			t.Fatalf("label %q contains a task-label or CSV delimiter\ninput: %q", label, data)
		}
		enc, merr := json.Marshal(s)
		if merr != nil {
			t.Fatalf("accepted spec does not marshal: %v", merr)
		}
		s2, perr := ParseSpec(enc)
		if perr != nil {
			t.Fatalf("re-parse of %s failed: %v", enc, perr)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round-trip changed spec: %+v vs %+v", s, s2)
		}
	})
}

// FuzzParseTrace hunts for trace inputs that panic the parser or break
// the encode/parse fixed point: any accepted trace must survive
// EncodeTrace → ParseTrace unchanged.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte(`[{"at_s": 0, "kind": "join", "count": 3}]`))
	f.Add([]byte(`[{"at_s": 1.5, "kind": "leave", "count": 1}, {"at_s": 2, "kind": "takedown", "count": 4, "size": 2}]`))
	f.Add([]byte(`[{"at_s": 0.0000005, "process": "poisson", "kind": "join", "count": 1}]`))
	f.Add([]byte(`[{"at_s": -1, "kind": "join"}]`))
	f.Add([]byte(`[{"at_s": 2, "kind": "join"}, {"at_s": 1, "kind": "join"}]`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ParseTrace(data)
		if err != nil {
			return
		}
		enc, eerr := EncodeTrace(events)
		if eerr != nil {
			t.Fatalf("accepted trace does not encode: %v", eerr)
		}
		events2, perr := ParseTrace(enc)
		if perr != nil {
			t.Fatalf("re-parse of encoded trace failed: %v\nencoded: %s", perr, enc)
		}
		if !reflect.DeepEqual(events, events2) {
			t.Fatalf("encode/parse is not a fixed point:\n%+v\nvs\n%+v", events, events2)
		}
	})
}
