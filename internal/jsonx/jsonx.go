// Package jsonx sharpens encoding/json decode errors into messages that
// name their own bug. The stdlib reports a malformed document as
// "invalid character 'x' looking for beginning of value" and a
// wrong-typed field as "cannot unmarshal string into Go struct field
// Sweep.ns of type int" — neither says where in a 200-line sweep spec
// the typo lives. Describe converts the byte offset both error kinds
// carry into a line:column position and, for type errors, keeps the
// field path, so a typo'd grid file fails with "line 7, column 14:
// field \"ns\": cannot unmarshal string into int" instead of a generic
// parse error. Every JSON knob surface in the tree (sweep specs, churn/
// soap/faults specs, server job submissions) routes its decode errors
// through here.
package jsonx

import (
	"encoding/json"
	"fmt"
)

// Describe rewraps a json decode error with the line and column the
// offending byte sits at in data. Errors that carry no offset (unknown
// fields, io errors, validation errors) pass through unchanged, so it
// is always safe to wrap a decoder's error.
func Describe(data []byte, err error) error {
	if err == nil {
		return nil
	}
	switch e := err.(type) {
	case *json.SyntaxError:
		line, col := lineCol(data, e.Offset)
		return fmt.Errorf("line %d, column %d: %w", line, col, e)
	case *json.UnmarshalTypeError:
		line, col := lineCol(data, e.Offset)
		field := e.Field
		if field == "" {
			field = "(document)"
		}
		return fmt.Errorf("line %d, column %d: field %q: cannot unmarshal JSON %s into %s",
			line, col, field, e.Value, e.Type)
	default:
		return err
	}
}

// lineCol converts a 1-based byte offset (as json errors report it)
// into 1-based line and column numbers. Offsets past the end of data
// clamp to the final byte, so truncated documents still locate.
func lineCol(data []byte, offset int64) (line, col int) {
	if offset < 1 {
		offset = 1
	}
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:offset-1] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
