package jsonx

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

type specShape struct {
	Name  string `json:"name"`
	Ns    []int  `json:"ns"`
	Quick bool   `json:"quick"`
}

func decode(t *testing.T, doc string) error {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader([]byte(doc)))
	dec.DisallowUnknownFields()
	var s specShape
	return Describe([]byte(doc), dec.Decode(&s))
}

func TestDescribeSyntaxError(t *testing.T) {
	doc := "{\n  \"name\": \"x\",\n  \"ns\": [1, 2,]\n}\n"
	err := decode(t, doc)
	if err == nil {
		t.Fatal("malformed document accepted")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error does not locate line 3: %v", err)
	}
	var syn *json.SyntaxError
	if !errors.As(err, &syn) {
		t.Fatalf("original SyntaxError not wrapped: %v", err)
	}
}

func TestDescribeTypeErrorNamesField(t *testing.T) {
	doc := "{\n  \"name\": \"x\",\n  \"ns\": \"eight hundred\"\n}\n"
	err := decode(t, doc)
	if err == nil {
		t.Fatal("wrong-typed field accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `field "ns"`) || !strings.Contains(msg, "line 3") {
		t.Fatalf("error does not name field and line: %v", err)
	}
}

func TestDescribePassesThroughOtherErrors(t *testing.T) {
	plain := errors.New("boom")
	if got := Describe([]byte("{}"), plain); got != plain {
		t.Fatalf("plain error rewrapped: %v", got)
	}
	// Unknown-field errors carry no offset; they already name the field.
	err := decode(t, `{"nmae": "typo"}`)
	if err == nil || !strings.Contains(err.Error(), "nmae") {
		t.Fatalf("unknown-field error lost: %v", err)
	}
	if Describe(nil, nil) != nil {
		t.Fatal("nil error did not pass through")
	}
}

func TestLineColClamps(t *testing.T) {
	data := []byte("ab\ncd")
	cases := []struct {
		offset    int64
		line, col int
	}{
		{0, 1, 1}, {1, 1, 1}, {2, 1, 2}, {4, 2, 1}, {5, 2, 2}, {99, 2, 2},
	}
	for _, c := range cases {
		line, col := lineCol(data, c.offset)
		if line != c.line || col != c.col {
			t.Errorf("lineCol(%d) = %d:%d, want %d:%d", c.offset, line, col, c.line, c.col)
		}
	}
}
