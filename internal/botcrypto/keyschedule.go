package botcrypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"time"

	"onionbots/internal/tor"
)

// BotKeySize is the size of the per-bot symmetric key K_B shared with
// the botmaster at rally time.
const BotKeySize = 32

// RotationPeriod is the paper's i_p unit: bots derive a fresh .onion
// address per day.
const RotationPeriod = 24 * time.Hour

// PeriodIndex computes i_p, the index of the rotation period containing
// t (measured from the Unix epoch, as the descriptor math is).
func PeriodIndex(t time.Time) uint64 {
	return uint64(t.Unix()) / uint64(RotationPeriod/time.Second)
}

// DeriveIdentity implements the paper's address-rotation recipe,
//
//	generateKey(PK_CC, H(K_B, i_p))
//
// deterministically deriving the bot's hidden-service identity for
// period ip from the key K_B it shares with the botmaster and the
// botmaster's public key. Both sides of the relationship can evaluate
// it: the bot to host its next address, the C&C to dial it.
func DeriveIdentity(masterPub ed25519.PublicKey, kb []byte, ip uint64) *tor.Identity {
	h := sha256.New()
	h.Write([]byte("onionbots-rotate:"))
	h.Write(kb)
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], ip)
	h.Write(idx[:])
	inner := h.Sum(nil)

	h = sha256.New()
	h.Write(masterPub)
	h.Write(inner)
	var seed [32]byte
	copy(seed[:], h.Sum(nil))
	return tor.IdentityFromSeed(seed)
}

// OnionForPeriod is a convenience wrapper returning just the address.
func OnionForPeriod(masterPub ed25519.PublicKey, kb []byte, ip uint64) string {
	return DeriveIdentity(masterPub, kb, ip).Onion()
}
