package botcrypto

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"fmt"

	"onionbots/internal/tor"
)

// BotMaterial is everything crypto-expensive about one bot's birth,
// pre-derived so a churn join pays O(handshake) instead of O(keygen):
// the bot's DRBG (positioned exactly after the birth reads), its shared
// key K_B, the hidden-service identity for one rotation period, the
// sealed rally report {K_B}_PK_CC, and the expanded sealing sessions.
//
// Determinism contract: DeriveBotMaterial consumes the bot DRBG in
// exactly the order the live birth path does — K_B first, then the
// rally seal's ephemeral key, nonce, and padding — and touches no other
// randomness source. A bot built from material is therefore
// byte-indistinguishable from one that derived everything at infection
// time; the only difference is when the work happened.
type BotMaterial struct {
	// DRBG is the bot's private stream, positioned after the K_B and
	// rally-seal reads.
	DRBG *DRBG
	// KB is the per-bot key shared with the botmaster.
	KB []byte
	// Period is the rotation period Identity was derived for. A join
	// landing in a later period must Refresh first.
	Period uint64
	// Identity is the hidden-service identity for Period, with its
	// ESTABLISH_INTRO payload already signed.
	Identity *tor.Identity
	// SealedKB is the rally report body ({K_B}_PK_CC), nil when the
	// material was derived without a C&C to rally with.
	SealedKB []byte
	// NetKey is a private copy of the network-wide sealing key, and
	// NetSeal/KBSeal the expanded sealing sessions for it and K_B.
	NetKey          []byte
	NetSeal, KBSeal *SealKey
}

// DeriveBotMaterial pre-derives one bot's key material. seed is the
// bot's individualizing seed (the same bytes NewBot would receive), ip
// the rotation period to derive the identity for, and masterEncPub the
// C&C encryption key the rally report is sealed to — nil skips the
// rally seal (a bot with no C&C never seals one).
func DeriveBotMaterial(masterSignPub ed25519.PublicKey, masterEncPub *ecdh.PublicKey,
	netKey, seed []byte, ip uint64) (*BotMaterial, error) {
	drbg := NewDRBG(append([]byte("bot:"), seed...))
	m := &BotMaterial{
		DRBG:    drbg,
		KB:      drbg.Bytes(BotKeySize),
		Period:  ip,
		NetKey:  append([]byte(nil), netKey...),
		NetSeal: NewSealKey(netKey),
	}
	m.Identity = DeriveIdentity(masterSignPub, m.KB, ip)
	m.Identity.IntroPayload() // sign the intro binding during warmup
	m.KBSeal = NewSealKey(m.KB)
	if masterEncPub != nil {
		sealed, err := SealToPublic(masterEncPub, m.KB, drbg)
		if err != nil {
			return nil, fmt.Errorf("botcrypto: pre-seal rally report: %w", err)
		}
		m.SealedKB = sealed
	}
	return m, nil
}

// Refresh re-derives the identity for a new rotation period, keeping
// K_B, the DRBG position, and the sealed rally report (none of which
// depend on the period). Pools call it when a pre-derived entry is
// drawn after the period it was warmed for has rolled over.
func (m *BotMaterial) Refresh(masterSignPub ed25519.PublicKey, ip uint64) {
	if ip == m.Period {
		return
	}
	m.Period = ip
	m.Identity = DeriveIdentity(masterSignPub, m.KB, ip)
	m.Identity.IntroPayload()
}
