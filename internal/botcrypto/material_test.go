package botcrypto

import (
	"bytes"
	"crypto/ed25519"
	"testing"
)

// materialTestKeys derives a master signing key and encryption keypair
// from one seeded stream, like NewBotmaster does.
func materialTestKeys(t *testing.T, seed string) (ed25519.PublicKey, *EncryptionKeyPair) {
	t.Helper()
	drbg := NewDRBG([]byte(seed))
	signPub, _, err := ed25519.GenerateKey(drbg)
	if err != nil {
		t.Fatal(err)
	}
	kp, err := NewEncryptionKeyPair(drbg)
	if err != nil {
		t.Fatal(err)
	}
	return signPub, kp
}

// TestBotMaterialMatchesLiveDerivation pins the determinism contract:
// material pre-derivation consumes the bot DRBG exactly like the live
// birth path (K_B, then the rally seal), leaving the stream at the same
// position with the same values.
func TestBotMaterialMatchesLiveDerivation(t *testing.T) {
	signPub, kp := materialTestKeys(t, "material-master")
	seed := []byte("bot-7-42")

	// Live path: the reads NewBot and reportToCC perform, in order.
	live := NewDRBG(append([]byte("bot:"), seed...))
	liveKB := live.Bytes(BotKeySize)
	liveSealed, err := SealToPublic(kp.Pub, liveKB, live)
	if err != nil {
		t.Fatal(err)
	}
	liveNext := live.Bytes(16) // the first post-rally read (a msg id)

	mat, err := DeriveBotMaterial(signPub, kp.Pub, []byte("netkey-material"), seed, 19000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mat.KB, liveKB) {
		t.Fatal("pooled K_B differs from live derivation")
	}
	if !bytes.Equal(mat.SealedKB, liveSealed) {
		t.Fatal("pooled rally seal differs from live derivation")
	}
	if got := mat.DRBG.Bytes(16); !bytes.Equal(got, liveNext) {
		t.Fatal("DRBG position after material derivation differs from live path")
	}
	if opened, err := OpenWithPrivate(kp.Priv, mat.SealedKB); err != nil || !bytes.Equal(opened, mat.KB) {
		t.Fatalf("master cannot open pooled rally seal: %v", err)
	}
	want := DeriveIdentity(signPub, mat.KB, 19000)
	if mat.Identity.Onion() != want.Onion() {
		t.Fatalf("pooled identity %s, want %s", mat.Identity.Onion(), want.Onion())
	}
}

func TestBotMaterialRefreshTracksPeriod(t *testing.T) {
	signPub, kp := materialTestKeys(t, "material-refresh")
	mat, err := DeriveBotMaterial(signPub, kp.Pub, []byte("nk"), []byte("bot-1-1"), 100)
	if err != nil {
		t.Fatal(err)
	}
	oldOnion := mat.Identity.Onion()
	kb := append([]byte(nil), mat.KB...)
	sealed := append([]byte(nil), mat.SealedKB...)

	mat.Refresh(signPub, 100) // same period: no-op
	if mat.Identity.Onion() != oldOnion {
		t.Fatal("same-period refresh changed the identity")
	}
	mat.Refresh(signPub, 101)
	if mat.Identity.Onion() == oldOnion {
		t.Fatal("refresh did not advance the identity")
	}
	if mat.Identity.Onion() != DeriveIdentity(signPub, kb, 101).Onion() {
		t.Fatal("refreshed identity is not the period-101 derivation")
	}
	if !bytes.Equal(mat.KB, kb) || !bytes.Equal(mat.SealedKB, sealed) {
		t.Fatal("refresh touched period-independent material")
	}
}

// TestBotMaterialWithoutCC pins that a C&C-less derivation performs no
// seal read, mirroring reportToCC's early return.
func TestBotMaterialWithoutCC(t *testing.T) {
	signPub, _ := materialTestKeys(t, "material-nocc")
	seed := []byte("bot-3-3")
	mat, err := DeriveBotMaterial(signPub, nil, []byte("nk"), seed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mat.SealedKB != nil {
		t.Fatal("C&C-less material carries a rally seal")
	}
	ref := NewDRBG(append([]byte("bot:"), seed...))
	ref.Bytes(BotKeySize)
	if !bytes.Equal(mat.DRBG.Bytes(8), ref.Bytes(8)) {
		t.Fatal("C&C-less derivation moved the DRBG past the K_B read")
	}
}
