package botcrypto

import (
	"bytes"
	"crypto/ed25519"
	"testing"
)

// Key generation must consume a fixed number of DRBG bytes: the stdlib
// ecdh GenerateKey inserts a randomized zero-or-one-byte read
// (randutil.MaybeReadByte), which once made every byte the botmaster's
// DRBG handed out after X25519 keygen — its network key, its identity
// seed, and therefore the C&C onion address and the whole simulation —
// differ run to run on a coin flip. The churn-hotlist experiment
// exposed it: the C&C's descriptor-rollover hour depends on its
// service id, so the flip moved a protocol-visible outage window.
func TestEncryptionKeyPairDeterministicFromDRBG(t *testing.T) {
	gen := func() ([]byte, []byte) {
		d := NewDRBG([]byte("keygen-det"))
		kp, err := NewEncryptionKeyPair(d)
		if err != nil {
			t.Fatal(err)
		}
		// The next read exposes the DRBG position: it shifts if keygen
		// consumed a variable byte count.
		return kp.Pub.Bytes(), d.Bytes(32)
	}
	pub0, next0 := gen()
	for i := 0; i < 32; i++ {
		pub, next := gen()
		if !bytes.Equal(pub, pub0) {
			t.Fatalf("X25519 keypair differs on rerun %d", i)
		}
		if !bytes.Equal(next, next0) {
			t.Fatalf("DRBG position differs after keygen on rerun %d", i)
		}
	}
}

func TestSealToPublicDeterministicFromDRBG(t *testing.T) {
	recipient, err := NewEncryptionKeyPair(NewDRBG([]byte("recipient")))
	if err != nil {
		t.Fatal(err)
	}
	seal := func() []byte {
		d := NewDRBG([]byte("sealer"))
		out, err := SealToPublic(recipient.Pub, []byte("K_B material here, 32 bytes long"), d)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := seal()
	for i := 0; i < 32; i++ {
		if !bytes.Equal(seal(), first) {
			t.Fatalf("SealToPublic output differs on rerun %d (ephemeral keygen leaked stdlib randomness)", i)
		}
	}
}

func TestEd25519KeygenDeterministicFromDRBG(t *testing.T) {
	gen := func() ed25519.PublicKey {
		pub, _, err := ed25519.GenerateKey(NewDRBG([]byte("ed-det")))
		if err != nil {
			t.Fatal(err)
		}
		return pub
	}
	first := gen()
	for i := 0; i < 32; i++ {
		if !bytes.Equal(gen(), first) {
			t.Fatalf("ed25519.GenerateKey nondeterministic on rerun %d — wrap it like x25519KeyFrom", i)
		}
	}
}
