// Package botcrypto implements the cryptographic building blocks of the
// OnionBot reference design (Sections IV-D and IV-E):
//
//   - a deterministic byte stream (DRBG) for reproducible key derivation;
//   - the shared-key address schedule generateKey(PK_CC, H(K_B, i_p)),
//     which lets a bot rotate its .onion address every period while the
//     botmaster can still derive where to find it;
//   - ECIES-style public-key sealing ({K_B}_PK_CC — how a bot reports
//     its key to the C&C at rally time);
//   - fixed-size, uniform-looking sealed cells for all bot-to-bot
//     traffic, so relaying bots can distinguish neither the source, nor
//     the destination, nor the nature of a message;
//   - group keys for encrypted multicast;
//   - botnet-for-rent tokens: master-signed renter certificates with an
//     expiry and a command whitelist;
//   - replay protection (timestamp window plus nonce cache), the
//     property Table I shows every 2015-era botnet lacked.
//
// The sibling package legacy implements the Table I ciphers and the
// audits that demonstrate their weaknesses.
//
// # Sessions
//
// Seal/Open derive their sub-keys from the caller's secret on every
// call, which is the dominant fixed cost when one key seals millions of
// messages in a simulation run. SealKey precomputes that session state
// once — derived encryption and MAC keys, the expanded AES schedule,
// the HMAC instance — and exposes the same wire format through
// Seal/SealSized/Open/OpenSized methods plus SealSizedInto for sealing
// into a caller-provided buffer. The package-level functions remain as
// thin one-shot wrappers; hot paths (bots, the botmaster, SOAP clones,
// SuperOnion hosts) hold SealKey sessions for their long-lived keys.
//
// # Identity pooling
//
// DeriveBotMaterial pre-computes everything crypto-expensive about one
// bot's birth — K_B, the per-period hidden-service identity with its
// intro payload signed, the sealed rally report, the expanded sealing
// sessions — consuming the bot's DRBG in exactly the order the live
// birth path does, so core.IdentityPool can batch the work ahead of
// churn joins without changing a single output byte.
package botcrypto
