package botcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
)

// SealKey is a precomputed sealing session: the encryption and MAC keys
// derived from one secret, with the AES key schedule expanded and the
// HMAC state allocated once. Sealing and opening under a SealKey produce
// byte-identical wire cells to the package-level Seal/Open but skip the
// per-call key derivation (two SHA-256 passes), AES key expansion, and
// HMAC construction — the dominant fixed costs on the simulator's data
// plane, where every bot reuses the same network key for every message.
//
// A SealKey owns internal scratch buffers and is therefore not safe for
// concurrent use. The simulator is single-threaded per run; callers that
// share a key across goroutines must use one SealKey per goroutine or
// fall back to the package-level functions.
type SealKey struct {
	block cipher.Block
	mac   hash.Hash // HMAC-SHA256 under the derived MAC key, Reset per use
	inner []byte    // plaintext framing scratch, grown to the largest size seen
	sum   []byte    // MAC output scratch
}

// NewSealKey derives the session keys for key and precomputes the cipher
// and MAC state.
func NewSealKey(key []byte) *SealKey {
	encKey, macKey := deriveSealKeys(key)
	block, err := aes.NewCipher(encKey)
	if err != nil {
		// Derived keys are always 32 bytes; failure is programmer error.
		panic("botcrypto: bad derived key: " + err.Error())
	}
	return &SealKey{
		block: block,
		mac:   hmac.New(sha256.New, macKey),
		sum:   make([]byte, 0, tagSize),
	}
}

// Seal is the session form of the package-level Seal.
func (k *SealKey) Seal(msg []byte, random io.Reader) ([]byte, error) {
	return k.SealSized(msg, SealedSize, random)
}

// SealSized is the session form of the package-level SealSized.
func (k *SealKey) SealSized(msg []byte, size int, random io.Reader) ([]byte, error) {
	out := make([]byte, size)
	if err := k.SealSizedInto(out, msg, random); err != nil {
		return nil, err
	}
	return out, nil
}

// SealSizedInto seals msg into the caller-provided cell out, whose
// length fixes the sealed size. The only allocation left is whatever the
// random source performs.
func (k *SealKey) SealSizedInto(out, msg []byte, random io.Reader) error {
	size := len(out)
	if size < sealOverhead+1 {
		return fmt.Errorf("%w: %d", ErrBadSealSize, size)
	}
	if len(msg) > MaxPlaintextFor(size) {
		return fmt.Errorf("%w: %d > %d", ErrPlaintextTooLarge, len(msg), MaxPlaintextFor(size))
	}
	nonce := out[:nonceSize]
	if _, err := io.ReadFull(random, nonce); err != nil {
		return fmt.Errorf("botcrypto: nonce: %w", err)
	}

	inner := k.scratch(size - nonceSize - tagSize)
	binary.BigEndian.PutUint16(inner[:lenSize], uint16(len(msg)))
	copy(inner[lenSize:], msg)
	if _, err := io.ReadFull(random, inner[lenSize+len(msg):]); err != nil {
		return fmt.Errorf("botcrypto: padding: %w", err)
	}
	cipher.NewCTR(k.block, nonce).XORKeyStream(out[nonceSize:nonceSize+len(inner)], inner)

	k.mac.Reset()
	k.mac.Write(out[:size-tagSize])
	copy(out[size-tagSize:], k.mac.Sum(k.sum[:0]))
	return nil
}

// Open is the session form of the package-level Open.
func (k *SealKey) Open(sealed []byte) ([]byte, error) {
	return k.OpenSized(sealed, SealedSize)
}

// OpenSized is the session form of the package-level OpenSized.
func (k *SealKey) OpenSized(sealed []byte, size int) ([]byte, error) {
	inner, err := k.openScratch(sealed, size)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), inner...), nil
}

// OpenSizedInto authenticates and decrypts sealed, appending the
// plaintext to dst and returning the extended slice.
func (k *SealKey) OpenSizedInto(dst, sealed []byte, size int) ([]byte, error) {
	inner, err := k.openScratch(sealed, size)
	if err != nil {
		return nil, err
	}
	return append(dst, inner...), nil
}

// openScratch does the work of OpenSized, returning the plaintext inside
// k's scratch buffer (valid until the next operation on k).
func (k *SealKey) openScratch(sealed []byte, size int) ([]byte, error) {
	if size < sealOverhead+1 {
		return nil, fmt.Errorf("%w: %d", ErrBadSealSize, size)
	}
	if len(sealed) != size {
		return nil, fmt.Errorf("%w: size %d, want %d", ErrSealCorrupt, len(sealed), size)
	}
	k.mac.Reset()
	k.mac.Write(sealed[:size-tagSize])
	if !hmac.Equal(k.mac.Sum(k.sum[:0]), sealed[size-tagSize:]) {
		return nil, ErrSealCorrupt
	}

	nonce := sealed[:nonceSize]
	body := sealed[nonceSize : size-tagSize]
	inner := k.scratch(len(body))
	cipher.NewCTR(k.block, nonce).XORKeyStream(inner, body)

	n := binary.BigEndian.Uint16(inner[:lenSize])
	if int(n) > MaxPlaintextFor(size) {
		return nil, fmt.Errorf("%w: bad inner length %d", ErrSealCorrupt, n)
	}
	return inner[lenSize : lenSize+int(n)], nil
}

// scratch returns k's reusable buffer resized to n bytes.
func (k *SealKey) scratch(n int) []byte {
	if cap(k.inner) < n {
		k.inner = make([]byte, n)
	}
	return k.inner[:n]
}
