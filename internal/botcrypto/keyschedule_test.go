package botcrypto

import (
	"bytes"
	"crypto/ed25519"
	"testing"
	"time"
)

func testMasterKeys(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(NewDRBG([]byte("master")))
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestDeriveIdentityBothSidesAgree(t *testing.T) {
	masterPub, _ := testMasterKeys(t)
	kb := NewDRBG([]byte("bot kb")).Bytes(BotKeySize)

	// The bot derives its address for period 100; the C&C, holding
	// K_B, derives the same address independently.
	botSide := DeriveIdentity(masterPub, kb, 100)
	ccSide := DeriveIdentity(masterPub, kb, 100)
	if botSide.Onion() != ccSide.Onion() {
		t.Fatal("bot and C&C derived different addresses for the same period")
	}
	if !bytes.Equal(botSide.Priv, ccSide.Priv) {
		t.Fatal("derived private keys differ")
	}
}

func TestDeriveIdentityRotates(t *testing.T) {
	masterPub, _ := testMasterKeys(t)
	kb := NewDRBG([]byte("bot kb")).Bytes(BotKeySize)
	seen := map[string]bool{}
	for ip := uint64(0); ip < 30; ip++ {
		onion := OnionForPeriod(masterPub, kb, ip)
		if seen[onion] {
			t.Fatalf("address repeated at period %d", ip)
		}
		seen[onion] = true
	}
}

func TestDeriveIdentityIsolatedPerBot(t *testing.T) {
	masterPub, _ := testMasterKeys(t)
	a := NewDRBG([]byte("bot a")).Bytes(BotKeySize)
	b := NewDRBG([]byte("bot b")).Bytes(BotKeySize)
	if OnionForPeriod(masterPub, a, 5) == OnionForPeriod(masterPub, b, 5) {
		t.Fatal("different bots derived the same address")
	}
}

func TestDeriveIdentityBindsMasterKey(t *testing.T) {
	pubA, _, _ := ed25519.GenerateKey(NewDRBG([]byte("m1")))
	pubB, _, _ := ed25519.GenerateKey(NewDRBG([]byte("m2")))
	kb := NewDRBG([]byte("kb")).Bytes(BotKeySize)
	if OnionForPeriod(pubA, kb, 1) == OnionForPeriod(pubB, kb, 1) {
		t.Fatal("address schedule ignores the master public key")
	}
}

func TestPeriodIndex(t *testing.T) {
	base := time.Date(2015, 1, 14, 0, 0, 0, 0, time.UTC)
	p0 := PeriodIndex(base)
	if PeriodIndex(base.Add(23*time.Hour)) != p0 {
		t.Fatal("period changed within a day")
	}
	if PeriodIndex(base.Add(25*time.Hour)) != p0+1 {
		t.Fatal("period did not advance after a day")
	}
}

func TestECIESRoundTrip(t *testing.T) {
	cc, err := NewEncryptionKeyPair(NewDRBG([]byte("cc enc")))
	if err != nil {
		t.Fatal(err)
	}
	kb := NewDRBG([]byte("kb")).Bytes(BotKeySize)
	rng := NewDRBG([]byte("eph"))

	// Rally: bot seals K_B to the C&C's public key.
	sealed, err := SealToPublic(cc.Pub, kb, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenWithPrivate(cc.Priv, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, kb) {
		t.Fatal("C&C recovered wrong K_B")
	}
}

func TestECIESRejectsWrongKeyAndTampering(t *testing.T) {
	cc, _ := NewEncryptionKeyPair(NewDRBG([]byte("cc enc")))
	mallory, _ := NewEncryptionKeyPair(NewDRBG([]byte("mallory")))
	rng := NewDRBG([]byte("eph"))
	sealed, err := SealToPublic(cc.Pub, []byte("K_B"), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWithPrivate(mallory.Priv, sealed); err == nil {
		t.Fatal("wrong private key opened the rally message")
	}
	bad := append([]byte(nil), sealed...)
	bad[40] ^= 1
	if _, err := OpenWithPrivate(cc.Priv, bad); err == nil {
		t.Fatal("tampered rally message accepted")
	}
	if _, err := OpenWithPrivate(cc.Priv, sealed[:50]); err == nil {
		t.Fatal("truncated rally message accepted")
	}
}
