package botcrypto

import (
	"crypto/sha256"
	"errors"
	"io"
)

// SealedSize is the fixed wire size of every sealed message. Everything
// a bot sends — peering requests, maintenance, commands, reports — is
// exactly this many bytes of uniformly distributed ciphertext, so a
// relaying bot (or a network observer inside Tor) learns nothing from
// size or content. The value fits within a single 512-byte Tor cell.
const SealedSize = 480

const (
	nonceSize = 16
	tagSize   = 32 // HMAC-SHA256
	lenSize   = 2
)

// MaxSealedPlaintext is the usable plaintext capacity per sealed cell.
const MaxSealedPlaintext = SealedSize - sealOverhead

// sealOverhead is the fixed cost of the nonce, tag and length field.
const sealOverhead = nonceSize + tagSize + lenSize

// Sealing errors.
var (
	ErrPlaintextTooLarge = errors.New("botcrypto: plaintext exceeds sealed capacity")
	ErrSealCorrupt       = errors.New("botcrypto: sealed message failed authentication")
	ErrBadSealSize       = errors.New("botcrypto: sealed size too small")
)

// MaxPlaintextFor reports the plaintext capacity of a sealed cell of the
// given total size (negative if size cannot even hold the overhead).
func MaxPlaintextFor(size int) int { return size - sealOverhead }

// Seal encrypts msg under key into a fixed-size, uniform-looking cell:
//
//	nonce(16) || AES-256-CTR(len(2) || msg || random padding) || HMAC(32)
//
// The length field and padding are inside the ciphertext, so the wire
// form leaks nothing but the constant size. random supplies the nonce
// and padding.
func Seal(key []byte, msg []byte, random io.Reader) ([]byte, error) {
	return SealSized(key, msg, SealedSize, random)
}

// SealSized is Seal with an explicit total size, for protocols that
// nest sealed cells (a directed command sealed to its target rides
// inside a network-sealed envelope and must be smaller). One-shot
// callers pay the full key derivation per call; hot paths should hold a
// SealKey instead.
func SealSized(key, msg []byte, size int, random io.Reader) ([]byte, error) {
	return NewSealKey(key).SealSized(msg, size, random)
}

// Open authenticates and decrypts a standard-size sealed cell.
func Open(key []byte, sealed []byte) ([]byte, error) {
	return OpenSized(key, sealed, SealedSize)
}

// OpenSized reverses SealSized.
func OpenSized(key, sealed []byte, size int) ([]byte, error) {
	return NewSealKey(key).OpenSized(sealed, size)
}

// deriveSealKeys splits one secret into independent encryption and MAC
// keys.
func deriveSealKeys(key []byte) (encKey, macKey []byte) {
	e := sha256.Sum256(append([]byte("onionbots-enc:"), key...))
	m := sha256.Sum256(append([]byte("onionbots-mac:"), key...))
	return e[:], m[:]
}
