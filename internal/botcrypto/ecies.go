package botcrypto

import (
	"crypto/ecdh"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// ErrECIES reports a public-key sealing failure.
var ErrECIES = errors.New("botcrypto: public-key sealing failed")

// eciesSealedSize is the symmetric-seal size inside a public-key-sealed
// blob. It is compact (rally reports carry only a 32-byte key) so the
// whole blob still nests inside a network envelope.
const eciesSealedSize = 128

// ECIESSize is the total wire size of a SealToPublic blob.
const ECIESSize = 32 + eciesSealedSize

// EncryptionKeyPair is an X25519 keypair used for sealing messages to a
// party (the paper's {K_B}_PK_CC at rally time).
type EncryptionKeyPair struct {
	Priv *ecdh.PrivateKey
	Pub  *ecdh.PublicKey
}

// NewEncryptionKeyPair derives a keypair from the given entropy source.
// The seed is read explicitly rather than through ecdh's GenerateKey:
// the stdlib inserts a randomized zero-or-one-byte read
// (randutil.MaybeReadByte) before consuming the seed, which would make
// every byte a seeded DRBG hands out afterwards — and therefore whole
// simulation runs — differ run to run on a coin flip.
func NewEncryptionKeyPair(random io.Reader) (*EncryptionKeyPair, error) {
	priv, err := x25519KeyFrom(random)
	if err != nil {
		return nil, fmt.Errorf("botcrypto: X25519 keygen: %w", err)
	}
	return &EncryptionKeyPair{Priv: priv, Pub: priv.PublicKey()}, nil
}

// x25519KeyFrom reads exactly 32 bytes from random and forms an X25519
// private key — GenerateKey minus the deliberate stdlib nondeterminism.
func x25519KeyFrom(random io.Reader) (*ecdh.PrivateKey, error) {
	seed := make([]byte, 32)
	if _, err := io.ReadFull(random, seed); err != nil {
		return nil, err
	}
	return ecdh.X25519().NewPrivateKey(seed)
}

// SealToPublic encrypts msg so only the holder of pub's private key can
// read it: an ephemeral X25519 exchange, then a symmetric Seal. The
// output is ephemeralPub(32) || SealedSize bytes; like every sealed
// cell, it is indistinguishable from random on the wire.
func SealToPublic(pub *ecdh.PublicKey, msg []byte, random io.Reader) ([]byte, error) {
	eph, err := x25519KeyFrom(random)
	if err != nil {
		return nil, fmt.Errorf("%w: ephemeral keygen: %v", ErrECIES, err)
	}
	shared, err := eph.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrECIES, err)
	}
	key := sha256.Sum256(append([]byte("onionbots-ecies:"), shared...))
	sealed, err := SealSized(key[:], msg, eciesSealedSize, random)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, ECIESSize)
	out = append(out, eph.PublicKey().Bytes()...)
	out = append(out, sealed...)
	return out, nil
}

// OpenWithPrivate reverses SealToPublic.
func OpenWithPrivate(priv *ecdh.PrivateKey, sealed []byte) ([]byte, error) {
	if len(sealed) != ECIESSize {
		return nil, fmt.Errorf("%w: size %d", ErrECIES, len(sealed))
	}
	ephPub, err := ecdh.X25519().NewPublicKey(sealed[:32])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrECIES, err)
	}
	shared, err := priv.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrECIES, err)
	}
	key := sha256.Sum256(append([]byte("onionbots-ecies:"), shared...))
	return OpenSized(key[:], sealed[32:], eciesSealedSize)
}
