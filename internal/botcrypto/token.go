package botcrypto

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Section IV-E: botnet-for-rent. Trudy (the renter) sends her public
// key to Mallory (the botmaster), who signs a token containing the key,
// an expiration time, and a whitelist of commands. Bots verify rented
// commands against the token chain: master signature on the token,
// renter signature on the command, expiry, and whitelist membership.

// Token errors.
var (
	ErrTokenForged    = errors.New("botcrypto: token signature invalid")
	ErrTokenExpired   = errors.New("botcrypto: token expired")
	ErrCmdNotAllowed  = errors.New("botcrypto: command not whitelisted")
	ErrCmdForged      = errors.New("botcrypto: command signature invalid")
	ErrTokenMalformed = errors.New("botcrypto: token malformed")
)

// Token is a master-signed rental certificate.
type Token struct {
	// RenterPub is the renter's Ed25519 verification key.
	RenterPub ed25519.PublicKey
	// Expiry is the rental contract end.
	Expiry time.Time
	// Whitelist is the sorted set of command names the renter may issue.
	Whitelist []string
	// Sig is the master's signature over the canonical encoding.
	Sig []byte
}

func (t *Token) signingBytes() []byte {
	buf := append([]byte("onionbots-token:"), t.RenterPub...)
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(t.Expiry.Unix()))
	buf = append(buf, ts[:]...)
	for _, c := range t.Whitelist {
		var n [2]byte
		binary.BigEndian.PutUint16(n[:], uint16(len(c)))
		buf = append(buf, n[:]...)
		buf = append(buf, c...)
	}
	return buf
}

// IssueToken creates and signs a rental token. The whitelist is
// normalized (sorted, deduplicated) before signing so verification is
// canonical.
func IssueToken(masterPriv ed25519.PrivateKey, renterPub ed25519.PublicKey,
	expiry time.Time, whitelist []string) *Token {
	wl := append([]string(nil), whitelist...)
	sort.Strings(wl)
	dedup := wl[:0]
	for i, c := range wl {
		if i == 0 || c != wl[i-1] {
			dedup = append(dedup, c)
		}
	}
	t := &Token{
		RenterPub: append(ed25519.PublicKey(nil), renterPub...),
		Expiry:    expiry,
		Whitelist: dedup,
	}
	t.Sig = ed25519.Sign(masterPriv, t.signingBytes())
	return t
}

// Verify checks the master signature and expiry.
func (t *Token) Verify(masterPub ed25519.PublicKey, now time.Time) error {
	if len(t.RenterPub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: renter key size %d", ErrTokenMalformed, len(t.RenterPub))
	}
	if !ed25519.Verify(masterPub, t.signingBytes(), t.Sig) {
		return ErrTokenForged
	}
	if now.After(t.Expiry) {
		return fmt.Errorf("%w: at %v", ErrTokenExpired, t.Expiry)
	}
	return nil
}

// Allows reports whether the token whitelists the command.
func (t *Token) Allows(cmd string) bool {
	i := sort.SearchStrings(t.Whitelist, cmd)
	return i < len(t.Whitelist) && t.Whitelist[i] == cmd
}

// RentedCommand is a command issued by a renter under a token.
type RentedCommand struct {
	Name     string
	Args     []byte
	IssuedAt time.Time
	Nonce    [16]byte
	Token    *Token
	Sig      []byte // renter's signature
}

func (c *RentedCommand) signingBytes() []byte {
	buf := append([]byte("onionbots-rented-cmd:"), c.Name...)
	buf = append(buf, 0)
	buf = append(buf, c.Args...)
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(c.IssuedAt.Unix()))
	buf = append(buf, ts[:]...)
	buf = append(buf, c.Nonce[:]...)
	return buf
}

// SignRentedCommand issues a command under the renter's key.
func SignRentedCommand(renterPriv ed25519.PrivateKey, token *Token,
	name string, args []byte, issuedAt time.Time, nonce [16]byte) *RentedCommand {
	c := &RentedCommand{
		Name:     name,
		Args:     append([]byte(nil), args...),
		IssuedAt: issuedAt,
		Nonce:    nonce,
		Token:    token,
	}
	c.Sig = ed25519.Sign(renterPriv, c.signingBytes())
	return c
}

// AuthorizeRented performs the full bot-side check of a rented command:
// token chain, expiry, whitelist, and the renter's signature.
func AuthorizeRented(masterPub ed25519.PublicKey, c *RentedCommand, now time.Time) error {
	if c.Token == nil {
		return ErrTokenMalformed
	}
	if err := c.Token.Verify(masterPub, now); err != nil {
		return err
	}
	if !c.Token.Allows(c.Name) {
		return fmt.Errorf("%w: %q", ErrCmdNotAllowed, c.Name)
	}
	if !ed25519.Verify(c.Token.RenterPub, c.signingBytes(), c.Sig) {
		return ErrCmdForged
	}
	return nil
}
