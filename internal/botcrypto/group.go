package botcrypto

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// ErrUnknownGroup reports a group id with no key in the ring.
var ErrUnknownGroup = errors.New("botcrypto: unknown group")

// GroupKeyring holds the group keys a bot has been issued. The
// botmaster can set up group keys to address encrypted messages to a
// subset of bots (Section IV-D); bots outside the group see sealed
// bytes they cannot open — indistinguishable from any other traffic.
type GroupKeyring struct {
	keys map[string][]byte
}

// NewGroupKeyring returns an empty ring.
func NewGroupKeyring() *GroupKeyring {
	return &GroupKeyring{keys: make(map[string][]byte)}
}

// Add installs (or replaces) the key for a group.
func (r *GroupKeyring) Add(group string, key []byte) {
	r.keys[group] = append([]byte(nil), key...)
}

// Remove forgets a group key.
func (r *GroupKeyring) Remove(group string) { delete(r.keys, group) }

// Groups lists group ids, sorted.
func (r *GroupKeyring) Groups() []string {
	out := make([]string, 0, len(r.keys))
	for g := range r.keys {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// SealFor encrypts msg under the named group's key.
func (r *GroupKeyring) SealFor(group string, msg []byte, random io.Reader) ([]byte, error) {
	key, ok := r.keys[group]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGroup, group)
	}
	return Seal(key, msg, random)
}

// TryOpen attempts to open a sealed cell with every group key, returning
// the plaintext and the matching group. This is how a receiving bot
// decides whether a broadcast concerns it: trial decryption, with no
// cleartext group label on the wire.
func (r *GroupKeyring) TryOpen(sealed []byte) (msg []byte, group string, err error) {
	return r.TryOpenSized(sealed, SealedSize)
}

// TryOpenSized is TryOpen for non-default seal sizes (nested group
// payloads inside envelopes use a compact size).
func (r *GroupKeyring) TryOpenSized(sealed []byte, size int) (msg []byte, group string, err error) {
	for _, g := range r.Groups() {
		if m, e := OpenSized(r.keys[g], sealed, size); e == nil {
			return m, g, nil
		}
	}
	return nil, "", ErrSealCorrupt
}

// SealForSized is SealFor with an explicit total size.
func (r *GroupKeyring) SealForSized(group string, msg []byte, size int, random io.Reader) ([]byte, error) {
	key, ok := r.keys[group]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGroup, group)
	}
	return SealSized(key, msg, size, random)
}
