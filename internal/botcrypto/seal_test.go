package botcrypto

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key := []byte("test key material")
	rng := NewDRBG([]byte("nonce source"))
	for _, msg := range [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("attack at dawn"),
		bytes.Repeat([]byte("A"), MaxSealedPlaintext),
	} {
		sealed, err := Seal(key, msg, rng)
		if err != nil {
			t.Fatalf("Seal(%d bytes): %v", len(msg), err)
		}
		if len(sealed) != SealedSize {
			t.Fatalf("sealed size = %d, want %d", len(sealed), SealedSize)
		}
		got, err := Open(key, sealed)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip: got %d bytes, want %d", len(got), len(msg))
		}
	}
}

func TestSealRejectsOversized(t *testing.T) {
	rng := NewDRBG([]byte("r"))
	_, err := Seal([]byte("k"), make([]byte, MaxSealedPlaintext+1), rng)
	if !errors.Is(err, ErrPlaintextTooLarge) {
		t.Fatalf("error = %v, want ErrPlaintextTooLarge", err)
	}
}

func TestOpenRejectsTamperingAnywhere(t *testing.T) {
	key := []byte("k")
	rng := NewDRBG([]byte("r"))
	sealed, err := Seal(key, []byte("integrity matters"), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, nonceSize, SealedSize / 2, SealedSize - 1} {
		bad := append([]byte(nil), sealed...)
		bad[pos] ^= 0x01
		if _, err := Open(key, bad); !errors.Is(err, ErrSealCorrupt) {
			t.Fatalf("flip at %d: error = %v, want ErrSealCorrupt", pos, err)
		}
	}
}

func TestOpenRejectsWrongKeyAndSize(t *testing.T) {
	rng := NewDRBG([]byte("r"))
	sealed, err := Seal([]byte("right"), []byte("msg"), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open([]byte("wrong"), sealed); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("wrong key error = %v, want ErrSealCorrupt", err)
	}
	if _, err := Open([]byte("right"), sealed[:100]); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("short input error = %v, want ErrSealCorrupt", err)
	}
}

func TestSealedCellsAllSameSizeRegardlessOfContent(t *testing.T) {
	// The fixed-size property: a 0-byte maintenance ping and a
	// 400-byte command are indistinguishable by size.
	key := []byte("k")
	rng := NewDRBG([]byte("r"))
	a, err := Seal(key, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Seal(key, bytes.Repeat([]byte("C"), 400), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
}

func TestSealWireUniformity(t *testing.T) {
	// Chi-square test over byte values of many sealed cells. The wire
	// form must look uniform (the Elligator-style property the paper
	// wants): no relaying bot can tell message types apart.
	key := []byte("uniformity key")
	rng := NewDRBG([]byte("uniformity nonce"))
	counts := make([]float64, 256)
	total := 0
	for i := 0; i < 200; i++ {
		sealed, err := Seal(key, []byte("identical message every time"), rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range sealed {
			counts[b]++
			total++
		}
	}
	expected := float64(total) / 256
	chi2 := 0.0
	for _, c := range counts {
		d := c - expected
		chi2 += d * d / expected
	}
	// 255 degrees of freedom: mean 255, stddev ~22.6. Accept within
	// ~6 sigma; a biased wire format (e.g. cleartext headers) blows far
	// past this.
	if chi2 > 255+6*math.Sqrt(2*255) {
		t.Fatalf("chi-square = %.1f, wire bytes are not uniform", chi2)
	}
}

func TestSealNoncesVary(t *testing.T) {
	key := []byte("k")
	rng := NewDRBG([]byte("r"))
	a, _ := Seal(key, []byte("same"), rng)
	b, _ := Seal(key, []byte("same"), rng)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same message are identical (nonce reuse)")
	}
}

func TestSealPropertyRoundTrip(t *testing.T) {
	key := []byte("prop key")
	rng := NewDRBG([]byte("prop nonce"))
	err := quick.Check(func(msg []byte) bool {
		if len(msg) > MaxSealedPlaintext {
			msg = msg[:MaxSealedPlaintext]
		}
		sealed, err := Seal(key, msg, rng)
		if err != nil {
			return false
		}
		got, err := Open(key, sealed)
		return err == nil && bytes.Equal(got, msg)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDRBGDeterministicAndDiverse(t *testing.T) {
	a := NewDRBG([]byte("seed")).Bytes(1024)
	b := NewDRBG([]byte("seed")).Bytes(1024)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := NewDRBG([]byte("other")).Bytes(1024)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
	distinct := map[byte]bool{}
	for _, v := range a {
		distinct[v] = true
	}
	if len(distinct) < 200 {
		t.Fatalf("DRBG output has only %d distinct byte values", len(distinct))
	}
}

func TestDRBGReadSizes(t *testing.T) {
	d := NewDRBG([]byte("sizes"))
	joined := append(append(append([]byte(nil), d.Bytes(1)...), d.Bytes(31)...), d.Bytes(64)...)
	whole := NewDRBG([]byte("sizes")).Bytes(96)
	if !bytes.Equal(joined, whole) {
		t.Fatal("chunked reads diverge from a single read")
	}
}

func BenchmarkSeal(b *testing.B) {
	key := []byte("bench key")
	rng := NewDRBG([]byte("bench nonce"))
	msg := bytes.Repeat([]byte("m"), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(key, msg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen(b *testing.B) {
	key := []byte("bench key")
	rng := NewDRBG([]byte("bench nonce"))
	sealed, err := Seal(key, bytes.Repeat([]byte("m"), 256), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(key, sealed); err != nil {
			b.Fatal(err)
		}
	}
}
