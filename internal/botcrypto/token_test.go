package botcrypto

import (
	"crypto/ed25519"
	"errors"
	"testing"
	"time"
)

func rentalFixtures(t *testing.T) (masterPub ed25519.PublicKey, masterPriv ed25519.PrivateKey,
	renterPub ed25519.PublicKey, renterPriv ed25519.PrivateKey) {
	t.Helper()
	masterPub, masterPriv, err := ed25519.GenerateKey(NewDRBG([]byte("mallory")))
	if err != nil {
		t.Fatal(err)
	}
	renterPub, renterPriv, err = ed25519.GenerateKey(NewDRBG([]byte("trudy")))
	if err != nil {
		t.Fatal(err)
	}
	return masterPub, masterPriv, renterPub, renterPriv
}

func TestRentalHappyPath(t *testing.T) {
	masterPub, masterPriv, renterPub, renterPriv := rentalFixtures(t)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	token := IssueToken(masterPriv, renterPub, now.Add(24*time.Hour),
		[]string{"spam", "mine"})

	var nonce [16]byte
	nonce[0] = 1
	cmd := SignRentedCommand(renterPriv, token, "spam", []byte("run 5m"), now, nonce)
	if err := AuthorizeRented(masterPub, cmd, now); err != nil {
		t.Fatalf("legitimate rented command rejected: %v", err)
	}
}

func TestRentalExpiry(t *testing.T) {
	masterPub, masterPriv, renterPub, renterPriv := rentalFixtures(t)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	token := IssueToken(masterPriv, renterPub, now.Add(time.Hour), []string{"spam"})
	var nonce [16]byte
	cmd := SignRentedCommand(renterPriv, token, "spam", nil, now, nonce)

	if err := AuthorizeRented(masterPub, cmd, now.Add(2*time.Hour)); !errors.Is(err, ErrTokenExpired) {
		t.Fatalf("expired token error = %v, want ErrTokenExpired", err)
	}
}

func TestRentalWhitelistEnforced(t *testing.T) {
	masterPub, masterPriv, renterPub, renterPriv := rentalFixtures(t)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	token := IssueToken(masterPriv, renterPub, now.Add(time.Hour), []string{"mine"})
	var nonce [16]byte
	cmd := SignRentedCommand(renterPriv, token, "ddos", nil, now, nonce)
	if err := AuthorizeRented(masterPub, cmd, now); !errors.Is(err, ErrCmdNotAllowed) {
		t.Fatalf("off-whitelist command error = %v, want ErrCmdNotAllowed", err)
	}
}

func TestRentalForgedTokenRejected(t *testing.T) {
	masterPub, _, renterPub, renterPriv := rentalFixtures(t)
	_, imposterPriv, _ := ed25519.GenerateKey(NewDRBG([]byte("imposter")))
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	// Token signed by an imposter, not the master bots trust.
	token := IssueToken(imposterPriv, renterPub, now.Add(time.Hour), []string{"spam"})
	var nonce [16]byte
	cmd := SignRentedCommand(renterPriv, token, "spam", nil, now, nonce)
	if err := AuthorizeRented(masterPub, cmd, now); !errors.Is(err, ErrTokenForged) {
		t.Fatalf("forged token error = %v, want ErrTokenForged", err)
	}
}

func TestRentalStolenTokenUnusable(t *testing.T) {
	masterPub, masterPriv, renterPub, _ := rentalFixtures(t)
	_, thiefPriv, _ := ed25519.GenerateKey(NewDRBG([]byte("thief")))
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	token := IssueToken(masterPriv, renterPub, now.Add(time.Hour), []string{"spam"})
	var nonce [16]byte
	// A thief with the token but not the renter's private key.
	cmd := SignRentedCommand(thiefPriv, token, "spam", nil, now, nonce)
	if err := AuthorizeRented(masterPub, cmd, now); !errors.Is(err, ErrCmdForged) {
		t.Fatalf("stolen token error = %v, want ErrCmdForged", err)
	}
}

func TestRentalTamperedWhitelistRejected(t *testing.T) {
	masterPub, masterPriv, renterPub, renterPriv := rentalFixtures(t)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	token := IssueToken(masterPriv, renterPub, now.Add(time.Hour), []string{"mine"})
	token.Whitelist = append(token.Whitelist, "ddos") // renter self-upgrades
	var nonce [16]byte
	cmd := SignRentedCommand(renterPriv, token, "ddos", nil, now, nonce)
	if err := AuthorizeRented(masterPub, cmd, now); !errors.Is(err, ErrTokenForged) {
		t.Fatalf("tampered whitelist error = %v, want ErrTokenForged", err)
	}
}

func TestTokenWhitelistNormalized(t *testing.T) {
	_, masterPriv, renterPub, _ := rentalFixtures(t)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	token := IssueToken(masterPriv, renterPub, now, []string{"b", "a", "b", "a"})
	if len(token.Whitelist) != 2 || token.Whitelist[0] != "a" || token.Whitelist[1] != "b" {
		t.Fatalf("whitelist = %v, want [a b]", token.Whitelist)
	}
	if !token.Allows("a") || token.Allows("c") {
		t.Fatal("Allows misbehaves")
	}
}

func TestReplayGuard(t *testing.T) {
	g := NewReplayGuard(10 * time.Minute)
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	var n1, n2 [16]byte
	n1[0], n2[0] = 1, 2

	if err := g.Check(n1, now, now); err != nil {
		t.Fatalf("fresh message rejected: %v", err)
	}
	if err := g.Check(n1, now, now.Add(time.Minute)); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay error = %v, want ErrReplay", err)
	}
	if err := g.Check(n2, now, now.Add(20*time.Minute)); !errors.Is(err, ErrStale) {
		t.Fatalf("stale error = %v, want ErrStale", err)
	}
	// Future-dated messages beyond the window are also rejected.
	if err := g.Check(n2, now.Add(time.Hour), now); !errors.Is(err, ErrStale) {
		t.Fatalf("future error = %v, want ErrStale", err)
	}
	if g.Size() != 1 {
		t.Fatalf("cache size = %d, want 1", g.Size())
	}
}

func TestGroupKeyring(t *testing.T) {
	r := NewGroupKeyring()
	rng := NewDRBG([]byte("group nonce"))
	r.Add("ddos-team", NewDRBG([]byte("k1")).Bytes(32))
	r.Add("mine-team", NewDRBG([]byte("k2")).Bytes(32))

	sealed, err := r.SealFor("ddos-team", []byte("target example.com"), rng)
	if err != nil {
		t.Fatal(err)
	}
	msg, group, err := r.TryOpen(sealed)
	if err != nil || group != "ddos-team" || string(msg) != "target example.com" {
		t.Fatalf("TryOpen = (%q, %q, %v)", msg, group, err)
	}

	// A bot outside the group cannot open and cannot attribute.
	outsider := NewGroupKeyring()
	outsider.Add("mine-team", NewDRBG([]byte("k2")).Bytes(32))
	if _, _, err := outsider.TryOpen(sealed); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("outsider TryOpen error = %v, want ErrSealCorrupt", err)
	}

	if _, err := r.SealFor("nope", nil, rng); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("unknown group error = %v, want ErrUnknownGroup", err)
	}
	r.Remove("ddos-team")
	if got := r.Groups(); len(got) != 1 || got[0] != "mine-team" {
		t.Fatalf("Groups = %v after Remove", got)
	}
}
