package legacy

import (
	"testing"
	"time"

	"onionbots/internal/botcrypto"
)

func newTestDRBG(t *testing.T) *botcrypto.DRBG {
	t.Helper()
	return botcrypto.NewDRBG([]byte("legacy tests"))
}

// TestAuditRegeneratesTable1 is the Table I reproduction: the audit must
// land exactly on the paper's rows, plus the OnionBot comparison row
// resisting all three attacks.
func TestAuditRegeneratesTable1(t *testing.T) {
	rows, err := AuditAll([]byte("table1 seed"))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		botnet, crypto, signing       string
		replayable, keyRec, forgeable bool
	}{
		{"Miner", "none", "none", true, true, true},
		{"Storm", "XOR", "none", true, true, true},
		{"ZeroAccess v1", "RC4", "RSA 512", true, true, false},
		{"Zeus", "chained XOR", "RSA 2048", true, true, false},
		{"OnionBot", "AES-CTR+HMAC", "Ed25519", false, false, false},
	}
	if len(rows) != len(want) {
		t.Fatalf("audit produced %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Botnet != w.botnet || r.Crypto != w.crypto || r.Signing != w.signing {
			t.Errorf("row %d identity = (%s,%s,%s), want (%s,%s,%s)",
				i, r.Botnet, r.Crypto, r.Signing, w.botnet, w.crypto, w.signing)
		}
		if r.Replayable != w.replayable {
			t.Errorf("%s: Replayable = %v, want %v (Table I column)", r.Botnet, r.Replayable, w.replayable)
		}
		if r.KeyRecovered != w.keyRec {
			t.Errorf("%s: KeyRecovered = %v, want %v", r.Botnet, r.KeyRecovered, w.keyRec)
		}
		if r.Forged != w.forgeable {
			t.Errorf("%s: Forged = %v, want %v", r.Botnet, r.Forged, w.forgeable)
		}
	}
}

func TestAuditDeterministic(t *testing.T) {
	a, err := AuditAll([]byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AuditAll([]byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical-seed audits", i)
		}
	}
}

func TestProcessorRejectsGarbage(t *testing.T) {
	schemes, err := Schemes([]byte("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	for _, s := range schemes {
		if s.Signer.Name() == "none" {
			continue // unsigned schemes accept garbage; that is the point
		}
		p := newProcessor(s, []byte("0123456789abcdef"))
		if err := p.Deliver([]byte{0x01}, now); err == nil {
			t.Fatalf("%s: accepted a 1-byte envelope", s.Botnet)
		}
		if err := p.Deliver(make([]byte, 600), now); err == nil {
			t.Fatalf("%s: accepted an unsigned 600-byte envelope", s.Botnet)
		}
	}
}
