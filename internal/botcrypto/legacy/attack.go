package legacy

// Known-plaintext attacks against the Table I ciphers. Each takes one
// observed (plaintext, ciphertext) pair — e.g. a reverse-engineered
// heartbeat — and recovers enough key material to decrypt (and forge)
// other traffic under the same key.

// RecoverXORKey recovers a repeating XOR key of length keyLen from one
// known pair (Storm). Requires len(pt) >= keyLen.
func RecoverXORKey(pt, ct []byte, keyLen int) []byte {
	if len(pt) < keyLen || len(ct) < keyLen {
		return nil
	}
	key := make([]byte, keyLen)
	for i := 0; i < keyLen; i++ {
		key[i] = pt[i] ^ ct[i]
	}
	return key
}

// RecoverChainedXORKey recovers a Zeus chained-XOR key of length keyLen
// from one known pair: key[i] = pt[i] ^ ct[i] ^ ct[i-1].
func RecoverChainedXORKey(pt, ct []byte, keyLen int) []byte {
	if len(pt) < keyLen || len(ct) < keyLen {
		return nil
	}
	key := make([]byte, keyLen)
	var prev byte
	for i := 0; i < keyLen; i++ {
		key[i] = pt[i] ^ ct[i] ^ prev
		prev = ct[i]
	}
	return key
}

// RecoverKeystream recovers the keystream prefix from one known pair.
// Against RC4 with a fixed key (ZeroAccess v1 reused keys across
// messages) the recovered prefix decrypts every other message.
func RecoverKeystream(pt, ct []byte) []byte {
	n := len(pt)
	if len(ct) < n {
		n = len(ct)
	}
	ks := make([]byte, n)
	for i := 0; i < n; i++ {
		ks[i] = pt[i] ^ ct[i]
	}
	return ks
}

// ApplyKeystream decrypts a ciphertext with a recovered keystream
// prefix (up to the prefix length).
func ApplyKeystream(ks, ct []byte) []byte {
	n := len(ct)
	if len(ks) < n {
		n = len(ks)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = ct[i] ^ ks[i]
	}
	return out
}
