package legacy

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"onionbots/internal/botcrypto"
)

// Scheme bundles one botnet's message protection as audited in Table I.
type Scheme struct {
	// Botnet is the family name.
	Botnet string
	// Cipher protects confidentiality (or pretends to).
	Cipher Cipher
	// Signer authenticates commands (or pretends to).
	Signer Signer
	// ReplayProtected marks schemes carrying a nonce+timestamp checked
	// by a ReplayGuard. None of the legacy families had this.
	ReplayProtected bool
}

// processor is a minimal bot-side command handler for a scheme: it
// unwraps the envelope, verifies, decrypts, replay-checks, and records
// executed commands. The auditor attacks it.
type processor struct {
	scheme Scheme
	key    []byte
	guard  *botcrypto.ReplayGuard
	// Executed is the list of command strings the bot ran.
	Executed []string
}

func newProcessor(s Scheme, key []byte) *processor {
	p := &processor{scheme: s, key: key}
	if s.ReplayProtected {
		p.guard = botcrypto.NewReplayGuard(10 * time.Minute)
	}
	return p
}

// envelope layout: sigLen(2) || sig || ciphertext.
func seal(s Scheme, key []byte, plaintext []byte) ([]byte, error) {
	ct := s.Cipher.Encrypt(key, plaintext)
	sig, err := s.Signer.Sign(ct)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 2, 2+len(sig)+len(ct))
	binary.BigEndian.PutUint16(out, uint16(len(sig)))
	out = append(out, sig...)
	out = append(out, ct...)
	return out, nil
}

// errRejected reports a command the bot refused.
var errRejected = errors.New("legacy: command rejected")

// Deliver feeds one wire message to the bot at the given local time.
func (p *processor) Deliver(wire []byte, now time.Time) error {
	if len(wire) < 2 {
		return fmt.Errorf("%w: short envelope", errRejected)
	}
	sigLen := int(binary.BigEndian.Uint16(wire[:2]))
	if len(wire) < 2+sigLen {
		return fmt.Errorf("%w: truncated signature", errRejected)
	}
	sig := wire[2 : 2+sigLen]
	ct := wire[2+sigLen:]
	if !p.scheme.Signer.Verify(ct, sig) {
		return fmt.Errorf("%w: bad signature", errRejected)
	}
	pt := p.scheme.Cipher.Decrypt(p.key, ct)
	if pt == nil {
		return fmt.Errorf("%w: decryption failed", errRejected)
	}
	cmd := pt
	if p.scheme.ReplayProtected {
		if len(pt) < 24 {
			return fmt.Errorf("%w: missing freshness header", errRejected)
		}
		var nonce [16]byte
		copy(nonce[:], pt[:16])
		issued := time.Unix(int64(binary.BigEndian.Uint64(pt[16:24])), 0)
		if err := p.guard.Check(nonce, issued, now); err != nil {
			return fmt.Errorf("%w: %v", errRejected, err)
		}
		cmd = pt[24:]
	}
	p.Executed = append(p.Executed, string(cmd))
	return nil
}

// AuditRow is one regenerated Table I line, extended with the concrete
// attack outcomes the auditor measured.
type AuditRow struct {
	Botnet  string
	Crypto  string
	Signing string
	// Replayable: redelivering a captured command executed it twice.
	Replayable bool
	// KeyRecovered: one known (pt, ct) pair decrypted fresh traffic.
	KeyRecovered bool
	// Forged: an attacker without any legitimate keys got a crafted
	// command executed.
	Forged bool
}

// sealCipher adapts the OnionBot sealed cell to the Cipher interface
// for the comparison row. Encrypt draws nonces from an internal DRBG.
type sealCipher struct {
	rng *botcrypto.DRBG
}

var _ Cipher = (*sealCipher)(nil)

func (*sealCipher) Name() string { return "AES-CTR+HMAC" }

func (c *sealCipher) Encrypt(key, plaintext []byte) []byte {
	out, err := botcrypto.Seal(key, plaintext, c.rng)
	if err != nil {
		return nil
	}
	return out
}

func (c *sealCipher) Decrypt(key, ciphertext []byte) []byte {
	out, err := botcrypto.Open(key, ciphertext)
	if err != nil {
		return nil
	}
	return out
}

// Schemes constructs the four Table I families plus the OnionBot row.
// Key material is derived deterministically from the seed so audits are
// reproducible.
func Schemes(seed []byte) ([]Scheme, error) {
	drbg := botcrypto.NewDRBG(append([]byte("table1:"), seed...))
	rsa512, err := NewRSASigner(512, drbg)
	if err != nil {
		return nil, err
	}
	rsa2048, err := NewRSASigner(2048, drbg)
	if err != nil {
		return nil, err
	}
	edSigner, err := NewEd25519Signer(drbg)
	if err != nil {
		return nil, err
	}
	return []Scheme{
		{Botnet: "Miner", Cipher: NullCipher{}, Signer: NullSigner{}},
		{Botnet: "Storm", Cipher: XORCipher{}, Signer: NullSigner{}},
		{Botnet: "ZeroAccess v1", Cipher: RC4Cipher{}, Signer: rsa512},
		{Botnet: "Zeus", Cipher: ChainedXORCipher{}, Signer: rsa2048},
		{
			Botnet:          "OnionBot",
			Cipher:          &sealCipher{rng: botcrypto.NewDRBG(append([]byte("seal-nonce:"), seed...))},
			Signer:          edSigner,
			ReplayProtected: true,
		},
	}, nil
}

// Audit runs the three probes (replay, known-plaintext key recovery,
// forgery) against one scheme and reports the outcomes.
func Audit(s Scheme, seed []byte) (AuditRow, error) {
	drbg := botcrypto.NewDRBG(append([]byte("audit-key:"), seed...))
	key := drbg.Bytes(16)
	row := AuditRow{Botnet: s.Botnet, Crypto: s.Cipher.Name(), Signing: s.Signer.Name()}
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)

	framed := func(cmd string) []byte {
		if !s.ReplayProtected {
			return []byte(cmd)
		}
		pt := make([]byte, 24+len(cmd))
		copy(pt[:16], drbg.Bytes(16))
		binary.BigEndian.PutUint64(pt[16:24], uint64(now.Unix()))
		copy(pt[24:], cmd)
		return pt
	}

	// Probe 1: replay. Capture a legitimate command, deliver it twice.
	bot := newProcessor(s, key)
	wire, err := seal(s, key, framed("ddos example.com"))
	if err != nil {
		return row, err
	}
	if err := bot.Deliver(wire, now); err != nil {
		return row, fmt.Errorf("legacy: legitimate delivery failed: %w", err)
	}
	row.Replayable = bot.Deliver(wire, now.Add(time.Minute)) == nil

	// Probe 2: known-plaintext key recovery. The analyst knows one
	// (pt, ct) pair — say a reverse-engineered beacon — and tries to
	// decrypt a second, unseen command.
	// Long enough to cover both the key length (XOR recovery) and the
	// secret command (keystream-reuse recovery).
	known := []byte("beacon v0.1 hello from bot 0000 uptime 3600s")
	knownWire, err := seal(s, key, framed(string(known)))
	if err != nil {
		return row, err
	}
	secret := "exfiltrate /etc/passwd"
	secretWire, err := seal(s, key, framed(secret))
	if err != nil {
		return row, err
	}
	knownCT := stripEnvelope(knownWire)
	secretCT := stripEnvelope(secretWire)
	row.KeyRecovered = tryKeyRecovery(s, known, knownCT, secret, secretCT, key)

	// Probe 3: forgery. The attacker crafts a command with whatever key
	// material probe 2 yielded and no signing key.
	forger := newProcessor(s, key)
	forgedPT := []byte("forged: join my botnet")
	var forgedCT []byte
	switch s.Cipher.(type) {
	case NullCipher:
		forgedCT = forgedPT
	case XORCipher:
		k := RecoverXORKey(known, knownCT, len(key))
		forgedCT = XORCipher{}.Encrypt(k, forgedPT)
	case ChainedXORCipher:
		k := RecoverChainedXORKey(known, knownCT, len(key))
		forgedCT = ChainedXORCipher{}.Encrypt(k, forgedPT)
	case RC4Cipher:
		ks := RecoverKeystream(known, knownCT)
		forgedCT = ApplyKeystream(ks, forgedPT) // reuse recovered keystream
	default:
		forgedCT = bytes.Repeat([]byte{0x42}, botcrypto.SealedSize) // blind guess
	}
	forgedWire := make([]byte, 2, 2+len(forgedCT))
	// No valid signature available to the attacker: empty sig.
	forgedWire = append(forgedWire, forgedCT...)
	row.Forged = forger.Deliver(forgedWire, now) == nil
	return row, nil
}

// AuditAll regenerates the full Table I comparison.
func AuditAll(seed []byte) ([]AuditRow, error) {
	schemes, err := Schemes(seed)
	if err != nil {
		return nil, err
	}
	rows := make([]AuditRow, 0, len(schemes))
	for _, s := range schemes {
		row, err := Audit(s, seed)
		if err != nil {
			return nil, fmt.Errorf("legacy: audit %s: %w", s.Botnet, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func stripEnvelope(wire []byte) []byte {
	sigLen := int(binary.BigEndian.Uint16(wire[:2]))
	return wire[2+sigLen:]
}

// tryKeyRecovery attempts the cipher-appropriate known-plaintext attack
// and reports whether the second ciphertext decrypted to the secret.
func tryKeyRecovery(s Scheme,
	known, knownCT []byte, secret string, secretCT, realKey []byte) bool {
	var recovered []byte
	switch s.Cipher.(type) {
	case NullCipher:
		recovered = secretCT // "decryption" is identity
		return string(recovered) == secret
	case XORCipher:
		k := RecoverXORKey(known, knownCT, len(realKey))
		recovered = XORCipher{}.Decrypt(k, secretCT)
	case ChainedXORCipher:
		k := RecoverChainedXORKey(known, knownCT, len(realKey))
		recovered = ChainedXORCipher{}.Decrypt(k, secretCT)
	case RC4Cipher:
		ks := RecoverKeystream(known, knownCT)
		recovered = ApplyKeystream(ks, secretCT)
	default:
		// Sealed cells: per-message nonces mean there is no shared
		// keystream to recover; try the keystream attack anyway and see
		// it fail.
		ks := RecoverKeystream(known, knownCT)
		recovered = ApplyKeystream(ks, secretCT)
	}
	return bytes.HasPrefix(recovered, []byte(secret))
}
