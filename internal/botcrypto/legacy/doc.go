// Package legacy implements, from scratch, the cryptographic schemes of
// the botnet families surveyed in Table I of the OnionBots paper —
//
//	Botnet          Crypto        Signing    Replay
//	Miner           none          none       yes
//	Storm           XOR           none       yes
//	ZeroAccess v1   RC4           RSA 512    yes
//	Zeus            chained XOR   RSA 2048   yes
//
// — together with an auditor that demonstrates each weakness concretely:
// known-plaintext key recovery against the XOR family, command forgery
// where signing is absent, and replay everywhere. The auditor also runs
// the same probes against the OnionBot scheme (botcrypto.Seal + Ed25519
// signing + ReplayGuard) to show all three attacks fail, regenerating
// the Table I comparison the paper uses to motivate its design.
//
// These are deliberately weak ciphers reimplemented for a defensive
// audit harness; nothing here should ever protect real data.
package legacy
