package legacy

// Cipher is a symmetric scheme as used by a 2015-era botnet. All four
// Table I ciphers are length-preserving byte transforms.
type Cipher interface {
	// Name is the Table I label.
	Name() string
	// Encrypt transforms plaintext under key.
	Encrypt(key, plaintext []byte) []byte
	// Decrypt reverses Encrypt.
	Decrypt(key, ciphertext []byte) []byte
}

// NullCipher is the Miner botnet's "crypto": none.
type NullCipher struct{}

var _ Cipher = NullCipher{}

// Name implements Cipher.
func (NullCipher) Name() string { return "none" }

// Encrypt returns the plaintext unchanged.
func (NullCipher) Encrypt(_, plaintext []byte) []byte {
	return append([]byte(nil), plaintext...)
}

// Decrypt returns the ciphertext unchanged.
func (NullCipher) Decrypt(_, ciphertext []byte) []byte {
	return append([]byte(nil), ciphertext...)
}

// XORCipher is Storm's repeating-key XOR.
type XORCipher struct{}

var _ Cipher = XORCipher{}

// Name implements Cipher.
func (XORCipher) Name() string { return "XOR" }

// Encrypt XORs the plaintext with the repeating key.
func (XORCipher) Encrypt(key, plaintext []byte) []byte {
	return xorRepeat(key, plaintext)
}

// Decrypt is identical to Encrypt (XOR is an involution).
func (XORCipher) Decrypt(key, ciphertext []byte) []byte {
	return xorRepeat(key, ciphertext)
}

func xorRepeat(key, in []byte) []byte {
	out := make([]byte, len(in))
	if len(key) == 0 {
		copy(out, in)
		return out
	}
	for i, b := range in {
		out[i] = b ^ key[i%len(key)]
	}
	return out
}

// ChainedXORCipher is the Zeus scheme: each ciphertext byte is chained
// with the previous one, ct[i] = pt[i] ^ ct[i-1] ^ key[i mod |key|].
type ChainedXORCipher struct{}

var _ Cipher = ChainedXORCipher{}

// Name implements Cipher.
func (ChainedXORCipher) Name() string { return "chained XOR" }

// Encrypt applies the chained transform.
func (ChainedXORCipher) Encrypt(key, plaintext []byte) []byte {
	out := make([]byte, len(plaintext))
	var prev byte
	for i, b := range plaintext {
		k := byte(0)
		if len(key) > 0 {
			k = key[i%len(key)]
		}
		out[i] = b ^ prev ^ k
		prev = out[i]
	}
	return out
}

// Decrypt reverses the chained transform.
func (ChainedXORCipher) Decrypt(key, ciphertext []byte) []byte {
	out := make([]byte, len(ciphertext))
	var prev byte
	for i, b := range ciphertext {
		k := byte(0)
		if len(key) > 0 {
			k = key[i%len(key)]
		}
		out[i] = b ^ prev ^ k
		prev = b
	}
	return out
}

// RC4Cipher is ZeroAccess v1's stream cipher, implemented from scratch
// (KSA + PRGA).
type RC4Cipher struct{}

var _ Cipher = RC4Cipher{}

// Name implements Cipher.
func (RC4Cipher) Name() string { return "RC4" }

// Encrypt XORs the plaintext with the RC4 keystream.
func (RC4Cipher) Encrypt(key, plaintext []byte) []byte {
	return rc4Apply(key, plaintext)
}

// Decrypt is identical to Encrypt (stream cipher).
func (RC4Cipher) Decrypt(key, ciphertext []byte) []byte {
	return rc4Apply(key, ciphertext)
}

func rc4Apply(key, in []byte) []byte {
	out := make([]byte, len(in))
	if len(key) == 0 {
		copy(out, in)
		return out
	}
	// Key-scheduling algorithm.
	var s [256]byte
	for i := range s {
		s[i] = byte(i)
	}
	j := 0
	for i := 0; i < 256; i++ {
		j = (j + int(s[i]) + int(key[i%len(key)])) & 0xff
		s[i], s[j] = s[j], s[i]
	}
	// Pseudo-random generation algorithm.
	i, j := 0, 0
	for n := range in {
		i = (i + 1) & 0xff
		j = (j + int(s[i])) & 0xff
		s[i], s[j] = s[j], s[i]
		out[n] = in[n] ^ s[(int(s[i])+int(s[j]))&0xff]
	}
	return out
}
