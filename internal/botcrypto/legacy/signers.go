package legacy

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rsa"
	"crypto/sha256"
	"fmt"
	"io"
)

// Signer authenticates command payloads the way each surveyed botnet
// did (or did not).
type Signer interface {
	// Name is the Table I label.
	Name() string
	// Sign produces a signature over msg.
	Sign(msg []byte) ([]byte, error)
	// Verify reports whether sig authenticates msg.
	Verify(msg, sig []byte) bool
}

// NullSigner is "no signing": every payload verifies. Miner and Storm
// shipped this way, which is why both were hijackable.
type NullSigner struct{}

var _ Signer = NullSigner{}

// Name implements Signer.
func (NullSigner) Name() string { return "none" }

// Sign returns an empty signature.
func (NullSigner) Sign([]byte) ([]byte, error) { return nil, nil }

// Verify accepts anything.
func (NullSigner) Verify(_, _ []byte) bool { return true }

// RSASigner signs with RSA PKCS#1 v1.5 over SHA-256, at the modulus
// size the botnet used (512 for ZeroAccess v1, 2048 for Zeus).
type RSASigner struct {
	bits int
	priv *rsa.PrivateKey
}

var _ Signer = (*RSASigner)(nil)

// NewRSASigner generates a signer of the given modulus size from the
// entropy source.
func NewRSASigner(bits int, random io.Reader) (*RSASigner, error) {
	priv, err := rsa.GenerateKey(random, bits)
	if err != nil {
		return nil, fmt.Errorf("legacy: RSA-%d keygen: %w", bits, err)
	}
	return &RSASigner{bits: bits, priv: priv}, nil
}

// Name implements Signer.
func (s *RSASigner) Name() string { return fmt.Sprintf("RSA %d", s.bits) }

// Sign implements Signer.
func (s *RSASigner) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return rsa.SignPKCS1v15(nil, s.priv, crypto.SHA256, digest[:])
}

// Verify implements Signer.
func (s *RSASigner) Verify(msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return rsa.VerifyPKCS1v15(&s.priv.PublicKey, crypto.SHA256, digest[:], sig) == nil
}

// Ed25519Signer is the OnionBot-row signer.
type Ed25519Signer struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

var _ Signer = (*Ed25519Signer)(nil)

// NewEd25519Signer derives a signer from the entropy source.
func NewEd25519Signer(random io.Reader) (*Ed25519Signer, error) {
	pub, priv, err := ed25519.GenerateKey(random)
	if err != nil {
		return nil, fmt.Errorf("legacy: ed25519 keygen: %w", err)
	}
	return &Ed25519Signer{pub: pub, priv: priv}, nil
}

// Name implements Signer.
func (*Ed25519Signer) Name() string { return "Ed25519" }

// Sign implements Signer.
func (s *Ed25519Signer) Sign(msg []byte) ([]byte, error) {
	return ed25519.Sign(s.priv, msg), nil
}

// Verify implements Signer.
func (s *Ed25519Signer) Verify(msg, sig []byte) bool {
	return ed25519.Verify(s.pub, msg, sig)
}
