package legacy

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func TestAllCiphersRoundTrip(t *testing.T) {
	ciphers := []Cipher{NullCipher{}, XORCipher{}, ChainedXORCipher{}, RC4Cipher{}}
	key := []byte("sixteen byte key")
	msgs := [][]byte{
		[]byte("a"),
		[]byte("command: ddos example.com for 300s"),
		bytes.Repeat([]byte{0x00}, 100),
		bytes.Repeat([]byte{0xff}, 257),
	}
	for _, c := range ciphers {
		for _, msg := range msgs {
			ct := c.Encrypt(key, msg)
			if len(ct) != len(msg) {
				t.Fatalf("%s: ciphertext length %d != %d", c.Name(), len(ct), len(msg))
			}
			pt := c.Decrypt(key, ct)
			if !bytes.Equal(pt, msg) {
				t.Fatalf("%s: round trip failed", c.Name())
			}
		}
	}
}

func TestRC4KnownAnswer(t *testing.T) {
	// Classic RC4 test vector: key "Key", plaintext "Plaintext".
	got := RC4Cipher{}.Encrypt([]byte("Key"), []byte("Plaintext"))
	want, err := hex.DecodeString("bbf316e8d940af0ad3")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("RC4(Key, Plaintext) = %x, want %x", got, want)
	}
	// Second classic vector: key "Wiki", plaintext "pedia".
	got = RC4Cipher{}.Encrypt([]byte("Wiki"), []byte("pedia"))
	want, err = hex.DecodeString("1021bf0420")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("RC4(Wiki, pedia) = %x, want %x", got, want)
	}
}

func TestChainedXORDiffersFromPlainXOR(t *testing.T) {
	key := []byte("k3y!")
	msg := []byte("the same message encrypted twice")
	plain := XORCipher{}.Encrypt(key, msg)
	chained := ChainedXORCipher{}.Encrypt(key, msg)
	if bytes.Equal(plain, chained) {
		t.Fatal("chained XOR degenerated to plain XOR")
	}
}

func TestEmptyKeyBehaviour(t *testing.T) {
	msg := []byte("message")
	for _, c := range []Cipher{XORCipher{}, RC4Cipher{}} {
		if !bytes.Equal(c.Decrypt(nil, c.Encrypt(nil, msg)), msg) {
			t.Fatalf("%s: empty-key round trip failed", c.Name())
		}
	}
}

func TestCipherPropertyRoundTrip(t *testing.T) {
	ciphers := []Cipher{XORCipher{}, ChainedXORCipher{}, RC4Cipher{}}
	err := quick.Check(func(key, msg []byte) bool {
		for _, c := range ciphers {
			if !bytes.Equal(c.Decrypt(key, c.Encrypt(key, msg)), msg) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestXORKeyRecovery(t *testing.T) {
	key := []byte("stormkey")
	pt := []byte("GET /cmd HTTP/1.1 beacon")
	ct := XORCipher{}.Encrypt(key, pt)
	got := RecoverXORKey(pt, ct, len(key))
	if !bytes.Equal(got, key) {
		t.Fatalf("recovered %q, want %q", got, key)
	}
	if RecoverXORKey(pt[:3], ct, len(key)) != nil {
		t.Fatal("recovery with insufficient plaintext should fail")
	}
}

func TestChainedXORKeyRecovery(t *testing.T) {
	key := []byte("zeus2048")
	pt := []byte("config block v3 for botnet")
	ct := ChainedXORCipher{}.Encrypt(key, pt)
	got := RecoverChainedXORKey(pt, ct, len(key))
	if !bytes.Equal(got, key) {
		t.Fatalf("recovered %q, want %q", got, key)
	}
}

func TestKeystreamRecoveryDecryptsSecondMessage(t *testing.T) {
	key := []byte("zerokey")
	known := []byte("heartbeat message v1.0 from bot")
	secret := []byte("install module dropper.bin")
	knownCT := RC4Cipher{}.Encrypt(key, known)
	secretCT := RC4Cipher{}.Encrypt(key, secret) // same key -> same keystream
	ks := RecoverKeystream(known, knownCT)
	got := ApplyKeystream(ks, secretCT)
	if !bytes.Equal(got, secret) {
		t.Fatalf("keystream reuse attack failed: %q", got)
	}
}

func TestSignersVerifyAndReject(t *testing.T) {
	drbg := newTestDRBG(t)
	rsa512, err := NewRSASigner(512, drbg)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := NewEd25519Signer(drbg)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("authenticate me")
	for _, s := range []Signer{rsa512, ed} {
		sig, err := s.Sign(msg)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !s.Verify(msg, sig) {
			t.Fatalf("%s: valid signature rejected", s.Name())
		}
		if s.Verify([]byte("other"), sig) {
			t.Fatalf("%s: signature verified for wrong message", s.Name())
		}
		if s.Verify(msg, nil) {
			t.Fatalf("%s: empty signature accepted", s.Name())
		}
	}
	if !(NullSigner{}).Verify(msg, nil) {
		t.Fatal("NullSigner must accept everything (that is its flaw)")
	}
}
