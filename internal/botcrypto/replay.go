package botcrypto

import (
	"errors"
	"fmt"
	"time"
)

// Replay errors.
var (
	ErrStale  = errors.New("botcrypto: message outside freshness window")
	ErrReplay = errors.New("botcrypto: nonce already seen")
)

// ReplayGuard rejects duplicated or stale messages: the defense Table I
// shows was absent from every surveyed botnet (all were replayable).
// It combines a freshness window on timestamps with a cache of nonces
// seen inside the window.
type ReplayGuard struct {
	window time.Duration
	seen   map[[16]byte]time.Time
}

// NewReplayGuard builds a guard with the given freshness window.
func NewReplayGuard(window time.Duration) *ReplayGuard {
	return &ReplayGuard{window: window, seen: make(map[[16]byte]time.Time)}
}

// Check validates a message stamped issuedAt carrying nonce, at local
// time now. A nil return marks the nonce as consumed.
func (g *ReplayGuard) Check(nonce [16]byte, issuedAt, now time.Time) error {
	age := now.Sub(issuedAt)
	if age < 0 {
		age = -age
	}
	if age > g.window {
		return fmt.Errorf("%w: age %v > %v", ErrStale, age, g.window)
	}
	if _, dup := g.seen[nonce]; dup {
		return ErrReplay
	}
	g.seen[nonce] = issuedAt
	g.gc(now)
	return nil
}

// Size reports how many nonces are cached (after garbage collection of
// expired entries on the next Check).
func (g *ReplayGuard) Size() int { return len(g.seen) }

// gc drops nonces that have aged out of the window; replays of those
// are already rejected by the staleness check.
func (g *ReplayGuard) gc(now time.Time) {
	if len(g.seen) < 1024 {
		return
	}
	for n, at := range g.seen {
		if now.Sub(at) > g.window {
			delete(g.seen, n)
		}
	}
}
