package botcrypto

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
)

// DRBG is a deterministic byte stream: SHA-256 over (seed || counter).
// It implements io.Reader so it can drive key generation. It is a
// simulation tool for reproducibility, not a CSPRNG for production use.
type DRBG struct {
	seed    [32]byte
	counter uint64
	buf     [32]byte
	pos     int // consumed bytes of buf
}

var _ io.Reader = (*DRBG)(nil)

// NewDRBG builds a stream from arbitrary seed material.
func NewDRBG(seed []byte) *DRBG {
	return &DRBG{seed: sha256.Sum256(seed), pos: sha256.Size}
}

// Read fills p deterministically. It never fails.
func (d *DRBG) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if d.pos == len(d.buf) {
			var block [40]byte
			copy(block[:32], d.seed[:])
			binary.BigEndian.PutUint64(block[32:], d.counter)
			d.counter++
			d.buf = sha256.Sum256(block[:])
			d.pos = 0
		}
		c := copy(p, d.buf[d.pos:])
		d.pos += c
		p = p[c:]
	}
	return n, nil
}

// Bytes returns the next n bytes of the stream.
func (d *DRBG) Bytes(n int) []byte {
	out := make([]byte, n)
	_, _ = d.Read(out)
	return out
}
