package botcrypto_test

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"onionbots/internal/botcrypto"
)

// ExampleSeal shows the fixed-size uniform sealing used for every
// bot-to-bot message.
func ExampleSeal() {
	key := botcrypto.NewDRBG([]byte("shared key")).Bytes(32)
	rng := botcrypto.NewDRBG([]byte("nonce source"))

	sealed, _ := botcrypto.Seal(key, []byte("ddos example.com"), rng)
	fmt.Println("wire size:", len(sealed))

	msg, _ := botcrypto.Open(key, sealed)
	fmt.Println("plaintext:", string(msg))

	_, err := botcrypto.Open([]byte("wrong key"), sealed)
	fmt.Println("wrong key:", err != nil)
	// Output:
	// wire size: 480
	// plaintext: ddos example.com
	// wrong key: true
}

// ExampleDeriveIdentity shows the paper's address-rotation schedule:
// bot and botmaster independently derive the same .onion address for
// any period from the shared key K_B.
func ExampleDeriveIdentity() {
	masterPub, _, _ := ed25519.GenerateKey(botcrypto.NewDRBG([]byte("master")))
	kb := botcrypto.NewDRBG([]byte("bot key")).Bytes(botcrypto.BotKeySize)

	botView := botcrypto.OnionForPeriod(masterPub, kb, 100)
	ccView := botcrypto.OnionForPeriod(masterPub, kb, 100)
	tomorrow := botcrypto.OnionForPeriod(masterPub, kb, 101)

	fmt.Println("both sides agree:", botView == ccView)
	fmt.Println("rotates daily:", botView != tomorrow)
	// Output:
	// both sides agree: true
	// rotates daily: true
}

// ExampleIssueToken shows the Section IV-E botnet-for-rent chain.
func ExampleIssueToken() {
	masterPub, masterPriv, _ := ed25519.GenerateKey(botcrypto.NewDRBG([]byte("mallory")))
	renterPub, renterPriv, _ := ed25519.GenerateKey(botcrypto.NewDRBG([]byte("trudy")))

	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	token := botcrypto.IssueToken(masterPriv, renterPub, now.Add(24*time.Hour),
		[]string{"spam", "mine"})

	var nonce [16]byte
	cmd := botcrypto.SignRentedCommand(renterPriv, token, "spam", nil, now, nonce)
	fmt.Println("whitelisted:", botcrypto.AuthorizeRented(masterPub, cmd, now) == nil)

	bad := botcrypto.SignRentedCommand(renterPriv, token, "ddos", nil, now, nonce)
	fmt.Println("off-whitelist rejected:", botcrypto.AuthorizeRented(masterPub, bad, now) != nil)
	fmt.Println("expired rejected:", botcrypto.AuthorizeRented(masterPub, cmd, now.Add(48*time.Hour)) != nil)
	// Output:
	// whitelisted: true
	// off-whitelist rejected: true
	// expired rejected: true
}
