package soap

import (
	"onionbots/internal/core"
	"onionbots/internal/graph"
)

// Evaluation helpers for the Figure 7 experiment: measure how far a
// campaign has gone by inspecting the ground-truth botnet state (the
// experimenter's view; the attacker itself only has its intel).

// BenignOverlay extracts the bot-to-bot overlay with every clone edge
// removed: the graph that remains available for C&C traffic.
func BenignOverlay(bn *core.BotNet, a *Attacker) *graph.Graph {
	alive := bn.AliveBots()
	index := make(map[string]int, len(alive))
	g := graph.New()
	for i, b := range alive {
		index[b.Onion()] = i
		g.AddNode(i)
	}
	for i, b := range alive {
		for _, peer := range b.PeerOnions() {
			if a.IsClone(peer) {
				continue
			}
			if j, ok := index[peer]; ok {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// TrueContainedCount reports how many alive bots have no benign peers
// left (ground truth, independent of attacker intel).
func TrueContainedCount(bn *core.BotNet, a *Attacker) int {
	n := 0
	for _, b := range bn.AliveBots() {
		contained := true
		for _, peer := range b.PeerOnions() {
			if !a.IsClone(peer) {
				contained = false
				break
			}
		}
		if contained {
			n++
		}
	}
	return n
}

// ContainmentFraction is TrueContainedCount over the alive population.
func ContainmentFraction(bn *core.BotNet, a *Attacker) float64 {
	alive := bn.AliveBots()
	if len(alive) == 0 {
		return 0
	}
	return float64(TrueContainedCount(bn, a)) / float64(len(alive))
}

// CloneNeighborFraction reports, averaged over alive bots, the share of
// each bot's peers that are clones — the "surrounded by clones"
// progress measure of Figure 7's intermediate steps.
func CloneNeighborFraction(bn *core.BotNet, a *Attacker) float64 {
	alive := bn.AliveBots()
	if len(alive) == 0 {
		return 0
	}
	total := 0.0
	for _, b := range alive {
		peers := b.PeerOnions()
		if len(peers) == 0 {
			total += 1 // fully isolated counts as surrounded
			continue
		}
		clones := 0
		for _, p := range peers {
			if a.IsClone(p) {
				clones++
			}
		}
		total += float64(clones) / float64(len(peers))
	}
	return total / float64(len(alive))
}
