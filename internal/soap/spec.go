package soap

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"onionbots/internal/jsonx"
)

// Spec is the declarative, JSON-serializable form of a SOAP campaign —
// the knob group experiment parameters carry and what a sweep's "soap"
// axis lists, mirroring churn.Spec. Build turns it into a Config;
// Label renders it as a compact deterministic string for task labels
// (and therefore RNG substreams), so two distinct campaigns always
// sweep onto distinct random streams.
//
//	{"clones": 64}
//	{"clones": 24, "round_s": 15, "solve_pow": true, "solve_bits": 20}
type Spec struct {
	// Clones is the per-target clone budget (Config.MaxClonesPerTarget).
	// Zero keeps the campaign default.
	Clones int `json:"clones,omitempty"`
	// RoundS spaces clone waves, in virtual seconds
	// (Config.RoundInterval). Zero keeps the default.
	RoundS float64 `json:"round_s,omitempty"`
	// NoN is how many sibling clones a clone discloses as neighbors
	// (Config.NoNSubset). Zero keeps the default.
	NoN int `json:"non,omitempty"`
	// SolvePoW lets clones pay hashcash challenges from hardened bots
	// (Section VII-A).
	SolvePoW bool `json:"solve_pow,omitempty"`
	// SolveBits caps the attacker's per-challenge work when SolvePoW is
	// on (Config.MaxSolveBits). Zero keeps the default.
	SolveBits uint8 `json:"solve_bits,omitempty"`
}

// ParseSpec decodes and validates a JSON spec. Unknown fields are
// rejected, mirroring sweep parsing, so a typo ("budget" for "clones")
// cannot silently run the default campaign under a mislabeled grid
// point.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("parse soap spec: %w", jsonx.Describe(data, err))
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the knobs without building a config.
func (s Spec) Validate() error {
	if s.Clones < 0 {
		return fmt.Errorf("soap: negative clone budget %d", s.Clones)
	}
	if s.RoundS < 0 {
		return fmt.Errorf("soap: negative round interval %gs", s.RoundS)
	}
	if s.NoN < 0 {
		return fmt.Errorf("soap: negative NoN subset %d", s.NoN)
	}
	if s.SolveBits > 0 && !s.SolvePoW {
		return fmt.Errorf("soap: solve_bits set without solve_pow")
	}
	if s.SolveBits > 40 {
		return fmt.Errorf("soap: solve_bits %d would grind the simulation (cap 40)", s.SolveBits)
	}
	return nil
}

// Config realizes the spec over the campaign defaults.
func (s Spec) Config() Config {
	cfg := Config{
		MaxClonesPerTarget: s.Clones,
		NoNSubset:          s.NoN,
		SolvePoW:           s.SolvePoW,
		MaxSolveBits:       s.SolveBits,
	}
	if s.RoundS > 0 {
		cfg.RoundInterval = time.Duration(s.RoundS * float64(time.Second))
	}
	return cfg
}

// Label renders the spec as a compact deterministic string: "soap"
// plus every non-default knob, ";"-separated — "soap;c=64",
// "soap;c=24;r=15;pow;b=20". Task labels embed it
// ("churn-soap/soap=soap;c=64/seed=1"), so it contains no "/" and no
// ",". The zero spec renders as plain "soap" (campaign defaults).
func (s Spec) Label() string {
	var b strings.Builder
	b.WriteString("soap")
	if s.Clones != 0 {
		fmt.Fprintf(&b, ";c=%d", s.Clones)
	}
	if s.RoundS != 0 {
		fmt.Fprintf(&b, ";r=%g", s.RoundS)
	}
	if s.NoN != 0 {
		fmt.Fprintf(&b, ";non=%d", s.NoN)
	}
	if s.SolvePoW {
		b.WriteString(";pow")
	}
	if s.SolveBits != 0 {
		fmt.Fprintf(&b, ";b=%d", s.SolveBits)
	}
	return b.String()
}
