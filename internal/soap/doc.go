// Package soap implements the paper's mitigation: the Sybil Onion
// Attack Protocol (Section VI-B). SOAP turns the OnionBot's own
// stealth features against it:
//
//   - because peers know each other only by .onion address, one
//     defender machine can impersonate unlimited "bots" (clones);
//   - because the peering rule favours low-degree requesters, clones
//     that declare a small random degree displace a target's real
//     peers;
//   - because NoN knowledge comes from peers, clones that disclose only
//     other clones poison the target's repair candidates, so the bot's
//     own self-healing pulls it deeper into the trap.
//
// The attack proceeds exactly as Figure 7: compromise one bot (which
// yields the network key and an entry address), crawl outward through
// PEER_ACK neighbor lists, then surround each discovered bot with
// clones until every neighbor is a clone ("contained"). Contained bots
// relay nothing: the botnet is partitioned and neutralized.
//
// The package also provides the evaluation helpers the Figure 7
// experiment uses — benign-overlay extraction, containment fraction,
// campaign statistics — and Spec, the declarative JSON knob group
// ({"clones": 64, "solve_pow": true}) that experiment.Params.Soap and
// the sweep schema's "soap" axis carry, so campaign configurations
// sweep like any other parameter.
package soap
