package soap

import (
	"strings"
	"testing"
	"time"
)

func TestSpecParseValidateAndConfig(t *testing.T) {
	s, err := ParseSpec([]byte(`{"clones": 24, "round_s": 15, "solve_pow": true, "solve_bits": 20}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config().withDefaults()
	if cfg.MaxClonesPerTarget != 24 || cfg.RoundInterval != 15*time.Second ||
		!cfg.SolvePoW || cfg.MaxSolveBits != 20 {
		t.Fatalf("config lost knobs: %+v", cfg)
	}
	// The zero spec keeps every campaign default.
	zero := Spec{}.Config().withDefaults()
	def := Config{}.withDefaults()
	if zero != def {
		t.Fatalf("zero spec changed defaults: %+v vs %+v", zero, def)
	}

	bad := []struct{ name, in, wantErr string }{
		{"unknown field", `{"budget": 3}`, "unknown field"},
		{"negative clones", `{"clones": -1}`, "negative clone"},
		{"negative round", `{"round_s": -2}`, "negative round"},
		{"bits without pow", `{"solve_bits": 12}`, "without solve_pow"},
		{"absurd bits", `{"solve_pow": true, "solve_bits": 50}`, "grind"},
	}
	for _, tc := range bad {
		if _, err := ParseSpec([]byte(tc.in)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestSpecLabelDeterministicAndLabelSafe(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{}, "soap"},
		{Spec{Clones: 64}, "soap;c=64"},
		{Spec{Clones: 24, RoundS: 15, SolvePoW: true, SolveBits: 20}, "soap;c=24;r=15;pow;b=20"},
		{Spec{NoN: 5}, "soap;non=5"},
	}
	for _, tc := range cases {
		got := tc.spec.Label()
		if got != tc.want {
			t.Errorf("Label() = %q, want %q", got, tc.want)
		}
		if strings.ContainsAny(got, "/,") {
			t.Errorf("label %q contains label-splitting characters", got)
		}
	}
}
