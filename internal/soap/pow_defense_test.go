package soap

import (
	"testing"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/pow"
)

// hardenAll installs an escalating PoW admission gate on every alive
// bot (the Section VII-A defense).
func hardenAll(bn *core.BotNet, base, step, max uint8) {
	for _, b := range bn.AliveBots() {
		b := b
		ad := pow.NewAdmission(base, step, max, time.Hour)
		b.AcceptVet = func(onion string, nonce uint64, bits uint8) (bool, []byte, uint8) {
			return ad.Vet(onion, nonce, bits, bn.Net.Now())
		}
	}
}

func TestPoWBlocksBasicSoapAttacker(t *testing.T) {
	bn := buildVictimNet(t, 50, 6)
	hardenAll(bn, 8, 2, 20)
	captured := bn.AliveBots()[0]
	// The basic attacker does not solve puzzles.
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	a.Start(captured.Onion())
	bn.Run(2 * time.Hour)
	if got := TrueContainedCount(bn, a); got != 0 {
		t.Fatalf("basic SOAP contained %d hardened bots; PoW should stop it", got)
	}
	if a.Stats().PeeringAccepted != 0 {
		t.Fatalf("hardened bots accepted %d proof-less clones", a.Stats().PeeringAccepted)
	}
}

func TestPoWSolvingAttackerPaysEscalatingCost(t *testing.T) {
	bn := buildVictimNet(t, 51, 6)
	hardenAll(bn, 6, 2, 18)
	captured := bn.AliveBots()[0]
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{SolvePoW: true, MaxSolveBits: 18})
	a.Start(captured.Onion())
	bn.Run(4 * time.Hour)

	if got := TrueContainedCount(bn, a); got == 0 {
		t.Fatal("paying attacker contained nothing; hardening should raise cost, not create immunity")
	}
	work := a.Stats().WorkHashes
	if work == 0 {
		t.Fatal("attacker reported zero proof-of-work spend")
	}
	// Escalation: the spend must exceed clones * 2^base (every accept
	// after the first few costs more than the base difficulty).
	minWork := uint64(a.Stats().PeeringAccepted) * uint64(1<<6)
	if work <= minWork {
		t.Fatalf("work = %d hashes <= flat-cost bound %d; escalation missing", work, minWork)
	}
	t.Logf("attacker spent %d hashes across %d accepted peerings", work, a.Stats().PeeringAccepted)
}

func TestHonestRepairStillWorksUnderPoW(t *testing.T) {
	// The trade-off's other side: hardened bots can still self-heal,
	// they just pay hashes for it.
	bn := buildVictimNet(t, 52, 8)
	hardenAll(bn, 6, 1, 16)
	victim := bn.AliveBots()[2]
	bn.Takedown(victim)
	bn.Run(30 * time.Minute)

	honestWork := uint64(0)
	for _, b := range bn.AliveBots() {
		honestWork += b.Stats().HashesSpent
	}
	if honestWork == 0 {
		t.Fatal("no honest proof-of-work spent; repair never exercised the gate")
	}
	// The overlay must still be connected after repair.
	g := bn.OverlayGraph()
	if g.NumNodes() != 7 {
		t.Fatalf("alive overlay nodes = %d, want 7", g.NumNodes())
	}
}
