package soap

import (
	"testing"
	"time"
)

// Ablations: disable one ingredient of SOAP at a time and verify the
// attack degrades — evidence that each mechanism in the paper's design
// is load-bearing.

func TestAblationTruthfulClonesContainSlower(t *testing.T) {
	// Clones that declare an honest high degree cannot displace benign
	// peers from full bots; they only fill free slots. Containment
	// should be strictly worse than with the lying configuration at the
	// same point in time.
	lying := func() float64 {
		bn := buildVictimNet(t, 90, 8)
		a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{
			DeclaredDegreeMin: 1, DeclaredDegreeMax: 3,
		})
		a.Start(bn.AliveBots()[0].Onion())
		bn.Run(2 * time.Hour)
		return CloneNeighborFraction(bn, a)
	}()
	truthful := func() float64 {
		bn := buildVictimNet(t, 90, 8) // same seed, same victim net
		a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{
			// "Truthful": declare a big degree, as a heavily-connected
			// defender node would have to without the sybil lie.
			DeclaredDegreeMin: 20, DeclaredDegreeMax: 24,
		})
		a.Start(bn.AliveBots()[0].Onion())
		bn.Run(2 * time.Hour)
		return CloneNeighborFraction(bn, a)
	}()
	if truthful >= lying {
		t.Fatalf("truthful clones surrounded %.2f >= lying %.2f; the degree lie should matter",
			truthful, lying)
	}
	t.Logf("clone-neighbor fraction: lying=%.2f truthful=%.2f", lying, truthful)
}

func TestAblationNoGossipSlowsDiscovery(t *testing.T) {
	// With NoN poisoning disabled (clones disclose no siblings), the
	// trap loses its pull: measure discovered bots and containment.
	bn := buildVictimNet(t, 91, 8)
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	a.cfg.NoNSubset = 0 // post-defaults override: disclose no siblings
	a.Start(bn.AliveBots()[0].Onion())
	bn.Run(2 * time.Hour)
	baseline := func() (int, float64) {
		bn2 := buildVictimNet(t, 91, 8)
		a2 := NewAttacker(bn2.Net, bn2.Master.NetKey(), Config{})
		a2.Start(bn2.AliveBots()[0].Onion())
		bn2.Run(2 * time.Hour)
		return len(a2.KnownBots()), ContainmentFraction(bn2, a2)
	}
	knownBase, containBase := baseline()
	t.Logf("no-poison: known=%d contained=%.2f | with-poison: known=%d contained=%.2f",
		len(a.KnownBots()), ContainmentFraction(bn, a), knownBase, containBase)
	// The poisoned variant must do at least as well on containment.
	if containBase+1e-9 < ContainmentFraction(bn, a) {
		t.Fatalf("NoN poisoning made containment worse (%.2f vs %.2f)",
			containBase, ContainmentFraction(bn, a))
	}
}

func TestAblationSlowWavesDelayContainment(t *testing.T) {
	run := func(interval time.Duration) float64 {
		bn := buildVictimNet(t, 92, 8)
		a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{RoundInterval: interval})
		a.Start(bn.AliveBots()[0].Onion())
		bn.Run(90 * time.Minute)
		return ContainmentFraction(bn, a)
	}
	fast := run(30 * time.Second)
	slow := run(15 * time.Minute)
	if slow > fast {
		t.Fatalf("slower waves contained more (%.2f > %.2f)?", slow, fast)
	}
	t.Logf("containment at 90m: fast waves %.2f, slow waves %.2f", fast, slow)
}
