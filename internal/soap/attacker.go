package soap

import (
	"fmt"
	"sort"
	"time"

	"onionbots/internal/botcrypto"
	"onionbots/internal/core"
	"onionbots/internal/pow"
	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

// Config tunes the SOAP campaign.
type Config struct {
	// DeclaredDegreeMin/Max bound the small random degree clones lie
	// about (the paper suggests e.g. d=2). Defaults 1 and 3.
	DeclaredDegreeMin, DeclaredDegreeMax int
	// RoundInterval spaces clone waves. Default 30s (virtual).
	RoundInterval time.Duration
	// MaxClonesPerTarget caps the clones spent on one bot. Default 24.
	MaxClonesPerTarget int
	// NoNSubset is how many sibling clones a clone discloses as its
	// neighbors, poisoning the target's repair candidates. Default 3.
	NoNSubset int
	// SolvePoW lets clones answer hashcash challenges from hardened
	// bots (Section VII-A evaluation). Off by default: the basic SOAP
	// attacker of the paper does not.
	SolvePoW bool
	// MaxSolveBits caps the attacker's per-challenge work when SolvePoW
	// is on. Default 24.
	MaxSolveBits uint8
}

func (c Config) withDefaults() Config {
	if c.DeclaredDegreeMin == 0 {
		c.DeclaredDegreeMin = 1
	}
	if c.DeclaredDegreeMax == 0 {
		c.DeclaredDegreeMax = 3
	}
	if c.RoundInterval == 0 {
		c.RoundInterval = 30 * time.Second
	}
	if c.MaxClonesPerTarget == 0 {
		c.MaxClonesPerTarget = 24
	}
	if c.NoNSubset == 0 {
		c.NoNSubset = 3
	}
	if c.MaxSolveBits == 0 {
		c.MaxSolveBits = 24
	}
	return c
}

// Stats counts campaign activity.
type Stats struct {
	ClonesCreated   int
	BotsDiscovered  int
	BotsContained   int
	PeeringAccepted int
	PeeringRejected int
	MessagesBlocked int // broadcast/directed traffic clones refused to relay
	// WorkHashes is the total proof-of-work the attacker paid against
	// hardened bots — the Section VII-A cost metric.
	WorkHashes uint64
}

// intel is what the attacker knows about one discovered bot.
type intel struct {
	neighbors  []string // latest known peer list (acks + NoN gossip)
	discovered time.Time
	clones     int // clones assigned to this target
	contained  bool
}

// Attacker runs a SOAP campaign from a single machine. All clones are
// hidden services on one proxy — the IP/.onion decoupling means the
// botnet cannot tell.
type Attacker struct {
	net   *tor.Network
	proxy *tor.OnionProxy
	rng   *sim.RNG
	drbg  *botcrypto.DRBG
	cfg   Config

	netKey  []byte // recovered from the captured bot
	netSeal *botcrypto.SealKey
	sealBuf [botcrypto.SealedSize]byte

	clones    map[string]*clone // by onion
	cloneList []string          // creation order, for NoN subsets
	intel     map[string]*intel // by bot onion
	queue     []string          // discovered, not yet contacted
	running   bool
	stats     Stats
}

// NewAttacker prepares a campaign. netKey is the network sealing key
// recovered by reverse-engineering a captured bot.
func NewAttacker(net *tor.Network, netKey []byte, cfg Config) *Attacker {
	return &Attacker{
		net:     net,
		proxy:   tor.NewProxy(net),
		rng:     net.RNG(),
		drbg:    botcrypto.NewDRBG([]byte("soap-attacker")),
		cfg:     cfg.withDefaults(),
		netKey:  append([]byte(nil), netKey...),
		netSeal: botcrypto.NewSealKey(netKey),
		clones:  make(map[string]*clone),
		intel:   make(map[string]*intel),
	}
}

// Stats returns a copy of the campaign counters.
func (a *Attacker) Stats() Stats { return a.stats }

// IsClone reports whether an onion address is one of the attacker's.
func (a *Attacker) IsClone(onion string) bool {
	_, ok := a.clones[onion]
	return ok
}

// KnownBots lists discovered bot addresses, sorted.
func (a *Attacker) KnownBots() []string {
	out := make([]string, 0, len(a.intel))
	for o := range a.intel {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Contained reports whether a bot's entire neighborhood is clones.
func (a *Attacker) Contained(onion string) bool {
	it, ok := a.intel[onion]
	return ok && it.contained
}

// ContainedCount reports how many discovered bots are contained.
func (a *Attacker) ContainedCount() int {
	n := 0
	for _, it := range a.intel {
		if it.contained {
			n++
		}
	}
	return n
}

// Start begins the campaign from a captured bot's address and schedules
// clone waves on the network's virtual clock.
func (a *Attacker) Start(entry string) {
	a.discover(entry)
	if a.running {
		return
	}
	a.running = true
	a.net.Scheduler().Every(a.cfg.RoundInterval, func() bool {
		a.tick()
		return a.running
	})
}

// Stop halts further waves (existing clones keep answering, keeping
// contained bots contained).
func (a *Attacker) Stop() { a.running = false }

// discover registers a bot address.
func (a *Attacker) discover(onion string) {
	if onion == "" || a.IsClone(onion) {
		return
	}
	if _, known := a.intel[onion]; known {
		return
	}
	a.intel[onion] = &intel{discovered: a.net.Now()}
	a.queue = append(a.queue, onion)
	a.stats.BotsDiscovered++
}

// tick runs one campaign wave: contact fresh discoveries and press each
// uncontained target with one more clone.
func (a *Attacker) tick() {
	// Contact everything newly discovered.
	fresh := a.queue
	a.queue = nil
	for _, onion := range fresh {
		a.pressTarget(onion)
	}
	// Press every known, uncontained target.
	for _, onion := range a.KnownBots() {
		it := a.intel[onion]
		if it.contained || it.clones >= a.cfg.MaxClonesPerTarget {
			continue
		}
		if len(fresh) > 0 && containsString(fresh, onion) {
			continue // already pressed this tick
		}
		a.pressTarget(onion)
	}
	// Clones gossip clone-only NoN lists, poisoning repair candidates.
	for _, onion := range a.cloneList {
		a.clones[onion].gossip()
	}
	a.refreshContainment()
}

// pressTarget sends one more clone at a bot.
func (a *Attacker) pressTarget(target string) {
	it, ok := a.intel[target]
	if !ok || it.contained || it.clones >= a.cfg.MaxClonesPerTarget {
		return
	}
	c, err := a.newClone(target)
	if err != nil {
		return
	}
	it.clones++
	c.contact(target)
}

// refreshContainment recomputes containment from the latest intel, in
// both directions: bots become contained when every known neighbor is a
// clone, and — crucially — contained bots that regained a benign edge
// (repair, hotlist re-rally) go back on the target list. The paper's
// clones repeat the process "until T has no more benign neighbors",
// which requires this vigilance.
func (a *Attacker) refreshContainment() {
	for _, onion := range a.KnownBots() {
		it := a.intel[onion]
		if len(it.neighbors) == 0 {
			continue
		}
		all := true
		for _, n := range it.neighbors {
			if !a.IsClone(n) {
				all = false
				break
			}
		}
		switch {
		case all && !it.contained:
			it.contained = true
			a.stats.BotsContained++
		case !all && it.contained:
			it.contained = false
			a.stats.BotsContained--
		}
	}
}

// learnNeighbors ingests a bot's current peer list (from a PEER_ACK or
// NoN gossip): update intel and enqueue new discoveries.
func (a *Attacker) learnNeighbors(bot string, neighbors []string) {
	if a.IsClone(bot) {
		return
	}
	it, ok := a.intel[bot]
	if !ok {
		a.discover(bot)
		it = a.intel[bot]
	}
	it.neighbors = append([]string(nil), neighbors...)
	for _, n := range neighbors {
		if !a.IsClone(n) {
			a.discover(n)
		}
	}
}

// cloneSiblings picks a subset of clone addresses to disclose as a
// clone's "neighbors".
func (a *Attacker) cloneSiblings(exclude string) []string {
	pool := make([]string, 0, len(a.cloneList))
	for _, o := range a.cloneList {
		if o != exclude {
			pool = append(pool, o)
		}
	}
	return sim.Sample(a.rng, pool, a.cfg.NoNSubset)
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// clone is one sybil hidden service.
type clone struct {
	a              *Attacker
	identity       *tor.Identity
	declaredDegree int
	target         string
	proofNonce     uint64
	proofBits      uint8
	retries        int
}

// newClone mints a sybil and hosts it on the attacker's single proxy.
func (a *Attacker) newClone(target string) (*clone, error) {
	var seed [32]byte
	copy(seed[:], a.drbg.Bytes(32))
	c := &clone{
		a:        a,
		identity: tor.IdentityFromSeed(seed),
		declaredDegree: a.cfg.DeclaredDegreeMin +
			a.rng.Intn(a.cfg.DeclaredDegreeMax-a.cfg.DeclaredDegreeMin+1),
		target: target,
	}
	if _, err := a.proxy.Host(c.identity, c.onInboundConn); err != nil {
		return nil, fmt.Errorf("soap: host clone: %w", err)
	}
	a.clones[c.identity.Onion()] = c
	a.cloneList = append(a.cloneList, c.identity.Onion())
	a.stats.ClonesCreated++
	return c, nil
}

func (c *clone) onion() string { return c.identity.Onion() }

// contact dials the target and requests peering with the lying degree,
// attaching any solved proof-of-work.
func (c *clone) contact(target string) {
	conn, err := c.a.proxy.Dial(target)
	if err != nil {
		return // target down or rotated; intel will refresh via others
	}
	conn.SetHandler(func(msg []byte) { c.onMessage(conn, target, msg) })
	req := &core.PeerReq{
		Onion:      c.onion(),
		Degree:     c.declaredDegree,
		ProofNonce: c.proofNonce,
		ProofBits:  c.proofBits,
	}
	c.proofNonce, c.proofBits = 0, 0 // proofs are one-shot
	env := &core.Envelope{Type: core.MsgPeerReq, MsgID: c.newMsgID(), Payload: req.Encode()}
	_ = c.send(conn, env)
}

// gossip sends a clone-only NoN list to the assigned target over a
// fresh dial (clones are patient; they re-dial every wave).
func (c *clone) gossip() {
	if c.target == "" {
		return
	}
	it, ok := c.a.intel[c.target]
	if !ok || !containsString(it.neighbors, c.onion()) {
		return // not currently peered with the target; skip
	}
	conn, err := c.a.proxy.Dial(c.target)
	if err != nil {
		return
	}
	conn.SetHandler(func(msg []byte) { c.onMessage(conn, c.target, msg) })
	up := &core.NoNUpdate{
		Onion:     c.onion(),
		Degree:    c.declaredDegree,
		Neighbors: c.a.cloneSiblings(c.onion()),
	}
	env := &core.Envelope{Type: core.MsgNoNUpdate, MsgID: c.newMsgID(), Payload: up.Encode()}
	_ = c.send(conn, env)
}

func (c *clone) newMsgID() [16]byte {
	var id [16]byte
	copy(id[:], c.a.drbg.Bytes(16))
	return id
}

func (c *clone) send(conn *tor.Conn, env *core.Envelope) error {
	if err := c.a.netSeal.SealSizedInto(c.a.sealBuf[:], env.Encode(), c.a.drbg); err != nil {
		return err
	}
	return conn.Send(c.a.sealBuf[:])
}

// onInboundConn handles bots dialing the clone (repair attempts pulled
// toward the trap).
func (c *clone) onInboundConn(conn *tor.Conn) {
	conn.SetHandler(func(msg []byte) { c.onMessage(conn, "", msg) })
}

// onMessage speaks just enough of the protocol to hold a neighborhood:
// accept all peering, answer pings, watch gossip — and silently drop
// every command (that is the neutralization).
func (c *clone) onMessage(conn *tor.Conn, dialed string, raw []byte) {
	plain, err := c.a.netSeal.Open(raw)
	if err != nil {
		return
	}
	env, err := core.DecodeEnvelope(plain)
	if err != nil {
		return
	}
	switch env.Type {
	case core.MsgPeerAck:
		ack, err := core.DecodePeerAck(env.Payload)
		if err != nil {
			return
		}
		if ack.Accepted {
			c.a.stats.PeeringAccepted++
		} else {
			c.a.stats.PeeringRejected++
		}
		// Either way the ack leaks the bot's current neighbor list.
		who := ack.Onion
		if who == "" {
			who = dialed
		}
		c.a.learnNeighbors(who, ack.Neighbors)
		// Hardened bot: pay the proof-of-work bill if configured to.
		if !ack.Accepted && ack.Challenge != nil && ack.RequiredBits > 0 &&
			c.a.cfg.SolvePoW && ack.RequiredBits <= c.a.cfg.MaxSolveBits &&
			c.retries < 3 && who != "" {
			c.retries++
			nonce, hashes := pow.Solve(ack.Challenge, ack.RequiredBits)
			c.a.stats.WorkHashes += hashes
			c.proofNonce, c.proofBits = nonce, ack.RequiredBits
			c.contact(who)
		}
	case core.MsgPeerReq:
		req, err := core.DecodePeerReq(env.Payload)
		if err != nil {
			return
		}
		if !c.a.IsClone(req.Onion) {
			c.a.discover(req.Onion)
		}
		ack := &core.PeerAck{
			Accepted:  true,
			Onion:     c.onion(),
			Degree:    c.declaredDegree,
			Neighbors: c.a.cloneSiblings(c.onion()),
		}
		_ = c.send(conn, &core.Envelope{Type: core.MsgPeerAck, MsgID: c.newMsgID(), Payload: ack.Encode()})
	case core.MsgNoNUpdate:
		up, err := core.DecodeNoNUpdate(env.Payload)
		if err != nil {
			return
		}
		c.a.learnNeighbors(up.Onion, up.Neighbors)
	case core.MsgAddrChange:
		ch, err := core.DecodeAddrChange(env.Payload)
		if err != nil {
			return
		}
		if it, ok := c.a.intel[ch.OldOnion]; ok {
			delete(c.a.intel, ch.OldOnion)
			c.a.intel[ch.NewOnion] = it
			if c.target == ch.OldOnion {
				c.target = ch.NewOnion
			}
		}
	case core.MsgPing:
		_ = c.send(conn, &core.Envelope{Type: core.MsgPong, MsgID: c.newMsgID()})
	case core.MsgBroadcast, core.MsgDirected:
		// Containment in action: clones never relay C&C traffic.
		c.a.stats.MessagesBlocked++
	}
}
