package soap

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseSpec hunts for SOAP-campaign inputs that panic the parser
// or break its contracts: accepted specs validate, label safely, and
// round-trip through JSON unchanged.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"clones": 64}`))
	f.Add([]byte(`{"clones": 24, "round_s": 15, "solve_pow": true, "solve_bits": 20}`))
	f.Add([]byte(`{"non": 3}`))
	f.Add([]byte(`{"clones": -1}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v\ninput: %q", verr, data)
		}
		if label := s.Label(); strings.ContainsAny(label, "/,") {
			t.Fatalf("label %q contains a task-label or CSV delimiter", label)
		}
		enc, merr := json.Marshal(s)
		if merr != nil {
			t.Fatalf("accepted spec does not marshal: %v", merr)
		}
		s2, perr := ParseSpec(enc)
		if perr != nil {
			t.Fatalf("re-parse of %s failed: %v", enc, perr)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round-trip changed spec: %+v vs %+v", s, s2)
		}
	})
}
