package soap

import (
	"testing"
	"time"

	"onionbots/internal/core"
	"onionbots/internal/graph"
)

// buildVictimNet creates a settled botnet of n bots for soaping.
func buildVictimNet(t *testing.T, seed uint64, n int) *core.BotNet {
	t.Helper()
	bn, err := core.NewBotNet(seed, 15, core.BotConfig{DMin: 2, DMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := bn.Grow(n, nil); err != nil {
		t.Fatal(err)
	}
	bn.Run(6 * time.Minute) // NoN gossip round
	return bn
}

func TestCrawlDiscoversWholeBotnet(t *testing.T) {
	bn := buildVictimNet(t, 40, 10)
	captured := bn.AliveBots()[0]
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	a.Start(captured.Onion())
	bn.Run(10 * time.Minute)
	if got := len(a.KnownBots()); got != 10 {
		t.Fatalf("attacker discovered %d/10 bots", got)
	}
}

func TestSoapContainsSingleTarget(t *testing.T) {
	bn := buildVictimNet(t, 41, 8)
	captured := bn.AliveBots()[0]
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	a.Start(captured.Onion())
	bn.Run(30 * time.Minute)

	// At least the first target should be fully surrounded by now.
	if got := TrueContainedCount(bn, a); got == 0 {
		t.Fatalf("no bot contained after 30m campaign (clones=%d, discovered=%d)",
			a.Stats().ClonesCreated, len(a.KnownBots()))
	}
}

func TestCampaignNeutralizesBotnet(t *testing.T) {
	bn := buildVictimNet(t, 42, 8)
	captured := bn.AliveBots()[0]
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	a.Start(captured.Onion())
	bn.Run(4 * time.Hour)

	frac := ContainmentFraction(bn, a)
	if frac < 0.9 {
		t.Fatalf("containment = %.2f after campaign, want >= 0.9 (clones=%d)",
			frac, a.Stats().ClonesCreated)
	}
	// The benign overlay must be shattered: no bot-to-bot edges left
	// means commands cannot propagate.
	benign := BenignOverlay(bn, a)
	if benign.NumEdges() > 1 {
		t.Fatalf("benign overlay still has %d edges", benign.NumEdges())
	}

	// And the proof: a broadcast from the C&C reaches (almost) nobody
	// beyond its entry bots.
	if err := bn.Broadcast("ddos", []byte("example.com"), 1); err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Minute)
	if got := bn.ExecutedCount("ddos"); got > 2 {
		t.Fatalf("broadcast still executed on %d bots after neutralization", got)
	}
}

func TestBroadcastWorksBeforeSoapingBaseline(t *testing.T) {
	// Control for the neutralization claim: same network, no SOAP, the
	// broadcast reaches everyone.
	bn := buildVictimNet(t, 42, 8) // same seed as the campaign test
	if err := bn.Broadcast("ddos", []byte("example.com"), 1); err != nil {
		t.Fatal(err)
	}
	bn.Run(2 * time.Minute)
	if got := bn.ExecutedCount("ddos"); got != 8 {
		t.Fatalf("baseline broadcast reached %d/8 bots", got)
	}
}

func TestClonesAllOnOneProxy(t *testing.T) {
	bn := buildVictimNet(t, 43, 6)
	captured := bn.AliveBots()[0]
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	a.Start(captured.Onion())
	bn.Run(time.Hour)
	if a.Stats().ClonesCreated < 6 {
		t.Fatalf("only %d clones created", a.Stats().ClonesCreated)
	}
	// All clones answer from one machine: IsClone distinguishes them,
	// bots cannot.
	for _, onion := range a.KnownBots() {
		if a.IsClone(onion) {
			t.Fatalf("attacker recorded its own clone %s as a bot", onion)
		}
	}
}

func TestContainedBotsCannotBeReached(t *testing.T) {
	bn := buildVictimNet(t, 44, 6)
	captured := bn.AliveBots()[0]
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	a.Start(captured.Onion())
	bn.Run(4 * time.Hour)
	if f := ContainmentFraction(bn, a); f < 0.9 {
		t.Skipf("campaign incomplete at %.2f; covered by TestCampaignNeutralizesBotnet", f)
	}
	// Flood-directed delivery through the (now clone-dominated) mesh
	// fails: the entry bot's peers are clones, which drop the message.
	rec := bn.Master.Records()[2]
	entry := bn.AliveBots()[0]
	cmd := bn.Master.NewCommand("wake", nil)
	_ = bn.Master.FloodDirected(entry.Onion(), rec, cmd, 6)
	bn.Run(2 * time.Minute)
	// The only way it executes is if the entry bot IS the target.
	if got := bn.ExecutedCount("wake"); got > 1 {
		t.Fatalf("directed command leaked through containment to %d bots", got)
	}
	if a.Stats().MessagesBlocked == 0 {
		t.Fatal("clones never blocked any C&C traffic")
	}
}

func TestBenignOverlayExcludesClones(t *testing.T) {
	bn := buildVictimNet(t, 45, 6)
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	full := bn.OverlayGraph()
	benign := BenignOverlay(bn, a)
	// No campaign yet: benign overlay equals the full overlay.
	if benign.NumEdges() != full.NumEdges() || benign.NumNodes() != full.NumNodes() {
		t.Fatalf("benign overlay (%d nodes %d edges) != full (%d nodes %d edges)",
			benign.NumNodes(), benign.NumEdges(), full.NumNodes(), full.NumEdges())
	}
	if graph.NumComponents(benign) != 1 {
		t.Fatal("victim net should start connected")
	}
	if got := CloneNeighborFraction(bn, a); got != 0 {
		t.Fatalf("clone fraction = %v before campaign", got)
	}
}

func TestContainmentFractionMonotoneDuringCampaign(t *testing.T) {
	bn := buildVictimNet(t, 46, 6)
	captured := bn.AliveBots()[0]
	a := NewAttacker(bn.Net, bn.Master.NetKey(), Config{})
	a.Start(captured.Onion())
	prev := 0.0
	for i := 0; i < 8; i++ {
		bn.Run(30 * time.Minute)
		frac := CloneNeighborFraction(bn, a)
		if frac+1e-9 < prev-0.25 {
			t.Fatalf("clone-neighbor fraction regressed hard: %.2f -> %.2f", prev, frac)
		}
		prev = frac
	}
	if prev < 0.5 {
		t.Fatalf("clone-neighbor fraction only %.2f after 4h", prev)
	}
}
