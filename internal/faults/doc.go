// Package faults is the deterministic infrastructure fault plane: it
// injects relay crashes, correlated HSDir outage waves, and per-dial
// introduction failures into a simulated Tor network, the way
// internal/churn injects membership events into a bot population.
//
// The paper's resilience story (and the mitigation literature around
// it — infrastructure-level takedowns rather than bot-roster attrition)
// needs the substrate itself to misbehave: circuits must die mid-run,
// descriptors must vanish with their directories, dials must fail for
// reasons no bot caused. An Engine drives one tor.Network; each
// attached Process draws every random decision from a private
// sim.NewSubstream(seed, "faults/"+name), so fault schedules are byte
// identical across runs and at any sweep parallelism, and compose
// freely with churn processes on the same scheduler.
//
// Spec is the JSON form experiments and sweep axes carry; it bundles
// the fault knobs with the client retry budget (tor.RetryPolicy) so one
// axis can cross failure intensity against resilience.
package faults
