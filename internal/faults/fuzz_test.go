package faults

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseSpec hunts for fault-plane inputs that panic the parser or
// break its contracts: accepted specs validate, label safely, and
// round-trip through JSON unchanged.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"crash_rate": 6, "restart_h": 1}`))
	f.Add([]byte(`{"outage_frac": 0.3, "outage_at_h": 2, "outage_targeted": true}`))
	f.Add([]byte(`{"intro_fail_p": 0.2, "retry_attempts": 3, "retry_backoff_s": 300}`))
	f.Add([]byte(`{"outage_frac": 1.5}`))
	f.Add([]byte(`{"restart_h": 1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v\ninput: %q", verr, data)
		}
		if label := s.Label(); strings.ContainsAny(label, "/,") {
			t.Fatalf("label %q contains a task-label or CSV delimiter", label)
		}
		enc, merr := json.Marshal(s)
		if merr != nil {
			t.Fatalf("accepted spec does not marshal: %v", merr)
		}
		s2, perr := ParseSpec(enc)
		if perr != nil {
			t.Fatalf("re-parse of %s failed: %v", enc, perr)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round-trip changed spec: %+v vs %+v", s, s2)
		}
	})
}
