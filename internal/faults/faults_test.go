package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

// newTestNetwork bootstraps a network whose bootstrapped relays all
// hold the HSDir flag, plus young extra relays that do not — the
// RelayCrash victim pool.
func newTestNetwork(t *testing.T, seed uint64, hsdirs, extras int) (*sim.Scheduler, *tor.Network) {
	t.Helper()
	sched := sim.NewScheduler()
	n := tor.NewNetwork(sched, sim.NewRNG(seed), tor.Config{})
	if err := n.Bootstrap(hsdirs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < extras; i++ {
		if _, err := n.AddRelay(); err != nil {
			t.Fatal(err)
		}
	}
	if extras > 0 {
		n.PublishConsensus()
	}
	return sched, n
}

func TestSpecParseValidateLabel(t *testing.T) {
	good := []struct{ in, label string }{
		{`{"crash_rate": 6, "restart_h": 1}`, "faults;crash=6;restart=1"},
		{`{"outage_frac": 0.3, "outage_at_h": 2, "outage_targeted": true}`, "faults;outage=0.3;at=2;tgt"},
		{`{"intro_fail_p": 0.2, "retry_attempts": 3, "retry_backoff_s": 300}`, "faults;introp=0.2;retry=3;bo=300"},
		{`{"retry_attempts": 1}`, "faults;retry=1"},
	}
	for _, c := range good {
		s, err := ParseSpec([]byte(c.in))
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if got := s.Label(); got != c.label {
			t.Errorf("%s: label %q, want %q", c.in, got, c.label)
		}
		if strings.ContainsAny(s.Label(), "/,") {
			t.Errorf("%s: label %q contains label-splitting characters", c.in, s.Label())
		}
	}
	bad := []string{
		`{}`,
		`{"crash_rate": -1}`,
		`{"crash_rate": 1e9}`,
		`{"restart_h": 1}`,
		`{"outage_frac": 1.5}`,
		`{"outage_at_h": 2}`,
		`{"outage_targeted": true}`,
		`{"intro_fail_p": 2}`,
		`{"retry_attempts": -1}`,
		`{"retry_backoff_s": 30}`,
		`{"retry_backoff_s": 30, "retry_attempts": 1}`,
		`{"outage": 0.5}`, // unknown field
	}
	for _, in := range bad {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("%s: accepted invalid spec", in)
		}
	}
}

func TestRelayCrashDeterminismAndRestart(t *testing.T) {
	run := func() ([]Event, int) {
		sched, n := newTestNetwork(t, 11, 10, 12)
		e := NewEngine(sched, 99, n)
		if err := e.Attach(&RelayCrash{Rate: 8, MeanRestart: 30 * time.Minute}); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(12 * time.Hour)
		e.Stop()
		return e.Trace(), n.NumRelays()
	}
	t1, relays1 := run()
	t2, relays2 := run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("crash trace not deterministic:\n%v\n---\n%v", t1, t2)
	}
	if relays1 != relays2 {
		t.Fatalf("final relay counts differ: %d vs %d", relays1, relays2)
	}
	crashed, restarted, _, _ := func() (int, int, int, int) {
		sched, n := newTestNetwork(t, 11, 10, 12)
		e := NewEngine(sched, 99, n)
		if err := e.Attach(&RelayCrash{Rate: 8, MeanRestart: 30 * time.Minute}); err != nil {
			t.Fatal(err)
		}
		sched.RunFor(12 * time.Hour)
		e.Stop()
		return e.Counts()
	}()
	if crashed == 0 {
		t.Fatal("crash process at rate 8 never crashed a relay in 12h")
	}
	if restarted == 0 {
		t.Fatal("restarts enabled but no relay ever returned")
	}
	if restarted > crashed {
		t.Fatalf("%d restarts exceed %d crashes", restarted, crashed)
	}
}

func TestRelayCrashSparesHSDirs(t *testing.T) {
	sched, n := newTestNetwork(t, 5, 8, 10)
	hsdirs := n.Consensus().HSDirs()
	e := NewEngine(sched, 7, n)
	if err := e.Attach(&RelayCrash{Rate: 20}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(24 * time.Hour)
	e.Stop()
	crashed, _, _, _ := e.Counts()
	if crashed == 0 {
		t.Fatal("no crashes at rate 20 over 24h")
	}
	for _, fp := range hsdirs {
		if n.Relay(fp) == nil {
			t.Fatalf("crash process killed HSDir %x", fp[:4])
		}
	}
}

func TestHSDirOutageWave(t *testing.T) {
	sched, n := newTestNetwork(t, 21, 20, 0)
	ring := n.Consensus().HSDirs() // pre-wave snapshot: lists the victims
	before := len(ring)
	e := NewEngine(sched, 13, n)
	if err := e.Attach(&HSDirOutage{After: 2 * time.Hour, Frac: 0.3}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(time.Hour)
	if _, _, outaged, _ := e.Counts(); outaged != 0 {
		t.Fatal("wave fired before its instant")
	}
	sched.RunFor(90 * time.Minute)
	e.Stop()
	_, _, outaged, _ := e.Counts()
	want := int(0.3*float64(before) + 0.5)
	if outaged != want {
		t.Fatalf("outage removed %d of %d dirs, want %d", outaged, before, want)
	}
	// The victims are a contiguous ring arc: walking the pre-wave ring
	// must cross exactly one dead run (wrap-around counts as one).
	deadRuns, prevDead := 0, n.Relay(ring[len(ring)-1]) == nil
	for _, fp := range ring {
		dead := n.Relay(fp) == nil
		if dead && !prevDead {
			deadRuns++
		}
		prevDead = dead
	}
	if deadRuns != 1 {
		t.Fatalf("outage removed %d disjoint arcs, want 1 contiguous", deadRuns)
	}
}

func TestHSDirOutageTargetsService(t *testing.T) {
	sched, n := newTestNetwork(t, 31, 20, 0)
	// Host a service, then target its responsible directories.
	id := tor.IdentityFromSeed([32]byte{31})
	proxy := tor.NewProxy(n)
	hs, err := proxy.Host(id, func(*tor.Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sched, 17, n)
	if err := e.Attach(&HSDirOutage{After: time.Hour, Frac: 0.3, Service: hs.Onion()}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(time.Hour + time.Minute)
	e.Stop()
	// Every responsible directory of every replica must be dead.
	c := n.Consensus()
	sid := id.ServiceID()
	now := n.Now()
	for r := 0; r < tor.NumReplicas; r++ {
		for _, fp := range c.ResponsibleHSDirs(tor.ComputeDescriptorID(sid, nil, r, now)) {
			if n.Relay(fp) != nil {
				t.Fatalf("replica %d responsible dir %x survived a targeted wave", r, fp[:4])
			}
		}
	}
}

func TestIntroFailureInjectsAndUninstalls(t *testing.T) {
	sched, n := newTestNetwork(t, 41, 12, 0)
	id := tor.IdentityFromSeed([32]byte{41})
	server := tor.NewProxy(n)
	hs, err := server.Host(id, func(*tor.Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sched, 23, n)
	if err := e.Attach(&IntroFailure{P: 1}); err != nil {
		t.Fatal(err)
	}
	client := tor.NewProxy(n)
	if _, err := client.Dial(hs.Onion()); err == nil {
		t.Fatal("dial succeeded under a certain intro fault")
	}
	if _, _, _, introFaults := e.Counts(); introFaults == 0 {
		t.Fatal("intro fault fired but trace recorded nothing")
	}
	// Stop uninstalls the hook: dials work again.
	e.Stop()
	if _, err := tor.NewProxy(n).Dial(hs.Onion()); err != nil {
		t.Fatalf("dial still failing after Stop: %v", err)
	}
}

func TestEngineRejectsDuplicateNames(t *testing.T) {
	sched, n := newTestNetwork(t, 51, 6, 0)
	e := NewEngine(sched, 1, n)
	if err := e.Attach(&RelayCrash{Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(&RelayCrash{Rate: 2}); err == nil {
		t.Fatal("duplicate process name accepted")
	}
	if err := e.Attach(&RelayCrash{Rate: 2, Label: "relay-crash-2"}); err != nil {
		t.Fatalf("labeled duplicate rejected: %v", err)
	}
}

func TestEngineStopFreezesProcesses(t *testing.T) {
	sched, n := newTestNetwork(t, 61, 8, 10)
	e := NewEngine(sched, 3, n)
	if err := e.Attach(&RelayCrash{Rate: 50}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(2 * time.Hour)
	e.Stop()
	frozen := len(e.Trace())
	sched.RunFor(12 * time.Hour)
	if got := len(e.Trace()); got != frozen {
		t.Fatalf("trace grew after Stop: %d -> %d", frozen, got)
	}
}

func TestSpecAttachComposition(t *testing.T) {
	sched, n := newTestNetwork(t, 71, 12, 10)
	spec := Spec{CrashRate: 10, RestartH: 0.5, IntroFailP: 0.1, RetryAttempts: 2}
	e := NewEngine(sched, 5, n)
	if err := spec.Attach(e, AttachOptions{}); err != nil {
		t.Fatal(err)
	}
	sched.RunFor(12 * time.Hour)
	e.Stop()
	crashed, _, _, _ := e.Counts()
	if crashed == 0 {
		t.Fatal("composed spec never crashed a relay")
	}
	// A targeted spec needs a target at attach time.
	bad := Spec{OutageFrac: 0.2, OutageTargeted: true}
	if err := bad.Attach(NewEngine(sched, 6, n), AttachOptions{}); err == nil {
		t.Fatal("targeted spec attached without a target service")
	}
	// A retry-only spec attaches nothing but is a valid baseline.
	baseline := Spec{RetryAttempts: 4}
	e2 := NewEngine(sched, 7, n)
	if err := baseline.Attach(e2, AttachOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(e2.Trace()) != 0 {
		t.Fatal("retry-only spec produced fault events")
	}
	if rp := baseline.RetryPolicy(); !rp.Enabled() || rp.MaxAttempts != 4 {
		t.Fatalf("retry policy not realized: %+v", rp)
	}
}
