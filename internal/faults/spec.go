package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"onionbots/internal/jsonx"
	"onionbots/internal/tor"
)

// Spec is the declarative, JSON-serializable form of a fault plane —
// what experiment parameters carry and what a sweep's "faults" axis
// lists. One spec bundles the fault processes to inject AND the
// client-side retry budget to fight them with, so a single sweep axis
// can cross outage intensity against resilience (the hsdir-outage-grid
// example does exactly that).
//
//	{"crash_rate": 6, "restart_h": 1}
//	{"outage_frac": 0.3, "outage_at_h": 2, "outage_targeted": true}
//	{"intro_fail_p": 0.2, "retry_attempts": 3, "retry_backoff_s": 300}
type Spec struct {
	// CrashRate enables a RelayCrash process: mean relay crashes per
	// virtual hour.
	CrashRate float64 `json:"crash_rate,omitempty"`
	// RestartH is the mean crash-to-restart delay in virtual hours;
	// zero means crashed relays never return. Requires CrashRate.
	RestartH float64 `json:"restart_h,omitempty"`
	// OutageFrac enables an HSDirOutage process: the fraction of the
	// HSDir ring one wave removes, in (0, 1].
	OutageFrac float64 `json:"outage_frac,omitempty"`
	// OutageAtH is the wave instant in virtual hours after attach.
	// Requires OutageFrac.
	OutageAtH float64 `json:"outage_at_h,omitempty"`
	// OutageTargeted centers the wave on the focal service an experiment
	// names in AttachOptions (typically its C&C). Requires OutageFrac.
	OutageTargeted bool `json:"outage_targeted,omitempty"`
	// IntroFailP enables an IntroFailure process: per-dial introduction
	// failure probability, in (0, 1].
	IntroFailP float64 `json:"intro_fail_p,omitempty"`
	// RetryAttempts is the client dial budget including the first
	// attempt; 0 or 1 means no retries. See RetryPolicy.
	RetryAttempts int `json:"retry_attempts,omitempty"`
	// RetryBackoffS is the base backoff before the second attempt in
	// virtual seconds (doubled per failure); zero takes the tor-layer
	// default. Requires RetryAttempts > 1.
	RetryBackoffS float64 `json:"retry_backoff_s,omitempty"`
}

// ParseSpec decodes and validates a JSON spec. Unknown fields are
// rejected, mirroring sweep parsing, so a typo ("outage" for
// "outage_frac") cannot silently disable an axis.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("parse faults spec: %w", jsonx.Describe(data, err))
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec without attaching it.
func (s Spec) Validate() error {
	if s == (Spec{}) {
		return fmt.Errorf("faults: empty spec (set a fault knob or a retry budget)")
	}
	if s.CrashRate < 0 {
		return fmt.Errorf("faults: negative crash_rate %g", s.CrashRate)
	}
	if s.RestartH < 0 {
		return fmt.Errorf("faults: negative restart_h %g", s.RestartH)
	}
	if s.RestartH > 0 && s.CrashRate == 0 {
		return fmt.Errorf("faults: restart_h without crash_rate")
	}
	if s.OutageFrac < 0 || s.OutageFrac > 1 {
		return fmt.Errorf("faults: outage_frac %g outside [0, 1]", s.OutageFrac)
	}
	if s.OutageAtH < 0 {
		return fmt.Errorf("faults: negative outage_at_h %g", s.OutageAtH)
	}
	if (s.OutageAtH > 0 || s.OutageTargeted) && s.OutageFrac == 0 {
		return fmt.Errorf("faults: outage_at_h/outage_targeted without outage_frac")
	}
	if s.IntroFailP < 0 || s.IntroFailP > 1 {
		return fmt.Errorf("faults: intro_fail_p %g outside [0, 1]", s.IntroFailP)
	}
	if s.RetryAttempts < 0 {
		return fmt.Errorf("faults: negative retry_attempts %d", s.RetryAttempts)
	}
	if s.RetryBackoffS < 0 {
		return fmt.Errorf("faults: negative retry_backoff_s %g", s.RetryBackoffS)
	}
	if s.RetryBackoffS > 0 && s.RetryAttempts <= 1 {
		return fmt.Errorf("faults: retry_backoff_s without retry_attempts > 1")
	}
	// Process-level validation (rate cap etc.) without a network.
	for _, p := range s.processes("") {
		if err := p.validate(nil); err != nil {
			return err
		}
	}
	return nil
}

// AttachOptions carries run-time context a Spec cannot know when it is
// written: which service a targeted outage centers on.
type AttachOptions struct {
	// TargetService is the onion address targeted outages (OutageTargeted)
	// center on — typically the experiment's C&C rally address.
	TargetService string
}

// Attach builds the spec's enabled fault processes and attaches each to
// the engine. A spec with only retry knobs attaches nothing — it is a
// legitimate baseline row of a sweep grid.
func (s Spec) Attach(e *Engine, opts AttachOptions) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.OutageTargeted && opts.TargetService == "" {
		return fmt.Errorf("faults: outage_targeted spec attached without a target service")
	}
	for _, p := range s.processes(opts.TargetService) {
		if err := e.Attach(p); err != nil {
			return err
		}
	}
	return nil
}

// processes builds the live fault processes the spec enables.
func (s Spec) processes(targetService string) []Process {
	var out []Process
	if s.CrashRate > 0 {
		out = append(out, &RelayCrash{
			Rate:        s.CrashRate,
			MeanRestart: time.Duration(s.RestartH * float64(time.Hour)),
		})
	}
	if s.OutageFrac > 0 {
		o := &HSDirOutage{
			After: time.Duration(s.OutageAtH * float64(time.Hour)),
			Frac:  s.OutageFrac,
		}
		if s.OutageTargeted {
			o.Service = targetService
		}
		out = append(out, o)
	}
	if s.IntroFailP > 0 {
		out = append(out, &IntroFailure{P: s.IntroFailP})
	}
	return out
}

// RetryPolicy realizes the spec's client-side retry knobs as a proxy
// policy. The zero knobs give the zero (disabled) policy.
func (s Spec) RetryPolicy() tor.RetryPolicy {
	if s.RetryAttempts <= 1 {
		return tor.RetryPolicy{}
	}
	rp := tor.RetryPolicy{MaxAttempts: s.RetryAttempts}
	if s.RetryBackoffS > 0 {
		rp.BaseBackoff = time.Duration(s.RetryBackoffS * float64(time.Second))
	}
	return rp
}

// Label renders the spec as a compact deterministic string: "faults"
// plus every non-default knob, ";"-separated —
// "faults;outage=0.3;at=2;tgt;retry=4;bo=1800". Task labels embed it
// ("hsdir-outage/faults=faults;outage=0.3/seed=1"), so it contains no
// "/" and no "," (which would break label splitting and CSV cells
// respectively).
func (s Spec) Label() string {
	var b strings.Builder
	b.WriteString("faults")
	part := func(k string, v float64) {
		if v != 0 {
			fmt.Fprintf(&b, ";%s=%g", k, v)
		}
	}
	part("crash", s.CrashRate)
	part("restart", s.RestartH)
	part("outage", s.OutageFrac)
	part("at", s.OutageAtH)
	if s.OutageTargeted {
		b.WriteString(";tgt")
	}
	part("introp", s.IntroFailP)
	part("retry", float64(s.RetryAttempts))
	part("bo", s.RetryBackoffS)
	return b.String()
}
