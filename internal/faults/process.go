package faults

import (
	"fmt"
	"time"

	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

// Process is one fault process: a source of infrastructure failures
// that the engine schedules on the simulation's timer wheel.
type Process interface {
	// Name identifies the process: it tags trace events and names the
	// process's RNG substream, so it must be unique per engine.
	Name() string
	// validate checks the process parameters before anything is
	// scheduled.
	validate(net *tor.Network) error
	// attach schedules the process's first event. rng is the process's
	// private substream; all of the process's randomness (arrival
	// times, victim selection, restart identities) must come from it.
	attach(e *Engine, rng *sim.RNG)
}

// MaxRate bounds the crash rate (events per virtual hour) a process
// accepts, mirroring churn.MaxRate: a typo in a sweep spec should fail
// validation, not degenerate the run into same-instant event grinding.
const MaxRate = 1e6

// RelayCrash is a memoryless crash process over non-HSDir relays:
// crashes arrive at Rate (events per virtual hour) with exponential
// inter-arrival times, each killing one uniformly random live relay
// that does not hold the HSDir flag in the current consensus (directory
// loss is HSDirOutage's axis). Every circuit through the victim dies,
// which is what actually stresses the overlay. With MeanRestart set,
// each crashed relay is replaced after an exponentially distributed
// delay by a fresh relay whose identity derives from this process's
// substream — the replacement starts at zero uptime, so it stays out of
// the HSDir ring for Config.HSDirUptime, as a real rebooted relay would.
type RelayCrash struct {
	// Rate is the mean crash rate in events per virtual hour. Required
	// positive.
	Rate float64
	// MeanRestart is the mean crash-to-restart delay; zero means crashed
	// relays never return.
	MeanRestart time.Duration
	// Label overrides the process name ("relay-crash" by default).
	Label string
}

// Name implements Process.
func (p *RelayCrash) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "relay-crash"
}

func (p *RelayCrash) validate(*tor.Network) error {
	if p.Rate <= 0 {
		return fmt.Errorf("faults: %s: rate %g not positive", p.Name(), p.Rate)
	}
	if p.Rate > MaxRate {
		return fmt.Errorf("faults: %s: rate %g exceeds the %g cap", p.Name(), p.Rate, float64(MaxRate))
	}
	if p.MeanRestart < 0 {
		return fmt.Errorf("faults: %s: negative restart delay", p.Name())
	}
	return nil
}

func (p *RelayCrash) attach(e *Engine, rng *sim.RNG) {
	name := p.Name()
	// Crashing below this floor would leave too few relays to build any
	// path (guard + middles + terminal); the process skips events there
	// rather than wedging the whole network.
	floor := e.net.Config().PathLen + 3
	var step func()
	schedule := func() {
		d := time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Hour))
		e.sched.After(d, step)
	}
	step = func() {
		if e.stopped {
			return
		}
		defer schedule()
		if e.net.NumRelays() <= floor {
			return
		}
		victim := pickNonHSDir(e.net, rng)
		if victim == (tor.Fingerprint{}) {
			return
		}
		e.net.RemoveRelay(victim)
		e.record(name, KindCrash, 1)
		if p.MeanRestart <= 0 {
			return
		}
		// Draw the restart delay and replacement identity now, at crash
		// time, so the substream is consumed in strict crash order.
		delay := time.Duration(rng.ExpFloat64() * float64(p.MeanRestart))
		var seed [32]byte
		rng.Fill(seed[:])
		e.sched.After(delay, func() {
			if e.stopped {
				return
			}
			if _, err := e.net.AddRelayWithSeed(seed); err == nil {
				e.record(name, KindRestart, 1)
			}
		})
	}
	schedule()
}

// pickNonHSDir selects a uniformly random live relay without the HSDir
// flag from the current consensus (the stale directory view a real
// adversary or failure domain would act on). It returns the zero
// fingerprint when no candidate is found within the attempt bound.
func pickNonHSDir(net *tor.Network, rng *sim.RNG) tor.Fingerprint {
	c := net.Consensus()
	if c == nil || len(c.Relays) == 0 {
		return tor.Fingerprint{}
	}
	for attempts := 0; attempts < 8*len(c.Relays); attempts++ {
		ri := c.Relays[rng.Intn(len(c.Relays))]
		if ri.HSDir {
			continue
		}
		if net.Relay(ri.FP) == nil {
			continue // died since publication
		}
		return ri.FP
	}
	return tor.Fingerprint{}
}

// HSDirOutage removes a contiguous segment of the HSDir ring at one
// scheduled instant — the correlated loss a datacenter failure, AS
// outage, or coordinated seizure produces, and the worst case for
// descriptor availability because responsible-directory sets are
// consecutive ring arcs. With Service set, the wave is centered on that
// service's responsible directories (every replica) before extending
// along the ring: the mitigation-literature scenario of defenders
// seizing exactly the directories hosting a C&C descriptor.
type HSDirOutage struct {
	// After is how long after Attach the wave fires.
	After time.Duration
	// Frac is the fraction of the current HSDir ring removed, in (0, 1].
	Frac float64
	// Service, when non-empty, is an onion address whose responsible
	// directories the wave removes first (all replicas), before the
	// contiguous extension. The targeted arcs count toward Frac but are
	// never truncated by it.
	Service string
	// Label overrides the process name ("hsdir-outage" by default).
	Label string
}

// Name implements Process.
func (o *HSDirOutage) Name() string {
	if o.Label != "" {
		return o.Label
	}
	return "hsdir-outage"
}

func (o *HSDirOutage) validate(*tor.Network) error {
	if o.After < 0 {
		return fmt.Errorf("faults: %s: negative delay", o.Name())
	}
	if o.Frac <= 0 || o.Frac > 1 {
		return fmt.Errorf("faults: %s: fraction %g outside (0, 1]", o.Name(), o.Frac)
	}
	if o.Service != "" {
		if _, err := tor.ParseOnion(o.Service); err != nil {
			return fmt.Errorf("faults: %s: bad service: %w", o.Name(), err)
		}
	}
	return nil
}

func (o *HSDirOutage) attach(e *Engine, rng *sim.RNG) {
	name := o.Name()
	e.sched.After(o.After, func() {
		if e.stopped {
			return
		}
		c := e.net.Consensus()
		if c == nil {
			return
		}
		ring := c.HSDirs()
		if len(ring) == 0 {
			return
		}
		count := int(o.Frac*float64(len(ring)) + 0.5)
		if count < 1 {
			count = 1
		}
		if count > len(ring) {
			count = len(ring)
		}
		victims := make(map[tor.Fingerprint]struct{}, count)
		order := make([]tor.Fingerprint, 0, count)
		add := func(fp tor.Fingerprint) {
			if _, dup := victims[fp]; !dup {
				victims[fp] = struct{}{}
				order = append(order, fp)
			}
		}
		if o.Service != "" {
			if sid, err := tor.ParseOnion(o.Service); err == nil {
				now := e.net.Now()
				for r := 0; r < tor.NumReplicas; r++ {
					for _, fp := range c.ResponsibleHSDirs(tor.ComputeDescriptorID(sid, nil, r, now)) {
						add(fp)
					}
				}
			}
		}
		// Extend with a contiguous arc from a random ring position. The
		// single Intn draw happens whether or not the targeted arcs
		// already satisfied Frac, so targeting never shifts the stream.
		start := rng.Intn(len(ring))
		for i := 0; len(order) < count && i < len(ring); i++ {
			add(ring[(start+i)%len(ring)])
		}
		removed := 0
		for _, fp := range order {
			if e.net.Relay(fp) == nil {
				continue // already dead (another process got it first)
			}
			e.net.RemoveRelay(fp)
			removed++
		}
		if removed > 0 {
			e.record(name, KindOutage, removed)
		}
	})
}

// IntroFailure makes each client introduction attempt fail with
// probability P: the INTRODUCE1 cell is eaten in flight, the dial
// stalls and fails exactly as if the intro point silently dropped it.
// Unlike the crash processes it removes nothing — it models flaky
// intro-point paths, and is the fault the dial retry policy pays off
// against fastest. The per-dial decision draws from this process's
// substream via Network.SetIntroFault, so arming it never perturbs the
// network's main random stream.
type IntroFailure struct {
	// P is the per-dial failure probability, required in (0, 1].
	P float64
	// Label overrides the process name ("intro-failure" by default).
	Label string
}

// Name implements Process.
func (f *IntroFailure) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "intro-failure"
}

func (f *IntroFailure) validate(*tor.Network) error {
	if f.P <= 0 || f.P > 1 {
		return fmt.Errorf("faults: %s: probability %g outside (0, 1]", f.Name(), f.P)
	}
	return nil
}

func (f *IntroFailure) attach(e *Engine, rng *sim.RNG) {
	name := f.Name()
	e.net.SetIntroFault(f.P, rng, func() {
		e.record(name, KindIntroFault, 1)
	})
	e.onStop = append(e.onStop, func() {
		e.net.SetIntroFault(0, nil, nil)
	})
}
