package faults

import (
	"fmt"
	"time"

	"onionbots/internal/sim"
	"onionbots/internal/tor"
)

// Kind classifies a fault trace event.
type Kind uint8

// Trace event kinds.
const (
	// KindCrash is one relay removed by a crash process.
	KindCrash Kind = iota + 1
	// KindRestart is one crashed relay returning with a fresh identity.
	KindRestart
	// KindOutage is a correlated wave removing several relays at once.
	KindOutage
	// KindIntroFault is one INTRODUCE1 cell eaten by an intro fault.
	KindIntroFault
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindOutage:
		return "outage"
	case KindIntroFault:
		return "intro-fault"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one entry of the fault trace: what happened, when (virtual
// time since sim.Epoch), under which process, how many relays it
// affected, and the live relay population right after.
type Event struct {
	At      time.Duration
	Process string
	Kind    Kind
	Count   int
	// Relays is the live relay count immediately after the event.
	Relays int
}

// Engine attaches fault processes to a simulated Tor network: it
// derives every attached process's RNG substream and records the event
// trace. One engine drives one network; processes compose by attaching
// several to the same engine — and the engine composes freely with a
// churn.Engine running on the same scheduler, which is how experiments
// cross infrastructure faults with membership churn.
//
// Determinism contract (the churn.Engine contract verbatim): the engine
// never draws randomness itself. Each process is seeded with
// sim.NewSubstream(seed, "faults/"+name) at Attach time, so the fault
// trace is a pure function of (seed, attached process set, network
// state) — independent of sweep worker count, exactly like experiment
// task substreams.
type Engine struct {
	sched   *sim.Scheduler
	seed    uint64
	net     *tor.Network
	trace   []Event
	stopped bool
	names   map[string]struct{}
	// onStop runs once at Stop time; processes that install standing
	// hooks on the network (IntroFailure) register their uninstall here.
	onStop []func()
}

// NewEngine creates an engine injecting faults into net on sched. seed
// is the substream root for every attached process; experiments pass
// sim.SubstreamSeed(taskSeed, "<experiment>/faults") or similar.
func NewEngine(sched *sim.Scheduler, seed uint64, net *tor.Network) *Engine {
	return &Engine{
		sched: sched,
		seed:  seed,
		net:   net,
		names: map[string]struct{}{},
	}
}

// Network returns the network under fault injection.
func (e *Engine) Network() *tor.Network { return e.net }

// Attach starts a process: it validates the process against the
// network, derives the process's RNG substream from the engine seed and
// the process name, and schedules its first event. Attaching two
// processes with the same name is rejected — they would share a
// substream, breaking independence.
func (e *Engine) Attach(p Process) error {
	name := p.Name()
	if name == "" {
		return fmt.Errorf("faults: process has no name")
	}
	if _, dup := e.names[name]; dup {
		return fmt.Errorf("faults: duplicate process name %q (set Label to disambiguate)", name)
	}
	if err := p.validate(e.net); err != nil {
		return err
	}
	e.names[name] = struct{}{}
	p.attach(e, sim.NewSubstream(e.seed, "faults/"+name))
	return nil
}

// Stop halts every attached process: events already on the scheduler
// still fire but become no-ops, and standing hooks (intro faults) are
// uninstalled. Use it to freeze the network for post-run measurement.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	for _, fn := range e.onStop {
		fn()
	}
	e.onStop = nil
}

// Trace returns a copy of the recorded event trace, in firing order.
func (e *Engine) Trace() []Event { return append([]Event(nil), e.trace...) }

// Counts tallies the trace: relays crashed, relays restarted, relays
// removed by outage waves, and intro faults injected.
func (e *Engine) Counts() (crashed, restarted, outaged, introFaults int) {
	for _, ev := range e.trace {
		switch ev.Kind {
		case KindCrash:
			crashed += ev.Count
		case KindRestart:
			restarted += ev.Count
		case KindOutage:
			outaged += ev.Count
		case KindIntroFault:
			introFaults += ev.Count
		}
	}
	return crashed, restarted, outaged, introFaults
}

// record appends one trace event stamped with the current virtual time
// and relay population.
func (e *Engine) record(process string, kind Kind, count int) {
	e.trace = append(e.trace, Event{
		At:      e.sched.Elapsed(),
		Process: process,
		Kind:    kind,
		Count:   count,
		Relays:  e.net.NumRelays(),
	})
}
