package tor

import (
	"testing"
	"time"

	"onionbots/internal/sim"
)

// testDescriptor fabricates a descriptor with rng-driven field shapes,
// including the degenerate ones the flat backend tolerates (empty pub,
// no intro points, nil sig).
func testDescriptor(rng *sim.RNG, base time.Time) *Descriptor {
	d := &Descriptor{
		TimePeriod:  uint64(rng.Intn(1000)),
		Replica:     rng.Intn(NumReplicas),
		PublishedAt: base.Add(time.Duration(rng.Intn(86400)) * time.Second),
	}
	if rng.Bool(0.9) {
		d.Pub = rng.Bytes(32)
	}
	for i := rng.Intn(4); i > 0; i-- {
		var fp Fingerprint
		copy(fp[:], rng.Bytes(20))
		d.IntroPoints = append(d.IntroPoints, fp)
	}
	if rng.Bool(0.9) {
		d.Sig = rng.Bytes(64)
	}
	return d
}

// descMatch compares a Get result pair across backends: presence must
// agree, and present descriptors must be field-for-field equal (the
// mmap backend decodes fresh copies, so pointer identity is out).
func descMatch(a *Descriptor, aok bool, b *Descriptor, bok bool) bool {
	if aok != bok {
		return false
	}
	if !aok {
		return true
	}
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.equal(b)
}

// TestMmapStoreRoundTrip pins the codec: every field that participates
// in Descriptor.equal survives a Put/Get round trip, including zero
// times and empty slices.
func TestMmapStoreRoundTrip(t *testing.T) {
	s := NewMmapDescriptorStore()
	rng := sim.NewRNG(1)
	base := sim.Epoch
	cases := []*Descriptor{
		{},  // all zero fields, zero PublishedAt
		nil, // flat stores nil pointers; so must we
		testDescriptor(rng, base),
		{Pub: rng.Bytes(32), Sig: rng.Bytes(64), Replica: 1,
			TimePeriod: 42, PublishedAt: base.Add(3 * time.Hour)},
	}
	for i, want := range cases {
		var id DescriptorID
		copy(id[:], rng.Bytes(20))
		s.Put(id, want)
		got, ok := s.Get(id)
		if !ok {
			t.Fatalf("case %d: lost entry", i)
		}
		if want == nil {
			if got != nil {
				t.Fatalf("case %d: nil descriptor came back non-nil", i)
			}
			continue
		}
		if !got.equal(want) {
			t.Fatalf("case %d: round trip mismatch:\ngot  %+v\nwant %+v", i, got, want)
		}
		if got == want {
			t.Fatalf("case %d: Get returned the stored pointer; mmap must decode a copy", i)
		}
	}
}

// TestMmapStoreChunkBoundary drives records across chunk boundaries:
// payloads sized so the padding path runs, then verifies every entry.
func TestMmapStoreChunkBoundary(t *testing.T) {
	s := NewMmapDescriptorStore()
	rng := sim.NewRNG(2)
	const n = 300
	ids := make([]DescriptorID, n)
	descs := make([]*Descriptor, n)
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
		// ~4 KiB sig forces several chunk crossings over 300 records
		// (300 × ~4.2 KiB ≈ 1.2 MiB > one 1 MiB chunk).
		descs[i] = &Descriptor{Sig: rng.Bytes(4096), PublishedAt: sim.Epoch}
		s.Put(ids[i], descs[i])
	}
	if st := s.Stats(); st.Chunks < 2 {
		t.Fatalf("expected multiple chunks, got %d", st.Chunks)
	}
	for i, id := range ids {
		got, ok := s.Get(id)
		if !ok || !got.equal(descs[i]) {
			t.Fatalf("entry %d lost or corrupted across chunk boundary", i)
		}
	}
}

// TestMmapStoreCompaction churns one hot key set until the natural
// dead>live trigger fires, then verifies observable state survived and
// the log actually shrank.
func TestMmapStoreCompaction(t *testing.T) {
	s := NewMmapDescriptorStore()
	rng := sim.NewRNG(3)
	const n = 64
	ids := make([]DescriptorID, n)
	descs := make([]*Descriptor, n)
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
		descs[i] = &Descriptor{Sig: rng.Bytes(2048), PublishedAt: sim.Epoch}
		s.Put(ids[i], descs[i])
	}
	for round := 0; s.Stats().Compactions == 0; round++ {
		if round > 100 {
			t.Fatalf("compaction never triggered: %+v", s.Stats())
		}
		for i, id := range ids {
			s.Delete(id)
			s.Put(id, descs[i])
		}
	}
	st := s.Stats()
	if st.DeadBytes > st.LiveBytes {
		t.Fatalf("compaction left dead %d > live %d", st.DeadBytes, st.LiveBytes)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d after compaction, want %d", s.Len(), n)
	}
	for i, id := range ids {
		got, ok := s.Get(id)
		if !ok || !got.equal(descs[i]) {
			t.Fatalf("entry %d lost or corrupted by compaction", i)
		}
	}
}

// TestMmapStoreRebuildIndex proves the log is a self-contained
// operation journal: dropping the index and replaying the log must
// reproduce the exact observable state, including after overwrites,
// deletes, and a compaction.
func TestMmapStoreRebuildIndex(t *testing.T) {
	s := NewMmapDescriptorStore()
	ref := NewFlatDescriptorStore()
	rng := sim.NewRNG(4)
	ids := make([]DescriptorID, 48)
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
	}
	descs := make([]*Descriptor, 8)
	for i := range descs {
		descs[i] = testDescriptor(rng, sim.Epoch)
	}
	for step := 0; step < 3000; step++ {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(3) {
		case 0, 1:
			d := descs[rng.Intn(len(descs))]
			s.Put(id, d)
			ref.Put(id, d)
		default:
			s.Delete(id)
			ref.Delete(id)
		}
	}
	s.compact()
	s.rebuildIndex()
	if s.Len() != ref.Len() {
		t.Fatalf("rebuilt Len = %d, want %d", s.Len(), ref.Len())
	}
	for _, id := range ids {
		md, mok := s.Get(id)
		fd, fok := ref.Get(id)
		if !descMatch(md, mok, fd, fok) {
			t.Fatalf("rebuilt Get(%x) = (%v,%v), want (%v,%v)", id[:4], md, mok, fd, fok)
		}
	}
}

// TestMmapStoreClose pins Close semantics: the store empties, chunks
// are released, and it stays usable.
func TestMmapStoreClose(t *testing.T) {
	s := NewMmapDescriptorStore()
	rng := sim.NewRNG(5)
	var id DescriptorID
	copy(id[:], rng.Bytes(20))
	s.Put(id, &Descriptor{Sig: rng.Bytes(16), PublishedAt: sim.Epoch})
	s.Close()
	if s.Len() != 0 || s.Stats().Chunks != 0 {
		t.Fatalf("Close left state behind: len=%d stats=%+v", s.Len(), s.Stats())
	}
	if _, ok := s.Get(id); ok {
		t.Fatal("Get after Close returned an entry")
	}
	d := &Descriptor{Sig: rng.Bytes(16), PublishedAt: sim.Epoch}
	s.Put(id, d)
	if got, ok := s.Get(id); !ok || !got.equal(d) {
		t.Fatal("store unusable after Close")
	}
	s.Close()
}

// TestMmapStoreBackendOption exercises the mmap backend through the
// full host/dial path, like TestFlatStoreBackendOption does for flat.
func TestMmapStoreBackendOption(t *testing.T) {
	sched := sim.NewScheduler()
	n := NewNetwork(sched, sim.NewRNG(3), Config{
		NewDescriptorStore: func() DescriptorStore { return NewMmapDescriptorStore() },
	})
	if err := n.Bootstrap(12); err != nil {
		t.Fatal(err)
	}
	var seed [32]byte
	seed[0] = 9
	hs, err := NewProxy(n).Host(IdentityFromSeed(seed), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

// TestNewDescriptorStoreByName pins the factory's name mapping and its
// rejection of unknown backends.
func TestNewDescriptorStoreByName(t *testing.T) {
	for _, name := range append([]string{""}, StoreBackendNames()...) {
		factory, err := NewDescriptorStoreByName(name)
		if err != nil {
			t.Fatalf("NewDescriptorStoreByName(%q): %v", name, err)
		}
		if factory() == nil {
			t.Fatalf("NewDescriptorStoreByName(%q) built a nil store", name)
		}
	}
	if _, err := NewDescriptorStoreByName("bogus"); err == nil {
		t.Fatal("unknown backend name accepted")
	}
}

// TestMmapStoreChurnAllocs pins the allocation profile of the hot
// churn path (Delete+Put of a steady population): nothing per op
// beyond amortized log growth, which the generous bound absorbs.
func TestMmapStoreChurnAllocs(t *testing.T) {
	rng := sim.NewRNG(7)
	s := NewMmapDescriptorStore()
	ids := make([]DescriptorID, 256)
	for i := range ids {
		copy(ids[i][:], rng.Bytes(20))
	}
	d := &Descriptor{Pub: rng.Bytes(32), Sig: rng.Bytes(64), PublishedAt: sim.Epoch}
	for _, id := range ids {
		s.Put(id, d)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		id := ids[i%len(ids)]
		s.Delete(id)
		s.Put(id, d)
		i++
	})
	// Put/Delete append to mapped chunks through a reused scratch
	// buffer: the only allocations are the occasional fresh chunk and
	// compaction, amortized far below one object per op.
	if allocs > 0.5 {
		t.Fatalf("steady churn allocated %.2f objects/op, want amortized < 0.5", allocs)
	}
}
