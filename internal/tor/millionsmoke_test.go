package tor

import (
	"encoding/binary"
	"runtime"
	"testing"

	"onionbots/internal/sim"
)

// TestMmapStoreMillionEntryHeapCeiling is the memory-plane smoke for
// the tentpole claim: a 10^6-descriptor population must live outside
// the Go heap. It loads a million descriptors into the mmap backend,
// churns a fifth of them (tombstones + compaction), and then asserts
// two ceilings from runtime.ReadMemStats: heap bytes grow by at most
// the flat digest→offset index (a few tens of MiB, not the ~GiB a
// pointer-per-descriptor layout costs), and heap object count grows by
// only a handful of slices — i.e. the GC's marking work is independent
// of population. Skipped under -short; `make race` and quick local
// runs stay fast, the full `go test` gate runs it.
func TestMmapStoreMillionEntryHeapCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("10^6-entry smoke skipped in -short mode")
	}
	const (
		n          = 1_000_000
		churn      = n / 5
		byteCeil   = 192 << 20 // index slots + transient growth headroom
		objectCeil = 10_000    // flat slices, not per-descriptor objects
	)

	rng := sim.NewRNG(9)
	d := &Descriptor{Pub: rng.Bytes(32), Sig: rng.Bytes(64), PublishedAt: sim.Epoch}
	// Real digests are hash outputs; mix the counter so the IDs are
	// uniform like SHA-1 digests instead of sequential (which would be
	// an adversarial probe pattern for the open-addressed index, a
	// different property than the one under test).
	mixID := func(i uint64) (id DescriptorID) {
		z := (i + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		binary.LittleEndian.PutUint64(id[:8], z^z>>31)
		binary.LittleEndian.PutUint64(id[8:16], i)
		return id
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	s := NewMmapDescriptorStore()
	defer s.Close()
	for i := 0; i < n; i++ {
		s.Put(mixID(uint64(i)), d)
	}
	for i := 0; i < churn; i++ {
		id := mixID(uint64(i))
		s.Delete(id)
		s.Put(id, d)
	}
	if s.Len() != n {
		t.Fatalf("population drifted: Len=%d, want %d", s.Len(), n)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	heapGrowth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	objGrowth := int64(after.HeapObjects) - int64(before.HeapObjects)
	st := s.Stats()
	t.Logf("heap growth %.1f MiB, object growth %d, log %.1f MiB in %d chunks (%d compactions)",
		float64(heapGrowth)/(1<<20), objGrowth, float64(st.LogBytes)/(1<<20), st.Chunks, st.Compactions)
	if heapGrowth > byteCeil {
		t.Fatalf("heap grew %.1f MiB for %d descriptors, ceiling %.0f MiB — population is back on the heap",
			float64(heapGrowth)/(1<<20), n, float64(byteCeil)/(1<<20))
	}
	if objGrowth > objectCeil {
		t.Fatalf("heap object count grew %d for %d descriptors, ceiling %d — GC work is no longer population-independent",
			objGrowth, n, objectCeil)
	}
}
