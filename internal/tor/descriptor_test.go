package tor

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimePeriodStaggersByIdentity(t *testing.T) {
	now := time.Date(2015, 1, 14, 23, 0, 0, 0, time.UTC)
	// Identities whose first byte differs should (usually) roll their
	// descriptors at different instants; with first bytes 0 and 255 the
	// offset difference is almost a full day.
	var a, b ServiceID
	a[0], b[0] = 0, 255
	rollsA, rollsB := 0, 0
	prevA, prevB := TimePeriod(now, a), TimePeriod(now, b)
	for h := 1; h <= 24; h++ {
		at := now.Add(time.Duration(h) * time.Hour)
		if p := TimePeriod(at, a); p != prevA {
			rollsA++
			prevA = p
		}
		if p := TimePeriod(at, b); p != prevB {
			rollsB++
			prevB = p
		}
	}
	if rollsA != 1 || rollsB != 1 {
		t.Fatalf("each identity should roll exactly once per day: a=%d b=%d", rollsA, rollsB)
	}
	// And they must roll at different hours (offset 0 vs ~23.9h).
	ra := TimePeriod(now, a)
	rb := TimePeriod(now, b)
	if ra == rb {
		// Not an error by itself (period values may coincide), but the
		// roll instants must differ: check the exact offset math.
		offA := uint64(a[0]) * 86400 / 256
		offB := uint64(b[0]) * 86400 / 256
		if offA == offB {
			t.Fatal("permanent-id-byte offsets identical for different first bytes")
		}
	}
}

func TestDescriptorIDChangesWithPeriodAndReplica(t *testing.T) {
	id := testIdentity(t, 1).ServiceID()
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	d0 := ComputeDescriptorID(id, nil, 0, now)
	d1 := ComputeDescriptorID(id, nil, 1, now)
	if d0 == d1 {
		t.Fatal("replica 0 and 1 produced the same descriptor id")
	}
	tomorrow := now.Add(25 * time.Hour)
	if ComputeDescriptorID(id, nil, 0, tomorrow) == d0 {
		t.Fatal("descriptor id did not change across a period boundary")
	}
	// Within the same period the id is stable.
	if ComputeDescriptorID(id, nil, 0, now.Add(time.Minute)) != d0 {
		t.Fatal("descriptor id changed within a period")
	}
}

func TestDescriptorCookieChangesID(t *testing.T) {
	id := testIdentity(t, 2).ServiceID()
	now := time.Date(2015, 1, 14, 12, 0, 0, 0, time.UTC)
	plain := ComputeDescriptorID(id, nil, 0, now)
	authed := ComputeDescriptorID(id, []byte("secret-cookie-16"), 0, now)
	if plain == authed {
		t.Fatal("descriptor-cookie did not affect descriptor id")
	}
}

func TestDescriptorIDsAllReplicasDistinct(t *testing.T) {
	err := quick.Check(func(raw [10]byte, unixHours uint16) bool {
		id := ServiceID(raw)
		at := time.Unix(int64(unixHours)*3600, 0)
		ids := DescriptorIDs(id, nil, at)
		return ids[0] != ids[1]
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorSignAndVerify(t *testing.T) {
	id := testIdentity(t, 3)
	d := &Descriptor{
		Pub:         id.Pub,
		IntroPoints: []Fingerprint{{1}, {2}, {3}},
		TimePeriod:  16450,
		Replica:     1,
		PublishedAt: time.Unix(1421236800, 0),
	}
	d.Sign(id.Priv)
	if err := d.Verify(id.ServiceID()); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}

	// Wrong service id.
	other := testIdentity(t, 4)
	if err := d.Verify(other.ServiceID()); err == nil {
		t.Fatal("descriptor accepted for the wrong service")
	}

	// Tampered intro points.
	d2 := d.clone()
	d2.IntroPoints[0] = Fingerprint{9, 9}
	if err := d2.Verify(id.ServiceID()); err == nil {
		t.Fatal("tampered descriptor accepted")
	}

	// Forged signature by another key.
	d3 := d.clone()
	d3.Sign(other.Priv)
	if err := d3.Verify(id.ServiceID()); err == nil {
		t.Fatal("descriptor signed by the wrong key accepted")
	}
}

func TestDescriptorCloneIsDeep(t *testing.T) {
	id := testIdentity(t, 5)
	d := &Descriptor{Pub: id.Pub, IntroPoints: []Fingerprint{{1}}}
	d.Sign(id.Priv)
	c := d.clone()
	c.IntroPoints[0] = Fingerprint{2}
	c.Sig[0] ^= 0xff
	if d.IntroPoints[0] == c.IntroPoints[0] || d.Sig[0] == c.Sig[0] {
		t.Fatal("clone shares backing arrays with original")
	}
}
