package tor

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"time"
)

// ErrNotHSDir reports a descriptor operation against a relay that does
// not currently hold the HSDir flag.
var ErrNotHSDir = errors.New("tor: relay is not an HSDir")

// ErrNoSuchCircuit reports a cell for an unknown circuit id.
var ErrNoSuchCircuit = errors.New("tor: no such circuit")

// RelayStats counts the observable work a relay performed. The
// simulator's "measurement" story leans on these: they are what a
// network observer positioned at the relay could count.
type RelayStats struct {
	CellsRelayed      int
	DescriptorsStored int
	DescriptorsServed int
	IntrosForwarded   int
	RendezvousJoins   int
}

// Relay is one simulated onion router.
type Relay struct {
	id       *Identity
	fp       Fingerprint
	net      *Network
	joined   time.Time
	orderIdx int // position in Network.order, maintained by swap-remove
	stats    RelayStats
	// malicious marks an adversary-controlled relay (Section VI-A): it
	// accepts descriptor uploads but refuses to serve them, denying
	// access to the hidden service.
	malicious bool

	circuits map[uint64]*relayCirc
	// introByService maps a hidden service's identifier to the circuit
	// over which the service asked this relay to act as an introduction
	// point.
	introByService map[ServiceID]uint64
	// rendByCookie maps a rendezvous cookie to the waiting client
	// circuit.
	rendByCookie map[[cookieSize]byte]uint64
	// store holds hidden-service descriptors when this relay is an
	// HSDir; the backend comes from Config.NewDescriptorStore.
	store DescriptorStore
}

const cookieSize = 16

// relayCirc is this relay's per-circuit routing state.
type relayCirc struct {
	fwd, bwd ctrStream
	prev     *Relay      // nil when the previous hop is the origin proxy
	origin   *OnionProxy // non-nil only at the first hop
	next     *Relay      // nil when this relay is the terminal hop
	// linked is the circuit id of the partner circuit once this relay,
	// acting as a rendezvous point, has joined two circuits. Zero means
	// not linked.
	linked uint64
	// introService, when non-zero, marks this as a service-side intro
	// circuit for that service.
	introService ServiceID
}

// Fingerprint returns the relay identity digest.
func (r *Relay) Fingerprint() Fingerprint { return r.fp }

// Stats returns a copy of the relay's counters.
func (r *Relay) Stats() RelayStats { return r.stats }

// SetMalicious toggles adversarial descriptor suppression.
func (r *Relay) SetMalicious(v bool) { r.malicious = v }

// Uptime reports how long the relay has been part of the network.
func (r *Relay) Uptime(now time.Time) time.Duration { return now.Sub(r.joined) }

// isHSDir reports whether the relay holds the HSDir flag in the current
// consensus.
func (r *Relay) isHSDir() bool {
	c := r.net.Consensus()
	if c == nil {
		return false
	}
	return c.IsHSDir(r.fp)
}

// StoreDescriptor accepts a descriptor upload. Directories verify the
// descriptor signature and identity binding before storing, as real
// HSDirs do.
func (r *Relay) StoreDescriptor(id DescriptorID, d *Descriptor) error {
	return r.storeDescriptor(id, d, false)
}

// storeDescriptorOwned is StoreDescriptor for a descriptor the caller
// hands over and will never mutate (publishDescriptors' per-replica
// copies): the defensive ingest clone is skipped, everything else —
// HSDir gate, verification, stats — is identical.
func (r *Relay) storeDescriptorOwned(id DescriptorID, d *Descriptor) error {
	return r.storeDescriptor(id, d, true)
}

func (r *Relay) storeDescriptor(id DescriptorID, d *Descriptor, owned bool) error {
	if !r.isHSDir() {
		return fmt.Errorf("%w: %s", ErrNotHSDir, r.fp)
	}
	var sid ServiceID
	if len(d.Pub) == ed25519.PublicKeySize {
		sid = ServiceIDOf(d.Pub)
	}
	if err := r.net.verifyDescriptor(sid, d); err != nil {
		return err
	}
	if !owned {
		d = d.clone()
	}
	r.store.Put(id, d)
	r.stats.DescriptorsStored++
	return nil
}

// FetchDescriptor serves a stored descriptor, or nil if the relay has
// none (or is malicious, or the descriptor expired).
func (r *Relay) FetchDescriptor(id DescriptorID) *Descriptor {
	if r.malicious {
		return nil
	}
	d, ok := r.store.Get(id)
	if !ok {
		return nil
	}
	if r.net.Now().Sub(d.PublishedAt) > r.net.cfg.DescriptorTTL {
		r.store.Delete(id)
		return nil
	}
	r.stats.DescriptorsServed++
	return d.clone()
}

// wouldServe reports whether FetchDescriptor(id) would return a
// descriptor byte-identical to d. This is the coherence probe behind the
// proxies' verified-descriptor cache: it mirrors FetchDescriptor's
// malicious/presence/TTL checks but performs no clone and no signature
// verification, and leaves the serving stats untouched.
func (r *Relay) wouldServe(id DescriptorID, d *Descriptor) bool {
	if r.malicious {
		return false
	}
	s, ok := r.store.Get(id)
	if !ok {
		return false
	}
	if r.net.Now().Sub(s.PublishedAt) > r.net.cfg.DescriptorTTL {
		return false
	}
	return s.equal(d)
}

// receiveForward processes a forward-direction wire cell: strip this
// relay's onion layer, then forward or, at the terminal hop, interpret.
// The cell is processed synchronously hop to hop, so a single scratch
// buffer flows through the whole path instead of being copied per hop.
func (r *Relay) receiveForward(circID uint64, wire *[CellSize]byte) {
	rc, ok := r.circuits[circID]
	if !ok {
		return // circuit torn down; drop silently as Tor does
	}
	rc.fwd.xorBody(wire)
	r.stats.CellsRelayed++
	r.net.stats.CellsSwitched++
	if rc.next != nil {
		rc.next.receiveForward(circID, wire)
		return
	}
	var cell Cell
	if err := decodeCellView(&cell, wire); err != nil {
		return
	}
	r.handleTerminal(circID, rc, &cell)
}

// receiveBackward processes a backward-direction wire cell: add this
// relay's onion layer and pass toward the origin.
func (r *Relay) receiveBackward(circID uint64, wire *[CellSize]byte) {
	rc, ok := r.circuits[circID]
	if !ok {
		return
	}
	rc.bwd.xorBody(wire)
	r.stats.CellsRelayed++
	r.net.stats.CellsSwitched++
	if rc.prev != nil {
		rc.prev.receiveBackward(circID, wire)
		return
	}
	if rc.origin != nil {
		rc.origin.deliverBackward(circID, wire)
	}
}

// sendBackwardFromTerminal originates a cell at this (terminal) relay
// and pushes it toward the circuit origin. payload may alias a forward
// wire buffer: it is copied into the fresh backward buffer before any
// onion layer touches it.
func (r *Relay) sendBackwardFromTerminal(circID uint64, cmd Command, flags byte, payload []byte) {
	cell := Cell{CircID: circID, Cmd: cmd, Flags: flags, Payload: payload}
	wire := r.net.getWire()
	defer r.net.putWire(wire)
	if err := cell.encodeInto(wire); err != nil {
		return
	}
	r.receiveBackward(circID, wire)
}

// handleTerminal interprets a cell addressed to this relay.
func (r *Relay) handleTerminal(circID uint64, rc *relayCirc, cell *Cell) {
	switch cell.Cmd {
	case CmdEstablishIntro:
		r.handleEstablishIntro(circID, rc, cell.Payload)
	case CmdIntroduce1:
		r.handleIntroduce1(circID, cell.Payload)
	case CmdEstablishRendezvous:
		r.handleEstablishRendezvous(circID, cell.Payload)
	case CmdRendezvous1:
		r.handleRendezvous1(circID, rc, cell.Payload)
	case CmdData:
		if rc.linked != 0 {
			if lc, ok := r.circuits[rc.linked]; ok && lc != nil {
				r.sendBackwardFromTerminal(rc.linked, CmdData, cell.Flags, cell.Payload)
			}
		}
	case CmdEnd:
		r.teardown(circID, true)
	default:
		// Unknown terminal command: drop.
	}
}

// handleEstablishIntro registers this relay as an introduction point.
// Payload: servicePub(32) || sig(64) where sig covers "intro" || pub.
func (r *Relay) handleEstablishIntro(circID uint64, rc *relayCirc, p []byte) {
	if len(p) != ed25519.PublicKeySize+ed25519.SignatureSize {
		return
	}
	pub := ed25519.PublicKey(p[:ed25519.PublicKeySize])
	sig := p[ed25519.PublicKeySize:]
	if !r.net.verifyIntroBinding(pub, sig) {
		return // refuse to introduce for a key the caller does not hold
	}
	var sid ServiceID
	sum := FingerprintOf(pub)
	copy(sid[:], sum[:10])
	r.introByService[sid] = circID
	rc.introService = sid
}

// introBinding is the byte string an ESTABLISH_INTRO signature covers.
func introBinding(pub ed25519.PublicKey) []byte {
	return append([]byte("establish-intro:"), pub...)
}

// handleIntroduce1 forwards an introduction request to the hidden
// service. Payload: serviceID(10) || rpFP(20) || cookie(16).
func (r *Relay) handleIntroduce1(clientCirc uint64, p []byte) {
	if len(p) != 10+20+cookieSize {
		return
	}
	var sid ServiceID
	copy(sid[:], p[:10])
	introCirc, ok := r.introByService[sid]
	if !ok {
		// Service unknown or stopped: report failure to the client.
		r.sendBackwardFromTerminal(clientCirc, CmdEnd, 0, nil)
		return
	}
	r.stats.IntrosForwarded++
	r.sendBackwardFromTerminal(introCirc, CmdIntroduce2, 0, p[10:])
}

// handleEstablishRendezvous parks a client circuit under its cookie.
func (r *Relay) handleEstablishRendezvous(circID uint64, p []byte) {
	if len(p) != cookieSize {
		return
	}
	var ck [cookieSize]byte
	copy(ck[:], p)
	r.rendByCookie[ck] = circID
}

// handleRendezvous1 joins the service circuit to the waiting client
// circuit and confirms to the client.
func (r *Relay) handleRendezvous1(serviceCirc uint64, rc *relayCirc, p []byte) {
	if len(p) != cookieSize {
		return
	}
	var ck [cookieSize]byte
	copy(ck[:], p)
	clientCirc, ok := r.rendByCookie[ck]
	if !ok {
		r.sendBackwardFromTerminal(serviceCirc, CmdEnd, 0, nil)
		return
	}
	delete(r.rendByCookie, ck)
	ccirc, ok := r.circuits[clientCirc]
	if !ok {
		r.sendBackwardFromTerminal(serviceCirc, CmdEnd, 0, nil)
		return
	}
	rc.linked = clientCirc
	ccirc.linked = serviceCirc
	r.stats.RendezvousJoins++
	r.sendBackwardFromTerminal(clientCirc, CmdRendezvous2, 0, nil)
}

// teardown removes circuit state at this relay and propagates the END
// both onward and across any rendezvous link.
func (r *Relay) teardown(circID uint64, fromPrev bool) {
	rc, ok := r.circuits[circID]
	if !ok {
		return
	}
	delete(r.circuits, circID)
	if rc.introService != (ServiceID{}) {
		if cur, ok := r.introByService[rc.introService]; ok && cur == circID {
			delete(r.introByService, rc.introService)
		}
	}
	if rc.linked != 0 {
		linked := rc.linked
		rc.linked = 0
		if lc, ok := r.circuits[linked]; ok {
			lc.linked = 0
			r.sendBackwardFromTerminal(linked, CmdEnd, 0, nil)
			delete(r.circuits, linked)
		}
	}
	if fromPrev && rc.next != nil {
		// Forward the teardown without onion processing; END is a
		// control signal and the next hops drop state on sight.
		end := Cell{CircID: circID, Cmd: CmdEnd}
		wire := r.net.getWire()
		defer r.net.putWire(wire)
		if err := end.encodeInto(wire); err == nil {
			rc.next.teardownForward(circID, wire)
		}
	}
}

// teardownForward propagates an END toward the terminal hop.
func (r *Relay) teardownForward(circID uint64, wire *[CellSize]byte) {
	rc, ok := r.circuits[circID]
	if !ok {
		return
	}
	delete(r.circuits, circID)
	if rc.introService != (ServiceID{}) {
		if cur, ok := r.introByService[rc.introService]; ok && cur == circID {
			delete(r.introByService, rc.introService)
		}
	}
	if rc.linked != 0 {
		if lc, ok := r.circuits[rc.linked]; ok {
			lc.linked = 0
			r.sendBackwardFromTerminal(rc.linked, CmdEnd, 0, nil)
			delete(r.circuits, rc.linked)
		}
	}
	if rc.next != nil {
		rc.next.teardownForward(circID, wire)
	}
}
