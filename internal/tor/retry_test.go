package tor

import (
	"testing"
	"time"
)

func TestRetryBackoffSchedule(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Minute}
	want := []time.Duration{time.Minute, 2 * time.Minute, 4 * time.Minute, 8 * time.Minute}
	for i, w := range want {
		if got := rp.backoff(i + 2); got != w {
			t.Errorf("backoff(attempt %d) = %s, want %s", i+2, got, w)
		}
	}
	if got := rp.Span(); got != 15*time.Minute {
		t.Errorf("Span() = %s, want 15m", got)
	}
	// Default base and cap.
	def := RetryPolicy{MaxAttempts: 2}
	if got := def.backoff(2); got != DefaultBaseBackoff {
		t.Errorf("zero-base backoff = %s, want %s", got, DefaultBaseBackoff)
	}
	capped := RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Minute, MaxBackoff: 3 * time.Minute}
	if got := capped.backoff(9); got != 3*time.Minute {
		t.Errorf("capped backoff = %s, want 3m", got)
	}
	if (RetryPolicy{}).Enabled() || (RetryPolicy{MaxAttempts: 1}).Enabled() {
		t.Error("single-attempt policies must report disabled")
	}
}

// DialAsync with the zero policy is a synchronous Dial: outcome before
// return, no scheduler involvement, no retry counters.
func TestDialAsyncZeroPolicyIsSynchronous(t *testing.T) {
	n := newTestNetwork(t, 201, 12)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 1), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	delivered := false
	client.DialAsync(hs.Onion(), func(conn *Conn, err error) {
		delivered = true
		if err != nil {
			t.Fatalf("dial failed: %v", err)
		}
	})
	if !delivered {
		t.Fatal("zero-policy DialAsync did not deliver synchronously")
	}
	if st := n.Stats(); st.DialRetries != 0 || st.DialRecoveries != 0 {
		t.Fatalf("zero-policy dial consumed retry counters: %+v", st)
	}
}

// A dial against a service that never existed burns the full budget on
// the sim clock, then gives up with the last error.
func TestDialAsyncGivesUpAfterBudget(t *testing.T) {
	n := newTestNetwork(t, 202, 12)
	client := NewProxy(n)
	client.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Minute}
	ghost := testIdentity(t, 9).Onion()

	var finalErr error
	done := false
	client.DialAsync(ghost, func(conn *Conn, err error) {
		done = true
		finalErr = err
	})
	if done {
		t.Fatal("failing dial with retries resolved synchronously")
	}
	// Attempts at +1m and +3m (1m + 2m backoffs); not done before.
	n.Scheduler().RunFor(2 * time.Minute)
	if done {
		t.Fatal("gave up before the budget was spent")
	}
	n.Scheduler().RunFor(2 * time.Minute)
	if !done {
		t.Fatal("budget spent but outcome never delivered")
	}
	if finalErr == nil {
		t.Fatal("dial to nonexistent service succeeded")
	}
	if st := n.Stats(); st.DialRetries != 2 {
		t.Fatalf("DialRetries = %d, want 2", st.DialRetries)
	}
	if st := n.Stats(); st.DialFailures != 3 {
		t.Fatalf("DialFailures = %d, want 3 (every attempt failed)", st.DialFailures)
	}
}

// A service that appears between attempts is found by a retry, and the
// recovery is counted.
func TestDialAsyncRecoversWhenServiceAppears(t *testing.T) {
	n := newTestNetwork(t, 203, 12)
	id := testIdentity(t, 2)
	client := NewProxy(n)
	client.Retry = RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Minute}

	var got *Conn
	var gotErr error
	delivered := false
	client.DialAsync(id.Onion(), func(conn *Conn, err error) {
		delivered, got, gotErr = true, conn, err
	})
	if delivered {
		t.Fatal("dial resolved before the service existed")
	}
	// Host the service before the first retry fires.
	server := NewProxy(n)
	if _, err := server.Host(id, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	n.Scheduler().RunFor(2 * time.Minute)
	if !delivered {
		t.Fatal("retry never fired")
	}
	if gotErr != nil || got == nil {
		t.Fatalf("retry failed to recover: %v", gotErr)
	}
	if st := n.Stats(); st.DialRecoveries != 1 {
		t.Fatalf("DialRecoveries = %d, want 1", st.DialRecoveries)
	}
}

// afterDialFailure must invalidate per-service client state: the
// verified-descriptor cache entry, the guard set, and the replica
// preference.
func TestDialFailureInvalidatesClientState(t *testing.T) {
	n := newTestNetwork(t, 204, 12)
	server := NewProxy(n)
	id := testIdentity(t, 3)
	hs, err := server.Host(id, func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	client := NewProxy(n)
	if _, err := client.Dial(hs.Onion()); err != nil {
		t.Fatal(err)
	}
	sid := id.ServiceID()
	if _, cached := client.descCache[sid]; !cached {
		t.Fatal("successful dial did not warm the descriptor cache")
	}
	offsetBefore := client.replicaOffset
	client.afterDialFailure(hs.Onion())
	if _, cached := client.descCache[sid]; cached {
		t.Fatal("failure did not evict the descriptor cache entry")
	}
	if !client.guardsDirty {
		t.Fatal("failure did not mark the guard set dirty")
	}
	if client.replicaOffset != offsetBefore+1 {
		t.Fatal("failure did not rotate the replica preference")
	}
	// The dirty flag forces revalidation on the next path build even
	// within one membership epoch.
	client.refreshGuards()
	if client.guardsDirty {
		t.Fatal("refreshGuards left the dirty flag set")
	}
}

// Regression: a consensus listing a dead relay must not abort path
// construction — the picker skips the corpse and resamples.
func TestPickPathSkipsDeadConsensusEntries(t *testing.T) {
	n := newTestNetwork(t, 205, 12)
	server := NewProxy(n)
	hs, err := server.Host(testIdentity(t, 4), func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	// Kill relays without republishing the consensus (the stale
	// consensus still lists them), sparing everything whose death would
	// legitimately break the dial — guards, intro points, responsible
	// directories. What remains tests only the middle-relay picker.
	spare := map[Fingerprint]struct{}{}
	for _, fp := range server.Guards() {
		spare[fp] = struct{}{}
	}
	for _, fp := range hs.IntroPoints() {
		spare[fp] = struct{}{}
	}
	sid := hs.identity.ServiceID()
	c := n.Consensus()
	for r := 0; r < NumReplicas; r++ {
		for _, fp := range c.ResponsibleHSDirs(ComputeDescriptorID(sid, nil, r, n.Now())) {
			spare[fp] = struct{}{}
		}
	}
	killed := 0
	for _, ri := range c.Relays {
		if killed >= 3 {
			break
		}
		if _, ok := spare[ri.FP]; ok {
			continue
		}
		n.RemoveRelay(ri.FP)
		killed++
	}
	if killed == 0 {
		t.Fatal("no killable relay found")
	}
	// Dials must still work: every path build resamples past the
	// corpses the stale consensus still lists. (Only a couple of dials:
	// each kill also tore down circuits through the victim, and intro
	// repair — a different mechanism — runs on its own cadence.)
	client := NewProxy(n)
	for i := 0; i < 2; i++ {
		conn, err := client.Dial(hs.Onion())
		if err != nil {
			t.Fatalf("dial %d under stale consensus: %v", i, err)
		}
		conn.Close()
	}
}

// When the responsible directories die, the service republishes to the
// survivors as soon as the consensus reflects the loss — and counts the
// repair.
func TestRepublishAfterResponsibleDirsDie(t *testing.T) {
	n := newTestNetwork(t, 206, 16)
	server := NewProxy(n)
	id := testIdentity(t, 5)
	hs, err := server.Host(id, func(*Conn) {})
	if err != nil {
		t.Fatal(err)
	}
	// Kill every responsible directory of every replica.
	sid := id.ServiceID()
	now := n.Now()
	c := n.Consensus()
	guard := server.Guards()[0]
	for r := 0; r < NumReplicas; r++ {
		for _, fp := range c.ResponsibleHSDirs(ComputeDescriptorID(sid, nil, r, now)) {
			if fp == guard {
				continue
			}
			n.RemoveRelay(fp)
		}
	}
	// A fresh client cannot fetch the descriptor while the directory
	// set is dark and the consensus is stale.
	if _, err := NewProxy(n).Dial(hs.Onion()); err == nil {
		t.Fatal("dial succeeded with all responsible dirs dead")
	}
	// Let the consensus schedule and the republish tick run: the
	// responsible set re-resolves onto survivors and the service heals.
	n.Scheduler().RunFor(2*n.Config().ConsensusInterval + time.Minute)
	if st := n.Stats(); st.PublishRepairs == 0 {
		t.Fatal("directory loss never counted as a publish repair")
	}
	conn, err := NewProxy(n).Dial(hs.Onion())
	if err != nil {
		t.Fatalf("dial after republish window: %v", err)
	}
	conn.Close()
}
